// Package scanatpg is a test generation and test compaction library for
// scan circuits, reproducing Pomeranz & Reddy, "A New Approach to Test
// Generation and Test Compaction for Scan Circuits" (DATE 2003).
//
// The paper's idea: treat the scan-select and scan-in lines of a scan
// circuit as ordinary primary inputs and the scan-out line as an
// ordinary primary output, then run test generation and static
// compaction procedures meant for non-scan sequential circuits on the
// resulting circuit C_scan. Scan operations stop being special — they
// are just input vectors with scan_sel = 1 — so limited scan operations
// (shifting fewer than N_SV positions) arise naturally and compaction
// may shorten any scan operation. The result is very aggressive test
// application time reduction.
//
// # Quick start
//
//	c, _ := scanatpg.LoadBenchmark("s27")
//	sc, _ := scanatpg.InsertScan(c)
//	faults := scanatpg.Faults(sc.Scan, true)
//	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
//	compacted, _ := scanatpg.Compact(sc, gen.Sequence, faults, scanatpg.CompactOptions{})
//	fmt.Printf("%d cycles -> %d cycles\n", len(gen.Sequence), len(compacted))
//
// The subpackages under internal/ hold the implementation: the netlist
// model, the .bench reader, scan insertion, the fault model, the
// bit-parallel three-valued simulator, PODEM, the Section 2 sequential
// generator, the Section 3 translator, the Section 4 compaction
// procedures, and the conventional-scan baseline used for comparison.
package scanatpg

import (
	"io"
	"sync"

	"repro/internal/baseline"
	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/combatpg"
	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/testability"
	"repro/internal/testprog"
	"repro/internal/transition"
	"repro/internal/translate"
)

// Core data types, re-exported for use through the facade.
type (
	// Circuit is a gate-level synchronous sequential circuit.
	Circuit = netlist.Circuit
	// Builder constructs circuits programmatically.
	Builder = netlist.Builder
	// ScanCircuit is a circuit with an inserted scan chain (C_scan).
	ScanCircuit = scan.Circuit
	// Fault is a single stuck-at fault.
	Fault = fault.Fault
	// Value is a three-valued logic value (0, 1, X).
	Value = logic.Value
	// Vector assigns one Value per primary input.
	Vector = logic.Vector
	// Sequence is an ordered list of vectors; for C_scan its length
	// is the test application time in clock cycles.
	Sequence = logic.Sequence
	// ScanTest is a conventional scan test (SI, T).
	ScanTest = translate.ScanTest
	// GenerateOptions tunes the Section 2 generator.
	GenerateOptions = seqatpg.Options
	// GenerateResult is the Section 2 generator's output.
	GenerateResult = seqatpg.Result
	// BaselineOptions tunes the conventional-scan comparator.
	BaselineOptions = baseline.Options
	// BaselineResult is the comparator's output.
	BaselineResult = baseline.Result
	// CompactionStats reports what a compaction pass did.
	CompactionStats = compact.Stats
	// FlowConfig parameterizes the end-to-end experiment flows.
	FlowConfig = core.Config
	// GenerateRow is one row of the paper's Tables 5/6.
	GenerateRow = core.GenerateRow
	// TranslateRow is one row of the paper's Table 7.
	TranslateRow = core.TranslateRow
)

// Logic constants.
const (
	Zero = logic.Zero
	One  = logic.One
	X    = logic.X
)

// GateType selects a combinational gate function for Builder.AddGate.
type GateType = netlist.GateType

// Gate types.
const (
	BufGate  = netlist.BUF
	NotGate  = netlist.NOT
	AndGate  = netlist.AND
	NandGate = netlist.NAND
	OrGate   = netlist.OR
	NorGate  = netlist.NOR
	XorGate  = netlist.XOR
	XnorGate = netlist.XNOR
)

// NewBuilder starts building a circuit with the given name.
func NewBuilder(name string) *Builder { return netlist.NewBuilder(name) }

// LoadBenchmark returns a catalog circuit by name: the real ISCAS-89
// s27 netlist, or a deterministic synthetic substitute for the other
// benchmark names (see DESIGN.md).
func LoadBenchmark(name string) (*Circuit, error) { return circuits.Load(name) }

// Benchmarks lists the catalog circuit names in the paper's table
// order.
func Benchmarks() []string { return circuits.Names() }

// ParseBench reads a circuit in ISCAS-89 .bench format.
func ParseBench(r io.Reader, name string) (*Circuit, error) { return bench.Parse(r, name) }

// FormatBench renders a circuit in .bench format.
func FormatBench(c *Circuit) string { return bench.Format(c) }

// InsertScan builds C_scan: a single mux-based scan chain in flip-flop
// declaration order, with scan_sel/scan_inp as extra inputs and
// scan_out as an extra output.
func InsertScan(c *Circuit) (*ScanCircuit, error) { return scan.Insert(c) }

// ScanChains is a circuit with several scan chains sharing one
// scan_sel (the paper's noted generalization).
type ScanChains = scan.Chains

// ScanDesign abstracts over single- and multi-chain scan circuits;
// Generate accepts either.
type ScanDesign = scan.Design

// InsertScanChains builds C_scan with n scan chains; flip-flops are
// split into near-equal contiguous groups, so a complete scan operation
// takes only the longest chain's length in cycles.
func InsertScanChains(c *Circuit, n int) (*ScanChains, error) { return scan.InsertChains(c, n) }

// Faults enumerates the single stuck-at fault universe of a circuit,
// optionally with structural equivalence collapsing.
func Faults(c *Circuit, collapse bool) []Fault { return fault.Universe(c, collapse) }

// Generate runs the paper's Section 2 test generation procedure on
// C_scan: a sequential generator for non-scan circuits enhanced with
// functional-level knowledge of the scan chain(s). It accepts both a
// single-chain *ScanCircuit and a multi-chain *ScanChains.
func Generate(sc ScanDesign, faults []Fault, opts GenerateOptions) GenerateResult {
	return seqatpg.Generate(sc, faults, opts)
}

// GenerateBaseline runs the conventional "second approach" scan test
// generator with test-set compaction on the original circuit. Its
// Cycles field is the comparison column of Tables 6 and 7.
func GenerateBaseline(c *Circuit, faults []Fault, opts BaselineOptions) BaselineResult {
	return baseline.Generate(c, faults, opts)
}

// Translate flattens a conventional scan test set into one C_scan test
// sequence (the paper's Section 3); the result detects everything the
// conventional application of the set detects.
func Translate(sc ScanDesign, tests []ScanTest, seed uint64) (Sequence, error) {
	return translate.Translate(sc, tests, seed)
}

// ConventionalCycles returns the clock cycles conventional application
// of a scan test set takes (complete scan per test plus final
// scan-out).
func ConventionalCycles(tests []ScanTest, nsv int) int {
	return translate.Cycles(tests, nsv)
}

// CompactOptions tunes the compaction entry points Restore, Omit and
// Compact. The zero value selects defaults (all cores, incremental
// engine, detection order, no budget, no observation). Fields:
//
//   - Workers / Sim: fault-simulation parallelism, or a caller-owned
//     Simulator whose machine pool is shared across passes.
//   - Control: budget/cancellation and checkpoint/resume — the former
//     *WithControl variants folded into the options struct.
//   - Obs: the flight-recorder Observer for the pass.
//   - Engine: the trial engine (output identical for every engine).
//   - Order: the restoration target order (OrderADI changes output).
type CompactOptions = compact.Options

// CompactEngine selects the compaction trial engine.
type CompactEngine = compact.Engine

// CompactOrder selects the restoration target order.
type CompactOrder = compact.Order

// Compaction engine and order values for CompactOptions.
const (
	EngineAuto        = compact.EngineAuto
	EngineIncremental = compact.EngineIncremental
	EngineScratch     = compact.EngineScratch
	OrderDetection    = compact.OrderDetection
	OrderADI          = compact.OrderADI
)

// Restore applies vector-restoration compaction [23] to a test sequence
// for a scan design. Like Compact and Omit it accepts both a
// single-chain *ScanCircuit and a multi-chain *ScanChains; pass
// CompactOptions{} for the defaults.
func Restore(sc ScanDesign, seq Sequence, faults []Fault, opts CompactOptions) (Sequence, CompactionStats) {
	return compact.RestoreOpts(sc.ScanCircuit(), seq, faults, opts)
}

// Omit applies vector-omission compaction [22] to a test sequence for a
// scan design.
func Omit(sc ScanDesign, seq Sequence, faults []Fault, opts CompactOptions) (Sequence, CompactionStats) {
	return compact.OmitOpts(sc.ScanCircuit(), seq, faults, opts)
}

// Compact applies the paper's Section 4 pipeline — restoration followed
// by omission — and returns the final sequence with the omission stats.
// Budgets, checkpointing, observation and engine/order selection all
// ride in opts; with a Control set, a stopped pass returns the valid
// partially compacted sequence with Stats.Status set.
func Compact(sc ScanDesign, seq Sequence, faults []Fault, opts CompactOptions) (Sequence, CompactionStats) {
	_, omitted, _, ost := compact.RestoreThenOmitOpts(sc.ScanCircuit(), seq, faults, opts)
	return omitted, ost
}

// simCache memoizes the last Simulator that Simulate built, so repeated
// facade calls on the same circuit share one machine pool (and the
// event-driven kernel's trace cache) instead of allocating machines per
// call.
var simCache struct {
	sync.Mutex
	c *Circuit
	s *Simulator
}

func cachedSimulator(c *Circuit) *Simulator {
	simCache.Lock()
	defer simCache.Unlock()
	if simCache.c != c {
		simCache.c, simCache.s = c, sim.NewSimulator(c, 0)
	}
	return simCache.s
}

// Simulate fault-simulates a sequence and returns, per fault, the first
// detecting vector index or -1. Calls run through a pooled Simulator
// cached per circuit; results are bit-identical to Simulator.Run.
func Simulate(c *Circuit, seq Sequence, faults []Fault) []int {
	return cachedSimulator(c).Run(seq, faults, sim.Options{}).DetectedAt
}

// Simulator owns a reusable pool of bit-parallel fault-simulation
// machines for one circuit and fans fault batches out across worker
// goroutines. Detection results are bit-identical for every worker
// count; only wall-clock time changes.
type Simulator = sim.Simulator

// SimOptions configures a Simulator.Run call (initial flip-flop state;
// the zero value is the paper's all-X power-up model).
type SimOptions = sim.Options

// NewSimulator builds a Simulator for c with the given worker count
// (<= 0 selects GOMAXPROCS). A Simulator is safe for concurrent use and
// amortizes machine allocation across many simulation calls.
func NewSimulator(c *Circuit, workers int) *Simulator { return sim.NewSimulator(c, workers) }

// Run control: budgets, cancellation and crash-safe checkpoint/resume,
// re-exported from the internal runctl package so library users get the
// same machinery the commands expose as -timeout/-checkpoint/-resume.
type (
	// Budget caps a run by wall clock, context cancellation, or
	// attempt/trial counts; the zero value imposes no limits.
	Budget = runctl.Budget
	// Control threads one run's budget, cancellation and optional
	// checkpoint store through the engines. A nil *Control is valid
	// everywhere and means "run to completion".
	Control = runctl.Control
	// Status classifies how a budgeted run ended.
	Status = runctl.Status
	// Store persists checkpoint sections between run legs.
	Store = runctl.Store
	// FileStore is a Store keeping all sections in one JSON file,
	// written atomically.
	FileStore = runctl.FileStore
)

// Run statuses. Complete and Resumed mark fully finished runs; the
// others mark a clean stop with valid partial results that a checkpoint
// can continue.
const (
	Complete         = runctl.Complete
	Resumed          = runctl.Resumed
	Canceled         = runctl.Canceled
	DeadlineExceeded = runctl.DeadlineExceeded
	BudgetExhausted  = runctl.BudgetExhausted
	Failed           = runctl.Failed
)

// NewFileStore returns a checkpoint Store backed by one JSON file.
func NewFileStore(path string) *FileStore { return runctl.NewFileStore(path) }

// Observability: the flight-recorder layer from the internal obs
// package, re-exported so library users can watch a run the same way
// the commands' -metrics/-debug-addr flags do. Every engine option
// struct (GenerateOptions, FlowConfig) carries an Obs field; a nil
// Observer is free and results never depend on observation.
type (
	// Observer receives named atomic counters/gauges/timers and
	// structured per-phase events from the engines.
	Observer = obs.Observer
	// MetricsRecorder is an Observer that aggregates instruments and
	// streams events as JSONL flight-recorder lines.
	MetricsRecorder = obs.Recorder
	// MetricsRecorderOptions configures a MetricsRecorder.
	MetricsRecorderOptions = obs.RecorderOptions
	// MetricsSnapshot is a point-in-time view of every instrument.
	MetricsSnapshot = obs.Snapshot
)

// NewMetricsRecorder builds a flight recorder writing JSONL to w (nil w
// keeps instruments only). Close it to flush the final snapshot.
func NewMetricsRecorder(w io.Writer, opts MetricsRecorderOptions) *MetricsRecorder {
	return obs.NewRecorder(w, opts)
}

// ValidateMetrics checks a JSONL flight-recorder stream against the
// schema in docs/ALGORITHMS.md §11 and returns the first violation.
func ValidateMetrics(r io.Reader) error {
	_, err := obs.Validate(r)
	return err
}

// FirstApproachTestSet generates a conventional first-approach test set
// (one combinational PODEM test per fault, state fully controllable,
// next state observable) on the original circuit, as scan tests with a
// single functional vector each.
func FirstApproachTestSet(c *Circuit, faults []Fault, seed uint64) []ScanTest {
	res := combatpg.GenerateTestSet(c, faults, seed)
	return translate.FromFrameTests(res.Tests)
}

// FaultDictionary maps every fault to its failure signature under one
// test sequence, for diagnosis.
type FaultDictionary = diagnose.Dictionary

// Observation is one recorded tester mismatch (cycle, output).
type Observation = diagnose.Observation

// BuildDictionary fault-simulates seq without fault dropping and
// records complete failure signatures for diagnosis.
func BuildDictionary(c *Circuit, seq Sequence, faults []Fault) *FaultDictionary {
	return diagnose.Build(c, seq, faults)
}

// TestProgram is the segmented (scan op / functional) view of a flat
// test sequence.
type TestProgram = testprog.Program

// SplitProgram segments a flat sequence into scan operations and
// functional vectors — the inverse of translation, showing where
// compaction created limited scan operations.
func SplitProgram(sc ScanDesign, seq Sequence) *TestProgram { return testprog.Split(sc, seq) }

// CollapseDominance additionally drops structurally dominating gate
// output faults from a fault list; use the result as a generation
// target list (coverage accounting should simulate the uncollapsed
// list).
func CollapseDominance(c *Circuit, faults []Fault) []Fault {
	return fault.CollapseDominance(c, faults)
}

// Classification reports per-fault testability under full state
// controllability and observability.
type Classification = combatpg.Classification

// ClassifyFaults proves single-frame testability or untestability of
// every fault (the combinational full-scan view); its Efficiency is the
// coverage ceiling for scan-based testing.
func ClassifyFaults(c *Circuit, faults []Fault, maxBacktracks int) Classification {
	return combatpg.ClassifyUniverse(c, faults, maxBacktracks)
}

// TransitionFault is a gross-delay transition fault (slow-to-rise or
// slow-to-fall) on a signal stem.
type TransitionFault = transition.Fault

// TransitionFaults enumerates the transition fault universe of a
// circuit.
func TransitionFaults(c *Circuit) []TransitionFault { return transition.Universe(c) }

// GradeTransitions fault-simulates seq against the transition universe
// and returns per-fault first detection times (-1 = undetected). The
// paper's representation applies every vector at-speed, so stuck-at
// sequences pick up transition coverage for free.
func GradeTransitions(c *Circuit, seq Sequence, faults []TransitionFault) []int {
	return transition.Run(c, seq, faults).DetectedAt
}

// TransitionResult is the output of GenerateTransitionTests.
type TransitionResult = seqatpg.TransitionResult

// GenerateTransitionTests runs the Section 2 forward search against the
// gross-delay transition fault model (at-speed test generation). The
// candidate fitness and the scan flush mechanism are fault-model
// agnostic; only the stuck-at PODEM oracles are disabled.
func GenerateTransitionTests(sc ScanDesign, faults []TransitionFault, opts GenerateOptions) TransitionResult {
	return seqatpg.GenerateTransition(sc, faults, opts)
}

// TestabilityMeasures holds SCOAP controllability/observability values.
type TestabilityMeasures = testability.Measures

// ComputeTestability calculates SCOAP measures (CC0/CC1/CO) for the
// combinational view of a circuit, with scan conventions for flip-flops.
func ComputeTestability(c *Circuit) *TestabilityMeasures { return testability.Compute(c) }

// DefaultFlowConfig is the configuration the recorded experiments use.
func DefaultFlowConfig() FlowConfig { return core.DefaultConfig() }

// RunGenerateFlow executes the full generation experiment (Tables 5/6)
// on one catalog circuit.
func RunGenerateFlow(name string, cfg FlowConfig) (GenerateRow, error) {
	row, _, err := core.RunGenerate(name, cfg)
	return row, err
}

// RunTranslateFlow executes the full translation experiment (Table 7)
// on one catalog circuit.
func RunTranslateFlow(name string, cfg FlowConfig) (TranslateRow, error) {
	row, _, err := core.RunTranslate(name, cfg)
	return row, err
}
