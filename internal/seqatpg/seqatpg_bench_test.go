package seqatpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
)

// BenchmarkGenerate measures the Section 2 generator end to end on
// small circuits (full fault universe, default options).
func BenchmarkGenerate(b *testing.B) {
	for _, name := range []string{"s27", "s298", "s526"} {
		b.Run(name, func(b *testing.B) {
			c, err := circuits.Load(name)
			if err != nil {
				b.Fatal(err)
			}
			sc, err := scan.Insert(c)
			if err != nil {
				b.Fatal(err)
			}
			faults := fault.Universe(sc.Scan, true)
			b.ResetTimer()
			var res Result
			for i := 0; i < b.N; i++ {
				res = Generate(sc, faults, Options{Seed: 1})
			}
			b.ReportMetric(float64(res.NumDetected())/float64(len(faults))*100, "fcov_pct")
			b.ReportMetric(float64(len(res.Sequence)), "cycles")
		})
	}
}

// BenchmarkGenerateAblation contrasts generation with and without the
// functional-level scan knowledge (the paper's key enhancement).
func BenchmarkGenerateAblation(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	for _, disable := range []bool{false, true} {
		name := "with-scan-knowledge"
		if disable {
			name = "without-scan-knowledge"
		}
		b.Run(name, func(b *testing.B) {
			var res Result
			for i := 0; i < b.N; i++ {
				res = Generate(sc, faults, Options{Seed: 1, DisableScanKnowledge: disable})
			}
			b.ReportMetric(float64(res.NumDetected())/float64(len(faults))*100, "fcov_pct")
			b.ReportMetric(float64(res.NumFunct()), "funct")
		})
	}
}

// BenchmarkManagerAppend measures the incremental fault manager's
// per-vector cost with the full fault universe alive.
func BenchmarkManagerAppend(b *testing.B) {
	c, err := circuits.Load("s953")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	mgr := NewManager(sc.Scan, faults)
	v := sc.ShiftVector(logic.One)
	fillRandom(v, logic.NewRandFiller(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mgr.Append(v)
	}
}
