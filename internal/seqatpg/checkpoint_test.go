package seqatpg

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/runctl"
)

// runToCompletion drives Generate under repeated small attempt budgets,
// resuming from store each time, until the run reports Done. It returns
// the final result and how many interrupted legs it took.
func runToCompletion(t *testing.T, run func(ctl *runctl.Control) Result, store runctl.Store, budgets []int64) (Result, int) {
	t.Helper()
	legs := 0
	for i := 0; ; i++ {
		var b runctl.Budget
		if i < len(budgets) {
			b = runctl.Budget{MaxAttempts: budgets[i]}
		}
		res := run(&runctl.Control{Budget: b, Store: store, Resume: true})
		if res.Err != nil {
			t.Fatalf("leg %d: %v", i, res.Err)
		}
		if res.Status.Done() {
			return res, legs
		}
		if res.Status != runctl.BudgetExhausted {
			t.Fatalf("leg %d: status %v, want budget exhausted", i, res.Status)
		}
		legs++
		if legs > 200 {
			t.Fatal("run never completed")
		}
	}
}

// TestGenerateResumeIdentity is the tentpole invariant for the
// generator: a run interrupted at randomized points and resumed from
// its checkpoint must produce a sequence and coverage bit-identical to
// an uninterrupted run.
func TestGenerateResumeIdentity(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	opts := Options{Seed: 11, Passes: 1, RandomPhase: 4}
	ref := Generate(sc, faults, opts)
	if ref.Status != runctl.Complete {
		t.Fatalf("reference status %v", ref.Status)
	}

	// Three interruption schedules with different granularity, the
	// budgets drawn from a seeded RNG so points vary but stay
	// reproducible.
	rng := logic.NewRandFiller(0xC0FFEE)
	for round := 0; round < 3; round++ {
		var budgets []int64
		for i := 0; i < 50; i++ {
			budgets = append(budgets, int64(1+rng.Intn(7)))
		}
		store := runctl.NewMemStore()
		run := func(ctl *runctl.Control) Result {
			o := opts
			o.Control = ctl
			return Generate(sc, faults, o)
		}
		res, legs := runToCompletion(t, run, store, budgets)
		if legs == 0 {
			t.Fatalf("round %d: no interruption happened; budgets too large", round)
		}
		if res.Status != runctl.Resumed {
			t.Fatalf("round %d: final status %v, want resumed", round, res.Status)
		}
		if res.Sequence.String() != ref.Sequence.String() {
			t.Fatalf("round %d: resumed sequence differs from uninterrupted run (%d legs)", round, legs)
		}
		for fi := range faults {
			if res.DetectedAt[fi] != ref.DetectedAt[fi] {
				t.Fatalf("round %d: fault %d detected at %d, reference %d", round, fi, res.DetectedAt[fi], ref.DetectedAt[fi])
			}
			if res.Funct[fi] != ref.Funct[fi] {
				t.Fatalf("round %d: fault %d funct flag diverged", round, fi)
			}
		}
	}
}

// TestGenerateCanceledReturnsPartial checks the cancellation path: a
// pre-canceled context stops the run before any attempt, tagging the
// (empty) result instead of blocking or panicking.
func TestGenerateCanceledReturnsPartial(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Generate(sc, faults, Options{Seed: 1, Control: &runctl.Control{Budget: runctl.Budget{Ctx: ctx}}})
	if res.Status != runctl.Canceled {
		t.Fatalf("status %v, want canceled", res.Status)
	}
	if len(res.Sequence) != 0 || res.NumDetected() != 0 {
		t.Fatalf("canceled-before-start run produced %d vectors, %d detections", len(res.Sequence), res.NumDetected())
	}
}

// TestGenerateResumeRejectsChangedOptions guards the params fingerprint:
// a checkpoint taken under one seed must not silently continue a run
// with another.
func TestGenerateResumeRejectsChangedOptions(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	store := runctl.NewMemStore()
	res := Generate(sc, faults, Options{Seed: 5, Passes: 1,
		Control: &runctl.Control{Budget: runctl.Budget{MaxAttempts: 2}, Store: store}})
	if res.Status != runctl.BudgetExhausted {
		t.Fatalf("seed leg status %v", res.Status)
	}
	res = Generate(sc, faults, Options{Seed: 6, Passes: 1,
		Control: &runctl.Control{Store: store, Resume: true}})
	if res.Status != runctl.Failed || res.Err == nil {
		t.Fatalf("changed-seed resume accepted: %v %v", res.Status, res.Err)
	}
}

// TestGenerateResumeAfterCompletion: resuming a finished run reloads the
// final checkpoint and returns the full result without regenerating.
func TestGenerateResumeAfterCompletion(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	opts := Options{Seed: 9, Passes: 1}
	ref := Generate(sc, faults, opts)

	store := runctl.NewMemStore()
	o := opts
	o.Control = &runctl.Control{Store: store}
	first := Generate(sc, faults, o)
	if first.Status != runctl.Complete {
		t.Fatalf("first run status %v", first.Status)
	}
	o.Control = &runctl.Control{Store: store, Resume: true}
	again := Generate(sc, faults, o)
	if again.Status != runctl.Resumed {
		t.Fatalf("post-completion resume status %v", again.Status)
	}
	if again.Sequence.String() != ref.Sequence.String() {
		t.Fatal("post-completion resume diverged from reference")
	}
	for fi := range faults {
		if again.DetectedAt[fi] != ref.DetectedAt[fi] {
			t.Fatalf("fault %d: %d vs %d", fi, again.DetectedAt[fi], ref.DetectedAt[fi])
		}
	}
}
