package seqatpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func TestRandomPhasePrefixesSequence(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	res := Generate(sc, faults, Options{Seed: 1, RandomPhase: 50, Passes: 1})
	if len(res.Sequence) < 50 {
		t.Fatalf("sequence shorter than the random phase: %d", len(res.Sequence))
	}
	// Detections claimed must still be confirmed independently.
	check := sim.Run(sc.Scan, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		if res.DetectedAt[fi] != sim.NotDetected && !check.Detected(fi) {
			t.Errorf("fault %d claimed but unconfirmed", fi)
		}
	}
}

func TestRandomPhaseCoverageNotWorse(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	plain := Generate(sc, faults, Options{Seed: 1, Passes: 1})
	phased := Generate(sc, faults, Options{Seed: 1, Passes: 1, RandomPhase: 100})
	// The phase may only help coverage (targeted generation still runs
	// after it); allow a tiny wobble from changed search randomness.
	if phased.NumDetected() < plain.NumDetected()-2 {
		t.Errorf("random phase hurt coverage: %d vs %d", phased.NumDetected(), plain.NumDetected())
	}
}

func TestRandomPhaseDeterministic(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	a := Generate(sc, faults, Options{Seed: 9, RandomPhase: 30, Passes: 1})
	b := Generate(sc, faults, Options{Seed: 9, RandomPhase: 30, Passes: 1})
	if len(a.Sequence) != len(b.Sequence) {
		t.Fatal("random phase nondeterministic")
	}
	for i := range a.Sequence {
		if a.Sequence[i].String() != b.Sequence[i].String() {
			t.Fatal("random phase sequences diverge")
		}
	}
}
