// Package seqatpg implements the paper's Section 2 test generation
// procedure: a forward-time sequential test generator for non-scan
// circuits, applied to the scan circuit C_scan with scan_sel and
// scan_inp treated as ordinary primary inputs — plus the
// "functional-level knowledge of scan" enhancement that flushes fault
// effects out of the scan chain when ordinary propagation fails.
//
// The generator builds the test sequence T by concatenating, per target
// fault, a subsequence generated forward in time from the final
// fault-free state reached under T. Each frame's input vector is chosen
// from a candidate pool — a deterministic PODEM suggestion for the
// single frame plus pseudo-random vectors — scored by how far the fault
// effect travels (detection ≫ effects latched in flip-flops, deeper
// chain positions preferred, then excitation and state initialization).
package seqatpg

import (
	"math/bits"

	"repro/internal/combatpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Options tunes the generator. Zero values select defaults.
type Options struct {
	// Seed drives every pseudo-random choice; runs are deterministic
	// in (circuit, fault list, Options).
	Seed uint64
	// MaxFrames bounds the length of one subsequence attempt
	// (default 2*NSV+10, capped at 80).
	MaxFrames int
	// Candidates is the number of vectors evaluated per frame,
	// including the PODEM suggestion (default 16, max 64).
	Candidates int
	// PodemBacktracks bounds the per-frame PODEM search (default 30).
	PodemBacktracks int
	// DisableScanKnowledge turns off the paper's functional-level
	// enhancement (flushing effects to scan_out); used for ablation.
	DisableScanKnowledge bool
	// Passes is how many times the undetected faults are retried with
	// fresh random choices (default 2).
	Passes int
	// RandomPhase prepends this many pseudo-random vectors before
	// targeted generation starts, detecting easy faults cheaply. The
	// paper's procedure does not use one (its sequences are compacted
	// afterwards anyway), so the default is 0.
	RandomPhase int
	// Workers is the fault-simulation worker count for stepping the
	// incremental fault batches (0 = GOMAXPROCS). The generated
	// sequence is identical for every value.
	Workers int
	// Control, when non-nil, threads budget/cancellation and optional
	// checkpointing through the run. Generate polls it before every
	// per-fault attempt; on a stop it saves its state under the
	// "generate" section and returns the partial result with the stop
	// Status. A resumed run continues the attempt loop exactly where it
	// stopped and produces a sequence bit-identical to an uninterrupted
	// run.
	Control *runctl.Control
	// Obs, when non-nil, receives the run's instrumentation under the
	// "generate" phase: per-attempt events, attempt/PODEM/flush
	// counters and the run timer (see docs/ALGORITHMS.md §11). Purely
	// observational — the generated sequence is identical with or
	// without it.
	Obs obs.Observer
}

func (o Options) withDefaults(nsv int) Options {
	if o.MaxFrames <= 0 {
		o.MaxFrames = 2*nsv + 10
		if o.MaxFrames > 80 {
			o.MaxFrames = 80
		}
	}
	if o.Candidates <= 0 {
		o.Candidates = 16
	}
	if o.Candidates > sim.Slots {
		o.Candidates = sim.Slots
	}
	if o.PodemBacktracks <= 0 {
		o.PodemBacktracks = 30
	}
	if o.Passes <= 0 {
		o.Passes = 2
	}
	return o
}

// Result is the outcome of Generate.
type Result struct {
	// Sequence is the generated test sequence for C_scan; its length
	// is the test application time in clock cycles.
	Sequence logic.Sequence
	// DetectedAt[i] is the vector index at which fault i is detected,
	// or sim.NotDetected.
	DetectedAt []int
	// Funct[i] marks faults detected through the scan-knowledge flush
	// mechanism (the paper's "funct" column in Table 5).
	Funct []bool
	// Status classifies the run: Complete/Resumed mark a full result,
	// any Stopped() status marks a partial one that a checkpoint can
	// continue.
	Status runctl.Status
	// Err carries the checkpoint load/save failure when Status is
	// Failed; it is nil otherwise.
	Err error
}

// NumDetected counts detected faults.
func (r Result) NumDetected() int {
	n := 0
	for _, t := range r.DetectedAt {
		if t != sim.NotDetected {
			n++
		}
	}
	return n
}

// NumFunct counts faults detected via the flush mechanism.
func (r Result) NumFunct() int {
	n := 0
	for _, f := range r.Funct {
		if f {
			n++
		}
	}
	return n
}

// Generate runs the Section 2 procedure on sc for the given fault list
// (normally fault.Universe of sc.Scan, which includes the scan logic's
// own faults).
func Generate(sc scan.Design, faults []fault.Fault, opts Options) Result {
	opts = opts.withDefaults(sc.NumStateVars())
	o := opts.Obs
	defer obs.T(o, "generate.time").Start()()
	cAttempts := obs.C(o, "generate.attempts")
	cSuccess := obs.C(o, "generate.attempt_success")
	cFlushDet := obs.C(o, "generate.flush_detections")
	gSeqLen := obs.G(o, "generate.seq_len")
	c := sc.ScanCircuit()
	s := sim.NewSimulator(c, opts.Workers)
	s.Observe(o)
	mgr := NewManagerSim(s, faults)
	defer mgr.Close()
	pod := combatpg.NewGenerator(c, combatpg.Options{
		ObservePPO:    true,
		MaxBacktracks: opts.PodemBacktracks,
	})
	// podFull may also assign the present state; its solutions are
	// justified through the scan chain (the paper's second use of
	// functional-level scan knowledge).
	podFull := combatpg.NewGenerator(c, combatpg.Options{
		AssignState:   true,
		ObservePPO:    true,
		MaxBacktracks: 10 * opts.PodemBacktracks,
	})
	rng := logic.NewRandFiller(opts.Seed ^ 0xA5A5A5A5)
	a := newAttempter(sc, opts, s)
	defer a.close()

	ctl := opts.Control
	var seq logic.Sequence
	funct := make([]bool, len(faults))
	startPass, startFault := 0, 0
	resumed := false
	if ctl.Resuming() {
		st, ckseq, ok, err := loadGenCheckpoint(ctl, opts, len(faults), c.NumInputs())
		if err != nil {
			ctl.Fail()
			return Result{DetectedAt: mgr.DetectedAt, Funct: funct, Status: runctl.Failed, Err: err}
		}
		if ok {
			resumed = true
			seq = ckseq
			// Replaying the sequence through the manager rebuilds the
			// good/faulty machine states and DetectedAt deterministically.
			mgr.AppendSequence(seq)
			for _, fi := range st.Funct {
				funct[fi] = true
			}
			rng.Restore(st.RNG)
			startPass, startFault = st.Pass, st.Fault
			if st.Done {
				startPass = opts.Passes // nothing left to do
			}
			obs.Emit(o, "generate", "resume",
				obs.F("pass", startPass), obs.F("fault", startFault), obs.F("seq_len", len(seq)))
		}
	}
	obs.Emit(o, "generate", "start",
		obs.F("faults", len(faults)), obs.F("passes", opts.Passes),
		obs.F("max_frames", opts.MaxFrames), obs.F("candidates", opts.Candidates))

	// The random phase (when enabled) is part of the checkpointed
	// sequence, so a resumed run must not replay it.
	if !resumed && opts.RandomPhase > 0 {
		phase := logic.NewRandFiller(opts.Seed ^ 0x52414E44)
		for i := 0; i < opts.RandomPhase; i++ {
			v := make(logic.Vector, c.NumInputs())
			for j := range v {
				v[j] = phase.Next()
			}
			seq = append(seq, v)
			mgr.Append(v)
		}
		obs.Emit(o, "generate", "random_phase",
			obs.F("vectors", opts.RandomPhase), obs.F("detected", mgr.NumDetected()))
	}

	status := runctl.Final(resumed)
	var ckErr error
loop:
	for pass := startPass; pass < opts.Passes; pass++ {
		fi0 := 0
		if pass == startPass {
			fi0 = startFault
		}
		for fi := fi0; fi < len(faults); fi++ {
			if mgr.Detected(fi) {
				continue
			}
			if st, stop := ctl.Attempt(); stop {
				// The checkpoint names (pass, fi) as the next attempt, so
				// it must be written before the attempt runs.
				status = st
				ckErr = saveGenCheckpoint(ctl, opts, len(faults), c.NumInputs(), pass, fi, seq, funct, rng, false, true)
				break loop
			}
			cAttempts.Inc()
			sub, flushStart, ok := a.attempt(faults[fi], mgr.GoodState(), mgr.FaultyState(fi), pod, podFull, rng)
			if ok {
				cSuccess.Inc()
				start := len(seq)
				seq = append(seq, sub...)
				mgr.AppendSequence(sub)
				if mgr.Detected(fi) && flushStart >= 0 && mgr.DetectedAt[fi] >= start+flushStart {
					funct[fi] = true
					cFlushDet.Inc()
				}
			}
			gSeqLen.Set(int64(len(seq)))
			if o != nil {
				o.Event("generate", "attempt",
					obs.F("pass", pass), obs.F("fault", fi), obs.F("ok", ok),
					obs.F("frames", a.frames), obs.F("flush", flushStart >= 0),
					obs.F("sub_len", len(sub)), obs.F("seq_len", len(seq)))
			}
			ckErr = saveGenCheckpoint(ctl, opts, len(faults), c.NumInputs(), pass, fi+1, seq, funct, rng, false, false)
		}
	}
	if status.Done() {
		ckErr = saveGenCheckpoint(ctl, opts, len(faults), c.NumInputs(), opts.Passes, 0, seq, funct, rng, true, true)
	}
	if ckErr != nil && status != runctl.Failed {
		ctl.Fail()
		status = runctl.Failed
	}
	res := Result{Sequence: seq, DetectedAt: mgr.DetectedAt, Funct: funct, Status: status, Err: ckErr}
	obs.Emit(o, "generate", "done",
		obs.F("vectors", len(seq)), obs.F("detected", res.NumDetected()),
		obs.F("funct", res.NumFunct()), obs.F("status", status.String()))
	return res
}

// attempter holds the per-attempt machinery (two simulation machines,
// drawn from the simulator's pool) reused across faults.
type attempter struct {
	sc   scan.Design
	opts Options
	sim  *sim.Simulator
	mg   *sim.Machine // fault-free
	mf   *sim.Machine // with the target fault in every slot
	// flushLen[f] caches sc.FlushLength(f); depthBonus[f] rewards
	// latched effects that are cheap to flush out.
	flushLen   []int
	depthBonus []int64

	// Observability (nil-safe): frames counts the candidate frames the
	// current attempt simulated — the per-fault effort the attempt
	// event reports.
	frames          int
	cFrames         *obs.Counter
	cPodemCalls     *obs.Counter
	cPodemBacktrack *obs.Counter
	cFlushVectors   *obs.Counter
}

func newAttempter(sc scan.Design, opts Options, s *sim.Simulator) *attempter {
	a := &attempter{
		sc:   sc,
		opts: opts,
		sim:  s,
		mg:   s.Acquire(),
		mf:   s.Acquire(),

		cFrames:         obs.C(opts.Obs, "generate.frames"),
		cPodemCalls:     obs.C(opts.Obs, "generate.podem_calls"),
		cPodemBacktrack: obs.C(opts.Obs, "generate.podem_backtracks"),
		cFlushVectors:   obs.C(opts.Obs, "generate.flush_vectors"),
	}
	c := sc.ScanCircuit()
	nsv := sc.NumStateVars()
	a.flushLen = make([]int, c.NumFFs())
	a.depthBonus = make([]int64, c.NumFFs())
	for f := range a.flushLen {
		a.flushLen[f] = sc.FlushLength(f)
		a.depthBonus[f] = int64(500*(nsv-a.flushLen[f])) / int64(nsv)
	}
	return a
}

// close returns the attempter's machines to the simulator pool.
func (a *attempter) close() {
	a.sim.Release(a.mg)
	a.sim.Release(a.mf)
}

// attempt tries to generate a subsequence detecting f starting from the
// given good/faulty states. It returns the subsequence, the index at
// which appended scan-knowledge flush vectors start (-1 when detection
// needed none), and whether it succeeded.
func (a *attempter) attempt(f fault.Fault, goodState, faultyState []logic.Value, pod, podFull *combatpg.Generator, rng *logic.RandFiller) (logic.Sequence, int, bool) {
	inject := func(m *sim.Machine) error { return m.InjectFault(f, sim.AllSlots) }
	return a.attemptWith(f, inject, goodState, faultyState, pod, podFull, rng)
}

// attemptWith is the model-agnostic core of attempt: inject installs
// the target fault (stuck-at, transition, ...) into the faulty machine;
// the PODEM oracles may be nil for fault models PODEM does not handle.
func (a *attempter) attemptWith(f fault.Fault, inject func(*sim.Machine) error, goodState, faultyState []logic.Value, pod, podFull *combatpg.Generator, rng *logic.RandFiller) (logic.Sequence, int, bool) {
	a.mg.ClearFaults()
	a.mg.SetStateBroadcast(goodState)
	a.mf.ClearFaults()
	if err := inject(a.mf); err != nil {
		return nil, -1, false
	}
	a.mf.Reset() // clear any transition-fault history
	a.mf.SetStateBroadcast(faultyState)

	var sub logic.Sequence
	bestFFPos, bestPrefix := -1, -1

	a.frames = 0
	for frame := 0; frame < a.opts.MaxFrames; frame++ {
		a.frames++
		a.cFrames.Inc()
		cands := a.candidates(f, pod, rng)
		gSnap, fSnap := a.mg.SaveState(), a.mf.SaveState()
		a.mg.StepMulti(cands)
		a.mf.StepMulti(cands)
		slot, detected := a.pickBest(f, len(cands), rng)
		a.mg.RestoreState(gSnap)
		a.mf.RestoreState(fSnap)

		chosen := cands[slot]
		a.mg.Step(chosen)
		a.mf.Step(chosen)
		sub = append(sub, chosen)
		if detected {
			return sub, -1, true
		}
		// Track the deepest chain position holding a latched effect
		// (larger index = nearer scan_out = shorter flush).
		if pos := a.deepestLatchedEffect(); pos > bestFFPos {
			bestFFPos, bestPrefix = pos, len(sub)
		}
	}

	if a.opts.DisableScanKnowledge {
		return nil, -1, false
	}
	// First use of functional-level scan knowledge: an effect reached
	// flip-flop bestFFPos during the forward search; flush it out.
	if bestFFPos >= 0 {
		if seq, flushStart, ok := a.withFlush(goodState, faultyState, sub[:bestPrefix], rng); ok {
			return seq, flushStart, true
		}
	}
	// Second use: justify an arbitrary activation state through the
	// scan chain. PODEM with full state controllability finds (s, v);
	// the chain loads s in NSV shifts, then v is applied.
	if podFull == nil {
		return nil, -1, false
	}
	return a.justifyAttempt(f, goodState, faultyState, podFull, rng)
}

// withFlush appends flush vectors for the deepest latched effect of the
// prefix plus one observation vector, and verifies detection.
func (a *attempter) withFlush(goodState, faultyState []logic.Value, prefix logic.Sequence, rng *logic.RandFiller) (logic.Sequence, int, bool) {
	c := a.sc.ScanCircuit()
	// Re-simulate the prefix to find the latched effect position at
	// its end (the caller truncated to the best prefix).
	a.mg.SetStateBroadcast(goodState)
	a.mf.Reset() // transition-fault history restarts with the replay
	a.mf.SetStateBroadcast(faultyState)
	for _, v := range prefix {
		a.mg.Step(v)
		a.mf.Step(v)
	}
	pos := a.deepestLatchedEffect()
	if pos < 0 {
		return nil, -1, false
	}
	seq := append(logic.Sequence{}, prefix...)
	flushStart := len(seq)
	fv := a.sc.FlushVectors(pos)
	a.cFlushVectors.Add(int64(len(fv)))
	for _, v := range fv {
		w := v.Clone()
		fillRandom(w, rng)
		seq = append(seq, w)
	}
	obs := logic.NewVector(c.NumInputs())
	obs[a.sc.SelInput()] = logic.Zero
	fillRandom(obs, rng)
	seq = append(seq, obs)

	det := a.simulateDetect(goodState, faultyState, seq)
	if det < 0 {
		return nil, -1, false
	}
	return seq[:det+1], flushStart, true
}

// justifyAttempt finds a single-frame test (state, vector) with PODEM,
// loads the state through the scan chain, applies the vector, and — if
// the detection was at a flip-flop rather than a primary output —
// flushes the latched effect to scan_out.
func (a *attempter) justifyAttempt(f fault.Fault, goodState, faultyState []logic.Value, podFull *combatpg.Generator, rng *logic.RandFiller) (logic.Sequence, int, bool) {
	r := podFull.Generate(f)
	a.cPodemCalls.Inc()
	a.cPodemBacktrack.Add(int64(r.Backtracks))
	if r.Status != combatpg.Success {
		return nil, -1, false
	}
	fillRandom(r.State, rng)
	fillRandom(r.Vector, rng)
	scanin, err := a.sc.ScanInSequence(r.State)
	if err != nil {
		return nil, -1, false
	}
	seq := make(logic.Sequence, 0, len(scanin)+2+a.sc.NumStateVars())
	for _, v := range scanin {
		w := v.Clone()
		fillRandom(w, rng)
		seq = append(seq, w)
	}
	seq = append(seq, r.Vector)

	// The frame may already expose the fault on a primary output.
	if det := a.simulateDetect(goodState, faultyState, seq); det >= 0 {
		return seq[:det+1], -1, true
	}
	// Otherwise the effect (if any) is latched; flush it.
	return a.withFlush(goodState, faultyState, seq, rng)
}

// simulateDetect re-simulates seq from the given start states and
// returns the first vector index with a definite discrepancy on a
// primary output, or -1. The rule matches the Manager's.
func (a *attempter) simulateDetect(goodState, faultyState []logic.Value, seq logic.Sequence) int {
	c := a.sc.ScanCircuit()
	a.mg.SetStateBroadcast(goodState)
	a.mf.Reset() // transition-fault history restarts with the replay
	a.mf.SetStateBroadcast(faultyState)
	for t, v := range seq {
		a.mg.Step(v)
		a.mf.Step(v)
		for po := 0; po < c.NumOutputs(); po++ {
			gz, gd := a.mg.OutputPlanes(po)
			fz, fd := a.mf.OutputPlanes(po)
			if effectMask(gz, gd, fz, fd)&1 != 0 {
				return t
			}
		}
	}
	return -1
}

// candidates builds the per-frame candidate pool: the PODEM suggestion
// (when one exists) followed by random binary vectors.
func (a *attempter) candidates(f fault.Fault, pod *combatpg.Generator, rng *logic.RandFiller) []logic.Vector {
	c := a.sc.ScanCircuit()
	var cands []logic.Vector
	if pod != nil {
		pod.SetStates(a.mg.StateSlot(0), a.mf.StateSlot(0))
		r := pod.Generate(f)
		a.cPodemCalls.Inc()
		a.cPodemBacktrack.Add(int64(r.Backtracks))
		if r.Status == combatpg.Success {
			v := r.Vector
			fillRandom(v, rng)
			cands = append(cands, v)
		}
	}
	for len(cands) < a.opts.Candidates {
		v := make(logic.Vector, c.NumInputs())
		for i := range v {
			v[i] = rng.Next()
		}
		cands = append(cands, v)
	}
	return cands
}

func fillRandom(v logic.Vector, rng *logic.RandFiller) {
	for i, x := range v {
		if x == logic.X {
			v[i] = rng.Next()
		}
	}
}

// effectMask returns, per slot, whether the good and faulty planes hold
// definite opposite values.
func effectMask(gz, gd, fz, fd uint64) uint64 {
	g0 := gz &^ gd
	g1 := gd &^ gz
	f0 := fz &^ fd
	f1 := fd &^ fz
	return (g0 & f1) | (g1 & f0)
}

// pickBest scores every candidate slot after a StepMulti on both
// machines and returns the best slot and whether it detects the fault
// at a primary output.
func (a *attempter) pickBest(f fault.Fault, n int, rng *logic.RandFiller) (int, bool) {
	c := a.sc.ScanCircuit()
	var detect uint64
	for po := 0; po < c.NumOutputs(); po++ {
		gz, gd := a.mg.OutputPlanes(po)
		fz, fd := a.mf.OutputPlanes(po)
		detect |= effectMask(gz, gd, fz, fd)
	}
	nMask := sim.AllSlots
	if n < sim.Slots {
		nMask = (uint64(1) << uint(n)) - 1
	}
	if d := detect & nMask; d != 0 {
		return bits.TrailingZeros64(d), true
	}

	scores := make([]int64, n)
	// Latched effects in the scan chain, weighted by count and depth.
	for fi := 0; fi < c.NumFFs(); fi++ {
		gz, gd := a.mg.FFPlanes(fi)
		fz, fd := a.mf.FFPlanes(fi)
		em := effectMask(gz, gd, fz, fd) & nMask
		for m := em; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			scores[k] += 10000 + a.depthBonus[fi]
		}
	}
	// Excitation: effects anywhere in the combinational logic.
	for s := range c.Signals {
		sig := netlist.SignalID(s)
		gz, gd := a.mg.SignalPlanes(sig)
		fz, fd := a.mf.SignalPlanes(sig)
		em := effectMask(gz, gd, fz, fd) & nMask
		for m := em; m != 0; m &= m - 1 {
			k := bits.TrailingZeros64(m)
			if scores[k] < 10000 { // cap below the latched-effect band
				scores[k] += 20
			}
		}
		if f.Site.Signal == sig {
			// Small extra reward for exciting the target site.
			for m := em; m != 0; m &= m - 1 {
				scores[bits.TrailingZeros64(m)] += 50
			}
		}
	}
	// State initialization: binary fault-free flip-flop values.
	for fi := 0; fi < c.NumFFs(); fi++ {
		gz, gd := a.mg.FFPlanes(fi)
		known := (gz ^ gd) & nMask // exactly one plane set = binary
		for m := known; m != 0; m &= m - 1 {
			scores[bits.TrailingZeros64(m)]++
		}
	}
	best, bestScore := 0, int64(-1)
	for k := 0; k < n; k++ {
		// Deterministic jitter breaks ties without biasing slot 0.
		s := scores[k]*8 + int64(rng.Intn(8))
		if s > bestScore {
			bestScore = s
			best = k
		}
	}
	return best, false
}

// deepestLatchedEffect returns the largest chain position whose flip-
// flop holds a definite fault effect in slot 0 of the current states,
// or -1.
func (a *attempter) deepestLatchedEffect() int {
	c := a.sc.ScanCircuit()
	for fi := c.NumFFs() - 1; fi >= 0; fi-- {
		gz, gd := a.mg.FFPlanes(fi)
		fz, fd := a.mf.FFPlanes(fi)
		if effectMask(gz, gd, fz, fd)&1 != 0 {
			return fi
		}
	}
	return -1
}
