package seqatpg

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/transition"
)

func TestGenerateTransitionS27(t *testing.T) {
	sc := loadScan(t, "s27")
	tf := transition.Universe(sc.Scan)
	res := GenerateTransition(sc, tf, Options{Seed: 1})
	cov := 100 * float64(res.NumDetected()) / float64(len(tf))
	if cov < 70 {
		t.Errorf("transition ATPG coverage on s27 = %.2f%%, want >= 70%%", cov)
	}
	// Claims confirmed by the independent transition fault simulator.
	check := transition.Run(sc.Scan, res.Sequence, tf)
	for fi := range tf {
		if res.DetectedAt[fi] != sim.NotDetected && check.DetectedAt[fi] == sim.NotDetected {
			t.Errorf("transition fault %s claimed but unconfirmed", tf[fi].Name(sc.Scan))
		}
	}
}

func TestGenerateTransitionVsGrading(t *testing.T) {
	sc := loadScan(t, "s298")
	tf := transition.Universe(sc.Scan)
	// Free coverage from grading a stuck-at sequence vs dedicated
	// targeting. Neither dominates in principle (grading rides on a
	// longer, PODEM-guided sequence; targeting chases the remainder),
	// but targeting must land in the same coverage class and the
	// combined sequence must cover at least as much as either alone.
	sa := Generate(sc, fault.Universe(sc.Scan, true), Options{Seed: 1, Passes: 1})
	graded := transition.Run(sc.Scan, sa.Sequence, tf)
	targeted := GenerateTransition(sc, tf, Options{Seed: 1})
	if targeted.NumDetected()*10 < graded.NumDetected()*8 {
		t.Errorf("targeted transition ATPG (%d) far below free grading (%d)",
			targeted.NumDetected(), graded.NumDetected())
	}
	combined := append(sa.Sequence.Clone(), targeted.Sequence...)
	both := transition.Run(sc.Scan, combined, tf)
	if both.NumDetected() < graded.NumDetected() || both.NumDetected() < targeted.NumDetected() {
		t.Error("combined sequence covers less than a component")
	}
	t.Logf("graded %d, targeted %d, combined %d of %d",
		graded.NumDetected(), targeted.NumDetected(), both.NumDetected(), len(tf))
}

func TestGenerateTransitionDeterministic(t *testing.T) {
	sc := loadScan(t, "s27")
	tf := transition.Universe(sc.Scan)
	a := GenerateTransition(sc, tf, Options{Seed: 5, Passes: 1})
	b := GenerateTransition(sc, tf, Options{Seed: 5, Passes: 1})
	if len(a.Sequence) != len(b.Sequence) {
		t.Fatal("nondeterministic")
	}
}
