package seqatpg

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/runctl"
)

// genSection is the checkpoint-store section Generate owns.
const genSection = "generate"

// genCheckpoint is the persisted state of an interrupted Generate run:
// the sequence built so far (replayed through the Manager on resume to
// rebuild good/faulty machine states and DetectedAt), the loop position
// of the next attempt, the funct flags decided so far, and the RNG
// state — everything needed to make the resumed run bit-identical to an
// uninterrupted one.
type genCheckpoint struct {
	// Params fingerprints the options that shape the search; resuming
	// under different options would silently diverge, so it is rejected.
	Params string `json:"params"`
	Faults int    `json:"faults"`
	Inputs int    `json:"inputs"`

	Pass     int    `json:"pass"`
	Fault    int    `json:"fault"` // next fault index to attempt
	Sequence string `json:"sequence"`
	Funct    []int  `json:"funct"` // fault indices flagged funct so far
	RNG      uint64 `json:"rng"`
	Done     bool   `json:"done"`
}

// genParams fingerprints every option that influences the generated
// sequence (worker count deliberately excluded: results are identical
// for every value).
func genParams(opts Options) string {
	return fmt.Sprintf("seed=%d passes=%d frames=%d cands=%d podem=%d noscan=%v rand=%d",
		opts.Seed, opts.Passes, opts.MaxFrames, opts.Candidates,
		opts.PodemBacktracks, opts.DisableScanKnowledge, opts.RandomPhase)
}

// loadGenCheckpoint restores a prior Generate run. It returns the
// parsed checkpoint and sequence, or ok=false when no checkpoint
// section exists.
func loadGenCheckpoint(ctl *runctl.Control, opts Options, nFaults, nInputs int) (st genCheckpoint, seq logic.Sequence, ok bool, err error) {
	ok, err = ctl.Load(genSection, &st)
	if err != nil || !ok {
		return st, nil, false, err
	}
	if want := genParams(opts); st.Params != want {
		return st, nil, false, fmt.Errorf("seqatpg: checkpoint generated under %q, run uses %q", st.Params, want)
	}
	if st.Faults != nFaults || st.Inputs != nInputs {
		return st, nil, false, fmt.Errorf("seqatpg: checkpoint for %d faults / %d inputs, run has %d / %d",
			st.Faults, st.Inputs, nFaults, nInputs)
	}
	seq, err = logic.ParseSequence(st.Sequence)
	if err != nil {
		return st, nil, false, fmt.Errorf("seqatpg: checkpoint sequence corrupt: %w", err)
	}
	if len(seq) > 0 && len(seq[0]) != nInputs {
		return st, nil, false, fmt.Errorf("seqatpg: checkpoint vector width %d, circuit has %d inputs", len(seq[0]), nInputs)
	}
	for fi := range st.Funct {
		if st.Funct[fi] < 0 || st.Funct[fi] >= nFaults {
			return st, nil, false, fmt.Errorf("seqatpg: checkpoint funct index %d out of range", st.Funct[fi])
		}
	}
	return st, seq, true, nil
}

// saveGenCheckpoint persists the loop state; final (stop or completion)
// saves bypass the periodic throttle.
func saveGenCheckpoint(ctl *runctl.Control, opts Options, nFaults, nInputs, pass, fi int, seq logic.Sequence, funct []bool, rng *logic.RandFiller, done, final bool) error {
	if ctl == nil || ctl.Store == nil {
		return nil
	}
	st := genCheckpoint{
		Params:   genParams(opts),
		Faults:   nFaults,
		Inputs:   nInputs,
		Pass:     pass,
		Fault:    fi,
		Sequence: seq.String(),
		RNG:      rng.State(),
		Done:     done,
	}
	for i, f := range funct {
		if f {
			st.Funct = append(st.Funct, i)
		}
	}
	if final {
		return ctl.Save(genSection, st)
	}
	return ctl.Checkpoint(genSection, st)
}
