package seqatpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
)

func loadScan(t *testing.T, name string) *scan.Circuit {
	t.Helper()
	c, err := circuits.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestGenerateS27FullCoverage(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	res := Generate(sc, faults, Options{Seed: 1})
	if got := res.NumDetected(); got != len(faults) {
		t.Fatalf("detected %d/%d faults on s27_scan", got, len(faults))
	}
	if len(res.Sequence) == 0 {
		t.Fatal("empty sequence")
	}
	for _, v := range res.Sequence {
		if len(v) != sc.Scan.NumInputs() {
			t.Fatal("vector width mismatch")
		}
		if !v.Specified() {
			t.Fatal("generated sequence contains X values")
		}
	}
}

// TestGenerateDetectionsConfirmedByFaultSim is the key soundness check:
// every detection the generator claims must be reproduced by the
// independent fault simulator on the final sequence.
func TestGenerateDetectionsConfirmedByFaultSim(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	res := Generate(sc, faults, Options{Seed: 7})
	check := sim.Run(sc.Scan, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		claimed := res.DetectedAt[fi] != sim.NotDetected
		actual := check.Detected(fi)
		if claimed && !actual {
			t.Errorf("fault %s claimed detected but fault sim disagrees", faults[fi].Name(sc.Scan))
		}
		// The independent simulation may detect strictly more (other
		// subsequences can catch a fault the generator gave up on),
		// but never less.
	}
}

func TestGenerateDeterministic(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	a := Generate(sc, faults, Options{Seed: 3, Passes: 1})
	b := Generate(sc, faults, Options{Seed: 3, Passes: 1})
	if len(a.Sequence) != len(b.Sequence) {
		t.Fatalf("nondeterministic lengths: %d vs %d", len(a.Sequence), len(b.Sequence))
	}
	for i := range a.Sequence {
		if a.Sequence[i].String() != b.Sequence[i].String() {
			t.Fatalf("sequences diverge at %d", i)
		}
	}
}

func TestGenerateUsesLimitedScan(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	res := Generate(sc, faults, Options{Seed: 1})
	// The sequence must mix functional vectors and scan vectors; a
	// pure complete-scan pattern would make every run of scan_sel = 1
	// a multiple of NSV.
	nScan := sc.CountScanVectors(res.Sequence)
	if nScan == 0 || nScan == len(res.Sequence) {
		t.Fatalf("degenerate scan usage: %d of %d", nScan, len(res.Sequence))
	}
	// Look for at least one limited scan operation: a maximal run of
	// scan_sel = 1 vectors shorter than NSV.
	run, sawLimited := 0, false
	for _, v := range res.Sequence {
		if sc.IsScanSel(v) {
			run++
			continue
		}
		if run > 0 && run < sc.NSV {
			sawLimited = true
		}
		run = 0
	}
	if run > 0 && run < sc.NSV {
		sawLimited = true
	}
	if !sawLimited {
		t.Error("no limited scan operations in the generated sequence")
	}
}

func TestScanKnowledgeAblation(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	with := Generate(sc, faults, Options{Seed: 1, Passes: 1})
	without := Generate(sc, faults, Options{Seed: 1, Passes: 1, DisableScanKnowledge: true})
	if with.NumDetected() < without.NumDetected() {
		t.Errorf("scan knowledge reduced coverage: %d < %d", with.NumDetected(), without.NumDetected())
	}
	if without.NumFunct() != 0 {
		t.Error("ablated run reported funct detections")
	}
}

func TestFunctCountsAreFlushDetections(t *testing.T) {
	sc := loadScan(t, "s298")
	faults := fault.Universe(sc.Scan, true)
	res := Generate(sc, faults, Options{Seed: 1})
	for fi, fl := range res.Funct {
		if fl && res.DetectedAt[fi] == sim.NotDetected {
			t.Errorf("fault %d marked funct but not detected", fi)
		}
	}
	if res.NumFunct() == 0 {
		t.Log("note: no flush detections on this seed (not an error)")
	}
}

func TestManagerIncrementalMatchesBatchRun(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)
	rng := logic.NewRandFiller(55)
	seq := make(logic.Sequence, 40)
	for i := range seq {
		v := make(logic.Vector, sc.Scan.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	mgr := NewManager(sc.Scan, faults)
	mgr.AppendSequence(seq)
	ref := sim.Run(sc.Scan, seq, faults, sim.Options{})
	for fi := range faults {
		if mgr.DetectedAt[fi] != ref.DetectedAt[fi] {
			t.Errorf("fault %d: manager=%d run=%d", fi, mgr.DetectedAt[fi], ref.DetectedAt[fi])
		}
	}
	if mgr.Len() != len(seq) {
		t.Errorf("Len = %d", mgr.Len())
	}
}

func TestManagerGoodStateMatchesFinalState(t *testing.T) {
	sc := loadScan(t, "s27")
	faults := fault.Universe(sc.Scan, true)[:3]
	mgr := NewManager(sc.Scan, faults)
	seq := logic.Sequence{
		sc.ShiftVector(logic.One),
		sc.ShiftVector(logic.Zero),
	}
	for i := range seq {
		fillRandom(seq[i], logic.NewRandFiller(uint64(i+1)))
	}
	mgr.AppendSequence(seq)
	want := sim.FinalState(sc.Scan, seq, nil)
	got := mgr.GoodState()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FF %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestManagerFaultyStateDiverges(t *testing.T) {
	sc := loadScan(t, "s27")
	// A stuck-at-1 on scan_inp makes scanned-in zeros ones.
	inpSig := sc.Scan.Inputs[sc.InpPI]
	f := fault.Fault{Site: fault.Site{Signal: inpSig, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}
	mgr := NewManager(sc.Scan, []fault.Fault{f})
	// Shift in three zeros.
	for i := 0; i < sc.NSV; i++ {
		v := sc.ShiftVector(logic.Zero)
		fillRandom(v, logic.NewRandFiller(uint64(i+9)))
		mgr.Append(v)
	}
	good, bad := mgr.GoodState(), mgr.FaultyState(0)
	same := true
	for i := range good {
		if good[i] != bad[i] {
			same = false
		}
	}
	if same {
		t.Error("faulty state identical to good state despite scan_inp SA1")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(10)
	if o.MaxFrames != 30 || o.Candidates != 16 || o.Passes != 2 || o.PodemBacktracks != 30 {
		t.Errorf("defaults = %+v", o)
	}
	big := Options{}.withDefaults(100)
	if big.MaxFrames != 80 {
		t.Errorf("MaxFrames cap = %d", big.MaxFrames)
	}
	wide := Options{Candidates: 999}.withDefaults(10)
	if wide.Candidates != sim.Slots {
		t.Errorf("Candidates cap = %d", wide.Candidates)
	}
}
