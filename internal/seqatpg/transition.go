package seqatpg

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/transition"
)

// TransitionResult reports transition-fault test generation.
type TransitionResult struct {
	// Sequence is the generated test sequence for C_scan.
	Sequence logic.Sequence
	// DetectedAt[i] is the detecting vector index for transition fault
	// i, or sim.NotDetected.
	DetectedAt []int
}

// NumDetected counts detected transition faults.
func (r TransitionResult) NumDetected() int {
	n := 0
	for _, t := range r.DetectedAt {
		if t != sim.NotDetected {
			n++
		}
	}
	return n
}

// GenerateTransition runs the Section 2 forward search against the
// gross-delay transition fault model: the candidate-vector fitness and
// the flush-to-scan-out mechanism carry over unchanged (they operate on
// value planes, not on the fault model), while the PODEM oracles —
// which only understand stuck-at faults — are disabled. A transition
// fault needs consecutive at-speed cycles exercising both values of its
// site, which the search discovers through the same effect-latching
// reward.
func GenerateTransition(sc scan.Design, faults []transition.Fault, opts Options) TransitionResult {
	opts = opts.withDefaults(sc.NumStateVars())
	c := sc.ScanCircuit()
	s := sim.NewSimulator(c, opts.Workers)
	mgr := newTransManager(c, faults)
	rng := logic.NewRandFiller(opts.Seed ^ 0x7452414E)
	a := newAttempter(sc, opts, s)
	defer a.close()

	var seq logic.Sequence
	for pass := 0; pass < opts.Passes; pass++ {
		for fi := range faults {
			if mgr.detected(fi) {
				continue
			}
			f := faults[fi]
			// A pseudo stuck-at fault carries the focus signal for
			// the candidate fitness; injection installs the real
			// transition fault.
			focus := fault.Fault{Site: fault.Site{Signal: f.Signal, Gate: -1, Pin: -1, FF: -1}}
			inject := func(m *sim.Machine) error {
				return m.InjectTransitionFault(f.Signal, f.SlowToRise, sim.AllSlots)
			}
			sub, _, ok := a.attemptWith(focus, inject, mgr.goodState(), mgr.faultyState(fi), nil, nil, rng)
			if !ok {
				continue
			}
			seq = append(seq, sub...)
			mgr.appendSequence(sub)
		}
	}
	return TransitionResult{Sequence: seq, DetectedAt: mgr.detAt}
}

// transManager mirrors Manager for transition faults: per-batch
// machines carry every undetected fault's state (including its one-
// cycle delay history) through the growing sequence.
type transManager struct {
	c       *netlist.Circuit
	faults  []transition.Fault
	good    *sim.Machine
	batches []*transBatch
	detAt   []int
	now     int
}

type transBatch struct {
	m     *sim.Machine
	start int
	n     int
	alive uint64
}

func newTransManager(c *netlist.Circuit, faults []transition.Fault) *transManager {
	mgr := &transManager{
		c:      c,
		faults: faults,
		good:   sim.New(c),
		detAt:  make([]int, len(faults)),
	}
	for i := range mgr.detAt {
		mgr.detAt[i] = sim.NotDetected
	}
	for start := 0; start < len(faults); start += sim.Slots {
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		b := &transBatch{m: sim.New(c), start: start, n: end - start}
		for k := start; k < end; k++ {
			if err := b.m.InjectTransitionFault(faults[k].Signal, faults[k].SlowToRise, uint64(1)<<uint(k-start)); err != nil {
				panic(err)
			}
			b.alive |= uint64(1) << uint(k-start)
		}
		mgr.batches = append(mgr.batches, b)
	}
	return mgr
}

func (mgr *transManager) detected(i int) bool { return mgr.detAt[i] != sim.NotDetected }

func (mgr *transManager) goodState() []logic.Value { return mgr.good.StateSlot(0) }

func (mgr *transManager) faultyState(i int) []logic.Value {
	b := mgr.batches[i/sim.Slots]
	return b.m.StateSlot(i % sim.Slots)
}

func (mgr *transManager) appendSequence(seq logic.Sequence) {
	for _, v := range seq {
		mgr.append(v)
	}
}

func (mgr *transManager) append(v logic.Vector) {
	mgr.good.Step(v)
	nPO := mgr.c.NumOutputs()
	goodVals := make([]logic.Value, nPO)
	for po := 0; po < nPO; po++ {
		goodVals[po] = mgr.good.OutputSlot(po, 0)
	}
	for _, b := range mgr.batches {
		if b.alive == 0 {
			continue
		}
		b.m.Step(v)
		var det uint64
		for po := 0; po < nPO; po++ {
			if !goodVals[po].IsBinary() {
				continue
			}
			gz, gd := valuePlanes(goodVals[po])
			fz, fd := b.m.OutputPlanes(po)
			det |= sim.DetectMask(gz, gd, fz, fd)
		}
		det &= b.alive
		if det != 0 {
			b.alive &^= det
			for k := 0; k < b.n; k++ {
				if det&(uint64(1)<<uint(k)) != 0 {
					mgr.detAt[b.start+k] = mgr.now
				}
			}
		}
	}
	mgr.now++
}
