package seqatpg

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// minParallelBatches is the smallest number of fault batches for which
// Append fans stepping out across workers; below it the goroutine
// hand-off costs more than the stepping.
const minParallelBatches = 8

// faultBatch carries up to 64 faults through the growing test sequence
// in one bit-parallel machine, so appending a vector costs a single
// simulation step per batch instead of a re-simulation of the whole
// sequence.
type faultBatch struct {
	m      *sim.Machine
	global []int  // global fault indices, slot-aligned
	alive  uint64 // slots not yet detected
	newly  []int  // per-Append scratch: indices detected this vector
}

// Manager tracks the good circuit state and every undetected fault's
// faulty state as the test sequence grows vector by vector.
type Manager struct {
	c       *netlist.Circuit
	sim     *sim.Simulator
	faults  []fault.Fault
	good    *sim.Machine
	batches []*faultBatch

	// DetectedAt[i] is the vector index detecting fault i, or -1.
	DetectedAt []int
	now        int // number of vectors appended so far
}

// NewManager builds a Manager over the full fault list with the
// sequence empty and every flip-flop at X, using a private single-
// worker simulator.
func NewManager(c *netlist.Circuit, faults []fault.Fault) *Manager {
	return NewManagerSim(sim.NewSimulator(c, 1), faults)
}

// NewManagerSim is NewManager drawing machines from (and stepping fault
// batches across the workers of) an existing simulator. Call Close when
// the manager is no longer needed to return its machines to the pool.
func NewManagerSim(s *sim.Simulator, faults []fault.Fault) *Manager {
	mgr := &Manager{
		c:          s.Circuit(),
		sim:        s,
		faults:     faults,
		good:       s.Acquire(),
		DetectedAt: make([]int, len(faults)),
	}
	for i := range mgr.DetectedAt {
		mgr.DetectedAt[i] = sim.NotDetected
	}
	for start := 0; start < len(faults); start += sim.Slots {
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		b := &faultBatch{m: s.Acquire()}
		for k := start; k < end; k++ {
			b.global = append(b.global, k)
			if err := b.m.InjectFault(faults[k], uint64(1)<<uint(k-start)); err != nil {
				panic(err)
			}
			b.alive |= uint64(1) << uint(k-start)
		}
		mgr.batches = append(mgr.batches, b)
	}
	return mgr
}

// Close returns the manager's machines to the simulator pool. The
// manager must not be used afterwards; DetectedAt stays valid.
func (mgr *Manager) Close() {
	mgr.sim.Release(mgr.good)
	for _, b := range mgr.batches {
		mgr.sim.Release(b.m)
	}
	mgr.batches = nil
}

// Len returns the number of vectors appended so far.
func (mgr *Manager) Len() int { return mgr.now }

// GoodState returns the fault-free state after the appended sequence.
func (mgr *Manager) GoodState() []logic.Value { return mgr.good.StateSlot(0) }

// NumDetected counts detected faults.
func (mgr *Manager) NumDetected() int {
	n := 0
	for _, t := range mgr.DetectedAt {
		if t != sim.NotDetected {
			n++
		}
	}
	return n
}

// Detected reports whether fault i has been detected.
func (mgr *Manager) Detected(i int) bool { return mgr.DetectedAt[i] != sim.NotDetected }

// FaultyState returns the faulty-circuit state of fault i after the
// appended sequence.
func (mgr *Manager) FaultyState(i int) []logic.Value {
	b, slot := mgr.locate(i)
	return b.m.StateSlot(slot)
}

func (mgr *Manager) locate(i int) (*faultBatch, int) {
	return mgr.batches[i/sim.Slots], i % sim.Slots
}

// Append applies one vector to the good machine and every batch,
// recording new detections at the current time index. It returns the
// global indices of newly detected faults. Batches step concurrently
// when the simulator has spare workers; detections are reassembled in
// batch order, so the result is identical to serial stepping.
func (mgr *Manager) Append(v logic.Vector) []int {
	mgr.good.Step(v)
	nPO := mgr.c.NumOutputs()
	goodVals := make([]logic.Value, nPO)
	for po := 0; po < nPO; po++ {
		goodVals[po] = mgr.good.OutputSlot(po, 0)
	}
	nw := mgr.sim.Workers()
	if nw > len(mgr.batches) {
		nw = len(mgr.batches)
	}
	if nw <= 1 || len(mgr.batches) < minParallelBatches {
		var newly []int
		for _, b := range mgr.batches {
			newly = append(newly, mgr.stepBatch(b, v, goodVals)...)
		}
		mgr.now++
		return newly
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				bi := int(next.Add(1)) - 1
				if bi >= len(mgr.batches) {
					return
				}
				b := mgr.batches[bi]
				b.newly = mgr.stepBatch(b, v, goodVals)
			}
		}()
	}
	wg.Wait()
	var newly []int
	for _, b := range mgr.batches {
		newly = append(newly, b.newly...)
		b.newly = nil
	}
	mgr.now++
	return newly
}

// stepBatch advances one batch by v and records its new detections,
// returning their global indices. DetectedAt writes are disjoint across
// batches, so stepBatch may run concurrently for different batches.
func (mgr *Manager) stepBatch(b *faultBatch, v logic.Vector, goodVals []logic.Value) []int {
	if b.alive == 0 {
		// Detected batches still step so their state stays
		// meaningful, but cheaply skipping them is safe because
		// no one asks for a detected fault's state.
		return nil
	}
	b.m.Step(v)
	var det uint64
	for po := range goodVals {
		if !goodVals[po].IsBinary() {
			continue
		}
		gz, gd := valuePlanes(goodVals[po])
		fz, fd := b.m.OutputPlanes(po)
		det |= sim.DetectMask(gz, gd, fz, fd)
	}
	det &= b.alive
	if det == 0 {
		return nil
	}
	b.alive &^= det
	var newly []int
	for k, gi := range b.global {
		if det&(uint64(1)<<uint(k)) != 0 {
			mgr.DetectedAt[gi] = mgr.now
			newly = append(newly, gi)
		}
	}
	return newly
}

// AppendSequence appends every vector of seq in order and returns all
// newly detected fault indices.
func (mgr *Manager) AppendSequence(seq logic.Sequence) []int {
	var newly []int
	for _, v := range seq {
		newly = append(newly, mgr.Append(v)...)
	}
	return newly
}

func valuePlanes(v logic.Value) (z, o uint64) {
	switch v {
	case logic.Zero:
		return sim.AllSlots, 0
	case logic.One:
		return 0, sim.AllSlots
	default:
		return sim.AllSlots, sim.AllSlots
	}
}
