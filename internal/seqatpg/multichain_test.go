package seqatpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestGenerateOnMultipleChains exercises the paper's claim that the
// procedures apply unchanged to circuits with multiple scan chains.
func TestGenerateOnMultipleChains(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.InsertChains(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(ch.Scan, true)
	res := Generate(ch, faults, Options{Seed: 1})
	cov := 100 * float64(res.NumDetected()) / float64(len(faults))
	if cov < 99 {
		t.Errorf("coverage on 3-chain s298 = %.2f%%", cov)
	}
	// Claims verified by the independent simulator.
	check := sim.Run(ch.Scan, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		if res.DetectedAt[fi] != sim.NotDetected && !check.Detected(fi) {
			t.Errorf("fault %s claimed but unconfirmed", faults[fi].Name(ch.Scan))
		}
	}
}

// TestMultiChainShorterScanOps: with k chains a complete load takes
// only ceil(NSV/k) cycles, so generated sequences should not contain
// scan_sel=1 runs longer than a few complete loads.
func TestMultiChainFlushLengthsShrink(t *testing.T) {
	c, _ := circuits.Load("s298")
	one, _ := scan.InsertChains(c, 1)
	four, _ := scan.InsertChains(c, 4)
	for f := 0; f < c.NumFFs(); f++ {
		if four.FlushLength(f) > one.FlushLength(f) {
			t.Errorf("FF %d: 4-chain flush %d > 1-chain flush %d",
				f, four.FlushLength(f), one.FlushLength(f))
		}
	}
	if four.MaxLen() >= c.NumFFs() {
		t.Error("4 chains did not shorten the scan operation")
	}
}
