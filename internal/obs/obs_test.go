package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// The disabled path: nil instruments and a nil observer must absorb
// every call without allocating or panicking.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Max(9)
	if g.Value() != 0 {
		t.Errorf("nil gauge value = %d", g.Value())
	}
	var tm *Timer
	tm.Start()()
	tm.Observe(time.Second)
	if n, d := tm.Stat(); n != 0 || d != 0 {
		t.Errorf("nil timer stat = %d, %v", n, d)
	}
	if C(nil, "x") != nil || G(nil, "x") != nil || T(nil, "x") != nil {
		t.Error("nil observer must resolve nil instruments")
	}
	Emit(nil, "phase", "name", F("k", 1)) // must not panic
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.x").Add(2)
	r.Counter("a.x").Inc()
	r.Gauge("a.g").Set(7)
	r.Gauge("a.g").Max(5) // below current value: no-op
	r.Gauge("a.g").Max(9)
	r.Timer("b.t").Observe(3 * time.Millisecond)
	s := r.Snapshot()
	if s.Counters["a.x"] != 3 {
		t.Errorf("counter = %d, want 3", s.Counters["a.x"])
	}
	if s.Gauges["a.g"] != 9 {
		t.Errorf("gauge = %d, want 9", s.Gauges["a.g"])
	}
	if ts := s.Timers["b.t"]; ts.Count != 1 || ts.Nanos != int64(3*time.Millisecond) {
		t.Errorf("timer = %+v", ts)
	}
	if got, want := s.Names(), []string{"a.g", "a.x", "b.t"}; !reflect.DeepEqual(got, want) {
		t.Errorf("names = %v, want %v", got, want)
	}
	if s.TotalTime() != 3*time.Millisecond {
		t.Errorf("total time = %v", s.TotalTime())
	}
}

func TestRecorderStream(t *testing.T) {
	var buf bytes.Buffer
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	r := NewRecorder(&buf, RecorderOptions{
		Program:       "test",
		SnapshotEvery: 2,
		Clock:         func() time.Time { return t0 },
	})
	r.Counter("x.c").Inc()
	r.Event("x", "one", F("i", 1), F("ok", true))
	r.Event("x", "two") // second event: periodic snapshot due
	r.Event("x", "three")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("stream invalid: %v\n%s", err, buf.String())
	}
	if st.Runs != 1 || st.Events != 3 || st.Snapshots != 2 {
		t.Errorf("stats = %+v, want 1 run, 3 events, 2 snapshots", st)
	}
	// The event's fields must round-trip through JSON.
	var ev Line
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Phase != "x" || ev.Name != "one" || ev.Fields["i"] != float64(1) || ev.Fields["ok"] != true {
		t.Errorf("event line = %+v", ev)
	}
}

// A resumed leg appends a second run header with resumed:true and a
// fresh sequence; a non-resumed header mid-file is a corruption.
func TestRecorderResumeAppend(t *testing.T) {
	var buf bytes.Buffer
	r1 := NewRecorder(&buf, RecorderOptions{Program: "test"})
	r1.Event("p", "a")
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := NewRecorder(&buf, RecorderOptions{Program: "test", Resumed: true})
	r2.Event("p", "b")
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("resumed stream invalid: %v", err)
	}
	if st.Runs != 2 || st.Events != 2 || st.Snapshots != 2 {
		t.Errorf("stats = %+v, want 2 runs, 2 events, 2 snapshots", st)
	}

	var bad bytes.Buffer
	b1 := NewRecorder(&bad, RecorderOptions{})
	b1.Close()
	b2 := NewRecorder(&bad, RecorderOptions{}) // fresh header appended: invalid
	b2.Close()
	if _, err := Validate(bytes.NewReader(bad.Bytes())); err == nil {
		t.Error("non-resumed mid-file header must be rejected")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, RecorderOptions{SnapshotEvery: -1})
	r.Event("p", "a")
	r.Event("p", "b")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // run, 2 events, final snapshot
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	cases := map[string]string{
		"empty stream":        "",
		"event before header": strings.Join(lines[1:], "\n"),
		"seq gap":             strings.Join([]string{lines[0], lines[2], lines[3]}, "\n"),
		"no final snapshot":   strings.Join(lines[:3], "\n"),
		"not JSON":            "run header goes here",
	}
	for name, stream := range cases {
		if _, err := Validate(strings.NewReader(stream)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("intact stream rejected: %v", err)
	}
}

// A nil-writer Recorder keeps instruments and discards lines — the
// shape behind -debug-addr without -metrics.
func TestNilWriterRecorder(t *testing.T) {
	r := NewRecorder(nil, RecorderOptions{})
	r.Counter("c").Inc()
	r.Event("p", "n")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot().Counters["c"] != 1 {
		t.Error("instruments must work without a writer")
	}
}

func TestDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sim.runs").Add(4)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	err = json.NewDecoder(resp.Body).Decode(&s)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if s.Counters["sim.runs"] != 4 {
		t.Errorf("/metrics counters = %v", s.Counters)
	}

	resp, err = http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), "sim.runs 4") {
		t.Errorf("text view = %q", text)
	}
}

// A Sync recorder must make every line visible to the underlying writer
// as soon as it is recorded, without waiting for Close.
func TestRecorderSyncFlushesPerLine(t *testing.T) {
	var buf bytes.Buffer
	r := NewRecorder(&buf, RecorderOptions{Program: "sync-test", Sync: true})
	headerLen := buf.Len()
	if headerLen == 0 {
		t.Fatal("run header not flushed immediately under Sync")
	}
	r.Event("jobs", "task_start", F("shard", 1))
	if buf.Len() <= headerLen {
		t.Fatal("event line not flushed immediately under Sync")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sync stream invalid: %v", err)
	}
}
