// Package obs is the zero-dependency observability layer threaded
// through the library's algorithmic engines: test generation
// (seqatpg.Generate), static compaction (compact.RestoreOpts/OmitOpts),
// fault simulation (sim.Simulator) and the core flows. It answers the
// question the end-of-run tables cannot: where the attempts, trials and
// simulation batches actually go.
//
// The design splits instrumentation into two tiers:
//
//   - Counters, gauges and timers are atomic values resolved once per
//     run (by name, through the Observer) and updated lock-free from
//     any goroutine, including simulation workers. Their methods are
//     safe on nil receivers and a nil Observer resolves to nil
//     instruments, so the disabled path costs a nil check per update —
//     engines instrument unconditionally.
//   - Events are structured, phase-stamped records emitted only from an
//     engine's orchestrating goroutine (never from workers). For a
//     fixed seed the event stream is therefore deterministic at every
//     worker count, which makes the JSONL flight recorder diffable
//     across runs.
//
// A nil Observer is the default everywhere and must stay effectively
// free: no allocation, no atomics, no branches beyond one nil check.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. All methods
// are safe on a nil receiver (and do nothing), so engines can resolve
// counters unconditionally and update them in hot paths.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value gauge, nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Max raises the gauge to v when v exceeds the current value.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Timer accumulates wall-clock time over named spans, nil-safe like
// Counter. Timings are observability only — never part of the
// deterministic event stream.
type Timer struct {
	n  atomic.Int64
	ns atomic.Int64
}

// Start begins one span and returns the function that ends it. On a
// nil receiver the returned stop is a no-op and no clock is read.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Observe adds one completed span of duration d.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.n.Add(1)
	t.ns.Add(int64(d))
}

// Stat returns the span count and total duration (zero on nil).
func (t *Timer) Stat() (n int64, total time.Duration) {
	if t == nil {
		return 0, 0
	}
	return t.n.Load(), time.Duration(t.ns.Load())
}

// Field is one key/value pair of a structured event. Values must be
// JSON-encodable; engines only emit deterministic values (never
// durations or wall-clock readings).
type Field struct {
	Key string
	Val any
}

// F builds a Field.
func F(key string, val any) Field { return Field{Key: key, Val: val} }

// Observer is the sink engines report to. Implementations must be safe
// for concurrent use; the instruments they hand out are updated from
// worker goroutines. Event is only ever called from an engine's
// orchestrating goroutine.
type Observer interface {
	// Counter returns the named counter, created on first use. Names
	// are dot-separated with the engine phase as the first segment
	// (e.g. "sim.batches"); see docs/ALGORITHMS.md §11 for the schema.
	Counter(name string) *Counter
	// Gauge returns the named gauge, created on first use.
	Gauge(name string) *Gauge
	// Timer returns the named timer, created on first use.
	Timer(name string) *Timer
	// Event records one structured event under the given phase.
	Event(phase, name string, fields ...Field)
}

// C resolves a named counter, tolerating a nil observer (the returned
// nil Counter absorbs updates). Engines resolve instruments once per
// run through these helpers, never per update.
func C(o Observer, name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Counter(name)
}

// G resolves a named gauge, tolerating a nil observer.
func G(o Observer, name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Gauge(name)
}

// T resolves a named timer, tolerating a nil observer.
func T(o Observer, name string) *Timer {
	if o == nil {
		return nil
	}
	return o.Timer(name)
}

// Emit records an event, tolerating a nil observer. Callers that build
// expensive fields should test o != nil themselves first.
func Emit(o Observer, phase, name string, fields ...Field) {
	if o == nil {
		return
	}
	o.Event(phase, name, fields...)
}
