package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ValidateStats summarizes a validated flight-recorder stream.
type ValidateStats struct {
	Runs      int // run header lines (resume legs)
	Events    int
	Snapshots int
	// FinalSnapshot reports whether the stream's last line is a
	// snapshot — the recorder's Close guarantee.
	FinalSnapshot bool
}

// Validate checks a JSONL flight-recorder stream against the schema
// documented in docs/ALGORITHMS.md §11:
//
//   - every line is a JSON object with a known "type" (run, event,
//     snapshot), a sequence number and an RFC3339Nano timestamp;
//   - the stream starts with a run header and Seq counts up from 0
//     within each run leg (a new header restarts it, which is how a
//     resumed run appends to the same file);
//   - event lines carry a non-empty phase and name;
//   - snapshot lines carry no phase or name (their instrument maps may
//     all be empty — an instrument-free run still closes validly);
//   - the final line is a snapshot.
//
// A final line that is torn — unterminated, or not a parseable record
// at the very end of the stream — is reported distinctly as a torn
// tail (the signature of a crash mid-append; RepairTail removes it).
//
// The first violation is returned with its 1-based line number.
func Validate(r io.Reader) (ValidateStats, error) {
	var st ValidateStats
	data, err := io.ReadAll(r)
	if err != nil {
		return st, err
	}
	torn := len(data) > 0 && data[len(data)-1] != '\n'
	var lines [][]byte
	if len(data) > 0 {
		lines = bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	}
	lineNo := 0
	nextSeq := int64(-1) // -1: expecting the first run header
	lastType := ""
	for i, raw := range lines {
		lineNo++
		last := i == len(lines)-1
		if last && torn {
			return st, fmt.Errorf("line %d: torn final line (unterminated partial record — crash mid-append? RepairTail fixes this)", lineNo)
		}
		if len(raw) == 0 {
			return st, fmt.Errorf("line %d: empty line", lineNo)
		}
		var ln Line
		if err := json.Unmarshal(raw, &ln); err != nil {
			if last {
				return st, fmt.Errorf("line %d: torn final line (not a JSON record: %v — crash mid-append? RepairTail fixes this)", lineNo, err)
			}
			return st, fmt.Errorf("line %d: not a JSON record: %v", lineNo, err)
		}
		if _, err := time.Parse(time.RFC3339Nano, ln.T); err != nil {
			return st, fmt.Errorf("line %d: bad timestamp %q: %v", lineNo, ln.T, err)
		}
		switch ln.Type {
		case "run":
			if ln.Seq != 0 {
				return st, fmt.Errorf("line %d: run header must restart seq at 0, got %d", lineNo, ln.Seq)
			}
			if ln.Resumed == nil {
				return st, fmt.Errorf("line %d: run header missing resumed flag", lineNo)
			}
			if st.Runs > 0 && !*ln.Resumed {
				return st, fmt.Errorf("line %d: non-resumed run header appended mid-file", lineNo)
			}
			st.Runs++
			nextSeq = 1
		case "event":
			if nextSeq < 0 {
				return st, fmt.Errorf("line %d: event before run header", lineNo)
			}
			if ln.Seq != nextSeq {
				return st, fmt.Errorf("line %d: seq %d, want %d", lineNo, ln.Seq, nextSeq)
			}
			nextSeq++
			if ln.Phase == "" || ln.Name == "" {
				return st, fmt.Errorf("line %d: event needs phase and name", lineNo)
			}
			st.Events++
		case "snapshot":
			if nextSeq < 0 {
				return st, fmt.Errorf("line %d: snapshot before run header", lineNo)
			}
			if ln.Seq != nextSeq {
				return st, fmt.Errorf("line %d: seq %d, want %d", lineNo, ln.Seq, nextSeq)
			}
			nextSeq++
			if ln.Phase != "" || ln.Name != "" {
				return st, fmt.Errorf("line %d: snapshot carries event fields", lineNo)
			}
			st.Snapshots++
		default:
			return st, fmt.Errorf("line %d: unknown record type %q", lineNo, ln.Type)
		}
		lastType = ln.Type
	}
	if lineNo == 0 {
		return st, fmt.Errorf("empty stream")
	}
	st.FinalSnapshot = lastType == "snapshot"
	if !st.FinalSnapshot {
		return st, fmt.Errorf("stream does not end with a snapshot (last line is a %s)", lastType)
	}
	return st, nil
}
