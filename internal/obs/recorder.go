package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// fpRecorderAppend is the fault-injection site on the recorder's
// append path (armed only under internal/failpoint).
const fpRecorderAppend = "obs.recorder.append"

// Line is one JSONL flight-recorder record. Exactly one of the
// type-specific field groups is populated depending on Type:
//
//   - "run": a run header — Program and Resumed; written once per
//     process so resumed runs append to the same file and the reader
//     can tell the legs apart (Seq restarts at 0 at every header).
//   - "event": a structured engine event — Phase, Name and Fields.
//     Field values are deterministic for a fixed seed; the wall-clock
//     stamp T is the only nondeterministic part of an event line.
//   - "snapshot": a periodic or final copy of every counter, gauge and
//     timer.
//
// Seq increases by one per line within a run leg; T is RFC3339Nano.
type Line struct {
	Type string `json:"type"`
	Seq  int64  `json:"seq"`
	T    string `json:"t"`

	Program string `json:"program,omitempty"`
	Resumed *bool  `json:"resumed,omitempty"`

	Phase  string         `json:"phase,omitempty"`
	Name   string         `json:"name,omitempty"`
	Fields map[string]any `json:"fields,omitempty"`

	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
}

// RecorderOptions tunes a Recorder. The zero value selects defaults.
type RecorderOptions struct {
	// SnapshotEvery writes a counter snapshot after every n-th event
	// (default 256; negative disables periodic snapshots). The final
	// snapshot on Close is always written.
	SnapshotEvery int
	// Program names the producing tool in the run header.
	Program string
	// Resumed marks the run header of a leg that continues an earlier
	// checkpointed run; the CLI layer pairs it with opening the file in
	// append mode so one file carries the whole run's history.
	Resumed bool
	// Sync flushes the stream after every line instead of only on
	// Close. Live-streaming backends (the job server's progress event
	// feed) need each line visible to readers as soon as it is
	// recorded; batch file recording leaves this off and keeps the
	// buffered fast path.
	Sync bool
	// Clock overrides the timestamp source (tests).
	Clock func() time.Time
}

// Recorder is the flight recorder: an Observer whose instruments live
// in an embedded Registry and whose events stream to a JSONL writer.
// A nil-writer Recorder keeps instruments and discards event lines —
// the shape behind -debug-addr without -metrics. Recorder is safe for
// concurrent use; events must still come from one goroutine per engine
// for the stream to be deterministic (see the package comment).
type Recorder struct {
	Registry

	mu    sync.Mutex
	w     *bufio.Writer
	sync  bool
	seq   int64
	every int
	nEv   int
	clock func() time.Time
	err   error
}

// NewRecorder builds a Recorder streaming to w (nil keeps instruments
// only) and writes the run header line.
func NewRecorder(w io.Writer, opts RecorderOptions) *Recorder {
	r := &Recorder{every: opts.SnapshotEvery, clock: opts.Clock, sync: opts.Sync}
	if r.every == 0 {
		r.every = 256
	}
	if r.clock == nil {
		r.clock = time.Now
	}
	if w != nil {
		r.w = bufio.NewWriter(w)
	}
	resumed := opts.Resumed
	r.writeLine(&Line{Type: "run", Program: opts.Program, Resumed: &resumed})
	return r
}

// writeLine stamps and writes one line under the mutex.
func (r *Recorder) writeLine(ln *Line) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w == nil || r.err != nil {
		return
	}
	ln.Seq = r.seq
	r.seq++
	ln.T = r.clock().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(ln)
	if err != nil {
		r.err = fmt.Errorf("obs: marshal %s line: %w", ln.Type, err)
		return
	}
	b = append(b, '\n')
	if _, err := failpoint.InjectWrite(fpRecorderAppend, r.w, b); err != nil {
		r.err = fmt.Errorf("obs: write: %w", err)
		return
	}
	if r.sync {
		if err := r.w.Flush(); err != nil {
			r.err = fmt.Errorf("obs: flush: %w", err)
		}
	}
}

// Event streams one event line.
func (r *Recorder) Event(phase, name string, fields ...Field) {
	ln := &Line{Type: "event", Phase: phase, Name: name}
	if len(fields) > 0 {
		ln.Fields = make(map[string]any, len(fields))
		for _, f := range fields {
			ln.Fields[f.Key] = f.Val
		}
	}
	r.writeLine(ln)
	r.mu.Lock()
	r.nEv++
	due := r.every > 0 && r.nEv%r.every == 0
	r.mu.Unlock()
	if due {
		r.WriteSnapshot()
	}
}

// WriteSnapshot writes a snapshot line of the current instruments.
func (r *Recorder) WriteSnapshot() {
	s := r.Snapshot()
	r.writeLine(&Line{Type: "snapshot", Counters: s.Counters, Gauges: s.Gauges, Timers: s.Timers})
}

// Err returns the first write or marshal error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close writes the final snapshot and flushes the stream. It does not
// close the underlying writer (the caller owns the file).
func (r *Recorder) Close() error {
	r.WriteSnapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		if err := r.w.Flush(); err != nil && r.err == nil {
			r.err = fmt.Errorf("obs: flush: %w", err)
		}
	}
	return r.err
}

var _ Observer = (*Recorder)(nil)
