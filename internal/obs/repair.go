package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// RepairTail truncates a torn final line of a JSONL flight-recorder
// file in place, returning how many bytes were dropped. A tail is torn
// when the file does not end with a newline (a crash mid-append or a
// partially flushed buffer), or when its final newline-terminated line
// is not valid JSON (a tear that happened to land after an earlier
// record's newline). Complete files — including empty and missing ones
// — are left untouched. The CLI layer runs this before opening a
// metrics file for a resume-leg append, so one crash cannot poison the
// whole stream.
func RepairTail(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("obs: repair %s: %w", path, err)
	}
	keep := len(data)
	// Drop an unterminated tail, then any final terminated line that is
	// not a JSON record (at most one tear can exist, but a tear can
	// shear both the unterminated bytes and the line they belong to).
	if keep > 0 && data[keep-1] != '\n' {
		nl := bytes.LastIndexByte(data[:keep], '\n')
		keep = nl + 1 // -1+1 = 0: the whole file was one torn line
	}
	if keep > 0 {
		lineStart := bytes.LastIndexByte(data[:keep-1], '\n') + 1
		if !json.Valid(data[lineStart : keep-1]) {
			keep = lineStart
		}
	}
	if keep == len(data) {
		return 0, nil
	}
	if err := os.Truncate(path, int64(keep)); err != nil {
		return 0, fmt.Errorf("obs: repair %s: %w", path, err)
	}
	return int64(len(data) - keep), nil
}
