package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is the expvar-style debug endpoint for long runs: a tiny HTTP
// server exposing the live instrument snapshot so a run's progress is
// observable without touching the process. Routes:
//
//	/metrics — the Snapshot as a JSON object
//	/        — the same data as sorted "name value" text lines
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks an ephemeral port) and serves src's
// snapshots until Close.
func Serve(addr string, src Snapshotter) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug endpoint: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(src.Snapshot())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s := src.Snapshot()
		for _, name := range s.Names() {
			if v, ok := s.Counters[name]; ok {
				fmt.Fprintf(w, "%s %d\n", name, v)
			}
			if v, ok := s.Gauges[name]; ok {
				fmt.Fprintf(w, "%s %d\n", name, v)
			}
			if t, ok := s.Timers[name]; ok {
				fmt.Fprintf(w, "%s %v/%d\n", name, time.Duration(t.Nanos), t.Count)
			}
		}
	})
	// Timeouts keep a stalled or malicious client (slow-loris) from
	// pinning connections on a long-lived run's debug port.
	s := &Server{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
	}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
