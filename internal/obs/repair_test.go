package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/failpoint"
)

// record writes a small complete stream and returns its bytes.
func completeStream(t *testing.T, events int) []byte {
	t.Helper()
	var buf bytes.Buffer
	r := NewRecorder(&buf, RecorderOptions{Program: "repair-test", SnapshotEvery: -1})
	for i := 0; i < events; i++ {
		r.Event("p", "e", F("i", i))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRepairTailDropsUnterminatedLine(t *testing.T) {
	full := completeStream(t, 3)
	torn := full[:len(full)-7] // shear the final snapshot line mid-record
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(bytes.NewReader(torn)); err == nil || !strings.Contains(err.Error(), "torn final line") {
		t.Fatalf("Validate on torn stream = %v, want torn-final-line report", err)
	}
	dropped, err := RepairTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("RepairTail dropped nothing from a torn file")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[len(got)-1] != '\n' {
		t.Fatalf("repaired file does not end in newline: %q", got)
	}
	// Every surviving line must be a full record; the stream as a whole
	// is still "incomplete" (no final snapshot) until a resume leg ends.
	if _, err := Validate(bytes.NewReader(got)); err == nil || strings.Contains(err.Error(), "torn") {
		t.Fatalf("repaired stream error = %v, want only the missing-final-snapshot error", err)
	}
}

func TestRepairTailKeepsCompleteFile(t *testing.T) {
	full := completeStream(t, 2)
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	dropped, err := RepairTail(path)
	if err != nil || dropped != 0 {
		t.Fatalf("RepairTail on complete file = (%d, %v), want (0, nil)", dropped, err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, full) {
		t.Fatal("RepairTail modified a complete file")
	}
	// Missing and empty files are no-ops too.
	if dropped, err := RepairTail(filepath.Join(t.TempDir(), "absent.jsonl")); dropped != 0 || err != nil {
		t.Fatalf("RepairTail on missing file = (%d, %v)", dropped, err)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	if dropped, err := RepairTail(empty); dropped != 0 || err != nil {
		t.Fatalf("RepairTail on empty file = (%d, %v)", dropped, err)
	}
}

func TestRepairTailWholeFileIsOneTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"run","se`), 0o644); err != nil {
		t.Fatal(err)
	}
	dropped, err := RepairTail(path)
	if err != nil || dropped != 17 {
		t.Fatalf("RepairTail = (%d, %v), want (17, nil)", dropped, err)
	}
	got, _ := os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("file not emptied: %q", got)
	}
}

// A torn append (injected partial write) followed by a resume-leg
// repair yields a stream Validate accepts end to end — the exact
// crash/resume shape of the soak harness.
func TestResumeAfterTornAppendValidates(t *testing.T) {
	defer failpoint.Disable()
	path := filepath.Join(t.TempDir(), "m.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("obs.recorder.append=partial:0.6@3", 1); err != nil {
		t.Fatal(err)
	}
	r1 := NewRecorder(f, RecorderOptions{Program: "leg1", SnapshotEvery: -1})
	r1.Event("p", "a") // line 2
	r1.Event("p", "b") // line 3: torn mid-write, recorder latches the error
	r1.Event("p", "c") // skipped: error already latched
	r1.Close()         // flushes the partial line
	f.Close()
	if r1.Err() == nil || !failpoint.IsInjected(r1.Err()) {
		t.Fatalf("recorder error = %v, want injected", r1.Err())
	}
	failpoint.Disable()

	cli := &CLI{Metrics: path, Program: "leg2"}
	rt, err := cli.Build(true)
	if err != nil {
		t.Fatal(err)
	}
	rt.Observer().(*Recorder).Event("p", "resumed_work")
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Validate(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("stream after torn append + repaired resume invalid: %v\n%s", err, data)
	}
	if st.Runs != 2 {
		t.Fatalf("runs = %d, want 2 legs", st.Runs)
	}
	if !strings.Contains(string(data), `"tail_repaired"`) {
		t.Fatal("resume leg did not record the tail_repaired event")
	}
}
