package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// canonicalEvents reduces a flight-recorder stream to its deterministic
// core: event lines with the wall-clock stamp dropped (run headers and
// snapshots carry timing and scheduling-dependent counters and are
// excluded by design; see the obs package comment).
func canonicalEvents(t *testing.T, data []byte) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if m["type"] != "event" {
			continue
		}
		delete(m, "t")
		b, err := json.Marshal(m) // map marshalling sorts keys
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// The flight recorder's central invariant: for a fixed seed the event
// stream is byte-identical at every worker count (events come only from
// orchestrating goroutines, never workers). CI runs this under -race,
// which also proves the concurrent counter updates are clean.
func TestEventStreamDeterministic(t *testing.T) {
	run := func(workers int) []string {
		var buf bytes.Buffer
		rec := obs.NewRecorder(&buf, obs.RecorderOptions{Program: "test"})
		cfg := core.DefaultConfig()
		cfg.SkipBaseline = true
		cfg.Workers = workers
		cfg.Obs = rec
		if _, _, err := core.RunGenerate("s27", cfg); err != nil {
			t.Fatal(err)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := obs.Validate(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("workers=%d: invalid stream: %v", workers, err)
		}
		return canonicalEvents(t, buf.Bytes())
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("flow emitted no events")
	}
	for _, workers := range []int{4, 4} { // repeat to catch flakiness too
		got := run(workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: event %d differs\n got %s\nwant %s", workers, i, got[i], serial[i])
			}
		}
	}
}
