package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLI bundles the observability command-line parameters the tools
// share: the JSONL flight-recorder file and the debug HTTP endpoint.
type CLI struct {
	Metrics       string
	DebugAddr     string
	SnapshotEvery int
	// Program names the tool in the run header and log lines.
	Program string
}

// RegisterFlags registers the shared observability flags on the
// default flag set and returns the CLI to Build after flag.Parse.
func RegisterFlags(program string) *CLI {
	c := &CLI{Program: program}
	flag.StringVar(&c.Metrics, "metrics", "", "write a JSONL flight recorder (phase events + counter snapshots) to this file")
	flag.StringVar(&c.DebugAddr, "debug-addr", "", "serve the live counter snapshot over HTTP on this address (e.g. :6060 or :0)")
	flag.IntVar(&c.SnapshotEvery, "metrics-every", 0, "write a counter snapshot every n-th event (0 = default 256)")
	return c
}

// Runtime is the built observability state of one command invocation.
// Every method is safe on a nil Runtime, and Observer returns nil when
// no observation was requested, so commands wire it unconditionally.
type Runtime struct {
	rec  *Recorder
	file *os.File
	srv  *Server
}

// Build validates the parameters and constructs the Runtime, or
// returns (nil, nil) when no observation was requested. resume opens
// the metrics file in append mode (pairing with -resume checkpoint
// runs) so one file carries all legs of a run; a fresh run truncates.
func (c *CLI) Build(resume bool) (*Runtime, error) {
	if c.Metrics == "" && c.DebugAddr == "" {
		return nil, nil
	}
	rt := &Runtime{}
	var err error
	var repaired int64
	if c.Metrics != "" {
		mode := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		if resume {
			// A crash mid-append can leave a torn final line; drop it
			// before appending so the stream stays valid JSONL.
			repaired, err = RepairTail(c.Metrics)
			if err != nil {
				return nil, fmt.Errorf("%s: -metrics: %w", c.Program, err)
			}
			if repaired > 0 {
				fmt.Fprintf(os.Stderr, "%s: -metrics: dropped a torn final line (%d bytes) before appending\n", c.Program, repaired)
			}
			mode = os.O_CREATE | os.O_WRONLY | os.O_APPEND
		}
		rt.file, err = os.OpenFile(c.Metrics, mode, 0o644)
		if err != nil {
			return nil, fmt.Errorf("%s: -metrics: %w", c.Program, err)
		}
	}
	ropts := RecorderOptions{SnapshotEvery: c.SnapshotEvery, Program: c.Program, Resumed: resume && rt.file != nil}
	if rt.file != nil {
		rt.rec = NewRecorder(rt.file, ropts)
	} else {
		rt.rec = NewRecorder(nil, ropts)
	}
	if repaired > 0 {
		rt.rec.Event("obs", "tail_repaired", F("bytes", repaired))
	}
	if c.DebugAddr != "" {
		rt.srv, err = Serve(c.DebugAddr, rt.rec)
		if err != nil {
			rt.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: metrics at http://%s/metrics\n", c.Program, rt.srv.Addr())
	}
	return rt, nil
}

// Observer returns the run's Observer, or nil when observation is off.
func (rt *Runtime) Observer() Observer {
	if rt == nil || rt.rec == nil {
		return nil
	}
	return rt.rec
}

// Summary returns the final instrument snapshot, or nil when
// observation is off. Call after the run completes.
func (rt *Runtime) Summary() *Snapshot {
	if rt == nil || rt.rec == nil {
		return nil
	}
	s := rt.rec.Snapshot()
	return &s
}

// Close writes the final snapshot, flushes and closes the metrics file
// and stops the debug endpoint.
func (rt *Runtime) Close() error {
	if rt == nil {
		return nil
	}
	var first error
	if rt.rec != nil {
		if err := rt.rec.Close(); err != nil {
			first = err
		}
	}
	if rt.file != nil {
		if err := rt.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	if rt.srv != nil {
		if err := rt.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
