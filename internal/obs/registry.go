package obs

import (
	"sort"
	"sync"
	"time"
)

// Registry implements the instrument half of Observer: named counters,
// gauges and timers created on first use. It discards events; Recorder
// embeds it and adds the JSONL event stream. The zero value is ready.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// NewRegistry returns an empty Registry. It satisfies Observer on its
// own for callers that want live counters (e.g. the -debug-addr
// endpoint) without a flight-recorder file.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[string]*Timer)
	}
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Event discards the event; Recorder overrides this.
func (r *Registry) Event(phase, name string, fields ...Field) {}

// TimerStat is one timer's aggregate in a Snapshot.
type TimerStat struct {
	Count int64 `json:"n"`
	Nanos int64 `json:"ns"`
}

// Snapshot is a point-in-time copy of every instrument, with
// deterministic (sorted) iteration order via Names helpers.
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
}

// Snapshot copies the current instrument values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]int64, len(r.counters))}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStat, len(r.timers))
		for name, t := range r.timers {
			n, total := t.Stat()
			s.Timers[name] = TimerStat{Count: n, Nanos: int64(total)}
		}
	}
	return s
}

// Names returns the union of all instrument names, sorted.
func (s Snapshot) Names() []string {
	seen := make(map[string]bool, len(s.Counters)+len(s.Gauges)+len(s.Timers))
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range s.Counters {
		add(n)
	}
	for n := range s.Gauges {
		add(n)
	}
	for n := range s.Timers {
		add(n)
	}
	sort.Strings(names)
	return names
}

// TotalTime sums all timer durations (a rough per-phase wall-clock
// breakdown; spans may overlap).
func (s Snapshot) TotalTime() time.Duration {
	var ns int64
	for _, t := range s.Timers {
		ns += t.Nanos
	}
	return time.Duration(ns)
}

// Snapshotter yields point-in-time instrument snapshots; both Registry
// and Recorder satisfy it, and the debug HTTP endpoint serves it.
type Snapshotter interface {
	Snapshot() Snapshot
}

var _ Observer = (*Registry)(nil)
var _ Snapshotter = (*Registry)(nil)
