package report

import (
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/translate"
)

func s27Scan(t *testing.T) *scan.Circuit {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSequenceTable(t *testing.T) {
	sc := s27Scan(t)
	seq := logic.Sequence{
		sc.ShiftVector(logic.One),
		sc.FunctionalVector(logic.NewVector(4)),
	}
	out := SequenceTable(sc, seq, "Table X")
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "scan_sel") {
		t.Fatalf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+len(seq) {
		t.Errorf("line count = %d", len(lines))
	}
	// Row 0 must show scan_sel = 1.
	if !strings.Contains(lines[2], "1") {
		t.Error("first data row lost its scan_sel value")
	}
}

func TestTestSetTable(t *testing.T) {
	v, _ := logic.ParseVector("011")
	w, _ := logic.ParseVector("0000")
	out := TestSetTable([]translate.ScanTest{{SI: v, T: logic.Sequence{w}}}, "Table 2")
	if !strings.Contains(out, "011") || !strings.Contains(out, "0000") {
		t.Fatalf("contents missing:\n%s", out)
	}
}

func TestTable5Table6Table7Render(t *testing.T) {
	rows := []core.GenerateRow{{
		Circ: "s27", Inp: 6, Stvr: 3, Faults: 58, Detected: 58,
		FCov: 100, Funct: 2, TestLen: 30, TestScan: 12,
		RestorLen: 20, RestorScan: 9, OmitLen: 17, OmitScan: 7,
		ExtDet: 1, BaselineCycles: 33,
	}, {
		Circ: "b02", Inp: 4, Stvr: 4, Faults: 40, Detected: 39,
		FCov: 97.5, TestLen: 50, BaselineCycles: 0,
	}}
	t5 := Table5(rows)
	if !strings.Contains(t5, "s27") || !strings.Contains(t5, "100.00") {
		t.Errorf("Table5:\n%s", t5)
	}
	t6 := Table6(rows)
	if !strings.Contains(t6, "+1") || !strings.Contains(t6, "NA") {
		t.Errorf("Table6 missing ext det or NA:\n%s", t6)
	}
	if !strings.Contains(t6, "total") {
		t.Error("Table6 missing total row")
	}
	t7 := Table7([]core.TranslateRow{{Circ: "s27", TestLen: 20, OmitLen: 14, Cycles: 20}})
	if !strings.Contains(t7, "total") || !strings.Contains(t7, "s27") {
		t.Errorf("Table7:\n%s", t7)
	}
}

func TestScanRuns(t *testing.T) {
	sc := s27Scan(t)
	mk := func(sel ...int) logic.Sequence {
		var seq logic.Sequence
		for _, s := range sel {
			if s == 1 {
				seq = append(seq, sc.ShiftVector(logic.Zero))
			} else {
				seq = append(seq, sc.FunctionalVector(logic.NewVector(4)))
			}
		}
		return seq
	}
	runs := ScanRuns(sc, mk(1, 1, 0, 1, 0, 1, 1, 1))
	if runs[2] != 1 || runs[1] != 1 || runs[3] != 1 {
		t.Errorf("runs = %v", runs)
	}
	if len(ScanRuns(sc, mk(0, 0))) != 0 {
		t.Error("no-scan sequence reported runs")
	}
}
