// Package report renders the experiment results in the layouts of the
// paper's tables: per-vector sequence listings (Tables 1, 3, 4), test
// set listings (Table 2), fault coverage (Table 5), generation +
// compaction lengths (Table 6) and translation results (Table 7).
package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/translate"
)

// RunBanner renders the one-line run status commands print last: the
// status name, plus resume advice when the run stopped with a
// checkpoint file attached.
func RunBanner(status runctl.Status, checkpoint string) string {
	if status.Stopped() && checkpoint != "" {
		return fmt.Sprintf("run status: %s — partial results saved; continue with -resume -checkpoint %s", status, checkpoint)
	}
	if status.Stopped() {
		return fmt.Sprintf("run status: %s — partial results (no checkpoint file; rerun with -checkpoint to make the run resumable)", status)
	}
	return fmt.Sprintf("run status: %s", status)
}

// ObsSummary renders the final instrument snapshot as a per-phase
// summary table: instruments grouped by their dot-separated phase
// prefix ("generate.attempts" under generate), counters and gauges as
// plain numbers, timers as total time with the observation count. An
// empty snapshot renders as the empty string so commands can print the
// result unconditionally.
func ObsSummary(s obs.Snapshot) string {
	names := s.Names()
	if len(names) == 0 {
		return ""
	}
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	var sb strings.Builder
	sb.WriteString("Run metrics\n")
	prev := ""
	for _, n := range names {
		phase, _, _ := strings.Cut(n, ".")
		if prev != "" && phase != prev {
			sb.WriteByte('\n')
		}
		prev = phase
		switch {
		case s.Counters != nil && hasKey(s.Counters, n):
			fmt.Fprintf(&sb, "  %-*s  %d\n", width, n, s.Counters[n])
		case s.Gauges != nil && hasKey(s.Gauges, n):
			fmt.Fprintf(&sb, "  %-*s  %d\n", width, n, s.Gauges[n])
		default:
			t := s.Timers[n]
			fmt.Fprintf(&sb, "  %-*s  %v (%d)\n", width, n,
				time.Duration(t.Nanos).Round(time.Millisecond), t.Count)
		}
	}
	return sb.String()
}

func hasKey(m map[string]int64, k string) bool {
	_, ok := m[k]
	return ok
}

// SequenceTable renders a test sequence for a scan design in the style
// of the paper's Table 1: one row per time unit, one column per original
// primary input, then the scan control inputs (scan_sel and the scan_inp
// of every chain) under their actual signal names.
func SequenceTable(sc scan.Design, seq logic.Sequence, title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	c := sc.ScanCircuit()
	header := []string{"t"}
	for _, in := range c.Inputs {
		header = append(header, c.SignalName(in))
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
		if widths[i] < 2 {
			widths[i] = 2
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for t, v := range seq {
		cells := []string{fmt.Sprint(t)}
		for i := range c.Inputs {
			cells = append(cells, v[i].String())
		}
		writeRow(cells)
	}
	return sb.String()
}

// TestSetTable renders a conventional scan test set in the style of the
// paper's Table 2: one row per test with its scan-in state and primary
// input sequence.
func TestSetTable(tests []translate.ScanTest, title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%3s  %-12s  %s\n", title, "i", "SI_i", "T_i")
	for i, t := range tests {
		var tvecs []string
		for _, v := range t.T {
			tvecs = append(tvecs, v.String())
		}
		fmt.Fprintf(&sb, "%3d  %-12s  %s\n", i+1, t.SI.String(), strings.Join(tvecs, " "))
	}
	return sb.String()
}

// Table5 renders fault coverage rows in the paper's Table 5 layout.
func Table5(rows []core.GenerateRow) string {
	var sb strings.Builder
	sb.WriteString("Table 5: Fault coverage after test generation\n")
	fmt.Fprintf(&sb, "%-8s %5s %5s %7s %8s %7s %6s\n",
		"circ", "inp", "stvr", "faults", "total", "fcov", "funct")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %5d %5d %7d %8d %7.2f %6d\n",
			r.Circ, r.Inp, r.Stvr, r.Faults, r.Detected, r.FCov, r.Funct)
	}
	return sb.String()
}

// Table6 renders test lengths after generation and compaction in the
// paper's Table 6 layout, including the total row over circuits with a
// baseline result.
func Table6(rows []core.GenerateRow) string {
	var sb strings.Builder
	sb.WriteString("Table 6: Test length after test generation and compaction\n")
	fmt.Fprintf(&sb, "%-8s %7s %6s %7s %6s %7s %6s %4s %8s\n",
		"circ", "test", "scan", "restor", "scan", "omit", "scan", "ext", "base cyc")
	for _, r := range rows {
		ext := ""
		if r.ExtDet > 0 {
			ext = fmt.Sprintf("+%d", r.ExtDet)
		}
		base := "NA"
		if r.BaselineCycles > 0 {
			base = fmt.Sprint(r.BaselineCycles)
		}
		fmt.Fprintf(&sb, "%-8s %7d %6d %7d %6d %7d %6d %4s %8s\n",
			r.Circ, r.TestLen, r.TestScan, r.RestorLen, r.RestorScan,
			r.OmitLen, r.OmitScan, ext, base)
	}
	omitTotal, baseTotal := core.GenerateTotals(rows)
	fmt.Fprintf(&sb, "%-8s %7s %6s %7s %6s %7d %6s %4s %8d\n",
		"total", "", "", "", "", omitTotal, "", "", baseTotal)
	return sb.String()
}

// Table7 renders translation + compaction results in the paper's
// Table 7 layout.
func Table7(rows []core.TranslateRow) string {
	var sb strings.Builder
	sb.WriteString("Table 7: Results for translated test sets\n")
	fmt.Fprintf(&sb, "%-8s %7s %6s %7s %6s %7s %6s %8s\n",
		"circ", "test", "scan", "restor", "scan", "omit", "scan", "cyc")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %7d %6d %7d %6d %7d %6d %8d\n",
			r.Circ, r.TestLen, r.TestScan, r.RestorLen, r.RestorScan,
			r.OmitLen, r.OmitScan, r.Cycles)
	}
	omitTotal, cycTotal := core.TranslateTotals(rows)
	fmt.Fprintf(&sb, "%-8s %7s %6s %7s %6s %7d %6s %8d\n",
		"total", "", "", "", "", omitTotal, "", cycTotal)
	return sb.String()
}

// ScanRuns summarizes the scan_sel=1 run-length structure of a
// sequence: how many maximal runs of each length occur. The paper's
// discussion of limited scan operations is exactly about these runs.
func ScanRuns(sc scan.Design, seq logic.Sequence) map[int]int {
	runs := make(map[int]int)
	run := 0
	for _, v := range seq {
		if sc.IsScanSel(v) {
			run++
			continue
		}
		if run > 0 {
			runs[run]++
		}
		run = 0
	}
	if run > 0 {
		runs[run]++
	}
	return runs
}
