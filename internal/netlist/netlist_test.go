package netlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildToggle(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("toggle")
	b.AddInput("en")
	b.AddGate(XOR, "d", "en", "q")
	b.AddFF("q", "d")
	b.MarkOutput("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuilderBasic(t *testing.T) {
	c := buildToggle(t)
	if c.NumInputs() != 1 || c.NumOutputs() != 1 || c.NumFFs() != 1 || c.NumGates() != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
	id, ok := c.SignalByName("d")
	if !ok {
		t.Fatal("signal d missing")
	}
	if c.Signals[id].Kind != KindGate {
		t.Errorf("d kind = %v", c.Signals[id].Kind)
	}
	if q, _ := c.SignalByName("q"); c.FFIndex(q) != 0 {
		t.Error("FFIndex(q) != 0")
	}
}

func TestBuilderUndrivenSignal(t *testing.T) {
	b := NewBuilder("bad")
	b.AddInput("a")
	b.AddGate(AND, "g", "a", "ghost")
	b.MarkOutput("g")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undriven") {
		t.Fatalf("expected undriven error, got %v", err)
	}
}

func TestBuilderDoubleDrive(t *testing.T) {
	b := NewBuilder("bad")
	b.AddInput("a")
	b.AddGate(NOT, "g", "a")
	b.AddGate(NOT, "g", "a")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "driven twice") {
		t.Fatalf("expected double-drive error, got %v", err)
	}
}

func TestBuilderCombinationalCycle(t *testing.T) {
	b := NewBuilder("cyc")
	b.AddInput("a")
	b.AddGate(AND, "x", "a", "y")
	b.AddGate(AND, "y", "a", "x")
	b.MarkOutput("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestSequentialLoopIsNotACycle(t *testing.T) {
	// Feedback through a flip-flop must be legal.
	if c := buildToggle(t); c == nil {
		t.Fatal("toggle should build")
	}
}

func TestBuilderArityChecks(t *testing.T) {
	b := NewBuilder("bad")
	b.AddInput("a")
	b.AddGate(NOT, "g", "a", "a")
	b.MarkOutput("g")
	if _, err := b.Build(); err == nil {
		t.Error("NOT with 2 inputs accepted")
	}
	b2 := NewBuilder("bad2")
	b2.AddInput("a")
	b2.AddGate(AND, "g", "a")
	b2.MarkOutput("g")
	if _, err := b2.Build(); err == nil {
		t.Error("AND with 1 input accepted")
	}
}

func TestLevelization(t *testing.T) {
	b := NewBuilder("lv")
	b.AddInput("a")
	b.AddInput("b")
	b.AddGate(AND, "g1", "a", "b")
	b.AddGate(NOT, "g2", "g1")
	b.AddGate(OR, "g3", "g2", "a")
	b.MarkOutput("g3")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[SignalID]int)
	for i, gi := range c.Order {
		pos[c.Gates[gi].Out] = i
	}
	for _, gi := range c.Order {
		g := c.Gates[gi]
		for _, in := range g.In {
			if c.Signals[in].Kind == KindGate && pos[in] >= pos[g.Out] {
				t.Fatalf("gate %s evaluated before its input %s", c.SignalName(g.Out), c.SignalName(in))
			}
		}
	}
	g3, _ := c.SignalByName("g3")
	if lvl := c.Level[c.Signals[g3].Driver]; lvl != 3 {
		t.Errorf("level of g3 = %d, want 3", lvl)
	}
}

func TestFanout(t *testing.T) {
	b := NewBuilder("fan")
	b.AddInput("a")
	b.AddGate(NOT, "n", "a")
	b.AddGate(AND, "g", "a", "n")
	b.AddFF("q", "g")
	b.MarkOutput("q")
	b.MarkOutput("n")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.SignalByName("a")
	if got := len(c.Fanout(a)); got != 2 {
		t.Errorf("fanout(a) = %d, want 2 (NOT pin + AND pin)", got)
	}
	n, _ := c.SignalByName("n")
	// n feeds one gate pin and one primary output.
	var gates, pos int
	for _, r := range c.Fanout(n) {
		switch {
		case r.Gate >= 0:
			gates++
		case r.PO >= 0:
			pos++
		}
	}
	if gates != 1 || pos != 1 {
		t.Errorf("fanout(n): gates=%d pos=%d", gates, pos)
	}
	g, _ := c.SignalByName("g")
	refs := c.Fanout(g)
	if len(refs) != 1 || refs[0].FF != 0 {
		t.Errorf("fanout(g) = %+v, want single FF reader", refs)
	}
}

func TestInputOutputIndex(t *testing.T) {
	c := buildToggle(t)
	en, _ := c.SignalByName("en")
	q, _ := c.SignalByName("q")
	if c.InputIndex(en) != 0 || c.InputIndex(q) != -1 {
		t.Error("InputIndex wrong")
	}
	if c.OutputIndex(q) != 0 || c.OutputIndex(en) != -1 {
		t.Error("OutputIndex wrong")
	}
}

func TestParseGateType(t *testing.T) {
	for _, name := range []string{"BUF", "NOT", "AND", "NAND", "OR", "NOR", "XOR", "XNOR"} {
		tt, err := ParseGateType(name)
		if err != nil {
			t.Fatalf("ParseGateType(%s): %v", name, err)
		}
		if tt.String() != name {
			t.Errorf("round trip %s -> %s", name, tt)
		}
	}
	if _, err := ParseGateType("MUX"); err == nil {
		t.Error("unknown gate type accepted")
	}
}

func TestStats(t *testing.T) {
	c := buildToggle(t)
	s := c.Stats()
	if s.Inputs != 1 || s.FFs != 1 || s.Gates != 1 || s.MaxLevel != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestLevelizeOrderProperty checks on random DAG-shaped circuits that
// the evaluation order is topologically consistent.
func TestLevelizeOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int(uint64(r) % uint64(n))
			return v
		}
		b := NewBuilder("rand")
		names := []string{"i0", "i1", "i2"}
		for _, n := range names {
			b.AddInput(n)
		}
		for g := 0; g < 20; g++ {
			a := names[next(len(names))]
			bb := names[next(len(names))]
			name := "g" + string(rune('A'+g))
			b.AddGate(NAND, name, a, bb)
			names = append(names, name)
		}
		b.MarkOutput(names[len(names)-1])
		c, err := b.Build()
		if err != nil {
			return false
		}
		pos := make(map[SignalID]int)
		for i, gi := range c.Order {
			pos[c.Gates[gi].Out] = i
		}
		for _, gi := range c.Order {
			g := c.Gates[gi]
			for _, in := range g.In {
				if c.Signals[in].Kind == KindGate && pos[in] >= pos[g.Out] {
					return false
				}
			}
		}
		return len(c.Order) == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
