package netlist

import "testing"

// coneCircuit:
//
//	a ──┬─ g1=AND(a,b) ── g3=OR(g1,g2) ── po
//	    └─ g2=NOT(a) ──┘        │
//	b ──┘                       └─ FF(q <- g3), q ── g4=BUF(q) ── po2
func coneCircuit(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("cone")
	b.AddInput("a")
	b.AddInput("b")
	b.AddGate(AND, "g1", "a", "b")
	b.AddGate(NOT, "g2", "a")
	b.AddGate(OR, "g3", "g1", "g2")
	b.AddFF("q", "g3")
	b.AddGate(BUF, "g4", "q")
	b.MarkOutput("g3")
	b.MarkOutput("g4")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sigID(t *testing.T, c *Circuit, name string) SignalID {
	t.Helper()
	s, ok := c.SignalByName(name)
	if !ok {
		t.Fatalf("signal %s missing", name)
	}
	return s
}

func gateOf(t *testing.T, c *Circuit, out string) int32 {
	t.Helper()
	s := sigID(t, c, out)
	if c.Signals[s].Kind != KindGate {
		t.Fatalf("signal %s is not gate-driven", out)
	}
	return c.Signals[s].Driver
}

func coneGates(t *testing.T, c *Circuit, cone []uint64) map[int32]bool {
	t.Helper()
	got := map[int32]bool{}
	for gi := range c.Gates {
		if cone[gi>>6]&(1<<uint(gi&63)) != 0 {
			got[int32(gi)] = true
		}
	}
	return got
}

func TestFanoutGates(t *testing.T) {
	c := coneCircuit(t)
	a := sigID(t, c, "a")
	got := c.FanoutGates(a)
	if len(got) != 2 {
		t.Fatalf("FanoutGates(a) = %v, want 2 gates", got)
	}
	for i := 1; i < len(got); i++ {
		la, lb := c.Level[got[i-1]], c.Level[got[i]]
		if la > lb || (la == lb && got[i-1] >= got[i]) {
			t.Fatalf("FanoutGates(a) not in (level, index) order: %v", got)
		}
	}
	// A gate reading the same signal on several pins appears once.
	b2 := NewBuilder("dup")
	b2.AddInput("x")
	b2.AddGate(AND, "y", "x", "x")
	b2.MarkOutput("y")
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.FanoutGates(sigID(t, c2, "x")); len(got) != 1 {
		t.Fatalf("duplicate-pin fanout not deduplicated: %v", got)
	}
}

func TestOutputCone(t *testing.T) {
	c := coneCircuit(t)
	g1 := gateOf(t, c, "g1")
	g2 := gateOf(t, c, "g2")
	g3 := gateOf(t, c, "g3")
	g4 := gateOf(t, c, "g4")

	// a reaches g1, g2, g3 combinationally; the FF stops the cone
	// before g4.
	got := coneGates(t, c, c.OutputCone(sigID(t, c, "a")))
	want := map[int32]bool{g1: true, g2: true, g3: true}
	if len(got) != len(want) {
		t.Fatalf("OutputCone(a) = %v, want %v", got, want)
	}
	for gi := range want {
		if !got[gi] {
			t.Fatalf("OutputCone(a) missing gate %d (%v)", gi, got)
		}
	}
	// q reaches only g4.
	got = coneGates(t, c, c.OutputCone(sigID(t, c, "q")))
	if len(got) != 1 || !got[g4] {
		t.Fatalf("OutputCone(q) = %v, want {%d}", got, g4)
	}
	// Memoization returns the identical slice.
	c1 := c.OutputCone(sigID(t, c, "a"))
	c2 := c.OutputCone(sigID(t, c, "a"))
	if &c1[0] != &c2[0] {
		t.Error("OutputCone not memoized")
	}
}

func TestSequentialReach(t *testing.T) {
	c := coneCircuit(t)
	var r Reach
	// A fault on a crosses the FF boundary: its state can diverge, so
	// g4 and both POs are reachable.
	c.SequentialReach([]SignalID{sigID(t, c, "a")}, nil, &r)
	gates := coneGates(t, c, r.Gates)
	if len(gates) != 4 {
		t.Fatalf("reach gates = %v, want all 4", gates)
	}
	if len(r.FFs) != 1 || r.FFs[0] != 0 {
		t.Fatalf("reach FFs = %v, want [0]", r.FFs)
	}
	if len(r.POs) != 2 {
		t.Fatalf("reach POs = %v, want both", r.POs)
	}

	// A fault on q stays behind the FF boundary looking forward: only
	// g4 and po2... but g4's output feeds no FF, and q is the FF's own
	// output, which the fault can corrupt, so the FF itself is NOT in
	// the reach (only D-pin faults and cones feeding D are).
	c.SequentialReach([]SignalID{sigID(t, c, "q")}, nil, &r)
	gates = coneGates(t, c, r.Gates)
	g4 := gateOf(t, c, "g4")
	if len(gates) != 1 || !gates[g4] {
		t.Fatalf("reach gates for q = %v, want {%d}", gates, g4)
	}
	if len(r.FFs) != 0 {
		t.Fatalf("reach FFs for q = %v, want none", r.FFs)
	}
	if len(r.POs) != 1 {
		t.Fatalf("reach POs for q = %v, want just po2", r.POs)
	}

	// Reuse of r must fully clear prior state.
	c.SequentialReach([]SignalID{sigID(t, c, "b")}, nil, &r)
	gates = coneGates(t, c, r.Gates)
	if gateOf(t, c, "g2") < int32(len(c.Gates)) && gates[gateOf(t, c, "g2")] {
		t.Fatalf("stale reach state: b does not feed g2 (%v)", gates)
	}

	// Seed FFs alone (D-pin fault) pull in the Q cone.
	c.SequentialReach(nil, []int32{0}, &r)
	gates = coneGates(t, c, r.Gates)
	if len(gates) != 1 || !gates[g4] {
		t.Fatalf("seed-FF reach gates = %v, want {%d}", gates, g4)
	}
	if len(r.FFs) != 1 || r.FFs[0] != 0 {
		t.Fatalf("seed-FF reach FFs = %v, want [0]", r.FFs)
	}
}
