// Package netlist provides a gate-level model of synchronous sequential
// circuits: typed combinational gates, D flip-flops, primary inputs and
// primary outputs, together with structural validation and levelization.
//
// The model is deliberately close to the ISCAS-89 benchmark view of a
// circuit: every net (signal) has exactly one driver — a primary input, a
// combinational gate output, or a flip-flop output — and any number of
// readers. Flip-flops are simple D-type registers clocked by an implicit
// single global clock; there is no explicit clock net.
package netlist

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported combinational gate functions.
// All gates except NOT and BUF accept two or more inputs.
type GateType uint8

// Supported gate functions.
const (
	BUF GateType = iota
	NOT
	AND
	NAND
	OR
	NOR
	XOR
	XNOR
)

var gateTypeNames = [...]string{
	BUF:  "BUF",
	NOT:  "NOT",
	AND:  "AND",
	NAND: "NAND",
	OR:   "OR",
	NOR:  "NOR",
	XOR:  "XOR",
	XNOR: "XNOR",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts an upper-case gate name (as used in .bench
// files) into a GateType.
func ParseGateType(s string) (GateType, error) {
	for t, name := range gateTypeNames {
		if name == s {
			return GateType(t), nil
		}
	}
	return 0, fmt.Errorf("netlist: unknown gate type %q", s)
}

// SignalID identifies a net within a Circuit. Signals are densely
// numbered from 0.
type SignalID int32

// InvalidSignal is returned by lookups that find nothing.
const InvalidSignal SignalID = -1

// SignalKind says what drives a signal.
type SignalKind uint8

// Signal driver kinds.
const (
	KindInput SignalKind = iota // primary input
	KindGate                    // combinational gate output
	KindFF                      // flip-flop output (present-state variable)
)

func (k SignalKind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindFF:
		return "ff"
	}
	return fmt.Sprintf("SignalKind(%d)", uint8(k))
}

// Signal is one net of the circuit.
type Signal struct {
	Name   string
	Kind   SignalKind
	Driver int32 // index into Gates or FFs; -1 for primary inputs
}

// Gate is a combinational gate. Its output signal records the gate as
// driver; In lists the signals read, in pin order.
type Gate struct {
	Type GateType
	Out  SignalID
	In   []SignalID
}

// FF is a D flip-flop. Q is the output signal (present-state variable),
// D the signal feeding the data input (next-state variable).
type FF struct {
	Q SignalID
	D SignalID
}

// Circuit is an immutable synchronous sequential circuit. Build one with
// a Builder. The zero Circuit is not usable.
type Circuit struct {
	Name    string
	Signals []Signal
	Gates   []Gate
	FFs     []FF
	Inputs  []SignalID // primary inputs, in declaration order
	Outputs []SignalID // primary outputs, in declaration order

	// Order lists gate indices in a valid combinational evaluation
	// order (every gate appears after all gates driving its inputs).
	Order []int32
	// Level[g] is the logic level of gate g: 1 + max level of its
	// gate-driven inputs (inputs and flip-flop outputs are level 0).
	Level []int32

	byName map[string]SignalID
	// fanout[s] lists the reader pins of signal s.
	fanout [][]PinRef
	// fanoutGates[s] lists the distinct reader gates of signal s in
	// (level, index) order; see FanoutGates.
	fanoutGates [][]int32

	// coneCache memoizes per-signal transitive output cones; see
	// OutputCone.
	coneMu    sync.RWMutex
	coneCache [][]uint64
}

// PinRef identifies one reading pin: input pin Pin of gate Gate, the D
// pin of a flip-flop (FF >= 0), or a primary output (PO >= 0). Exactly
// one of Gate/FF/PO is >= 0.
type PinRef struct {
	Gate int32 // gate index, or -1
	Pin  int32 // input pin within the gate, or -1
	FF   int32 // flip-flop index, or -1
	PO   int32 // index within Circuit.Outputs, or -1
}

// SignalByName looks up a signal by name.
func (c *Circuit) SignalByName(name string) (SignalID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// SignalName returns the name of signal s.
func (c *Circuit) SignalName(s SignalID) string { return c.Signals[s].Name }

// Fanout returns the reader pins of signal s. The returned slice must
// not be modified.
func (c *Circuit) Fanout(s SignalID) []PinRef { return c.fanout[s] }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumFFs returns the number of flip-flops (state variables).
func (c *Circuit) NumFFs() int { return len(c.FFs) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// InputIndex returns the position of signal s within Inputs, or -1.
func (c *Circuit) InputIndex(s SignalID) int {
	for i, in := range c.Inputs {
		if in == s {
			return i
		}
	}
	return -1
}

// OutputIndex returns the position of signal s within Outputs, or -1.
func (c *Circuit) OutputIndex(s SignalID) int {
	for i, out := range c.Outputs {
		if out == s {
			return i
		}
	}
	return -1
}

// FFIndex returns the flip-flop index whose Q is signal s, or -1.
func (c *Circuit) FFIndex(s SignalID) int {
	if c.Signals[s].Kind != KindFF {
		return -1
	}
	return int(c.Signals[s].Driver)
}

// Stats summarizes circuit size.
type Stats struct {
	Inputs, Outputs, FFs, Gates, Signals int
	MaxLevel                             int
}

// Stats returns size statistics for the circuit.
func (c *Circuit) Stats() Stats {
	maxLevel := 0
	for _, l := range c.Level {
		if int(l) > maxLevel {
			maxLevel = int(l)
		}
	}
	return Stats{
		Inputs:   len(c.Inputs),
		Outputs:  len(c.Outputs),
		FFs:      len(c.FFs),
		Gates:    len(c.Gates),
		Signals:  len(c.Signals),
		MaxLevel: maxLevel,
	}
}

// Builder incrementally constructs a Circuit. Methods record errors
// internally; Build reports the first one.
type Builder struct {
	name    string
	signals []Signal
	gates   []Gate
	ffs     []FF
	inputs  []SignalID
	outputs []SignalID
	byName  map[string]SignalID
	pending map[string]SignalID // referenced but not yet driven
	driven  map[SignalID]bool
	err     error
}

// NewBuilder returns a Builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		byName:  make(map[string]SignalID),
		pending: make(map[string]SignalID),
		driven:  make(map[SignalID]bool),
	}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("netlist: "+format, args...)
	}
}

// ref returns the signal with the given name, creating an undriven
// placeholder if it does not exist yet.
func (b *Builder) ref(name string) SignalID {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := SignalID(len(b.signals))
	b.signals = append(b.signals, Signal{Name: name, Kind: KindGate, Driver: -1})
	b.byName[name] = id
	b.pending[name] = id
	return id
}

func (b *Builder) drive(name string, kind SignalKind, driver int32) SignalID {
	id := b.ref(name)
	if b.driven[id] {
		b.fail("signal %q driven twice", name)
		return id
	}
	b.driven[id] = true
	delete(b.pending, name)
	b.signals[id].Kind = kind
	b.signals[id].Driver = driver
	return id
}

// AddInput declares a primary input named name and returns its signal.
func (b *Builder) AddInput(name string) SignalID {
	id := b.drive(name, KindInput, -1)
	b.inputs = append(b.inputs, id)
	return id
}

// AddGate adds a gate of type t whose output net is named out and whose
// inputs are the named signals. It returns the output signal.
func (b *Builder) AddGate(t GateType, out string, in ...string) SignalID {
	switch t {
	case BUF, NOT:
		if len(in) != 1 {
			b.fail("gate %q: %v requires exactly 1 input, got %d", out, t, len(in))
		}
	default:
		if len(in) < 2 {
			b.fail("gate %q: %v requires at least 2 inputs, got %d", out, t, len(in))
		}
	}
	ins := make([]SignalID, len(in))
	for i, n := range in {
		ins[i] = b.ref(n)
	}
	gi := int32(len(b.gates))
	id := b.drive(out, KindGate, gi)
	b.gates = append(b.gates, Gate{Type: t, Out: id, In: ins})
	return id
}

// AddFF adds a D flip-flop whose output (present-state) net is named q
// and whose data input reads the signal named d. It returns the Q
// signal.
func (b *Builder) AddFF(q, d string) SignalID {
	fi := int32(len(b.ffs))
	id := b.drive(q, KindFF, fi)
	b.ffs = append(b.ffs, FF{Q: id, D: b.ref(d)})
	return id
}

// MarkOutput declares the signal named name as a primary output.
func (b *Builder) MarkOutput(name string) {
	b.outputs = append(b.outputs, b.ref(name))
}

// Build validates the circuit (every signal driven, no combinational
// cycles) and returns the finished, levelized Circuit.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pending) > 0 {
		names := make([]string, 0, len(b.pending))
		for n := range b.pending {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("netlist: undriven signals: %v", names)
	}
	c := &Circuit{
		Name:    b.name,
		Signals: b.signals,
		Gates:   b.gates,
		FFs:     b.ffs,
		Inputs:  b.inputs,
		Outputs: b.outputs,
		byName:  b.byName,
	}
	if err := c.levelize(); err != nil {
		return nil, err
	}
	c.buildFanout()
	c.buildFanoutGates()
	c.coneCache = make([][]uint64, len(c.Signals))
	return c, nil
}

// levelize computes a combinational evaluation order and gate levels,
// failing on combinational cycles.
func (c *Circuit) levelize() error {
	n := len(c.Gates)
	indeg := make([]int32, n)
	readers := make([][]int32, len(c.Signals))
	for gi, g := range c.Gates {
		for _, in := range g.In {
			if c.Signals[in].Kind == KindGate {
				indeg[gi]++
				readers[in] = append(readers[in], int32(gi))
			}
		}
	}
	c.Level = make([]int32, n)
	c.Order = make([]int32, 0, n)
	queue := make([]int32, 0, n)
	for gi := range c.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, int32(gi))
			c.Level[gi] = 1
		}
	}
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		c.Order = append(c.Order, gi)
		for _, gj := range readers[c.Gates[gi].Out] {
			indeg[gj]--
			if lv := c.Level[gi] + 1; lv > c.Level[gj] {
				c.Level[gj] = lv
			}
			if indeg[gj] == 0 {
				queue = append(queue, int32(gj))
			}
		}
	}
	if len(c.Order) != n {
		return fmt.Errorf("netlist: circuit %q has a combinational cycle", c.Name)
	}
	return nil
}

func (c *Circuit) buildFanout() {
	c.fanout = make([][]PinRef, len(c.Signals))
	for gi, g := range c.Gates {
		for pin, in := range g.In {
			c.fanout[in] = append(c.fanout[in], PinRef{Gate: int32(gi), Pin: int32(pin), FF: -1, PO: -1})
		}
	}
	for fi, ff := range c.FFs {
		c.fanout[ff.D] = append(c.fanout[ff.D], PinRef{Gate: -1, Pin: -1, FF: int32(fi), PO: -1})
	}
	for oi, out := range c.Outputs {
		c.fanout[out] = append(c.fanout[out], PinRef{Gate: -1, Pin: -1, FF: -1, PO: int32(oi)})
	}
}
