package netlist

import (
	"math/bits"
	"sort"
)

// This file holds the static fanout structures behind event-driven
// fault simulation: per-signal fanout gate lists, per-signal transitive
// output cones (bitsets over gates), and the multi-cycle closure of a
// set of fault sites (SequentialReach).

// FanoutGates returns the distinct gates reading signal s, in ascending
// (level, gate index) order. A gate reading s on several pins appears
// once. The returned slice must not be modified.
func (c *Circuit) FanoutGates(s SignalID) []int32 { return c.fanoutGates[s] }

// buildFanoutGates derives the deduplicated, levelized fanout gate
// lists from the pin-level fanout.
func (c *Circuit) buildFanoutGates() {
	c.fanoutGates = make([][]int32, len(c.Signals))
	for s, readers := range c.fanout {
		var gates []int32
		for _, r := range readers {
			if r.Gate < 0 {
				continue
			}
			dup := false
			for _, gi := range gates {
				if gi == r.Gate {
					dup = true
					break
				}
			}
			if !dup {
				gates = append(gates, r.Gate)
			}
		}
		sort.Slice(gates, func(a, b int) bool {
			la, lb := c.Level[gates[a]], c.Level[gates[b]]
			if la != lb {
				return la < lb
			}
			return gates[a] < gates[b]
		})
		c.fanoutGates[s] = gates
	}
}

// GateWords returns the length of a []uint64 bitset over the circuit's
// gates (one bit per gate).
func (c *Circuit) GateWords() int { return (len(c.Gates) + 63) / 64 }

// OutputCone returns the transitive combinational output cone of signal
// s as a bitset over gate indices: bit g is set iff gate g is reachable
// from s through gate connections only (flip-flops terminate the cone).
// Cones are computed lazily on first request and memoized; the method is
// safe for concurrent use and the returned slice must not be modified.
func (c *Circuit) OutputCone(s SignalID) []uint64 {
	c.coneMu.RLock()
	cone := c.coneCache[s]
	c.coneMu.RUnlock()
	if cone != nil {
		return cone
	}
	cone = make([]uint64, c.GateWords())
	stack := append([]int32(nil), c.fanoutGates[s]...)
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w, b := gi>>6, uint(gi&63)
		if cone[w]&(1<<b) != 0 {
			continue
		}
		cone[w] |= 1 << b
		stack = append(stack, c.fanoutGates[c.Gates[gi].Out]...)
	}
	c.coneMu.Lock()
	if prev := c.coneCache[s]; prev != nil {
		cone = prev // lost a benign race; keep the first published cone
	} else {
		c.coneCache[s] = cone
	}
	c.coneMu.Unlock()
	return cone
}

// Reach is the multi-cycle closure of a set of fault sites: everything a
// fault batch rooted at those sites can ever influence, across any
// number of clock cycles. Reach values are reusable scratch — pass the
// same one to repeated SequentialReach calls to avoid reallocation.
type Reach struct {
	// Gates is a bitset over gate indices: gates whose output can carry
	// a faulty value in some cycle.
	Gates []uint64
	// FFs lists (ascending) the flip-flops whose stored state can
	// diverge from the fault-free state.
	FFs []int32
	// POs lists (ascending) the indices within Circuit.Outputs at which
	// a fault effect can ever be observed.
	POs []int32

	sigMark []bool // scratch: signals that can carry a faulty value
	ffMark  []bool
	marked  []SignalID // signals with sigMark set, for O(touched) reset
	pending []int32    // FF worklist
}

// SequentialReach computes into r the closure of the output cones rooted
// at the site signals plus the given seed flip-flops (sites of D-pin
// faults), iterated across the sequential boundary: whenever a reached
// gate (or site signal) feeds a flip-flop's D pin, that flip-flop's
// state can diverge and its Q cone is added, until a fixpoint. The
// closure is a superset of what any stuck-at fault on those sites can
// influence, so restricting simulation to it is sound.
func (c *Circuit) SequentialReach(sites []SignalID, seedFFs []int32, r *Reach) {
	gw := c.GateWords()
	if r.Gates == nil {
		r.Gates = make([]uint64, gw)
		r.sigMark = make([]bool, len(c.Signals))
		r.ffMark = make([]bool, len(c.FFs))
	}
	for i := range r.Gates {
		r.Gates[i] = 0
	}
	for _, s := range r.marked {
		r.sigMark[s] = false
	}
	for _, fi := range r.FFs {
		r.ffMark[fi] = false
	}
	r.marked = r.marked[:0]
	r.FFs = r.FFs[:0]
	r.POs = r.POs[:0]
	r.pending = r.pending[:0]

	for _, s := range sites {
		c.reachExpand(s, r)
	}
	for _, fi := range seedFFs {
		c.reachAddFF(fi, r)
	}
	for len(r.pending) > 0 {
		fi := r.pending[len(r.pending)-1]
		r.pending = r.pending[:len(r.pending)-1]
		c.reachExpand(c.FFs[fi].Q, r)
	}
	sort.Slice(r.FFs, func(a, b int) bool { return r.FFs[a] < r.FFs[b] })
	for oi, s := range c.Outputs {
		if r.sigMark[s] {
			r.POs = append(r.POs, int32(oi))
		}
	}
}

// reachExpand marks signal s as faulty-capable, unions its output cone
// into the reach, and queues any flip-flop fed by s or by a newly
// reached gate.
func (c *Circuit) reachExpand(s SignalID, r *Reach) {
	c.reachMark(s, r)
	for _, pr := range c.fanout[s] {
		if pr.FF >= 0 {
			c.reachAddFF(pr.FF, r)
		}
	}
	cone := c.OutputCone(s)
	for w, word := range cone {
		fresh := word &^ r.Gates[w]
		if fresh == 0 {
			continue
		}
		r.Gates[w] |= fresh
		for fresh != 0 {
			gi := int32(w*64 + bits.TrailingZeros64(fresh))
			fresh &= fresh - 1
			out := c.Gates[gi].Out
			c.reachMark(out, r)
			for _, pr := range c.fanout[out] {
				if pr.FF >= 0 {
					c.reachAddFF(pr.FF, r)
				}
			}
		}
	}
}

func (c *Circuit) reachMark(s SignalID, r *Reach) {
	if !r.sigMark[s] {
		r.sigMark[s] = true
		r.marked = append(r.marked, s)
	}
}

func (c *Circuit) reachAddFF(fi int32, r *Reach) {
	if !r.ffMark[fi] {
		r.ffMark[fi] = true
		r.FFs = append(r.FFs, fi)
		r.pending = append(r.pending, fi)
	}
}
