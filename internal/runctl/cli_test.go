package runctl

import (
	"os"
	"syscall"
	"testing"
	"time"
)

// TestBuildDrainsOnSIGTERM verifies the signal hook treats SIGTERM like
// SIGINT: the first signal cancels the budget context so engines drain
// and checkpoint. (Only one signal is sent — a second would exit the
// test process.)
func TestBuildDrainsOnSIGTERM(t *testing.T) {
	c := &CLI{Timeout: time.Hour, Program: "runctl-test"}
	ctl, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ctl == nil {
		t.Fatal("Build returned no Control despite -timeout")
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctl.Budget.Ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the budget context")
	}
}

func TestBuildRejectsBadFailpointSpec(t *testing.T) {
	c := &CLI{Failpoints: "site=explode", Program: "runctl-test"}
	if _, err := c.Build(); err == nil {
		t.Fatal("Build accepted a bad -failpoints spec")
	}
}
