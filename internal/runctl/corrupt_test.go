package runctl

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/failpoint"
)

type ckPayload struct {
	N int    `json:"n"`
	S string `json:"s"`
}

func newStoreWithSaves(t *testing.T, saves int) *FileStore {
	t.Helper()
	fs := NewFileStore(filepath.Join(t.TempDir(), "run.ckpt"))
	for i := 1; i <= saves; i++ {
		if err := fs.Save("sec", ckPayload{N: i, S: "gen"}); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	return fs
}

// reopen forgets in-memory state so the next access re-reads disk.
func reopen(fs *FileStore) *FileStore { return NewFileStore(fs.path) }

func TestEnvelopeRoundTrip(t *testing.T) {
	fs := newStoreWithSaves(t, 1)
	var got ckPayload
	ok, err := reopen(fs).Load("sec", &got)
	if err != nil || !ok || got.N != 1 {
		t.Fatalf("Load = (%v, %v), got %+v", ok, err, got)
	}
	data, err := os.ReadFile(fs.path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), FileFormat+" len=") {
		t.Fatalf("file does not start with v2 header: %q", data[:40])
	}
}

func TestLegacyV1StillReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.ckpt")
	v1 := `{"format":"scanatpg-checkpoint/v1","sections":{"sec":{"n":7,"s":"old"}}}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	var got ckPayload
	ok, err := NewFileStore(path).Load("sec", &got)
	if err != nil || !ok || got.N != 7 {
		t.Fatalf("v1 Load = (%v, %v), got %+v", ok, err, got)
	}
}

func corruptKindOf(t *testing.T, err error) CorruptKind {
	t.Helper()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v (%T), want *CorruptError", err, err)
	}
	return ce.Kind
}

func TestCorruptionClassesAreTyped(t *testing.T) {
	cases := []struct {
		name    string
		mangle  func(data []byte) []byte
		kind    CorruptKind
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }, CorruptFraming},
		{"bit flip in ckPayload", func(d []byte) []byte {
			d[len(d)-3] ^= 0x40
			return d
		}, CorruptChecksum},
		{"wrong version", func(d []byte) []byte {
			return append([]byte("scanatpg-checkpoint/v9 len=2 crc=00000000\n{}"), nil...)
		}, CorruptVersion},
		{"foreign contents", func(d []byte) []byte { return []byte("PK\x03\x04 not ours") }, CorruptHeader},
		{"trailing garbage", func(d []byte) []byte { return append(d, []byte("extra")...) }, CorruptFraming},
		{"header torn mid-line", func(d []byte) []byte { return d[:10] }, CorruptFraming},
		{"empty file", func(d []byte) []byte { return nil }, CorruptHeader},
		{"v1 syntax error", func(d []byte) []byte { return []byte("{not json") }, CorruptSection},
		{"v1 foreign format", func(d []byte) []byte {
			return []byte(`{"format":"other-tool/v3","sections":{}}`)
		}, CorruptVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newStoreWithSaves(t, 1) // single generation: no rollback possible
			data, err := os.ReadFile(fs.path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(fs.path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}
			var got ckPayload
			ok, err := reopen(fs).Load("sec", &got)
			if ok || err == nil {
				t.Fatalf("Load on corrupt file = (%v, %v), want typed error", ok, err)
			}
			if kind := corruptKindOf(t, err); kind != tc.kind {
				t.Fatalf("kind = %v, want %v (err: %v)", kind, tc.kind, err)
			}
		})
	}
}

func TestCorruptPrimaryRollsBackToPreviousGeneration(t *testing.T) {
	fs := newStoreWithSaves(t, 3) // primary has n=3, .1 has n=2
	data, err := os.ReadFile(fs.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(fs.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var warns []string
	re := reopen(fs)
	re.Logf = func(f string, a ...any) { warns = append(warns, f) }
	var got ckPayload
	ok, err := re.Load("sec", &got)
	if err != nil || !ok {
		t.Fatalf("Load after corruption = (%v, %v), want rollback", ok, err)
	}
	if got.N != 2 {
		t.Fatalf("rolled-back section n = %d, want 2 (previous generation)", got.N)
	}
	if !re.RolledBack() {
		t.Fatal("RolledBack() = false after generation rollback")
	}
	if len(warns) == 0 {
		t.Fatal("rollback produced no Logf warning")
	}
	// The next Save must quarantine the corrupt primary, not rotate it
	// over the good generation.
	if err := re.Save("sec", ckPayload{N: 4}); err != nil {
		t.Fatalf("Save after rollback: %v", err)
	}
	if _, err := os.Stat(re.quarantinePath()); err != nil {
		t.Fatalf("corrupt primary not quarantined: %v", err)
	}
	var after ckPayload
	if ok, err := reopen(fs).Load("sec", &after); !ok || err != nil || after.N != 4 {
		t.Fatalf("post-quarantine Load = (%v, %v, %+v)", ok, err, after)
	}
}

func TestMissingPrimaryRecoversBackup(t *testing.T) {
	// Simulates a crash between rotate and publish: only .1 exists.
	fs := newStoreWithSaves(t, 2)
	if err := os.Remove(fs.path); err != nil {
		t.Fatal(err)
	}
	var got ckPayload
	re := reopen(fs)
	ok, err := re.Load("sec", &got)
	if err != nil || !ok || got.N != 1 {
		t.Fatalf("Load = (%v, %v, %+v), want recovery of generation .1 (n=1)", ok, err, got)
	}
	if !re.RolledBack() {
		t.Fatal("RolledBack() = false after missing-primary recovery")
	}
}

func TestBothGenerationsCorruptIsTypedThenSaveRecovers(t *testing.T) {
	fs := newStoreWithSaves(t, 2)
	for _, p := range []string{fs.path, fs.backupPath()} {
		if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	re := reopen(fs)
	var got ckPayload
	ok, err := re.Load("sec", &got)
	if ok || !IsCorrupt(err) {
		t.Fatalf("Load with all generations corrupt = (%v, %v), want CorruptError", ok, err)
	}
	if !strings.Contains(err.Error(), "previous generation also unreadable") {
		t.Fatalf("error %q does not mention the failed fallback", err)
	}
	// The store must not wedge: Save quarantines and starts fresh.
	if err := re.Save("sec", ckPayload{N: 9}); err != nil {
		t.Fatalf("Save after double corruption: %v", err)
	}
	var after ckPayload
	if ok, err := reopen(fs).Load("sec", &after); !ok || err != nil || after.N != 9 {
		t.Fatalf("recovered Load = (%v, %v, %+v)", ok, err, after)
	}
	if _, err := os.Stat(re.quarantinePath()); err != nil {
		t.Fatalf("corrupt file not preserved for post-mortem: %v", err)
	}
}

func TestSaveRetriesTransientInjectedErrors(t *testing.T) {
	defer failpoint.Disable()
	fs := newStoreWithSaves(t, 0)
	if err := failpoint.Enable("runctl.store.sync=error@1#1", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("sec", ckPayload{N: 1}); err != nil {
		t.Fatalf("Save with one transient sync error: %v (want retry success)", err)
	}
	if failpoint.Fired("runctl.store.sync") != 1 {
		t.Fatal("injected sync error never fired — test is vacuous")
	}
	var got ckPayload
	if ok, err := reopen(fs).Load("sec", &got); !ok || err != nil || got.N != 1 {
		t.Fatalf("Load = (%v, %v, %+v)", ok, err, got)
	}
}

func TestSaveReportsPersistentErrors(t *testing.T) {
	defer failpoint.Disable()
	fs := newStoreWithSaves(t, 0)
	fs.Backoff = 1 // keep the test fast
	if err := failpoint.Enable("runctl.store.write=error", 1); err != nil {
		t.Fatal(err)
	}
	err := fs.Save("sec", ckPayload{N: 1})
	if err == nil || !failpoint.IsInjected(err) {
		t.Fatalf("Save = %v, want persistent injected error", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not report the retry count", err)
	}
}

func TestTornTempWriteRetriesCleanly(t *testing.T) {
	defer failpoint.Disable()
	fs := newStoreWithSaves(t, 1)
	// Tear the temp-file write once; the retry writes a fresh temp file.
	if err := failpoint.Enable("runctl.store.write=partial:0.3@1", 1); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("sec", ckPayload{N: 2}); err != nil {
		t.Fatalf("Save with torn temp write: %v", err)
	}
	var got ckPayload
	if ok, err := reopen(fs).Load("sec", &got); !ok || err != nil || got.N != 2 {
		t.Fatalf("Load = (%v, %v, %+v)", ok, err, got)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(fs.path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s after retried save", e.Name())
		}
	}
}

func TestClearRemovesAllGenerations(t *testing.T) {
	fs := newStoreWithSaves(t, 3)
	if err := os.WriteFile(fs.quarantinePath(), []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Clear(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{fs.path, fs.backupPath(), fs.quarantinePath()} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s survived Clear", p)
		}
	}
}
