package runctl

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
)

// CLI bundles the run-control command-line parameters the tools share:
// budget flags, the checkpoint file, and resume selection.
type CLI struct {
	Timeout     time.Duration
	Checkpoint  string
	Resume      bool
	MaxAttempts int64
	MaxTrials   int64
	SaveEvery   int
	// Failpoints arms internal/failpoint fault-injection sites
	// (testing only; empty = disabled, zero overhead).
	Failpoints string
	// Program names the tool in interrupt messages.
	Program string
}

// RegisterFlags registers the shared run-control flags on the default
// flag set and returns the CLI to Build after flag.Parse.
func RegisterFlags(program string) *CLI {
	c := &CLI{Program: program}
	flag.DurationVar(&c.Timeout, "timeout", 0, "wall-clock budget (e.g. 30s); on expiry the run stops cleanly with partial results")
	flag.StringVar(&c.Checkpoint, "checkpoint", "", "checkpoint file: run state is saved here for -resume")
	flag.BoolVar(&c.Resume, "resume", false, "resume from the -checkpoint file instead of starting fresh")
	flag.Int64Var(&c.MaxAttempts, "max-attempts", 0, "cap on per-fault generation attempts (0 = unlimited)")
	flag.Int64Var(&c.MaxTrials, "max-trials", 0, "cap on compaction trials (0 = unlimited)")
	flag.IntVar(&c.SaveEvery, "checkpoint-every", 8, "write the periodic checkpoint every n-th work boundary")
	flag.StringVar(&c.Failpoints, "failpoints", "", "arm fault-injection sites for failure testing, e.g. 'runctl.store.rename=kill@3' (see internal/failpoint)")
	return c
}

// Build validates the parameters and constructs the Control, or returns
// (nil, nil) when no run control was requested. When a Control is
// built, SIGINT and SIGTERM are hooked: the first signal cancels the
// budget context, so engines drain in-flight work, write their
// checkpoint and return partial results (the command then exits 0 with
// a partial report); a second signal exits immediately with status 130.
func (c *CLI) Build() (*Control, error) {
	if c.Failpoints != "" {
		if err := failpoint.Enable(c.Failpoints, 1); err != nil {
			return nil, err
		}
	}
	if c.Resume && c.Checkpoint == "" {
		return nil, fmt.Errorf("-resume requires -checkpoint FILE")
	}
	if c.Timeout == 0 && c.Checkpoint == "" && c.MaxAttempts == 0 && c.MaxTrials == 0 {
		return nil, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	ctl := &Control{
		Budget: Budget{
			Ctx:         ctx,
			Timeout:     c.Timeout,
			MaxAttempts: c.MaxAttempts,
			MaxTrials:   c.MaxTrials,
		},
		Resume:    c.Resume,
		SaveEvery: c.SaveEvery,
	}
	if c.Checkpoint != "" {
		fs := NewFileStore(c.Checkpoint)
		fs.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, c.Program+": "+format+"\n", args...)
		}
		ctl.Store = fs
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "%s: %v — draining in-flight work and writing checkpoint (signal again to quit now)\n", c.Program, s)
		cancel()
		<-sig
		os.Exit(130)
	}()
	return ctl, nil
}
