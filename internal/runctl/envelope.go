package runctl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
)

// Checkpoint file formats. v2 frames the JSON payload behind a header
// line carrying an exact length and a CRC32, so truncation, torn
// writes and bit rot are detected instead of surfacing as JSON syntax
// noise (or worse, parsing successfully). v1 files — the bare JSON
// envelope of earlier releases — are still read.
const (
	FileFormat   = "scanatpg-checkpoint/v2"
	fileFormatV1 = "scanatpg-checkpoint/v1"

	// formatPrefix is shared by every version; a file that starts with
	// it but names an unknown version is a version error, not garbage.
	formatPrefix = "scanatpg-checkpoint/"
)

// envelope is the JSON payload layout (shared by v1 and v2; in v2 it
// sits behind the framing header).
type envelope struct {
	Format   string                     `json:"format"`
	Sections map[string]json.RawMessage `json:"sections"`
}

// CorruptKind classifies how a checkpoint failed to decode.
type CorruptKind uint8

const (
	// CorruptHeader: the file matches no known checkpoint layout.
	CorruptHeader CorruptKind = iota
	// CorruptVersion: a checkpoint from an unknown format version.
	CorruptVersion
	// CorruptFraming: the payload length disagrees with the header —
	// a truncated or torn write, or trailing garbage.
	CorruptFraming
	// CorruptChecksum: the payload CRC32 does not match the header.
	CorruptChecksum
	// CorruptSection: the payload (or one section) is not valid JSON.
	CorruptSection
)

func (k CorruptKind) String() string {
	switch k {
	case CorruptHeader:
		return "bad header"
	case CorruptVersion:
		return "unknown version"
	case CorruptFraming:
		return "bad framing"
	case CorruptChecksum:
		return "checksum mismatch"
	case CorruptSection:
		return "bad payload"
	}
	return "corrupt"
}

// CorruptError reports a checkpoint that exists but cannot be trusted.
// Callers distinguish it from transient I/O errors with errors.As (or
// IsCorrupt): corruption triggers generation rollback or documented
// degradation, never a retry of the same bytes.
type CorruptError struct {
	Path   string // backing file ("" for in-memory stores)
	Kind   CorruptKind
	Detail string
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "checkpoint"
	} else {
		where = "checkpoint " + where
	}
	return fmt.Sprintf("runctl: %s corrupt (%s): %s", where, e.Kind, e.Detail)
}

// IsCorrupt reports whether err wraps a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// encodeEnvelope frames sections as a v2 checkpoint: a single header
// line "scanatpg-checkpoint/v2 len=N crc=XXXXXXXX" followed by exactly
// N bytes of JSON payload.
func encodeEnvelope(sections map[string]json.RawMessage) ([]byte, error) {
	payload, err := json.MarshalIndent(envelope{Format: FileFormat, Sections: sections}, "", " ")
	if err != nil {
		return nil, fmt.Errorf("runctl: encode checkpoint: %w", err)
	}
	payload = append(payload, '\n')
	header := fmt.Sprintf("%s len=%d crc=%08x\n", FileFormat, len(payload), crc32.ChecksumIEEE(payload))
	return append([]byte(header), payload...), nil
}

// decodeEnvelope parses a checkpoint file in either format, verifying
// v2 framing and checksum. Decode failures are *CorruptError.
func decodeEnvelope(path string, data []byte) (map[string]json.RawMessage, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return decodeV1(path, trimmed)
	}
	if !bytes.HasPrefix(data, []byte(formatPrefix)) {
		if len(data) > 0 && bytes.HasPrefix([]byte(formatPrefix), data) {
			// A prefix of the magic: the header itself was torn.
			return nil, &CorruptError{Path: path, Kind: CorruptFraming,
				Detail: "header line truncated"}
		}
		return nil, &CorruptError{Path: path, Kind: CorruptHeader,
			Detail: "not a scanatpg checkpoint"}
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, &CorruptError{Path: path, Kind: CorruptFraming,
			Detail: "header line truncated"}
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || !strings.HasPrefix(fields[1], "len=") || !strings.HasPrefix(fields[2], "crc=") {
		return nil, &CorruptError{Path: path, Kind: CorruptHeader,
			Detail: fmt.Sprintf("malformed header %q", string(data[:nl]))}
	}
	if fields[0] != FileFormat {
		return nil, &CorruptError{Path: path, Kind: CorruptVersion,
			Detail: fmt.Sprintf("format %q, want %q", fields[0], FileFormat)}
	}
	var wantLen int
	if _, err := fmt.Sscanf(fields[1], "len=%d", &wantLen); err != nil || wantLen < 0 {
		return nil, &CorruptError{Path: path, Kind: CorruptHeader,
			Detail: fmt.Sprintf("bad length field %q", fields[1])}
	}
	var wantCRC uint32
	if _, err := fmt.Sscanf(fields[2], "crc=%x", &wantCRC); err != nil {
		return nil, &CorruptError{Path: path, Kind: CorruptHeader,
			Detail: fmt.Sprintf("bad checksum field %q", fields[2])}
	}
	payload := data[nl+1:]
	if len(payload) != wantLen {
		verb := "truncated"
		if len(payload) > wantLen {
			verb = "trailing garbage"
		}
		return nil, &CorruptError{Path: path, Kind: CorruptFraming,
			Detail: fmt.Sprintf("%s payload: %d bytes, header framed %d", verb, len(payload), wantLen)}
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, &CorruptError{Path: path, Kind: CorruptChecksum,
			Detail: fmt.Sprintf("crc %08x, header says %08x", got, wantCRC)}
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return nil, &CorruptError{Path: path, Kind: CorruptSection,
			Detail: fmt.Sprintf("payload passed checksum but is not JSON: %v", err)}
	}
	if env.Format != FileFormat {
		return nil, &CorruptError{Path: path, Kind: CorruptVersion,
			Detail: fmt.Sprintf("payload format %q, want %q", env.Format, FileFormat)}
	}
	if env.Sections == nil {
		env.Sections = make(map[string]json.RawMessage)
	}
	return env.Sections, nil
}

// decodeV1 reads the legacy bare-JSON envelope. It has no checksum —
// corruption shows up only as JSON syntax or format-string errors.
func decodeV1(path string, data []byte) (map[string]json.RawMessage, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &CorruptError{Path: path, Kind: CorruptSection,
			Detail: fmt.Sprintf("invalid JSON: %v", err)}
	}
	if env.Format != fileFormatV1 {
		return nil, &CorruptError{Path: path, Kind: CorruptVersion,
			Detail: fmt.Sprintf("format %q, want %q or %q", env.Format, FileFormat, fileFormatV1)}
	}
	if env.Sections == nil {
		env.Sections = make(map[string]json.RawMessage)
	}
	return env.Sections, nil
}
