package runctl

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNilControlIsInert(t *testing.T) {
	var c *Control
	if st, stop := c.ShouldStop(); stop || st != Complete {
		t.Fatalf("nil ShouldStop = %v, %v", st, stop)
	}
	if st, stop := c.Attempt(); stop || st != Complete {
		t.Fatalf("nil Attempt = %v, %v", st, stop)
	}
	if st, stop := c.Trial(); stop || st != Complete {
		t.Fatalf("nil Trial = %v, %v", st, stop)
	}
	if c.Resuming() {
		t.Fatal("nil Resuming = true")
	}
	if err := c.Save("x", 1); err != nil {
		t.Fatalf("nil Save: %v", err)
	}
	if ok, err := c.Load("x", new(int)); ok || err != nil {
		t.Fatalf("nil Load = %v, %v", ok, err)
	}
}

func TestStatusClassification(t *testing.T) {
	for _, st := range []Status{Canceled, DeadlineExceeded, BudgetExhausted, Failed} {
		if !st.Stopped() || st.Done() {
			t.Errorf("%v: Stopped=%v Done=%v", st, st.Stopped(), st.Done())
		}
	}
	for _, st := range []Status{Complete, Resumed} {
		if st.Stopped() || !st.Done() {
			t.Errorf("%v: Stopped=%v Done=%v", st, st.Stopped(), st.Done())
		}
	}
	if Complete.String() != "complete" || DeadlineExceeded.String() != "deadline exceeded" {
		t.Errorf("unexpected status names %q, %q", Complete, DeadlineExceeded)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Control{Budget: Budget{Ctx: ctx}}
	if _, stop := c.ShouldStop(); stop {
		t.Fatal("stopped before cancel")
	}
	cancel()
	st, stop := c.ShouldStop()
	if !stop || st != Canceled {
		t.Fatalf("after cancel: %v, %v", st, stop)
	}
	// Sticky: later polls report the same status.
	if st, _ := c.Attempt(); st != Canceled {
		t.Fatalf("sticky status = %v", st)
	}
}

func TestStopAfterPolls(t *testing.T) {
	c := &Control{Budget: Budget{StopAfterPolls: 3}}
	for i := 0; i < 2; i++ {
		if st, stop := c.ShouldStop(); stop {
			t.Fatalf("poll %d: stopped early (%v)", i+1, st)
		}
	}
	st, stop := c.ShouldStop()
	if !stop || st != Canceled {
		t.Fatalf("3rd poll = %v, %v; want canceled stop", st, stop)
	}
	// Sticky: later polls report the same status.
	if st, stop := c.Trial(); !stop || st != Canceled {
		t.Fatalf("sticky status = %v, %v", st, stop)
	}
}

// TestStopAfterPollsCountsAttemptsAndTrials: Attempt and Trial poll
// through ShouldStop, so they advance the injection counter too.
func TestStopAfterPollsCountsAttemptsAndTrials(t *testing.T) {
	c := &Control{Budget: Budget{StopAfterPolls: 2}}
	if st, stop := c.Attempt(); stop {
		t.Fatalf("1st attempt stopped early (%v)", st)
	}
	if st, stop := c.Trial(); !stop || st != Canceled {
		t.Fatalf("2nd poll (trial) = %v, %v; want canceled stop", st, stop)
	}
}

func TestDeadline(t *testing.T) {
	c := &Control{Budget: Budget{Timeout: time.Millisecond}}
	c.ShouldStop() // starts the clock
	deadline := time.Now().Add(time.Second)
	for {
		if st, stop := c.ShouldStop(); stop {
			if st != DeadlineExceeded {
				t.Fatalf("status = %v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline never fired")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAttemptAndTrialBudgets(t *testing.T) {
	c := &Control{Budget: Budget{MaxAttempts: 3, MaxTrials: 2}}
	for i := 0; i < 3; i++ {
		if st, stop := c.Attempt(); stop {
			t.Fatalf("attempt %d stopped early: %v", i, st)
		}
	}
	if st, stop := c.Attempt(); !stop || st != BudgetExhausted {
		t.Fatalf("4th attempt = %v, %v", st, stop)
	}
	// Attempts exhausting the budget also stops trials (sticky).
	if st, stop := c.Trial(); !stop || st != BudgetExhausted {
		t.Fatalf("trial after exhaustion = %v, %v", st, stop)
	}
}

func TestTrialBudgetIndependent(t *testing.T) {
	c := &Control{Budget: Budget{MaxTrials: 2}}
	for i := 0; i < 2; i++ {
		if _, stop := c.Trial(); stop {
			t.Fatalf("trial %d stopped early", i)
		}
	}
	if st, stop := c.Trial(); !stop || st != BudgetExhausted {
		t.Fatalf("3rd trial = %v, %v", st, stop)
	}
	// No attempt cap: attempts keep going but see the sticky stop.
	if st, stop := c.Attempt(); !stop || st != BudgetExhausted {
		t.Fatalf("attempt = %v, %v", st, stop)
	}
}

type payload struct {
	N   int      `json:"n"`
	Seq []string `json:"seq"`
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	fs := NewFileStore(path)
	if ok, err := fs.Load("gen", new(payload)); ok || err != nil {
		t.Fatalf("load before save = %v, %v", ok, err)
	}
	want := payload{N: 7, Seq: []string{"01x", "110"}}
	if err := fs.Save("gen", want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("sim", payload{N: 1}); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same file sees both sections.
	fresh := NewFileStore(path)
	var got payload
	ok, err := fresh.Load("gen", &got)
	if err != nil || !ok {
		t.Fatalf("reload = %v, %v", ok, err)
	}
	if got.N != want.N || len(got.Seq) != 2 || got.Seq[0] != "01x" {
		t.Fatalf("round trip: got %+v", got)
	}
	var other payload
	if ok, _ := fresh.Load("sim", &other); !ok || other.N != 1 {
		t.Fatalf("second section lost: %+v ok=%v", other, ok)
	}

	// No stray temp files remain next to the checkpoint.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}

	if err := fresh.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file survives Clear: %v", err)
	}
}

func TestFileStoreRejectsCorruptAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(corrupt).Load("x", new(int)); err == nil {
		t.Fatal("corrupt file accepted")
	}
	foreign := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"format":"other/v9","sections":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(foreign).Load("x", new(int)); err == nil {
		t.Fatal("foreign format accepted")
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	m := NewMemStore()
	if err := m.Save("s", payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if ok, err := m.Load("s", &got); !ok || err != nil || got.N != 3 {
		t.Fatalf("load = %+v, %v, %v", got, ok, err)
	}
	if err := m.Clear(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Load("s", &got); ok {
		t.Fatal("section survives Clear")
	}
}

func TestCheckpointThrottle(t *testing.T) {
	m := NewMemStore()
	c := &Control{Store: m, SaveEvery: 4}
	for i := 0; i < 7; i++ {
		if err := c.Checkpoint("s", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	var got payload
	ok, _ := m.Load("s", &got)
	if !ok || got.N != 3 {
		// Ticks 1..7, only the 4th saves (N=3); 8th has not happened.
		t.Fatalf("throttled state = %+v ok=%v", got, ok)
	}
	// Save is never throttled.
	if err := c.Save("s", payload{N: 99}); err != nil {
		t.Fatal(err)
	}
	m.Load("s", &got)
	if got.N != 99 {
		t.Fatalf("unthrottled save lost: %+v", got)
	}
}

func TestResumeRequiresStoreAndFlag(t *testing.T) {
	m := NewMemStore()
	m.Save("s", payload{N: 5})
	noResume := &Control{Store: m}
	if noResume.Resuming() {
		t.Fatal("Resuming without flag")
	}
	if ok, _ := noResume.Load("s", new(payload)); ok {
		t.Fatal("Load without resume flag returned data")
	}
	withResume := &Control{Store: m, Resume: true}
	var got payload
	if ok, _ := withResume.Load("s", &got); !ok || got.N != 5 {
		t.Fatalf("resume load = %+v ok=%v", got, ok)
	}
}

func TestStatusTextRoundTrip(t *testing.T) {
	for st := Complete; st <= Failed; st++ {
		b, err := st.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var got Status
		if err := got.UnmarshalText(b); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if got != st {
			t.Errorf("round trip %v -> %q -> %v", st, b, got)
		}
	}
	var bad Status
	if err := bad.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("unmarshal of unknown status name succeeded")
	}
}
