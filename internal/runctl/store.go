package runctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// Store persists named checkpoint sections. One store backs a whole
// pipeline run: each engine owns a section ("generate", "restore",
// "omit", "sim") and the orchestrator may add its own ("meta"), so a
// single checkpoint file describes the full run state.
type Store interface {
	// Save replaces the named section with the JSON encoding of v,
	// persisting the whole store atomically.
	Save(section string, v any) error
	// Load decodes the named section into v, reporting false when the
	// section does not exist.
	Load(section string, v any) (bool, error)
	// Clear discards all sections (and deletes any backing file).
	Clear() error
}

// Defaults for FileStore's bounded retry of transient I/O errors.
const (
	defaultRetries = 2
	defaultBackoff = 2 * time.Millisecond
)

// Failpoint sites on the FileStore I/O path (armed only under
// internal/failpoint; production cost is one atomic nil load each).
const (
	fpStoreRead    = "runctl.store.read"
	fpStoreWrite   = "runctl.store.write"
	fpStoreSync    = "runctl.store.sync"
	fpStoreRotate  = "runctl.store.rotate"
	fpStoreRename  = "runctl.store.rename"
	fpStoreDirSync = "runctl.store.dirsync"
)

// FileStore is a Store backed by one framed, checksummed file (see
// envelope.go). Every Save rewrites the file through a fsynced
// temp-file-plus-rename in the same directory followed by a directory
// fsync, so a crash — or a power loss — can never leave a torn
// checkpoint: the file always holds either the previous or the new
// complete state, and the rename is durable.
//
// Saves keep one previous generation: before publishing, the current
// file is rotated to path+".1". If the primary is later found corrupt
// (or missing — a crash can land between rotate and publish), loading
// rolls back to the last valid generation automatically; the corrupt
// primary is preserved as path+".corrupt" for post-mortem on the next
// Save. Only when every generation is unreadable does Load surface a
// *CorruptError — and even then a subsequent Save quarantines the bad
// file and starts a fresh store rather than wedging the run forever.
//
// Transient I/O errors (as opposed to corruption) are retried a few
// times with a short backoff before being reported.
type FileStore struct {
	path string

	// Logf, when set, receives warnings about generation rollback and
	// quarantine. The CLI points it at stderr; engines stay silent.
	Logf func(format string, args ...any)

	// Retries and Backoff bound the transient-error retry loop
	// (defaults: 2 retries, 2ms initial backoff, doubling).
	Retries int
	Backoff time.Duration

	mu         sync.Mutex
	loaded     bool
	sections   map[string]json.RawMessage
	loadErr    *CorruptError // every generation corrupt; sticky until Save quarantines
	primaryBad bool          // primary file corrupt on disk; quarantine before next publish
	rolledBack bool          // sections came from the .1 generation
}

// NewFileStore returns a FileStore at path. The file is read lazily on
// first access and created on first Save.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Path returns the backing file path.
func (f *FileStore) Path() string { return f.path }

// backupPath is the previous checkpoint generation.
func (f *FileStore) backupPath() string { return f.path + ".1" }

// quarantinePath preserves an unreadable checkpoint for post-mortem.
func (f *FileStore) quarantinePath() string { return f.path + ".corrupt" }

// RolledBack reports whether the store recovered its sections from the
// previous generation because the primary file was corrupt or missing.
func (f *FileStore) RolledBack() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rolledBack
}

func (f *FileStore) logf(format string, args ...any) {
	if f.Logf != nil {
		f.Logf(format, args...)
	}
}

func (f *FileStore) retrySpec() (int, time.Duration) {
	r, b := f.Retries, f.Backoff
	if r <= 0 {
		r = defaultRetries
	}
	if b <= 0 {
		b = defaultBackoff
	}
	return r, b
}

// withRetry runs fn, retrying transient errors with doubling backoff.
// Corruption is never retried: rereading the same bytes cannot help.
func (f *FileStore) withRetry(op string, fn func() error) error {
	retries, backoff := f.retrySpec()
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if IsCorrupt(err) || attempt >= retries {
			break
		}
		time.Sleep(backoff << attempt)
	}
	if IsCorrupt(err) {
		return err
	}
	return fmt.Errorf("runctl: %s failed after %d attempts: %w", op, retries+1, err)
}

// readGeneration reads and decodes one generation file. A missing file
// is (nil, fs.ErrNotExist); undecodable contents are *CorruptError.
func (f *FileStore) readGeneration(path string) (map[string]json.RawMessage, error) {
	var data []byte
	err := f.withRetry("read checkpoint", func() error {
		if err := failpoint.Inject(fpStoreRead); err != nil {
			return err
		}
		var rerr error
		data, rerr = os.ReadFile(path)
		if errors.Is(rerr, fs.ErrNotExist) {
			return nil // not transient; checked below
		}
		return rerr
	})
	if err != nil {
		return nil, err
	}
	if data == nil {
		if _, serr := os.Stat(path); errors.Is(serr, fs.ErrNotExist) {
			return nil, fs.ErrNotExist
		}
		data = []byte{}
	}
	return decodeEnvelope(path, data)
}

// load populates sections from the primary generation, falling back to
// the previous one when the primary is corrupt or missing. With every
// generation unreadable it records a sticky *CorruptError: Loads fail
// with it (typed, no silent acceptance) until a Save quarantines the
// bad file and starts fresh.
func (f *FileStore) load() error {
	if f.loaded {
		return nil
	}
	f.sections = make(map[string]json.RawMessage)
	sections, err := f.readGeneration(f.path)
	switch {
	case err == nil:
		f.sections = sections
		f.loaded = true
		return nil
	case errors.Is(err, fs.ErrNotExist):
		// No primary. A crash between rotate and publish leaves only
		// the previous generation — recover it.
		prev, perr := f.readGeneration(f.backupPath())
		if perr == nil && prev != nil {
			f.sections = prev
			f.rolledBack = true
			f.loaded = true
			f.logf("checkpoint %s missing; recovered previous generation %s", f.path, f.backupPath())
			return nil
		}
		f.loaded = true // genuinely fresh store
		return nil
	case IsCorrupt(err):
		f.primaryBad = true
		prev, perr := f.readGeneration(f.backupPath())
		if perr == nil && prev != nil {
			f.sections = prev
			f.rolledBack = true
			f.loaded = true
			f.logf("checkpoint corrupt (%v); rolled back to previous generation %s", err, f.backupPath())
			return nil
		}
		// Both generations unreadable: report the primary's corruption.
		ce := err.(*CorruptError)
		if perr != nil && !errors.Is(perr, fs.ErrNotExist) {
			ce = &CorruptError{Path: ce.Path, Kind: ce.Kind,
				Detail: fmt.Sprintf("%s; previous generation also unreadable: %v", ce.Detail, perr)}
		}
		f.loadErr = ce
		f.loaded = true
		return nil
	default:
		f.sections = nil
		return err // transient read failure: not sticky, retried next call
	}
}

// Save implements Store.
func (f *FileStore) Save(section string, v any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.load(); err != nil {
		return err
	}
	if f.loadErr != nil {
		// Every generation was corrupt. Quarantine the primary and
		// start a fresh store so the run can make progress again.
		if err := os.Rename(f.path, f.quarantinePath()); err == nil {
			f.logf("quarantined corrupt checkpoint as %s; starting a fresh store", f.quarantinePath())
		}
		f.sections = make(map[string]json.RawMessage)
		f.loadErr = nil
		f.primaryBad = false
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runctl: encode section %q: %w", section, err)
	}
	f.sections[section] = raw
	data, err := encodeEnvelope(f.sections)
	if err != nil {
		return err
	}
	return f.withRetry("write checkpoint", func() error { return f.publish(data) })
}

// publish writes data next to the target, fsyncs it, rotates the
// current generation aside, renames the temp file into place and
// fsyncs the directory — the full crash-durable write path.
func (f *FileStore) publish(data []byte) error {
	dir := filepath.Dir(f.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(f.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := failpoint.InjectWrite(fpStoreWrite, tmp, data); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	if err := failpoint.Inject(fpStoreSync); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: sync checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runctl: close checkpoint: %w", err)
	}
	if f.primaryBad {
		// Never rotate a corrupt primary over the good previous
		// generation — park it for post-mortem instead.
		if err := os.Rename(f.path, f.quarantinePath()); err == nil {
			f.logf("quarantined corrupt checkpoint as %s", f.quarantinePath())
		}
		f.primaryBad = false
	} else if _, err := os.Stat(f.path); err == nil {
		if err := failpoint.Inject(fpStoreRotate); err != nil {
			return fmt.Errorf("runctl: rotate checkpoint: %w", err)
		}
		if err := os.Rename(f.path, f.backupPath()); err != nil {
			return fmt.Errorf("runctl: rotate checkpoint: %w", err)
		}
	}
	if err := failpoint.Inject(fpStoreRename); err != nil {
		return fmt.Errorf("runctl: publish checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.path); err != nil {
		return fmt.Errorf("runctl: publish checkpoint: %w", err)
	}
	if err := failpoint.Inject(fpStoreDirSync); err != nil {
		return fmt.Errorf("runctl: sync checkpoint directory: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("runctl: sync checkpoint directory: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss, not only process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Load implements Store.
func (f *FileStore) Load(section string, v any) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.load(); err != nil {
		return false, err
	}
	if f.loadErr != nil {
		return false, f.loadErr
	}
	raw, ok := f.sections[section]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, &CorruptError{Path: f.path, Kind: CorruptSection,
			Detail: fmt.Sprintf("section %q: %v", section, err)}
	}
	return true, nil
}

// Clear implements Store.
func (f *FileStore) Clear() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sections = make(map[string]json.RawMessage)
	f.loaded = true
	f.loadErr = nil
	f.primaryBad = false
	f.rolledBack = false
	for _, p := range []string{f.path, f.backupPath(), f.quarantinePath()} {
		if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("runctl: clear checkpoint: %w", err)
		}
	}
	return nil
}

// MemStore is an in-memory Store for tests and embedded use.
type MemStore struct {
	mu       sync.Mutex
	sections map[string]json.RawMessage
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{sections: make(map[string]json.RawMessage)}
}

// Save implements Store.
func (m *MemStore) Save(section string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runctl: encode section %q: %w", section, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sections[section] = raw
	return nil
}

// Load implements Store.
func (m *MemStore) Load(section string, v any) (bool, error) {
	m.mu.Lock()
	raw, ok := m.sections[section]
	m.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, &CorruptError{Kind: CorruptSection,
			Detail: fmt.Sprintf("section %q: %v", section, err)}
	}
	return true, nil
}

// Clear implements Store.
func (m *MemStore) Clear() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sections = make(map[string]json.RawMessage)
	return nil
}
