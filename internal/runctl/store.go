package runctl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// Store persists named checkpoint sections. One store backs a whole
// pipeline run: each engine owns a section ("generate", "restore",
// "omit", "sim") and the orchestrator may add its own ("meta"), so a
// single checkpoint file describes the full run state.
type Store interface {
	// Save replaces the named section with the JSON encoding of v,
	// persisting the whole store atomically.
	Save(section string, v any) error
	// Load decodes the named section into v, reporting false when the
	// section does not exist.
	Load(section string, v any) (bool, error)
	// Clear discards all sections (and deletes any backing file).
	Clear() error
}

// envelope is the on-disk checkpoint file layout.
type envelope struct {
	Format   string                     `json:"format"`
	Sections map[string]json.RawMessage `json:"sections"`
}

// FileFormat identifies the checkpoint file envelope.
const FileFormat = "scanatpg-checkpoint/v1"

// FileStore is a Store backed by one JSON file. Every Save rewrites the
// file through a temp-file-plus-rename in the same directory, so a
// crash (or SIGKILL) mid-write can never leave a torn checkpoint: the
// file always holds either the previous or the new complete state.
type FileStore struct {
	path string

	mu       sync.Mutex
	loaded   bool
	sections map[string]json.RawMessage
}

// NewFileStore returns a FileStore at path. The file is read lazily on
// first access and created on first Save.
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

// Path returns the backing file path.
func (f *FileStore) Path() string { return f.path }

func (f *FileStore) load() error {
	if f.loaded {
		return nil
	}
	f.sections = make(map[string]json.RawMessage)
	data, err := os.ReadFile(f.path)
	if errors.Is(err, fs.ErrNotExist) {
		f.loaded = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("runctl: read checkpoint: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("runctl: checkpoint %s is corrupt: %w", f.path, err)
	}
	if env.Format != FileFormat {
		return fmt.Errorf("runctl: checkpoint %s has format %q, want %q", f.path, env.Format, FileFormat)
	}
	if env.Sections != nil {
		f.sections = env.Sections
	}
	f.loaded = true
	return nil
}

// Save implements Store.
func (f *FileStore) Save(section string, v any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.load(); err != nil {
		return err
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runctl: encode section %q: %w", section, err)
	}
	f.sections[section] = raw
	data, err := json.MarshalIndent(envelope{Format: FileFormat, Sections: f.sections}, "", " ")
	if err != nil {
		return fmt.Errorf("runctl: encode checkpoint: %w", err)
	}
	return writeAtomic(f.path, append(data, '\n'))
}

// Load implements Store.
func (f *FileStore) Load(section string, v any) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.load(); err != nil {
		return false, err
	}
	raw, ok := f.sections[section]
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("runctl: decode section %q: %w", section, err)
	}
	return true, nil
}

// Clear implements Store.
func (f *FileStore) Clear() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sections = make(map[string]json.RawMessage)
	f.loaded = true
	if err := os.Remove(f.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("runctl: clear checkpoint: %w", err)
	}
	return nil
}

// writeAtomic writes data to path via a temp file in the same directory
// followed by a rename, fsyncing the temp file first.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runctl: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runctl: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("runctl: publish checkpoint: %w", err)
	}
	return nil
}

// MemStore is an in-memory Store for tests and embedded use.
type MemStore struct {
	mu       sync.Mutex
	sections map[string]json.RawMessage
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{sections: make(map[string]json.RawMessage)}
}

// Save implements Store.
func (m *MemStore) Save(section string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runctl: encode section %q: %w", section, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sections[section] = raw
	return nil
}

// Load implements Store.
func (m *MemStore) Load(section string, v any) (bool, error) {
	m.mu.Lock()
	raw, ok := m.sections[section]
	m.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("runctl: decode section %q: %w", section, err)
	}
	return true, nil
}

// Clear implements Store.
func (m *MemStore) Clear() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sections = make(map[string]json.RawMessage)
	return nil
}
