// Package runctl is the run-control layer threaded through the
// library's long-running engines: sequential test generation
// (seqatpg.Generate), static compaction (compact.RestoreOpts/OmitOpts)
// and fault simulation (sim.Simulator.Run). A Control carries a Budget
// (context cancellation, wall-clock deadline, attempt/trial caps) and an
// optional checkpoint Store; engines poll it at their natural work
// boundaries — per fault attempt, per compaction trial, per fault batch
// — and, when told to stop, persist their state and return partial
// results tagged with an explicit Status instead of silently truncated
// ones. A run resumed from a checkpoint produces output bit-identical
// to an uninterrupted run.
//
// All Control methods are safe on a nil receiver (every check reports
// "keep going"), so engines poll unconditionally and callers that want
// no budgeting simply leave the Options field nil.
package runctl

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Status classifies how an engine run ended.
type Status uint8

const (
	// Complete: the run finished all its work without a checkpoint
	// restore. The zero value, so results from engines that were never
	// given a Control read as complete.
	Complete Status = iota
	// Resumed: the run restored state from a checkpoint and then
	// finished all remaining work; the result equals an uninterrupted
	// run bit for bit.
	Resumed
	// Canceled: the budget's context was canceled (e.g. SIGINT); the
	// result holds everything finished before the stop.
	Canceled
	// DeadlineExceeded: the wall-clock budget ran out.
	DeadlineExceeded
	// BudgetExhausted: the attempt or trial cap was reached.
	BudgetExhausted
	// Failed: the run stopped on an internal error (e.g. a recovered
	// worker panic); the accompanying error has the detail.
	Failed
)

var statusNames = [...]string{
	Complete:         "complete",
	Resumed:          "resumed",
	Canceled:         "canceled",
	DeadlineExceeded: "deadline exceeded",
	BudgetExhausted:  "budget exhausted",
	Failed:           "failed",
}

// String returns the lower-case human-readable status name.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// MarshalText encodes the status as its String() name, so structs
// embedding a Status (job records, checkpoint envelopes) serialize it
// readably instead of as a bare integer.
func (s Status) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes a status name produced by MarshalText.
func (s *Status) UnmarshalText(text []byte) error {
	name := string(text)
	for st, n := range statusNames {
		if n == name {
			*s = Status(st)
			return nil
		}
	}
	return fmt.Errorf("runctl: unknown status %q", name)
}

// Stopped reports whether the status marks an interrupted run whose
// results are partial (and which a checkpoint can continue).
func (s Status) Stopped() bool {
	switch s {
	case Canceled, DeadlineExceeded, BudgetExhausted, Failed:
		return true
	}
	return false
}

// Done reports whether the status marks a run that finished all its
// work (directly or after a resume).
func (s Status) Done() bool { return s == Complete || s == Resumed }

// Final maps a finished run onto Complete or Resumed depending on
// whether it restored state from a checkpoint.
func Final(resumed bool) Status {
	if resumed {
		return Resumed
	}
	return Complete
}

// Budget bounds a run. The zero value imposes no bound.
type Budget struct {
	// Ctx, when non-nil, cancels the run; engines observe the
	// cancellation at their next work boundary (Canceled status, or
	// DeadlineExceeded when the context expired on its own deadline).
	Ctx context.Context
	// Timeout, when positive, is the wall-clock budget measured from
	// the Control's first poll (so one Control shared by a
	// generate→restore→omit pipeline bounds the whole pipeline).
	Timeout time.Duration
	// MaxAttempts, when positive, caps the per-fault generation
	// attempts charged via Control.Attempt.
	MaxAttempts int64
	// MaxTrials, when positive, caps the compaction trials charged via
	// Control.Trial.
	MaxTrials int64
	// StopAfterPolls, when positive, stops the run with Canceled at the
	// n-th cancellation poll (every ShouldStop, Attempt and Trial call
	// counts as one poll). It is an interrupt-injection hook for
	// correctness harnesses (internal/xcheck): unlike Timeout it lands
	// the stop on an exact, reproducible work boundary — poll sequences
	// are deterministic for single-worker engines — so checkpoint/resume
	// bit-identity can be checked at arbitrary interrupt points without
	// wall-clock flakiness.
	StopAfterPolls int64
}

// Control threads a Budget and an optional checkpoint Store through one
// run (possibly spanning several engines). Construct with a literal;
// the deadline starts ticking at the first poll. A stop is sticky: once
// any poll reports a stop status, every later poll reports the same
// status, so downstream pipeline stages wind down too.
type Control struct {
	// Budget bounds the run.
	Budget Budget
	// Store, when non-nil, receives engine checkpoints. Engines save
	// unconditionally when they stop or finish and periodically (see
	// SaveEvery) at work boundaries in between.
	Store Store
	// Resume makes engines load their section from Store and continue
	// from the persisted state instead of starting fresh.
	Resume bool
	// SaveEvery throttles periodic checkpoint saves to every n-th
	// boundary (<= 1 saves at every boundary). Saves at stop or
	// completion are never throttled.
	SaveEvery int

	initOnce sync.Once
	deadline time.Time

	attempts atomic.Int64
	trials   atomic.Int64
	ticks    atomic.Int64
	polls    atomic.Int64
	stopped  atomic.Int32 // 0 = running, else the sticky Status
}

func (c *Control) init() {
	c.initOnce.Do(func() {
		if c.Budget.Timeout > 0 {
			c.deadline = time.Now().Add(c.Budget.Timeout)
		}
	})
}

// stop records st as the sticky stop status (first stop wins) and
// returns the effective status.
func (c *Control) stop(st Status) Status {
	if c.stopped.CompareAndSwap(0, int32(st)) {
		return st
	}
	return Status(c.stopped.Load())
}

// Fail records an internal error stop (first stop wins).
func (c *Control) Fail() {
	if c == nil {
		return
	}
	c.stop(Failed)
}

// ShouldStop is the cancellation poll engines place at work boundaries:
// it reports a sticky prior stop, context cancellation or an expired
// deadline. The boolean is false while the run may continue.
func (c *Control) ShouldStop() (Status, bool) {
	if c == nil {
		return Complete, false
	}
	c.init()
	if st := Status(c.stopped.Load()); st != 0 {
		return st, true
	}
	if ctx := c.Budget.Ctx; ctx != nil {
		switch ctx.Err() {
		case nil:
		case context.DeadlineExceeded:
			return c.stop(DeadlineExceeded), true
		default:
			return c.stop(Canceled), true
		}
	}
	if !c.deadline.IsZero() && !time.Now().Before(c.deadline) {
		return c.stop(DeadlineExceeded), true
	}
	if n := c.Budget.StopAfterPolls; n > 0 && c.polls.Add(1) >= n {
		return c.stop(Canceled), true
	}
	return Complete, false
}

// Attempt charges one generation attempt against the budget and polls
// cancellation. When it reports a stop the attempt must not be
// performed; the engine checkpoints and returns partial results.
func (c *Control) Attempt() (Status, bool) {
	if c == nil {
		return Complete, false
	}
	if st, stop := c.ShouldStop(); stop {
		return st, true
	}
	if max := c.Budget.MaxAttempts; max > 0 && c.attempts.Add(1) > max {
		return c.stop(BudgetExhausted), true
	}
	return Complete, false
}

// Trial charges one compaction trial against the budget and polls
// cancellation, with the same contract as Attempt.
func (c *Control) Trial() (Status, bool) {
	if c == nil {
		return Complete, false
	}
	if st, stop := c.ShouldStop(); stop {
		return st, true
	}
	if max := c.Budget.MaxTrials; max > 0 && c.trials.Add(1) > max {
		return c.stop(BudgetExhausted), true
	}
	return Complete, false
}

// Resuming reports whether engines should load state from the Store.
func (c *Control) Resuming() bool {
	return c != nil && c.Store != nil && c.Resume
}

// Load reads the named checkpoint section into v when resuming. It
// returns false when not resuming or when the section is absent.
func (c *Control) Load(section string, v any) (bool, error) {
	if !c.Resuming() {
		return false, nil
	}
	return c.Store.Load(section, v)
}

// Save persists the named checkpoint section unconditionally (used when
// an engine stops or finishes). It is a no-op without a Store.
func (c *Control) Save(section string, v any) error {
	if c == nil || c.Store == nil {
		return nil
	}
	return c.Store.Save(section, v)
}

// Checkpoint is the throttled periodic variant of Save: only every
// SaveEvery-th call actually persists.
func (c *Control) Checkpoint(section string, v any) error {
	if c == nil || c.Store == nil {
		return nil
	}
	if n := c.SaveEvery; n > 1 && c.ticks.Add(1)%int64(n) != 0 {
		return nil
	}
	return c.Store.Save(section, v)
}
