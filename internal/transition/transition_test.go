package transition_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/transition"
)

func mustParse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSlowToRiseSemantics: a buffer's slow-to-rise fault shows the old
// 0 for one extra cycle on a 0->1 transition and is transparent on
// 1->0.
func TestSlowToRiseSemantics(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUF(a)
`)
	y, _ := c.SignalByName("y")
	m := sim.New(c)
	if err := m.InjectTransitionFault(y, true, 1); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		in   logic.Value
		want logic.Value
	}{
		{logic.Zero, logic.Zero}, // settle (prev X -> AND(0,X)=0)
		{logic.One, logic.Zero},  // rising edge delayed
		{logic.One, logic.One},   // arrives one cycle late
		{logic.Zero, logic.Zero}, // falling edge immediate
		{logic.One, logic.Zero},  // delayed again
	}
	for i, st := range steps {
		m.Step(logic.Vector{st.in})
		if got := m.OutputSlot(0, 0); got != st.want {
			t.Fatalf("step %d: y = %v, want %v", i, got, st.want)
		}
	}
}

// TestSlowToFallSemantics: dual behaviour for slow-to-fall.
func TestSlowToFallSemantics(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUF(a)
`)
	y, _ := c.SignalByName("y")
	m := sim.New(c)
	if err := m.InjectTransitionFault(y, false, 1); err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		in   logic.Value
		want logic.Value
	}{
		{logic.One, logic.One},   // settle
		{logic.Zero, logic.One},  // falling edge delayed
		{logic.Zero, logic.Zero}, // arrives late
		{logic.One, logic.One},   // rising edge immediate
	}
	for i, st := range steps {
		m.Step(logic.Vector{st.in})
		if got := m.OutputSlot(0, 0); got != st.want {
			t.Fatalf("step %d: y = %v, want %v", i, got, st.want)
		}
	}
}

func TestBothPolaritiesOneSignalDifferentSlots(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUF(a)
`)
	y, _ := c.SignalByName("y")
	m := sim.New(c)
	if err := m.InjectTransitionFault(y, true, 1<<0); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectTransitionFault(y, false, 1<<1); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.Zero})
	m.Step(logic.Vector{logic.One}) // rising edge
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("STR slot on rising edge = %v, want 0", got)
	}
	if got := m.OutputSlot(0, 1); got != logic.One {
		t.Errorf("STF slot on rising edge = %v, want 1", got)
	}
}

func TestUniverseSize(t *testing.T) {
	c, _ := circuits.Load("s27")
	u := transition.Universe(c)
	if len(u) != 2*len(c.Signals) {
		t.Errorf("universe = %d, want %d", len(u), 2*len(c.Signals))
	}
}

// TestGradedCoverageOnGeneratedSequence: the stuck-at sequences the
// library generates achieve substantial transition coverage because
// every vector is applied at-speed.
func TestGradedCoverageOnGeneratedSequence(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	saFaults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, saFaults, seqatpg.Options{Seed: 1})
	res := transition.Run(sc.Scan, gen.Sequence, transition.Universe(sc.Scan))
	if res.Coverage() < 50 {
		t.Errorf("transition coverage = %.2f%%, expected a substantial fraction", res.Coverage())
	}
	t.Logf("transition coverage of stuck-at sequence: %.2f%%", res.Coverage())
}

// TestTransitionHarderThanStuckAt: the same sequence can never detect a
// transition fault at a site before both values were exercised, so
// transition coverage is at most the stuck-at coverage.
func TestTransitionHarderThanStuckAt(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, _ := scan.Insert(c)
	saFaults := fault.Universe(sc.Scan, false)
	gen := seqatpg.Generate(sc, saFaults, seqatpg.Options{Seed: 1})
	sa := sim.Run(sc.Scan, gen.Sequence, saFaults, sim.Options{})
	tr := transition.Run(sc.Scan, gen.Sequence, transition.Universe(sc.Scan))
	saCov := 100 * float64(sa.NumDetected()) / float64(len(saFaults))
	if tr.Coverage() > saCov+1e-9 {
		t.Errorf("transition coverage %.2f%% above stuck-at %.2f%%", tr.Coverage(), saCov)
	}
}

func TestRunEmpty(t *testing.T) {
	c, _ := circuits.Load("s27")
	if got := transition.Run(c, nil, transition.Universe(c)); got.NumDetected() != 0 {
		t.Error("empty sequence detected transition faults")
	}
	if got := transition.Run(c, logic.Sequence{logic.NewVector(c.NumInputs())}, nil); len(got.DetectedAt) != 0 {
		t.Error("empty universe produced results")
	}
	var empty transition.Result
	if empty.Coverage() != 100 {
		t.Error("empty coverage != 100")
	}
}

func TestClearFaultsRemovesTransitions(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = BUF(a)
`)
	y, _ := c.SignalByName("y")
	m := sim.New(c)
	if err := m.InjectTransitionFault(y, true, 1); err != nil {
		t.Fatal(err)
	}
	m.ClearFaults()
	m.Step(logic.Vector{logic.Zero})
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.One {
		t.Errorf("transition fault survived ClearFaults: y = %v", got)
	}
}
