// Package transition implements a gross-delay transition fault model on
// top of the simulation machine: slow-to-rise faults delay rising
// transitions of a signal by one clock cycle, slow-to-fall faults delay
// falling ones.
//
// Transition faults are what at-speed scan testing (the topic of the
// paper's comparator [26]) targets. They need vector *pairs* applied in
// consecutive at-speed cycles — which conventional scan testing must
// arrange with special launch/capture timing, but which the paper's
// representation provides for free: every vector of a C_scan test
// sequence is applied in its own functional clock cycle, so transitions
// are launched and captured continuously. This package grades the
// stuck-at test sequences the library generates for that bonus
// transition coverage.
package transition

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Fault is one gross-delay transition fault on a signal stem.
type Fault struct {
	Signal     netlist.SignalID
	SlowToRise bool
}

// Name renders the fault, e.g. "G10 STR" or "G10 STF".
func (f Fault) Name(c *netlist.Circuit) string {
	kind := "STF"
	if f.SlowToRise {
		kind = "STR"
	}
	return fmt.Sprintf("%s %s", c.SignalName(f.Signal), kind)
}

// Universe returns the transition fault list: slow-to-rise and
// slow-to-fall on every signal stem.
func Universe(c *netlist.Circuit) []Fault {
	out := make([]Fault, 0, 2*len(c.Signals))
	for s := range c.Signals {
		sig := netlist.SignalID(s)
		out = append(out,
			Fault{Signal: sig, SlowToRise: true},
			Fault{Signal: sig, SlowToRise: false})
	}
	return out
}

// Result reports transition fault simulation: first detection cycle per
// fault, or sim.NotDetected.
type Result struct {
	DetectedAt []int
}

// NumDetected counts detected faults.
func (r Result) NumDetected() int {
	n := 0
	for _, t := range r.DetectedAt {
		if t != sim.NotDetected {
			n++
		}
	}
	return n
}

// Coverage returns the percentage of faults detected.
func (r Result) Coverage() float64 {
	if len(r.DetectedAt) == 0 {
		return 100
	}
	return 100 * float64(r.NumDetected()) / float64(len(r.DetectedAt))
}

// Run fault-simulates seq against the transition faults, 64 at a time,
// with the same lockstep early-exit structure as the stuck-at
// simulator. Detection requires a definite mismatch at a primary
// output.
func Run(c *netlist.Circuit, seq logic.Sequence, faults []Fault) Result {
	res := Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = sim.NotDetected
	}
	if len(seq) == 0 || len(faults) == 0 {
		return res
	}
	good := sim.New(c)
	nPO := c.NumOutputs()
	goodPO := make([][]logic.Value, len(seq))
	for t, v := range seq {
		good.Step(v)
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = good.OutputSlot(po, 0)
		}
		goodPO[t] = row
	}
	m := sim.New(c)
	for start := 0; start < len(faults); start += sim.Slots {
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		batch := faults[start:end]
		m.ClearFaults()
		m.Reset()
		for k, f := range batch {
			if err := m.InjectTransitionFault(f.Signal, f.SlowToRise, uint64(1)<<uint(k)); err != nil {
				panic(err) // sites chain per polarity; cannot fail
			}
		}
		allMask := sim.AllSlots
		if len(batch) < sim.Slots {
			allMask = (uint64(1) << uint(len(batch))) - 1
		}
		var detected uint64
		for t, v := range seq {
			m.Step(v)
			for po := 0; po < nPO; po++ {
				gv := goodPO[t][po]
				if !gv.IsBinary() {
					continue
				}
				gz, gd := planes(gv)
				fz, fd := m.OutputPlanes(po)
				newly := sim.DetectMask(gz, gd, fz, fd) &^ detected & allMask
				if newly == 0 {
					continue
				}
				detected |= newly
				for k := 0; k < len(batch); k++ {
					if newly&(uint64(1)<<uint(k)) != 0 {
						res.DetectedAt[start+k] = t
					}
				}
			}
			if detected == allMask {
				break
			}
		}
	}
	return res
}

func planes(v logic.Value) (z, o uint64) {
	if v == logic.Zero {
		return ^uint64(0), 0
	}
	return 0, ^uint64(0)
}
