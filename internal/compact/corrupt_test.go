package compact

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// interruptedRestoreStore runs a budget-limited restoration so a real
// checkpoint lands in the returned store.
func interruptedRestoreStore(t *testing.T, path string) *runctl.FileStore {
	t.Helper()
	sc, faults, seq := fixture(t)
	store := runctl.NewFileStore(path)
	ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 2}, Store: store}
	_, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl})
	if st.Status != runctl.BudgetExhausted {
		t.Fatalf("seed run status %v, want budget exhausted", st.Status)
	}
	return store
}

// degradedRestore resumes a restoration against the store and asserts
// the corruption-degradation contract: the run completes (no Failed
// status, no error), the output matches the uninterrupted pass, and
// the degradation is observable (counter + event).
func degradedRestore(t *testing.T, store runctl.Store) {
	t.Helper()
	sc, faults, seq := fixture(t)
	want, wantSt := RestoreOpts(sc.Scan, seq, faults, Options{})
	rec := obs.NewRecorder(nil, obs.RecorderOptions{})
	ctl := &runctl.Control{Store: store, Resume: true}
	out, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl, Obs: rec})
	if st.Status != runctl.Complete || st.Err != nil {
		t.Fatalf("degraded resume: status %v err %v, want complete/nil", st.Status, st.Err)
	}
	if out.String() != want.String() {
		t.Fatalf("degraded output %d vectors differs from uninterrupted %d", len(out), len(want))
	}
	if st.AfterLen != wantSt.AfterLen {
		t.Fatalf("degraded AfterLen %d, want %d", st.AfterLen, wantSt.AfterLen)
	}
	if n := rec.Snapshot().Counters["restore.ckpt_degraded"]; n != 1 {
		t.Fatalf("restore.ckpt_degraded = %d, want 1", n)
	}
}

// TestRestoreCorruptedCheckpointMaskDegrades: a truncated (hand-edited)
// kept mask must not panic inside unpackMask and must not fail the run:
// corruption demotes to the scratch engine and redoes the pass, with
// output identical to an uninterrupted run.
func TestRestoreCorruptedCheckpointMaskDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	store := interruptedRestoreStore(t, path)

	// Hand-edit the persisted section: truncate the kept mask while
	// leaving the guarding in_len field intact.
	var ck restoreCheckpoint
	if ok, err := store.Load(restoreSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	ck.Kept = ck.Kept[:len(ck.Kept)-1]
	if err := store.Save(restoreSection, ck); err != nil {
		t.Fatal(err)
	}
	degradedRestore(t, runctl.NewFileStore(path))
}

// TestRestoreCorruptedCoveredMaskDegrades: same for the covered mask.
func TestRestoreCorruptedCoveredMaskDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	store := interruptedRestoreStore(t, path)

	var ck restoreCheckpoint
	if ok, err := store.Load(restoreSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	ck.Covered += "0" // extended is as corrupt as truncated
	if err := store.Save(restoreSection, ck); err != nil {
		t.Fatal(err)
	}
	degradedRestore(t, runctl.NewFileStore(path))
}

// TestRestoreWrongRunCheckpointStillFails: a checkpoint from a
// different run (here: a different target order) is NOT corruption and
// must stay a hard failure — degrading would silently compute an
// answer the caller's flags did not ask for.
func TestRestoreWrongRunCheckpointStillFails(t *testing.T) {
	sc, faults, seq := fixture(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	interruptedRestoreStore(t, path) // written with OrderDetection

	ctl := &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}
	_, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl, Order: OrderADI})
	if st.Status != runctl.Failed || st.Err == nil {
		t.Fatalf("wrong-order resume: status %v err %v, want failed", st.Status, st.Err)
	}
	if !strings.Contains(st.Err.Error(), "order") {
		t.Fatalf("error %q does not name the order mismatch", st.Err)
	}
}

// TestOmitCorruptedCheckpointMaskDegrades: the omission pass has the
// same degradation obligation for its kept mask and det_at array.
func TestOmitCorruptedCheckpointMaskDegrades(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	want, _ := OmitOpts(sc.Scan, in, faults, Options{})
	store := runctl.NewMemStore()
	ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: store}
	_, st := OmitOpts(sc.Scan, in, faults, Options{Control: ctl})
	if st.Status != runctl.BudgetExhausted {
		t.Fatalf("seed run status %v, want budget exhausted", st.Status)
	}

	var ck omitCheckpoint
	if ok, err := store.Load(omitSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	keptBackup := ck.Kept
	resumeDegraded := func(label string) {
		t.Helper()
		rec := obs.NewRecorder(nil, obs.RecorderOptions{})
		out, st := OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store, Resume: true}, Obs: rec})
		if st.Status != runctl.Complete || st.Err != nil {
			t.Fatalf("%s: status %v err %v, want degraded completion", label, st.Status, st.Err)
		}
		if out.String() != want.String() {
			t.Fatalf("%s: degraded output differs from uninterrupted run", label)
		}
		if n := rec.Snapshot().Counters["omit.ckpt_degraded"]; n != 1 {
			t.Fatalf("%s: omit.ckpt_degraded = %d, want 1", label, n)
		}
	}

	ck.Kept = ck.Kept[:len(ck.Kept)-1]
	if err := store.Save(omitSection, ck); err != nil {
		t.Fatal(err)
	}
	resumeDegraded("truncated kept")

	ck.Kept = keptBackup
	ck.DetAt = ck.DetAt[:len(ck.DetAt)-1]
	if err := store.Save(omitSection, ck); err != nil {
		t.Fatal(err)
	}
	resumeDegraded("truncated det_at")
}

// TestOmitWrongRunCheckpointStillFails: vector/fault-count mismatches
// mean the checkpoint belongs to a different run and must stay fatal.
func TestOmitWrongRunCheckpointStillFails(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	store := runctl.NewMemStore()
	ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: store}
	if _, st := OmitOpts(sc.Scan, in, faults, Options{Control: ctl}); st.Status != runctl.BudgetExhausted {
		t.Fatalf("seed run status %v", st.Status)
	}
	short := in[:len(in)-1]
	_, st := OmitOpts(sc.Scan, short, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if st.Status != runctl.Failed || st.Err == nil {
		t.Fatalf("wrong-length resume: status %v err %v, want failed", st.Status, st.Err)
	}
}

// TestExtraDetectedUsesPrePassSnapshot is the regression test for the
// Omit→countExtra aliasing hazard: the pre-fix code handed countExtra a
// result built from the omitter's live detAt backing array, relying on
// the pass never resetting a detected entry. ExtraDetected must always
// equal an independent recount taken from pristine before/after
// simulations — for both passes, and for a resumed omission whose detAt
// has been round-tripped through a checkpoint.
func TestExtraDetectedUsesPrePassSnapshot(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	before := detectedSet(sc, in, faults)

	runs := []struct {
		label string
		run   func() (detAt []int, st Stats)
	}{
		{"restore", func() ([]int, Stats) {
			out, st := Restore(sc.Scan, in, faults)
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
		{"omit", func() ([]int, Stats) {
			out, st := Omit(sc.Scan, in, faults)
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
		{"omit-resumed", func() ([]int, Stats) {
			store := runctl.NewMemStore()
			ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: store}
			if _, st := OmitOpts(sc.Scan, in, faults, Options{Control: ctl}); !st.Status.Stopped() {
				t.Fatalf("seed leg finished in one trial (status %v)", st.Status)
			}
			out, st := OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
			if st.Status != runctl.Resumed {
				t.Fatalf("resume status %v", st.Status)
			}
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
	}
	for _, r := range runs {
		afterDet, st := r.run()
		want := 0
		for fi := range faults {
			if !before[fi] && afterDet[fi] != sim.NotDetected {
				want++
			}
		}
		if st.ExtraDetected != want {
			t.Errorf("%s: ExtraDetected = %d, independent recount = %d", r.label, st.ExtraDetected, want)
		}
	}
}
