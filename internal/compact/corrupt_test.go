package compact

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runctl"
	"repro/internal/sim"
)

// interruptedRestoreStore runs a budget-limited restoration so a real
// checkpoint lands in the returned store.
func interruptedRestoreStore(t *testing.T, path string) *runctl.FileStore {
	t.Helper()
	sc, faults, seq := fixture(t)
	store := runctl.NewFileStore(path)
	ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 2}, Store: store}
	_, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl})
	if st.Status != runctl.BudgetExhausted {
		t.Fatalf("seed run status %v, want budget exhausted", st.Status)
	}
	return store
}

// TestRestoreCorruptedCheckpointMaskFailsLoad: a truncated (hand-edited)
// kept mask must fail the resume with a "checkpoint mask length
// mismatch" error instead of panicking inside unpackMask.
func TestRestoreCorruptedCheckpointMaskFailsLoad(t *testing.T) {
	sc, faults, seq := fixture(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	store := interruptedRestoreStore(t, path)

	// Hand-edit the persisted section: truncate the kept mask while
	// leaving the guarding in_len field intact.
	var ck restoreCheckpoint
	if ok, err := store.Load(restoreSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	ck.Kept = ck.Kept[:len(ck.Kept)-1]
	if err := store.Save(restoreSection, ck); err != nil {
		t.Fatal(err)
	}

	ctl := &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}
	out, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl})
	if st.Status != runctl.Failed || st.Err == nil {
		t.Fatalf("corrupted resume accepted: status %v err %v (out %d vectors)", st.Status, st.Err, len(out))
	}
	if !strings.Contains(st.Err.Error(), "checkpoint mask length mismatch") {
		t.Fatalf("error %q does not name the mask length mismatch", st.Err)
	}
}

// TestRestoreCorruptedCoveredMaskFailsLoad: same for the covered mask.
func TestRestoreCorruptedCoveredMaskFailsLoad(t *testing.T) {
	sc, faults, seq := fixture(t)
	path := filepath.Join(t.TempDir(), "ckpt.json")
	store := interruptedRestoreStore(t, path)

	var ck restoreCheckpoint
	if ok, err := store.Load(restoreSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	ck.Covered += "0" // extended is as corrupt as truncated
	if err := store.Save(restoreSection, ck); err != nil {
		t.Fatal(err)
	}

	ctl := &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}
	_, st := RestoreOpts(sc.Scan, seq, faults, Options{Control: ctl})
	if st.Status != runctl.Failed || st.Err == nil ||
		!strings.Contains(st.Err.Error(), "checkpoint mask length mismatch") {
		t.Fatalf("corrupted resume: status %v err %v", st.Status, st.Err)
	}
}

// TestOmitCorruptedCheckpointMaskFailsLoad: the omission pass has the
// same obligation for its kept mask and det_at array.
func TestOmitCorruptedCheckpointMaskFailsLoad(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	store := runctl.NewMemStore()
	ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: store}
	_, st := OmitOpts(sc.Scan, in, faults, Options{Control: ctl})
	if st.Status != runctl.BudgetExhausted {
		t.Fatalf("seed run status %v, want budget exhausted", st.Status)
	}

	var ck omitCheckpoint
	if ok, err := store.Load(omitSection, &ck); err != nil || !ok {
		t.Fatalf("load checkpoint: %v %v", ok, err)
	}
	keptBackup := ck.Kept
	ck.Kept = ck.Kept[:len(ck.Kept)-1]
	if err := store.Save(omitSection, ck); err != nil {
		t.Fatal(err)
	}
	_, st = OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if st.Status != runctl.Failed || st.Err == nil ||
		!strings.Contains(st.Err.Error(), "checkpoint mask length mismatch") {
		t.Fatalf("truncated kept accepted: status %v err %v", st.Status, st.Err)
	}

	ck.Kept = keptBackup
	ck.DetAt = ck.DetAt[:len(ck.DetAt)-1]
	if err := store.Save(omitSection, ck); err != nil {
		t.Fatal(err)
	}
	_, st = OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if st.Status != runctl.Failed || st.Err == nil ||
		!strings.Contains(st.Err.Error(), "checkpoint mask length mismatch") {
		t.Fatalf("truncated det_at accepted: status %v err %v", st.Status, st.Err)
	}
}

// TestExtraDetectedUsesPrePassSnapshot is the regression test for the
// Omit→countExtra aliasing hazard: the pre-fix code handed countExtra a
// result built from the omitter's live detAt backing array, relying on
// the pass never resetting a detected entry. ExtraDetected must always
// equal an independent recount taken from pristine before/after
// simulations — for both passes, and for a resumed omission whose detAt
// has been round-tripped through a checkpoint.
func TestExtraDetectedUsesPrePassSnapshot(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	before := detectedSet(sc, in, faults)

	runs := []struct {
		label string
		run   func() (detAt []int, st Stats)
	}{
		{"restore", func() ([]int, Stats) {
			out, st := Restore(sc.Scan, in, faults)
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
		{"omit", func() ([]int, Stats) {
			out, st := Omit(sc.Scan, in, faults)
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
		{"omit-resumed", func() ([]int, Stats) {
			store := runctl.NewMemStore()
			ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: store}
			if _, st := OmitOpts(sc.Scan, in, faults, Options{Control: ctl}); !st.Status.Stopped() {
				t.Fatalf("seed leg finished in one trial (status %v)", st.Status)
			}
			out, st := OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
			if st.Status != runctl.Resumed {
				t.Fatalf("resume status %v", st.Status)
			}
			return sim.Run(sc.Scan, out, faults, sim.Options{}).DetectedAt, st
		}},
	}
	for _, r := range runs {
		afterDet, st := r.run()
		want := 0
		for fi := range faults {
			if !before[fi] && afterDet[fi] != sim.NotDetected {
				want++
			}
		}
		if st.ExtraDetected != want {
			t.Errorf("%s: ExtraDetected = %d, independent recount = %d", r.label, st.ExtraDetected, want)
		}
	}
}
