package compact

import (
	"testing"

	"repro/internal/runctl"
)

func TestOmitWindowArithmetic(t *testing.T) {
	cases := []struct {
		inLen, windows int
	}{{0, 0}, {1, 1}, {15, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3}, {96, 6}}
	for _, tc := range cases {
		if got := OmitWindows(tc.inLen); got != tc.windows {
			t.Errorf("OmitWindows(%d) = %d, want %d", tc.inLen, got, tc.windows)
		}
	}
	// The grid decrements exactly omitBlock per window, so NextT after k
	// windows is inLen - k*omitBlock (floored at 0) and the conversion
	// must invert that for every position on the grid.
	for _, inLen := range []int{1, 16, 17, 40, 96} {
		w := OmitWindows(inLen)
		for k := 0; k <= w; k++ {
			nextT := inLen - k*omitBlock
			if nextT < 0 {
				nextT = 0
			}
			if got := OmitWindowsDone(inLen, nextT); got != k {
				t.Errorf("OmitWindowsDone(%d, %d) = %d, want %d", inLen, nextT, got, k)
			}
		}
	}
	// Chunk ends partition [0, W) monotonically and end at W.
	for _, inLen := range []int{1, 17, 96, 200} {
		for _, chunks := range []int{1, 2, 3, 7} {
			prev := 0
			for c := 0; c < chunks; c++ {
				end := OmitChunkEnd(inLen, chunks, c)
				if end < prev {
					t.Errorf("OmitChunkEnd(%d, %d, %d) = %d below predecessor %d", inLen, chunks, c, end, prev)
				}
				prev = end
			}
			if prev != OmitWindows(inLen) {
				t.Errorf("chunk ends for inLen=%d chunks=%d finish at %d, want %d",
					inLen, chunks, prev, OmitWindows(inLen))
			}
		}
	}
}

func TestComposeKeptAndMasks(t *testing.T) {
	// outer keeps positions {0,2,3,5}; inner drops the 2nd of those.
	composed, err := ComposeKept("101101", "1011")
	if err != nil {
		t.Fatal(err)
	}
	if composed != "100101" {
		t.Fatalf("ComposeKept = %q, want 100101", composed)
	}
	if n := CountKept(composed); n != 3 {
		t.Fatalf("CountKept = %d, want 3", n)
	}
	if _, err := ComposeKept("101", "1"); err == nil {
		t.Fatal("ComposeKept accepted a short inner mask")
	}
	if _, err := ComposeKept("101", "111"); err == nil {
		t.Fatal("ComposeKept accepted a long inner mask")
	}

	sc, _, seq := fixture(t)
	_ = sc
	kept := make([]byte, len(seq))
	for i := range kept {
		if i%2 == 0 {
			kept[i] = '1'
		} else {
			kept[i] = '0'
		}
	}
	sub, err := ApplyMask(seq, string(kept))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != (len(seq)+1)/2 {
		t.Fatalf("ApplyMask kept %d of %d", len(sub), len(seq))
	}
	for i := range sub {
		if sub[i].String() != seq[2*i].String() {
			t.Fatalf("ApplyMask vector %d is not input vector %d", i, 2*i)
		}
	}
	if _, err := ApplyMask(seq, "1"); err == nil {
		t.Fatal("ApplyMask accepted a mask of the wrong length")
	}
}

// TestChunkedRestoreThenOmitMatchesReference: the chunk-chain protocol
// reproduces the single-pass pipeline bit for bit at every chunk
// count, with identical semantic stats.
func TestChunkedRestoreThenOmitMatchesReference(t *testing.T) {
	sc, faults, seq := fixture(t)
	seq = padded(sc, seq)
	wantR, wantO, _, wantOst := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Workers: 1})
	for _, chunks := range []int{1, 2, 3, 5} {
		restored, omitted, _, ost, err := ChunkedRestoreThenOmit(sc.Scan, seq, faults, Options{Workers: 1}, chunks)
		if err != nil {
			t.Fatalf("chunks=%d: %v", chunks, err)
		}
		if len(restored) != len(wantR) {
			t.Fatalf("chunks=%d: restored %d vectors, want %d", chunks, len(restored), len(wantR))
		}
		if len(omitted) != len(wantO) {
			t.Fatalf("chunks=%d: omitted %d vectors, want %d", chunks, len(omitted), len(wantO))
		}
		for i := range omitted {
			if omitted[i].String() != wantO[i].String() {
				t.Fatalf("chunks=%d: vector %d differs from reference", chunks, i)
			}
		}
		gotSem := [4]int{ost.BeforeLen, ost.AfterLen, ost.TargetFaults, ost.ExtraDetected}
		wantSem := [4]int{wantOst.BeforeLen, wantOst.AfterLen, wantOst.TargetFaults, wantOst.ExtraDetected}
		if gotSem != wantSem {
			t.Fatalf("chunks=%d: omit stats %v, want %v", chunks, gotSem, wantSem)
		}
	}
}

// TestOmitChunkAlreadyDone: re-running a chunk whose share is already
// in the checkpoint (a reclaimed lease after the worker finished but
// before it reported) is an immediate no-op with chunkDone true.
func TestOmitChunkAlreadyDone(t *testing.T) {
	sc, faults, seq := fixture(t)
	restored, rst := RestoreOpts(sc.Scan, seq, faults, Options{Workers: 1})
	if !rst.Status.Done() {
		t.Fatalf("restore status %v", rst.Status)
	}
	store := runctl.NewMemStore()
	opts := Options{Workers: 1, Control: &runctl.Control{Store: store}}
	if _, _, chunkDone, err := OmitChunkOpts(sc.Scan, restored, faults, opts, 0, 2); err != nil || !chunkDone {
		t.Fatalf("chunk 0 first run: done=%v err=%v", chunkDone, err)
	}
	opts.Control = &runctl.Control{Store: store}
	out, st, chunkDone, err := OmitChunkOpts(sc.Scan, restored, faults, opts, 0, 2)
	if err != nil || !chunkDone {
		t.Fatalf("chunk 0 re-run: done=%v err=%v", chunkDone, err)
	}
	if out != nil || st.Simulations != 0 {
		t.Fatalf("re-run did work: out=%d vectors, %d simulations", len(out), st.Simulations)
	}
	// Missing store is a usage error, not a crash.
	if _, _, _, err := OmitChunkOpts(sc.Scan, restored, faults, Options{Workers: 1}, 0, 2); err == nil {
		t.Fatal("OmitChunkOpts accepted a nil store")
	}
	if _, _, _, err := OmitChunkOpts(sc.Scan, restored, faults, opts, 5, 2); err == nil {
		t.Fatal("OmitChunkOpts accepted an out-of-range chunk")
	}
}
