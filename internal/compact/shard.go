package compact

import (
	"encoding/json"
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/runctl"
)

// This file is the sharding surface of the omission pass: the window
// grid arithmetic and checkpoint accessors that let a scheduler (the
// jobs service) split one circuit's omission into a chain of
// budget-bounded chunks, each handed to a different worker, with the
// final output bit-identical to a single uninterrupted run.
//
// Sharding leans entirely on machinery the pass already has. Omission
// walks a fixed window grid — t = L, L-16, … with omitBlock-sized
// steps, one budget Trial charged per window — and checkpoints at every
// window boundary, so "run chunk j" is exactly "resume from the
// predecessor's checkpoint with MaxTrials set to this chunk's window
// share". No chunk boundary state exists beyond the ordinary omit
// checkpoint, which is what makes a chunk re-runnable from scratch
// (worker crash, lease reclaim) without any coordination.

// OmitWindows is the number of removal windows omission walks for a
// sequence of inLen vectors: the grid steps omitBlock positions per
// window regardless of how many vectors each window removes.
func OmitWindows(inLen int) int {
	return (inLen + omitBlock - 1) / omitBlock
}

// OmitWindowsDone converts an omit checkpoint's NextT back into the
// number of windows already processed.
func OmitWindowsDone(inLen, nextT int) int {
	return (inLen - nextT + omitBlock - 1) / omitBlock
}

// OmitChunkEnd is the window index (exclusive) chunk j of m owns when
// inLen vectors' windows are split as evenly as the grid allows:
// chunk j covers windows [OmitChunkEnd(j-1), OmitChunkEnd(j)).
func OmitChunkEnd(inLen, chunks, chunk int) int {
	return (chunk + 1) * OmitWindows(inLen) / chunks
}

// OmitState is the scheduler-visible part of an omit checkpoint.
type OmitState struct {
	// NextT is the working-sequence position the next window ends at.
	NextT int
	// Kept marks the input positions still present ('1' per survivor).
	Kept string
	// Done reports a finished pass.
	Done bool
}

// LoadOmitState reads the omit section from store, validated against
// the run shape. ok is false when the section is absent (a fresh run).
func LoadOmitState(store runctl.Store, inLen, nFaults int) (OmitState, bool, error) {
	ctl := &runctl.Control{Store: store, Resume: true}
	ck, ok, err := loadOmitCheckpoint(ctl, inLen, nFaults)
	if err != nil || !ok {
		return OmitState{}, false, err
	}
	return OmitState{NextT: ck.NextT, Kept: ck.Kept, Done: ck.Done}, true, nil
}

// RestoreState is the scheduler-visible part of a restore checkpoint.
type RestoreState struct {
	// Kept marks the input positions restoration kept.
	Kept string
	// Done reports a finished pass.
	Done bool
}

// LoadRestoreState reads the restore section from store, validated
// against the run shape and order policy. ok is false when the section
// is absent.
func LoadRestoreState(store runctl.Store, inLen, nFaults int, order Order) (RestoreState, bool, error) {
	ctl := &runctl.Control{Store: store, Resume: true}
	ck, ok, err := loadRestoreCheckpoint(ctl, inLen, nFaults, order)
	if err != nil || !ok {
		return RestoreState{}, false, err
	}
	return RestoreState{Kept: ck.Kept, Done: ck.Done}, true, nil
}

// ApplyMask selects the '1' positions of kept out of seq — the
// subsequence a kept-mask checkpoint describes.
func ApplyMask(seq logic.Sequence, kept string) (logic.Sequence, error) {
	if len(kept) != len(seq) {
		return nil, maskLenError("apply", len(kept), len(seq))
	}
	out := make(logic.Sequence, 0, len(seq))
	for i := range seq {
		if kept[i] == '1' {
			out = append(out, seq[i])
		}
	}
	return out, nil
}

// ComposeKept maps an inner kept mask (over the sequence the outer mask
// selects) back onto outer's index space: the k-th '1' of outer
// survives iff inner[k] is '1'. Composing restoration's mask with
// omission's yields the input positions of the final compacted
// sequence.
func ComposeKept(outer, inner string) (string, error) {
	out := []byte(outer)
	k := 0
	for i := range out {
		if out[i] != '1' {
			continue
		}
		if k >= len(inner) {
			return "", maskLenError("compose", len(inner), k+1)
		}
		if inner[k] != '1' {
			out[i] = '0'
		}
		k++
	}
	if k != len(inner) {
		return "", maskLenError("compose", len(inner), k)
	}
	return string(out), nil
}

// CountKept is the number of '1' positions in a kept mask.
func CountKept(kept string) int {
	n := 0
	for i := 0; i < len(kept); i++ {
		if kept[i] == '1' {
			n++
		}
	}
	return n
}

// CopySection copies one checkpoint section verbatim between stores —
// how a scheduler seeds chunk j's store from chunk j-1's final
// checkpoint. Copying nothing (section absent) is not an error.
func CopySection(dst, src runctl.Store, section string) error {
	var raw json.RawMessage
	ok, err := src.Load(section, &raw)
	if err != nil || !ok {
		return err
	}
	return dst.Save(section, raw)
}

// OmitSection is the checkpoint section name the omission pass owns,
// exported for CopySection callers.
const OmitSection = omitSection

// OmitChunkOpts runs removal-window chunk `chunk` of `chunks` of an
// omission pass over seq, resuming from whatever omit checkpoint
// opts.Control's store holds (the predecessor chunk's, or this chunk's
// own after an interruption) and stopping once the chunk's window share
// [OmitChunkEnd(chunk-1), OmitChunkEnd(chunk)) is done. The final chunk
// runs to the end of the grid and returns the completed pass's sequence
// and stats.
//
// chunkDone reports the chunk's share finished (for a non-final chunk
// the pass itself is still mid-grid and st.Status is a stopped status
// by construction; the scheduler must treat chunkDone as the completion
// signal, not st.Status). A Control budget tighter than the chunk share
// (spec MaxTrials, deadline, cancel) stops the chunk early with
// chunkDone false, exactly like any other budgeted run.
func OmitChunkOpts(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options, chunk, chunks int) (logic.Sequence, Stats, bool, error) {
	ctl := opts.Control
	if ctl == nil || ctl.Store == nil {
		return nil, Stats{}, false, fmt.Errorf("compact: omission chunks need a checkpoint store")
	}
	if chunk < 0 || chunk >= chunks {
		return nil, Stats{}, false, fmt.Errorf("compact: chunk %d outside %d chunks", chunk, chunks)
	}
	ctl.Resume = true
	windowsDone := 0
	if st, ok, err := LoadOmitState(ctl.Store, len(seq), len(faults)); err != nil {
		return nil, Stats{}, false, err
	} else if ok {
		windowsDone = OmitWindowsDone(len(seq), st.NextT)
		if st.Done {
			windowsDone = OmitWindows(len(seq))
		}
	}
	final := chunk == chunks-1
	end := OmitChunkEnd(len(seq), chunks, chunk)
	if !final {
		if windowsDone >= end {
			// The share is already in the checkpoint — a reclaimed lease
			// re-running a chunk that had finished before its worker died.
			return nil, Stats{}, true, nil
		}
		// The chunk budget is its remaining window share; a tighter
		// caller budget (spec max_trials) keeps precedence so per-job
		// budgeting still suspends chunked jobs.
		budget := int64(end - windowsDone)
		if ctl.Budget.MaxTrials == 0 || budget < ctl.Budget.MaxTrials {
			ctl.Budget.MaxTrials = budget
		}
	}
	out, st := OmitOpts(c, seq, faults, opts)
	if st.Status == runctl.Failed {
		return out, st, false, st.Err
	}
	chunkDone := st.Status.Done()
	if !final && !chunkDone && st.Status == runctl.BudgetExhausted {
		// Distinguish "chunk share done" from "caller budget ran out
		// first" by where the checkpoint landed on the grid.
		if cur, ok, err := LoadOmitState(ctl.Store, len(seq), len(faults)); err != nil {
			return out, st, false, err
		} else if ok {
			done := OmitWindowsDone(len(seq), cur.NextT)
			if cur.Done {
				done = OmitWindows(len(seq))
			}
			chunkDone = done >= end
		}
	}
	return out, st, chunkDone, nil
}

// ChunkedRestoreThenOmit is the single-process reference for the
// sharded compaction protocol: restoration, then the omission grid run
// as `chunks` sequential chunks, each with its own store seeded by
// CopySection from its predecessor — exactly the job scheduler's chunk
// chain, minus the network. Its outputs must be bit-identical to
// RestoreThenOmitOpts at every chunk count; the jobs/worker-claim
// xcheck invariant pins that.
func ChunkedRestoreThenOmit(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options, chunks int) (restored, omitted logic.Sequence, rst, ost Stats, err error) {
	if chunks < 1 {
		return nil, nil, rst, ost, fmt.Errorf("compact: chunk count %d", chunks)
	}
	private := opts.Sim == nil
	opts.Sim = opts.simulator(c)
	if private {
		opts.Sim.Observe(opts.Obs)
	}
	base := opts.Control
	rctl := &runctl.Control{Store: runctl.NewMemStore(), Resume: true}
	if base != nil {
		rctl.Budget = base.Budget
	}
	opts.Control = rctl
	restored, rst = RestoreOpts(c, seq, faults, opts)
	if !rst.Status.Done() {
		ost = Stats{BeforeLen: len(restored), AfterLen: len(restored), Status: rst.Status, Err: rst.Err}
		return restored, restored, rst, ost, rst.Err
	}
	var prev runctl.Store
	for chunk := 0; chunk < chunks; chunk++ {
		store := runctl.NewMemStore()
		if prev != nil {
			if err := CopySection(store, prev, OmitSection); err != nil {
				return restored, nil, rst, ost, err
			}
		}
		ctl := &runctl.Control{Store: store, Resume: true}
		if base != nil {
			ctl.Budget = base.Budget
		}
		opts.Control = ctl
		out, st, chunkDone, err := OmitChunkOpts(c, restored, faults, opts, chunk, chunks)
		if err != nil {
			return restored, out, rst, st, err
		}
		if !chunkDone {
			return restored, out, rst, st, fmt.Errorf("compact: chunk %d/%d stopped: %s", chunk, chunks, st.Status)
		}
		if chunk == chunks-1 {
			omitted, ost = out, st
		}
		prev = store
	}
	return restored, omitted, rst, ost, nil
}
