package compact

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestCompactionSafetyProperty: on randomly generated circuits with
// random (not ATPG-quality) sequences, neither compaction procedure may
// lose a detected fault — the core soundness invariant of Section 4.
func TestCompactionSafetyProperty(t *testing.T) {
	for _, seed := range []uint64{10, 20, 30} {
		c, err := circuits.Synthesize(circuits.Params{
			Name: "prop", Inputs: 3, FFs: 6, Gates: 45, Outputs: 2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc, err := scan.Insert(c)
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Universe(sc.Scan, true)
		rng := logic.NewRandFiller(seed)
		seq := make(logic.Sequence, 120)
		for i := range seq {
			v := logic.NewVector(sc.Scan.NumInputs())
			for j := range v {
				v[j] = rng.Next()
			}
			seq[i] = v
		}
		before := sim.Run(sc.Scan, seq, faults, sim.Options{})

		restored, _ := Restore(sc.Scan, seq, faults)
		afterR := sim.Run(sc.Scan, restored, faults, sim.Options{})
		omitted, _ := Omit(sc.Scan, seq, faults)
		afterO := sim.Run(sc.Scan, omitted, faults, sim.Options{})

		for fi := range faults {
			if !before.Detected(fi) {
				continue
			}
			if !afterR.Detected(fi) {
				t.Errorf("seed %d: restoration lost fault %s", seed, faults[fi].Name(sc.Scan))
			}
			if !afterO.Detected(fi) {
				t.Errorf("seed %d: omission lost fault %s", seed, faults[fi].Name(sc.Scan))
			}
		}
		if len(restored) > len(seq) || len(omitted) > len(seq) {
			t.Errorf("seed %d: compaction grew the sequence", seed)
		}
	}
}

// TestOmitOnMultiChainCircuit: the compaction procedures are agnostic
// to the scan configuration; verify on a 3-chain circuit.
func TestOmitOnMultiChainCircuit(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.InsertChains(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(ch.Scan, true)
	rng := logic.NewRandFiller(4)
	seq := make(logic.Sequence, 150)
	for i := range seq {
		v := logic.NewVector(ch.Scan.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	before := sim.Run(ch.Scan, seq, faults, sim.Options{})
	omitted, _ := Omit(ch.Scan, seq, faults)
	after := sim.Run(ch.Scan, omitted, faults, sim.Options{})
	for fi := range faults {
		if before.Detected(fi) && !after.Detected(fi) {
			t.Errorf("multi-chain omission lost fault %s", faults[fi].Name(ch.Scan))
		}
	}
}
