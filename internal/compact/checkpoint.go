package compact

import (
	"errors"
	"fmt"

	"repro/internal/runctl"
)

// errCheckpointCorrupt marks checkpoint-content errors that mean the
// stored state is damaged (truncated masks, out-of-range positions),
// as opposed to a checkpoint from a different run (vector/fault-count
// or order mismatches). Corruption is recoverable by redoing the pass;
// a wrong-run checkpoint means the caller's flags are wrong and must
// stay a hard failure.
var errCheckpointCorrupt = errors.New("compact: checkpoint corrupt")

// corruptCheckpointError reports whether err is a corruption-class
// load failure — from this package's own validation or from the store
// layer (runctl.CorruptError) — which the compaction passes survive by
// demoting to the scratch engine and redoing the pass from the start.
func corruptCheckpointError(err error) bool {
	return errors.Is(err, errCheckpointCorrupt) || runctl.IsCorrupt(err)
}

// Checkpoint-store sections owned by the two compaction passes.
const (
	restoreSection = "restore"
	omitSection    = "omit"
)

// restoreCheckpoint is the persisted state of an interrupted RestoreOpts
// run. The restoration order is recomputed deterministically from the
// base simulation on resume, so only the loop position and the two bit
// masks need saving.
type restoreCheckpoint struct {
	InLen  int `json:"in_len"`
	Faults int `json:"faults"`
	// Order records the target-order policy the interrupted run used
	// (Order.String()); a resume under a different policy would walk a
	// different order with the same position, so the load refuses it.
	// Absent in checkpoints written before ADI ordering existed, which
	// decodes as "" and matches only OrderDetection.
	Order string `json:"order,omitempty"`
	// Pos is the next restoration-order position to process.
	Pos int `json:"pos"`
	// Kept marks input vectors restored so far ('1' per kept position).
	Kept string `json:"kept"`
	// Covered marks faults the restored subsequence already detects.
	Covered string `json:"covered"`
	Done    bool   `json:"done"`
}

// omitCheckpoint is the persisted state of an interrupted OmitOpts run,
// always taken at a removal-window boundary: a stop inside a window
// resumes from the window's start and redoes it deterministically.
type omitCheckpoint struct {
	InLen  int `json:"in_len"`
	Faults int `json:"faults"`
	// NextT is the working-sequence position the next removal window
	// ends at (windows run from the sequence end toward the front).
	NextT int `json:"next_t"`
	// Kept marks input vectors still present in the working sequence.
	Kept string `json:"kept"`
	// DetAt holds current detection times in working-sequence indices.
	DetAt []int `json:"det_at"`
	Done  bool  `json:"done"`
}

// packMask renders a bool slice as a '0'/'1' string.
func packMask(bs []bool) string {
	m := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			m[i] = '1'
		} else {
			m[i] = '0'
		}
	}
	return string(m)
}

// unpackMask fills bs from a packMask string. A truncated or hand-edited
// checkpoint whose mask length disagrees with the run must fail the load
// instead of panicking on the index below, so the mismatch is reported
// as an error.
func unpackMask(s string, bs []bool) error {
	if len(s) != len(bs) {
		return maskLenError("", len(s), len(bs))
	}
	for i := range bs {
		bs[i] = s[i] == '1'
	}
	return nil
}

// maskLenError builds the canonical checkpoint-mask length mismatch
// error; name (optional) says which mask field disagreed.
func maskLenError(name string, have, want int) error {
	if name == "" {
		return fmt.Errorf("%w: checkpoint mask length mismatch (mask %d, want %d)", errCheckpointCorrupt, have, want)
	}
	return fmt.Errorf("%w: checkpoint mask length mismatch: %s mask %d, want %d", errCheckpointCorrupt, name, have, want)
}

func loadRestoreCheckpoint(ctl *runctl.Control, inLen, nFaults int, order Order) (st restoreCheckpoint, ok bool, err error) {
	ok, err = ctl.Load(restoreSection, &st)
	if err != nil || !ok {
		return st, false, err
	}
	if st.InLen != inLen || st.Faults != nFaults {
		return st, false, fmt.Errorf("compact: restore checkpoint for %d vectors / %d faults, run has %d / %d",
			st.InLen, st.Faults, inLen, nFaults)
	}
	have := st.Order
	if have == "" {
		have = OrderDetection.String()
	}
	if have != order.String() {
		return st, false, fmt.Errorf("compact: restore checkpoint used %s order, run uses %s", have, order)
	}
	if len(st.Kept) != inLen {
		return st, false, maskLenError("restore kept", len(st.Kept), inLen)
	}
	if len(st.Covered) != nFaults {
		return st, false, maskLenError("restore covered", len(st.Covered), nFaults)
	}
	if st.Pos < 0 {
		return st, false, fmt.Errorf("%w: restore checkpoint malformed (pos %d)", errCheckpointCorrupt, st.Pos)
	}
	return st, true, nil
}

func saveRestoreCheckpoint(ctl *runctl.Control, inLen, nFaults int, order Order, pos int, kept, covered []bool, done, final bool) error {
	if ctl == nil || ctl.Store == nil {
		return nil
	}
	st := restoreCheckpoint{
		InLen:   inLen,
		Faults:  nFaults,
		Order:   order.String(),
		Pos:     pos,
		Kept:    packMask(kept),
		Covered: packMask(covered),
		Done:    done,
	}
	if final {
		return ctl.Save(restoreSection, st)
	}
	return ctl.Checkpoint(restoreSection, st)
}

func loadOmitCheckpoint(ctl *runctl.Control, inLen, nFaults int) (st omitCheckpoint, ok bool, err error) {
	ok, err = ctl.Load(omitSection, &st)
	if err != nil || !ok {
		return st, false, err
	}
	if st.InLen != inLen || st.Faults != nFaults {
		return st, false, fmt.Errorf("compact: omit checkpoint for %d vectors / %d faults, run has %d / %d",
			st.InLen, st.Faults, inLen, nFaults)
	}
	if len(st.Kept) != inLen {
		return st, false, maskLenError("omit kept", len(st.Kept), inLen)
	}
	if len(st.DetAt) != nFaults {
		return st, false, fmt.Errorf("%w: checkpoint mask length mismatch: omit det_at %d, want %d",
			errCheckpointCorrupt, len(st.DetAt), nFaults)
	}
	curLen := 0
	for i := 0; i < len(st.Kept); i++ {
		if st.Kept[i] == '1' {
			curLen++
		}
	}
	if st.NextT < 0 || st.NextT > curLen {
		return st, false, fmt.Errorf("%w: omit checkpoint position %d outside working sequence of %d", errCheckpointCorrupt, st.NextT, curLen)
	}
	return st, true, nil
}

func saveOmitCheckpoint(ctl *runctl.Control, inLen, nFaults, nextT int, kept string, detAt []int, done, final bool) error {
	if ctl == nil || ctl.Store == nil {
		return nil
	}
	st := omitCheckpoint{
		InLen:  inLen,
		Faults: nFaults,
		NextT:  nextT,
		Kept:   kept,
		DetAt:  detAt,
		Done:   done,
	}
	if final {
		return ctl.Save(omitSection, st)
	}
	return ctl.Checkpoint(omitSection, st)
}
