package compact

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// ckptStride is the spacing of prefix checkpoints in the omission
// engine.
const ckptStride = 32

// omitter is the trial engine behind Omit. Vector omission processes
// removal candidates from the end of the sequence toward the front, so
// the prefix [0, lo) of the working sequence is always identical to the
// same prefix of the input sequence. The engine exploits that: good
// states for every position and per-batch faulty states every
// ckptStride positions are computed once on the input sequence, and a
// trial only simulates from the removal point forward, only for the
// fault batches whose detections are at stake, each bounded just past
// its latest previous detection.
type omitter struct {
	c      *netlist.Circuit
	sim    *sim.Simulator
	faults []fault.Fault
	in     logic.Sequence // input sequence, never mutated
	cur    logic.Sequence
	idx    []int // idx[i] = input position of cur[i]
	detAt  []int

	good       *sim.Machine
	goodStates []sim.State     // state after vector t of the input prefix
	goodPO     [][]logic.Value // PO values at vector t of the input prefix

	batches []*omitBatch
	scratch *sim.Machine // reused for batch replay
	sims    int
	steps   int64 // batch-vector simulation steps (see Stats.BatchSteps)

	// ctl is polled once per removal trial; stopStatus latches the stop
	// so the window loop can wind down and checkpoint.
	ctl        *runctl.Control
	stopStatus runctl.Status

	// cTrials and cRemoved are nil-safe observation counters (removal
	// trials attempted, vectors actually removed); OmitOpts sets them.
	cTrials  *obs.Counter
	cRemoved *obs.Counter
}

type omitBatch struct {
	start, n int
	faults   []fault.Fault
	ckpts    []sim.State // state after vector (j+1)*ckptStride - 1... see build
}

// newOmitter fault-simulates seq once, recording detection times,
// per-position good data and per-batch checkpoints. The per-batch
// replays are independent (each writes its own checkpoint list and a
// disjoint slice of detAt), so they fan out across the simulator's
// workers; the trial engine itself stays serial.
func newOmitter(s *sim.Simulator, seq logic.Sequence, faults []fault.Fault) *omitter {
	c := s.Circuit()
	o := &omitter{
		c:      c,
		sim:    s,
		faults: faults,
		in:     seq.Clone(),
		detAt:  make([]int, len(faults)),
		good:   s.Acquire(),
	}
	// cur starts as a fresh copy of in (commit splices cur's backing
	// array in place, so the two must not share one).
	o.cur = append(logic.Sequence(nil), o.in...)
	o.idx = make([]int, len(seq))
	for i := range o.idx {
		o.idx[i] = i
	}
	for i := range o.detAt {
		o.detAt[i] = sim.NotDetected
	}
	nPO := c.NumOutputs()
	o.goodStates = make([]sim.State, len(seq))
	o.goodPO = make([][]logic.Value, len(seq))
	for t, v := range seq {
		o.good.Step(v)
		o.goodStates[t] = o.good.SaveState()
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = o.good.OutputSlot(po, 0)
		}
		o.goodPO[t] = row
	}

	o.scratch = s.Acquire()
	nBatches := (len(faults) + sim.Slots - 1) / sim.Slots
	o.batches = make([]*omitBatch, nBatches)
	initBatch := func(m *sim.Machine, bi int) {
		start := bi * sim.Slots
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		b := &omitBatch{start: start, n: end - start, faults: faults[start:end]}
		m.ClearFaults()
		m.Reset()
		for k, f := range b.faults {
			if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		allMask := o.batchMask(b)
		var detected uint64
		for t, v := range seq {
			if t%ckptStride == 0 {
				b.ckpts = append(b.ckpts, m.SaveState())
			}
			m.Step(v)
			detected |= o.detectStep(m, b, o.goodPO[t], detected, allMask, t)
		}
		o.batches[bi] = b
	}
	nw := s.Workers()
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			initBatch(m, bi)
		}
		s.Release(m)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := s.Acquire()
				defer s.Release(m)
				for {
					bi := int(next.Add(1)) - 1
					if bi >= nBatches {
						return
					}
					initBatch(m, bi)
				}
			}()
		}
		wg.Wait()
	}
	o.sims += nBatches
	o.steps += int64(nBatches) * int64(len(seq))
	return o
}

// close returns the omitter's pooled machines to the simulator.
func (o *omitter) close() {
	o.sim.Release(o.good)
	o.sim.Release(o.scratch)
}

func (o *omitter) batchMask(b *omitBatch) uint64 {
	if b.n < sim.Slots {
		return (uint64(1) << uint(b.n)) - 1
	}
	return sim.AllSlots
}

// detectStep compares the batch machine's outputs to the good values,
// records first detections into detAt at time t, and returns the newly
// detected mask.
func (o *omitter) detectStep(m *sim.Machine, b *omitBatch, goodRow []logic.Value, detected, allMask uint64, t int) uint64 {
	var newly uint64
	for po := range goodRow {
		if !goodRow[po].IsBinary() {
			continue
		}
		gz, gd := valuePlanesOf(goodRow[po])
		fz, fd := m.OutputPlanes(po)
		newly |= sim.DetectMask(gz, gd, fz, fd)
	}
	newly &= allMask &^ detected
	for k := 0; k < b.n; k++ {
		if newly&(uint64(1)<<uint(k)) != 0 {
			o.detAt[b.start+k] = t
		}
	}
	return newly
}

func valuePlanesOf(v logic.Value) (z, d uint64) {
	switch v {
	case logic.Zero:
		return ^uint64(0), 0
	case logic.One:
		return 0, ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0)
	}
}

// tryRemove attempts to delete cur[lo:hi]. slack bounds how far past
// its previous detection time a fault may drift before the removal is
// (conservatively) rejected. On success the working sequence and the
// detection times are updated.
func (o *omitter) tryRemove(lo, hi, slack int) bool {
	// Cancellation/deadline is polled per trial, but trials are not
	// charged against MaxTrials here: the budget is charged per removal
	// window (the atomic resume unit), which guarantees every resumed
	// leg makes progress no matter how small the budget.
	if st, stop := o.ctl.ShouldStop(); stop {
		o.stopStatus = st
		return false
	}
	o.cTrials.Inc()
	removed := hi - lo
	// Per batch: the affected mask and the latest affected detection
	// expressed in post-removal indices.
	type job struct {
		b      *omitBatch
		mask   uint64
		maxDet int
	}
	var jobs []job
	anyAffected := false
	for _, b := range o.batches {
		var mask uint64
		maxDet := 0
		for k := 0; k < b.n; k++ {
			d := o.detAt[b.start+k]
			if d == sim.NotDetected || d < lo {
				continue
			}
			mask |= uint64(1) << uint(k)
			if d >= hi {
				d -= removed
			}
			if d > maxDet {
				maxDet = d
			}
		}
		if mask != 0 {
			jobs = append(jobs, job{b: b, mask: mask, maxDet: maxDet})
			anyAffected = true
		}
	}
	if !anyAffected {
		o.commit(lo, hi, nil)
		return true
	}
	// Cheapest (earliest-deadline) batches first: failures surface at
	// minimal cost.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].maxDet < jobs[j-1].maxDet; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}

	// Every batch may run up to the same global bound: the latest
	// previous detection plus slack. The good-value suffix for the
	// trial is extended lazily only as far as some batch actually
	// needs (successful batches stop at their last detection).
	maxBound := jobs[len(jobs)-1].maxDet + slack
	suffixLimit := len(o.cur) - removed
	if maxBound > suffixLimit {
		maxBound = suffixLimit
	}
	if lo > 0 {
		o.good.RestoreState(o.goodStates[lo-1])
	} else {
		o.good.Reset()
	}
	var trialPO [][]logic.Value
	nPO := o.c.NumOutputs()
	goodNext := lo // next trial position the good machine will produce
	getPO := func(t int) []logic.Value {
		for goodNext <= t {
			o.good.Step(o.cur[goodNext+removed])
			row := make([]logic.Value, nPO)
			for po := range row {
				row[po] = o.good.OutputSlot(po, 0)
			}
			trialPO = append(trialPO, row)
			goodNext++
		}
		return trialPO[t-lo]
	}

	type hit struct{ fi, t int }
	var hits []hit
	for _, jb := range jobs {
		b := jb.b
		// A batch gets four slacks past its own latest detection
		// before the removal is (conservatively) rejected; the global
		// bound still caps everything.
		bound := jb.maxDet + 4*slack
		if bound > maxBound {
			bound = maxBound
		}
		// Restore the batch from its checkpoint and replay the
		// unchanged prefix tail [ckpt, lo).
		j := lo / ckptStride
		if j >= len(b.ckpts) {
			j = len(b.ckpts) - 1
		}
		m := o.scratch
		m.ClearFaults()
		for k, f := range b.faults {
			if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		m.RestoreState(b.ckpts[j])
		for t := j * ckptStride; t < lo; t++ {
			m.Step(o.cur[t])
			o.steps++
		}
		// Suffix with detection monitoring on the affected bits.
		var detected uint64
		for t := lo; t < bound; t++ {
			m.Step(o.cur[t+removed])
			o.steps++
			row := getPO(t)
			var newly uint64
			for po := range row {
				gv := row[po]
				if !gv.IsBinary() {
					continue
				}
				gz, gd := valuePlanesOf(gv)
				fz, fd := m.OutputPlanes(po)
				newly |= sim.DetectMask(gz, gd, fz, fd)
			}
			newly &= jb.mask &^ detected
			if newly != 0 {
				detected |= newly
				for k := 0; k < b.n; k++ {
					if newly&(uint64(1)<<uint(k)) != 0 {
						hits = append(hits, hit{fi: b.start + k, t: t})
					}
				}
				if detected == jb.mask {
					break
				}
			}
		}
		o.sims++
		if detected != jb.mask {
			return false
		}
	}
	newTimes := make(map[int]int, len(hits))
	for _, h := range hits {
		newTimes[h.fi] = h.t
	}
	o.commit(lo, hi, newTimes)
	return true
}

// commit applies the removal and the re-recorded detection times.
func (o *omitter) commit(lo, hi int, newTimes map[int]int) {
	o.cRemoved.Add(int64(hi - lo))
	o.cur = append(o.cur[:lo], o.cur[hi:]...)
	o.idx = append(o.idx[:lo], o.idx[hi:]...)
	for fi, t := range newTimes {
		o.detAt[fi] = t
	}
}

// keptMask renders which input positions are still in the working
// sequence as a '0'/'1' string of inLen characters.
func (o *omitter) keptMask(inLen int) string {
	m := make([]byte, inLen)
	for i := range m {
		m[i] = '0'
	}
	for _, i := range o.idx {
		m[i] = '1'
	}
	return string(m)
}

// restoreFrom rebuilds the working sequence from a checkpointed kept
// mask and detection-time array. Positions below the next removal
// window are untouched by construction (windows run back to front), so
// the prefix invariant the trial engine relies on still holds.
func (o *omitter) restoreFrom(kept string, detAt []int) {
	o.cur = o.cur[:0]
	o.idx = o.idx[:0]
	for i := 0; i < len(kept); i++ {
		if kept[i] == '1' {
			o.cur = append(o.cur, o.in[i])
			o.idx = append(o.idx, i)
		}
	}
	copy(o.detAt, detAt)
}
