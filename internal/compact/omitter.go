package compact

import (
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// ckptStride is the minimum spacing of per-batch faulty prefix
// checkpoints in the omission engine; omitCkptStride widens it when
// the full grid would not fit the memory budget.
const ckptStride = 32

// ckptBudgetBytes bounds the total memory spent on per-batch faulty
// prefix checkpoints. At stride 32 the full grid on an s35932-sized
// run (18k vectors × 87 batches × 27KB states) would cost over a
// gigabyte; widening the stride trades a bounded amount of prefix
// replay per trial for a hard cap.
const ckptBudgetBytes = 128 << 20

// omitCkptStride returns the checkpoint spacing for a run of nVec
// vectors, nBatches fault batches and nFF flip-flops: the ckptStride
// floor, widened until the grid fits ckptBudgetBytes.
func omitCkptStride(nVec, nBatches, nFF int) int {
	stride := ckptStride
	perCkpt := int64(nFF) * 16 // two uint64 planes per flip-flop
	if perCkpt == 0 || nVec == 0 || nBatches == 0 {
		return stride
	}
	total := int64(nVec) * int64(nBatches) * perCkpt
	if need := (total + ckptBudgetBytes - 1) / ckptBudgetBytes; need > int64(stride) {
		stride = int(need)
	}
	return stride
}

// omitter is the trial engine behind Omit. Vector omission processes
// removal candidates from the end of the sequence toward the front, so
// the prefix [0, lo) of the working sequence is always identical to the
// same prefix of the input sequence. The engine exploits that three
// ways:
//
//   - per-batch faulty states are checkpointed every stride positions
//     on the input prefix, and additionally memoized at the current
//     removal window's boundary, so a trial replays at most a window's
//     worth of prefix per batch;
//   - fault-free data (compact per-position state images plus output
//     rows) is maintained for the whole working sequence, and a trial's
//     fault-free suffix is recomputed only until its state reconverges
//     with the committed trajectory — on scan sequences that is about
//     one scan operation, not the remaining tail;
//   - a trial only simulates the fault batches whose detections are at
//     stake, each bounded just past its latest previous detection; the
//     incremental engine runs those independent jobs speculatively in
//     parallel with deterministic accounting (see tryRemove).
type omitter struct {
	c      *netlist.Circuit
	sim    *sim.Simulator
	faults []fault.Fault
	in     logic.Sequence // input sequence, never mutated
	cur    logic.Sequence
	idx    []int // idx[i] = input position of cur[i]
	detAt  []int

	good *sim.Machine
	// goodImg[t] / goodRows[t] are the fault-free state image after and
	// the output row at cur[t] of the *committed* working sequence;
	// both are spliced and patched on every commit.
	goodImg  []sim.StateImage
	goodRows [][]logic.Value

	stride  int // spacing of per-batch prefix checkpoints
	batches []*omitBatch
	scratch *sim.Machine // reused for batch replay on the serial engine
	sims    int
	steps   int64 // batch-vector simulation steps (see Stats.BatchSteps)

	// parallel selects speculative concurrent trial jobs
	// (EngineIncremental); the serial engine evaluates jobs
	// earliest-deadline-first with an early exit instead. Both charge
	// the same jobs to Stats (see tryRemove), so the accounting is
	// identical across engines and worker counts.
	parallel bool

	// Window-boundary prefix memo: winStates[bi] (when winHave[bi])
	// holds batch bi's faulty state just before cur[winLo]. Valid for
	// the whole window because commits only remove positions >= winLo.
	// Entries are written by the batch's first job of the window and
	// only read afterwards; distinct batches touch distinct entries, so
	// concurrent wave jobs need no lock.
	winLo     int
	winStates []sim.State
	winHave   []bool

	// ctl is polled once per removal trial; stopStatus latches the stop
	// so the window loop can wind down and checkpoint.
	ctl        *runctl.Control
	stopStatus runctl.Status

	// cTrials and cRemoved are nil-safe observation counters (removal
	// trials attempted, vectors actually removed); OmitOpts sets them.
	cTrials  *obs.Counter
	cRemoved *obs.Counter
	// cReconv counts trials whose fault-free suffix recomputation was
	// cut off by reconvergence with the committed trajectory.
	cReconv *obs.Counter
	// cWinHits counts trial jobs that started from the window-boundary
	// memo instead of a stride checkpoint.
	cWinHits *obs.Counter
}

type omitBatch struct {
	start, n int
	faults   []fault.Fault
	ckpts    []sim.State // state before vector j*stride of the input prefix
}

// newOmitter fault-simulates seq once, recording detection times,
// per-position good data and per-batch checkpoints. The per-batch
// replays are independent (each writes its own checkpoint list and a
// disjoint slice of detAt), so they fan out across the simulator's
// workers; the trial engine itself stays serial.
func newOmitter(s *sim.Simulator, seq logic.Sequence, faults []fault.Fault) *omitter {
	c := s.Circuit()
	o := &omitter{
		c:      c,
		sim:    s,
		faults: faults,
		in:     seq.Clone(),
		detAt:  make([]int, len(faults)),
		good:   s.Acquire(),
		winLo:  -1,
	}
	// cur starts as a fresh copy of in (commit splices cur's backing
	// array in place, so the two must not share one).
	o.cur = append(logic.Sequence(nil), o.in...)
	o.idx = make([]int, len(seq))
	for i := range o.idx {
		o.idx[i] = i
	}
	for i := range o.detAt {
		o.detAt[i] = sim.NotDetected
	}
	o.rebuildGood()

	o.scratch = s.Acquire()
	nBatches := (len(faults) + sim.Slots - 1) / sim.Slots
	o.stride = omitCkptStride(len(seq), nBatches, c.NumFFs())
	o.batches = make([]*omitBatch, nBatches)
	o.winStates = make([]sim.State, nBatches)
	o.winHave = make([]bool, nBatches)
	initBatch := func(m *sim.Machine, bi int) {
		start := bi * sim.Slots
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		b := &omitBatch{start: start, n: end - start, faults: faults[start:end]}
		m.ClearFaults()
		m.Reset()
		for k, f := range b.faults {
			if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		allMask := o.batchMask(b)
		var detected uint64
		for t, v := range seq {
			if t%o.stride == 0 {
				b.ckpts = append(b.ckpts, m.SaveState())
			}
			m.Step(v)
			detected |= o.detectStep(m, b, o.goodRows[t], detected, allMask, t)
		}
		o.batches[bi] = b
	}
	nw := s.Workers()
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			initBatch(m, bi)
		}
		s.Release(m)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := s.Acquire()
				defer s.Release(m)
				for {
					bi := int(next.Add(1)) - 1
					if bi >= nBatches {
						return
					}
					initBatch(m, bi)
				}
			}()
		}
		wg.Wait()
	}
	o.sims += nBatches
	o.steps += int64(nBatches) * int64(len(seq))
	return o
}

// rebuildGood recomputes the committed fault-free data (state images
// and output rows) over the current working sequence from scratch.
// Used at construction and after a checkpoint resume rebuilt cur;
// everywhere else commits patch the arrays incrementally.
func (o *omitter) rebuildGood() {
	nPO := o.c.NumOutputs()
	o.good.ClearFaults()
	o.good.Reset()
	o.goodImg = make([]sim.StateImage, len(o.cur))
	o.goodRows = make([][]logic.Value, len(o.cur))
	for t, v := range o.cur {
		o.good.Step(v)
		o.goodImg[t] = o.good.StateImage()
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = o.good.OutputSlot(po, 0)
		}
		o.goodRows[t] = row
	}
}

// close returns the omitter's pooled machines to the simulator.
func (o *omitter) close() {
	o.sim.Release(o.good)
	o.sim.Release(o.scratch)
}

// beginWindow starts a removal window whose lowest candidate is lo,
// invalidating the previous window's prefix memos.
func (o *omitter) beginWindow(lo int) {
	o.winLo = lo
	for i := range o.winHave {
		o.winHave[i] = false
	}
}

func (o *omitter) batchMask(b *omitBatch) uint64 {
	if b.n < sim.Slots {
		return (uint64(1) << uint(b.n)) - 1
	}
	return sim.AllSlots
}

// detectStep compares the batch machine's outputs to the good values,
// records first detections into detAt at time t, and returns the newly
// detected mask.
func (o *omitter) detectStep(m *sim.Machine, b *omitBatch, goodRow []logic.Value, detected, allMask uint64, t int) uint64 {
	var newly uint64
	for po := range goodRow {
		if !goodRow[po].IsBinary() {
			continue
		}
		gz, gd := valuePlanesOf(goodRow[po])
		fz, fd := m.OutputPlanes(po)
		newly |= sim.DetectMask(gz, gd, fz, fd)
	}
	newly &= allMask &^ detected
	for k := 0; k < b.n; k++ {
		if newly&(uint64(1)<<uint(k)) != 0 {
			o.detAt[b.start+k] = t
		}
	}
	return newly
}

func valuePlanesOf(v logic.Value) (z, d uint64) {
	switch v {
	case logic.Zero:
		return ^uint64(0), 0
	case logic.One:
		return 0, ^uint64(0)
	default:
		return ^uint64(0), ^uint64(0)
	}
}

// trialGood lazily produces the fault-free output rows of one trial
// sequence (cur with [lo, lo+removed) deleted). The recomputation is
// cut off as soon as the trial's fault-free state reconverges with the
// committed trajectory — from then on the committed rows, shifted by
// the removal, are the trial's rows verbatim. On success the produced
// span is exactly the patch a commit must apply to the committed
// arrays.
type trialGood struct {
	o           *omitter
	lo, removed int
	next        int // next trial position to produce
	conv        int // first position served from committed data, -1 while diverged
	rows        [][]logic.Value
	imgs        []sim.StateImage
}

// newTrialGood positions the omitter's good machine just before trial
// position lo and returns the provider. Nothing else may touch o.good
// until the trial ends.
func (o *omitter) newTrialGood(lo, removed int) *trialGood {
	if lo > 0 {
		o.good.SetStateImage(o.goodImg[lo-1])
	} else {
		o.good.Reset()
	}
	return &trialGood{o: o, lo: lo, removed: removed, next: lo, conv: -1}
}

// ensure produces trial rows for every position below bound (exclusive)
// unless reconvergence makes them unnecessary first. Must not be called
// concurrently; parallel waves pre-ensure their bound before launching.
func (tg *trialGood) ensure(bound int) {
	o := tg.o
	limit := len(o.cur) - tg.removed
	if bound > limit {
		bound = limit
	}
	nPO := o.c.NumOutputs()
	for tg.conv < 0 && tg.next < bound {
		o.good.Step(o.cur[tg.next+tg.removed])
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = o.good.OutputSlot(po, 0)
		}
		tg.rows = append(tg.rows, row)
		tg.imgs = append(tg.imgs, o.good.StateImage())
		if o.good.StateEqualsImage(o.goodImg[tg.next+tg.removed]) {
			tg.conv = tg.next + 1
			o.cReconv.Inc()
		}
		tg.next++
	}
}

// row returns the trial's fault-free output row at trial position t.
// Only positions below a previous ensure bound (or below the
// reconvergence point) are valid.
func (tg *trialGood) row(t int) []logic.Value {
	if tg.conv >= 0 && t >= tg.conv {
		return tg.o.goodRows[t+tg.removed]
	}
	if t >= tg.next {
		tg.ensure(t + 1)
		if tg.conv >= 0 && t >= tg.conv {
			return tg.o.goodRows[t+tg.removed]
		}
	}
	return tg.rows[t-tg.lo]
}

// omitJob is one batch's share of a removal trial: re-detect the
// batch's at-stake faults (mask) on the trial sequence within bound.
type omitJob struct {
	b      *omitBatch
	mask   uint64
	maxDet int
	bound  int
	// Results.
	ok    bool
	steps int64
	hits  []omitHit
}

type omitHit struct{ fi, t int }

// runJob replays one batch over the trial sequence and reports whether
// every at-stake fault is re-detected within the job's bound. The
// prefix below the removal point is restored from the window memo (or
// the nearest stride checkpoint, memoizing the window boundary on the
// way); the monitored suffix reads trial rows that ensure already
// produced, so concurrent jobs only share read-only data plus their own
// winStates/winHave entries.
func (o *omitter) runJob(m *sim.Machine, jb *omitJob, lo, removed int, tg *trialGood) {
	b := jb.b
	bi := b.start / sim.Slots
	m.ClearFaults()
	for k, f := range b.faults {
		if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
			panic(err)
		}
	}
	if o.winHave[bi] {
		m.RestoreState(o.winStates[bi])
		o.cWinHits.Inc()
	} else {
		j := o.winLo / o.stride
		if j >= len(b.ckpts) {
			j = len(b.ckpts) - 1
		}
		m.RestoreState(b.ckpts[j])
		for u := j * o.stride; u < o.winLo; u++ {
			m.Step(o.cur[u])
			jb.steps++
		}
		m.SaveStateInto(&o.winStates[bi])
		o.winHave[bi] = true
	}
	for u := o.winLo; u < lo; u++ {
		m.Step(o.cur[u])
		jb.steps++
	}
	// Suffix with detection monitoring on the at-stake bits.
	var detected uint64
	for t := lo; t < jb.bound; t++ {
		m.Step(o.cur[t+removed])
		jb.steps++
		row := tg.row(t)
		var newly uint64
		for po := range row {
			gv := row[po]
			if !gv.IsBinary() {
				continue
			}
			gz, gd := valuePlanesOf(gv)
			fz, fd := m.OutputPlanes(po)
			newly |= sim.DetectMask(gz, gd, fz, fd)
		}
		newly &= jb.mask &^ detected
		if newly != 0 {
			detected |= newly
			for k := 0; k < b.n; k++ {
				if newly&(uint64(1)<<uint(k)) != 0 {
					jb.hits = append(jb.hits, omitHit{fi: b.start + k, t: t})
				}
			}
			if detected == jb.mask {
				break
			}
		}
	}
	jb.ok = detected == jb.mask
}

// tryRemove attempts to delete cur[lo:hi]. slack bounds how far past
// its previous detection time a fault may drift before the removal is
// (conservatively) rejected. On success the working sequence, the
// detection times and the committed fault-free data are updated.
func (o *omitter) tryRemove(lo, hi, slack int) bool {
	// Cancellation/deadline is polled per trial, but trials are not
	// charged against MaxTrials here: the budget is charged per removal
	// window (the atomic resume unit), which guarantees every resumed
	// leg makes progress no matter how small the budget.
	if st, stop := o.ctl.ShouldStop(); stop {
		o.stopStatus = st
		return false
	}
	o.cTrials.Inc()
	removed := hi - lo
	// Per batch: the at-stake mask and the latest affected detection
	// expressed in post-removal indices.
	var jobs []omitJob
	for _, b := range o.batches {
		var mask uint64
		maxDet := 0
		for k := 0; k < b.n; k++ {
			d := o.detAt[b.start+k]
			if d == sim.NotDetected || d < lo {
				continue
			}
			mask |= uint64(1) << uint(k)
			if d >= hi {
				d -= removed
			}
			if d > maxDet {
				maxDet = d
			}
		}
		if mask != 0 {
			jobs = append(jobs, omitJob{b: b, mask: mask, maxDet: maxDet})
		}
	}
	if len(jobs) == 0 {
		o.commitTrial(lo, hi, nil, o.newTrialGood(lo, removed))
		return true
	}
	// Cheapest (earliest-deadline) batches first: failures surface at
	// minimal cost.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].maxDet < jobs[j-1].maxDet; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}

	// Every batch may run up to the same global bound: the latest
	// previous detection plus slack. Each batch individually gets four
	// slacks past its own latest detection before the removal is
	// (conservatively) rejected.
	maxBound := jobs[len(jobs)-1].maxDet + slack
	if suffixLimit := len(o.cur) - removed; maxBound > suffixLimit {
		maxBound = suffixLimit
	}
	for i := range jobs {
		bound := jobs[i].maxDet + 4*slack
		if bound > maxBound {
			bound = maxBound
		}
		jobs[i].bound = bound
	}
	tg := o.newTrialGood(lo, removed)

	nw := o.sim.Workers()
	if !o.parallel || nw <= 1 || len(jobs) == 1 {
		// Serial earliest-deadline evaluation with early exit. The
		// speculative branch below charges exactly this job prefix to
		// Stats, so a single-worker incremental run takes this path with
		// identical accounting.
		var hits []omitHit
		for i := range jobs {
			jb := &jobs[i]
			o.runJob(o.scratch, jb, lo, removed, tg)
			o.sims++
			o.steps += jb.steps
			if !jb.ok {
				return false
			}
			hits = append(hits, jb.hits...)
		}
		o.commitHits(lo, hi, hits, tg)
		return true
	}

	// Speculative parallel evaluation: workers pull jobs in
	// earliest-deadline order, and once some job has failed, jobs after
	// it in that order are skipped. Only the deadline-order prefix up to
	// and including the first failure is charged to Stats — exactly the
	// set the serial loop above evaluates — so Simulations/BatchSteps
	// are identical at every worker count and across engines. A
	// speculative job that ran beyond that prefix costs only
	// otherwise-idle cores; its one side effect, a freshly populated
	// window memo, is rolled back below so later trials replay exactly
	// what the serial engine would have.
	tg.ensure(maxBound)
	if nw > len(jobs) {
		nw = len(jobs)
	}
	var next, minFailed atomic.Int64
	minFailed.Store(int64(len(jobs)))
	ran := make([]bool, len(jobs))
	memoed := make([]bool, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := o.sim.Acquire()
			defer o.sim.Release(m)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if int64(i) > minFailed.Load() {
					continue // an earlier-deadline job already failed
				}
				jb := &jobs[i]
				bi := jb.b.start / sim.Slots
				hadMemo := o.winHave[bi]
				o.runJob(m, jb, lo, removed, tg)
				ran[i] = true
				memoed[i] = !hadMemo
				if !jb.ok {
					for {
						cur := minFailed.Load()
						if int64(i) >= cur || minFailed.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	fail := int(minFailed.Load())
	var hits []omitHit
	for i := range jobs {
		if i > fail {
			// Speculative overshoot: uncharged, and any window memo it
			// populated is invalidated to keep later trials' replay
			// costs deterministic.
			if ran[i] && memoed[i] {
				o.winHave[jobs[i].b.start/sim.Slots] = false
			}
			continue
		}
		o.sims++
		o.steps += jobs[i].steps
		hits = append(hits, jobs[i].hits...)
	}
	if fail < len(jobs) {
		return false
	}
	o.commitHits(lo, hi, hits, tg)
	return true
}

// commitHits folds per-job detection hits into new detection times and
// commits the removal.
func (o *omitter) commitHits(lo, hi int, hits []omitHit, tg *trialGood) {
	newTimes := make(map[int]int, len(hits))
	for _, h := range hits {
		newTimes[h.fi] = h.t
	}
	o.commitTrial(lo, hi, newTimes, tg)
}

// commitTrial applies the removal, the re-recorded detection times and
// the fault-free data patch. The provider first finishes its span to
// the reconvergence point (or the sequence end); past that point the
// committed entries, shifted by the removal, are already correct.
func (o *omitter) commitTrial(lo, hi int, newTimes map[int]int, tg *trialGood) {
	tg.ensure(len(o.cur) - tg.removed)
	o.cRemoved.Add(int64(hi - lo))
	o.cur = append(o.cur[:lo], o.cur[hi:]...)
	o.idx = append(o.idx[:lo], o.idx[hi:]...)
	o.goodImg = append(o.goodImg[:lo], o.goodImg[hi:]...)
	o.goodRows = append(o.goodRows[:lo], o.goodRows[hi:]...)
	for i := range tg.rows {
		o.goodImg[lo+i] = tg.imgs[i]
		o.goodRows[lo+i] = tg.rows[i]
	}
	for fi, t := range newTimes {
		o.detAt[fi] = t
	}
}

// keptMask renders which input positions are still in the working
// sequence as a '0'/'1' string of inLen characters.
func (o *omitter) keptMask(inLen int) string {
	m := make([]byte, inLen)
	for i := range m {
		m[i] = '0'
	}
	for _, i := range o.idx {
		m[i] = '1'
	}
	return string(m)
}

// restoreFrom rebuilds the working sequence from a checkpointed kept
// mask and detection-time array. Positions below the next removal
// window are untouched by construction (windows run back to front), so
// the prefix invariant the trial engine relies on still holds; the
// committed fault-free data is recomputed over the rebuilt sequence.
func (o *omitter) restoreFrom(kept string, detAt []int) {
	o.cur = o.cur[:0]
	o.idx = o.idx[:0]
	for i := 0; i < len(kept); i++ {
		if kept[i] == '1' {
			o.cur = append(o.cur, o.in[i])
			o.idx = append(o.idx, i)
		}
	}
	copy(o.detAt, detAt)
	o.rebuildGood()
}
