// Package compact implements the two static test compaction procedures
// for non-scan synchronous sequential circuits the paper applies to
// C_scan sequences (Section 4):
//
//   - vector restoration (Pomeranz & Reddy, ICCD-97 [23]): starting
//     from an empty selection, faults are processed in decreasing order
//     of detection time and vectors are restored backward from each
//     fault's detection time until the fault is detected again;
//   - vector omission (Pomeranz & Reddy, DAC-96 [22]): vectors are
//     tentatively removed one at a time; a removal is kept when every
//     fault detected before compaction is still detected.
//
// Because scan operations are explicit vectors in this representation,
// both procedures freely shorten complete scan operations into limited
// ones — the flexibility the paper's approach is built on.
//
// Both passes run their fault simulations through one shared
// sim.Simulator (see Options), so trial runs draw machines from a pool
// instead of allocating, and multi-batch runs fan out across workers.
// Worker count never changes the compacted output — only wall-clock.
package compact

import (
	"fmt"
	"sort"

	"repro/internal/adi"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// Engine selects the trial-engine implementation behind both passes.
// Every engine produces bit-identical compacted sequences (and the
// semantic Stats fields BeforeLen/AfterLen/TargetFaults/ExtraDetected);
// only the work performed differs, so Simulations and BatchSteps are
// engine-specific accounting. The xcheck invariant "compact/engines"
// pins the equivalence across the seeded catalog.
type Engine uint8

const (
	// EngineAuto selects EngineIncremental.
	EngineAuto Engine = iota
	// EngineIncremental is the incremental, parallel trial engine:
	// restoration verdicts are cached per trial version and coverage is
	// refreshed by wide multi-batch lookahead runs that fan out across
	// the simulator's workers; omission evaluates the independent
	// per-batch trial jobs of a removal speculatively in parallel,
	// charging only the deadline-order job prefix the serial engine
	// would have run. Deterministic merges keep the output — and the
	// Stats — identical at every worker count.
	EngineIncremental
	// EngineScratch is the serial reference engine: one coverage check
	// per uncovered restoration target, omission jobs evaluated
	// earliest-deadline-first with an early exit on the first failure.
	EngineScratch
)

// incremental reports whether the engine runs the incremental paths.
func (e Engine) incremental() bool { return e != EngineScratch }

// String names the engine the way ParseEngine spells it.
func (e Engine) String() string {
	switch e {
	case EngineIncremental:
		return "incremental"
	case EngineScratch:
		return "scratch"
	default:
		return "auto"
	}
}

// ParseEngine parses a -compact-engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "incremental":
		return EngineIncremental, nil
	case "scratch":
		return EngineScratch, nil
	}
	return EngineAuto, fmt.Errorf("compact: unknown engine %q (want auto, incremental or scratch)", s)
}

// Order selects the restoration target order. The order changes which
// vectors restoration keeps, so unlike Engine it legitimately changes
// the compacted output; a golden test pins each order's result.
type Order uint8

const (
	// OrderDetection processes faults by decreasing detection time —
	// the paper's own order (reference [23]).
	OrderDetection Order = iota
	// OrderADI processes faults by increasing accidental-detection
	// index (see internal/adi): faults that are rarely detected by
	// accident go first, so the vectors restored for them cover many
	// easy faults before those are ever examined. Ties fall back to
	// decreasing detection time.
	OrderADI
)

// String names the order for checkpoints and diagnostics.
func (o Order) String() string {
	if o == OrderADI {
		return "adi"
	}
	return "detection"
}

// Options tunes a compaction pass. The zero value selects a private
// simulator with runtime.GOMAXPROCS workers.
type Options struct {
	// Workers is the fault-simulation worker count (0 = GOMAXPROCS).
	// Results are identical for every value; only wall-clock changes.
	Workers int
	// Sim, when non-nil, supplies the simulator (and its machine pool);
	// its circuit must match the pass's circuit. Workers is then
	// ignored. Sharing one Simulator across restoration, omission and
	// any surrounding flow amortizes machine allocation.
	Sim *sim.Simulator
	// Control, when non-nil, threads budget/cancellation and optional
	// checkpointing through the pass. Restoration charges one budget
	// trial per restoration-order position ("restore" checkpoint
	// section). Omission charges one trial per removal window but polls
	// cancellation at every removal trial; it checkpoints only at
	// window boundaries ("omit" section), so a cancellation or deadline
	// stop inside a window resumes from the window start and redoes it
	// deterministically. A stopped pass returns the valid partial
	// sequence with Stats.Status set; a resumed pass finishes
	// bit-identical to an uninterrupted one. The Control is never
	// forwarded to inner fault-simulation runs.
	Control *runctl.Control
	// Obs, when non-nil, receives the pass's instrumentation under the
	// "restore" or "omit" phase: per-position and per-window events,
	// trial/step counters and the pass timer (docs/ALGORITHMS.md §11).
	// Purely observational — the compacted output is identical with or
	// without it. A private simulator built by the pass is observed
	// too; a caller-supplied Sim keeps whatever observer it already has.
	Obs obs.Observer
	// Engine selects the trial engine (see Engine); the zero value is
	// EngineAuto, i.e. the incremental engine. The compacted output is
	// identical for every engine.
	Engine Engine
	// Order selects the restoration target order (see Order). Unlike
	// every other option, a non-default order changes the output.
	Order Order
}

func (o Options) simulator(c *netlist.Circuit) *sim.Simulator {
	if o.Sim != nil {
		return o.Sim
	}
	return sim.NewSimulator(c, o.Workers)
}

// Stats reports what one compaction pass did.
type Stats struct {
	// BeforeLen and AfterLen are sequence lengths in vectors (equal to
	// clock cycles for this representation).
	BeforeLen, AfterLen int
	// TargetFaults is how many faults the pass had to preserve.
	TargetFaults int
	// ExtraDetected counts faults not detected by the input sequence
	// that the compacted sequence happens to detect (the paper's "ext
	// det" column).
	ExtraDetected int
	// Simulations counts fault-simulation passes (whole sim.Run-shaped
	// calls), regardless of how many faults or vectors each simulated.
	Simulations int
	// BatchSteps counts the actual simulation work in uniform units:
	// one unit is one 64-fault batch advanced by one vector. Unlike
	// Simulations it is comparable across passes whose runs differ in
	// fault count, sequence length or early exit.
	BatchSteps int64
	// Status classifies the pass: Complete/Resumed mark a full
	// compaction, any Stopped() status marks a valid but only partially
	// compacted result that a checkpoint can continue.
	Status runctl.Status
	// Err carries the checkpoint load/save failure when Status is
	// Failed; it is nil otherwise.
	Err error
}

// Restore runs vector-restoration compaction of seq for circuit c,
// preserving detection of every fault in faults that seq detects.
func Restore(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault) (logic.Sequence, Stats) {
	return RestoreOpts(c, seq, faults, Options{})
}

// RestoreOpts is Restore with explicit Options. The compacted output is
// identical for every Options value.
func RestoreOpts(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options) (logic.Sequence, Stats) {
	s := opts.simulator(c)
	ob := opts.Obs
	if opts.Sim == nil {
		s.Observe(ob)
	}
	defer obs.T(ob, "restore.time").Start()()
	cTrials := obs.C(ob, "restore.trials")
	cCovered := obs.C(ob, "restore.window_covered")
	cRestored := obs.C(ob, "restore.restored_vectors")
	st := Stats{BeforeLen: len(seq)}
	defer func() {
		obs.C(ob, "restore.simulations").Add(int64(st.Simulations))
		obs.C(ob, "restore.batch_steps").Add(st.BatchSteps)
	}()
	base := s.Run(seq, faults, sim.Options{})
	st.Simulations++
	st.BatchSteps += base.BatchSteps
	undetected := undetectedIndices(base.DetectedAt)
	var scores []int
	if opts.Order == OrderADI {
		var adiSteps int64
		scores, adiSteps = adi.Scores(s, seq, faults)
		st.Simulations++
		st.BatchSteps += adiSteps
	}
	order := restorationOrder(base.DetectedAt, opts.Order, scores)
	st.TargetFaults = len(order)

	kept := make([]bool, len(seq))
	scratch := make(logic.Sequence, 0, len(seq))
	build := func() logic.Sequence {
		scratch = scratch[:0]
		for i, k := range kept {
			if k {
				scratch = append(scratch, seq[i])
			}
		}
		return scratch
	}
	detects := func(fi int) bool {
		st.Simulations++
		r := s.Run(build(), faults[fi:fi+1], sim.Options{})
		st.BatchSteps += r.BatchSteps
		return r.Detected(0)
	}
	// covered[fi] means the currently restored subsequence already
	// detects fault fi; refreshed in batches of 64 so the common "this
	// fault needs no work" case costs 1/64th of a simulation. Faults
	// already covered are dropped from later batch checks — they could
	// only re-confirm a flag that never goes back to false.
	covered := make([]bool, len(faults))
	ctl := opts.Control
	startPos := 0
	resumed := false
	if ctl.Resuming() {
		ck, ok, err := loadRestoreCheckpoint(ctl, len(seq), len(faults), opts.Order)
		if err == nil && ok && ck.Pos > len(order) {
			err = errRestorePos(ck.Pos, len(order))
		}
		if err == nil && ok {
			if err = unpackMask(ck.Kept, kept); err == nil {
				err = unpackMask(ck.Covered, covered)
			}
		}
		switch {
		case err == nil:
			if ok {
				resumed = true
				startPos = ck.Pos
				if ck.Done {
					startPos = len(order)
				}
			}
		case corruptCheckpointError(err):
			// The stored state is damaged, not from a different run:
			// demote to the scratch engine and redo the pass from the
			// start. Engines are bit-identical, so the output is the
			// one the undamaged run would have produced.
			obs.C(ob, "restore.ckpt_degraded").Inc()
			obs.Emit(ob, "restore", "checkpoint_degraded", obs.F("error", err.Error()))
			opts.Engine = EngineScratch
			for i := range kept {
				kept[i] = false
			}
			for i := range covered {
				covered[i] = false
			}
		default:
			ctl.Fail()
			st.Status, st.Err = runctl.Failed, err
			return nil, st
		}
	}
	st.Status = runctl.Final(resumed)
	obs.Emit(ob, "restore", "start",
		obs.F("vectors", len(seq)), obs.F("faults", len(faults)),
		obs.F("targets", st.TargetFaults))
	if resumed {
		obs.Emit(ob, "restore", "resume", obs.F("pos", startPos))
	}
	// The incremental engine tracks, per fault, the trial version (the
	// number of restoration commits so far) at which the fault was last
	// verified undetected. A fault whose verification is still current
	// needs no new simulation at processing time: the restored
	// subsequence has not changed since a lookahead refresh checked it,
	// so the verdict "uncovered — restore vectors" is already known.
	// Because covered flags are monotone (restoration only adds
	// vectors), skipping the re-check cannot change any decision the
	// scratch engine would make.
	incremental := opts.Engine.incremental()
	var checkedAt []int
	ver := 1
	if incremental {
		checkedAt = make([]int, len(faults))
	}
	group := make([]int, 0, restoreLookahead)
	fbuf := make([]fault.Fault, 0, restoreLookahead)
	detBuf := make([]int, 0, restoreLookahead)
	for pos := startPos; pos < len(order); pos++ {
		if stop, halted := ctl.Trial(); halted {
			st.Status = stop
			st.Err = saveRestoreCheckpoint(ctl, len(seq), len(faults), opts.Order, pos, kept, covered, false, true)
			break
		}
		fi := order[pos]
		cTrials.Inc()
		if !covered[fi] && !(incremental && checkedAt[fi] == ver) {
			group = group[:0]
			if incremental {
				// Refresh coverage for the next restoreLookahead
				// still-uncovered targets in one multi-batch run; the
				// batches fan out across the simulator's workers.
				for _, gi := range order[pos:] {
					if covered[gi] {
						continue
					}
					group = append(group, gi)
					if len(group) == restoreLookahead {
						break
					}
				}
			} else {
				// Batch-check this fault together with the next
				// still-uncovered ones in its 64-wide window.
				end := pos + sim.Slots
				if end > len(order) {
					end = len(order)
				}
				for _, gi := range order[pos:end] {
					if covered[gi] {
						continue
					}
					group = append(group, gi)
				}
			}
			st.Simulations++
			r := s.RunSubset(build(), faults, group, sim.Options{}, fbuf, detBuf)
			st.BatchSteps += r.BatchSteps
			for i, gi := range group {
				if r.Detected(i) {
					covered[gi] = true
					cCovered.Inc()
				} else if incremental {
					checkedAt[gi] = ver
				}
			}
		}
		if covered[fi] {
			obs.Emit(ob, "restore", "fault",
				obs.F("pos", pos), obs.F("fault", fi),
				obs.F("covered", true), obs.F("restored", 0))
			continue
		}
		// For long sequences vectors are restored in small blocks
		// before re-checking detection; omission cleans up any excess
		// afterwards. Block size 1 reproduces plain [23].
		block := 1 + len(seq)/1500
		restoredHere := 0
		for t := base.DetectedAt[fi]; t >= 0; {
			added := 0
			for ; t >= 0 && added < block; t-- {
				if !kept[t] {
					kept[t] = true
					added++
				}
			}
			if added == 0 {
				break
			}
			restoredHere += added
			ver++
			if detects(fi) {
				break
			}
		}
		cRestored.Add(int64(restoredHere))
		obs.Emit(ob, "restore", "fault",
			obs.F("pos", pos), obs.F("fault", fi),
			obs.F("covered", false), obs.F("restored", restoredHere))
		st.Err = saveRestoreCheckpoint(ctl, len(seq), len(faults), opts.Order, pos+1, kept, covered, false, false)
	}
	if st.Status.Done() {
		st.Err = saveRestoreCheckpoint(ctl, len(seq), len(faults), opts.Order, len(order), kept, covered, true, true)
	}
	out := append(logic.Sequence(nil), build()...)
	st.AfterLen = len(out)
	if st.Status.Done() {
		st.ExtraDetected = countExtra(s, out, faults, undetected, &st)
	}
	if st.Err != nil && st.Status != runctl.Failed {
		ctl.Fail()
		st.Status = runctl.Failed
	}
	obs.Emit(ob, "restore", "done",
		obs.F("before", st.BeforeLen), obs.F("after", st.AfterLen),
		obs.F("extra", st.ExtraDetected), obs.F("status", st.Status.String()))
	return out, st
}

// errRestorePos builds the out-of-range error for a restore checkpoint
// whose position exceeds the recomputed restoration order.
func errRestorePos(pos, n int) error {
	return fmt.Errorf("%w: restore checkpoint position %d outside order of %d", errCheckpointCorrupt, pos, n)
}

// restorationOrder lists the detected faults in the order restoration
// processes them. OrderDetection sorts by decreasing detection time;
// OrderADI sorts by increasing accidental-detection score (scores must
// then be per-fault ADI counts) with detection time as the tie-break.
// The final ascending-fault-index tie-break makes the sort total, so
// the restoration order — and the output — is deterministic.
func restorationOrder(detAt []int, policy Order, scores []int) []int {
	var order []int
	for fi, t := range detAt {
		if t != sim.NotDetected {
			order = append(order, fi)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		fa, fb := order[a], order[b]
		if policy == OrderADI && scores[fa] != scores[fb] {
			return scores[fa] < scores[fb]
		}
		ta, tb := detAt[fa], detAt[fb]
		if ta != tb {
			return ta > tb
		}
		return fa < fb
	})
	return order
}

// restoreLookahead is how many still-uncovered targets ahead of the
// current position the incremental engine's coverage refresh checks in
// one multi-batch run. The constant is deliberately independent of the
// worker count — a worker-sized lookahead would make Simulations
// depend on GOMAXPROCS — and four batches are enough to keep small
// worker pools busy without wasting checks that a later insertion
// invalidates anyway.
const restoreLookahead = 4 * sim.Slots

// omitBlock is the initial block size for omission trials. Whole blocks
// of vectors are tried first and bisected on failure (segment pruning
// in the spirit of the paper's reference [24]), which removes long
// stretches of padding in O(log) trials instead of one per vector.
const omitBlock = 16

// Omit runs vector-omission compaction of seq for circuit c, preserving
// detection of every fault in faults that seq detects. Blocks of
// vectors are tried from the end of the sequence toward the front;
// removing vectors at or after position t cannot disturb detections
// strictly before t, so each trial only re-simulates the faults
// detected at or after t.
func Omit(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault) (logic.Sequence, Stats) {
	return OmitOpts(c, seq, faults, Options{})
}

// OmitOpts is Omit with explicit Options. The compacted output is
// identical for every Options value.
func OmitOpts(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options) (logic.Sequence, Stats) {
	s := opts.simulator(c)
	ob := opts.Obs
	if opts.Sim == nil {
		s.Observe(ob)
	}
	defer obs.T(ob, "omit.time").Start()()
	cWindows := obs.C(ob, "omit.windows")
	st := Stats{BeforeLen: len(seq)}
	defer func() {
		obs.C(ob, "omit.simulations").Add(int64(st.Simulations))
		obs.C(ob, "omit.batch_steps").Add(st.BatchSteps)
	}()
	o := newOmitter(s, seq, faults)
	defer o.close()
	o.parallel = opts.Engine.incremental()
	o.cTrials = obs.C(ob, "omit.trials")
	o.cRemoved = obs.C(ob, "omit.removed_vectors")
	o.cReconv = obs.C(ob, "omit.reconv_cutoffs")
	o.cWinHits = obs.C(ob, "omit.window_memo_hits")
	// Snapshot the originally-undetected fault indices now: the trial
	// engine rewrites o.detAt in place as removals shift detection
	// times, so nothing derived from it may be read after this point.
	undetected := undetectedIndices(o.detAt)
	st.TargetFaults = len(faults) - len(undetected)

	ctl := opts.Control
	o.ctl = ctl
	startT := len(o.cur)
	resumed := false
	if ctl.Resuming() {
		ck, ok, err := loadOmitCheckpoint(ctl, len(seq), len(faults))
		switch {
		case err == nil:
			if ok {
				resumed = true
				o.restoreFrom(ck.Kept, ck.DetAt)
				startT = ck.NextT
				if ck.Done {
					startT = 0
				}
			}
		case corruptCheckpointError(err):
			// Damaged checkpoint: demote to the scratch engine and redo
			// the whole pass (see the restore path above).
			obs.C(ob, "omit.ckpt_degraded").Inc()
			obs.Emit(ob, "omit", "checkpoint_degraded", obs.F("error", err.Error()))
			o.parallel = false
		default:
			ctl.Fail()
			st.Status, st.Err = runctl.Failed, err
			st.AfterLen = len(o.cur)
			return o.cur, st
		}
	}
	st.Status = runctl.Final(resumed)
	obs.Emit(ob, "omit", "start",
		obs.F("vectors", len(seq)), obs.F("faults", len(faults)),
		obs.F("targets", st.TargetFaults))
	if resumed {
		obs.Emit(ob, "omit", "resume", obs.F("next_t", startT))
	}

	// slack bounds how far past its previous detection time a fault is
	// allowed to drift during a trial. Trials are simulated only up to
	// the latest affected detection time plus this slack, which keeps
	// failing trials from re-simulating the whole tail; a removal whose
	// detections would move beyond the bound is (conservatively)
	// rejected.
	slack := 2*c.NumFFs() + 50

	// removeRange prunes within [lo, hi): try the whole range, bisect
	// on failure. Higher positions are handled first so indices below
	// stay valid. A budget stop inside a trial short-circuits the
	// bisection.
	var removeRange func(lo, hi int)
	removeRange = func(lo, hi int) {
		if o.stopStatus.Stopped() || hi <= lo || o.tryRemove(lo, hi, slack) {
			return
		}
		if hi-lo == 1 {
			return
		}
		mid := (lo + hi) / 2
		removeRange(mid, hi)
		removeRange(lo, mid)
	}
	for t := startT; t > 0; {
		lo := t - omitBlock
		if lo < 0 {
			lo = 0
		}
		// One budget trial is charged per removal window — the atomic
		// resume unit — so a budget stop always lands on a window
		// boundary and every resumed leg makes progress.
		if stop, halted := ctl.Trial(); halted {
			st.Status = stop
			st.Err = saveOmitCheckpoint(ctl, len(seq), len(faults), t, o.keptMask(len(seq)), o.detAt, false, true)
			break
		}
		// Snapshot the pre-window state: a cancellation or deadline stop
		// inside the window saves this snapshot, so the resumed run
		// redoes the whole window.
		var snapKept string
		var snapDet []int
		if ctl != nil && ctl.Store != nil {
			snapKept = o.keptMask(len(seq))
			snapDet = append([]int(nil), o.detAt...)
		}
		before := len(o.cur)
		o.beginWindow(lo)
		removeRange(lo, t)
		if o.stopStatus.Stopped() {
			st.Status = o.stopStatus
			st.Err = saveOmitCheckpoint(ctl, len(seq), len(faults), t, snapKept, snapDet, false, true)
			break
		}
		cWindows.Inc()
		obs.Emit(ob, "omit", "window",
			obs.F("lo", lo), obs.F("hi", t),
			obs.F("removed", before-len(o.cur)), obs.F("len", len(o.cur)))
		st.Err = saveOmitCheckpoint(ctl, len(seq), len(faults), lo, o.keptMask(len(seq)), o.detAt, false, false)
		t = lo
	}
	if st.Status.Done() {
		st.Err = saveOmitCheckpoint(ctl, len(seq), len(faults), 0, o.keptMask(len(seq)), o.detAt, true, true)
	}
	st.AfterLen = len(o.cur)
	st.Simulations = o.sims
	st.BatchSteps = o.steps
	if st.Status.Done() {
		st.ExtraDetected = countExtra(s, o.cur, faults, undetected, &st)
	}
	if st.Err != nil && st.Status != runctl.Failed {
		ctl.Fail()
		st.Status = runctl.Failed
	}
	obs.Emit(ob, "omit", "done",
		obs.F("before", st.BeforeLen), obs.F("after", st.AfterLen),
		obs.F("extra", st.ExtraDetected), obs.F("status", st.Status.String()))
	return o.cur, st
}

// undetectedIndices snapshots the indices of faults a base simulation
// left undetected. Both compaction passes take this snapshot before
// their trial loops run, so countExtra can never observe a detection
// array the pass has since mutated in place (the omitter rewrites its
// detAt backing array as removals shift detection times; handing that
// live slice downstream was an aliasing hazard that relied on omission
// never resetting a detected entry).
func undetectedIndices(detAt []int) []int {
	var undetected []int
	for fi, t := range detAt {
		if t == sim.NotDetected {
			undetected = append(undetected, fi)
		}
	}
	return undetected
}

// countExtra counts faults the compacted sequence detects that the
// original did not. undetected is the snapshot of originally-undetected
// fault indices taken before the pass started (see undetectedIndices).
func countExtra(s *sim.Simulator, out logic.Sequence, faults []fault.Fault, undetected []int, st *Stats) int {
	if len(undetected) == 0 {
		return 0
	}
	st.Simulations++
	r := s.RunSubset(out, faults, undetected, sim.Options{}, nil, nil)
	st.BatchSteps += r.BatchSteps
	return r.NumDetected()
}

// RestoreThenOmit applies the paper's Section 4 pipeline: restoration
// followed by omission. The returned stats are the omission stats with
// BeforeLen overridden to the original length and ExtraDetected summed
// over both passes.
func RestoreThenOmit(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault) (restored, omitted logic.Sequence, rst, ost Stats) {
	return RestoreThenOmitOpts(c, seq, faults, Options{})
}

// RestoreThenOmitOpts is RestoreThenOmit with explicit Options; both
// passes share one simulator (and machine pool).
func RestoreThenOmitOpts(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options) (restored, omitted logic.Sequence, rst, ost Stats) {
	private := opts.Sim == nil
	opts.Sim = opts.simulator(c)
	if private {
		opts.Sim.Observe(opts.Obs)
	}
	restored, rst = RestoreOpts(c, seq, faults, opts)
	if rst.Status.Stopped() {
		// Omission must not run (or checkpoint) against a partial
		// restoration: resuming restore will extend the sequence, so an
		// omit checkpoint taken now could never be matched up again.
		ost = Stats{BeforeLen: len(restored), AfterLen: len(restored), Status: rst.Status, Err: rst.Err}
		return restored, restored, rst, ost
	}
	omitted, ost = OmitOpts(c, restored, faults, opts)
	return restored, omitted, rst, ost
}
