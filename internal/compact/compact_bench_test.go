package compact

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
)

// BenchmarkCompaction measures the two static compaction procedures and
// the combined pipeline on a generated sequence. The ablation between
// Restore-only, Omit-only and the pipeline quantifies the paper's
// Section 4 design choice (restoration first, then omission).
func BenchmarkCompaction(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})

	b.Run("restore-only", func(b *testing.B) {
		var n int
		var st Stats
		for i := 0; i < b.N; i++ {
			var out logic.Sequence
			out, st = Restore(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(len(gen.Sequence)), "raw_cycles")
		b.ReportMetric(float64(n), "cycles")
		b.ReportMetric(float64(st.BatchSteps), "batchsteps")
	})
	b.Run("omit-only", func(b *testing.B) {
		var n int
		var st Stats
		for i := 0; i < b.N; i++ {
			var out logic.Sequence
			out, st = Omit(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(n), "cycles")
		b.ReportMetric(float64(st.BatchSteps), "batchsteps")
	})
	b.Run("restore-then-omit", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			_, out, _, _ := RestoreThenOmit(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(n), "cycles")
	})
}
