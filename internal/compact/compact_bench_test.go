package compact

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adi"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

// BenchmarkCompaction measures the two static compaction procedures and
// the combined pipeline on a generated sequence. The ablation between
// Restore-only, Omit-only and the pipeline quantifies the paper's
// Section 4 design choice (restoration first, then omission).
func BenchmarkCompaction(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})

	b.Run("restore-only", func(b *testing.B) {
		var n int
		var st Stats
		for i := 0; i < b.N; i++ {
			var out logic.Sequence
			out, st = Restore(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(len(gen.Sequence)), "raw_cycles")
		b.ReportMetric(float64(n), "cycles")
		b.ReportMetric(float64(st.BatchSteps), "batchsteps")
	})
	b.Run("omit-only", func(b *testing.B) {
		var n int
		var st Stats
		for i := 0; i < b.N; i++ {
			var out logic.Sequence
			out, st = Omit(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(n), "cycles")
		b.ReportMetric(float64(st.BatchSteps), "batchsteps")
	})
	b.Run("restore-then-omit", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			_, out, _, _ := RestoreThenOmit(sc.Scan, gen.Sequence, faults)
			n = len(out)
		}
		b.ReportMetric(float64(n), "cycles")
	})
}

// BenchmarkCompactionEngines compares the incremental trial engine
// against the serial scratch reference on the full pipeline, across
// worker counts. Both produce bit-identical output; the metrics expose
// where the incremental engine's time goes: trial throughput, the
// fault-free trace prefix reuse in the shared simulator, and the
// omission engine's reconvergence cutoffs and window-memo hits.
func BenchmarkCompactionEngines(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})

	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, engine := range []Engine{EngineIncremental, EngineScratch} {
		for k := range seen {
			delete(seen, k)
		}
		for _, workers := range workerCounts {
			if seen[workers] {
				continue
			}
			seen[workers] = true
			if engine == EngineScratch && workers != 1 {
				continue // the scratch trial loop is serial by definition
			}
			name := fmt.Sprintf("%s/workers=%d", engine, workers)
			b.Run(name, func(b *testing.B) {
				reg := obs.NewRegistry()
				var st Stats
				for i := 0; i < b.N; i++ {
					_, _, _, st = RestoreThenOmitOpts(sc.Scan, gen.Sequence, faults,
						Options{Engine: engine, Workers: workers, Obs: reg})
				}
				snap := reg.Snapshot().Counters
				trials := snap["restore.trials"] + snap["omit.trials"]
				b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
				b.ReportMetric(float64(snap["sim.trace_prefix_hits"])/float64(b.N), "prefix_hits/op")
				b.ReportMetric(float64(snap["sim.trace_prefix_steps"])/float64(b.N), "prefix_steps/op")
				b.ReportMetric(float64(snap["omit.reconv_cutoffs"])/float64(b.N), "reconv/op")
				b.ReportMetric(float64(snap["omit.window_memo_hits"])/float64(b.N), "win_hits/op")
				b.ReportMetric(float64(st.BatchSteps), "batchsteps")
			})
		}
	}
}

// BenchmarkADIScores measures the accidental-detection profile pass that
// OrderADI adds in front of restoration.
func BenchmarkADIScores(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
	s := sim.NewSimulator(sc.Scan, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adi.Scores(s, gen.Sequence, faults)
	}
	b.ReportMetric(float64(len(gen.Sequence)*len(faults))*float64(b.N)/b.Elapsed().Seconds(), "faultcycles/s")
}
