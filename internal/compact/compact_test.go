package compact

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

// fixture builds an s27 scan circuit, its fault universe, and a
// generated (deliberately uncompacted) test sequence.
func fixture(t *testing.T) (*scan.Circuit, []fault.Fault, logic.Sequence) {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 11})
	if len(res.Sequence) == 0 {
		t.Fatal("empty generated sequence")
	}
	return sc, faults, res.Sequence
}

// padded appends useless all-zero vectors that compaction must remove.
func padded(sc *scan.Circuit, seq logic.Sequence) logic.Sequence {
	out := seq.Clone()
	for i := 0; i < 10; i++ {
		v := logic.NewVector(sc.Scan.NumInputs())
		for j := range v {
			v[j] = logic.Zero
		}
		out = append(out, v)
	}
	return out
}

func detectedSet(sc *scan.Circuit, seq logic.Sequence, faults []fault.Fault) map[int]bool {
	res := sim.Run(sc.Scan, seq, faults, sim.Options{})
	out := make(map[int]bool)
	for fi := range faults {
		if res.Detected(fi) {
			out[fi] = true
		}
	}
	return out
}

func TestOmitNeverLosesDetections(t *testing.T) {
	sc, faults, seq := fixture(t)
	before := detectedSet(sc, seq, faults)
	out, st := Omit(sc.Scan, seq, faults)
	if st.AfterLen != len(out) || st.BeforeLen != len(seq) {
		t.Errorf("stats lengths wrong: %+v", st)
	}
	if len(out) > len(seq) {
		t.Fatal("omission grew the sequence")
	}
	after := detectedSet(sc, out, faults)
	for fi := range before {
		if !after[fi] {
			t.Errorf("fault %s lost by omission", faults[fi].Name(sc.Scan))
		}
	}
}

func TestOmitRemovesPadding(t *testing.T) {
	sc, faults, seq := fixture(t)
	pad := padded(sc, seq)
	out, _ := Omit(sc.Scan, pad, faults)
	if len(out) > len(pad)-10 {
		t.Errorf("padding survived: %d -> %d", len(pad), len(out))
	}
}

func TestRestoreNeverLosesDetections(t *testing.T) {
	sc, faults, seq := fixture(t)
	before := detectedSet(sc, seq, faults)
	out, st := Restore(sc.Scan, seq, faults)
	if len(out) > len(seq) {
		t.Fatal("restoration grew the sequence")
	}
	if st.TargetFaults != len(before) {
		t.Errorf("target count %d != detected %d", st.TargetFaults, len(before))
	}
	after := detectedSet(sc, out, faults)
	for fi := range before {
		if !after[fi] {
			t.Errorf("fault %s lost by restoration", faults[fi].Name(sc.Scan))
		}
	}
}

func TestRestoreDropsPadding(t *testing.T) {
	sc, faults, seq := fixture(t)
	pad := padded(sc, seq)
	out, _ := Restore(sc.Scan, pad, faults)
	if len(out) >= len(pad) {
		t.Errorf("restoration removed nothing: %d -> %d", len(pad), len(out))
	}
}

func TestRestoreThenOmitPipeline(t *testing.T) {
	sc, faults, seq := fixture(t)
	restored, omitted, rst, ost := RestoreThenOmit(sc.Scan, seq, faults)
	if !(len(omitted) <= len(restored) && len(restored) <= len(seq)) {
		t.Errorf("pipeline not monotone: %d -> %d -> %d", len(seq), len(restored), len(omitted))
	}
	if rst.BeforeLen != len(seq) || ost.BeforeLen != len(restored) {
		t.Error("stats stages inconsistent")
	}
	before := detectedSet(sc, seq, faults)
	after := detectedSet(sc, omitted, faults)
	for fi := range before {
		if !after[fi] {
			t.Errorf("fault %s lost by pipeline", faults[fi].Name(sc.Scan))
		}
	}
}

// TestCompactionCanShortenScanOps checks the paper's central claim at
// the mechanism level: compaction may reduce the number of scan_sel=1
// vectors, i.e. turn complete scan operations into limited ones.
func TestCompactionCanShortenScanOps(t *testing.T) {
	sc, faults, seq := fixture(t)
	_, omitted, _, _ := RestoreThenOmit(sc.Scan, seq, faults)
	if sc.CountScanVectors(omitted) > sc.CountScanVectors(seq) {
		t.Error("compaction increased scan vector count")
	}
}

func TestOmitEmptyAndTrivialSequences(t *testing.T) {
	sc, faults, _ := fixture(t)
	out, st := Omit(sc.Scan, nil, faults)
	if len(out) != 0 || st.TargetFaults != 0 {
		t.Errorf("empty sequence mishandled: %d, %+v", len(out), st)
	}
	// A sequence detecting nothing should compact to nothing.
	junk := logic.Sequence{logic.NewVector(sc.Scan.NumInputs())}
	out, _ = Omit(sc.Scan, junk, faults)
	if len(out) != 0 {
		t.Errorf("undetecting sequence kept %d vectors", len(out))
	}
}

func TestRestoreEmptySequence(t *testing.T) {
	sc, faults, _ := fixture(t)
	out, st := Restore(sc.Scan, nil, faults)
	if len(out) != 0 || st.TargetFaults != 0 {
		t.Errorf("empty sequence mishandled: %d, %+v", len(out), st)
	}
}

func TestStatsSimulationCounts(t *testing.T) {
	sc, faults, seq := fixture(t)
	_, st := Omit(sc.Scan, seq, faults)
	if st.Simulations <= 0 {
		t.Error("no simulations counted")
	}
}
