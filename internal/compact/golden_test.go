package compact

import (
	"hash/fnv"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

// hashSeq fingerprints a sequence's exact vector content.
func hashSeq(seq logic.Sequence) uint64 {
	h := fnv.New64a()
	for _, v := range seq {
		h.Write([]byte(v.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// TestRestoreThenOmitGolden pins the full compaction pipeline to the
// output of the pre-parallelism serial implementation (goldens captured
// on this repository before the Simulator existed). Machine pooling,
// worker fan-out, the sort.Slice ordering and restoration fault
// dropping must all be invisible in the result.
func TestRestoreThenOmitGolden(t *testing.T) {
	golden := []struct {
		circuit                 string
		raw, restored, omitted  int
		restorHash, omittedHash uint64
		rExtra, oExtra          int
	}{
		{"s27", 32, 22, 18, 0xcc244bfbb3717983, 0x291f1d64efe0ac52, 0, 0},
		{"s298", 406, 302, 241, 0x337005ab71d8ba5b, 0x7b5b86c26aca9238, 0, 0},
		{"s344", 274, 252, 176, 0xee62e965285934d8, 0xcca82642fc9dde5a, 0, 0},
	}
	for _, g := range golden {
		g := g
		t.Run(g.circuit, func(t *testing.T) {
			c, err := circuits.Load(g.circuit)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scan.Insert(c)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(sc.Scan, true)
			gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
			if len(gen.Sequence) != g.raw {
				t.Fatalf("raw sequence length %d, golden %d", len(gen.Sequence), g.raw)
			}
			restored, omitted, rst, ost := RestoreThenOmit(sc.Scan, gen.Sequence, faults)
			if len(restored) != g.restored || hashSeq(restored) != g.restorHash {
				t.Errorf("restored: len %d hash %#x, golden len %d hash %#x",
					len(restored), hashSeq(restored), g.restored, g.restorHash)
			}
			if len(omitted) != g.omitted || hashSeq(omitted) != g.omittedHash {
				t.Errorf("omitted: len %d hash %#x, golden len %d hash %#x",
					len(omitted), hashSeq(omitted), g.omitted, g.omittedHash)
			}
			if rst.ExtraDetected != g.rExtra || ost.ExtraDetected != g.oExtra {
				t.Errorf("extra detections (%d, %d), golden (%d, %d)",
					rst.ExtraDetected, ost.ExtraDetected, g.rExtra, g.oExtra)
			}
		})
	}
}

// TestADIOrderGolden pins the pipeline output under OrderADI. The ADI
// order is the one option that legitimately changes the compacted
// sequence, so it gets its own goldens; on these circuits it beats the
// paper's detection order (s298: 241 → 195 final vectors).
func TestADIOrderGolden(t *testing.T) {
	golden := []struct {
		circuit                 string
		raw, restored, omitted  int
		restorHash, omittedHash uint64
	}{
		{"s27", 32, 21, 18, 0x715b61fc0b478aaa, 0xb0a7f6ab5010a67a},
		{"s298", 406, 233, 195, 0x022c7d20d554dcf7, 0x9ec919df3d652c4a},
		{"s344", 274, 232, 173, 0xf34944c2d96ca8bc, 0x6db76292ff6e0941},
	}
	for _, g := range golden {
		g := g
		t.Run(g.circuit, func(t *testing.T) {
			c, err := circuits.Load(g.circuit)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scan.Insert(c)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(sc.Scan, true)
			gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
			if len(gen.Sequence) != g.raw {
				t.Fatalf("raw sequence length %d, golden %d", len(gen.Sequence), g.raw)
			}
			restored, omitted, _, _ := RestoreThenOmitOpts(sc.Scan, gen.Sequence, faults, Options{Order: OrderADI})
			if len(restored) != g.restored || hashSeq(restored) != g.restorHash {
				t.Errorf("restored: len %d hash %#x, golden len %d hash %#x",
					len(restored), hashSeq(restored), g.restored, g.restorHash)
			}
			if len(omitted) != g.omitted || hashSeq(omitted) != g.omittedHash {
				t.Errorf("omitted: len %d hash %#x, golden len %d hash %#x",
					len(omitted), hashSeq(omitted), g.omitted, g.omittedHash)
			}
		})
	}
}

// TestEngineOutputsIdentical: the scratch engine reproduces the
// incremental engine's sequences and semantic stats exactly, in both
// restoration orders (the xcheck invariant "compact/engines" covers the
// whole seeded catalog; this is the fast in-package version).
func TestEngineOutputsIdentical(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
	semantic := func(st Stats) [4]int {
		return [4]int{st.BeforeLen, st.AfterLen, st.TargetFaults, st.ExtraDetected}
	}
	for _, order := range []Order{OrderDetection, OrderADI} {
		rInc, oInc, rstInc, ostInc := RestoreThenOmitOpts(sc.Scan, gen.Sequence, faults,
			Options{Engine: EngineIncremental, Order: order})
		rScr, oScr, rstScr, ostScr := RestoreThenOmitOpts(sc.Scan, gen.Sequence, faults,
			Options{Engine: EngineScratch, Order: order})
		if hashSeq(rInc) != hashSeq(rScr) || len(rInc) != len(rScr) {
			t.Errorf("order=%s: restored sequences differ (incremental %d, scratch %d)", order, len(rInc), len(rScr))
		}
		if hashSeq(oInc) != hashSeq(oScr) || len(oInc) != len(oScr) {
			t.Errorf("order=%s: omitted sequences differ (incremental %d, scratch %d)", order, len(oInc), len(oScr))
		}
		if semantic(rstInc) != semantic(rstScr) {
			t.Errorf("order=%s: restore semantic stats differ: %v vs %v", order, semantic(rstInc), semantic(rstScr))
		}
		if semantic(ostInc) != semantic(ostScr) {
			t.Errorf("order=%s: omit semantic stats differ: %v vs %v", order, semantic(ostInc), semantic(ostScr))
		}
	}
}

// TestCompactionWorkerDeterminism: the compacted sequence and the work
// accounting must be identical for one worker and many — parallelism
// only changes wall-clock time.
func TestCompactionWorkerDeterminism(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	rng := logic.NewRandFiller(11)
	seq := make(logic.Sequence, 160)
	for i := range seq {
		v := logic.NewVector(sc.Scan.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}

	r1, o1, rst1, ost1 := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Workers: 1})
	rN, oN, rstN, ostN := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Workers: 8})
	if hashSeq(r1) != hashSeq(rN) || len(r1) != len(rN) {
		t.Errorf("restored sequences differ: workers=1 len %d, workers=8 len %d", len(r1), len(rN))
	}
	if hashSeq(o1) != hashSeq(oN) || len(o1) != len(oN) {
		t.Errorf("omitted sequences differ: workers=1 len %d, workers=8 len %d", len(o1), len(oN))
	}
	if rst1 != rstN {
		t.Errorf("restore stats differ: %+v vs %+v", rst1, rstN)
	}
	if ost1 != ostN {
		t.Errorf("omit stats differ: %+v vs %+v", ost1, ostN)
	}

	// An externally supplied shared simulator must behave identically.
	s := sim.NewSimulator(sc.Scan, 4)
	rS, oS, _, _ := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Sim: s})
	if hashSeq(rS) != hashSeq(r1) || hashSeq(oS) != hashSeq(o1) {
		t.Error("shared-simulator run differs from private-simulator run")
	}
}
