package compact

import (
	"hash/fnv"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

// hashSeq fingerprints a sequence's exact vector content.
func hashSeq(seq logic.Sequence) uint64 {
	h := fnv.New64a()
	for _, v := range seq {
		h.Write([]byte(v.String()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// TestRestoreThenOmitGolden pins the full compaction pipeline to the
// output of the pre-parallelism serial implementation (goldens captured
// on this repository before the Simulator existed). Machine pooling,
// worker fan-out, the sort.Slice ordering and restoration fault
// dropping must all be invisible in the result.
func TestRestoreThenOmitGolden(t *testing.T) {
	golden := []struct {
		circuit                 string
		raw, restored, omitted  int
		restorHash, omittedHash uint64
		rExtra, oExtra          int
	}{
		{"s27", 32, 22, 18, 0xcc244bfbb3717983, 0x291f1d64efe0ac52, 0, 0},
		{"s298", 406, 302, 241, 0x337005ab71d8ba5b, 0x7b5b86c26aca9238, 0, 0},
		{"s344", 274, 252, 176, 0xee62e965285934d8, 0xcca82642fc9dde5a, 0, 0},
	}
	for _, g := range golden {
		g := g
		t.Run(g.circuit, func(t *testing.T) {
			c, err := circuits.Load(g.circuit)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := scan.Insert(c)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(sc.Scan, true)
			gen := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
			if len(gen.Sequence) != g.raw {
				t.Fatalf("raw sequence length %d, golden %d", len(gen.Sequence), g.raw)
			}
			restored, omitted, rst, ost := RestoreThenOmit(sc.Scan, gen.Sequence, faults)
			if len(restored) != g.restored || hashSeq(restored) != g.restorHash {
				t.Errorf("restored: len %d hash %#x, golden len %d hash %#x",
					len(restored), hashSeq(restored), g.restored, g.restorHash)
			}
			if len(omitted) != g.omitted || hashSeq(omitted) != g.omittedHash {
				t.Errorf("omitted: len %d hash %#x, golden len %d hash %#x",
					len(omitted), hashSeq(omitted), g.omitted, g.omittedHash)
			}
			if rst.ExtraDetected != g.rExtra || ost.ExtraDetected != g.oExtra {
				t.Errorf("extra detections (%d, %d), golden (%d, %d)",
					rst.ExtraDetected, ost.ExtraDetected, g.rExtra, g.oExtra)
			}
		})
	}
}

// TestCompactionWorkerDeterminism: the compacted sequence and the work
// accounting must be identical for one worker and many — parallelism
// only changes wall-clock time.
func TestCompactionWorkerDeterminism(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	rng := logic.NewRandFiller(11)
	seq := make(logic.Sequence, 160)
	for i := range seq {
		v := logic.NewVector(sc.Scan.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}

	r1, o1, rst1, ost1 := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Workers: 1})
	rN, oN, rstN, ostN := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Workers: 8})
	if hashSeq(r1) != hashSeq(rN) || len(r1) != len(rN) {
		t.Errorf("restored sequences differ: workers=1 len %d, workers=8 len %d", len(r1), len(rN))
	}
	if hashSeq(o1) != hashSeq(oN) || len(o1) != len(oN) {
		t.Errorf("omitted sequences differ: workers=1 len %d, workers=8 len %d", len(o1), len(oN))
	}
	if rst1 != rstN {
		t.Errorf("restore stats differ: %+v vs %+v", rst1, rstN)
	}
	if ost1 != ostN {
		t.Errorf("omit stats differ: %+v vs %+v", ost1, ostN)
	}

	// An externally supplied shared simulator must behave identically.
	s := sim.NewSimulator(sc.Scan, 4)
	rS, oS, _, _ := RestoreThenOmitOpts(sc.Scan, seq, faults, Options{Sim: s})
	if hashSeq(rS) != hashSeq(r1) || hashSeq(oS) != hashSeq(o1) {
		t.Error("shared-simulator run differs from private-simulator run")
	}
}
