package compact

import (
	"context"
	"testing"

	"repro/internal/logic"
	"repro/internal/runctl"
)

// driveToCompletion reruns a budgeted pass against the same store,
// resuming each leg, until the pass reports Done. Budgets are drawn
// from rng so interruption points vary but stay reproducible.
func driveToCompletion(t *testing.T, rng *logic.RandFiller, maxBudget int, run func(ctl *runctl.Control) (logic.Sequence, Stats)) (logic.Sequence, Stats, int) {
	t.Helper()
	store := runctl.NewMemStore()
	legs := 0
	for {
		b := runctl.Budget{MaxTrials: int64(1 + rng.Intn(maxBudget))}
		out, st := run(&runctl.Control{Budget: b, Store: store, Resume: true})
		if st.Err != nil {
			t.Fatalf("leg %d: %v", legs, st.Err)
		}
		if st.Status.Done() {
			return out, st, legs
		}
		if st.Status != runctl.BudgetExhausted {
			t.Fatalf("leg %d: status %v, want budget exhausted", legs, st.Status)
		}
		legs++
		if legs > 500 {
			t.Fatal("pass never completed")
		}
	}
}

func sameSequence(t *testing.T, label string, got, want logic.Sequence) {
	t.Helper()
	if got.String() != want.String() {
		t.Fatalf("%s: resumed output differs from uninterrupted run (%d vs %d vectors)",
			label, len(got), len(want))
	}
}

// TestRestoreResumeIdentity: restoration interrupted at randomized
// order positions and resumed must reproduce the uninterrupted output.
func TestRestoreResumeIdentity(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	ref, refSt := Restore(sc.Scan, in, faults)
	if !refSt.Status.Done() {
		t.Fatalf("reference status %v", refSt.Status)
	}

	rng := logic.NewRandFiller(41)
	for round := 0; round < 3; round++ {
		out, st, legs := driveToCompletion(t, rng, 9, func(ctl *runctl.Control) (logic.Sequence, Stats) {
			return RestoreOpts(sc.Scan, in, faults, Options{Control: ctl})
		})
		if legs == 0 {
			t.Fatalf("round %d: never interrupted; budgets too large", round)
		}
		if st.Status != runctl.Resumed {
			t.Fatalf("round %d: final status %v", round, st.Status)
		}
		sameSequence(t, "restore", out, ref)
	}
}

// TestOmitResumeIdentity: omission interrupted at randomized trial
// points resumes from the last window boundary and still reproduces
// the uninterrupted output bit for bit.
func TestOmitResumeIdentity(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	ref, refSt := Omit(sc.Scan, in, faults)
	if !refSt.Status.Done() {
		t.Fatalf("reference status %v", refSt.Status)
	}

	rng := logic.NewRandFiller(43)
	for round := 0; round < 3; round++ {
		// Omission charges one trial per removal window, and the input
		// only has a few windows, so interrupt after every single one.
		out, st, legs := driveToCompletion(t, rng, 1, func(ctl *runctl.Control) (logic.Sequence, Stats) {
			return OmitOpts(sc.Scan, in, faults, Options{Control: ctl})
		})
		if legs == 0 {
			t.Fatalf("round %d: never interrupted; budgets too large", round)
		}
		if st.Status != runctl.Resumed {
			t.Fatalf("round %d: final status %v", round, st.Status)
		}
		sameSequence(t, "omit", out, ref)
	}
}

// TestRestoreThenOmitResumeIdentity drives the full pipeline through
// randomized interruptions; both phases share one Control and one
// store, and the final compacted sequence must match an uninterrupted
// pipeline.
func TestRestoreThenOmitResumeIdentity(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	_, refOmitted, _, refOst := RestoreThenOmit(sc.Scan, in, faults)
	if !refOst.Status.Done() {
		t.Fatalf("reference status %v", refOst.Status)
	}

	rng := logic.NewRandFiller(47)
	store := runctl.NewMemStore()
	legs := 0
	for {
		b := runctl.Budget{MaxTrials: int64(1 + rng.Intn(9))}
		ctl := &runctl.Control{Budget: b, Store: store, Resume: true}
		_, omitted, rst, ost := RestoreThenOmitOpts(sc.Scan, in, faults, Options{Control: ctl})
		if rst.Err != nil || ost.Err != nil {
			t.Fatalf("leg %d: %v / %v", legs, rst.Err, ost.Err)
		}
		if ost.Status.Done() {
			if legs == 0 {
				t.Fatal("never interrupted; budgets too large")
			}
			sameSequence(t, "pipeline", omitted, refOmitted)
			return
		}
		legs++
		if legs > 500 {
			t.Fatal("pipeline never completed")
		}
	}
}

// TestCompactCanceledReturnsValidPartial: a cancellation mid-pass must
// yield a sequence that still detects everything the input detected
// (the partial result is valid, just less compact).
func TestCompactCanceledReturnsValidPartial(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, st := OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Budget: runctl.Budget{Ctx: ctx}}})
	if st.Status != runctl.Canceled {
		t.Fatalf("status %v, want canceled", st.Status)
	}
	// Canceled before the first trial: the working sequence is the
	// input, which by construction detects everything the input does.
	if len(out) != len(in) {
		t.Fatalf("pre-trial cancel removed vectors: %d of %d left", len(out), len(in))
	}

	want := detectedSet(sc, in, faults)
	got := detectedSet(sc, out, faults)
	for fi := range want {
		if !got[fi] {
			t.Fatalf("fault %d lost by canceled compaction", fi)
		}
	}
}

// TestOmitResumeRejectsMismatch: an omit checkpoint for a different
// input must fail loudly instead of producing garbage.
func TestOmitResumeRejectsMismatch(t *testing.T) {
	sc, faults, seq := fixture(t)
	in := padded(sc, seq)
	store := runctl.NewMemStore()
	_, st := OmitOpts(sc.Scan, in, faults, Options{Control: &runctl.Control{Store: store}})
	if !st.Status.Done() {
		t.Fatalf("seed run status %v", st.Status)
	}
	_, st = OmitOpts(sc.Scan, in[:len(in)-1], faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if st.Status != runctl.Failed || st.Err == nil {
		t.Fatalf("mismatched resume accepted: %v %v", st.Status, st.Err)
	}
}
