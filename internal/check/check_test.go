package check

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/combatpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/translate"
)

func fixture(t *testing.T) (*scan.Circuit, []fault.Fault, seqatpg.Result) {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	return sc, faults, seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
}

// parseGood builds a small well-formed sequential circuit for the
// netlist-corruption tests.
func parseGood(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
n1 = AND(a, b)
d = OR(n1, q)
y = NOT(d)
`, "good")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNetlistAcceptsWellFormed(t *testing.T) {
	if err := Netlist(parseGood(t)); err != nil {
		t.Error(err)
	}
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	if err := Netlist(c); err != nil {
		t.Error(err)
	}
}

// TestMalformedNetlistsRejected pins one clear, non-panicking error per
// malformed-netlist class, as produced by the builder before any
// levelized evaluation can hang or panic.
func TestMalformedNetlistsRejected(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"combinational-loop",
			"INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = OR(a, y)\n",
			"combinational cycle"},
		{"undriven-net",
			"INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",
			"undriven"},
		{"multiply-driven-net",
			"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(b)\n",
			"already defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := bench.ParseString(tc.text, "bad")
			if err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestNetlistCatchesCorruption corrupts a built circuit one invariant
// at a time and checks Netlist names the malformed class.
func TestNetlistCatchesCorruption(t *testing.T) {
	t.Run("undriven", func(t *testing.T) {
		c := parseGood(t)
		id, _ := c.SignalByName("n1")
		c.Signals[id].Driver = -1
		if err := Netlist(c); err == nil || !strings.Contains(err.Error(), "undriven") {
			t.Errorf("undriven net not flagged: %v", err)
		}
	})
	t.Run("multiply-driven", func(t *testing.T) {
		c := parseGood(t)
		c.Gates[1].Out = c.Gates[0].Out
		if err := Netlist(c); err == nil || !strings.Contains(err.Error(), "multiply driven") {
			t.Errorf("multiply-driven net not flagged: %v", err)
		}
	})
	t.Run("truncated-order", func(t *testing.T) {
		c := parseGood(t)
		c.Order = c.Order[:len(c.Order)-1]
		if err := Netlist(c); err == nil || !strings.Contains(err.Error(), "combinational loop") {
			t.Errorf("truncated order not flagged: %v", err)
		}
	})
	t.Run("cyclic-order", func(t *testing.T) {
		c := parseGood(t)
		// Reversing the topological order puts at least one gate before
		// a gate that drives it in this circuit (NOT(d) reads OR's out).
		for i, j := 0, len(c.Order)-1; i < j; i, j = i+1, j-1 {
			c.Order[i], c.Order[j] = c.Order[j], c.Order[i]
		}
		if err := Netlist(c); err == nil || !strings.Contains(err.Error(), "combinational loop") {
			t.Errorf("out-of-order evaluation not flagged: %v", err)
		}
	})
}

func TestSequenceValid(t *testing.T) {
	sc, _, res := fixture(t)
	if err := Sequence(sc.Scan, res.Sequence, true); err != nil {
		t.Error(err)
	}
}

func TestSequenceRejectsBadWidth(t *testing.T) {
	sc, _, _ := fixture(t)
	bad := logic.Sequence{logic.NewVector(2)}
	if err := Sequence(sc.Scan, bad, false); err == nil {
		t.Error("narrow vector accepted")
	}
}

func TestSequenceRejectsXWhenFullySpecified(t *testing.T) {
	sc, _, _ := fixture(t)
	seq := logic.Sequence{logic.NewVector(sc.Scan.NumInputs())}
	if err := Sequence(sc.Scan, seq, true); err == nil {
		t.Error("X values accepted as fully specified")
	}
	if err := Sequence(sc.Scan, seq, false); err != nil {
		t.Errorf("X values rejected in relaxed mode: %v", err)
	}
}

func TestGenerateResultValid(t *testing.T) {
	sc, faults, res := fixture(t)
	if err := GenerateResult(sc.Scan, res, faults); err != nil {
		t.Error(err)
	}
}

func TestGenerateResultCatchesFalseClaim(t *testing.T) {
	sc, faults, res := fixture(t)
	// Forge an impossible claim: detection beyond sequence end.
	forged := res
	forged.DetectedAt = append([]int(nil), res.DetectedAt...)
	forged.DetectedAt[0] = len(res.Sequence) + 5
	if err := GenerateResult(sc.Scan, forged, faults); err == nil {
		t.Error("out-of-range detection accepted")
	}
	// Forge a detection on an empty sequence.
	empty := seqatpg.Result{
		Sequence:   nil,
		DetectedAt: make([]int, len(faults)),
		Funct:      make([]bool, len(faults)),
	}
	for i := range empty.DetectedAt {
		empty.DetectedAt[i] = sim.NotDetected
	}
	empty.DetectedAt[3] = 0
	if err := GenerateResult(sc.Scan, empty, faults); err == nil {
		t.Error("claim without sequence accepted")
	}
}

func TestGenerateResultCatchesFunctWithoutDetection(t *testing.T) {
	sc, faults, res := fixture(t)
	forged := res
	forged.DetectedAt = append([]int(nil), res.DetectedAt...)
	forged.Funct = append([]bool(nil), res.Funct...)
	forged.DetectedAt[0] = sim.NotDetected
	forged.Funct[0] = true
	if err := GenerateResult(sc.Scan, forged, faults); err == nil ||
		!strings.Contains(err.Error(), "funct") {
		t.Errorf("funct-without-detection accepted: %v", err)
	}
}

func TestCompactionValid(t *testing.T) {
	sc, faults, res := fixture(t)
	// Dropping the last vector of an ATPG sequence usually loses a
	// detection; Compaction must flag it when it does, and must accept
	// the identity compaction always.
	if err := Compaction(sc.Scan, res.Sequence, res.Sequence, faults); err != nil {
		t.Errorf("identity compaction rejected: %v", err)
	}
	if err := Compaction(sc.Scan, res.Sequence, append(res.Sequence.Clone(), res.Sequence[0]), faults); err == nil {
		t.Error("grown sequence accepted")
	}
}

func TestCompactionCatchesLoss(t *testing.T) {
	sc, faults, res := fixture(t)
	// An empty "compacted" sequence loses everything.
	if err := Compaction(sc.Scan, res.Sequence, nil, faults); err == nil {
		t.Error("lossy compaction accepted")
	}
}

func TestScanStructureSingleAndChains(t *testing.T) {
	c, _ := circuits.Load("s298")
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := ScanStructure(sc); err != nil {
		t.Errorf("single chain: %v", err)
	}
	for _, n := range []int{2, 3, 5, 7} {
		ch, err := scan.InsertChains(c, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := ScanStructure(ch); err != nil {
			t.Errorf("%d chains: %v", n, err)
		}
	}
}

func TestTranslationCycleNeutral(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, _ := scan.Insert(c)
	faults := fault.Universe(c, true)
	set := combatpg.GenerateTestSet(c, faults, 1)
	tests := translate.FromFrameTests(set.Tests)
	seq, err := translate.Translate(sc, tests, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Translation(sc, tests, seq, sc.NSV); err != nil {
		t.Error(err)
	}
	if err := Translation(sc, tests, seq[:len(seq)-1], sc.NSV); err == nil {
		t.Error("truncated translation accepted")
	}
}
