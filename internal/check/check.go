// Package check validates the invariants that tie the library's pieces
// together: sequences must fit their circuit, generation results must
// be reproducible by independent simulation, compaction must preserve
// detection, and translation must be cycle-neutral. The experiment
// flows and the test suite both lean on these checks, and scansim can
// apply them to externally supplied artifacts.
package check

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Netlist validates the structural invariants of a built circuit:
// every net has exactly one driver consistent with its kind, gate
// inputs are in range, and the evaluation order is a complete
// topological order (so evaluation can neither hang nor read
// uninitialized values). netlist.Builder.Build enforces these for
// circuits built through it; Netlist re-checks them for circuits
// assembled by hand or mutated after construction, returning a clear
// error — undriven net, multiply-driven net, combinational loop —
// before levelized evaluation is attempted.
func Netlist(c *netlist.Circuit) error {
	n := len(c.Signals)
	// A gate (or flip-flop) whose output signal records a different
	// driver means two drivers claim the same net; check that before
	// the per-signal pass so the corruption is named for what it is.
	for gi, g := range c.Gates {
		if int(g.Out) < 0 || int(g.Out) >= n {
			return fmt.Errorf("check: gate %d output signal %d out of range", gi, g.Out)
		}
		out := c.Signals[g.Out]
		if out.Kind == netlist.KindGate && out.Driver < 0 {
			return fmt.Errorf("check: undriven net %q (gate %d not recorded as its driver)", out.Name, gi)
		}
		if out.Kind != netlist.KindGate || int(out.Driver) != gi {
			return fmt.Errorf("check: net %q multiply driven (gate %d and %s %d)",
				out.Name, gi, out.Kind, out.Driver)
		}
		for pin, in := range g.In {
			if int(in) < 0 || int(in) >= n {
				return fmt.Errorf("check: gate %d input pin %d reads signal %d of %d", gi, pin, in, n)
			}
		}
	}
	for fi, ff := range c.FFs {
		if int(ff.Q) < 0 || int(ff.Q) >= n || int(ff.D) < 0 || int(ff.D) >= n {
			return fmt.Errorf("check: flip-flop %d references signals outside the circuit", fi)
		}
		if q := c.Signals[ff.Q]; q.Kind != netlist.KindFF || int(q.Driver) != fi {
			return fmt.Errorf("check: net %q multiply driven (flip-flop %d and %s %d)",
				q.Name, fi, q.Kind, q.Driver)
		}
	}
	for id, s := range c.Signals {
		switch s.Kind {
		case netlist.KindInput:
			if s.Driver != -1 {
				return fmt.Errorf("check: input %q has driver index %d, want -1", s.Name, s.Driver)
			}
		case netlist.KindGate:
			if s.Driver < 0 {
				return fmt.Errorf("check: undriven net %q", s.Name)
			}
			if int(s.Driver) >= len(c.Gates) {
				return fmt.Errorf("check: net %q names gate %d of %d", s.Name, s.Driver, len(c.Gates))
			}
			if int(c.Gates[s.Driver].Out) != id {
				return fmt.Errorf("check: net %q undriven (gate %d drives another net)", s.Name, s.Driver)
			}
		case netlist.KindFF:
			if s.Driver < 0 || int(s.Driver) >= len(c.FFs) {
				return fmt.Errorf("check: net %q names flip-flop %d of %d", s.Name, s.Driver, len(c.FFs))
			}
			if int(c.FFs[s.Driver].Q) != id {
				return fmt.Errorf("check: net %q undriven (flip-flop %d drives another net)", s.Name, s.Driver)
			}
		default:
			return fmt.Errorf("check: net %q has unknown kind %v", s.Name, s.Kind)
		}
	}
	// Order must list every gate exactly once, each after all gates
	// driving its inputs; a short or cyclic order is a combinational
	// loop (or a truncated levelization) and would hang or misevaluate.
	if len(c.Order) != len(c.Gates) {
		return fmt.Errorf("check: evaluation order covers %d of %d gates (combinational loop?)",
			len(c.Order), len(c.Gates))
	}
	pos := make([]int, len(c.Gates))
	for i := range pos {
		pos[i] = -1
	}
	for i, gi := range c.Order {
		if int(gi) < 0 || int(gi) >= len(c.Gates) {
			return fmt.Errorf("check: evaluation order entry %d names gate %d of %d", i, gi, len(c.Gates))
		}
		if pos[gi] >= 0 {
			return fmt.Errorf("check: gate %d appears twice in the evaluation order", gi)
		}
		pos[gi] = i
	}
	for gi, g := range c.Gates {
		for _, in := range g.In {
			if c.Signals[in].Kind != netlist.KindGate {
				continue
			}
			if pos[c.Signals[in].Driver] > pos[gi] {
				return fmt.Errorf("check: gate %d evaluated before its driver %d (combinational loop?)",
					gi, c.Signals[in].Driver)
			}
		}
	}
	return nil
}

// Sequence validates structural properties of a test sequence for a
// circuit: consistent vector widths matching the input count, and —
// when fullySpecified — no X values (a releasable tester sequence is
// always binary).
func Sequence(c *netlist.Circuit, seq logic.Sequence, fullySpecified bool) error {
	for t, v := range seq {
		if len(v) != c.NumInputs() {
			return fmt.Errorf("check: vector %d has width %d, circuit has %d inputs",
				t, len(v), c.NumInputs())
		}
		if fullySpecified && !v.Specified() {
			return fmt.Errorf("check: vector %d contains X values", t)
		}
		for i, x := range v {
			if x != logic.Zero && x != logic.One && x != logic.X {
				return fmt.Errorf("check: vector %d position %d holds invalid value %d", t, i, x)
			}
		}
	}
	return nil
}

// GenerateResult confirms every detection a generator claims by
// independent fault simulation of the final sequence. Claims the
// simulator cannot reproduce are protocol violations, not heuristic
// misses.
func GenerateResult(c *netlist.Circuit, res seqatpg.Result, faults []fault.Fault) error {
	if len(res.DetectedAt) != len(faults) {
		return fmt.Errorf("check: result covers %d faults, universe has %d", len(res.DetectedAt), len(faults))
	}
	ref := sim.Run(c, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		if res.DetectedAt[fi] == sim.NotDetected {
			continue
		}
		if !ref.Detected(fi) {
			return fmt.Errorf("check: claimed detection of %s not reproduced", faults[fi].Name(c))
		}
		if res.DetectedAt[fi] < 0 || res.DetectedAt[fi] >= len(res.Sequence) {
			return fmt.Errorf("check: detection time %d of %s out of range", res.DetectedAt[fi], faults[fi].Name(c))
		}
	}
	for fi, isFunct := range res.Funct {
		if isFunct && res.DetectedAt[fi] == sim.NotDetected {
			return fmt.Errorf("check: fault %s marked funct but undetected", faults[fi].Name(c))
		}
	}
	return nil
}

// Compaction confirms the compacted sequence detects every fault the
// original detected and did not grow.
func Compaction(c *netlist.Circuit, before, after logic.Sequence, faults []fault.Fault) error {
	if len(after) > len(before) {
		return fmt.Errorf("check: compaction grew the sequence: %d -> %d", len(before), len(after))
	}
	b := sim.Run(c, before, faults, sim.Options{})
	a := sim.Run(c, after, faults, sim.Options{})
	for fi := range faults {
		if b.Detected(fi) && !a.Detected(fi) {
			return fmt.Errorf("check: compaction lost %s", faults[fi].Name(c))
		}
	}
	return nil
}

// Translation confirms a translated sequence is cycle-neutral for its
// test set and structurally sound for the design. completeScanCost is
// the cycles of one complete scan operation (chain length, or longest
// chain for a multi-chain design).
func Translation(sc scan.Design, tests []translate.ScanTest, seq logic.Sequence, completeScanCost int) error {
	if want := translate.Cycles(tests, completeScanCost); len(seq) != want {
		return fmt.Errorf("check: translated length %d, conventional schedule %d", len(seq), want)
	}
	return Sequence(sc.ScanCircuit(), seq, true)
}

// ScanStructure validates a scan design's bookkeeping against its
// circuit: the select input exists, flush lengths are within range, and
// loading any state through the chain really establishes it.
func ScanStructure(sc scan.Design) error {
	c := sc.ScanCircuit()
	if sc.SelInput() < 0 || sc.SelInput() >= c.NumInputs() {
		return fmt.Errorf("check: scan_sel position %d out of range", sc.SelInput())
	}
	if sc.NumStateVars() != c.NumFFs() {
		return fmt.Errorf("check: %d state variables vs %d flip-flops", sc.NumStateVars(), c.NumFFs())
	}
	for f := 0; f < c.NumFFs(); f++ {
		if fl := sc.FlushLength(f); fl < 0 || fl >= sc.NumStateVars() {
			return fmt.Errorf("check: flush length %d of flip-flop %d out of range", fl, f)
		}
	}
	// Load an alternating pattern and verify it lands.
	state := make([]logic.Value, sc.NumStateVars())
	for i := range state {
		state[i] = logic.Zero
		if i%2 == 1 {
			state[i] = logic.One
		}
	}
	seq, err := sc.ScanInSequence(state)
	if err != nil {
		return fmt.Errorf("check: scan-in rejected a full-width state: %v", err)
	}
	m := sim.New(c)
	for _, v := range seq {
		m.Step(v)
	}
	got := m.StateSlot(0)
	for i := range state {
		if got[i] != state[i] {
			return fmt.Errorf("check: scan-in left flip-flop %d at %v, want %v", i, got[i], state[i])
		}
	}
	return nil
}
