// Package check validates the invariants that tie the library's pieces
// together: sequences must fit their circuit, generation results must
// be reproducible by independent simulation, compaction must preserve
// detection, and translation must be cycle-neutral. The experiment
// flows and the test suite both lean on these checks, and scansim can
// apply them to externally supplied artifacts.
package check

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Sequence validates structural properties of a test sequence for a
// circuit: consistent vector widths matching the input count, and —
// when fullySpecified — no X values (a releasable tester sequence is
// always binary).
func Sequence(c *netlist.Circuit, seq logic.Sequence, fullySpecified bool) error {
	for t, v := range seq {
		if len(v) != c.NumInputs() {
			return fmt.Errorf("check: vector %d has width %d, circuit has %d inputs",
				t, len(v), c.NumInputs())
		}
		if fullySpecified && !v.Specified() {
			return fmt.Errorf("check: vector %d contains X values", t)
		}
		for i, x := range v {
			if x != logic.Zero && x != logic.One && x != logic.X {
				return fmt.Errorf("check: vector %d position %d holds invalid value %d", t, i, x)
			}
		}
	}
	return nil
}

// GenerateResult confirms every detection a generator claims by
// independent fault simulation of the final sequence. Claims the
// simulator cannot reproduce are protocol violations, not heuristic
// misses.
func GenerateResult(c *netlist.Circuit, res seqatpg.Result, faults []fault.Fault) error {
	if len(res.DetectedAt) != len(faults) {
		return fmt.Errorf("check: result covers %d faults, universe has %d", len(res.DetectedAt), len(faults))
	}
	ref := sim.Run(c, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		if res.DetectedAt[fi] == sim.NotDetected {
			continue
		}
		if !ref.Detected(fi) {
			return fmt.Errorf("check: claimed detection of %s not reproduced", faults[fi].Name(c))
		}
		if res.DetectedAt[fi] < 0 || res.DetectedAt[fi] >= len(res.Sequence) {
			return fmt.Errorf("check: detection time %d of %s out of range", res.DetectedAt[fi], faults[fi].Name(c))
		}
	}
	for fi, isFunct := range res.Funct {
		if isFunct && res.DetectedAt[fi] == sim.NotDetected {
			return fmt.Errorf("check: fault %s marked funct but undetected", faults[fi].Name(c))
		}
	}
	return nil
}

// Compaction confirms the compacted sequence detects every fault the
// original detected and did not grow.
func Compaction(c *netlist.Circuit, before, after logic.Sequence, faults []fault.Fault) error {
	if len(after) > len(before) {
		return fmt.Errorf("check: compaction grew the sequence: %d -> %d", len(before), len(after))
	}
	b := sim.Run(c, before, faults, sim.Options{})
	a := sim.Run(c, after, faults, sim.Options{})
	for fi := range faults {
		if b.Detected(fi) && !a.Detected(fi) {
			return fmt.Errorf("check: compaction lost %s", faults[fi].Name(c))
		}
	}
	return nil
}

// Translation confirms a translated sequence is cycle-neutral for its
// test set and structurally sound for the design. completeScanCost is
// the cycles of one complete scan operation (chain length, or longest
// chain for a multi-chain design).
func Translation(sc scan.Design, tests []translate.ScanTest, seq logic.Sequence, completeScanCost int) error {
	if want := translate.Cycles(tests, completeScanCost); len(seq) != want {
		return fmt.Errorf("check: translated length %d, conventional schedule %d", len(seq), want)
	}
	return Sequence(sc.ScanCircuit(), seq, true)
}

// ScanStructure validates a scan design's bookkeeping against its
// circuit: the select input exists, flush lengths are within range, and
// loading any state through the chain really establishes it.
func ScanStructure(sc scan.Design) error {
	c := sc.ScanCircuit()
	if sc.SelInput() < 0 || sc.SelInput() >= c.NumInputs() {
		return fmt.Errorf("check: scan_sel position %d out of range", sc.SelInput())
	}
	if sc.NumStateVars() != c.NumFFs() {
		return fmt.Errorf("check: %d state variables vs %d flip-flops", sc.NumStateVars(), c.NumFFs())
	}
	for f := 0; f < c.NumFFs(); f++ {
		if fl := sc.FlushLength(f); fl < 0 || fl >= sc.NumStateVars() {
			return fmt.Errorf("check: flush length %d of flip-flop %d out of range", fl, f)
		}
	}
	// Load an alternating pattern and verify it lands.
	state := make([]logic.Value, sc.NumStateVars())
	for i := range state {
		state[i] = logic.Zero
		if i%2 == 1 {
			state[i] = logic.One
		}
	}
	seq, err := sc.ScanInSequence(state)
	if err != nil {
		return fmt.Errorf("check: scan-in rejected a full-width state: %v", err)
	}
	m := sim.New(c)
	for _, v := range seq {
		m.Step(v)
	}
	got := m.StateSlot(0)
	for i := range state {
		if got[i] != state[i] {
			return fmt.Errorf("check: scan-in left flip-flop %d at %v, want %v", i, got[i], state[i])
		}
	}
	return nil
}
