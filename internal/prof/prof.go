// Package prof wires the conventional -cpuprofile / -memprofile flags
// into a command so kernel work is measurable with pprof.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the registered profiling flags of one command.
type Flags struct {
	cpu, mem *string
	cpuFile  *os.File
}

// Register installs -cpuprofile and -memprofile on the default flag
// set. Call before flag.Parse.
func Register() *Flags {
	return &Flags{
		cpu: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: flag.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Call after
// flag.Parse.
func (f *Flags) Start() error {
	if *f.cpu == "" {
		return nil
	}
	file, err := os.Create(*f.cpu)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(file); err != nil {
		file.Close()
		return fmt.Errorf("prof: %w", err)
	}
	f.cpuFile = file
	return nil
}

// Stop finishes the CPU profile and writes the heap profile when
// requested; defer it right after a successful Start.
func (f *Flags) Stop() error {
	if f.cpuFile != nil {
		pprof.StopCPUProfile()
		f.cpuFile.Close()
		f.cpuFile = nil
	}
	if *f.mem == "" {
		return nil
	}
	file, err := os.Create(*f.mem)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer file.Close()
	runtime.GC() // settle the heap so the profile reflects live data
	if err := pprof.WriteHeapProfile(file); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
