// Package adi computes the Accidental Detection Index of Pomeranz &
// Reddy's fault-ordering follow-up (PAPERS.md, arXiv 0710.4637): for
// every fault, the number of time steps of a sequence at which the
// fault is observable on a primary output. A fault with a low index is
// rarely detected by accident, so targeting it early makes the vectors
// kept for it cover many high-index faults for free; compaction uses
// the scores to reorder restoration targets (compact.OrderADI).
package adi

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

// Scores returns, for every fault, how many cycles of seq expose it on
// some primary output, plus the batch-step count of the work performed
// (same unit as sim.Result.BatchSteps). Unlike detection-oriented
// fault simulation there is no early exit — every cycle contributes —
// so the count is an observability profile of the whole sequence, and
// it is deterministic and identical for every worker count of s.
func Scores(s *sim.Simulator, seq logic.Sequence, faults []fault.Fault) ([]int, int64) {
	counts := make([]int, len(faults))
	if len(seq) == 0 || len(faults) == 0 {
		return counts, 0
	}
	c := s.Circuit()
	nPO := c.NumOutputs()

	// One fault-free pass records the reference output rows.
	good := s.Acquire()
	rows := make([][]logic.Value, len(seq))
	for t, v := range seq {
		good.Step(v)
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = good.OutputSlot(po, 0)
		}
		rows[t] = row
	}
	s.Release(good)

	nBatches := (len(faults) + sim.Slots - 1) / sim.Slots
	var steps atomic.Int64
	runBatch := func(m *sim.Machine, bi int) {
		start := bi * sim.Slots
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		n := end - start
		m.ClearFaults()
		m.Reset()
		for k, f := range faults[start:end] {
			if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		allMask := sim.AllSlots
		if n < sim.Slots {
			allMask = (uint64(1) << uint(n)) - 1
		}
		for t, v := range seq {
			m.Step(v)
			row := rows[t]
			var det uint64
			for po := range row {
				if !row[po].IsBinary() {
					continue
				}
				gz, gd := sim.ValuePlanes(row[po])
				fz, fd := m.OutputPlanes(po)
				det |= sim.DetectMask(gz, gd, fz, fd)
			}
			for mm := det & allMask; mm != 0; mm &= mm - 1 {
				counts[start+bits.TrailingZeros64(mm)]++
			}
		}
		steps.Add(int64(len(seq)))
	}

	nw := s.Workers()
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			runBatch(m, bi)
		}
		s.Release(m)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := s.Acquire()
				defer s.Release(m)
				for {
					bi := int(next.Add(1)) - 1
					if bi >= nBatches {
						return
					}
					// Batches write disjoint counts ranges.
					runBatch(m, bi)
				}
			}()
		}
		wg.Wait()
	}
	return counts, steps.Load()
}
