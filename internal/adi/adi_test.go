package adi

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/sim"
)

func randSeq(n, width int, seed uint64) logic.Sequence {
	rng := logic.NewRandFiller(seed)
	seq := make(logic.Sequence, n)
	for i := range seq {
		v := make(logic.Vector, width)
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	return seq
}

// TestScoresMatchReference cross-checks the batch engine against a
// brute-force slot-0 single-fault count of detecting cycles.
func TestScoresMatchReference(t *testing.T) {
	for _, name := range []string{"s27", "s298"} {
		t.Run(name, func(t *testing.T) {
			c, err := circuits.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(c, true)
			seq := randSeq(90, c.NumInputs(), 4)
			s := sim.NewSimulator(c, 4)
			counts, steps := Scores(s, seq, faults)
			if want := int64(len(seq)) * int64((len(faults)+sim.Slots-1)/sim.Slots); steps != want {
				t.Fatalf("steps = %d, want %d", steps, want)
			}

			good := sim.New(c)
			rows := make([][]logic.Value, len(seq))
			for ti, v := range seq {
				good.Step(v)
				row := make([]logic.Value, c.NumOutputs())
				for po := range row {
					row[po] = good.OutputSlot(po, 0)
				}
				rows[ti] = row
			}
			for fi, f := range faults {
				m := sim.New(c)
				if err := m.InjectFault(f, 1); err != nil {
					t.Fatal(err)
				}
				want := 0
				for ti, v := range seq {
					m.Step(v)
					for po := range rows[ti] {
						gv := rows[ti][po]
						if !gv.IsBinary() {
							continue
						}
						gz, gd := sim.ValuePlanes(gv)
						fz, fd := m.OutputPlanes(po)
						if sim.DetectMask(gz, gd, fz, fd)&1 != 0 {
							want++
							break
						}
					}
				}
				if counts[fi] != want {
					t.Fatalf("fault %d: score %d, want %d", fi, counts[fi], want)
				}
			}
		})
	}
}

// TestScoresWorkerDeterminism: identical scores at every worker count.
func TestScoresWorkerDeterminism(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	seq := randSeq(140, c.NumInputs(), 6)
	ref, refSteps := Scores(sim.NewSimulator(c, 1), seq, faults)
	for _, w := range []int{2, 8} {
		got, steps := Scores(sim.NewSimulator(c, w), seq, faults)
		if steps != refSteps {
			t.Fatalf("workers=%d: steps %d, want %d", w, steps, refSteps)
		}
		for fi := range ref {
			if got[fi] != ref[fi] {
				t.Fatalf("workers=%d fault %d: score %d, want %d", w, fi, got[fi], ref[fi])
			}
		}
	}
}
