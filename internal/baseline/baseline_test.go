package baseline

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/translate"
)

func TestGenerateS27(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1})
	if res.NumDetected() < len(faults)*95/100 {
		t.Errorf("baseline coverage %d/%d too low", res.NumDetected(), len(faults))
	}
	if len(res.Tests) == 0 {
		t.Fatal("no tests generated")
	}
	if res.Cycles != translate.Cycles(res.Tests, c.NumFFs()) {
		t.Error("cycle count inconsistent with test set")
	}
	for ti, test := range res.Tests {
		if len(test.SI) != c.NumFFs() {
			t.Fatalf("test %d: SI width %d", ti, len(test.SI))
		}
		if len(test.T) == 0 {
			t.Fatalf("test %d: empty T", ti)
		}
		if !test.SI.Specified() {
			t.Fatalf("test %d: SI not fully specified", ti)
		}
		for _, v := range test.T {
			if !v.Specified() || len(v) != c.NumInputs() {
				t.Fatalf("test %d: bad functional vector", ti)
			}
		}
	}
}

// TestDetectedByConsistent re-simulates each test and confirms the
// claimed detections.
func TestDetectedByConsistent(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 2})
	for fi, ti := range res.DetectedBy {
		if ti < 0 {
			continue
		}
		if ti >= len(res.Tests) {
			t.Fatalf("fault %d detected by out-of-range test %d", fi, ti)
		}
		det := SimulateTest(c, res.Tests[ti], faults[fi:fi+1], nil)
		if len(det) != 1 || det[0] != 0 {
			t.Errorf("fault %s not actually detected by test %d", faults[fi].Name(c), ti)
		}
	}
}

func TestCompactionDropsRedundantTests(t *testing.T) {
	c, _ := circuits.Load("s298")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1})
	// Every kept test must be load-bearing: detect at least one fault
	// assigned to it.
	used := make(map[int]bool)
	for _, ti := range res.DetectedBy {
		if ti >= 0 {
			used[ti] = true
		}
	}
	for ti := range res.Tests {
		if !used[ti] {
			t.Errorf("test %d detects nothing after compaction", ti)
		}
	}
}

func TestSecondApproachUsesMultiVectorTests(t *testing.T) {
	c, _ := circuits.Load("s298")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1})
	multi := 0
	for _, test := range res.Tests {
		if len(test.T) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no test used more than one functional vector; extension is dead")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, true)
	a := Generate(c, faults, Options{Seed: 4})
	b := Generate(c, faults, Options{Seed: 4})
	if len(a.Tests) != len(b.Tests) || a.Cycles != b.Cycles {
		t.Error("same seed produced different test sets")
	}
}

func TestSimulateTestSkip(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1})
	skip := make([]int, len(faults))
	for i := range skip {
		skip[i] = 0 // skip everything
	}
	if det := SimulateTest(c, res.Tests[0], faults, skip); len(det) != 0 {
		t.Error("skip list ignored")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(2)
	if o.MaxExtension != 4 || o.PodemBacktracks != 100 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{}.withDefaults(30)
	if o.MaxExtension != 30 {
		t.Errorf("MaxExtension = %d", o.MaxExtension)
	}
}
