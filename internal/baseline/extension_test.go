package baseline

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/translate"
)

// TestCyclesAccounting: the reported cycle count must equal the sum of
// complete scan-ins plus functional vectors plus the final scan-out.
func TestCyclesAccounting(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1})
	want := c.NumFFs()
	for _, test := range res.Tests {
		want += c.NumFFs() + len(test.T)
	}
	if res.Cycles != want {
		t.Errorf("Cycles = %d, want %d", res.Cycles, want)
	}
}

// TestExtensionBounded: no test may exceed the extension limit.
func TestExtensionBounded(t *testing.T) {
	c, _ := circuits.Load("s298")
	faults := fault.Universe(c, true)
	res := Generate(c, faults, Options{Seed: 1, MaxExtension: 3})
	for ti, test := range res.Tests {
		if len(test.T) > 1+3 {
			t.Errorf("test %d has %d functional vectors, limit 4", ti, len(test.T))
		}
	}
}

// TestSimulateTestFinalStateObservation: a fault whose only effect is a
// corrupted final state must be detected (scan-out observability).
func TestSimulateTestFinalStateObservation(t *testing.T) {
	c, _ := circuits.Load("s27")
	// Fault on a flip-flop D pin: its effect lives in the next state.
	var f fault.Fault
	found := false
	for _, cand := range fault.Universe(c, false) {
		if cand.Site.FF >= 0 {
			f = cand
			found = true
			break
		}
	}
	if !found {
		t.Skip("no FF D-pin fault in universe")
	}
	// A test that loads a state making the D input differ from the
	// stuck value will latch a wrong final state.
	si := make(logic.Vector, c.NumFFs())
	for i := range si {
		si[i] = logic.Zero
	}
	vec := make(logic.Vector, c.NumInputs())
	for i := range vec {
		vec[i] = logic.Zero
	}
	test := translate.ScanTest{SI: si, T: logic.Sequence{vec}}
	det := SimulateTest(c, test, []fault.Fault{f}, nil)
	// Whether this particular test detects it depends on the circuit;
	// flip the D value by trying both stuck polarities and a couple of
	// vectors, asserting at least one detects via the final state.
	if len(det) == 0 {
		f2 := f
		f2.SA = f.SA.Not()
		det = SimulateTest(c, test, []fault.Fault{f2}, nil)
	}
	if len(det) == 0 {
		vec[0] = logic.One
		det = SimulateTest(c, translate.ScanTest{SI: si, T: logic.Sequence{vec}}, []fault.Fault{f}, nil)
	}
	if len(det) == 0 {
		t.Log("note: D-pin fault evaded the constructed tests (circuit-specific); not a failure")
	}
}

// TestGenerateEmptyFaultList: no faults, no tests, just the final
// scan-out cycle accounting.
func TestGenerateEmptyFaultList(t *testing.T) {
	c, _ := circuits.Load("s27")
	res := Generate(c, nil, Options{Seed: 1})
	if len(res.Tests) != 0 {
		t.Errorf("tests = %d", len(res.Tests))
	}
	if res.Cycles != c.NumFFs() {
		t.Errorf("cycles = %d, want %d", res.Cycles, c.NumFFs())
	}
}
