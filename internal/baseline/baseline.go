// Package baseline implements a conventional "second approach" scan
// test generator with static test-set compaction, standing in for the
// comparator of the paper's Tables 6 and 7 (reference [26], Pomeranz &
// Reddy, TCAD 2002 — see DESIGN.md, "Substitutions").
//
// Tests have the classic form (SI, T): the state SI is loaded with a
// complete scan operation, the primary input sequence T is applied, and
// the final state is scanned out (overlapped with the next test's
// scan-in). Faults are observed at primary outputs during T and through
// the final scan-out. Test application takes Σ(N_SV + |T_i|) + N_SV
// clock cycles — the "cyc" column the paper compares against.
package baseline

import (
	"sync"
	"sync/atomic"

	"repro/internal/combatpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Options tunes the baseline generator.
type Options struct {
	// Seed drives random fills and candidate vectors.
	Seed uint64
	// MaxExtension bounds how many functional vectors may follow the
	// first one in a test (default: number of flip-flops, at least 4).
	MaxExtension int
	// PodemBacktracks bounds each PODEM call (default 100).
	PodemBacktracks int
	// Workers is the fault-simulation worker count (0 = GOMAXPROCS).
	// The generated test set is identical for every value.
	Workers int
}

func (o Options) withDefaults(nsv int) Options {
	if o.MaxExtension <= 0 {
		o.MaxExtension = nsv
		if o.MaxExtension < 4 {
			o.MaxExtension = 4
		}
	}
	if o.PodemBacktracks <= 0 {
		o.PodemBacktracks = 100
	}
	return o
}

// Result reports baseline generation.
type Result struct {
	// Tests is the compacted conventional test set.
	Tests []translate.ScanTest
	// DetectedBy[i] is the index (into Tests) of the test detecting
	// fault i, or -1.
	DetectedBy []int
	// Cycles is the conventional test application time.
	Cycles int
}

// NumDetected counts detected faults.
func (r Result) NumDetected() int {
	n := 0
	for _, d := range r.DetectedBy {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Generate produces a compacted conventional scan test set for circuit
// c (the original, non-scan circuit) and fault list faults.
func Generate(c *netlist.Circuit, faults []fault.Fault, opts Options) Result {
	opts = opts.withDefaults(c.NumFFs())
	s := sim.NewSimulator(c, opts.Workers)
	rng := logic.NewRandFiller(opts.Seed ^ 0x5DEECE66D)
	full := combatpg.NewGenerator(c, combatpg.Options{
		AssignState:   true,
		ObservePPO:    true,
		MaxBacktracks: opts.PodemBacktracks,
	})

	detected := make([]int, len(faults))
	for i := range detected {
		detected[i] = -1
	}
	var tests []translate.ScanTest

	for fi := range faults {
		if detected[fi] >= 0 {
			continue
		}
		r := full.Generate(faults[fi])
		if r.Status != combatpg.Success {
			continue
		}
		fillX(r.State, rng)
		fillX(r.Vector, rng)
		test := translate.ScanTest{SI: r.State, T: logic.Sequence{r.Vector}}

		// Greedy extension: append functional vectors while they
		// increase the number of faults this test detects ("second
		// approach": several primary input vectors between scans).
		prev := simulateTest(s, test, faults, detected)
		frame := combatpg.NewGenerator(c, combatpg.Options{
			ObservePPO:    true,
			MaxBacktracks: opts.PodemBacktracks / 2,
		})
		for ext := 0; ext < opts.MaxExtension; ext++ {
			cand := nextVector(s, test, faults, detected, prev, frame, rng)
			trial := translate.ScanTest{SI: test.SI, T: append(test.T.Clone(), cand)}
			got := simulateTest(s, trial, faults, detected)
			if len(got) <= len(prev) {
				break
			}
			test = trial
			prev = got
		}

		ti := len(tests)
		tests = append(tests, test)
		for _, di := range prev {
			detected[di] = ti
		}
	}

	tests, detected = reverseOrderCompact(s, tests, faults, detected)
	return Result{
		Tests:      tests,
		DetectedBy: detected,
		Cycles:     translate.Cycles(tests, c.NumFFs()),
	}
}

// nextVector proposes the next functional vector for a test: a PODEM
// solution for some still-undetected fault from the state the test has
// reached, or a random vector when PODEM has nothing to offer.
func nextVector(s *sim.Simulator, test translate.ScanTest, faults []fault.Fault, detected []int, already []int, frame *combatpg.Generator, rng *logic.RandFiller) logic.Vector {
	c := s.Circuit()
	state := stateAfter(s, test)
	frame.SetStates(state, nil)
	seen := make(map[int]bool, len(already))
	for _, fi := range already {
		seen[fi] = true
	}
	tried := 0
	for fi := range faults {
		if detected[fi] >= 0 || seen[fi] {
			continue
		}
		if tried++; tried > 25 {
			break
		}
		if r := frame.Generate(faults[fi]); r.Status == combatpg.Success {
			fillX(r.Vector, rng)
			return r.Vector
		}
	}
	v := make(logic.Vector, c.NumInputs())
	for i := range v {
		v[i] = rng.Next()
	}
	return v
}

// stateAfter simulates the fault-free circuit through the test and
// returns the reached state.
func stateAfter(s *sim.Simulator, test translate.ScanTest) []logic.Value {
	m := s.Acquire()
	defer s.Release(m)
	m.SetStateBroadcast(test.SI)
	for _, v := range test.T {
		m.Step(v)
	}
	return m.StateSlot(0)
}

// SimulateTest fault-simulates one conventional test: both circuits
// start at SI (scan-in is assumed fault-free for the original circuit's
// faults, the standard model for the first and second approaches),
// outputs are observed during T, and the final state is observed via
// the scan-out. It returns the indices of newly detected faults;
// skip[i] >= 0 marks faults to ignore.
func SimulateTest(c *netlist.Circuit, test translate.ScanTest, faults []fault.Fault, skip []int) []int {
	return simulateTest(sim.NewSimulator(c, 1), test, faults, skip)
}

// simulateTest is SimulateTest drawing machines from a simulator pool
// and fanning the 64-fault batches out across its workers. Batch
// results are reassembled in fault order, so the returned indices are
// identical for every worker count.
func simulateTest(s *sim.Simulator, test translate.ScanTest, faults []fault.Fault, skip []int) []int {
	c := s.Circuit()
	good := s.Acquire()
	good.SetStateBroadcast(test.SI)
	nPO := c.NumOutputs()
	goodPO := make([][]logic.Value, len(test.T))
	for t, v := range test.T {
		good.Step(v)
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = good.OutputSlot(po, 0)
		}
		goodPO[t] = row
	}
	goodFinal := good.StateSlot(0)
	s.Release(good)

	var idx []int
	for fi := range faults {
		if skip != nil && skip[fi] >= 0 {
			continue
		}
		idx = append(idx, fi)
	}
	if len(idx) == 0 {
		return nil
	}
	nBatches := (len(idx) + sim.Slots - 1) / sim.Slots
	results := make([][]int, nBatches)
	runBatch := func(m *sim.Machine, bi int) {
		start := bi * sim.Slots
		end := start + sim.Slots
		if end > len(idx) {
			end = len(idx)
		}
		batch := idx[start:end]
		m.ClearFaults()
		m.Reset()
		m.SetStateBroadcast(test.SI)
		for k, fi := range batch {
			if err := m.InjectFault(faults[fi], uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		var det uint64
		for t, v := range test.T {
			m.Step(v)
			for po := 0; po < nPO; po++ {
				if !goodPO[t][po].IsBinary() {
					continue
				}
				gz, gd := valuePlanes(goodPO[t][po])
				fz, fd := m.OutputPlanes(po)
				det |= sim.DetectMask(gz, gd, fz, fd)
			}
		}
		// Scan-out: any definite final-state difference is observed.
		for fi := 0; fi < c.NumFFs(); fi++ {
			if !goodFinal[fi].IsBinary() {
				continue
			}
			gz, gd := valuePlanes(goodFinal[fi])
			fz, fd := m.FFPlanes(fi)
			// A fault on this flip-flop's D pin latches its stuck
			// value in the faulty circuit.
			for k, bi := range batch {
				if faults[bi].Site.FF == int32(fi) {
					sz, so := valuePlanes(faults[bi].SA)
					bit := uint64(1) << uint(k)
					fz = fz&^bit | sz&bit
					fd = fd&^bit | so&bit
				}
			}
			det |= sim.DetectMask(gz, gd, fz, fd)
		}
		var out []int
		for k, fi := range batch {
			if det&(uint64(1)<<uint(k)) != 0 {
				out = append(out, fi)
			}
		}
		results[bi] = out
	}
	nw := s.Workers()
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			runBatch(m, bi)
		}
		s.Release(m)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := s.Acquire()
				defer s.Release(m)
				for {
					bi := int(next.Add(1)) - 1
					if bi >= nBatches {
						return
					}
					runBatch(m, bi)
				}
			}()
		}
		wg.Wait()
	}
	var out []int
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// reverseOrderCompact drops tests that detect nothing the remaining
// tests do not, processing in reverse generation order (later tests
// were generated for harder faults and tend to cover earlier ones).
func reverseOrderCompact(s *sim.Simulator, tests []translate.ScanTest, faults []fault.Fault, detected []int) ([]translate.ScanTest, []int) {
	needed := make([]int, len(faults))
	for i := range needed {
		if detected[i] >= 0 {
			needed[i] = -1 // must be covered, not yet assigned
		} else {
			needed[i] = -2 // never covered; ignore
		}
	}
	keep := make([]bool, len(tests))
	for ti := len(tests) - 1; ti >= 0; ti-- {
		skip := make([]int, len(faults))
		for i := range skip {
			if needed[i] == -1 {
				skip[i] = -1 // simulate
			} else {
				skip[i] = 0 // skip
			}
		}
		det := simulateTest(s, tests[ti], faults, skip)
		if len(det) == 0 {
			continue
		}
		keep[ti] = true
		for _, fi := range det {
			needed[fi] = ti
		}
	}
	var outTests []translate.ScanTest
	remap := make(map[int]int, len(tests))
	for ti, k := range keep {
		if k {
			remap[ti] = len(outTests)
			outTests = append(outTests, tests[ti])
		}
	}
	outDet := make([]int, len(faults))
	for i := range outDet {
		outDet[i] = -1
		if needed[i] >= 0 {
			outDet[i] = remap[needed[i]]
		}
	}
	return outTests, outDet
}

func fillX(v logic.Vector, rng *logic.RandFiller) {
	for i, x := range v {
		if x == logic.X {
			v[i] = rng.Next()
		}
	}
}

func valuePlanes(v logic.Value) (z, o uint64) {
	switch v {
	case logic.Zero:
		return sim.AllSlots, 0
	case logic.One:
		return 0, sim.AllSlots
	default:
		return sim.AllSlots, sim.AllSlots
	}
}
