package fault

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUniverseUncollapsedCounts(t *testing.T) {
	// a feeds two gates (fanout 2 -> branch sites); n1 fanout-free.
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(n2)
n1 = NOT(a)
n2 = AND(a, n1, b)
`)
	faults := Universe(c, false)
	// Stems: a, b, n1, n2 -> 4 signals * 2 = 8.
	// Branches: only a has 2 readers -> 2 sites * 2 = 4.
	if len(faults) != 12 {
		for _, f := range faults {
			t.Log(f.Name(c))
		}
		t.Fatalf("uncollapsed count = %d, want 12", len(faults))
	}
}

func TestUniverseCollapsedDropsEquivalents(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(n2)
n1 = NOT(a)
n2 = AND(a, n1, b)
`)
	un := Universe(c, false)
	col := Universe(c, true)
	if len(col) >= len(un) {
		t.Fatalf("collapsing did not reduce: %d >= %d", len(col), len(un))
	}
	// b is the fanout-free sole... b feeds only AND pin: its stem SA0 is
	// equivalent to n2 SA0 and must be dropped; SA1 kept.
	for _, f := range col {
		if f.Site.IsStem() && c.SignalName(f.Site.Signal) == "b" && f.SA == logic.Zero {
			t.Error("b SA0 should have been collapsed into n2 SA0")
		}
	}
	// Branch sites on a feeding the NOT must be fully dropped.
	for _, f := range col {
		if !f.Site.IsStem() && f.Site.Gate >= 0 && c.Gates[f.Site.Gate].Type == netlist.NOT {
			t.Error("branch fault on NOT input survived collapsing")
		}
	}
}

func TestUniverseFFBranchSites(t *testing.T) {
	// Signal d feeds both a gate and a flip-flop: both pins get sites.
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = NOT(a)
y = AND(d, q)
`)
	faults := Universe(c, false)
	var ffBranch, gateBranch int
	for _, f := range faults {
		if f.Site.FF >= 0 {
			ffBranch++
		}
		if f.Site.Gate >= 0 {
			gateBranch++
		}
	}
	if ffBranch != 2 {
		t.Errorf("FF D-pin branch faults = %d, want 2", ffBranch)
	}
	if gateBranch != 2 {
		t.Errorf("gate-pin branch faults = %d, want 2 (AND pin on d)", gateBranch)
	}
}

func TestFaultNames(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = NOT(a)
y = AND(d, q)
`)
	for _, f := range Universe(c, false) {
		if f.Name(c) == "" {
			t.Error("empty fault name")
		}
	}
	d, _ := c.SignalByName("d")
	f := Fault{Site: Site{Signal: d, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}
	if got := f.Name(c); got != "d SA1" {
		t.Errorf("stem name = %q", got)
	}
}

func TestCoverage(t *testing.T) {
	if Coverage(0, 0) != 100 {
		t.Error("empty universe coverage should be 100")
	}
	if got := Coverage(50, 200); got != 25 {
		t.Errorf("Coverage(50,200) = %v", got)
	}
}

func TestUniverseDeterministic(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`)
	f1 := Universe(c, true)
	f2 := Universe(c, true)
	if len(f1) != len(f2) {
		t.Fatal("nondeterministic universe size")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("nondeterministic universe order")
		}
	}
}
