package fault

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// CollapseDominance filters a fault list by structural dominance: for a
// primitive gate, the output stuck at its non-controlled value is
// detected by every test for any input stuck at the non-controlling
// value (AND: out SA1 vs in SA1; NAND: out SA0; OR: out SA0; NOR: out
// SA1), so the dominating output fault need not be targeted.
//
// Dominance collapsing is sound for test generation (a test set
// covering the collapsed list covers the full list) but, unlike
// equivalence collapsing, the dropped faults' detection times are not
// those of their representatives — fault-coverage accounting should
// still simulate the uncollapsed or equivalence-collapsed list. The
// usual place for this list is as the target list of a generator.
func CollapseDominance(c *netlist.Circuit, faults []Fault) []Fault {
	// dropSA[s] marks a stuck-at value on stem s as dominance-dropped.
	type drop struct {
		sig netlist.SignalID
		sa  logic.Value
	}
	dropped := make(map[drop]bool)
	for _, g := range c.Gates {
		if len(g.In) < 2 {
			continue
		}
		var sa logic.Value
		switch g.Type {
		case netlist.AND:
			sa = logic.One
		case netlist.NAND:
			sa = logic.Zero
		case netlist.OR:
			sa = logic.Zero
		case netlist.NOR:
			sa = logic.One
		default:
			continue
		}
		// The dominated input faults must still be present for the
		// guarantee to hold; they are, because equivalence collapsing
		// only merges the controlling-value input faults.
		dropped[drop{sig: g.Out, sa: sa}] = true
	}
	out := make([]Fault, 0, len(faults))
	for _, f := range faults {
		if f.Site.IsStem() && dropped[drop{sig: f.Site.Signal, sa: f.SA}] {
			continue
		}
		out = append(out, f)
	}
	return out
}
