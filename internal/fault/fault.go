// Package fault defines the single stuck-at fault model used by the
// test generation and compaction procedures: fault sites on every signal
// stem and on every fanout branch (gate input pins and flip-flop data
// pins whose source signal has more than one reader), with optional
// structural equivalence collapsing.
package fault

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Site is a location a stuck-at fault can occupy.
//
// A stem site (Gate < 0 and FF < 0) sits on the output of the driver of
// Signal and affects every reader. A branch site sits on one reading
// pin: input pin Pin of gate Gate, or the D pin of flip-flop FF.
type Site struct {
	Signal netlist.SignalID
	Gate   int32 // reading gate for a branch site, else -1
	Pin    int32 // pin within the reading gate, else -1
	FF     int32 // reading flip-flop for a branch site on a D pin, else -1
}

// IsStem reports whether the site is a stem site.
func (s Site) IsStem() bool { return s.Gate < 0 && s.FF < 0 }

// Fault is a single stuck-at fault.
type Fault struct {
	Site Site
	SA   logic.Value // logic.Zero or logic.One
}

// Name renders the fault in a human-readable form, e.g. "G10 SA0" for a
// stem fault or "G8.in1<-G14 SA1" for a branch fault.
func (f Fault) Name(c *netlist.Circuit) string {
	src := c.SignalName(f.Site.Signal)
	switch {
	case f.Site.IsStem():
		return fmt.Sprintf("%s SA%d", src, int(f.SA))
	case f.Site.FF >= 0:
		return fmt.Sprintf("%s.D<-%s SA%d", c.SignalName(c.FFs[f.Site.FF].Q), src, int(f.SA))
	default:
		g := c.Gates[f.Site.Gate]
		return fmt.Sprintf("%s.in%d<-%s SA%d", c.SignalName(g.Out), f.Site.Pin, src, int(f.SA))
	}
}

// Universe returns the stuck-at fault list of the circuit: two faults
// per stem and two per fanout branch. If collapse is true, structurally
// equivalent faults are merged (the representative kept is the one
// closer to the primary outputs):
//
//   - for BUF/NOT, input faults are equivalent to output faults;
//   - for AND/NAND, an input stuck at the controlling value 0 is
//     equivalent to the output stuck at 0 (AND) or 1 (NAND);
//   - for OR/NOR, symmetrically with controlling value 1.
//
// Branch sites are only created where the source signal has fanout
// greater than one; a fanout-free pin is identical to its stem.
func Universe(c *netlist.Circuit, collapse bool) []Fault {
	var faults []Fault
	add := func(site Site, sa logic.Value) {
		faults = append(faults, Fault{Site: site, SA: sa})
	}
	// Stem sites on every signal.
	for s := range c.Signals {
		sig := netlist.SignalID(s)
		stem := Site{Signal: sig, Gate: -1, Pin: -1, FF: -1}
		sa0, sa1 := true, true
		if collapse {
			sa0, sa1 = stemKept(c, sig)
		}
		if sa0 {
			add(stem, logic.Zero)
		}
		if sa1 {
			add(stem, logic.One)
		}
	}
	// Branch sites where fanout > 1.
	for s := range c.Signals {
		sig := netlist.SignalID(s)
		readers := c.Fanout(sig)
		if countReaders(readers) <= 1 {
			continue
		}
		for _, r := range readers {
			switch {
			case r.Gate >= 0:
				site := Site{Signal: sig, Gate: r.Gate, Pin: r.Pin, FF: -1}
				sa0, sa1 := true, true
				if collapse {
					sa0, sa1 = pinKept(c.Gates[r.Gate].Type)
				}
				if sa0 {
					add(site, logic.Zero)
				}
				if sa1 {
					add(site, logic.One)
				}
			case r.FF >= 0:
				site := Site{Signal: sig, Gate: -1, Pin: -1, FF: r.FF}
				add(site, logic.Zero)
				add(site, logic.One)
			}
			// Primary-output readers observe the stem directly;
			// no extra site.
		}
	}
	return faults
}

// countReaders counts gate-pin and flip-flop readers (primary outputs
// excluded: observing a stem does not create a distinct fault site).
func countReaders(readers []netlist.PinRef) int {
	n := 0
	for _, r := range readers {
		if r.Gate >= 0 || r.FF >= 0 {
			n++
		}
	}
	return n
}

// pinKept reports which stuck-at faults survive collapsing on an input
// pin of a gate of type t. The dropped fault is equivalent to a fault on
// the gate output.
func pinKept(t netlist.GateType) (sa0, sa1 bool) {
	switch t {
	case netlist.BUF, netlist.NOT:
		return false, false // both equivalent to output faults
	case netlist.AND, netlist.NAND:
		return false, true // input SA0 == output SA(0 or 1)
	case netlist.OR, netlist.NOR:
		return true, false // input SA1 == output SA(1 or 0)
	default: // XOR/XNOR: no equivalences
		return true, true
	}
}

// stemKept reports which stuck-at faults survive collapsing on the stem
// of signal s. A stem is dropped when the signal is the fanout-free sole
// input of a gate that absorbs it (the equivalence partner closer to the
// outputs is kept instead).
func stemKept(c *netlist.Circuit, s netlist.SignalID) (sa0, sa1 bool) {
	readers := c.Fanout(s)
	if countReaders(readers) != 1 {
		return true, true
	}
	for _, r := range readers {
		if r.Gate < 0 {
			continue
		}
		k0, k1 := pinKept(c.Gates[r.Gate].Type)
		return k0, k1
	}
	return true, true
}

// Coverage computes the fault coverage: detected divided by total, as a
// percentage. Total of zero yields 100.
func Coverage(detected, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(detected) / float64(total)
}
