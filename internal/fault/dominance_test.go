package fault

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestCollapseDominanceDropsGateOutputs(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = NOR(a, b)
`)
	full := Universe(c, true)
	dom := CollapseDominance(c, full)
	if len(dom) >= len(full) {
		t.Fatalf("dominance removed nothing: %d >= %d", len(dom), len(full))
	}
	y, _ := c.SignalByName("y")
	z, _ := c.SignalByName("z")
	for _, f := range dom {
		if !f.Site.IsStem() {
			continue
		}
		if f.Site.Signal == y && f.SA == logic.One {
			t.Error("AND output SA1 survived dominance collapsing")
		}
		if f.Site.Signal == z && f.SA == logic.One {
			t.Error("NOR output SA1 survived dominance collapsing")
		}
	}
}

func TestCollapseDominanceKeepsInverters(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = NOT(a)
`)
	full := Universe(c, true)
	dom := CollapseDominance(c, full)
	if len(dom) != len(full) {
		t.Error("dominance collapsed a NOT gate")
	}
}

// TestDominanceCoverageProperty: any single-frame test detecting a
// dominated input fault must also detect the dropped output fault. We
// verify indirectly: a vector that detects in-SA1 on an AND detects
// out-SA1.
func TestDominanceCoverageProperty(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(y)
y = AND(a, b, cc)
`)
	a, _ := c.SignalByName("a")
	y, _ := c.SignalByName("y")
	inSA1 := Fault{Site: Site{Signal: a, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}
	outSA1 := Fault{Site: Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}
	// The unique test for a-SA1 is a=0, b=c=1.
	_ = inSA1
	// Evaluate both faults under that vector using truth: good y = 0;
	// under out SA1, y = 1 -> detected. The structural argument is the
	// point; assert the collapse is consistent with it.
	dom := CollapseDominance(c, Universe(c, true))
	for _, f := range dom {
		if f.Site.IsStem() && f.Site.Signal == y && f.SA == logic.One {
			t.Error("out SA1 kept despite dominated inputs present")
		}
	}
	keptInSA1 := false
	for _, f := range dom {
		if f.Site.Signal == a && f.SA == logic.One {
			keptInSA1 = true
		}
	}
	if !keptInSA1 {
		t.Error("dominated input fault was dropped too")
	}
	_ = outSA1
}

func TestCollapseDominanceIdempotent(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NAND(a, b)
`)
	once := CollapseDominance(c, Universe(c, true))
	twice := CollapseDominance(c, once)
	if len(once) != len(twice) {
		t.Error("dominance collapsing not idempotent")
	}
}

func TestCollapseDominanceXorUntouched(t *testing.T) {
	b := netlist.NewBuilder("x")
	b.AddInput("a")
	b.AddInput("bb")
	b.AddGate(netlist.XOR, "y", "a", "bb")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	full := Universe(c, true)
	if got := CollapseDominance(c, full); len(got) != len(full) {
		t.Error("XOR gate collapsed by dominance")
	}
}
