package diagnose

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

func fixture(t *testing.T) (*scan.Circuit, []fault.Fault, *Dictionary) {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
	return sc, faults, Build(sc.Scan, res.Sequence, faults)
}

func TestDictionaryConsistentWithRun(t *testing.T) {
	sc, faults, d := fixture(t)
	// Rebuild the sequence to cross-check first detections.
	res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
	check := sim.Run(sc.Scan, res.Sequence, faults, sim.Options{})
	for fi := range faults {
		sig := d.Signatures[fi]
		if check.Detected(fi) != (len(sig) > 0) {
			t.Fatalf("fault %d: dictionary and Run disagree on detection", fi)
		}
		if len(sig) > 0 && sig[0].Time != check.DetectedAt[fi] {
			t.Errorf("fault %d: first failure at %d, Run says %d", fi, sig[0].Time, check.DetectedAt[fi])
		}
	}
}

func TestDiagnoseExactSignature(t *testing.T) {
	sc, faults, d := fixture(t)
	// Pick a fault with a reasonably rich signature and diagnose its
	// own observations: it must rank first (possibly tied with
	// signature-equivalent faults).
	target := -1
	for fi, sig := range d.Signatures {
		if len(sig) >= 3 {
			target = fi
			break
		}
	}
	if target < 0 {
		t.Skip("no rich signature on this seed")
	}
	cands := d.Diagnose(d.Signatures[target])
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	top := cands[0]
	if top.Missed != 0 || top.Extra != 0 {
		t.Errorf("top candidate is not an exact match: %+v", top)
	}
	// The true fault must appear among the exact matches.
	found := false
	for _, c := range cands {
		if c.Extra != 0 || c.Missed != 0 {
			break
		}
		if c.Index == target {
			found = true
		}
	}
	if !found {
		t.Errorf("true fault %s not among exact matches", faults[target].Name(sc.Scan))
	}
}

func TestDiagnoseEmptyObservations(t *testing.T) {
	_, _, d := fixture(t)
	cands := d.Diagnose(nil)
	// With no observations, every candidate has Matched == 0 and is
	// dropped.
	if len(cands) != 0 {
		t.Errorf("expected no candidates, got %d", len(cands))
	}
}

func TestEquivalentGroupsShareSignatures(t *testing.T) {
	_, _, d := fixture(t)
	for _, g := range d.Equivalent() {
		if len(g) < 2 {
			t.Fatal("singleton group")
		}
		first := sigKey(d.Signatures[g[0]])
		for _, fi := range g[1:] {
			if sigKey(d.Signatures[fi]) != first {
				t.Error("group members differ")
			}
		}
	}
}

func TestResolutionBounds(t *testing.T) {
	_, _, d := fixture(t)
	r := d.Resolution()
	if r <= 0 || r > 1 {
		t.Errorf("resolution = %f", r)
	}
}

func TestBuildEmpty(t *testing.T) {
	sc, faults, _ := fixture(t)
	d := Build(sc.Scan, nil, faults)
	for _, sig := range d.Signatures {
		if len(sig) != 0 {
			t.Fatal("empty sequence produced failures")
		}
	}
}

func TestDetectionCountsAndMinDetect(t *testing.T) {
	_, _, d := fixture(t)
	counts := d.DetectionCounts()
	if len(counts) != len(d.Signatures) {
		t.Fatal("counts length mismatch")
	}
	total := 0
	for i, n := range counts {
		if n != len(d.Signatures[i]) {
			t.Fatal("count disagrees with signature length")
		}
		total += n
	}
	if total == 0 {
		t.Fatal("no observations at all")
	}
	min, atMin := d.MinDetect()
	if min <= 0 || atMin <= 0 {
		t.Fatalf("MinDetect = %d, %d", min, atMin)
	}
	for _, n := range counts {
		if n != 0 && n < min {
			t.Fatal("MinDetect not minimal")
		}
	}
}
