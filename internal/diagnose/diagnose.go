// Package diagnose implements fault-dictionary based diagnosis on top
// of the test sequences this library generates: a dictionary maps every
// modelled stuck-at fault to its failure signature under a sequence
// (which primary outputs mismatch at which cycles), and observed tester
// failures are matched against it to rank candidate faults.
//
// Diagnosis is the natural companion of compact test sequences: the
// aggressive compaction the paper achieves keeps full observability of
// failure cycles because scan operations are explicit vectors, so the
// dictionary loses nothing compared to conventional scan testing.
package diagnose

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Observation is one recorded mismatch: primary output Output showed
// the complement of the fault-free value at cycle Time.
type Observation struct {
	Time   int
	Output int
}

// Signature is the ordered list of observations a fault produces under
// a sequence.
type Signature []Observation

// Dictionary holds the signature of every fault under one sequence.
type Dictionary struct {
	Faults     []fault.Fault
	Signatures []Signature
}

// Build fault-simulates seq for every fault without fault dropping and
// records complete failure signatures. Cost is one full-length pass per
// 64 faults; build dictionaries once per released test set. Batches run
// on all available cores.
func Build(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault) *Dictionary {
	return BuildWith(sim.NewSimulator(c, 0), seq, faults)
}

// BuildWith is Build drawing machines from an existing simulator and
// fanning the fault batches out across its workers. Signature writes
// are disjoint per fault, so the dictionary is identical for every
// worker count.
func BuildWith(s *sim.Simulator, seq logic.Sequence, faults []fault.Fault) *Dictionary {
	d := &Dictionary{Faults: faults, Signatures: make([]Signature, len(faults))}
	if len(seq) == 0 || len(faults) == 0 {
		return d
	}
	c := s.Circuit()
	good := s.Acquire()
	nPO := c.NumOutputs()
	goodPO := make([][]logic.Value, len(seq))
	for t, v := range seq {
		good.Step(v)
		row := make([]logic.Value, nPO)
		for po := range row {
			row[po] = good.OutputSlot(po, 0)
		}
		goodPO[t] = row
	}
	s.Release(good)

	nBatches := (len(faults) + sim.Slots - 1) / sim.Slots
	runBatch := func(m *sim.Machine, bi int) {
		start := bi * sim.Slots
		end := start + sim.Slots
		if end > len(faults) {
			end = len(faults)
		}
		batch := faults[start:end]
		m.ClearFaults()
		m.Reset()
		for k, f := range batch {
			if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		for t, v := range seq {
			m.Step(v)
			for po := 0; po < nPO; po++ {
				gv := goodPO[t][po]
				if !gv.IsBinary() {
					continue
				}
				gz, gd := planes(gv)
				fz, fd := m.OutputPlanes(po)
				mask := sim.DetectMask(gz, gd, fz, fd)
				for k := range batch {
					if mask&(uint64(1)<<uint(k)) != 0 {
						d.Signatures[start+k] = append(d.Signatures[start+k],
							Observation{Time: t, Output: po})
					}
				}
			}
		}
	}
	nw := s.Workers()
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			runBatch(m, bi)
		}
		s.Release(m)
		return d
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := s.Acquire()
			defer s.Release(m)
			for {
				bi := int(next.Add(1)) - 1
				if bi >= nBatches {
					return
				}
				runBatch(m, bi)
			}
		}()
	}
	wg.Wait()
	return d
}

func planes(v logic.Value) (z, o uint64) {
	if v == logic.Zero {
		return ^uint64(0), 0
	}
	return 0, ^uint64(0)
}

// Candidate is one ranked diagnosis result.
type Candidate struct {
	Fault fault.Fault
	Index int
	// Matched counts observations explained by the fault; Missed
	// counts observed failures the fault does not produce; Extra
	// counts failures the fault predicts that were not observed.
	Matched, Missed, Extra int
	// Score is Matched - Missed - Extra, the classic match metric.
	Score int
}

// Diagnose ranks the dictionary's faults against the observed failures,
// best candidates first. Exact-match candidates (Missed == Extra == 0)
// always rank at the top.
func (d *Dictionary) Diagnose(observed []Observation) []Candidate {
	obs := make(map[Observation]bool, len(observed))
	for _, o := range observed {
		obs[o] = true
	}
	var out []Candidate
	for i, sig := range d.Signatures {
		if len(sig) == 0 {
			continue
		}
		c := Candidate{Fault: d.Faults[i], Index: i}
		seen := make(map[Observation]bool, len(sig))
		for _, o := range sig {
			seen[o] = true
			if obs[o] {
				c.Matched++
			} else {
				c.Extra++
			}
		}
		for o := range obs {
			if !seen[o] {
				c.Missed++
			}
		}
		if c.Matched == 0 {
			continue
		}
		c.Score = c.Matched - c.Missed - c.Extra
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool {
		ea := out[a].Missed == 0 && out[a].Extra == 0
		eb := out[b].Missed == 0 && out[b].Extra == 0
		if ea != eb {
			return ea
		}
		return out[a].Score > out[b].Score
	})
	return out
}

// Equivalent groups faults with identical signatures — they are
// indistinguishable by this sequence (the diagnostic resolution of the
// test set).
func (d *Dictionary) Equivalent() [][]int {
	byKey := make(map[string][]int)
	for i, sig := range d.Signatures {
		if len(sig) == 0 {
			continue
		}
		key := sigKey(sig)
		byKey[key] = append(byKey[key], i)
	}
	var groups [][]int
	for _, g := range byKey {
		if len(g) > 1 {
			groups = append(groups, g)
		}
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// Resolution returns the number of distinguishable detected-fault
// classes divided by the number of detected faults (1.0 = perfect
// diagnostic resolution).
func (d *Dictionary) Resolution() float64 {
	classes := make(map[string]bool)
	detected := 0
	for _, sig := range d.Signatures {
		if len(sig) == 0 {
			continue
		}
		detected++
		classes[sigKey(sig)] = true
	}
	if detected == 0 {
		return 1
	}
	return float64(len(classes)) / float64(detected)
}

// DetectionCounts returns, per fault, how many (cycle, output)
// observations the sequence produces — the n-detect profile. Faults
// observed many times are robustly covered; counts of 1 mark
// single-point detections that a marginal defect might escape.
func (d *Dictionary) DetectionCounts() []int {
	out := make([]int, len(d.Signatures))
	for i, sig := range d.Signatures {
		out[i] = len(sig)
	}
	return out
}

// MinDetect returns the smallest non-zero detection count and how many
// detected faults sit at that minimum.
func (d *Dictionary) MinDetect() (min, atMin int) {
	for _, sig := range d.Signatures {
		n := len(sig)
		if n == 0 {
			continue
		}
		switch {
		case min == 0 || n < min:
			min, atMin = n, 1
		case n == min:
			atMin++
		}
	}
	return min, atMin
}

func sigKey(sig Signature) string {
	// Observations arrive in simulation order, so the raw encoding is
	// canonical.
	b := make([]byte, 0, len(sig)*8)
	for _, o := range sig {
		b = append(b,
			byte(o.Time), byte(o.Time>>8), byte(o.Time>>16), byte(o.Time>>24),
			byte(o.Output), byte(o.Output>>8), byte(o.Output>>16), byte(o.Output>>24))
	}
	return string(b)
}
