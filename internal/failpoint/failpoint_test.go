package failpoint

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true with nothing armed")
	}
	if err := Inject("any.site"); err != nil {
		t.Fatalf("Inject while disabled: %v", err)
	}
	var buf bytes.Buffer
	n, err := InjectWrite("any.site", &buf, []byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("InjectWrite while disabled = (%d, %v), want (5, nil)", n, err)
	}
	if Hits("any.site") != 0 {
		t.Fatal("Hits while disabled != 0")
	}
}

func TestErrorEveryHit(t *testing.T) {
	defer Disable()
	if err := Enable("a.b=error", 1); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		err := Inject("a.b")
		var fe *Error
		if !errors.As(err, &fe) {
			t.Fatalf("hit %d: err = %v, want *Error", i, err)
		}
		if fe.Site != "a.b" || fe.Hit != uint64(i) {
			t.Fatalf("hit %d: got %+v", i, fe)
		}
		if !IsInjected(err) {
			t.Fatal("IsInjected = false for injected error")
		}
	}
	if err := Inject("other.site"); err != nil {
		t.Fatalf("unarmed site fired: %v", err)
	}
	if Hits("a.b") != 3 || Fired("a.b") != 3 {
		t.Fatalf("Hits/Fired = %d/%d, want 3/3", Hits("a.b"), Fired("a.b"))
	}
}

func TestAtHitFiresOnceAtExactHit(t *testing.T) {
	defer Disable()
	if err := Enable("s=error@3", 7); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 6; i++ {
		if Inject("s") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 3 {
		t.Fatalf("fired at hits %v, want [3]", fired)
	}
}

func TestLimitCapsFires(t *testing.T) {
	defer Disable()
	if err := Enable("s=error#2", 1); err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 10; i++ {
		if Inject("s") != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", n)
	}
}

func TestProbabilityIsDeterministicAndSeeded(t *testing.T) {
	defer Disable()
	run := func(seed uint64) []bool {
		if err := Enable("p.site=error%0.3", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = Inject("p.site") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i+1)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules (suspicious)")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires < 20 || fires > 100 {
		t.Fatalf("p=0.3 fired %d/200 times, far from expectation", fires)
	}
}

func TestPanicAction(t *testing.T) {
	defer Disable()
	if err := Enable("p=panic@1", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		fe, ok := v.(*Error)
		if !ok || fe.Site != "p" {
			t.Fatalf("recovered %v, want *Error at p", v)
		}
	}()
	Inject("p")
	t.Fatal("panic site did not panic")
}

func TestKillActionUsesExitFn(t *testing.T) {
	defer Disable()
	code := -1
	old := exitFn
	exitFn = func(c int) { code = c }
	defer func() { exitFn = old }()
	if err := Enable("k=kill@1", 1); err != nil {
		t.Fatal(err)
	}
	Inject("k")
	if code != KillExitCode {
		t.Fatalf("exit code = %d, want %d", code, KillExitCode)
	}
}

func TestDelayAction(t *testing.T) {
	defer Disable()
	if err := Enable("d=delay:20ms@1", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("d"); err != nil {
		t.Fatalf("delay returned error: %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delay slept %v, want ≥ 20ms-ish", el)
	}
}

func TestPartialWriteTearsAtFraction(t *testing.T) {
	defer Disable()
	if err := Enable("w=partial:0.5@2", 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	data := []byte("0123456789")
	if n, err := InjectWrite("w", &buf, data); n != 10 || err != nil {
		t.Fatalf("hit 1 = (%d, %v), want full write", n, err)
	}
	n, err := InjectWrite("w", &buf, data)
	if !IsInjected(err) {
		t.Fatalf("hit 2 err = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("hit 2 wrote %d bytes, want 5 (fraction 0.5)", n)
	}
	if got := buf.String(); got != "012345678901234" {
		t.Fatalf("buffer = %q", got)
	}
	if n, err := InjectWrite("w", &buf, data); n != 10 || err != nil {
		t.Fatalf("hit 3 = (%d, %v), want full write after limit", n, err)
	}
}

func TestSpecParsing(t *testing.T) {
	defer Disable()
	bad := []string{
		"",                 // arms nothing
		"noequals",         // not site=action
		"s=explode",        // unknown action
		"s=error@0",        // zero hit index
		"s=error%1.5",      // probability out of range
		"s=error#0",        // zero limit
		"s=delay:xyz",      // bad duration
		"s=partial:1.5",    // bad fraction
		"seed=abc;s=error", // bad seed
	}
	for _, spec := range bad {
		if err := Enable(spec, 1); err == nil {
			t.Errorf("Enable(%q) succeeded, want error", spec)
			Disable()
		}
	}
	// seed= term inside the spec takes effect.
	if err := Enable("seed=42;s=error%0.5", 1); err != nil {
		t.Fatal(err)
	}
	var viaTerm []bool
	for i := 0; i < 50; i++ {
		viaTerm = append(viaTerm, Inject("s") != nil)
	}
	if err := Enable("s=error%0.5", 42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if (Inject("s") != nil) != viaTerm[i] {
			t.Fatalf("seed=42 term and seed arg 42 diverged at hit %d", i+1)
		}
	}
	// Multiple terms arm independently.
	if err := Enable(" a = error@1 ; b = error@2 ", 1); err != nil {
		t.Fatal(err)
	}
	if Inject("a") == nil {
		t.Fatal("a did not fire on hit 1")
	}
	if Inject("b") != nil {
		t.Fatal("b fired on hit 1")
	}
	if Inject("b") == nil {
		t.Fatal("b did not fire on hit 2")
	}
}

func TestConcurrentHitsRaceFree(t *testing.T) {
	defer Disable()
	if err := Enable("c=error%0.5#100", 9); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				Inject("c")
			}
		}()
	}
	wg.Wait()
	if h := Hits("c"); h != 8000 {
		t.Fatalf("Hits = %d, want 8000", h)
	}
	if f := Fired("c"); f > 100 {
		t.Fatalf("Fired = %d, want ≤ 100 (limit)", f)
	}
}

func TestErrorStringMentionsSiteAndHit(t *testing.T) {
	e := &Error{Site: "runctl.store.rename", Hit: 7}
	s := e.Error()
	if !strings.Contains(s, "runctl.store.rename") || !strings.Contains(s, "7") {
		t.Fatalf("error string %q missing site or hit", s)
	}
	if !strings.Contains(s, "injected") {
		t.Fatalf("error string %q should say injected", s)
	}
	_ = fmt.Sprintf("%v", e)
}
