// Package failpoint is a deterministic fault-injection registry for
// crash and error-path testing. Code under test declares named sites
// (`failpoint.Inject("runctl.store.rename")`); a test or operator arms
// a subset of them with a spec string, choosing an action (return an
// error, panic, kill the process, delay, or tear a write) and a
// trigger (every hit, the N-th hit, or a seeded probability per hit).
//
// The registry is built for two properties:
//
//   - Zero overhead when disabled. The armed registry lives behind one
//     atomic pointer; with nothing armed every site costs a single nil
//     load, so production binaries pay nothing for carrying the sites.
//
//   - Determinism. Probability triggers are a pure function of
//     (seed, site name, hit index), so a failing schedule replays
//     exactly from the same spec and seed — no global RNG, no races
//     between sites.
//
// Spec grammar (terms joined by ';'):
//
//	site=action[:arg][@hit][%prob][#limit]
//	seed=N
//
// Actions: error | panic | kill | delay:DURATION | partial[:FRACTION].
// `@hit` fires on exactly the N-th hit (1-based) and implies a limit of
// one unless `#limit` says otherwise; `%prob` fires each hit with the
// given probability; with neither, every hit fires. `#limit` caps the
// total number of fires. Example:
//
//	runctl.store.rename=kill@3;obs.recorder.append=partial:0.5%0.01#2
//
// Arming happens through Enable (tests, flags) or the
// SCANATPG_FAILPOINTS environment variable (child processes of the
// crash-soak harness), with SCANATPG_FAILPOINT_SEED overriding the
// seed.
package failpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// EnvSpec and EnvSeed are the environment variables read at process
// start; a non-empty EnvSpec arms the registry before main runs.
const (
	EnvSpec = "SCANATPG_FAILPOINTS"
	EnvSeed = "SCANATPG_FAILPOINT_SEED"
)

// KillExitCode is the exit status of the kill action. It mirrors the
// shell convention for SIGKILL (128+9) so harnesses can tell an
// injected crash from an ordinary failure.
const KillExitCode = 137

// Error is the error returned (or panicked) by a fired site.
type Error struct {
	Site string
	Hit  uint64 // 1-based hit index at which the site fired
}

func (e *Error) Error() string {
	return fmt.Sprintf("failpoint: injected failure at %s (hit %d)", e.Site, e.Hit)
}

// IsInjected reports whether err wraps an injected failpoint Error.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

type action uint8

const (
	actError action = iota
	actPanic
	actKill
	actDelay
	actPartial
)

func (a action) String() string {
	switch a {
	case actError:
		return "error"
	case actPanic:
		return "panic"
	case actKill:
		return "kill"
	case actDelay:
		return "delay"
	case actPartial:
		return "partial"
	}
	return "?"
}

type site struct {
	name  string
	act   action
	prob  float64       // probability per hit; <0 = not probability-triggered
	at    uint64        // fire on exactly this hit (1-based); 0 = any hit
	limit int64         // max fires; <0 = unlimited
	delay time.Duration // delay action
	frac  float64       // partial action: fraction of the write to let through

	hits  atomic.Uint64
	fires atomic.Int64
}

type registry struct {
	seed  uint64
	sites map[string]*site
}

// active is the armed registry; nil means disabled. Sites load it once
// per hit, so disabling is safe at any time (in-flight hits finish
// against the old registry).
var active atomic.Pointer[registry]

// exitFn is swapped out by tests of the kill action.
var exitFn = os.Exit

func init() {
	spec := os.Getenv(EnvSpec)
	if spec == "" {
		return
	}
	seed := uint64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: bad %s=%q: %v\n", EnvSeed, s, err)
			exitFn(2)
		}
		seed = n
	}
	if err := Enable(spec, seed); err != nil {
		fmt.Fprintf(os.Stderr, "failpoint: bad %s: %v\n", EnvSpec, err)
		exitFn(2)
	}
}

// Enabled reports whether any sites are armed.
func Enabled() bool { return active.Load() != nil }

// Enable parses spec and arms the registry, replacing any previous
// arming. Hit and fire counters start from zero.
func Enable(spec string, seed uint64) error {
	r := &registry{seed: seed, sites: make(map[string]*site)}
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		name, value, ok := strings.Cut(term, "=")
		if !ok {
			return fmt.Errorf("failpoint: term %q is not site=action", term)
		}
		name = strings.TrimSpace(name)
		if name == "seed" {
			n, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
			if err != nil {
				return fmt.Errorf("failpoint: bad seed %q: %v", value, err)
			}
			r.seed = n
			continue
		}
		s, err := parseSite(name, strings.TrimSpace(value))
		if err != nil {
			return err
		}
		r.sites[name] = s
	}
	if len(r.sites) == 0 {
		return fmt.Errorf("failpoint: spec %q arms no sites", spec)
	}
	active.Store(r)
	return nil
}

// Disable disarms all sites.
func Disable() { active.Store(nil) }

// parseSite parses "action[:arg][@hit][%prob][#limit]".
func parseSite(name, value string) (*site, error) {
	s := &site{name: name, prob: -1, limit: -1, frac: 0.5}
	// Strip trailing modifiers; they may appear in any order.
	for {
		i := strings.LastIndexAny(value, "@%#")
		if i < 0 {
			break
		}
		mod, arg := value[i], value[i+1:]
		value = value[:i]
		switch mod {
		case '@':
			n, err := strconv.ParseUint(arg, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("failpoint: %s: bad @hit %q", name, arg)
			}
			s.at = n
		case '%':
			p, err := strconv.ParseFloat(arg, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("failpoint: %s: bad %%prob %q", name, arg)
			}
			s.prob = p
		case '#':
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("failpoint: %s: bad #limit %q", name, arg)
			}
			s.limit = n
		}
	}
	if s.at != 0 && s.limit < 0 {
		s.limit = 1 // @hit means "that one hit" unless a limit widens it
	}
	act, arg, _ := strings.Cut(value, ":")
	switch act {
	case "error":
		s.act = actError
	case "panic":
		s.act = actPanic
	case "kill":
		s.act = actKill
	case "delay":
		s.act = actDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("failpoint: %s: bad delay %q", name, arg)
		}
		s.delay = d
	case "partial":
		s.act = actPartial
		if arg != "" {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil || f < 0 || f >= 1 {
				return nil, fmt.Errorf("failpoint: %s: bad partial fraction %q", name, arg)
			}
			s.frac = f
		}
	default:
		return nil, fmt.Errorf("failpoint: %s: unknown action %q", name, act)
	}
	return s, nil
}

// Hits returns how many times the named site has been evaluated since
// Enable (0 when disabled or unknown). For tests and harness reporting.
func Hits(name string) uint64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	if s, ok := r.sites[name]; ok {
		return s.hits.Load()
	}
	return 0
}

// Fired returns how many times the named site has fired since Enable.
func Fired(name string) int64 {
	r := active.Load()
	if r == nil {
		return 0
	}
	if s, ok := r.sites[name]; ok {
		return s.fires.Load()
	}
	return 0
}

// trigger decides whether hit n (1-based) fires, and performs the
// non-returning actions. It returns the injected error for the error
// and partial actions (the caller of a partial site tears the write).
func (s *site) trigger(seed uint64, n uint64) error {
	if s.at != 0 && n != s.at {
		return nil
	}
	if s.prob >= 0 && !decide(seed, s.name, n, s.prob) {
		return nil
	}
	if s.limit >= 0 {
		// Reserve a fire slot; back out when over the cap.
		if s.fires.Add(1) > s.limit {
			s.fires.Add(-1)
			return nil
		}
	} else {
		s.fires.Add(1)
	}
	switch s.act {
	case actDelay:
		time.Sleep(s.delay)
		return nil
	case actPanic:
		panic(&Error{Site: s.name, Hit: n})
	case actKill:
		exitFn(KillExitCode)
		return nil // unreachable with the real exitFn
	default: // actError, actPartial
		return &Error{Site: s.name, Hit: n}
	}
}

// decide is the pure probability trigger: splitmix64 over
// seed ⊕ hash(site) ⊕ hit compared against p.
func decide(seed uint64, name string, n uint64, p float64) bool {
	h := fnv.New64a()
	io.WriteString(h, name)
	x := seed ^ h.Sum64() ^ (n * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/(1<<53) < p
}

// Inject evaluates the named site. With the registry disabled or the
// site not armed it returns nil after a single atomic load. A fired
// error or partial site returns *Error; a fired panic site panics with
// *Error; a fired kill site exits the process with KillExitCode; a
// fired delay site sleeps and returns nil.
func Inject(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	s, ok := r.sites[name]
	if !ok {
		return nil
	}
	return s.trigger(r.seed, s.hits.Add(1))
}

// InjectWrite performs w.Write(p) with the named site interposed. A
// fired partial site writes only a prefix of p (the site's fraction,
// rounded down) and returns the injected error — a torn write. Other
// fired actions behave as in Inject, before any bytes are written.
// When disabled this is a single atomic load plus the write.
func InjectWrite(name string, w io.Writer, p []byte) (int, error) {
	r := active.Load()
	if r == nil {
		return w.Write(p)
	}
	s, ok := r.sites[name]
	if !ok {
		return w.Write(p)
	}
	err := s.trigger(r.seed, s.hits.Add(1))
	if err == nil {
		return w.Write(p)
	}
	if s.act == actPartial {
		n, werr := w.Write(p[:int(float64(len(p))*s.frac)])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}
