package testprog

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/scan"
)

// TestSplitFlattenIdentityProperty: Split followed by Flatten is the
// identity on arbitrary mixed sequences, and the segment boundaries
// partition the sequence.
func TestSplitFlattenIdentityProperty(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(pattern uint32, fill uint64) bool {
		rng := logic.NewRandFiller(fill | 1)
		var seq logic.Sequence
		for i := 0; i < 20; i++ {
			var v logic.Vector
			if pattern&(1<<uint(i%32)) != 0 {
				v = sc.ShiftVector(rng.Next())
			} else {
				v = sc.FunctionalVector(logic.NewVector(4))
			}
			for j := range v {
				if v[j] == logic.X {
					v[j] = rng.Next()
				}
			}
			seq = append(seq, v)
		}
		p := Split(sc, seq)
		flat := p.Flatten()
		if len(flat) != len(seq) {
			return false
		}
		for i := range seq {
			if flat[i].String() != seq[i].String() {
				return false
			}
		}
		// Segments alternate in kind and partition [0, len).
		pos := 0
		for i, seg := range p.Segments {
			if seg.Start != pos || seg.Len() == 0 {
				return false
			}
			if i > 0 && seg.Kind == p.Segments[i-1].Kind {
				return false
			}
			pos += seg.Len()
		}
		return pos == len(seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestFormatParseIdentityProperty: the textual form round-trips for
// random programs.
func TestFormatParseIdentityProperty(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, _ := scan.Insert(c)
	f := func(pattern uint16, fill uint64) bool {
		rng := logic.NewRandFiller(fill ^ 0xBEEF)
		var seq logic.Sequence
		for i := 0; i < 12; i++ {
			var v logic.Vector
			if pattern&(1<<uint(i)) != 0 {
				v = sc.ShiftVector(rng.Next())
			} else {
				v = sc.FunctionalVector(logic.NewVector(4))
			}
			for j := range v {
				if v[j] == logic.X {
					v[j] = rng.Next()
				}
			}
			seq = append(seq, v)
		}
		p := Split(sc, seq)
		q, err := Parse(strings.NewReader(p.Format()))
		if err != nil {
			return false
		}
		a, b := p.Flatten(), q.Flatten()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
