package testprog

import (
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/seqatpg"
)

func s27Scan(t *testing.T) *scan.Circuit {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mixedSeq(sc *scan.Circuit) logic.Sequence {
	f := sc.FunctionalVector(logic.NewVector(4))
	s := sc.ShiftVector(logic.One)
	seq := logic.Sequence{f, s, s, f, f, s, s, s, f}
	seq.FillX(logic.NewRandFiller(1))
	return seq
}

func TestSplitSegments(t *testing.T) {
	sc := s27Scan(t)
	p := Split(sc, mixedSeq(sc))
	kinds := []SegmentKind{Functional, ScanOp, Functional, ScanOp, Functional}
	lens := []int{1, 2, 2, 3, 1}
	if len(p.Segments) != len(kinds) {
		t.Fatalf("segments = %d, want %d", len(p.Segments), len(kinds))
	}
	pos := 0
	for i, seg := range p.Segments {
		if seg.Kind != kinds[i] || seg.Len() != lens[i] {
			t.Errorf("segment %d: %v/%d, want %v/%d", i, seg.Kind, seg.Len(), kinds[i], lens[i])
		}
		if seg.Start != pos {
			t.Errorf("segment %d: start %d, want %d", i, seg.Start, pos)
		}
		pos += seg.Len()
	}
	// Run of 2 is limited (NSV=3); run of 3 is complete.
	if !p.Segments[1].Limited {
		t.Error("2-shift scan op not marked limited")
	}
	if p.Segments[3].Limited {
		t.Error("3-shift scan op marked limited")
	}
}

func TestStats(t *testing.T) {
	sc := s27Scan(t)
	st := Split(sc, mixedSeq(sc)).Stats()
	if st.Cycles != 9 || st.ScanOps != 2 || st.LimitedScanOps != 1 ||
		st.CompleteScanOps != 1 || st.ScanCycles != 5 || st.FuncCycles != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	sc := s27Scan(t)
	seq := mixedSeq(sc)
	flat := Split(sc, seq).Flatten()
	if len(flat) != len(seq) {
		t.Fatal("length changed")
	}
	for i := range seq {
		if flat[i].String() != seq[i].String() {
			t.Fatalf("vector %d changed", i)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	sc := s27Scan(t)
	p := Split(sc, mixedSeq(sc))
	text := p.Format()
	q, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if q.NSV != p.NSV || len(q.Segments) != len(p.Segments) {
		t.Fatalf("round trip changed structure")
	}
	for i := range p.Segments {
		if q.Segments[i].Kind != p.Segments[i].Kind ||
			q.Segments[i].Limited != p.Segments[i].Limited ||
			q.Segments[i].Len() != p.Segments[i].Len() {
			t.Errorf("segment %d changed", i)
		}
	}
	a, b := p.Flatten(), q.Flatten()
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("vector %d changed", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"scan x\n",
		"01x\n",              // vector outside a segment
		"func 2\n0101x0\n",   // short segment
		"scan 1\nnotavec!\n", // bad vector
	}
	for _, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestEmptySequence(t *testing.T) {
	sc := s27Scan(t)
	p := Split(sc, nil)
	if len(p.Segments) != 0 || p.Stats().Cycles != 0 {
		t.Error("empty sequence produced segments")
	}
}

// TestCompactedSequenceHasLimitedOps ties the package to the paper's
// headline observation: compacted generated sequences contain limited
// scan operations.
func TestCompactedSequenceHasLimitedOps(t *testing.T) {
	sc := s27Scan(t)
	faults := fault.Universe(sc.Scan, true)
	res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 1})
	st := Split(sc, res.Sequence).Stats()
	if st.LimitedScanOps == 0 {
		t.Error("no limited scan operations in generated sequence")
	}
	if st.Cycles != len(res.Sequence) {
		t.Error("cycle count mismatch")
	}
}

// TestSplitOnMultiChain: segmentation is design-agnostic through the
// Design interface.
func TestSplitOnMultiChain(t *testing.T) {
	c, _ := circuits.Load("s298")
	ch, err := scan.InsertChains(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	seq := logic.Sequence{
		ch.ShiftVector(nil),
		ch.ShiftVector(nil),
		logic.NewVector(ch.Scan.NumInputs()),
	}
	seq.FillX(logic.NewRandFiller(2))
	// FillX may have made the functional vector's scan_sel 1; force 0.
	seq[2][ch.SelPI] = logic.Zero
	p := Split(ch, seq)
	if len(p.Segments) != 2 || p.Segments[0].Kind != ScanOp || p.Segments[0].Len() != 2 {
		t.Fatalf("segments = %+v", p.Segments)
	}
	if p.NSV != ch.NumStateVars() {
		t.Errorf("NSV = %d", p.NSV)
	}
}
