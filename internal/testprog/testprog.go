// Package testprog converts between the flat test sequences of this
// library and a segmented "tester program" view: maximal runs of
// scan_sel = 1 become scan operations (complete when the run reaches
// the chain length, limited otherwise) and everything else becomes
// functional vectors. This is the inverse direction of the paper's
// Section 3 translation, useful for inspecting how compaction reshaped
// the scan operations and for exporting sequences to simple test
// equipment.
package testprog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/scan"
)

// SegmentKind distinguishes scan and functional segments.
type SegmentKind uint8

// Segment kinds.
const (
	// Functional: scan_sel = 0 vectors.
	Functional SegmentKind = iota
	// ScanOp: a maximal run of scan_sel = 1 vectors.
	ScanOp
)

func (k SegmentKind) String() string {
	if k == ScanOp {
		return "scan"
	}
	return "func"
}

// Segment is one maximal run of same-kind vectors.
type Segment struct {
	Kind    SegmentKind
	Start   int // position of the first vector in the flat sequence
	Vectors logic.Sequence
	// Limited marks scan operations shorter than the chain length.
	Limited bool
}

// Len returns the segment's length in clock cycles.
func (s Segment) Len() int { return len(s.Vectors) }

// Program is a segmented test sequence.
type Program struct {
	Segments []Segment
	NSV      int
}

// Split segments seq for the given scan design.
func Split(sc scan.Design, seq logic.Sequence) *Program {
	p := &Program{NSV: sc.NumStateVars()}
	start := 0
	flush := func(end int, kind SegmentKind) {
		if end == start {
			return
		}
		seg := Segment{Kind: kind, Start: start, Vectors: seq[start:end]}
		if kind == ScanOp {
			seg.Limited = seg.Len() < p.NSV
		}
		p.Segments = append(p.Segments, seg)
		start = end
	}
	for t, v := range seq {
		kind := Functional
		if sc.IsScanSel(v) {
			kind = ScanOp
		}
		if t == 0 {
			continue
		}
		prev := Functional
		if sc.IsScanSel(seq[t-1]) {
			prev = ScanOp
		}
		if kind != prev {
			flush(t, prev)
		}
	}
	if len(seq) > 0 {
		kind := Functional
		if sc.IsScanSel(seq[len(seq)-1]) {
			kind = ScanOp
		}
		flush(len(seq), kind)
	}
	return p
}

// Stats summarizes a program.
type Stats struct {
	Cycles          int
	ScanOps         int
	LimitedScanOps  int
	CompleteScanOps int
	ScanCycles      int
	FuncCycles      int
}

// Stats computes the program's summary.
func (p *Program) Stats() Stats {
	var st Stats
	for _, s := range p.Segments {
		st.Cycles += s.Len()
		if s.Kind == ScanOp {
			st.ScanOps++
			st.ScanCycles += s.Len()
			if s.Limited {
				st.LimitedScanOps++
			} else {
				st.CompleteScanOps++
			}
		} else {
			st.FuncCycles += s.Len()
		}
	}
	return st
}

// Flatten re-concatenates the segments into the original flat sequence.
func (p *Program) Flatten() logic.Sequence {
	var seq logic.Sequence
	for _, s := range p.Segments {
		seq = append(seq, s.Vectors...)
	}
	return seq
}

// Write emits the program in a line-oriented text form:
//
//	# tester program, chain length 3
//	scan 2 limited
//	01x101
//	011100
//	func 1
//	010100
func (p *Program) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# tester program, chain length %d\n", p.NSV)
	for _, s := range p.Segments {
		note := ""
		if s.Kind == ScanOp {
			if s.Limited {
				note = " limited"
			} else {
				note = " complete"
			}
		}
		fmt.Fprintf(bw, "%s %d%s\n", s.Kind, s.Len(), note)
		for _, v := range s.Vectors {
			fmt.Fprintln(bw, v.String())
		}
	}
	return bw.Flush()
}

// Format returns the program text.
func (p *Program) Format() string {
	var sb strings.Builder
	if err := p.Write(&sb); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// Parse reads the textual program form back. The scan design is needed
// only for the chain length check; vector widths are validated against
// each other.
func Parse(r io.Reader) (*Program, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	p := &Program{}
	var cur *Segment
	want := 0
	lineNo := 0
	pos := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			var nsv int
			if _, err := fmt.Sscanf(line, "# tester program, chain length %d", &nsv); err == nil {
				p.NSV = nsv
			}
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "scan", "func":
			if cur != nil && want != 0 {
				return nil, fmt.Errorf("testprog: line %d: previous segment short by %d vectors", lineNo, want)
			}
			var n int
			if len(fields) < 2 {
				return nil, fmt.Errorf("testprog: line %d: missing segment length", lineNo)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &n); err != nil || n <= 0 {
				return nil, fmt.Errorf("testprog: line %d: bad segment length %q", lineNo, fields[1])
			}
			seg := Segment{Start: pos}
			if fields[0] == "scan" {
				seg.Kind = ScanOp
				seg.Limited = len(fields) > 2 && fields[2] == "limited"
			}
			p.Segments = append(p.Segments, seg)
			cur = &p.Segments[len(p.Segments)-1]
			want = n
		default:
			if cur == nil {
				return nil, fmt.Errorf("testprog: line %d: vector outside a segment", lineNo)
			}
			v, err := logic.ParseVector(line)
			if err != nil {
				return nil, fmt.Errorf("testprog: line %d: %v", lineNo, err)
			}
			cur.Vectors = append(cur.Vectors, v)
			want--
			pos++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil && want != 0 {
		return nil, fmt.Errorf("testprog: last segment short by %d vectors", want)
	}
	return p, nil
}
