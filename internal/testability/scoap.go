// Package testability computes SCOAP-style testability measures:
// 0-controllability (CC0), 1-controllability (CC1) and observability
// (CO) for every signal of a circuit's combinational view. The measures
// guide the PODEM backtrace (easiest input for a controlling value,
// hardest-first for non-controlling values) and give quick structural
// insight into why a fault is hard to test.
//
// Flip-flop outputs are costed like primary inputs (cost 1): in the
// scan-based flows of this library the state is controllable through
// the chain, which is exactly SCOAP's full-scan convention. Flip-flop
// data inputs count as observation points for the same reason.
package testability

import (
	"repro/internal/netlist"
)

// Inf is the cost assigned to unachievable values (no path).
const Inf = int32(1 << 28)

// Measures holds per-signal SCOAP values.
type Measures struct {
	// CC0[s] and CC1[s] estimate the effort to set signal s to 0 / 1.
	CC0, CC1 []int32
	// CO[s] estimates the effort to observe signal s.
	CO []int32
}

// Compute calculates controllability (one forward pass in evaluation
// order) and observability (one backward pass) for circuit c.
func Compute(c *netlist.Circuit) *Measures {
	n := len(c.Signals)
	m := &Measures{
		CC0: make([]int32, n),
		CC1: make([]int32, n),
		CO:  make([]int32, n),
	}
	for s := range c.Signals {
		switch c.Signals[s].Kind {
		case netlist.KindInput, netlist.KindFF:
			m.CC0[s], m.CC1[s] = 1, 1
		default:
			m.CC0[s], m.CC1[s] = Inf, Inf
		}
	}
	for _, gi := range c.Order {
		g := &c.Gates[gi]
		cc0, cc1 := m.gateControllability(g)
		m.CC0[g.Out], m.CC1[g.Out] = cc0, cc1
	}

	for s := range m.CO {
		m.CO[s] = Inf
	}
	for _, o := range c.Outputs {
		m.CO[o] = 0
	}
	for _, ff := range c.FFs {
		if m.CO[ff.D] > 0 {
			m.CO[ff.D] = 0
		}
	}
	// Backward over the evaluation order; the DAG needs one pass.
	for i := len(c.Order) - 1; i >= 0; i-- {
		g := &c.Gates[c.Order[i]]
		if m.CO[g.Out] >= Inf {
			continue
		}
		for pin, in := range g.In {
			co := m.pinObservability(g, pin)
			if co < m.CO[in] {
				m.CO[in] = co
			}
		}
	}
	return m
}

func satAdd(a, b int32) int32 {
	s := a + b
	if s >= Inf {
		return Inf
	}
	return s
}

// gateControllability folds the SCOAP rules over a gate's inputs.
func (m *Measures) gateControllability(g *netlist.Gate) (cc0, cc1 int32) {
	switch g.Type {
	case netlist.BUF:
		return satAdd(m.CC0[g.In[0]], 1), satAdd(m.CC1[g.In[0]], 1)
	case netlist.NOT:
		return satAdd(m.CC1[g.In[0]], 1), satAdd(m.CC0[g.In[0]], 1)
	case netlist.AND, netlist.NAND:
		all1 := int32(0)
		min0 := Inf
		for _, in := range g.In {
			all1 = satAdd(all1, m.CC1[in])
			if m.CC0[in] < min0 {
				min0 = m.CC0[in]
			}
		}
		c0 := satAdd(min0, 1) // one controlling 0
		c1 := satAdd(all1, 1) // all non-controlling 1s
		if g.Type == netlist.NAND {
			return c1, c0
		}
		return c0, c1
	case netlist.OR, netlist.NOR:
		all0 := int32(0)
		min1 := Inf
		for _, in := range g.In {
			all0 = satAdd(all0, m.CC0[in])
			if m.CC1[in] < min1 {
				min1 = m.CC1[in]
			}
		}
		c1 := satAdd(min1, 1)
		c0 := satAdd(all0, 1)
		if g.Type == netlist.NOR {
			return c1, c0
		}
		return c0, c1
	case netlist.XOR, netlist.XNOR:
		// Fold pairwise: cost of even/odd parity.
		even, odd := m.CC0[g.In[0]], m.CC1[g.In[0]]
		for _, in := range g.In[1:] {
			e2 := min32(satAdd(even, m.CC0[in]), satAdd(odd, m.CC1[in]))
			o2 := min32(satAdd(even, m.CC1[in]), satAdd(odd, m.CC0[in]))
			even, odd = e2, o2
		}
		c0, c1 := satAdd(even, 1), satAdd(odd, 1)
		if g.Type == netlist.XNOR {
			return c1, c0
		}
		return c0, c1
	}
	return Inf, Inf
}

// pinObservability is the effort to observe input pin `pin` of gate g:
// the gate output's observability plus the cost of holding every other
// input at its non-controlling value.
func (m *Measures) pinObservability(g *netlist.Gate, pin int) int32 {
	co := m.CO[g.Out]
	switch g.Type {
	case netlist.BUF, netlist.NOT:
		return satAdd(co, 1)
	case netlist.AND, netlist.NAND:
		for p, in := range g.In {
			if p != pin {
				co = satAdd(co, m.CC1[in])
			}
		}
		return satAdd(co, 1)
	case netlist.OR, netlist.NOR:
		for p, in := range g.In {
			if p != pin {
				co = satAdd(co, m.CC0[in])
			}
		}
		return satAdd(co, 1)
	case netlist.XOR, netlist.XNOR:
		// Other inputs need any binary value; use the cheaper.
		for p, in := range g.In {
			if p != pin {
				co = satAdd(co, min32(m.CC0[in], m.CC1[in]))
			}
		}
		return satAdd(co, 1)
	}
	return Inf
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Hardest returns the signals with the largest detection-cost estimate
// CC(sa) + CO, for stuck-at-0 faults if sa0, else stuck-at-1; up to n
// entries, hardest first. Useful for prioritizing target faults.
func (m *Measures) Hardest(c *netlist.Circuit, sa0 bool, n int) []netlist.SignalID {
	type entry struct {
		sig  netlist.SignalID
		cost int32
	}
	var all []entry
	for s := range c.Signals {
		sig := netlist.SignalID(s)
		// Detecting s stuck-at-0 requires setting s to 1.
		cc := m.CC1[sig]
		if !sa0 {
			cc = m.CC0[sig]
		}
		all = append(all, entry{sig: sig, cost: satAdd(cc, m.CO[sig])})
	}
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].cost > all[j-1].cost; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]netlist.SignalID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].sig
	}
	return out
}
