package testability

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sig(t *testing.T, c *netlist.Circuit, name string) netlist.SignalID {
	t.Helper()
	s, ok := c.SignalByName(name)
	if !ok {
		t.Fatalf("signal %s missing", name)
	}
	return s
}

func TestScoapAndGate(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	m := Compute(c)
	y := sig(t, c, "y")
	// CC1(y) = CC1(a)+CC1(b)+1 = 3; CC0(y) = min(CC0)+1 = 2.
	if m.CC1[y] != 3 || m.CC0[y] != 2 {
		t.Errorf("AND: CC0=%d CC1=%d, want 2, 3", m.CC0[y], m.CC1[y])
	}
	// CO(a) = CO(y) + CC1(b) + 1 = 0 + 1 + 1 = 2.
	if got := m.CO[sig(t, c, "a")]; got != 2 {
		t.Errorf("CO(a) = %d, want 2", got)
	}
	if m.CO[y] != 0 {
		t.Errorf("CO(y) = %d, want 0 (primary output)", m.CO[y])
	}
}

func TestScoapNotChainGrows(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = NOT(n2)
`)
	m := Compute(c)
	a := sig(t, c, "a")
	y := sig(t, c, "y")
	if !(m.CC0[y] > m.CC0[a]) {
		t.Error("controllability must grow along a chain")
	}
	if !(m.CO[a] > m.CO[y]) {
		t.Error("observability must grow away from outputs")
	}
}

func TestScoapXorParity(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`)
	m := Compute(c)
	y := sig(t, c, "y")
	// Both polarities cost the same for a 2-input XOR over equal
	// inputs: min(1+1, 1+1) + 1 = 3.
	if m.CC0[y] != 3 || m.CC1[y] != 3 {
		t.Errorf("XOR: CC0=%d CC1=%d, want 3, 3", m.CC0[y], m.CC1[y])
	}
}

func TestScoapFFConventions(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = AND(a, q)
y = NOT(q)
`)
	m := Compute(c)
	q := sig(t, c, "q")
	d := sig(t, c, "d")
	if m.CC0[q] != 1 || m.CC1[q] != 1 {
		t.Error("flip-flop output not costed as scan-controllable")
	}
	if m.CO[d] != 0 {
		t.Errorf("CO(d) = %d, want 0 (flip-flop D is scan-observable)", m.CO[d])
	}
}

func TestScoapUnobservableIsInf(t *testing.T) {
	// A signal feeding nothing observable keeps CO = Inf. Build a
	// circuit where a gate output drives only a flip-flop whose Q
	// drives nothing... Q would be dangling; instead verify CO of a
	// signal whose only path is blocked is still finite in normal
	// circuits and Inf never leaks into catalog circuits.
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	m := Compute(c)
	for s := range c.Signals {
		if m.CO[s] >= Inf {
			t.Errorf("signal %s unobservable in s27", c.SignalName(netlist.SignalID(s)))
		}
		if m.CC0[s] >= Inf || m.CC1[s] >= Inf {
			t.Errorf("signal %s uncontrollable in s27", c.SignalName(netlist.SignalID(s)))
		}
	}
}

func TestHardestOrdering(t *testing.T) {
	c, _ := circuits.Load("s298")
	m := Compute(c)
	h := m.Hardest(c, true, 10)
	if len(h) != 10 {
		t.Fatalf("len = %d", len(h))
	}
	prev := satAdd(m.CC1[h[0]], m.CO[h[0]])
	for _, s := range h[1:] {
		cost := satAdd(m.CC1[s], m.CO[s])
		if cost > prev {
			t.Fatal("Hardest not sorted")
		}
		prev = cost
	}
}

func TestSatAdd(t *testing.T) {
	if satAdd(Inf, Inf) != Inf || satAdd(Inf-1, 5) != Inf {
		t.Error("saturating addition broken")
	}
	if satAdd(2, 3) != 5 {
		t.Error("plain addition broken")
	}
}
