package scan

import (
	"testing"
	"testing/quick"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

// TestScanInIdentityProperty: for any state and any chain count, a
// scan-in load establishes exactly that state (quick-checked over
// random states).
func TestScanInIdentityProperty(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	designs := []Design{}
	single, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	designs = append(designs, single)
	for _, n := range []int{2, 5} {
		ch, err := InsertChains(c, n)
		if err != nil {
			t.Fatal(err)
		}
		designs = append(designs, ch)
	}
	for di, d := range designs {
		f := func(bits uint64) bool {
			state := make([]logic.Value, d.NumStateVars())
			for i := range state {
				state[i] = logic.Zero
				if bits&(1<<uint(i%64)) != 0 {
					state[i] = logic.One
				}
			}
			seq, err := d.ScanInSequence(state)
			if err != nil {
				return false
			}
			m := sim.New(d.ScanCircuit())
			for _, v := range seq {
				m.Step(v)
			}
			got := m.StateSlot(0)
			for i := range state {
				if got[i] != state[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("design %d: %v", di, err)
		}
	}
}

// TestScanOutRoundTripProperty: scanning a random state out through the
// chain observes every bit on scan_out, newest position first.
func TestScanOutRoundTripProperty(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(bits uint8) bool {
		state := make([]logic.Value, sc.NSV)
		for i := range state {
			state[i] = logic.Zero
			if bits&(1<<uint(i)) != 0 {
				state[i] = logic.One
			}
		}
		m := sim.New(sc.Scan)
		m.SetStateBroadcast(state)
		// Shift NSV times; scan_out at shift k shows position NSV-1-k.
		for k := 0; k < sc.NSV; k++ {
			m.Step(sc.ShiftVector(logic.Zero))
			if got := m.OutputSlot(sc.OutPO, 0); got != state[sc.NSV-1-k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
