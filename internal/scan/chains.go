package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Chains is a circuit with several scan chains sharing one scan_sel:
// chain k has its own scan_inp_k input and scan_out_k output. Flip-flops
// are assigned to chains in declaration order, split into near-equal
// contiguous groups — shifting then takes only max(chain length) cycles
// instead of the total number of state variables.
type Chains struct {
	// Scan is C_scan with all chains inserted.
	Scan *netlist.Circuit
	// Orig is the source circuit.
	Orig *netlist.Circuit
	// SelPI is the input position of the shared scan_sel.
	SelPI int
	// InpPIs[k] is the input position of chain k's scan_inp.
	InpPIs []int
	// OutPOs[k] is the output position of chain k's scan_out.
	OutPOs []int
	// ChainOf[f] and PosOf[f] give flip-flop f's chain and its
	// position within it (position 0 is nearest scan_inp).
	ChainOf, PosOf []int
	// Lens[k] is the length of chain k.
	Lens []int
}

// InsertChains builds C_scan with n scan chains. n is clamped to
// [1, number of flip-flops].
func InsertChains(c *netlist.Circuit, n int) (*Chains, error) {
	if c.NumFFs() == 0 {
		return nil, fmt.Errorf("scan: circuit %q has no flip-flops", c.Name)
	}
	if n < 1 {
		n = 1
	}
	if n > c.NumFFs() {
		n = c.NumFFs()
	}
	used := make(map[string]bool, len(c.Signals))
	for _, s := range c.Signals {
		used[s.Name] = true
	}
	unique := func(base string) string {
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		return name
	}
	selName := unique("scan_sel")
	inpNames := make([]string, n)
	for k := range inpNames {
		inpNames[k] = unique(fmt.Sprintf("scan_inp%d", k))
	}
	nselName := unique("scan_nsel")

	// Near-equal contiguous split.
	nFF := c.NumFFs()
	base, extra := nFF/n, nFF%n
	lens := make([]int, n)
	for k := range lens {
		lens[k] = base
		if k < extra {
			lens[k]++
		}
	}

	b := netlist.NewBuilder(fmt.Sprintf("%s_scan%d", c.Name, n))
	for _, in := range c.Inputs {
		b.AddInput(c.SignalName(in))
	}
	b.AddInput(selName)
	for _, name := range inpNames {
		b.AddInput(name)
	}
	b.AddGate(netlist.NOT, nselName, selName)
	for _, gi := range c.Order {
		g := c.Gates[gi]
		in := make([]string, len(g.In))
		for i, s := range g.In {
			in[i] = c.SignalName(s)
		}
		b.AddGate(g.Type, c.SignalName(g.Out), in...)
	}

	chainOf := make([]int, nFF)
	posOf := make([]int, nFF)
	lastQ := make([]string, n)
	fi := 0
	for k := 0; k < n; k++ {
		prev := inpNames[k]
		for p := 0; p < lens[k]; p++ {
			ff := c.FFs[fi]
			q := c.SignalName(ff.Q)
			d := c.SignalName(ff.D)
			funcPath := unique(fmt.Sprintf("scan_mf_%d", fi))
			shiftPath := unique(fmt.Sprintf("scan_ms_%d", fi))
			muxOut := unique(fmt.Sprintf("scan_md_%d", fi))
			b.AddGate(netlist.AND, funcPath, nselName, d)
			b.AddGate(netlist.AND, shiftPath, selName, prev)
			b.AddGate(netlist.OR, muxOut, funcPath, shiftPath)
			b.AddFF(q, muxOut)
			chainOf[fi] = k
			posOf[fi] = p
			prev = q
			fi++
		}
		lastQ[k] = prev
	}
	for _, out := range c.Outputs {
		b.MarkOutput(c.SignalName(out))
	}
	for _, q := range lastQ {
		b.MarkOutput(q)
	}
	sc, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	ch := &Chains{
		Scan:    sc,
		Orig:    c,
		SelPI:   c.NumInputs(),
		ChainOf: chainOf,
		PosOf:   posOf,
		Lens:    lens,
	}
	for k := 0; k < n; k++ {
		ch.InpPIs = append(ch.InpPIs, c.NumInputs()+1+k)
		ch.OutPOs = append(ch.OutPOs, c.NumOutputs()+k)
	}
	return ch, nil
}

// NumChains returns the number of scan chains.
func (ch *Chains) NumChains() int { return len(ch.Lens) }

// MaxLen returns the longest chain length — the cost of a complete
// scan operation.
func (ch *Chains) MaxLen() int {
	m := 0
	for _, l := range ch.Lens {
		if l > m {
			m = l
		}
	}
	return m
}

// ScanCircuit returns C_scan.
func (ch *Chains) ScanCircuit() *netlist.Circuit { return ch.Scan }

// NumStateVars returns the total number of scan state variables.
func (ch *Chains) NumStateVars() int { return ch.Orig.NumFFs() }

// SelInput returns the input position of the shared scan_sel.
func (ch *Chains) SelInput() int { return ch.SelPI }

// ShiftVector returns one vector shifting every chain once: scan_sel =
// 1, chain inputs from inps (missing entries are X), original inputs X.
func (ch *Chains) ShiftVector(inps []logic.Value) logic.Vector {
	v := logic.NewVector(ch.Scan.NumInputs())
	v[ch.SelPI] = logic.One
	for k, pi := range ch.InpPIs {
		if k < len(inps) {
			v[pi] = inps[k]
		}
	}
	return v
}

// FlushLength returns the shifts needed to move an effect latched in
// flip-flop ff to its chain's scan output.
func (ch *Chains) FlushLength(ff int) int {
	n := ch.Lens[ch.ChainOf[ff]] - 1 - ch.PosOf[ff]
	if n < 0 {
		n = 0
	}
	return n
}

// FlushVectors returns FlushLength(ff) shift vectors with all chain
// inputs at X.
func (ch *Chains) FlushVectors(ff int) logic.Sequence {
	n := ch.FlushLength(ff)
	seq := make(logic.Sequence, n)
	for t := range seq {
		seq[t] = ch.ShiftVector(nil)
	}
	return seq
}

// ScanInSequence returns max-chain-length shift vectors loading state
// (one value per flip-flop, in flip-flop order) into every chain in
// parallel. Shorter chains receive X padding before their values.
func (ch *Chains) ScanInSequence(state []logic.Value) (logic.Sequence, error) {
	if len(state) != ch.NumStateVars() {
		return nil, fmt.Errorf("scan: state width %d, total chain length %d", len(state), ch.NumStateVars())
	}
	// ffAt[k][p] is the flip-flop index of chain k position p.
	ffAt := make([][]int, len(ch.Lens))
	for k, l := range ch.Lens {
		ffAt[k] = make([]int, l)
	}
	for f := range state {
		ffAt[ch.ChainOf[f]][ch.PosOf[f]] = f
	}
	m := ch.MaxLen()
	seq := make(logic.Sequence, m)
	for t := 0; t < m; t++ {
		inps := make([]logic.Value, len(ch.Lens))
		for k, l := range ch.Lens {
			// The value fed at shift t lands at position m-1-t
			// after the remaining shifts.
			pos := m - 1 - t
			if pos < l {
				inps[k] = state[ffAt[k][pos]]
			} else {
				inps[k] = logic.X
			}
		}
		seq[t] = ch.ShiftVector(inps)
	}
	return seq, nil
}

// IsScanSel reports whether vector v performs a scan shift.
func (ch *Chains) IsScanSel(v logic.Vector) bool {
	return ch.SelPI < len(v) && v[ch.SelPI] == logic.One
}

// CountScanVectors counts the vectors of seq with scan_sel = 1.
func (ch *Chains) CountScanVectors(seq logic.Sequence) int {
	n := 0
	for _, v := range seq {
		if ch.IsScanSel(v) {
			n++
		}
	}
	return n
}
