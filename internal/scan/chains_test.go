package scan

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/sim"
)

func insertChains(t *testing.T, name string, n int) *Chains {
	t.Helper()
	c, err := circuits.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := InsertChains(c, n)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestInsertChainsInterface(t *testing.T) {
	ch := insertChains(t, "s298", 3)
	if ch.NumChains() != 3 {
		t.Fatalf("chains = %d", ch.NumChains())
	}
	// 14 flip-flops -> lengths 5, 5, 4.
	if ch.Lens[0] != 5 || ch.Lens[1] != 5 || ch.Lens[2] != 4 {
		t.Errorf("lens = %v", ch.Lens)
	}
	if ch.MaxLen() != 5 {
		t.Errorf("MaxLen = %d", ch.MaxLen())
	}
	if ch.Scan.NumInputs() != ch.Orig.NumInputs()+1+3 {
		t.Errorf("inputs = %d", ch.Scan.NumInputs())
	}
	if ch.Scan.NumOutputs() != ch.Orig.NumOutputs()+3 {
		t.Errorf("outputs = %d", ch.Scan.NumOutputs())
	}
	if ch.NumStateVars() != 14 {
		t.Errorf("state vars = %d", ch.NumStateVars())
	}
	// Chain/position maps are a partition.
	seen := map[[2]int]bool{}
	for f := 0; f < 14; f++ {
		k := [2]int{ch.ChainOf[f], ch.PosOf[f]}
		if seen[k] {
			t.Fatalf("duplicate chain slot %v", k)
		}
		seen[k] = true
		if ch.PosOf[f] >= ch.Lens[ch.ChainOf[f]] {
			t.Fatalf("position %d beyond chain %d", ch.PosOf[f], ch.ChainOf[f])
		}
	}
}

func TestInsertChainsClamping(t *testing.T) {
	ch := insertChains(t, "s27", 99)
	if ch.NumChains() != 3 {
		t.Errorf("clamped chains = %d, want 3 (one per flip-flop)", ch.NumChains())
	}
	ch = insertChains(t, "s27", 0)
	if ch.NumChains() != 1 {
		t.Errorf("clamped chains = %d, want 1", ch.NumChains())
	}
}

// TestChainsScanInLoadsState: parallel scan-in must set every flip-flop
// in MaxLen cycles.
func TestChainsScanInLoadsState(t *testing.T) {
	ch := insertChains(t, "s298", 3)
	rng := logic.NewRandFiller(5)
	state := make([]logic.Value, ch.NumStateVars())
	for i := range state {
		state[i] = rng.Next()
	}
	seq, err := ch.ScanInSequence(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != ch.MaxLen() {
		t.Fatalf("scan-in length %d, want %d", len(seq), ch.MaxLen())
	}
	m := sim.New(ch.Scan)
	for _, v := range seq {
		m.Step(v)
	}
	got := m.StateSlot(0)
	for f, want := range state {
		if got[f] != want {
			t.Errorf("FF %d = %v, want %v", f, got[f], want)
		}
	}
}

// TestChainsFlushObservable: a value planted in any flip-flop must
// reach its chain's scan output after FlushLength shifts plus one
// observation cycle.
func TestChainsFlushObservable(t *testing.T) {
	ch := insertChains(t, "s298", 3)
	for f := 0; f < ch.NumStateVars(); f++ {
		m := sim.New(ch.Scan)
		st := make([]logic.Value, ch.NumStateVars())
		for i := range st {
			st[i] = logic.Zero
		}
		st[f] = logic.One
		m.SetStateBroadcast(st)
		for _, v := range ch.FlushVectors(f) {
			m.Step(v)
		}
		m.Step(ch.ShiftVector(nil))
		po := ch.OutPOs[ch.ChainOf[f]]
		if got := m.OutputSlot(po, 0); got != logic.One {
			t.Errorf("FF %d (chain %d pos %d): scan_out = %v", f, ch.ChainOf[f], ch.PosOf[f], got)
		}
	}
}

func TestChainsFunctionalModePreserved(t *testing.T) {
	c, _ := circuits.Load("s27")
	ch, err := InsertChains(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	mo := sim.New(c)
	ms := sim.New(ch.Scan)
	start := []logic.Value{logic.One, logic.Zero, logic.One}
	mo.SetStateBroadcast(start)
	ms.SetStateBroadcast(start)
	rng := logic.NewRandFiller(9)
	for step := 0; step < 40; step++ {
		ov := make(logic.Vector, c.NumInputs())
		for i := range ov {
			ov[i] = rng.Next()
		}
		sv := logic.NewVector(ch.Scan.NumInputs())
		copy(sv, ov)
		sv[ch.SelPI] = logic.Zero
		mo.Step(ov)
		ms.Step(sv)
		for po := 0; po < c.NumOutputs(); po++ {
			if mo.OutputSlot(po, 0) != ms.OutputSlot(po, 0) {
				t.Fatalf("step %d output %d differs", step, po)
			}
		}
	}
}

func TestChainsSingleEquivalentToInsert(t *testing.T) {
	c, _ := circuits.Load("s27")
	one, err := InsertChains(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	if one.Scan.NumGates() != single.Scan.NumGates() {
		t.Errorf("gate counts differ: %d vs %d", one.Scan.NumGates(), single.Scan.NumGates())
	}
	for f := 0; f < c.NumFFs(); f++ {
		if one.FlushLength(f) != single.FlushLength(f) {
			t.Errorf("FlushLength(%d) differs: %d vs %d", f, one.FlushLength(f), single.FlushLength(f))
		}
	}
}

func TestChainsScanInWidthCheck(t *testing.T) {
	ch := insertChains(t, "s27", 2)
	if _, err := ch.ScanInSequence([]logic.Value{logic.One}); err == nil {
		t.Error("short state accepted")
	}
}
