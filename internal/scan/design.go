package scan

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Design abstracts over scan configurations — the single chain of
// Insert and the multiple chains of InsertChains — so test generation
// works unchanged on either (the paper: "all the procedures developed
// can be easily applied to circuits with multiple scan chains").
type Design interface {
	// ScanCircuit returns C_scan.
	ScanCircuit() *netlist.Circuit
	// NumStateVars returns the total number of scan state variables.
	NumStateVars() int
	// SelInput returns the input position of scan_sel.
	SelInput() int
	// FlushLength returns how many scan_sel=1 vectors move an effect
	// latched in flip-flop ff to its chain's scan output.
	FlushLength(ff int) int
	// FlushVectors returns FlushLength(ff) shift vectors (original
	// inputs at X).
	FlushVectors(ff int) logic.Sequence
	// ScanInSequence returns the shift vectors that load state into
	// the chain(s).
	ScanInSequence(state []logic.Value) (logic.Sequence, error)
	// ScanOutSequence returns the shift vectors that empty the
	// chain(s) for observation (a complete scan-out).
	ScanOutSequence() logic.Sequence
	// FunctionalVector widens a vector over the original circuit's
	// inputs to a C_scan vector with scan_sel = 0.
	FunctionalVector(orig logic.Vector) logic.Vector
	// OrigCircuit returns the circuit scan was inserted into.
	OrigCircuit() *netlist.Circuit
	// IsScanSel reports whether a vector performs a scan shift.
	IsScanSel(v logic.Vector) bool
}

var (
	_ Design = (*Circuit)(nil)
	_ Design = (*Chains)(nil)
)

// ScanCircuit returns C_scan.
func (sc *Circuit) ScanCircuit() *netlist.Circuit { return sc.Scan }

// NumStateVars returns the chain length.
func (sc *Circuit) NumStateVars() int { return sc.NSV }

// SelInput returns the input position of scan_sel.
func (sc *Circuit) SelInput() int { return sc.SelPI }

// FlushLength returns the number of shifts that bring an effect in
// flip-flop ff to scan_out.
func (sc *Circuit) FlushLength(ff int) int {
	n := sc.NSV - 1 - ff
	if n < 0 {
		n = 0
	}
	return n
}

// ScanOutSequence returns NSV shift vectors emptying the chain.
func (sc *Circuit) ScanOutSequence() logic.Sequence {
	seq := make(logic.Sequence, sc.NSV)
	for t := range seq {
		seq[t] = sc.ShiftVector(logic.X)
	}
	return seq
}

// OrigCircuit returns the circuit scan was inserted into.
func (sc *Circuit) OrigCircuit() *netlist.Circuit { return sc.Orig }

// ScanOutSequence returns MaxLen shift vectors emptying every chain.
func (ch *Chains) ScanOutSequence() logic.Sequence {
	seq := make(logic.Sequence, ch.MaxLen())
	for t := range seq {
		seq[t] = ch.ShiftVector(nil)
	}
	return seq
}

// FunctionalVector widens a vector over the original inputs to a C_scan
// vector with scan_sel = 0 and chain inputs at X.
func (ch *Chains) FunctionalVector(orig logic.Vector) logic.Vector {
	v := logic.NewVector(ch.Scan.NumInputs())
	copy(v, orig)
	v[ch.SelPI] = logic.Zero
	return v
}

// OrigCircuit returns the circuit scan was inserted into.
func (ch *Chains) OrigCircuit() *netlist.Circuit { return ch.Orig }
