package scan

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func insertS27(t *testing.T) *Circuit {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestInsertInterface(t *testing.T) {
	sc := insertS27(t)
	if sc.NSV != 3 {
		t.Fatalf("NSV = %d", sc.NSV)
	}
	// Two extra inputs, one extra output.
	if sc.Scan.NumInputs() != sc.Orig.NumInputs()+2 {
		t.Errorf("inputs = %d", sc.Scan.NumInputs())
	}
	if sc.Scan.NumOutputs() != sc.Orig.NumOutputs()+1 {
		t.Errorf("outputs = %d", sc.Scan.NumOutputs())
	}
	if sc.Scan.Inputs[sc.SelPI] != mustSignal(t, sc.Scan, sc.SelName) {
		t.Error("SelPI wrong")
	}
	if sc.Scan.Inputs[sc.InpPI] != mustSignal(t, sc.Scan, sc.InpName) {
		t.Error("InpPI wrong")
	}
	// Gate overhead: one shared inverter plus 3 gates per flip-flop.
	wantGates := sc.Orig.NumGates() + 1 + 3*sc.NSV
	if sc.Scan.NumGates() != wantGates {
		t.Errorf("gates = %d, want %d", sc.Scan.NumGates(), wantGates)
	}
}

func mustSignal(t *testing.T, c *netlist.Circuit, name string) netlist.SignalID {
	t.Helper()
	id, ok := c.SignalByName(name)
	if !ok {
		t.Fatalf("signal %s missing", name)
	}
	return id
}

// TestScanInLoadsState shifts a state in through scan_inp and verifies
// every flip-flop holds the requested value.
func TestScanInLoadsState(t *testing.T) {
	sc := insertS27(t)
	want := []logic.Value{logic.Zero, logic.One, logic.One} // SI = 011
	seq, err := sc.ScanInSequence(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != sc.NSV {
		t.Fatalf("scan-in length = %d", len(seq))
	}
	m := sim.New(sc.Scan)
	for _, v := range seq {
		m.Step(v)
	}
	got := m.StateSlot(0)
	for i, w := range want {
		if got[i] != w {
			t.Errorf("FF %d = %v, want %v (state %v)", i, got[i], w, got)
		}
	}
}

// TestScanOutObservesChain loads a state and shifts it out, checking the
// serial values on scan_out.
func TestScanOutObservesChain(t *testing.T) {
	sc := insertS27(t)
	state := []logic.Value{logic.One, logic.Zero, logic.One}
	seq, _ := sc.ScanInSequence(state)
	m := sim.New(sc.Scan)
	for _, v := range seq {
		m.Step(v)
	}
	// Shift out: scan_out shows FF2, then FF1, then FF0.
	wantOrder := []logic.Value{state[2], state[1], state[0]}
	for k, w := range wantOrder {
		v := sc.ShiftVector(logic.Zero)
		m.Step(v)
		// Output during the step reflects the pre-shift state.
		if got := m.OutputSlot(sc.OutPO, 0); got != w {
			t.Errorf("shift %d: scan_out = %v, want %v", k, got, w)
		}
	}
}

// TestFunctionalModePreservesBehaviour: with scan_sel = 0, C_scan must
// behave exactly like the original circuit on the original outputs.
func TestFunctionalModePreservesBehaviour(t *testing.T) {
	orig, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	mo := sim.New(orig)
	ms := sim.New(sc.Scan)
	start := []logic.Value{logic.Zero, logic.One, logic.Zero}
	mo.SetStateBroadcast(start)
	ms.SetStateBroadcast(start)
	rng := logic.NewRandFiller(2024)
	for step := 0; step < 50; step++ {
		ov := make(logic.Vector, orig.NumInputs())
		for i := range ov {
			ov[i] = rng.Next()
		}
		mo.Step(ov)
		ms.Step(sc.FunctionalVector(ov))
		for po := 0; po < orig.NumOutputs(); po++ {
			if mo.OutputSlot(po, 0) != ms.OutputSlot(po, 0) {
				t.Fatalf("step %d output %d: orig=%v scan=%v", step, po,
					mo.OutputSlot(po, 0), ms.OutputSlot(po, 0))
			}
		}
	}
}

func TestFlushVectors(t *testing.T) {
	sc := insertS27(t)
	if got := len(sc.FlushVectors(0)); got != 2 {
		t.Errorf("flush from FF0 = %d vectors, want 2", got)
	}
	if got := len(sc.FlushVectors(2)); got != 0 {
		t.Errorf("flush from last FF = %d vectors, want 0", got)
	}
	for _, v := range sc.FlushVectors(0) {
		if !sc.IsScanSel(v) {
			t.Error("flush vector without scan_sel = 1")
		}
	}
}

// TestFlushMakesEffectObservable: force distinct values into the chain,
// then check that after FlushVectors(i) plus one observation vector the
// value originally in flip-flop i appears on scan_out.
func TestFlushMakesEffectObservable(t *testing.T) {
	sc := insertS27(t)
	state := []logic.Value{logic.One, logic.Zero, logic.Zero}
	for ffi := 0; ffi < sc.NSV; ffi++ {
		m := sim.New(sc.Scan)
		st := make([]logic.Value, sc.NSV)
		for i := range st {
			st[i] = logic.Zero
		}
		st[ffi] = state[0]
		m.SetStateBroadcast(st)
		flush := sc.FlushVectors(ffi)
		for _, v := range flush {
			m.Step(v)
		}
		// One more vector to observe the shifted value.
		m.Step(sc.ShiftVector(logic.Zero))
		if got := m.OutputSlot(sc.OutPO, 0); got != logic.One {
			t.Errorf("FF %d: scan_out = %v after flush, want 1", ffi, got)
		}
	}
}

func TestCountScanVectors(t *testing.T) {
	sc := insertS27(t)
	seq := logic.Sequence{
		sc.ShiftVector(logic.One),
		sc.FunctionalVector(logic.NewVector(4)),
		sc.ShiftVector(logic.Zero),
	}
	if got := sc.CountScanVectors(seq); got != 2 {
		t.Errorf("CountScanVectors = %d, want 2", got)
	}
}

func TestScanInSequenceWidthCheck(t *testing.T) {
	sc := insertS27(t)
	if _, err := sc.ScanInSequence([]logic.Value{logic.One}); err == nil {
		t.Error("short state accepted")
	}
}

func TestInsertRequiresFFs(t *testing.T) {
	b := netlist.NewBuilder("comb")
	b.AddInput("a")
	b.AddGate(netlist.NOT, "y", "a")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Insert(c); err == nil {
		t.Error("combinational circuit accepted")
	}
}

func TestInsertNameCollision(t *testing.T) {
	b := netlist.NewBuilder("clash")
	b.AddInput("scan_sel") // collides with the preferred name
	b.AddGate(netlist.NOT, "d", "scan_sel")
	b.AddFF("q", "d")
	b.MarkOutput("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	if sc.SelName == "scan_sel" {
		t.Error("collision not uniquified")
	}
}

// TestScanFaultsAreTargetable: the mux gates introduce new fault sites;
// the universe of C_scan must strictly contain more faults than the
// original circuit's.
func TestScanFaultsAreTargetable(t *testing.T) {
	sc := insertS27(t)
	orig := fault.Universe(sc.Orig, false)
	scanned := fault.Universe(sc.Scan, false)
	if len(scanned) <= len(orig) {
		t.Errorf("scan universe %d <= original %d", len(scanned), len(orig))
	}
}
