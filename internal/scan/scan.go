// Package scan inserts a single mux-based scan chain into a synchronous
// sequential circuit, producing the circuit the paper calls C_scan: the
// original circuit plus two extra primary inputs (scan_sel, scan_inp)
// and one extra primary output (scan_out).
//
// The multiplexers in front of the flip-flops are built from ordinary
// gates (two ANDs and an OR per flip-flop, sharing one inverter for the
// select), so the faults introduced by the scan logic are part of the
// fault universe — the paper explicitly targets them.
//
// Chain order follows flip-flop declaration order, matching the paper's
// "order of the flip-flops in the scan chains is identical to their
// order in the circuit description": scan_inp feeds flip-flop 0, whose
// output feeds flip-flop 1, and so on; scan_out observes the output of
// the last flip-flop.
package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Circuit bundles the scan-inserted circuit with the bookkeeping the
// test generation and translation procedures need.
type Circuit struct {
	// Scan is C_scan, the circuit with the chain inserted.
	Scan *netlist.Circuit
	// Orig is the circuit scan was inserted into.
	Orig *netlist.Circuit
	// SelPI and InpPI are the positions of scan_sel and scan_inp in
	// Scan.Inputs (they are the last two inputs, in this order).
	SelPI, InpPI int
	// OutPO is the position of scan_out in Scan.Outputs (last).
	OutPO int
	// NSV is the number of state variables in the chain.
	NSV int
	// SelName and InpName are the actual signal names chosen for the
	// scan controls (uniquified against the original name space).
	SelName, InpName string
}

// Insert builds C_scan from c. The circuit must have at least one
// flip-flop.
func Insert(c *netlist.Circuit) (*Circuit, error) {
	if c.NumFFs() == 0 {
		return nil, fmt.Errorf("scan: circuit %q has no flip-flops", c.Name)
	}
	used := make(map[string]bool, len(c.Signals))
	for _, s := range c.Signals {
		used[s.Name] = true
	}
	unique := func(base string) string {
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		return name
	}
	selName := unique("scan_sel")
	inpName := unique("scan_inp")
	nselName := unique("scan_nsel")

	b := netlist.NewBuilder(c.Name + "_scan")
	for _, in := range c.Inputs {
		b.AddInput(c.SignalName(in))
	}
	b.AddInput(selName)
	b.AddInput(inpName)

	// Shared inverted select.
	b.AddGate(netlist.NOT, nselName, selName)

	// Original combinational gates, unchanged.
	for _, gi := range c.Order {
		g := c.Gates[gi]
		in := make([]string, len(g.In))
		for i, s := range g.In {
			in[i] = c.SignalName(s)
		}
		b.AddGate(g.Type, c.SignalName(g.Out), in...)
	}

	// Flip-flops with scan muxes, chained in declaration order.
	prev := inpName
	for fi, ff := range c.FFs {
		q := c.SignalName(ff.Q)
		d := c.SignalName(ff.D)
		funcPath := unique(fmt.Sprintf("scan_mf_%d", fi))
		shiftPath := unique(fmt.Sprintf("scan_ms_%d", fi))
		muxOut := unique(fmt.Sprintf("scan_md_%d", fi))
		b.AddGate(netlist.AND, funcPath, nselName, d)
		b.AddGate(netlist.AND, shiftPath, selName, prev)
		b.AddGate(netlist.OR, muxOut, funcPath, shiftPath)
		b.AddFF(q, muxOut)
		prev = q
	}

	for _, out := range c.Outputs {
		b.MarkOutput(c.SignalName(out))
	}
	b.MarkOutput(prev) // scan_out observes the last flip-flop

	sc, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("scan: %w", err)
	}
	return &Circuit{
		Scan:    sc,
		Orig:    c,
		SelPI:   sc.NumInputs() - 2,
		InpPI:   sc.NumInputs() - 1,
		OutPO:   sc.NumOutputs() - 1,
		NSV:     c.NumFFs(),
		SelName: selName,
		InpName: inpName,
	}, nil
}

// ShiftVector returns one input vector for C_scan performing a single
// scan shift: scan_sel = 1, scan_inp = inp, all original primary inputs
// at X (callers typically fill them randomly afterwards).
func (sc *Circuit) ShiftVector(inp logic.Value) logic.Vector {
	v := logic.NewVector(sc.Scan.NumInputs())
	v[sc.SelPI] = logic.One
	v[sc.InpPI] = inp
	return v
}

// FunctionalVector returns one input vector for C_scan applying the
// original-circuit vector orig with scan_sel = 0 and scan_inp = X.
func (sc *Circuit) FunctionalVector(orig logic.Vector) logic.Vector {
	v := logic.NewVector(sc.Scan.NumInputs())
	copy(v, orig)
	v[sc.SelPI] = logic.Zero
	v[sc.InpPI] = logic.X
	return v
}

// ScanInSequence returns the NSV shift vectors that load state into the
// chain. state[i] is the value flip-flop i must hold after the load;
// because flip-flop 0 is nearest scan_inp, state is fed last element
// first (the paper's "we reversed the state s").
func (sc *Circuit) ScanInSequence(state []logic.Value) (logic.Sequence, error) {
	if len(state) != sc.NSV {
		return nil, fmt.Errorf("scan: state width %d, chain length %d", len(state), sc.NSV)
	}
	seq := make(logic.Sequence, sc.NSV)
	for t := 0; t < sc.NSV; t++ {
		seq[t] = sc.ShiftVector(state[sc.NSV-1-t])
	}
	return seq, nil
}

// FlushVectors returns the scan_sel = 1 vectors that move a fault effect
// latched into flip-flop ff (0-based chain position) to the scan output.
// Following the paper, an effect in flip-flop i (1-based) needs
// NSV - i shift vectors; one further vector of any kind must follow for
// the value to be observed on scan_out.
func (sc *Circuit) FlushVectors(ff int) logic.Sequence {
	n := sc.NSV - 1 - ff
	if n < 0 {
		n = 0
	}
	seq := make(logic.Sequence, n)
	for t := range seq {
		seq[t] = sc.ShiftVector(logic.X)
	}
	return seq
}

// IsScanSel reports whether vector v performs a scan shift (scan_sel is
// 1).
func (sc *Circuit) IsScanSel(v logic.Vector) bool {
	return sc.SelPI < len(v) && v[sc.SelPI] == logic.One
}

// CountScanVectors counts the vectors of seq with scan_sel = 1 — the
// "scan" columns of the paper's Tables 6 and 7.
func (sc *Circuit) CountScanVectors(seq logic.Sequence) int {
	n := 0
	for _, v := range seq {
		if sc.IsScanSel(v) {
			n++
		}
	}
	return n
}
