// Package logic defines the three-valued logic domain {0, 1, X} used
// throughout the library, together with test vectors (one assignment to
// all primary inputs) and test sequences (an ordered list of vectors).
//
// X denotes an unknown or unspecified value. Test generation leaves
// don't-care positions at X; simulation treats X pessimistically.
package logic

import (
	"fmt"
	"strings"
)

// Value is a three-valued logic value.
type Value uint8

// The three logic values.
const (
	Zero Value = iota
	One
	X
)

// String renders the value as "0", "1" or "x".
func (v Value) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "x"
	}
	return fmt.Sprintf("Value(%d)", uint8(v))
}

// ParseValue parses '0', '1', 'x' or 'X'.
func ParseValue(ch byte) (Value, error) {
	switch ch {
	case '0':
		return Zero, nil
	case '1':
		return One, nil
	case 'x', 'X':
		return X, nil
	}
	return X, fmt.Errorf("logic: invalid value %q", string(ch))
}

// Not returns the complement; X stays X.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

// IsBinary reports whether v is 0 or 1.
func (v Value) IsBinary() bool { return v == Zero || v == One }

// And returns the three-valued AND of a and b.
func And(a, b Value) Value {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == One && b == One {
		return One
	}
	return X
}

// Or returns the three-valued OR of a and b.
func Or(a, b Value) Value {
	if a == One || b == One {
		return One
	}
	if a == Zero && b == Zero {
		return Zero
	}
	return X
}

// Xor returns the three-valued XOR of a and b.
func Xor(a, b Value) Value {
	if !a.IsBinary() || !b.IsBinary() {
		return X
	}
	if a == b {
		return Zero
	}
	return One
}

// Vector is one assignment to the primary inputs of a circuit, in input
// declaration order.
type Vector []Value

// NewVector returns a vector of n X values.
func NewVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = X
	}
	return v
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// String renders the vector as a string of 0/1/x characters.
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(len(v))
	for _, x := range v {
		sb.WriteString(x.String())
	}
	return sb.String()
}

// ParseVector parses a string of 0/1/x characters into a Vector.
func ParseVector(s string) (Vector, error) {
	v := make(Vector, len(s))
	for i := 0; i < len(s); i++ {
		x, err := ParseValue(s[i])
		if err != nil {
			return nil, err
		}
		v[i] = x
	}
	return v, nil
}

// Specified reports whether every position of v is binary.
func (v Vector) Specified() bool {
	for _, x := range v {
		if !x.IsBinary() {
			return false
		}
	}
	return true
}

// Sequence is an ordered list of input vectors applied on consecutive
// clock cycles. For a scan circuit modelled per the paper, the sequence
// length equals the test application time in clock cycles, because scan
// operations are explicit vectors.
type Sequence []Vector

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	t := make(Sequence, len(s))
	for i, v := range s {
		t[i] = v.Clone()
	}
	return t
}

// String renders the sequence one vector per line.
func (s Sequence) String() string {
	var sb strings.Builder
	for i, v := range s {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(v.String())
	}
	return sb.String()
}

// ParseSequence parses newline-separated vectors. Blank lines and lines
// starting with '#' are skipped.
func ParseSequence(text string) (Sequence, error) {
	var seq Sequence
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := ParseVector(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if len(seq) > 0 && len(v) != len(seq[0]) {
			return nil, fmt.Errorf("line %d: vector width %d differs from %d", ln+1, len(v), len(seq[0]))
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// CountWhere returns how many vectors in s have value want at input
// position pos. Positions out of range count as no match.
func (s Sequence) CountWhere(pos int, want Value) int {
	n := 0
	for _, v := range s {
		if pos < len(v) && v[pos] == want {
			n++
		}
	}
	return n
}

// RandFiller produces deterministic pseudo-random binary values, used to
// fill unspecified (X) positions of generated sequences. It is a small
// xorshift generator so that results are reproducible without pulling in
// math/rand state management at call sites.
type RandFiller struct{ state uint64 }

// NewRandFiller returns a filler seeded with seed (zero is remapped).
func NewRandFiller(seed uint64) *RandFiller {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RandFiller{state: seed}
}

// State returns the generator's internal state for checkpointing; a
// filler restored with the value continues the exact same stream.
func (r *RandFiller) State() uint64 { return r.state }

// Restore sets the internal state to one previously read with State.
// A zero state (which State never returns) is remapped like a zero
// seed, keeping the xorshift invariant that the state is never zero.
func (r *RandFiller) Restore(state uint64) {
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	r.state = state
}

// Next returns the next pseudo-random bit as a logic Value.
func (r *RandFiller) Next() Value {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	if r.state&1 == 1 {
		return One
	}
	return Zero
}

// Uint64 returns the next raw pseudo-random word.
func (r *RandFiller) Uint64() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RandFiller) Intn(n int) int {
	if n <= 0 {
		panic("logic: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// FillX replaces every X in the sequence with a pseudo-random binary
// value from r, in place.
func (s Sequence) FillX(r *RandFiller) {
	for _, v := range s {
		for i, x := range v {
			if x == X {
				v[i] = r.Next()
			}
		}
	}
}
