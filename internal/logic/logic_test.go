package logic

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	cases := map[Value]string{Zero: "0", One: "1", X: "x"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestParseValue(t *testing.T) {
	for _, c := range []struct {
		ch   byte
		want Value
	}{{'0', Zero}, {'1', One}, {'x', X}, {'X', X}} {
		got, err := ParseValue(c.ch)
		if err != nil || got != c.want {
			t.Errorf("ParseValue(%q) = %v, %v; want %v", c.ch, got, err, c.want)
		}
	}
	if _, err := ParseValue('z'); err == nil {
		t.Error("ParseValue('z') succeeded, want error")
	}
}

func TestNotInvolution(t *testing.T) {
	for _, v := range []Value{Zero, One, X} {
		if v.Not().Not() != v {
			t.Errorf("Not(Not(%v)) != %v", v, v)
		}
	}
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Error("Not truth table wrong")
	}
}

func TestAndOrTruthTables(t *testing.T) {
	type row struct{ a, b, and, or Value }
	rows := []row{
		{Zero, Zero, Zero, Zero},
		{Zero, One, Zero, One},
		{One, One, One, One},
		{Zero, X, Zero, X},
		{One, X, X, One},
		{X, X, X, X},
	}
	for _, r := range rows {
		for _, sw := range []bool{false, true} {
			a, b := r.a, r.b
			if sw {
				a, b = b, a
			}
			if got := And(a, b); got != r.and {
				t.Errorf("And(%v,%v) = %v, want %v", a, b, got, r.and)
			}
			if got := Or(a, b); got != r.or {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, r.or)
			}
		}
	}
}

func TestXor(t *testing.T) {
	if Xor(Zero, One) != One || Xor(One, One) != Zero || Xor(Zero, Zero) != Zero {
		t.Error("binary Xor wrong")
	}
	for _, v := range []Value{Zero, One, X} {
		if Xor(v, X) != X || Xor(X, v) != X {
			t.Error("Xor with X must be X")
		}
	}
}

func TestDeMorganProperty(t *testing.T) {
	// NOT(a AND b) == NOT(a) OR NOT(b) in three-valued logic.
	vals := []Value{Zero, One, X}
	for _, a := range vals {
		for _, b := range vals {
			if And(a, b).Not() != Or(a.Not(), b.Not()) {
				t.Errorf("DeMorgan fails for %v,%v", a, b)
			}
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	v, err := ParseVector("01x10")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.String(); got != "01x10" {
		t.Errorf("round trip = %q", got)
	}
	if v.Specified() {
		t.Error("vector with x reported specified")
	}
	if !mustVector(t, "0110").Specified() {
		t.Error("binary vector reported unspecified")
	}
}

func mustVector(t *testing.T, s string) Vector {
	t.Helper()
	v, err := ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewVectorAllX(t *testing.T) {
	v := NewVector(5)
	for i, x := range v {
		if x != X {
			t.Fatalf("position %d = %v, want X", i, x)
		}
	}
}

func TestVectorClone(t *testing.T) {
	v := mustVector(t, "01x")
	w := v.Clone()
	w[0] = One
	if v[0] != Zero {
		t.Error("Clone aliases original")
	}
}

func TestSequenceParseAndString(t *testing.T) {
	seq, err := ParseSequence("# header\n010\n\n1x1\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 2 || seq[0].String() != "010" || seq[1].String() != "1x1" {
		t.Fatalf("parsed %v", seq)
	}
	back, err := ParseSequence(seq.String())
	if err != nil || len(back) != 2 {
		t.Fatalf("round trip failed: %v %v", back, err)
	}
}

func TestSequenceParseWidthMismatch(t *testing.T) {
	if _, err := ParseSequence("010\n01"); err == nil {
		t.Error("width mismatch not rejected")
	}
}

func TestSequenceClone(t *testing.T) {
	seq, _ := ParseSequence("01\n10")
	cp := seq.Clone()
	cp[0][0] = One
	if seq[0][0] != Zero {
		t.Error("Clone aliases original")
	}
}

func TestCountWhere(t *testing.T) {
	seq, _ := ParseSequence("01\n11\n0x")
	if got := seq.CountWhere(0, Zero); got != 2 {
		t.Errorf("CountWhere(0, Zero) = %d, want 2", got)
	}
	if got := seq.CountWhere(1, One); got != 2 {
		t.Errorf("CountWhere(1, One) = %d, want 2", got)
	}
	if got := seq.CountWhere(9, One); got != 0 {
		t.Errorf("out of range CountWhere = %d, want 0", got)
	}
}

func TestFillXRemovesAllX(t *testing.T) {
	f := func(seed uint64) bool {
		seq := Sequence{NewVector(17), NewVector(17)}
		seq.FillX(NewRandFiller(seed))
		for _, v := range seq {
			if !v.Specified() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillXPreservesBinary(t *testing.T) {
	seq, _ := ParseSequence("0x1\nx1x")
	seq.FillX(NewRandFiller(7))
	if seq[0][0] != Zero || seq[0][2] != One || seq[1][1] != One {
		t.Error("FillX changed specified values")
	}
}

func TestRandFillerDeterminism(t *testing.T) {
	a, b := NewRandFiller(42), NewRandFiller(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandFillerZeroSeed(t *testing.T) {
	r := NewRandFiller(0)
	saw := map[Value]bool{}
	for i := 0; i < 64; i++ {
		saw[r.Next()] = true
	}
	if !saw[Zero] || !saw[One] {
		t.Error("zero-seed filler not producing both values")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRandFiller(3)
	for i := 0; i < 1000; i++ {
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRandFiller(1).Intn(0)
}
