package circuits

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestLoadS27IsReal(t *testing.T) {
	c, err := Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 4 || c.NumOutputs() != 1 || c.NumFFs() != 3 || c.NumGates() != 10 {
		t.Fatalf("s27 sizes wrong: %+v", c.Stats())
	}
	// Functional spot check: the ISCAS-89 s27 output G17 = NOT(G11).
	// With state known, verify one full evaluation. Set the state via
	// direct state assignment: G5=0, G6=1, G7=0 and inputs 0 1 0 1.
	m := sim.New(c)
	m.SetStateBroadcast([]logic.Value{logic.Zero, logic.One, logic.Zero})
	v, _ := logic.ParseVector("0101")
	m.Step(v)
	// G14=NOT(0)=1, G8=AND(1,1)=1, G12=NOR(1,0)=0, G15=OR(0,1)=1,
	// G16=OR(1,1)=1, G9=NAND(1,1)=0, G11=NOR(0,0)=1, G17=NOT(1)=0.
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("G17 = %v, want 0", got)
	}
}

func TestCatalogCoversPaperSuite(t *testing.T) {
	want := []string{
		"s27", "s208", "s298", "s344", "s382", "s386", "s400", "s420",
		"s444", "s510", "s526", "s641", "s820", "s953", "s1196",
		"s1423", "s1488", "s5378", "s35932",
		"b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
	}
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("catalog missing %s", n)
		}
	}
}

func TestLoadAllCatalogEntries(t *testing.T) {
	for _, e := range Catalog() {
		c, err := Load(e.Name)
		if err != nil {
			t.Fatalf("Load(%s): %v", e.Name, err)
		}
		if e.Synthetic {
			if c.NumInputs() != e.Params.Inputs {
				t.Errorf("%s: inputs = %d, want %d", e.Name, c.NumInputs(), e.Params.Inputs)
			}
			if c.NumFFs() != e.Params.FFs {
				t.Errorf("%s: FFs = %d, want %d", e.Name, c.NumFFs(), e.Params.FFs)
			}
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("s9999"); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p := Params{Name: "x", Inputs: 4, FFs: 6, Gates: 50, Outputs: 3, Seed: 77}
	a, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(p)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Format(a) != bench.Format(b) {
		t.Error("same params produced different circuits")
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	a, _ := Synthesize(Params{Name: "x", Inputs: 4, FFs: 6, Gates: 50, Outputs: 3, Seed: 1})
	b, _ := Synthesize(Params{Name: "x", Inputs: 4, FFs: 6, Gates: 50, Outputs: 3, Seed: 2})
	if bench.Format(a) == bench.Format(b) {
		t.Error("different seeds produced identical circuits")
	}
}

func TestSynthesizeNoDanglingLogic(t *testing.T) {
	c, err := Synthesize(Params{Name: "x", Inputs: 5, FFs: 8, Gates: 120, Outputs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for s := range c.Signals {
		id := netlist.SignalID(s)
		if len(c.Fanout(id)) == 0 {
			t.Errorf("signal %s has no readers (not even a primary output)", c.SignalName(id))
		}
	}
}

func TestSynthesizeInvalidParams(t *testing.T) {
	if _, err := Synthesize(Params{Inputs: 0, FFs: 1, Gates: 10, Outputs: 1}); err == nil {
		t.Error("zero inputs accepted")
	}
}

func TestSynthesizeRoundTripsThroughBench(t *testing.T) {
	c, err := Synthesize(Params{Name: "rt", Inputs: 5, FFs: 7, Gates: 80, Outputs: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := bench.ParseString(bench.Format(c), "rt")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() || c2.NumFFs() != c.NumFFs() {
		t.Error("bench round trip changed the synthetic circuit")
	}
}
