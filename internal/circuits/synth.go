package circuits

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Params describes a synthetic synchronous sequential circuit to
// generate. Generation is deterministic in Params (including Seed).
type Params struct {
	Name    string
	Inputs  int // primary inputs (before scan insertion)
	FFs     int // flip-flops
	Gates   int // approximate combinational gate budget
	Outputs int // primary outputs
	Seed    uint64
}

// Synthesize deterministically generates a connected synchronous
// sequential circuit with the requested interface sizes.
//
// Construction is cone-based, chosen so the resulting logic has high
// stuck-at testability (the real ISCAS-89/ITC-99 benchmarks have close
// to 100% testable faults; naive random logic does not). Every
// flip-flop data input and every primary output is the root of a logic
// cone built as a fanout-free tree whose leaves are primary inputs,
// flip-flop outputs, or subtree roots shared from earlier cones. Leaves
// within one cone are chosen with pairwise-disjoint source support, so
// no cone contains reconvergent fanout — which makes every fault in the
// tree excitable and observable once the state is controllable (scan)
// and the next state observable (scan again). Sharing across cones
// creates realistic multi-fanout stems without introducing redundancy.
func Synthesize(p Params) (*netlist.Circuit, error) {
	if p.Inputs < 1 || p.FFs < 0 || p.Gates < 1 || p.Outputs < 1 {
		return nil, fmt.Errorf("circuits: invalid params %+v", p)
	}
	rng := logic.NewRandFiller(p.Seed ^ 0xD1B54A32D192ED03)
	b := netlist.NewBuilder(p.Name)

	type nd struct {
		name    string
		support map[int]bool // set of source indices feeding it
	}
	var sources []nd
	for i := 0; i < p.Inputs; i++ {
		name := fmt.Sprintf("a%d", i)
		b.AddInput(name)
		sources = append(sources, nd{name: name, support: map[int]bool{i: true}})
	}
	for i := 0; i < p.FFs; i++ {
		idx := p.Inputs + i
		sources = append(sources, nd{name: fmt.Sprintf("q%d", i), support: map[int]bool{idx: true}})
	}
	usedSource := make([]bool, len(sources))

	cones := p.FFs + p.Outputs
	gateBudget := p.Gates
	if gateBudget < cones {
		gateBudget = cones
	}
	leavesPerCone := gateBudget/cones + 1
	if leavesPerCone < 2 {
		leavesPerCone = 2
	}

	twoIn := []netlist.GateType{
		netlist.AND, netlist.NAND, netlist.OR, netlist.NOR,
		netlist.XOR, netlist.XNOR, netlist.AND, netlist.OR,
	}

	var shared []nd // subtree roots available for reuse by later cones
	gateN := 0
	newName := func() string {
		gateN++
		return fmt.Sprintf("n%d", gateN)
	}

	disjoint := func(a, b map[int]bool) bool {
		for k := range a {
			if b[k] {
				return false
			}
		}
		return true
	}
	union := func(dst, src map[int]bool) {
		for k := range src {
			dst[k] = true
		}
	}
	supportAvailable := func(sup map[int]bool, avail []int) bool {
		have := 0
		for _, i := range avail {
			if sup[i] {
				have++
			}
		}
		return have == len(sup)
	}
	dropSupport := func(avail []int, sup map[int]bool) []int {
		out := avail[:0]
		for _, i := range avail {
			if !sup[i] {
				out = append(out, i)
			}
		}
		return out
	}

	// buildCone returns the root node of a fresh cone.
	buildCone := func() nd {
		// Mean leaf count leavesPerCone makes total gates track the
		// requested budget (a chain tree of L leaves has L-1 gates).
		spread := 2*leavesPerCone - 3
		if spread < 1 {
			spread = 1
		}
		want := 2 + rng.Intn(spread)
		coneSupport := make(map[int]bool)
		var leaves []nd
		// avail holds source indices not yet in the cone's support;
		// swap-remove keeps picks O(1).
		avail := make([]int, len(sources))
		for i := range avail {
			avail[i] = i
		}
		takeAvail := func(pos int) int {
			i := avail[pos]
			avail[pos] = avail[len(avail)-1]
			avail = avail[:len(avail)-1]
			return i
		}
		for len(leaves) < want && len(avail) > 0 {
			var cand nd
			picked := false
			// Occasionally reuse a shared subtree from another cone
			// when its whole support is still available.
			if len(shared) > 0 && rng.Intn(100) < 20 {
				s := shared[rng.Intn(len(shared))]
				if disjoint(s.support, coneSupport) && supportAvailable(s.support, avail) {
					cand, picked = s, true
					avail = dropSupport(avail, s.support)
				}
			}
			if !picked {
				// Prefer a never-used source so every input and
				// flip-flop output drives logic.
				pos := -1
				if rng.Intn(100) < 40 {
					for try := 0; try < 4; try++ {
						p := rng.Intn(len(avail))
						if !usedSource[avail[p]] {
							pos = p
							break
						}
					}
				}
				if pos < 0 {
					pos = rng.Intn(len(avail))
				}
				i := takeAvail(pos)
				usedSource[i] = true
				cand = sources[i]
			}
			union(coneSupport, cand.support)
			leaves = append(leaves, cand)
		}
		for len(leaves) < 2 {
			// Degenerate fallback for one-source circuits: reuse a
			// source; the overlap is confined to one gate.
			i := rng.Intn(len(sources))
			usedSource[i] = true
			leaves = append(leaves, sources[i])
		}
		// Combine leaves into a chain tree, occasionally inverting an
		// operand, registering intermediates as shareable subtrees.
		acc := leaves[0]
		for _, leaf := range leaves[1:] {
			operand := leaf
			if rng.Intn(100) < 12 {
				inv := newName()
				b.AddGate(netlist.NOT, inv, operand.name)
				operand = nd{name: inv, support: operand.support}
			}
			out := newName()
			t := twoIn[rng.Intn(len(twoIn))]
			b.AddGate(t, out, acc.name, operand.name)
			sup := make(map[int]bool, len(acc.support)+len(operand.support))
			union(sup, acc.support)
			union(sup, operand.support)
			acc = nd{name: out, support: sup}
			shared = append(shared, acc)
		}
		return acc
	}

	for i := 0; i < p.FFs; i++ {
		root := buildCone()
		b.AddFF(fmt.Sprintf("q%d", i), root.name)
	}
	outs := make([]string, 0, p.Outputs)
	for i := 0; i < p.Outputs; i++ {
		outs = append(outs, buildCone().name)
	}

	// Sweep up never-used sources into one extra parity cone on the
	// last output, so nothing is structurally disconnected. XOR trees
	// over distinct fresh sources stay fully testable.
	var leftovers []string
	for i, u := range usedSource {
		if !u {
			leftovers = append(leftovers, sources[i].name)
		}
	}
	if len(leftovers) > 0 {
		acc := outs[len(outs)-1]
		for _, s := range leftovers {
			out := newName()
			b.AddGate(netlist.XOR, out, acc, s)
			acc = out
		}
		outs[len(outs)-1] = acc
	}
	for _, o := range outs {
		b.MarkOutput(o)
	}
	return b.Build()
}
