// Package circuits provides the benchmark circuits the experiments run
// on: the real ISCAS-89 s27 netlist used in the paper's worked examples,
// and deterministic synthetic substitutes for the remaining ISCAS-89 and
// ITC-99 circuits with the same primary-input and flip-flop counts as
// the paper's Table 5 (see DESIGN.md, "Substitutions").
package circuits

import (
	"fmt"
	"sort"

	"repro/internal/bench"
	"repro/internal/netlist"
)

// Entry describes one catalog circuit.
type Entry struct {
	Name      string
	Synthetic bool // false only for s27
	Scaled    bool // true when deliberately smaller than the original
	Params    Params
}

// catalog lists every circuit of the paper's evaluation plus the
// remaining small ITC-99 designs (b05, b07, b08, b12, b13 — not in the
// paper's tables, provided for downstream users). Inputs and FFs match
// Table 5 where applicable (its "inp" column counts scan_sel and
// scan_inp, so Inputs here is inp-2); gate counts are scaled to the
// paper's fault counts. s35932 is built at roughly 1/10 scale (see
// DESIGN.md).
var catalog = []Entry{
	{Name: "s27"},
	{Name: "s208", Synthetic: true, Params: Params{Inputs: 11, FFs: 8, Gates: 70, Outputs: 2, Seed: 208}},
	{Name: "s298", Synthetic: true, Params: Params{Inputs: 3, FFs: 14, Gates: 100, Outputs: 6, Seed: 298}},
	{Name: "s344", Synthetic: true, Params: Params{Inputs: 9, FFs: 15, Gates: 120, Outputs: 11, Seed: 344}},
	{Name: "s382", Synthetic: true, Params: Params{Inputs: 3, FFs: 21, Gates: 140, Outputs: 6, Seed: 382}},
	{Name: "s386", Synthetic: true, Params: Params{Inputs: 7, FFs: 6, Gates: 115, Outputs: 7, Seed: 386}},
	{Name: "s400", Synthetic: true, Params: Params{Inputs: 3, FFs: 21, Gates: 150, Outputs: 6, Seed: 400}},
	{Name: "s420", Synthetic: true, Params: Params{Inputs: 19, FFs: 16, Gates: 140, Outputs: 2, Seed: 420}},
	{Name: "s444", Synthetic: true, Params: Params{Inputs: 3, FFs: 21, Gates: 165, Outputs: 6, Seed: 444}},
	{Name: "s510", Synthetic: true, Params: Params{Inputs: 19, FFs: 6, Gates: 165, Outputs: 7, Seed: 510}},
	{Name: "s526", Synthetic: true, Params: Params{Inputs: 3, FFs: 21, Gates: 185, Outputs: 6, Seed: 526}},
	{Name: "s641", Synthetic: true, Params: Params{Inputs: 35, FFs: 19, Gates: 165, Outputs: 24, Seed: 641}},
	{Name: "s820", Synthetic: true, Params: Params{Inputs: 18, FFs: 5, Gates: 240, Outputs: 19, Seed: 820}},
	{Name: "s953", Synthetic: true, Params: Params{Inputs: 16, FFs: 29, Gates: 350, Outputs: 23, Seed: 953}},
	{Name: "s1196", Synthetic: true, Params: Params{Inputs: 14, FFs: 18, Gates: 380, Outputs: 14, Seed: 1196}},
	{Name: "s1423", Synthetic: true, Params: Params{Inputs: 17, FFs: 74, Gates: 520, Outputs: 5, Seed: 1423}},
	{Name: "s1488", Synthetic: true, Params: Params{Inputs: 8, FFs: 6, Gates: 420, Outputs: 19, Seed: 1488}},
	{Name: "s5378", Synthetic: true, Params: Params{Inputs: 35, FFs: 179, Gates: 1200, Outputs: 49, Seed: 5378}},
	{Name: "s35932", Synthetic: true, Scaled: true, Params: Params{Inputs: 35, FFs: 173, Gates: 1600, Outputs: 32, Seed: 35932}},
	{Name: "b01", Synthetic: true, Params: Params{Inputs: 3, FFs: 5, Gates: 45, Outputs: 2, Seed: 9001}},
	{Name: "b02", Synthetic: true, Params: Params{Inputs: 2, FFs: 4, Gates: 25, Outputs: 1, Seed: 9002}},
	{Name: "b03", Synthetic: true, Params: Params{Inputs: 5, FFs: 30, Gates: 160, Outputs: 4, Seed: 9003}},
	{Name: "b04", Synthetic: true, Params: Params{Inputs: 12, FFs: 66, Gates: 470, Outputs: 8, Seed: 9004}},
	{Name: "b05", Synthetic: true, Params: Params{Inputs: 2, FFs: 34, Gates: 510, Outputs: 36, Seed: 9005}},
	{Name: "b06", Synthetic: true, Params: Params{Inputs: 3, FFs: 9, Gates: 70, Outputs: 6, Seed: 9006}},
	{Name: "b07", Synthetic: true, Params: Params{Inputs: 2, FFs: 49, Gates: 300, Outputs: 8, Seed: 9007}},
	{Name: "b08", Synthetic: true, Params: Params{Inputs: 10, FFs: 21, Gates: 140, Outputs: 4, Seed: 9008}},
	{Name: "b09", Synthetic: true, Params: Params{Inputs: 2, FFs: 28, Gates: 160, Outputs: 1, Seed: 9009}},
	{Name: "b10", Synthetic: true, Params: Params{Inputs: 12, FFs: 17, Gates: 165, Outputs: 6, Seed: 9010}},
	{Name: "b11", Synthetic: true, Params: Params{Inputs: 8, FFs: 30, Gates: 345, Outputs: 6, Seed: 9011}},
	{Name: "b12", Synthetic: true, Params: Params{Inputs: 6, FFs: 121, Gates: 900, Outputs: 6, Seed: 9012}},
	{Name: "b13", Synthetic: true, Params: Params{Inputs: 11, FFs: 53, Gates: 290, Outputs: 10, Seed: 9013}},
}

// Names returns the catalog circuit names in evaluation order (the row
// order of the paper's tables).
func Names() []string {
	names := make([]string, len(catalog))
	for i, e := range catalog {
		names[i] = e.Name
	}
	return names
}

// Catalog returns a copy of every catalog entry.
func Catalog() []Entry {
	out := make([]Entry, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup finds a catalog entry by name.
func Lookup(name string) (Entry, bool) {
	for _, e := range catalog {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Load builds the named catalog circuit: the real netlist for s27, a
// deterministic synthetic substitute otherwise.
func Load(name string) (*netlist.Circuit, error) {
	e, ok := Lookup(name)
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("circuits: unknown circuit %q (known: %v)", name, known)
	}
	if !e.Synthetic {
		return bench.ParseString(s27Bench, e.Name)
	}
	e.Params.Name = e.Name
	return Synthesize(e.Params)
}
