package jobs

import (
	"errors"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{Flow: FlowGenerate, Circuits: []string{"s27"}}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		field   string // "" means the spec must be valid
	}{
		{"valid generate", func(s *Spec) {}, ""},
		{"valid translate", func(s *Spec) { s.Flow = FlowTranslate }, ""},
		{"valid simulate sharded", func(s *Spec) {
			s.Flow = FlowSimulate
			s.Partitions = 3
			s.SeqLen = 16
		}, ""},
		{"valid multi chain generate", func(s *Spec) { s.Chains = 4 }, ""},
		{"valid budgets", func(s *Spec) {
			s.TimeoutMS = 1000
			s.MaxAttempts = 5
			s.MaxTrials = 7
			s.StopAfterPolls = 2
		}, ""},
		{"valid compact sharded", func(s *Spec) {
			s.Flow = FlowCompact
			s.SeqLen = 16
			s.OmitShards = 3
		}, ""},
		{"unknown flow", func(s *Spec) { s.Flow = "optimize" }, "flow"},
		{"empty flow", func(s *Spec) { s.Flow = "" }, "flow"},
		{"no circuits", func(s *Spec) { s.Circuits = nil }, "circuits"},
		{"unknown circuit", func(s *Spec) { s.Circuits = []string{"s27", "b17"} }, "circuits"},
		{"negative chains", func(s *Spec) { s.Chains = -1 }, "chains"},
		{"chains on translate", func(s *Spec) { s.Flow = FlowTranslate; s.Chains = 2 }, "chains"},
		{"negative workers", func(s *Spec) { s.Workers = -2 }, "workers"},
		{"bad engine", func(s *Spec) { s.Engine = "turbo" }, "engine"},
		{"negative partitions", func(s *Spec) { s.Flow = FlowSimulate; s.Partitions = -1 }, "partitions"},
		{"partitions on generate", func(s *Spec) { s.Partitions = 2 }, "partitions"},
		{"negative seq_len", func(s *Spec) { s.Flow = FlowSimulate; s.SeqLen = -5 }, "seq_len"},
		{"seq_len on generate", func(s *Spec) { s.SeqLen = 32 }, "seq_len"},
		{"negative omit_shards", func(s *Spec) { s.Flow = FlowCompact; s.OmitShards = -1 }, "omit_shards"},
		{"omit_shards on generate", func(s *Spec) { s.OmitShards = 2 }, "omit_shards"},
		{"oversized omit_shards", func(s *Spec) { s.Flow = FlowCompact; s.OmitShards = 300 }, "omit_shards"},
		{"negative timeout", func(s *Spec) { s.TimeoutMS = -1 }, "timeout_ms"},
		{"negative attempts", func(s *Spec) { s.MaxAttempts = -1 }, "max_attempts"},
		{"negative trials", func(s *Spec) { s.MaxTrials = -1 }, "max_trials"},
		{"negative polls", func(s *Spec) { s.StopAfterPolls = -1 }, "stop_after_polls"},
		{"oversized tenant", func(s *Spec) { s.Tenant = strings.Repeat("x", 65) }, "tenant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := validSpec()
			tc.mutate(&sp)
			err := sp.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *SpecError", err)
			}
			if se.Field != tc.field {
				t.Fatalf("Validate() flagged field %q, want %q (err: %v)", se.Field, tc.field, err)
			}
		})
	}
}

func TestDecodeSpecStrict(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
	}{
		{"valid", `{"flow":"generate","circuits":["s27"]}`, true},
		{"unknown field", `{"flow":"generate","circuits":["s27"],"sharding":2}`, false},
		{"typo'd field", `{"flow":"generate","circuit":["s27"]}`, false},
		{"empty body", ``, false},
		{"malformed", `{"flow":`, false},
		{"trailing data", `{"flow":"generate","circuits":["s27"]}{"x":1}`, false},
		{"invalid after decode", `{"flow":"generate","circuits":[]}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec(strings.NewReader(tc.body))
			if tc.ok && err != nil {
				t.Fatalf("DecodeSpec(%q) = %v, want nil", tc.body, err)
			}
			if !tc.ok {
				var se *SpecError
				if !errors.As(err, &se) {
					t.Fatalf("DecodeSpec(%q) = %v, want *SpecError", tc.body, err)
				}
			}
		})
	}
}

func TestStatusValidate(t *testing.T) {
	base := func() Status {
		return Status{
			ID:    "job-0001",
			Spec:  validSpec(),
			State: StateComplete,
			Tasks: []TaskStatus{{Name: "s27", Done: true}},
		}
	}
	ok := base()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid status rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Status)
	}{
		{"empty id", func(st *Status) { st.ID = "" }},
		{"unknown state", func(st *Status) { st.State = "paused" }},
		{"invalid spec", func(st *Status) { st.Spec.Flow = "nope" }},
		{"no tasks", func(st *Status) { st.Tasks = nil }},
		{"unnamed task", func(st *Status) { st.Tasks[0].Name = "" }},
		{"failed without error", func(st *Status) { st.State = StateFailed }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base()
			tc.mutate(&st)
			var se *SpecError
			if err := st.Validate(); !errors.As(err, &se) {
				t.Fatalf("Validate() = %v, want *SpecError", err)
			}
		})
	}
}
