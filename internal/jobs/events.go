package jobs

import (
	"context"
	"sync"
)

// hub fans one job's JSONL event stream out to any number of API
// watchers. Writes append to an in-memory history (the stream also
// lands in events.jsonl via an io.MultiWriter, so history here is
// bounded by one job's event volume); readers replay the history from
// offset zero and then follow live appends, so a watcher attaching
// mid-run sees the complete stream. The job's recorder runs with
// Sync on, so every line reaches the hub the moment it is recorded.
type hub struct {
	mu      sync.Mutex
	buf     []byte
	changed chan struct{} // closed and replaced on every append/close
	closed  bool
}

func newHub(history []byte) *hub {
	return &hub{buf: append([]byte(nil), history...), changed: make(chan struct{})}
}

// Write implements io.Writer for the recorder's MultiWriter leg.
func (h *hub) Write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.buf = append(h.buf, p...)
		close(h.changed)
		h.changed = make(chan struct{})
	}
	return len(p), nil
}

// close marks the stream complete; followers drain what is buffered and
// return.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.closed {
		h.closed = true
		close(h.changed)
		h.changed = make(chan struct{})
	}
}

// snapshot returns the history appended since off, whether the stream
// is closed, and the channel that signals the next change.
func (h *hub) snapshot(off int) (chunk []byte, closed bool, changed <-chan struct{}) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if off < len(h.buf) {
		chunk = h.buf[off:len(h.buf):len(h.buf)]
	}
	return chunk, h.closed, h.changed
}

// follow streams the history from offset zero to emit, blocking for
// live appends until the hub closes or ctx is done. emit errors
// (client went away) end the follow.
func (h *hub) follow(ctx context.Context, emit func([]byte) error) error {
	off := 0
	for {
		chunk, closed, changed := h.snapshot(off)
		if len(chunk) > 0 {
			if err := emit(chunk); err != nil {
				return err
			}
			off += len(chunk)
			continue
		}
		if closed {
			return nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
