package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/sim"
)

// task is one schedulable unit of a job: a whole circuit run
// (generate/translate flows), one fault shard of a circuit (simulate
// flow), or one stage of a circuit's compaction chain (compact flow:
// the restoration pass, then each omission window chunk). Workers —
// in-process or remote scanworker processes — claim tasks from the
// queue; tasks with no dependency between them carry disjoint work, so
// any number of workers can run one job concurrently, while a compact
// circuit's chain enqueues each link only when its predecessor
// completes.
type task struct {
	job     *job
	idx     int
	circuit string
	shard   sim.FaultRange // simulate flow only

	// chunk is the omission window-chunk index for compact-flow omit
	// tasks; -1 marks every other task (including the restore stage).
	chunk int
	// restoreIdx is the index of the circuit's restore task (compact
	// omit chunks only) — the task whose result carries the restored
	// kept mask.
	restoreIdx int
	// deps lists task indices that must complete before this task may
	// be claimed.
	deps []int
	// retried marks a task re-enqueued in the same leg after its
	// worker's lease expired: the re-run resumes from the reclaimed
	// checkpoint and must not re-fire deterministic-interrupt hooks.
	retried bool
}

// taskResult is the per-task deliverable, persisted as
// task-<idx>.result.json the moment the task completes. Keeping task
// results on disk (not only in memory) makes jobs resumable across
// server restarts: a resume leg re-runs only the unfinished tasks and
// reassembles the rest from these files.
type taskResult struct {
	Status    runctl.Status      `json:"status"`
	Error     string             `json:"error,omitempty"`
	Generate  *core.GenerateRow  `json:"generate,omitempty"`
	Translate *core.TranslateRow `json:"translate,omitempty"`
	// DetectedAt is a simulate shard's detection vector, keyed by
	// position within the shard's fault range.
	DetectedAt []int `json:"detected_at,omitempty"`
	// Faults is the shard's circuit-wide fault-universe size, pinned so
	// result assembly never depends on re-deriving it.
	Faults int `json:"faults,omitempty"`
	// Kept is a compact-flow kept mask over the input sequence: the
	// restore task's restoration mask, or the final omit chunk's fully
	// compacted mask (restoration ∘ omission). Omit chunks read their
	// circuit's restore-task Kept to rebuild the restored sequence.
	Kept string `json:"kept,omitempty"`
	// Compact carries a compact-flow stage's semantic stats.
	Compact *compactTaskStats `json:"compact,omitempty"`
}

// compactTaskStats is the deterministic, scheduling-free part of a
// compaction stage's Stats — what result assembly folds into the job's
// CompactResult rows. Work accounting (Simulations, BatchSteps) stays
// out: chunked runs re-simulate per chunk, so it is the one part of
// Stats that legitimately varies with omit_shards.
type compactTaskStats struct {
	TargetFaults int `json:"target_faults,omitempty"`
	RestoredLen  int `json:"restored_len,omitempty"`
	RestoreExtra int `json:"restore_extra,omitempty"`
	CompactedLen int `json:"compacted_len,omitempty"`
	OmitExtra    int `json:"omit_extra,omitempty"`
}

// job is the server-side state of one submission. All mutable fields
// are guarded by the owning Server's mutex; Spec and the task list are
// immutable after submit.
type job struct {
	srv *Server
	dir string

	status    Status
	tasks     []*task
	pending   int    // enqueued-or-running tasks not yet reported this leg
	enq       []bool // per-task: enqueued at least once this leg
	canceled  bool   // explicit cancel request (vs. budget/drain stop)
	legClosed bool   // no further task of this leg may start
	resumeLeg bool

	ctx    context.Context
	cancel context.CancelFunc

	rec        *obs.Recorder
	eventsFile *os.File
	hub        *hub

	done chan struct{} // closed when the current leg settles
}

func (j *job) eventsPath() string { return filepath.Join(j.dir, "events.jsonl") }
func (j *job) statusPath() string { return filepath.Join(j.dir, "job.json") }
func (j *job) resultPath() string { return filepath.Join(j.dir, "result.json") }
func (j *job) ckptPath(i int) string {
	return filepath.Join(j.dir, fmt.Sprintf("task-%d.ckpt", i))
}
func (j *job) taskResultPath(i int) string {
	return filepath.Join(j.dir, fmt.Sprintf("task-%d.result.json", i))
}

// buildTasks expands a validated spec into its task list: one task per
// circuit, one per (circuit, fault shard) for the simulate flow, or a
// restore-then-omit-chunks chain per circuit for the compact flow.
// Simulate partitioning needs each circuit's fault-universe size, so
// the circuits are instantiated here once, at submit time.
func buildTasks(j *job) error {
	sp := &j.status.Spec
	for _, name := range sp.Circuits {
		switch sp.Flow {
		case FlowSimulate:
			_, faults, err := simWorkload(name, sp)
			if err != nil {
				return err
			}
			for i, r := range sim.PartitionFaults(len(faults), sp.partitions()) {
				taskName := name
				if sp.partitions() > 1 {
					taskName = fmt.Sprintf("%s/shard-%d", name, i)
				}
				j.addTask(taskName, name, r)
			}
		case FlowCompact:
			// The chain: restoration first, then each omission window
			// chunk depending on its predecessor. Chunk k's checkpoint
			// store is seeded from chunk k-1's, so any worker — local or
			// remote — continues the grid exactly where the previous
			// chunk's checkpoint left it.
			ri := j.addTask(name+"/restore", name, sim.FaultRange{}).idx
			prev := ri
			for k := 0; k < sp.omitShards(); k++ {
				t := j.addTask(fmt.Sprintf("%s/omit-%d", name, k), name, sim.FaultRange{})
				t.chunk = k
				t.restoreIdx = ri
				t.deps = []int{prev}
				prev = t.idx
			}
		default:
			j.addTask(name, name, sim.FaultRange{})
		}
	}
	return nil
}

func (j *job) addTask(name, circuit string, r sim.FaultRange) *task {
	t := &task{job: j, idx: len(j.tasks), circuit: circuit, shard: r, chunk: -1}
	j.tasks = append(j.tasks, t)
	j.status.Tasks = append(j.status.Tasks, TaskStatus{Name: name})
	return t
}

// simWorkload instantiates the simulate flow's deterministic inputs for
// one circuit: the scan design and the fault universe — pure functions
// of the spec.
func simWorkload(name string, sp *Spec) (*scan.Circuit, []fault.Fault, error) {
	c, err := circuits.Load(name)
	if err != nil {
		return nil, nil, err
	}
	d, err := scan.Insert(c)
	if err != nil {
		return nil, nil, err
	}
	return d, fault.Universe(d.Scan, !sp.NoCollapse), nil
}

// openLeg starts one execution leg (initial or resume): job context
// with the spec's wall-clock budget, events file in append mode, a
// Sync recorder tee'd into the live hub, and the pending-task count.
// Called with the server lock held.
func (j *job) openLeg(resume bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	if ms := j.status.Spec.TimeoutMS; ms > 0 {
		cancel()
		ctx, cancel = context.WithTimeout(context.Background(), time.Duration(ms)*time.Millisecond)
	}
	j.ctx, j.cancel = ctx, cancel
	j.resumeLeg = resume
	j.canceled = false
	j.legClosed = false
	j.done = make(chan struct{})

	if j.hub == nil {
		history, _ := os.ReadFile(j.eventsPath())
		j.hub = newHub(history)
	} else {
		j.hub.reopen()
	}
	f, err := os.OpenFile(j.eventsPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		cancel()
		return err
	}
	j.eventsFile = f
	j.rec = obs.NewRecorder(io.MultiWriter(f, j.hub), obs.RecorderOptions{
		Program: "scand", Resumed: resume, Sync: true,
	})

	j.pending = 0
	j.enq = make([]bool, len(j.tasks))
	for i := range j.status.Tasks {
		if !j.status.Tasks[i].Done {
			j.status.Tasks[i].Started = false
			j.status.Tasks[i].Status = runctl.Complete
			j.status.Tasks[i].Error = ""
		}
		j.tasks[i].retried = false
	}
	j.status.Finished = ""
	j.status.Error = ""
	j.status.Resumable = false
	j.status.State = StateQueued
	return nil
}

// enqueue pushes every ready unfinished task onto the server queue; a
// task blocked on an unfinished dependency is enqueued later, by its
// predecessor's taskFinished. pending counts only enqueued tasks —
// dependents of a task that stops short of completion are never
// enqueued and never counted, so the leg settles (suspended, resumable)
// the moment every task that could run has reported. Called with the
// server lock held.
func (j *job) enqueue() {
	for i := range j.tasks {
		j.maybeEnqueueLocked(i)
	}
}

// maybeEnqueueLocked pushes task i when it is ready: unfinished, not
// yet enqueued this leg, every dependency complete, and the leg still
// open. Called with the server lock held.
func (j *job) maybeEnqueueLocked(i int) {
	if j.legClosed || j.enq[i] || j.status.Tasks[i].Done {
		return
	}
	for _, d := range j.tasks[i].deps {
		if !j.status.Tasks[d].Done {
			return
		}
	}
	j.enq[i] = true
	j.pending++
	j.srv.q.push(j.tasks[i])
}

// runTask executes one claimed task end to end on a worker goroutine.
func (j *job) runTask(t *task) {
	j.srv.mu.Lock()
	ts := &j.status.Tasks[t.idx]
	if ts.Done || j.legClosed {
		// Already finished in an earlier leg, or the leg was closed by
		// a cancel/drain between enqueue and claim.
		j.srv.mu.Unlock()
		return
	}
	ts.Started = true
	if j.status.State == StateQueued {
		j.status.State = StateRunning
	}
	resume := j.resumeLeg || t.retried
	ctx := j.ctx
	rec := j.rec
	j.persistStatusLocked()
	j.srv.mu.Unlock()

	rec.Event("job", "task_start", obs.F("task", ts.Name))
	sp := &j.status.Spec
	if err := j.seedChunkCheckpoint(t); err != nil {
		j.taskFinished(t.idx, &taskResult{Status: runctl.Failed, Error: "seed checkpoint: " + err.Error()})
		return
	}
	ctl := &runctl.Control{
		Budget: runctl.Budget{
			Ctx:         ctx,
			MaxAttempts: sp.MaxAttempts,
			MaxTrials:   sp.MaxTrials,
		},
		Store: runctl.NewFileStore(j.ckptPath(t.idx)),
		// Compact tasks always resume: their store may hold a
		// predecessor chunk's checkpoint even on the initial leg, and
		// an empty store is simply a fresh start.
		Resume:    resume || sp.Flow == FlowCompact,
		SaveEvery: 8,
	}
	if !resume {
		// The deterministic-interrupt hook fires on the initial leg
		// only (and never on a lease-reclaim re-run); a resumed task
		// must be able to run to completion.
		ctl.Budget.StopAfterPolls = sp.StopAfterPolls
	}
	res := j.execute(t, ctl, rec)

	rec.Event("job", "task_done",
		obs.F("task", ts.Name), obs.F("status", res.Status.String()))
	j.taskFinished(t.idx, res)
}

// execute dispatches a task to its flow, reading the compact flow's
// restoration mask from the job directory first; the flow itself runs
// in executeFlow, the code path remote workers share.
func (j *job) execute(t *task, ctl *runctl.Control, rec obs.Observer) *taskResult {
	sp := &j.status.Spec
	restoredKept := ""
	if sp.Flow == FlowCompact && t.chunk >= 0 {
		// The restored kept mask is in the (completed, by dependency
		// order) restore task's persisted result.
		var rr taskResult
		if err := readJSONFile(j.taskResultPath(t.restoreIdx), &rr); err != nil {
			return &taskResult{Status: runctl.Failed, Error: "restore result: " + err.Error()}
		}
		restoredKept = rr.Kept
	}
	return executeFlow(sp, t.circuit, t.shard, t.chunk, restoredKept, ctl, rec)
}

// executeFlow runs one task from plain inputs, with no job or server
// state: the in-process pool and remote scanworkers both end up here.
func executeFlow(sp *Spec, circuit string, shard sim.FaultRange, chunk int, restoredKept string, ctl *runctl.Control, rec obs.Observer) *taskResult {
	switch sp.Flow {
	case FlowGenerate, FlowTranslate:
		cfg := core.Config{
			Seed:           sp.seed(),
			Collapse:       !sp.NoCollapse,
			Chains:         sp.Chains,
			Workers:        sp.Workers,
			Engine:         sp.engine(),
			Order:          sp.order(),
			SkipBaseline:   sp.SkipBaseline,
			SkipCompaction: sp.SkipCompaction,
			Control:        ctl,
			Obs:            rec,
		}
		if sp.Flow == FlowGenerate {
			row, _, err := core.RunGenerate(circuit, cfg)
			return flowResult(row.Status, err, &taskResult{Generate: &row})
		}
		row, _, err := core.RunTranslate(circuit, cfg)
		return flowResult(row.Status, err, &taskResult{Translate: &row})
	case FlowSimulate:
		d, faults, err := simWorkload(circuit, sp)
		if err != nil {
			return &taskResult{Status: runctl.Failed, Error: err.Error()}
		}
		seq := TestSequence(d, sp.seed(), sp.seqLen())
		s := sim.NewSimulator(d.Scan, sp.Workers)
		s.Observe(rec)
		res := RunShard(s, seq, faults, shard, sim.Options{Control: ctl})
		out := &taskResult{Status: res.Status, DetectedAt: res.DetectedAt, Faults: len(faults)}
		if res.Err != nil {
			out.Error = res.Err.Error()
			out.Status = runctl.Failed
		}
		return out
	case FlowCompact:
		return executeCompact(sp, circuit, chunk, restoredKept, ctl, rec)
	}
	return &taskResult{Status: runctl.Failed, Error: "jobs: unknown flow " + sp.Flow}
}

// seedChunkCheckpoint copies the predecessor omission chunk's
// checkpoint file into an omit task's own store when the task has none
// yet — how chunk k picks up the grid exactly where chunk k-1 stopped.
// A task that already has a checkpoint (its own interrupted or
// reclaimed run) keeps it: it is never older than the predecessor's.
func (j *job) seedChunkCheckpoint(t *task) error {
	if t.chunk <= 0 {
		return nil
	}
	own := j.ckptPath(t.idx)
	if _, err := os.Stat(own); err == nil {
		return nil
	}
	data, err := os.ReadFile(j.ckptPath(t.deps[0]))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	tmp := own + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, own)
}

// flowResult normalizes a core flow's (status, err) pair.
func flowResult(st runctl.Status, err error, res *taskResult) *taskResult {
	res.Status = st
	if err != nil {
		res.Status = runctl.Failed
		res.Error = err.Error()
	}
	return res
}

// taskFinished records one task's outcome, persists it, enqueues any
// dependents the completion unblocked, and settles the job when it was
// the last reporting task of the leg. A stopped task's partial state
// stays in task-<idx>.ckpt for the next resume leg.
func (j *job) taskFinished(idx int, res *taskResult) {
	j.srv.mu.Lock()
	defer j.srv.mu.Unlock()
	j.taskFinishedLocked(idx, res)
}

func (j *job) taskFinishedLocked(idx int, res *taskResult) {
	ts := &j.status.Tasks[idx]
	ts.Status = res.Status
	ts.Error = res.Error
	if res.Status.Done() {
		ts.Done = true
		writeJSONFile(j.taskResultPath(idx), res)
		for _, t := range j.tasks {
			for _, d := range t.deps {
				if d == idx {
					j.maybeEnqueueLocked(t.idx)
				}
			}
		}
	}
	j.pending--
	j.persistStatusLocked()
	if j.pending == 0 {
		j.settleLocked()
	}
}

// closeLeg marks the leg closed (no unclaimed task may start), cancels
// the job context so in-flight tasks checkpoint and stop, and settles
// immediately when nothing is in flight. Used by cancel and drain;
// callers must first make the queued tasks unclaimable (queue removal
// or queue close). Called with the server lock held.
func (j *job) closeLegLocked() {
	if j.status.State.Terminal() || j.legClosed {
		j.legClosed = true
		return
	}
	j.legClosed = true
	j.cancel()
	// Write off enqueued-but-unclaimed tasks (the caller already made
	// them unclaimable) and remotely leased ones: a remote worker gets
	// 410 Gone at its next heartbeat and may never report back, so the
	// leg cannot wait on it. Its checkpoint stays for the next leg.
	unclaimed := 0
	for i := range j.status.Tasks {
		ts := &j.status.Tasks[i]
		if j.enq[i] && !ts.Done && !ts.Started {
			unclaimed++
		}
	}
	j.pending -= unclaimed + j.srv.dropJobLeasesLocked(j)
	if j.pending <= 0 {
		j.pending = 0
		j.settleLocked()
	}
	// Otherwise in-flight local tasks observe the cancellation at their
	// next poll, report via taskFinished, and the last one settles the
	// leg.
}

// settleLocked closes out the current leg once no task remains
// reporting.
func (j *job) settleLocked() {
	allDone, anyFailed := true, false
	firstErr := ""
	for i := range j.status.Tasks {
		ts := &j.status.Tasks[i]
		allDone = allDone && ts.Done
		if ts.Status == runctl.Failed {
			anyFailed = true
			if firstErr == "" {
				firstErr = fmt.Sprintf("task %s: %s", ts.Name, ts.Error)
			}
		}
	}
	switch {
	case anyFailed:
		j.status.State = StateFailed
		j.status.Error = firstErr
	case allDone:
		j.status.State = StateComplete
		if err := j.assembleResultLocked(); err != nil {
			j.status.State = StateFailed
			j.status.Error = "assemble result: " + err.Error()
		}
	case j.canceled:
		j.status.State = StateCanceled
		j.status.Resumable = true
	default:
		j.status.State = StateSuspended
		j.status.Resumable = true
	}
	j.status.Finished = nowRFC3339()
	j.rec.Event("job", "settled", obs.F("state", string(j.status.State)))
	j.rec.Close()
	j.eventsFile.Close()
	j.hub.close()
	j.cancel()
	j.persistStatusLocked()
	close(j.done)
}

// assembleResultLocked builds the deterministic result from the
// persisted per-task results, in spec circuit order, and writes
// result.json. Shard results merge through MergeShard into per-circuit
// detection vectors identical to an unsharded run's.
func (j *job) assembleResultLocked() error {
	sp := &j.status.Spec
	res := Result{Flow: sp.Flow}
	switch sp.Flow {
	case FlowSimulate:
		byCircuit := make(map[string]*SimResult)
		for _, name := range sp.Circuits {
			byCircuit[name] = &SimResult{Circuit: name, SeqLen: sp.seqLen()}
		}
		for i, t := range j.tasks {
			var tr taskResult
			if err := readJSONFile(j.taskResultPath(i), &tr); err != nil {
				return err
			}
			sr := byCircuit[t.circuit]
			if sr.DetectedAt == nil {
				sr.Faults = tr.Faults
				sr.DetectedAt = make([]int, tr.Faults)
			}
			MergeShard(sr.DetectedAt, t.shard, tr.DetectedAt)
		}
		for _, name := range sp.Circuits {
			sr := byCircuit[name]
			for _, at := range sr.DetectedAt {
				if at != sim.NotDetected {
					sr.Detected++
				}
			}
			res.Simulate = append(res.Simulate, *sr)
		}
	case FlowCompact:
		// Per circuit: the restore task's result carries the restoration
		// stats, the final omit chunk's carries the compacted mask and
		// omission stats. Intermediate chunks contribute nothing — their
		// whole output is the checkpoint the next chunk consumed — so
		// the assembled result is independent of omit_shards by
		// construction.
		stride := 1 + sp.omitShards()
		for ci, name := range sp.Circuits {
			var rr, fr taskResult
			if err := readJSONFile(j.taskResultPath(ci*stride), &rr); err != nil {
				return err
			}
			if err := readJSONFile(j.taskResultPath(ci*stride+stride-1), &fr); err != nil {
				return err
			}
			if rr.Compact == nil || fr.Compact == nil {
				return fmt.Errorf("compact results for %s are incomplete", name)
			}
			res.Compact = append(res.Compact, CompactResult{
				Circuit:       name,
				SeqLen:        sp.seqLen(),
				Faults:        rr.Faults,
				TargetFaults:  rr.Compact.TargetFaults,
				RestoredLen:   rr.Compact.RestoredLen,
				CompactedLen:  fr.Compact.CompactedLen,
				ExtraDetected: rr.Compact.RestoreExtra + fr.Compact.OmitExtra,
				Kept:          fr.Kept,
			})
		}
	default:
		for i := range j.tasks {
			var tr taskResult
			if err := readJSONFile(j.taskResultPath(i), &tr); err != nil {
				return err
			}
			if tr.Generate != nil {
				res.Generate = append(res.Generate, *tr.Generate)
			}
			if tr.Translate != nil {
				res.Translate = append(res.Translate, *tr.Translate)
			}
		}
	}
	return writeJSONFile(j.resultPath(), &res)
}

// persistStatusLocked writes job.json atomically (temp + rename), so a
// crash mid-write can never leave a torn record for startup to choke
// on.
func (j *job) persistStatusLocked() {
	writeJSONFile(j.statusPath(), &j.status)
}

// reopen clears a hub's closed mark for a resume leg.
func (h *hub) reopen() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = false
}

// writeJSONFile writes v as indented JSON via temp-file-plus-rename.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readJSONFile decodes one JSON file into v.
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
