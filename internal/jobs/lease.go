package jobs

import (
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/runctl"
)

// The worker-claim protocol lets scanworker processes on other machines
// drain the same queue the in-process pool does. A claim leases one
// task under a TTL; the worker heartbeats to renew, uploading its
// current checkpoint bytes so the server always holds the task's latest
// resumable state. A worker that stops heartbeating — crashed, killed,
// partitioned — loses the lease to the janitor, which re-queues the
// task marked retried: the next claimant (local or remote) resumes from
// the uploaded checkpoint, and because every engine's resume is
// bit-identical, the job's final result is byte-identical to one
// computed without the crash. Late uploads under a reclaimed lease get
// ErrLeaseGone (HTTP 410) and are discarded, so a slow-but-alive worker
// can never double-report a task.

// lease is one remotely claimed task's server-side record.
type lease struct {
	token   string
	worker  string
	t       *task
	expires time.Time
}

// claimRequest is the claim endpoint's body.
type claimRequest struct {
	Worker string `json:"worker"`
}

// leaseUpdate is the heartbeat/release body: optional checkpoint bytes
// (JSON base64) persisted to the task's server-side store.
type leaseUpdate struct {
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// resultUpload is the result endpoint's body.
type resultUpload struct {
	Result     *taskResult `json:"result"`
	Checkpoint []byte      `json:"checkpoint,omitempty"`
}

// Assignment is a leased task's self-contained work order: everything a
// worker with no access to the server's data directory needs to run the
// task and nothing else. Checkpoint carries the task's current
// server-side store (its own interrupted state, or for an omission
// chunk the predecessor chunk's final checkpoint); RestoredKept carries
// the compact flow's restoration mask.
type Assignment struct {
	Lease string `json:"lease"`
	TTLMS int64  `json:"ttl_ms"`
	Job   string `json:"job"`
	Task  int    `json:"task"`
	Name  string `json:"name"`
	Spec  Spec   `json:"spec"`

	Circuit    string `json:"circuit"`
	ShardStart int    `json:"shard_start,omitempty"`
	ShardEnd   int    `json:"shard_end,omitempty"`
	// Chunk is the omission chunk index; -1 for every non-chunk task.
	Chunk        int    `json:"chunk"`
	RestoredKept string `json:"restored_kept,omitempty"`

	Checkpoint []byte `json:"checkpoint,omitempty"`
	Resume     bool   `json:"resume"`
	// StopAfterPolls/TimeoutMS are the task-effective budget values the
	// server would have applied locally (initial-leg interrupt hook;
	// remaining job wall clock).
	StopAfterPolls int64 `json:"stop_after_polls,omitempty"`
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
}

// ClaimTask leases the next claimable task to worker. A nil Assignment
// (and nil error) means the queue has nothing claimable right now.
func (s *Server) ClaimTask(worker string) (*Assignment, error) {
	if worker == "" {
		return nil, &SpecError{Field: "worker", Reason: "empty worker name"}
	}
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		s.mu.Unlock()
		t, ok := s.q.tryPop()
		if !ok {
			return nil, nil
		}
		if a, live := s.leaseTask(worker, t); live {
			return a, nil
		}
		// The claimed task belonged to a closed or finished leg; its
		// quota slot was returned — keep scanning.
	}
}

// leaseTask registers a lease for a popped task and builds its
// Assignment. It reports false (releasing the quota slot) when the task
// is no longer runnable.
func (s *Server) leaseTask(worker string, t *task) (*Assignment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := t.job
	tenant := j.status.Spec.Tenant
	ts := &j.status.Tasks[t.idx]
	if ts.Done || j.legClosed {
		s.q.release(tenant)
		return nil, false
	}
	sp := &j.status.Spec
	a := &Assignment{
		TTLMS:      s.leaseTTL.Milliseconds(),
		Job:        j.status.ID,
		Task:       t.idx,
		Name:       ts.Name,
		Spec:       j.status.clone().Spec,
		Circuit:    t.circuit,
		ShardStart: t.shard.Start,
		ShardEnd:   t.shard.End,
		Chunk:      t.chunk,
	}
	resume := j.resumeLeg || t.retried
	a.Resume = resume || sp.Flow == FlowCompact
	if !resume {
		a.StopAfterPolls = sp.StopAfterPolls
	}
	if deadline, ok := j.ctx.Deadline(); ok {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		a.TimeoutMS = ms
	}
	if err := j.seedChunkCheckpoint(t); err != nil {
		s.q.release(tenant)
		j.taskFinishedLocked(t.idx, &taskResult{Status: runctl.Failed, Error: "seed checkpoint: " + err.Error()})
		return nil, false
	}
	if t.chunk >= 0 {
		var rr taskResult
		if err := readJSONFile(j.taskResultPath(t.restoreIdx), &rr); err != nil {
			s.q.release(tenant)
			j.taskFinishedLocked(t.idx, &taskResult{Status: runctl.Failed, Error: "restore result: " + err.Error()})
			return nil, false
		}
		a.RestoredKept = rr.Kept
	}
	if data, err := os.ReadFile(j.ckptPath(t.idx)); err == nil {
		a.Checkpoint = data
	}
	ts.Started = true
	if j.status.State == StateQueued {
		j.status.State = StateRunning
	}
	s.leaseSeq++
	a.Lease = fmt.Sprintf("lease-%06d", s.leaseSeq)
	s.leases[a.Lease] = &lease{
		token:   a.Lease,
		worker:  worker,
		t:       t,
		expires: s.testNow().Add(s.leaseTTL),
	}
	j.persistStatusLocked()
	j.rec.Event("job", "task_claimed",
		obs.F("task", ts.Name), obs.F("worker", worker), obs.F("lease", a.Lease))
	return a, true
}

// HeartbeatLease renews a lease and persists the worker's uploaded
// checkpoint bytes, returning the TTL the worker should heartbeat
// within. ErrLeaseGone tells the worker the task was reclaimed.
func (s *Server) HeartbeatLease(token string, ckpt []byte) (time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.leases[token]
	if !ok {
		return 0, ErrLeaseGone
	}
	l.expires = s.testNow().Add(s.leaseTTL)
	if len(ckpt) > 0 {
		if err := writeFileAtomic(l.t.job.ckptPath(l.t.idx), ckpt); err != nil {
			return 0, err
		}
	}
	return s.leaseTTL, nil
}

// CompleteLease accepts a leased task's final result (and final
// checkpoint bytes, which the next chunk of a compact chain consumes),
// finishing the task exactly as a local worker would.
func (s *Server) CompleteLease(token string, res *taskResult, ckpt []byte) error {
	s.mu.Lock()
	l, ok := s.leases[token]
	if !ok {
		s.mu.Unlock()
		return ErrLeaseGone
	}
	delete(s.leases, token)
	t := l.t
	j := t.job
	tenant := j.status.Spec.Tenant
	if len(ckpt) > 0 {
		if err := writeFileAtomic(j.ckptPath(t.idx), ckpt); err != nil {
			s.mu.Unlock()
			s.q.release(tenant)
			return err
		}
	}
	j.rec.Event("job", "task_done",
		obs.F("task", j.status.Tasks[t.idx].Name),
		obs.F("status", res.Status.String()), obs.F("worker", l.worker))
	j.taskFinishedLocked(t.idx, res)
	s.mu.Unlock()
	s.q.release(tenant)
	return nil
}

// ReleaseLease hands a leased task back (graceful worker shutdown): the
// uploaded checkpoint is persisted and the task re-queued as retried,
// so the next claimant resumes where this worker stopped.
func (s *Server) ReleaseLease(token string, ckpt []byte) error {
	s.mu.Lock()
	l, ok := s.leases[token]
	if !ok {
		s.mu.Unlock()
		return ErrLeaseGone
	}
	delete(s.leases, token)
	t := l.t
	j := t.job
	tenant := j.status.Spec.Tenant
	if len(ckpt) > 0 {
		if err := writeFileAtomic(j.ckptPath(t.idx), ckpt); err != nil {
			s.mu.Unlock()
			s.q.release(tenant)
			return err
		}
	}
	s.requeueLocked(l, "task_released")
	s.mu.Unlock()
	s.q.release(tenant)
	return nil
}

// requeueLocked returns a dropped lease's task to the queue as retried.
// Called with the server lock held, after the lease is deleted.
func (s *Server) requeueLocked(l *lease, event string) {
	t := l.t
	j := t.job
	ts := &j.status.Tasks[t.idx]
	ts.Started = false
	t.retried = true
	j.rec.Event("job", event,
		obs.F("task", ts.Name), obs.F("worker", l.worker), obs.F("lease", l.token))
	j.persistStatusLocked()
	if !j.legClosed && !ts.Done {
		s.q.push(t)
	}
}

// dropJobLeasesLocked discards every lease of one job (cancel/drain
// closing the leg) and returns how many tasks were written off. Called
// with the server lock held.
func (s *Server) dropJobLeasesLocked(j *job) int {
	n := 0
	for token, l := range s.leases {
		if l.t.job != j {
			continue
		}
		delete(s.leases, token)
		s.q.release(j.status.Spec.Tenant)
		n++
	}
	return n
}

// janitor reclaims expired leases until Drain stops it.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := s.leaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-ticker.C:
			s.reclaimExpired()
		}
	}
}

// reclaimExpired re-queues every task whose lease ran out of heartbeat.
func (s *Server) reclaimExpired() {
	now := s.testNow()
	var tenants []string
	s.mu.Lock()
	for token, l := range s.leases {
		if l.expires.After(now) {
			continue
		}
		delete(s.leases, token)
		s.requeueLocked(l, "task_reclaimed")
		tenants = append(tenants, l.t.job.status.Spec.Tenant)
	}
	s.mu.Unlock()
	for _, tn := range tenants {
		s.q.release(tn)
	}
}

// WorkerInfo is one live lease in the fleet view.
type WorkerInfo struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Job    string `json:"job"`
	Task   string `json:"task"`
	// ExpiresMS is how long until the lease is reclaimed without a
	// heartbeat.
	ExpiresMS int64 `json:"expires_ms"`
}

// WorkersView lists the live leases, newest last — the fleet half of
// `scanctl top`.
func (s *Server) WorkersView() []WorkerInfo {
	now := s.testNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, 0, len(s.leases))
	for _, l := range s.leases {
		out = append(out, WorkerInfo{
			Worker:    l.worker,
			Lease:     l.token,
			Job:       l.t.job.status.ID,
			Task:      l.t.job.status.Tasks[l.t.idx].Name,
			ExpiresMS: l.expires.Sub(now).Milliseconds(),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Lease < out[b].Lease })
	return out
}

// writeFileAtomic writes raw bytes via temp-file-plus-rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
