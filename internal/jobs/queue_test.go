package jobs

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// queueJob builds a detached job with one task per name for queue unit
// tests.
func queueJob(tenant string, prio int, names ...string) *job {
	j := &job{status: Status{Spec: Spec{Tenant: tenant, Priority: prio}}}
	for _, n := range names {
		j.addTask(n, n, sim.FaultRange{})
	}
	return j
}

// tenantTask builds a single detached task under a throwaway job.
func tenantTask(tenant, name string) *task {
	return queueJob(tenant, 0, name).tasks[0]
}

func taskName(t *task) string {
	return t.job.status.Tasks[t.idx].Name
}

func TestQueueTenantFairness(t *testing.T) {
	q := newQueue(0)
	// Tenant A floods three tasks before tenant B submits one; the claim
	// order must interleave B after A's first task, not after A's last.
	q.push(tenantTask("a", "a1"))
	q.push(tenantTask("a", "a2"))
	q.push(tenantTask("a", "a3"))
	q.push(tenantTask("b", "b1"))
	want := []string{"a1", "b1", "a2", "a3"}
	for i, w := range want {
		task, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		if got := taskName(task); got != w {
			t.Fatalf("pop %d = %q, want %q", i, got, w)
		}
	}
}

func TestQueuePerTenantFIFO(t *testing.T) {
	q := newQueue(0)
	q.push(tenantTask("", "t1"))
	q.push(tenantTask("", "t2"))
	q.push(tenantTask("", "t3"))
	for i, w := range []string{"t1", "t2", "t3"} {
		task, _ := q.pop()
		if got := taskName(task); got != w {
			t.Fatalf("pop %d = %q, want %q", i, got, w)
		}
	}
}

func TestQueuePriorityOrdering(t *testing.T) {
	q := newQueue(0)
	low := queueJob("a", 0, "low1", "low2")
	high := queueJob("b", 5, "high1")
	q.push(low.tasks[0])
	q.push(low.tasks[1])
	q.push(high.tasks[0])
	for i, w := range []string{"high1", "low1", "low2"} {
		task, _ := q.pop()
		if got := taskName(task); got != w {
			t.Fatalf("pop %d = %q, want %q", i, got, w)
		}
	}
	if len(q.classes) != 0 {
		t.Fatalf("drained queue kept %d priority classes, want 0", len(q.classes))
	}
}

// TestQueuePruneOnDrain is the regression test for the tenant leak: a
// long-lived server accumulates one-off tenants, and a drained tenant
// must leave no entry behind in the ring, the task map or the class
// list.
func TestQueuePruneOnDrain(t *testing.T) {
	q := newQueue(0)
	for _, tn := range []string{"t1", "t2", "t3"} {
		q.push(tenantTask(tn, tn+"-task"))
	}
	for i := 0; i < 3; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
	}
	if len(q.classes) != 0 {
		t.Fatalf("drained queue kept %d priority classes, want 0", len(q.classes))
	}
	if n := q.queued(); n != 0 {
		t.Fatalf("drained queue reports %d queued tasks, want 0", n)
	}
	// A tenant returning after the prune starts a fresh FIFO.
	q.push(tenantTask("t2", "back"))
	task, _ := q.pop()
	if got := taskName(task); got != "back" {
		t.Fatalf("pop after re-push = %q, want %q", got, "back")
	}
}

// TestQueueRemoveCursorReconcile is the regression test for the cancel
// fairness bug: removing a drained tenant below the claim cursor must
// shift the cursor with the ring, or the tenant whose turn was next
// gets skipped.
func TestQueueRemoveCursorReconcile(t *testing.T) {
	q := newQueue(0)
	ja := queueJob("a", 0, "a1", "a2")
	q.push(ja.tasks[0])
	q.push(ja.tasks[1])
	q.push(tenantTask("b", "b1"))
	q.push(tenantTask("c", "c1"))
	task, _ := q.pop()
	if got := taskName(task); got != "a1" {
		t.Fatalf("pop = %q, want a1", got)
	}
	// Cancel job A: tenant a (ring slot 0, below the cursor) drains.
	if n := q.remove(ja); n != 1 {
		t.Fatalf("remove dropped %d tasks, want 1", n)
	}
	// Tenant b's turn was next and must still be next.
	for i, w := range []string{"b1", "c1"} {
		task, _ := q.pop()
		if got := taskName(task); got != w {
			t.Fatalf("pop %d after remove = %q, want %q", i, got, w)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(0)
	keep := tenantTask("a", "keep")
	drop := queueJob("a", 0, "drop1", "drop2")
	q.push(drop.tasks[0])
	q.push(keep)
	q.push(drop.tasks[1])
	if n := q.remove(drop); n != 2 {
		t.Fatalf("remove dropped %d tasks, want 2", n)
	}
	task, ok := q.pop()
	if !ok || task != keep {
		t.Fatalf("pop after remove = %v, want the kept task", task)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue reported a task")
	}
}

func TestQueueTenantQuota(t *testing.T) {
	q := newQueue(1)
	ja := queueJob("a", 0, "a1", "a2")
	q.push(ja.tasks[0])
	q.push(ja.tasks[1])
	q.push(tenantTask("b", "b1"))
	task, ok := q.tryPop()
	if !ok || taskName(task) != "a1" {
		t.Fatalf("tryPop = %v, want a1", task)
	}
	// Tenant a is at quota; the claim must skip to tenant b.
	task, ok = q.tryPop()
	if !ok || taskName(task) != "b1" {
		t.Fatalf("tryPop with a at quota = %v, want b1", task)
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("tryPop claimed a task for a quota-capped tenant")
	}
	// A blocked pop must wake when the tenant's slot frees.
	got := make(chan string, 1)
	go func() {
		task, _ := q.pop()
		got <- taskName(task)
	}()
	q.release("a")
	select {
	case name := <-got:
		if name != "a2" {
			t.Fatalf("pop after release = %q, want a2", name)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop did not wake after release")
	}
}

// TestQueueRemoveUnderLoad cancels one job while consumers drain the
// queue concurrently: every surviving task must be claimed exactly
// once, every dropped task accounted for, and no consumer may deadlock
// on a stale cursor or an unsignaled condition variable.
func TestQueueRemoveUnderLoad(t *testing.T) {
	const perJob = 40
	q := newQueue(2)
	names := func(prefix string) []string {
		out := make([]string, perJob)
		for i := range out {
			out[i] = prefix
		}
		return out
	}
	keep := queueJob("a", 0, names("keep")...)
	drop := queueJob("b", 0, names("drop")...)
	for i := 0; i < perJob; i++ {
		q.push(keep.tasks[i])
		q.push(drop.tasks[i])
	}
	claimed := make(chan *task, 2*perJob)
	for i := 0; i < 4; i++ {
		go func() {
			for {
				task, ok := q.pop()
				if !ok {
					return
				}
				claimed <- task
				q.release(task.job.status.Spec.Tenant)
			}
		}()
	}
	removed := q.remove(drop)
	seen := make(map[*task]bool)
	keepClaimed, dropClaimed := 0, 0
	deadline := time.After(10 * time.Second)
	for keepClaimed < perJob {
		select {
		case task := <-claimed:
			if seen[task] {
				t.Fatal("task claimed twice")
			}
			seen[task] = true
			if task.job == keep {
				keepClaimed++
			} else {
				dropClaimed++
			}
		case <-deadline:
			t.Fatalf("stalled: %d/%d keep tasks claimed (%d dropped, %d drop-claimed)",
				keepClaimed, perJob, removed, dropClaimed)
		}
	}
	q.close()
	if dropClaimed+removed != perJob {
		t.Fatalf("drop job accounting: %d claimed + %d removed != %d",
			dropClaimed, removed, perJob)
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := newQueue(0)
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("pop returned a task from an empty closed queue")
	}
}
