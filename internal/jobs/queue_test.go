package jobs

import (
	"testing"

	"repro/internal/sim"
)

// tenantTask builds a detached task under a throwaway job for queue
// unit tests.
func tenantTask(tenant, name string) *task {
	j := &job{status: Status{Spec: Spec{Tenant: tenant}}}
	j.addTask(name, name, sim.FaultRange{})
	return j.tasks[0]
}

func TestQueueTenantFairness(t *testing.T) {
	q := newQueue()
	// Tenant A floods three tasks before tenant B submits one; the claim
	// order must interleave B after A's first task, not after A's last.
	q.push(tenantTask("a", "a1"))
	q.push(tenantTask("a", "a2"))
	q.push(tenantTask("a", "a3"))
	q.push(tenantTask("b", "b1"))
	want := []string{"a1", "b1", "a2", "a3"}
	for i, w := range want {
		task, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d: queue closed early", i)
		}
		if got := task.job.status.Tasks[task.idx].Name; got != w {
			t.Fatalf("pop %d = %q, want %q", i, got, w)
		}
	}
}

func TestQueuePerTenantFIFO(t *testing.T) {
	q := newQueue()
	q.push(tenantTask("", "t1"))
	q.push(tenantTask("", "t2"))
	q.push(tenantTask("", "t3"))
	for i, w := range []string{"t1", "t2", "t3"} {
		task, _ := q.pop()
		if got := task.job.status.Tasks[task.idx].Name; got != w {
			t.Fatalf("pop %d = %q, want %q", i, got, w)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue()
	keep := tenantTask("a", "keep")
	drop1 := tenantTask("a", "drop1")
	drop2 := drop1.job // second task of the same job
	drop2.addTask("drop2", "drop2", sim.FaultRange{})
	q.push(drop1)
	q.push(keep)
	q.push(drop2.tasks[1])
	if n := q.remove(drop1.job); n != 2 {
		t.Fatalf("remove dropped %d tasks, want 2", n)
	}
	task, ok := q.pop()
	if !ok || task != keep {
		t.Fatalf("pop after remove = %v, want the kept task", task)
	}
	q.close()
	if _, ok := q.pop(); ok {
		t.Fatal("pop on a closed empty queue reported a task")
	}
}

func TestQueueCloseUnblocksPop(t *testing.T) {
	q := newQueue()
	done := make(chan bool)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("pop returned a task from an empty closed queue")
	}
}
