package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a scand server's HTTP API. The zero value is not
// usable; set Base (e.g. "http://127.0.0.1:8080"). All methods return
// *APIError for non-2xx responses, so callers can branch on the status
// code (404 vs 409 vs 400).
type Client struct {
	// Base is the server's root URL, without a trailing slash.
	Base string
	// HTTP is the underlying client (nil: http.DefaultClient).
	HTTP *http.Client
}

// APIError is a non-2xx API response.
type APIError struct {
	Code    int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("jobs: server returned %d: %s", e.Code, e.Message)
}

// Is maps a 410 response onto ErrLeaseGone so lease-protocol callers
// can use errors.Is across the wire.
func (e *APIError) Is(target error) bool {
	return target == ErrLeaseGone && e.Code == http.StatusGone
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(parts ...string) string {
	return strings.TrimSuffix(c.Base, "/") + "/" + strings.Join(parts, "/")
}

// do issues one request and decodes a 2xx JSON body into out (skipped
// when out is nil). Non-2xx bodies become *APIError.
func (c *Client) do(ctx context.Context, method, url string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func apiError(code int, body []byte) *APIError {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return &APIError{Code: code, Message: e.Error}
	}
	return &APIError{Code: code, Message: strings.TrimSpace(string(body))}
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, sp Spec) (*Status, error) {
	payload, err := json.Marshal(sp)
	if err != nil {
		return nil, err
	}
	var st Status
	if err := c.do(ctx, http.MethodPost, c.url("v1", "jobs"), bytes.NewReader(payload), &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List returns every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]*Status, error) {
	var out []*Status
	if err := c.do(ctx, http.MethodGet, c.url("v1", "jobs"), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Get returns one job's status.
func (c *Client) Get(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodGet, c.url("v1", "jobs", id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job; in-flight tasks checkpoint and stop.
func (c *Client) Cancel(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, c.url("v1", "jobs", id, "cancel"), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Resume re-enqueues a suspended or canceled job from its checkpoints.
func (c *Client) Resume(ctx context.Context, id string) (*Status, error) {
	var st Status
	if err := c.do(ctx, http.MethodPost, c.url("v1", "jobs", id, "resume"), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a completed job's result.json bytes verbatim.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("v1", "jobs", id, "result"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp.StatusCode, data)
	}
	return data, nil
}

// Checkpoints lists a job's checkpoint artifact names.
func (c *Client) Checkpoints(ctx context.Context, id string) ([]string, error) {
	var names []string
	if err := c.do(ctx, http.MethodGet, c.url("v1", "jobs", id, "checkpoints"), nil, &names); err != nil {
		return nil, err
	}
	return names, nil
}

// Checkpoint fetches one checkpoint artifact's bytes.
func (c *Client) Checkpoint(ctx context.Context, id, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("v1", "jobs", id, "checkpoints", name), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp.StatusCode, data)
	}
	return data, nil
}

// Events opens the job's JSONL event stream: history replay, then live
// lines until the job settles. The caller must Close the reader.
func (c *Client) Events(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("v1", "jobs", id, "events"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, apiError(resp.StatusCode, data)
	}
	return resp.Body, nil
}

// Claim leases the next claimable task for worker. A nil Assignment
// with nil error means the queue has nothing claimable right now.
func (c *Client) Claim(ctx context.Context, worker string) (*Assignment, error) {
	payload, err := json.Marshal(claimRequest{Worker: worker})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("v1", "worker", "claim"), bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp.StatusCode, data)
	}
	var a Assignment
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}

// Heartbeat renews a lease, uploading the worker's current checkpoint
// bytes, and returns the TTL to heartbeat within. ErrLeaseGone (via
// errors.Is) means the task was reclaimed.
func (c *Client) Heartbeat(ctx context.Context, token string, ckpt []byte) (time.Duration, error) {
	payload, err := json.Marshal(leaseUpdate{Checkpoint: ckpt})
	if err != nil {
		return 0, err
	}
	var out struct {
		TTLMS int64 `json:"ttl_ms"`
	}
	if err := c.do(ctx, http.MethodPost, c.url("v1", "worker", "claims", token, "heartbeat"), bytes.NewReader(payload), &out); err != nil {
		return 0, err
	}
	return time.Duration(out.TTLMS) * time.Millisecond, nil
}

// CompleteClaim uploads a leased task's result and final checkpoint.
func (c *Client) CompleteClaim(ctx context.Context, token string, res *taskResult, ckpt []byte) error {
	payload, err := json.Marshal(resultUpload{Result: res, Checkpoint: ckpt})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, c.url("v1", "worker", "claims", token, "result"), bytes.NewReader(payload), nil)
}

// ReleaseClaim hands a leased task back (graceful shutdown), uploading
// the checkpoint the next claimant resumes from.
func (c *Client) ReleaseClaim(ctx context.Context, token string, ckpt []byte) error {
	payload, err := json.Marshal(leaseUpdate{Checkpoint: ckpt})
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, c.url("v1", "worker", "claims", token, "release"), bytes.NewReader(payload), nil)
}

// Workers lists the live leases — the fleet half of `scanctl top`.
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var out []WorkerInfo
	if err := c.do(ctx, http.MethodGet, c.url("v1", "workers"), nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Watch streams the job's events to w (nil: discard) until the stream
// closes, then returns the job's settled status. If the event stream
// drops early (server restart mid-follow), Watch falls back to polling
// the status until the job reaches a terminal state or ctx is done.
func (c *Client) Watch(ctx context.Context, id string, w io.Writer) (*Status, error) {
	if w == nil {
		w = io.Discard
	}
	if body, err := c.Events(ctx, id); err == nil {
		_, copyErr := io.Copy(w, body)
		body.Close()
		_ = copyErr
	}
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
