// Package jobs is the ATPG job service layer behind cmd/scand: a work
// queue that shards flow runs across circuits and across Slots-aligned
// fault partitions, an HTTP/JSON API over it, and a client for
// cmd/scanctl. Jobs are budgeted and checkpointed through
// internal/runctl, observed through a per-job internal/obs flight
// recorder whose JSONL stream is both persisted and live-streamed to
// API watchers, and every partial state is resumable: a job canceled,
// drained or killed mid-run continues from its checkpoints to output
// bit-identical to an uninterrupted run.
//
// Sharding is correctness-preserving by construction: fault partitions
// come from sim.PartitionFaults, whose Slots-aligned ranges re-batch
// under Simulator.RunSubset into exactly the batches an unpartitioned
// run would form, and batches only share the fault-free trace — so the
// merge of per-shard DetectedAt ranges is bit-identical to one
// single-process run at any worker count. internal/xcheck pins this as
// the jobs/partition-merge invariant against ShardedDetect, the same
// helper the server's shard tasks run.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuits"
	"repro/internal/compact"
)

// Flow names accepted by Spec.Flow.
const (
	FlowGenerate = "generate" // the paper's generation flow (core.RunGenerate)
	FlowTranslate = "translate" // the translation flow (core.RunTranslate)
	FlowSimulate = "simulate" // sharded fault simulation of a seeded sequence
	FlowCompact = "compact" // restoration + chunked omission of a seeded sequence
)

// Spec is a job submission: which flow to run, over which circuits,
// under what budget. The zero value of every optional field means "the
// default"; Validate rejects structurally invalid specs with typed
// *SpecError values, and DecodeSpec additionally rejects unknown JSON
// fields so that a typo in a client request fails loudly with a 400
// instead of silently running a different job.
type Spec struct {
	// Flow selects the pipeline: FlowGenerate, FlowTranslate or
	// FlowSimulate.
	Flow string `json:"flow"`
	// Circuits lists catalog circuits; the job runs one task per
	// circuit (per shard for FlowSimulate), all claimable by different
	// workers.
	Circuits []string `json:"circuits"`
	// Seed drives every random choice; identical specs reproduce
	// identical results. 0 means seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// NoCollapse disables structural fault collapsing.
	NoCollapse bool `json:"no_collapse,omitempty"`
	// Chains selects the scan-chain count for FlowGenerate (0/1 = the
	// paper's single chain). Other flows are single-chain only.
	Chains int `json:"chains,omitempty"`
	// Workers is the per-task fault-simulation worker count
	// (0 = GOMAXPROCS). Results are identical for every value.
	Workers int `json:"workers,omitempty"`
	// Engine selects the compaction trial engine: "", "auto",
	// "incremental" or "scratch" (output identical).
	Engine string `json:"engine,omitempty"`
	// AdiOrder restores faults in increasing accidental-detection-index
	// order (changes the compacted output, deterministically).
	AdiOrder bool `json:"adi_order,omitempty"`
	// SkipBaseline / SkipCompaction trim the generate flow.
	SkipBaseline   bool `json:"skip_baseline,omitempty"`
	SkipCompaction bool `json:"skip_compaction,omitempty"`
	// Partitions splits each FlowSimulate circuit's fault universe into
	// this many Slots-aligned shards, one task each, so several workers
	// can run one circuit concurrently (0/1 = unsharded). The merged
	// result is bit-identical for every value.
	Partitions int `json:"partitions,omitempty"`
	// SeqLen is the FlowSimulate/FlowCompact sequence length (0 = 128
	// vectors). The sequence is a pure function of (circuit, seed,
	// seq_len).
	SeqLen int `json:"seq_len,omitempty"`
	// OmitShards splits each FlowCompact circuit's omission pass into
	// this many chained window chunks, claimable by different workers as
	// predecessors finish (0/1 = one omission task). The compacted
	// result is bit-identical for every value.
	OmitShards int `json:"omit_shards,omitempty"`
	// Priority orders jobs across tenants: all claimable tasks of a
	// higher priority run before any lower one; within a priority the
	// queue stays tenant-fair. 0 is the default class; negative values
	// mark background work.
	Priority int `json:"priority,omitempty"`
	// TimeoutMS, when positive, bounds the whole job's wall clock; on
	// expiry in-flight tasks checkpoint and the job suspends resumable.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxAttempts / MaxTrials cap each task's generation attempts and
	// compaction trials (see runctl.Budget; enforced per task).
	MaxAttempts int64 `json:"max_attempts,omitempty"`
	MaxTrials   int64 `json:"max_trials,omitempty"`
	// StopAfterPolls injects a deterministic stop at the n-th run-control
	// poll of each task — the correctness harness's reproducible stand-in
	// for a mid-run cancel (see runctl.Budget.StopAfterPolls).
	StopAfterPolls int64 `json:"stop_after_polls,omitempty"`
	// Tenant groups jobs for fair scheduling: the queue round-robins
	// across tenants, so one tenant's job flood cannot starve another's
	// single job. Empty is the anonymous tenant.
	Tenant string `json:"tenant,omitempty"`
}

// SpecError reports one invalid Spec or Status field. The HTTP layer
// maps it to a 400 with the field named in the body.
type SpecError struct {
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("jobs: invalid %s: %s", e.Field, e.Reason)
}

// specErrf builds a *SpecError.
func specErrf(field, format string, args ...any) error {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// validFlows in display order for error messages.
var validFlows = []string{FlowGenerate, FlowTranslate, FlowSimulate, FlowCompact}

// Validate checks the spec structurally: known flow, known circuits,
// parseable engine, non-negative budgets, and flow-specific fields only
// on the flow that honors them (a shard count on a generate job is a
// mistake, not a default). Every failure is a *SpecError.
func (s *Spec) Validate() error {
	flowOK := false
	for _, f := range validFlows {
		flowOK = flowOK || s.Flow == f
	}
	if !flowOK {
		return specErrf("flow", "%q (want %s)", s.Flow, strings.Join(validFlows, ", "))
	}
	if len(s.Circuits) == 0 {
		return specErrf("circuits", "at least one catalog circuit is required")
	}
	for _, name := range s.Circuits {
		if _, ok := circuits.Lookup(name); !ok {
			return specErrf("circuits", "unknown circuit %q", name)
		}
	}
	if s.Chains < 0 {
		return specErrf("chains", "must be non-negative")
	}
	if s.Chains > 1 && s.Flow != FlowGenerate {
		return specErrf("chains", "multiple scan chains apply to the generate flow only")
	}
	if s.Workers < 0 {
		return specErrf("workers", "must be non-negative")
	}
	if _, err := compact.ParseEngine(s.Engine); err != nil {
		return specErrf("engine", "%q (want auto, incremental or scratch)", s.Engine)
	}
	if s.Partitions < 0 {
		return specErrf("partitions", "must be non-negative")
	}
	if s.Partitions > 1 && s.Flow != FlowSimulate {
		return specErrf("partitions", "fault partitioning applies to the simulate flow only")
	}
	if s.SeqLen < 0 {
		return specErrf("seq_len", "must be non-negative")
	}
	if s.SeqLen > 0 && s.Flow != FlowSimulate && s.Flow != FlowCompact {
		return specErrf("seq_len", "applies to the simulate and compact flows only")
	}
	if s.OmitShards < 0 {
		return specErrf("omit_shards", "must be non-negative")
	}
	if s.OmitShards > 1 && s.Flow != FlowCompact {
		return specErrf("omit_shards", "omission sharding applies to the compact flow only")
	}
	if s.OmitShards > 256 {
		return specErrf("omit_shards", "more than 256 shards")
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"timeout_ms", s.TimeoutMS},
		{"max_attempts", s.MaxAttempts},
		{"max_trials", s.MaxTrials},
		{"stop_after_polls", s.StopAfterPolls},
	} {
		if f.v < 0 {
			return specErrf(f.name, "must be non-negative")
		}
	}
	if len(s.Tenant) > 64 {
		return specErrf("tenant", "longer than 64 bytes")
	}
	return nil
}

// DecodeSpec decodes one JSON spec from r strictly: unknown fields,
// malformed JSON and trailing garbage are all *SpecError, and the
// decoded spec is validated. This is the only decode path the server
// accepts submissions through.
func DecodeSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, &SpecError{Field: "body", Reason: decodeReason(err)}
	}
	if dec.More() {
		return Spec{}, &SpecError{Field: "body", Reason: "trailing data after the spec object"}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// decodeReason phrases a json decode error for a 400 body.
func decodeReason(err error) string {
	if errors.Is(err, io.EOF) {
		return "empty body"
	}
	return err.Error()
}

// seed returns the effective seed (0 defaults to 1, matching the CLIs).
func (s *Spec) seed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// seqLen returns the effective simulate-flow sequence length.
func (s *Spec) seqLen() int {
	if s.SeqLen <= 0 {
		return 128
	}
	return s.SeqLen
}

// partitions returns the effective shard count.
func (s *Spec) partitions() int {
	if s.Partitions <= 0 {
		return 1
	}
	return s.Partitions
}

// omitShards returns the effective omission chunk count.
func (s *Spec) omitShards() int {
	if s.OmitShards <= 0 {
		return 1
	}
	return s.OmitShards
}

// engine parses the validated engine name.
func (s *Spec) engine() compact.Engine {
	e, _ := compact.ParseEngine(s.Engine)
	return e
}

// order returns the restoration order the spec selects.
func (s *Spec) order() compact.Order {
	if s.AdiOrder {
		return compact.OrderADI
	}
	return compact.OrderDetection
}
