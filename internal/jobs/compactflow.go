package jobs

import (
	"fmt"

	"repro/internal/compact"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// executeCompact runs one compact-flow task — the restoration stage
// (chunk < 0) or one omission window chunk — from plain inputs: spec,
// circuit name, the restore stage's kept mask (chunk tasks), and a
// Control wired to the task's checkpoint store. Nothing server-side is
// touched, so the in-process worker pool and a remote scanworker run
// the identical code path; everything that distinguishes the callers
// (where the store lives, how the result travels) stays outside.
func executeCompact(sp *Spec, circuit string, chunk int, restoredKept string, ctl *runctl.Control, rec obs.Observer) *taskResult {
	d, faults, err := simWorkload(circuit, sp)
	if err != nil {
		return &taskResult{Status: runctl.Failed, Error: err.Error()}
	}
	seq := TestSequence(d, sp.seed(), sp.seqLen())
	s := sim.NewSimulator(d.Scan, sp.Workers)
	s.Observe(rec)
	opts := compact.Options{
		Sim:     s,
		Engine:  sp.engine(),
		Order:   sp.order(),
		Control: ctl,
		Obs:     rec,
	}
	ctl.Resume = true

	if chunk < 0 {
		restored, rst := compact.RestoreOpts(d.Scan, seq, faults, opts)
		res := &taskResult{Status: rst.Status, Faults: len(faults)}
		if rst.Status == runctl.Failed {
			res.Error = statsError(rst)
			return res
		}
		if !rst.Status.Done() {
			return res
		}
		st, ok, err := compact.LoadRestoreState(ctl.Store, len(seq), len(faults), sp.order())
		if err != nil || !ok {
			res.Status = runctl.Failed
			res.Error = fmt.Sprintf("restore checkpoint readback: ok=%v err=%v", ok, err)
			return res
		}
		res.Kept = st.Kept
		res.Compact = &compactTaskStats{
			TargetFaults: rst.TargetFaults,
			RestoredLen:  len(restored),
			RestoreExtra: rst.ExtraDetected,
		}
		return res
	}

	restored, err := compact.ApplyMask(seq, restoredKept)
	if err != nil {
		return &taskResult{Status: runctl.Failed, Error: err.Error()}
	}
	chunks := sp.omitShards()
	out, ost, chunkDone, err := compact.OmitChunkOpts(d.Scan, restored, faults, opts, chunk, chunks)
	if err != nil {
		return &taskResult{Status: runctl.Failed, Error: err.Error()}
	}
	if !chunkDone {
		// Stopped short of the chunk's window share by the job's own
		// budget, a cancel or a drain; the checkpoint has the boundary.
		return &taskResult{Status: ost.Status, Error: statsError(ost)}
	}
	if chunk < chunks-1 {
		// An intermediate chunk's entire deliverable is its checkpoint;
		// the task completes even though the pass's Status is a budget
		// stop by construction.
		return &taskResult{Status: runctl.Complete}
	}
	st, ok, err := compact.LoadOmitState(ctl.Store, len(restored), len(faults))
	if err != nil || !ok {
		return &taskResult{Status: runctl.Failed,
			Error: fmt.Sprintf("omit checkpoint readback: ok=%v err=%v", ok, err)}
	}
	kept, err := compact.ComposeKept(restoredKept, st.Kept)
	if err != nil {
		return &taskResult{Status: runctl.Failed, Error: err.Error()}
	}
	return &taskResult{
		Status: ost.Status,
		Faults: len(faults),
		Kept:   kept,
		Compact: &compactTaskStats{
			CompactedLen: len(out),
			OmitExtra:    ost.ExtraDetected,
		},
	}
}

// statsError extracts a pass's error text, empty when none.
func statsError(st compact.Stats) string {
	if st.Err != nil {
		return st.Err.Error()
	}
	return ""
}
