package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/runctl"
	"repro/internal/sim"
)

// WorkerOptions configures a remote worker process.
type WorkerOptions struct {
	// Server is the scand base URL, e.g. "http://10.0.0.5:8080".
	Server string
	// Name identifies the worker in leases, events and `scanctl top`.
	Name string
	// DataDir holds the worker's local checkpoint scratch files.
	DataDir string
	// Poll is the idle claim interval (0: 250ms).
	Poll time.Duration
	// HTTP overrides the HTTP client (tests).
	HTTP *http.Client
	// Logf, when set, receives the worker's progress log.
	Logf func(format string, args ...any)
}

// Worker is the claim side of the lease protocol: the engine behind
// cmd/scanworker. It polls the server's claim endpoint, runs each
// leased task through the exact executeFlow path the server's
// in-process pool uses, heartbeats the lease with its current
// checkpoint bytes so a crash loses no more than one heartbeat interval
// of work, and uploads the result. On a 410 (lease reclaimed) it
// abandons the task; on shutdown it checkpoints and releases the task
// back to the queue.
type Worker struct {
	opts   WorkerOptions
	client *Client
	logf   func(string, ...any)
}

// NewWorker builds a Worker.
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Server == "" {
		return nil, errors.New("jobs: WorkerOptions.Server is required")
	}
	if opts.Name == "" {
		return nil, errors.New("jobs: WorkerOptions.Name is required")
	}
	if opts.DataDir == "" {
		return nil, errors.New("jobs: WorkerOptions.DataDir is required")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	if opts.Poll <= 0 {
		opts.Poll = 250 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Worker{
		opts:   opts,
		client: &Client{Base: opts.Server, HTTP: opts.HTTP},
		logf:   logf,
	}, nil
}

// Run claims and executes tasks until ctx is canceled. A task in flight
// at cancellation checkpoints, releases its lease and returns to the
// queue; Run then returns nil.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		a, err := w.client.Claim(ctx, w.opts.Name)
		switch {
		case err != nil:
			// Draining server, network blip: back off and retry.
			w.logf("claim: %v", err)
			if !sleepCtx(ctx, w.opts.Poll) {
				return nil
			}
		case a == nil:
			if !sleepCtx(ctx, w.opts.Poll) {
				return nil
			}
		default:
			w.runAssignment(ctx, a)
		}
	}
}

// RunOne claims and executes at most one task, reporting whether one
// was available — the single-step mode tests and batch scripts use.
func (w *Worker) RunOne(ctx context.Context) (bool, error) {
	a, err := w.client.Claim(ctx, w.opts.Name)
	if err != nil || a == nil {
		return false, err
	}
	w.runAssignment(ctx, a)
	return true, nil
}

func (w *Worker) ckptPath(a *Assignment) string {
	return filepath.Join(w.opts.DataDir, fmt.Sprintf("%s-task-%d.ckpt", a.Job, a.Task))
}

// runAssignment executes one leased task end to end.
func (w *Worker) runAssignment(ctx context.Context, a *Assignment) {
	w.logf("claimed %s %s (lease %s)", a.Job, a.Name, a.Lease)
	path := w.ckptPath(a)
	defer os.Remove(path)
	os.Remove(path)
	if len(a.Checkpoint) > 0 {
		if err := writeFileAtomic(path, a.Checkpoint); err != nil {
			w.logf("seed checkpoint: %v", err)
			w.client.ReleaseClaim(context.Background(), a.Lease, nil)
			return
		}
	}

	// The task context: canceled by worker shutdown, by lease loss, or
	// by the job's remaining wall-clock budget.
	taskCtx, cancel := context.WithCancel(ctx)
	if a.TimeoutMS > 0 {
		cancel()
		taskCtx, cancel = context.WithTimeout(ctx, time.Duration(a.TimeoutMS)*time.Millisecond)
	}
	defer cancel()

	// Heartbeat until the task finishes, uploading the current
	// checkpoint so the server can reclaim mid-task progress. A 410
	// means the lease was reclaimed: stop working, the task is someone
	// else's now.
	var gone bool
	var mu sync.Mutex
	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		interval := time.Duration(a.TTLMS) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-ticker.C:
				ckpt, _ := os.ReadFile(path)
				if _, err := w.client.Heartbeat(context.Background(), a.Lease, ckpt); err != nil {
					if errors.Is(err, ErrLeaseGone) {
						mu.Lock()
						gone = true
						mu.Unlock()
						cancel()
						return
					}
					w.logf("heartbeat: %v", err)
				}
			}
		}
	}()

	ctl := &runctl.Control{
		Budget: runctl.Budget{
			Ctx:            taskCtx,
			MaxAttempts:    a.Spec.MaxAttempts,
			MaxTrials:      a.Spec.MaxTrials,
			StopAfterPolls: a.StopAfterPolls,
		},
		Store:     runctl.NewFileStore(path),
		Resume:    a.Resume,
		SaveEvery: 8,
	}
	res := executeFlow(&a.Spec, a.Circuit,
		sim.FaultRange{Start: a.ShardStart, End: a.ShardEnd},
		a.Chunk, a.RestoredKept, ctl, nil)
	close(hbStop)
	hbDone.Wait()

	mu.Lock()
	abandoned := gone
	mu.Unlock()
	if abandoned {
		w.logf("lease %s reclaimed; abandoning %s %s", a.Lease, a.Job, a.Name)
		return
	}
	ckpt, _ := os.ReadFile(path)
	if ctx.Err() != nil && res.Status.Stopped() {
		// Shutdown: hand the task back with its checkpoint so another
		// worker continues instead of the job suspending.
		if err := w.client.ReleaseClaim(context.Background(), a.Lease, ckpt); err != nil && !errors.Is(err, ErrLeaseGone) {
			w.logf("release: %v", err)
		}
		w.logf("released %s %s", a.Job, a.Name)
		return
	}
	if err := w.client.CompleteClaim(context.Background(), a.Lease, res, ckpt); err != nil {
		if errors.Is(err, ErrLeaseGone) {
			w.logf("lease %s gone at upload; result discarded", a.Lease)
			return
		}
		w.logf("result upload: %v", err)
		return
	}
	w.logf("finished %s %s: %s", a.Job, a.Name, res.Status)
}

// sleepCtx sleeps d or until ctx cancels, reporting false on cancel.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
