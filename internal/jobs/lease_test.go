package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runctl"
	"repro/internal/sim"
)

// TestServerCompactFlow: a compact job completes with per-circuit
// restoration and omission results, and splitting the omission grid
// across chunks (omit_shards) and workers returns result bytes
// identical to the unsharded single-worker job.
func TestServerCompactFlow(t *testing.T) {
	spec := Spec{Flow: FlowCompact, Circuits: []string{"s27"}, Seed: 5, SeqLen: 96}

	_, single := testServer(t, Options{Workers: 1})
	unsharded := completeJob(t, single, spec)

	var res Result
	if err := json.Unmarshal(unsharded, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Compact) != 1 || res.Compact[0].Circuit != "s27" {
		t.Fatalf("compact results = %+v", res.Compact)
	}
	cr := res.Compact[0]
	if cr.CompactedLen <= 0 || cr.CompactedLen > cr.RestoredLen || cr.RestoredLen > cr.SeqLen {
		t.Fatalf("compaction lengths out of order: %+v", cr)
	}
	if len(cr.Kept) != cr.SeqLen {
		t.Fatalf("kept mask length %d, want %d", len(cr.Kept), cr.SeqLen)
	}
	kept := 0
	for i := 0; i < len(cr.Kept); i++ {
		if cr.Kept[i] == '1' {
			kept++
		}
	}
	if kept != cr.CompactedLen {
		t.Fatalf("kept mask keeps %d vectors, result says %d", kept, cr.CompactedLen)
	}

	sharded := spec
	sharded.OmitShards = 3
	_, multi := testServer(t, Options{Workers: 2})
	got := completeJob(t, multi, sharded)
	if !bytes.Equal(got, unsharded) {
		t.Fatalf("sharded compact result differs from unsharded:\n--- sharded ---\n%s\n--- unsharded ---\n%s", got, unsharded)
	}
}

// TestWorkerClaimProtocol: a server with no local workers is drained
// entirely by a remote Worker over HTTP, producing result bytes
// identical to a local single-worker server.
func TestWorkerClaimProtocol(t *testing.T) {
	spec := Spec{Flow: FlowGenerate, Circuits: []string{"s27"}, Seed: 3}

	_, local := testServer(t, Options{Workers: 1})
	want := completeJob(t, local, spec)

	s, c := testServer(t, Options{Workers: -1})
	if n := s.Workers(); n != 0 {
		t.Fatalf("remote-only server has %d local workers", n)
	}
	st, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerOptions{
		Server:  c.Base,
		Name:    "w1",
		DataDir: t.TempDir(),
		Poll:    10 * time.Millisecond,
		HTTP:    c.HTTP,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	final := waitTerminal(t, c, st.ID)
	cancel()
	<-done
	if final.State != StateComplete {
		t.Fatalf("job settled %s (error %q)", final.State, final.Error)
	}
	got, err := c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote-worker result differs from local:\n--- remote ---\n%s\n--- local ---\n%s", got, want)
	}
}

// TestLeaseLifecycle drives the claim API directly: a claim shows up in
// the workers view, heartbeats renew it, completion consumes it, and
// every later touch of the token gets ErrLeaseGone (HTTP 410 over the
// wire).
func TestLeaseLifecycle(t *testing.T) {
	s, c := testServer(t, Options{Workers: -1})
	ctx := context.Background()
	if _, err := c.Submit(ctx, Spec{Flow: FlowGenerate, Circuits: []string{"s27"}, Seed: 3}); err != nil {
		t.Fatal(err)
	}

	a, err := c.Claim(ctx, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || a.Name != "s27" || a.TTLMS <= 0 {
		t.Fatalf("claim = %+v", a)
	}
	workers, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0].Worker != "manual" || workers[0].Lease != a.Lease {
		t.Fatalf("workers view = %+v", workers)
	}
	if _, err := c.Heartbeat(ctx, a.Lease, []byte(`{"probe":1}`)); err != nil {
		t.Fatal(err)
	}
	// Nothing else is claimable while the only task is leased.
	if extra, err := c.Claim(ctx, "manual2"); err != nil || extra != nil {
		t.Fatalf("second claim = %+v, %v", extra, err)
	}

	// Run the task for real and upload the result.
	path := filepath.Join(t.TempDir(), "manual.ckpt")
	ctl := &runctl.Control{
		Budget: runctl.Budget{StopAfterPolls: a.StopAfterPolls},
		Store:  runctl.NewFileStore(path), Resume: a.Resume, SaveEvery: 8,
	}
	res := executeFlow(&a.Spec, a.Circuit, sim.FaultRange{Start: a.ShardStart, End: a.ShardEnd},
		a.Chunk, a.RestoredKept, ctl, nil)
	ckpt, _ := os.ReadFile(path)
	if err := c.CompleteClaim(ctx, a.Lease, res, ckpt); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Heartbeat(ctx, a.Lease, nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after completion = %v, want ErrLeaseGone", err)
	}
	if err := c.ReleaseClaim(ctx, a.Lease, nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("release after completion = %v, want ErrLeaseGone", err)
	}
	if err := c.CompleteClaim(ctx, a.Lease, res, nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("double completion = %v, want ErrLeaseGone", err)
	}
	_ = s
}

// TestLeaseReclaimCrashResume is the acceptance scenario: a worker
// claims a compaction chunk, checkpoints partway through its window
// share via heartbeat, then dies without releasing. The janitor
// reclaims the expired lease, a healthy worker resumes the chunk from
// the uploaded checkpoint, and the job's final result bytes are
// identical to an uninterrupted single-process run.
func TestLeaseReclaimCrashResume(t *testing.T) {
	spec := Spec{Flow: FlowCompact, Circuits: []string{"s27"}, Seed: 5, SeqLen: 96, OmitShards: 2}

	_, single := testServer(t, Options{Workers: 1})
	want := completeJob(t, single, spec)

	s, c := testServer(t, Options{Workers: -1, LeaseTTL: time.Minute})
	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: act as a healthy worker for the restore stage.
	a, err := c.Claim(ctx, "crashy")
	if err != nil || a == nil {
		t.Fatalf("claim restore: %+v, %v", a, err)
	}
	if a.Name != "s27/restore" {
		t.Fatalf("first claim = %q, want s27/restore", a.Name)
	}
	dir := t.TempDir()
	runTask := func(a *Assignment, polls int64) (*taskResult, []byte) {
		path := filepath.Join(dir, a.Name[strings.LastIndexByte(a.Name, '/')+1:]+".ckpt")
		os.Remove(path)
		if len(a.Checkpoint) > 0 {
			if err := os.WriteFile(path, a.Checkpoint, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		ctl := &runctl.Control{
			Budget: runctl.Budget{StopAfterPolls: polls},
			Store:  runctl.NewFileStore(path), Resume: a.Resume, SaveEvery: 1,
		}
		res := executeFlow(&a.Spec, a.Circuit, sim.FaultRange{Start: a.ShardStart, End: a.ShardEnd},
			a.Chunk, a.RestoredKept, ctl, nil)
		ckpt, _ := os.ReadFile(path)
		return res, ckpt
	}
	res, ckpt := runTask(a, 0)
	if res.Status != runctl.Complete {
		t.Fatalf("restore stage status %v (error %q)", res.Status, res.Error)
	}
	if err := c.CompleteClaim(ctx, a.Lease, res, ckpt); err != nil {
		t.Fatal(err)
	}

	// Phase 2: claim the first omission chunk, stop after a couple of
	// polls (mid-share), heartbeat the partial checkpoint — then crash:
	// no release, no further heartbeats.
	a, err = c.Claim(ctx, "crashy")
	if err != nil || a == nil {
		t.Fatalf("claim omit chunk: %+v, %v", a, err)
	}
	if a.Name != "s27/omit-0" || a.Chunk != 0 {
		t.Fatalf("second claim = %q chunk %d, want s27/omit-0", a.Name, a.Chunk)
	}
	if a.RestoredKept == "" {
		t.Fatal("omit chunk assignment lacks the restored kept mask")
	}
	res, ckpt = runTask(a, 2)
	if !res.Status.Stopped() && res.Status != runctl.Complete {
		t.Fatalf("interrupted chunk status %v", res.Status)
	}
	if _, err := c.Heartbeat(ctx, a.Lease, ckpt); err != nil {
		t.Fatal(err)
	}

	// The janitor reclaims the dead worker's lease once it expires;
	// jump the server's clock past the TTL instead of waiting a minute.
	s.mu.Lock()
	s.testNow = func() time.Time { return time.Now().Add(2 * time.Minute) }
	s.mu.Unlock()
	s.reclaimExpired()
	if workers, err := c.Workers(ctx); err != nil || len(workers) != 0 {
		t.Fatalf("leases after reclaim = %+v, %v", workers, err)
	}
	// Late work from the dead worker is refused.
	if _, err := c.Heartbeat(ctx, a.Lease, ckpt); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after reclaim = %v, want ErrLeaseGone", err)
	}
	if err := c.CompleteClaim(ctx, a.Lease, res, ckpt); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("upload after reclaim = %v, want ErrLeaseGone", err)
	}
	s.mu.Lock()
	s.testNow = time.Now
	s.mu.Unlock()

	// Phase 3: a healthy worker drains the rest — the reclaimed chunk
	// resumes from the heartbeated checkpoint.
	w, err := NewWorker(WorkerOptions{
		Server: c.Base, Name: "healthy", DataDir: t.TempDir(),
		Poll: 10 * time.Millisecond, HTTP: c.HTTP, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(wctx) }()
	final := waitTerminal(t, c, st.ID)
	cancel()
	<-done
	if final.State != StateComplete {
		t.Fatalf("job settled %s (error %q)", final.State, final.Error)
	}

	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-crash result differs from uninterrupted run:\n--- crashed ---\n%s\n--- reference ---\n%s", got, want)
	}

	// The event stream records the reclaim.
	body, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	events, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(events, []byte("task_reclaimed")) {
		t.Fatalf("event stream lacks task_reclaimed:\n%s", events)
	}
}

// TestWorkerGracefulRelease: canceling a Worker mid-task releases the
// lease with a checkpoint instead of finishing it, and the task stays
// claimable for the next worker.
func TestWorkerGracefulRelease(t *testing.T) {
	s, c := testServer(t, Options{Workers: -1})
	ctx := context.Background()
	st, err := c.Submit(ctx, Spec{Flow: FlowCompact, Circuits: []string{"s27"}, Seed: 5, SeqLen: 96})
	if err != nil {
		t.Fatal(err)
	}

	// A worker canceled mid-task: the engine stops at its next poll and
	// the assignment is released with a checkpoint, not completed.
	w, err := NewWorker(WorkerOptions{
		Server: c.Base, Name: "leaving", DataDir: t.TempDir(),
		HTTP: c.HTTP, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Claim(ctx, "leaving")
	if err != nil || a == nil {
		t.Fatalf("claim = %+v, %v", a, err)
	}
	wctx, cancel := context.WithCancel(ctx)
	cancel()
	w.runAssignment(wctx, a)
	if workers, _ := c.Workers(ctx); len(workers) != 0 {
		t.Fatalf("lease still live after release: %+v", workers)
	}
	after, err := c.Get(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Tasks[0].Started || after.Tasks[0].Done {
		t.Fatalf("released task = %+v, want unclaimed and unfinished", after.Tasks[0])
	}
	_ = s

	// A healthy worker picks the released task up and the job completes.
	w2, err := NewWorker(WorkerOptions{
		Server: c.Base, Name: "finishing", DataDir: t.TempDir(),
		Poll: 10 * time.Millisecond, HTTP: c.HTTP, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	w2ctx, cancel2 := context.WithCancel(ctx)
	defer cancel2()
	done := make(chan struct{})
	go func() { defer close(done); w2.Run(w2ctx) }()
	final := waitTerminal(t, c, st.ID)
	cancel2()
	<-done
	if final.State != StateComplete {
		t.Fatalf("job settled %s (error %q)", final.State, final.Error)
	}
}
