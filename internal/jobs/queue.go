package jobs

import "sync"

// queue is the tenant-fair task queue the server's workers drain.
// Tasks enqueue FIFO per tenant; claims round-robin across tenants in
// first-appearance order, so a tenant flooding hundreds of tasks delays
// its own backlog, not another tenant's single job. Fairness is at
// task granularity: a sharded job from tenant A and a job from tenant
// B interleave shard by shard.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ring   []string           // tenants in first-appearance order
	tasks  map[string][]*task // per-tenant FIFO
	next   int                // ring position of the next claim
	closed bool
}

func newQueue() *queue {
	q := &queue{tasks: make(map[string][]*task)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a task under its job's tenant.
func (q *queue) push(t *task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	tenant := t.job.status.Spec.Tenant
	if _, ok := q.tasks[tenant]; !ok {
		q.ring = append(q.ring, tenant)
	}
	q.tasks[tenant] = append(q.tasks[tenant], t)
	q.cond.Signal()
}

// pop blocks until a task is claimable or the queue is closed. The
// claim scans the tenant ring from the cursor: the first tenant with a
// backlog yields its oldest task, and the cursor advances past it.
func (q *queue) pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for i := 0; i < len(q.ring); i++ {
			pos := (q.next + i) % len(q.ring)
			tenant := q.ring[pos]
			backlog := q.tasks[tenant]
			if len(backlog) == 0 {
				continue
			}
			// The cursor advances without wrapping so that a tenant
			// appended to the ring between claims still gets the very
			// next turn; the scan applies the modulo.
			q.tasks[tenant] = backlog[1:]
			q.next = pos + 1
			return backlog[0], true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// remove drops every queued task of one job (cancel of a queued job),
// returning how many were dropped.
func (q *queue) remove(j *job) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for tenant, backlog := range q.tasks {
		kept := backlog[:0]
		for _, t := range backlog {
			if t.job == j {
				n++
				continue
			}
			kept = append(kept, t)
		}
		q.tasks[tenant] = kept
	}
	return n
}

// close wakes every blocked pop with "no more tasks".
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
