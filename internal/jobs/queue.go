package jobs

import "sync"

// queue is the task queue the server's local workers and remote
// scanworker claims drain. Tasks enqueue FIFO per tenant inside a
// priority class; claims take the highest class with claimable work and
// round-robin across that class's tenants in first-appearance order, so
// a tenant flooding hundreds of tasks delays its own backlog, not
// another tenant's single job. Fairness is at task granularity: a
// sharded job from tenant A and a job from tenant B interleave shard by
// shard.
//
// A per-tenant in-flight quota (0 = unlimited) additionally caps how
// many claimed-but-unfinished tasks one tenant may hold across the
// whole worker fleet; a tenant at its quota is skipped by claims until
// release is called for one of its tasks, and lower-priority work from
// other tenants runs instead of idling the fleet.
//
// Tenants whose backlog drained are pruned from the ring and the task
// map immediately (a long-lived server sees unboundedly many one-off
// tenants; dead entries would otherwise grow both structures forever
// and stretch every claim scan), with the claim cursor reconciled so
// round-robin fairness is preserved across the prune.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	classes []*prioClass   // descending priority
	running map[string]int // claimed-but-unreleased tasks per tenant
	quota   int            // max in-flight tasks per tenant (0 = unlimited)
	closed  bool
}

// prioClass is one priority level's tenant-fair sub-queue.
type prioClass struct {
	prio  int
	ring  []string           // tenants in first-appearance order
	tasks map[string][]*task // per-tenant FIFO
	next  int                // ring position of the next claim
}

func newQueue(quota int) *queue {
	q := &queue{running: make(map[string]int), quota: quota}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// class returns the priority class for prio, creating it in descending
// order if absent.
func (q *queue) class(prio int) *prioClass {
	i := 0
	for ; i < len(q.classes); i++ {
		if q.classes[i].prio == prio {
			return q.classes[i]
		}
		if q.classes[i].prio < prio {
			break
		}
	}
	pc := &prioClass{prio: prio, tasks: make(map[string][]*task)}
	q.classes = append(q.classes, nil)
	copy(q.classes[i+1:], q.classes[i:])
	q.classes[i] = pc
	return pc
}

// push enqueues a task under its job's tenant and priority.
func (q *queue) push(t *task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	sp := &t.job.status.Spec
	pc := q.class(sp.Priority)
	if _, ok := pc.tasks[sp.Tenant]; !ok {
		pc.ring = append(pc.ring, sp.Tenant)
	}
	pc.tasks[sp.Tenant] = append(pc.tasks[sp.Tenant], t)
	q.cond.Signal()
}

// pruneLocked drops a drained tenant from its class (and an emptied
// class from the queue), reconciling the claim cursor: removing a ring
// entry below the cursor shifts every later tenant one slot left, so
// the cursor moves with them or the round-robin would skip a turn.
func (pc *prioClass) pruneLocked(q *queue, pos int) {
	delete(pc.tasks, pc.ring[pos])
	pc.ring = append(pc.ring[:pos], pc.ring[pos+1:]...)
	if pos < pc.next {
		pc.next--
	}
	if len(pc.ring) == 0 {
		for i, c := range q.classes {
			if c == pc {
				q.classes = append(q.classes[:i], q.classes[i+1:]...)
				break
			}
		}
	}
}

// claimLocked scans for the next claimable task: highest priority class
// first, tenant-fair within the class, skipping tenants at their
// in-flight quota. A successful claim charges the tenant's quota; the
// caller must call release(tenant) once the task finishes or is handed
// back.
func (q *queue) claimLocked() (*task, bool) {
	for _, pc := range q.classes {
		for i := 0; i < len(pc.ring); i++ {
			pos := (pc.next + i) % len(pc.ring)
			tenant := pc.ring[pos]
			if q.quota > 0 && q.running[tenant] >= q.quota {
				continue
			}
			backlog := pc.tasks[tenant]
			t := backlog[0]
			if len(backlog) == 1 {
				// Backlog drained: prune the tenant now. The cursor stays
				// at pos, where the next tenant in ring order now sits —
				// exactly the tenant whose turn follows.
				pc.pruneLocked(q, pos)
			} else {
				pc.tasks[tenant] = backlog[1:]
				// The cursor advances without wrapping so that a tenant
				// appended to the ring between claims still gets the very
				// next turn; the scan applies the modulo.
				pc.next = pos + 1
			}
			q.running[tenant]++
			return t, true
		}
	}
	return nil, false
}

// pop blocks until a task is claimable or the queue is closed.
func (q *queue) pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if t, ok := q.claimLocked(); ok {
			return t, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// tryPop is the non-blocking claim used by the remote worker-claim API:
// it returns immediately with no task when nothing is claimable.
func (q *queue) tryPop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, false
	}
	return q.claimLocked()
}

// release returns one claimed task's quota slot for its tenant and
// wakes claimants that may have been quota-blocked on it.
func (q *queue) release(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := q.running[tenant]; n > 1 {
		q.running[tenant] = n - 1
	} else {
		delete(q.running, tenant)
	}
	q.cond.Broadcast()
}

// remove drops every queued task of one job (cancel of a queued job),
// returning how many were dropped. Tenants drained by the removal are
// pruned with the claim cursor reconciled — a cancel must not leave the
// cursor pointing past live work — and waiting claimants are woken so
// none sleeps through the state change.
func (q *queue) remove(j *job) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for ci := len(q.classes) - 1; ci >= 0; ci-- {
		pc := q.classes[ci]
		for pos := len(pc.ring) - 1; pos >= 0; pos-- {
			tenant := pc.ring[pos]
			backlog := pc.tasks[tenant]
			kept := backlog[:0]
			for _, t := range backlog {
				if t.job == j {
					n++
					continue
				}
				kept = append(kept, t)
			}
			if len(kept) == 0 {
				pc.pruneLocked(q, pos)
			} else {
				pc.tasks[tenant] = kept
			}
		}
	}
	q.cond.Broadcast()
	return n
}

// queued reports how many tasks are waiting across all classes.
func (q *queue) queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, pc := range q.classes {
		for _, backlog := range pc.tasks {
			n += len(backlog)
		}
	}
	return n
}

// close wakes every blocked pop with "no more tasks".
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}
