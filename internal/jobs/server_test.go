package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runctl"
)

// testServer builds a Server over a temp data dir with its HTTP API on
// an httptest server, returning a client against it.
func testServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	opts.Logf = t.Logf
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(s.Drain)
	return s, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// waitTerminal polls until the job settles.
func waitTerminal(t *testing.T, c *Client, id string) *Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Watch(ctx, id, nil)
	if err != nil {
		t.Fatalf("watch %s: %v", id, err)
	}
	return st
}

// completeJob submits a spec and requires it to settle complete,
// returning its result bytes.
func completeJob(t *testing.T, c *Client, sp Spec) []byte {
	t.Helper()
	st, err := c.Submit(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, c, st.ID)
	if st.State != StateComplete {
		t.Fatalf("job %s settled %s (error %q), want complete", st.ID, st.State, st.Error)
	}
	data, err := c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServerLifecycle walks the happy path over HTTP: submit, stream
// events, complete, fetch a valid result and a schema-valid event
// stream.
func TestServerLifecycle(t *testing.T) {
	_, c := testServer(t, Options{Workers: 2})
	ctx := context.Background()

	st, err := c.Submit(ctx, Spec{Flow: FlowGenerate, Circuits: []string{"s27"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State.Terminal() {
		t.Fatalf("submit returned %+v", st)
	}

	var events bytes.Buffer
	final, err := c.Watch(ctx, st.ID, &events)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateComplete {
		t.Fatalf("state %s (error %q), want complete", final.State, final.Error)
	}
	if final.Resumable {
		t.Fatal("complete job reported resumable")
	}
	if len(final.Tasks) != 1 || !final.Tasks[0].Done || final.Tasks[0].Status != runctl.Complete {
		t.Fatalf("tasks = %+v", final.Tasks)
	}
	if final.Created == "" || final.Finished == "" {
		t.Fatalf("missing timestamps: %+v", final)
	}

	// The streamed events are a schema-valid obs stream ending in a
	// snapshot, and mention the job lifecycle markers.
	if _, err := obs.Validate(bytes.NewReader(events.Bytes())); err != nil {
		t.Fatalf("event stream invalid: %v\n%s", err, events.Bytes())
	}
	for _, marker := range []string{"task_start", "task_done", "settled"} {
		if !strings.Contains(events.String(), marker) {
			t.Fatalf("event stream lacks %q:\n%s", marker, events.String())
		}
	}

	data, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Flow != FlowGenerate || len(res.Generate) != 1 || res.Generate[0].Circ != "s27" {
		t.Fatalf("result = %+v", res)
	}
	if res.Generate[0].Detected == 0 {
		t.Fatal("generate flow detected zero faults")
	}

	list, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestServerPartitionMerge is the acceptance gate's core claim: a
// simulate job sharded across two workers returns result bytes
// identical to the same spec unsharded on one worker.
func TestServerPartitionMerge(t *testing.T) {
	spec := Spec{Flow: FlowSimulate, Circuits: []string{"s298", "s27"}, Seed: 9, SeqLen: 48}

	_, single := testServer(t, Options{Workers: 1})
	unsharded := completeJob(t, single, spec)

	sharded := spec
	sharded.Partitions = 3
	_, multi := testServer(t, Options{Workers: 2})
	got := completeJob(t, multi, sharded)

	if !bytes.Equal(got, unsharded) {
		t.Fatalf("sharded result differs from unsharded:\n--- sharded ---\n%s\n--- unsharded ---\n%s", got, unsharded)
	}

	var res Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Simulate) != 2 || res.Simulate[0].Circuit != "s298" || res.Simulate[1].Circuit != "s27" {
		t.Fatalf("simulate results out of spec order: %+v", res.Simulate)
	}
	if res.Simulate[0].Detected == 0 {
		t.Fatal("s298 detected zero faults")
	}
}

// TestServerSuspendResume pins the interrupt path end to end: a
// deterministic mid-run stop (StopAfterPolls) suspends the job with
// checkpoints; resuming over HTTP completes it with result bytes
// identical to a never-interrupted run.
func TestServerSuspendResume(t *testing.T) {
	spec := Spec{Flow: FlowSimulate, Circuits: []string{"s298"}, Seed: 5, SeqLen: 64}

	_, ref := testServer(t, Options{Workers: 1})
	want := completeJob(t, ref, spec)

	interrupted := spec
	interrupted.StopAfterPolls = 1
	_, c := testServer(t, Options{Workers: 1})
	ctx := context.Background()
	st, err := c.Submit(ctx, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, c, st.ID)
	if st.State != StateSuspended || !st.Resumable {
		t.Fatalf("interrupted job settled %s resumable=%v, want suspended+resumable", st.State, st.Resumable)
	}
	if _, err := c.Result(ctx, st.ID); err == nil {
		t.Fatal("suspended job served a result")
	}

	// The checkpoint API exposes the partial state.
	names, err := c.Checkpoints(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("suspended job has no checkpoint artifacts")
	}
	if data, err := c.Checkpoint(ctx, st.ID, names[0]); err != nil || len(data) == 0 {
		t.Fatalf("checkpoint fetch: %d bytes, err %v", len(data), err)
	}
	if _, err := c.Checkpoint(ctx, st.ID, "../"+names[0]); err == nil {
		t.Fatal("path-traversal checkpoint name served")
	}

	if _, err := c.Resume(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, c, st.ID)
	if st.State != StateComplete {
		t.Fatalf("resumed job settled %s (error %q), want complete", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n--- resumed ---\n%s\n--- reference ---\n%s", got, want)
	}
}

// TestServerCancelResume gates a worker on the white-box task-start
// hook, cancels the job before its task can start, and checks the
// cancel settles deterministically as canceled+resumable; the resume
// then completes bit-identically to an undisturbed run.
func TestServerCancelResume(t *testing.T) {
	spec := Spec{Flow: FlowSimulate, Circuits: []string{"s27"}, Seed: 2, SeqLen: 32}

	_, ref := testServer(t, Options{Workers: 1})
	want := completeJob(t, ref, spec)

	s, c := testServer(t, Options{Workers: 1})
	claimed := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testTaskStart = func(*task) {
		once.Do(func() {
			close(claimed)
			<-release
		})
	}

	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	<-claimed // the worker holds the task pre-start; the job cannot finish under us
	canceled, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	if canceled.State != StateCanceled || !canceled.Resumable {
		t.Fatalf("cancel settled %s resumable=%v, want canceled+resumable", canceled.State, canceled.Resumable)
	}

	// Cancel of a terminal job is an idempotent no-op.
	again, err := c.Cancel(ctx, st.ID)
	if err != nil || again.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", again, err)
	}

	if _, err := c.Resume(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, c, st.ID)
	if st.State != StateComplete {
		t.Fatalf("resumed job settled %s (error %q), want complete", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-cancel result differs from undisturbed run")
	}
}

// TestServerDrainAndRestart is the SIGTERM path: drain interrupts an
// in-flight job, which settles suspended with checkpoints on disk; a
// fresh server over the same data dir reloads it and resumes it to a
// result bit-identical to an uninterrupted run — surviving both the
// drain and the process boundary.
func TestServerDrainAndRestart(t *testing.T) {
	spec := Spec{Flow: FlowSimulate, Circuits: []string{"s298"}, Seed: 11, SeqLen: 64, Partitions: 2}

	_, ref := testServer(t, Options{Workers: 2})
	want := completeJob(t, ref, spec)

	dataDir := t.TempDir()
	s1, err := NewServer(Options{DataDir: dataDir, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	claimed := make(chan struct{}, 4)
	release := make(chan struct{})
	s1.testTaskStart = func(*task) {
		claimed <- struct{}{}
		<-release
	}
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-claimed // at least one worker holds a task
	s1.mu.Lock()
	ctxDone := s1.jobs[st.ID].ctx.Done()
	s1.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s1.Drain()
		close(drained)
	}()
	<-ctxDone      // the drain has canceled the job's context...
	close(release) // ...so workers proceed into canceled controls and stop
	<-drained

	after, err := s1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !after.State.Terminal() || !after.Resumable || after.State == StateComplete {
		t.Fatalf("drained job settled %s resumable=%v, want an interrupted resumable state", after.State, after.Resumable)
	}

	// "Restart": a new server over the same data dir must reload the
	// job as suspended+resumable and resume it over HTTP.
	_, c := testServer(t, Options{DataDir: dataDir, Workers: 2})
	loaded, err := c.Get(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.State != StateSuspended && loaded.State != StateCanceled {
		t.Fatalf("reloaded job in state %s", loaded.State)
	}
	if !loaded.Resumable {
		t.Fatal("reloaded job not resumable")
	}
	if _, err := c.Resume(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c, st.ID)
	if final.State != StateComplete {
		t.Fatalf("resumed job settled %s (error %q), want complete", final.State, final.Error)
	}
	got, err := c.Result(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-drain-and-restart result differs from uninterrupted run")
	}
}

// TestServerHTTPErrors pins the error contract of the API surface.
func TestServerHTTPErrors(t *testing.T) {
	_, c := testServer(t, Options{Workers: 1})
	ctx := context.Background()

	wantCode := func(err error, code int) {
		t.Helper()
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != code {
			t.Fatalf("err = %v, want APIError %d", err, code)
		}
	}

	// 400: invalid spec and unknown field, with the field named.
	_, err := c.Submit(ctx, Spec{Flow: "nope", Circuits: []string{"s27"}})
	wantCode(err, http.StatusBadRequest)
	resp, err := c.HTTP.Post(c.Base+"/v1/jobs", "application/json",
		strings.NewReader(`{"flow":"generate","circuits":["s27"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}

	// 404: unknown job everywhere.
	_, err = c.Get(ctx, "job-9999")
	wantCode(err, http.StatusNotFound)
	_, err = c.Cancel(ctx, "job-9999")
	wantCode(err, http.StatusNotFound)
	_, err = c.Result(ctx, "job-9999")
	wantCode(err, http.StatusNotFound)

	// 409: resume of a non-resumable (complete) job; result of an
	// unfinished job is exercised in TestServerSuspendResume.
	st, err := c.Submit(ctx, Spec{Flow: FlowGenerate, Circuits: []string{"s27"}})
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, c, st.ID); final.State != StateComplete {
		t.Fatalf("job settled %s", final.State)
	}
	_, err = c.Resume(ctx, st.ID)
	wantCode(err, http.StatusConflict)

	// Health endpoint.
	hr, err := c.HTTP.Get(c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
}

// TestServerTenantFairness floods tenant A with a multi-circuit job and
// follows with tenant B's single job on a one-worker server: B's task
// must be claimed second, not last.
func TestServerTenantFairness(t *testing.T) {
	s, c := testServer(t, Options{Workers: 1})
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	s.testTaskStart = func(tk *task) {
		mu.Lock()
		order = append(order, tk.job.status.Spec.Tenant)
		mu.Unlock()
		<-gate // hold the first claim until both jobs are queued
	}

	ctx := context.Background()
	a, err := c.Submit(ctx, Spec{Flow: FlowGenerate, Circuits: []string{"s27", "s27", "s27"}, Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, Spec{Flow: FlowGenerate, Circuits: []string{"s27"}, Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitTerminal(t, c, a.ID)
	waitTerminal(t, c, b.ID)

	// The worker blocked on a's first claim while b enqueued; the
	// round-robin must serve b's single task before a's backlog.
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a", "b", "a", "a"}
	if len(order) != len(want) {
		t.Fatalf("claim order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("claim order = %v, want %v", order, want)
		}
	}
}

// TestServerEventsReplayAfterRestart checks a reloaded terminal job
// still serves its full persisted event stream.
func TestServerEventsReplayAfterRestart(t *testing.T) {
	dataDir := t.TempDir()
	func() {
		s, c := testServer(t, Options{DataDir: dataDir, Workers: 1})
		completeJob(t, c, Spec{Flow: FlowGenerate, Circuits: []string{"s27"}})
		s.Drain()
	}()
	_, c := testServer(t, Options{DataDir: dataDir, Workers: 1})
	list, err := c.List(context.Background())
	if err != nil || len(list) != 1 {
		t.Fatalf("list after restart: %+v, %v", list, err)
	}
	body, err := c.Events(context.Background(), list[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(body); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("replayed stream invalid: %v", err)
	}
	// The reloaded job's result is still served.
	if _, err := c.Result(context.Background(), list[0].ID); err != nil {
		t.Fatalf("result after restart: %v", err)
	}
}
