package jobs

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestShardedDetectMatchesUnsharded is the in-package form of the
// xcheck jobs/partition-merge invariant: splitting a circuit's fault
// universe into Slots-aligned shards, simulating each on its own
// simulator and merging must reproduce the unpartitioned detection
// vector bit for bit, at every partition count and concurrency.
func TestShardedDetectMatchesUnsharded(t *testing.T) {
	for _, name := range []string{"s27", "s298"} {
		t.Run(name, func(t *testing.T) {
			c, err := circuits.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := scan.Insert(c)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(d.Scan, true)
			seq := TestSequence(d, 7, 48)
			ref := sim.NewSimulator(d.Scan, 1).Run(seq, faults, sim.Options{})
			for _, parts := range []int{1, 2, 3, 5} {
				for _, conc := range []int{1, 2, 4} {
					got := ShardedDetect(d.Scan, seq, faults, parts, conc)
					for i := range ref.DetectedAt {
						if got[i] != ref.DetectedAt[i] {
							t.Fatalf("parts=%d conc=%d: fault %d detected at %d, unsharded says %d",
								parts, conc, i, got[i], ref.DetectedAt[i])
						}
					}
				}
			}
		})
	}
}

// TestTestSequenceDeterministic pins that the simulate flow's input
// sequence is a pure function of (design, seed, length) — the property
// resume legs and shards rely on to regenerate identical work.
func TestTestSequenceDeterministic(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	d, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	a := TestSequence(d, 3, 10)
	b := TestSequence(d, 3, 10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("lengths %d, %d, want 10", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("vector %d differs between identical seeds", i)
		}
	}
	diff := TestSequence(d, 4, 10)
	same := true
	for i := range a {
		same = same && a[i].String() == diff[i].String()
	}
	if same {
		t.Fatal("seeds 3 and 4 produced identical sequences")
	}
}
