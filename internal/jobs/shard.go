package jobs

import (
	"sync"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestSequence builds the simulate flow's input sequence for a scan
// design: seqLen fully random vectors over C_scan's inputs (scan
// control included, so the sequence mixes shifts and functional
// cycles). It is a pure function of (design, seed, seqLen) — every
// shard of a job, a resumed job, and the xcheck invariant all
// regenerate the identical sequence from the spec alone.
func TestSequence(d *scan.Circuit, seed uint64, seqLen int) logic.Sequence {
	rng := logic.NewRandFiller(seed*0x9E3779B97F4A7C15 + 0x6A09E667F3BCC909)
	seq := make(logic.Sequence, seqLen)
	for i := range seq {
		seq[i] = logic.NewVector(d.Scan.NumInputs())
	}
	seq.FillX(rng)
	return seq
}

// RunShard fault-simulates one shard of a partitioned fault universe:
// the contiguous range r of faults, re-batched from the range's own
// start. The result's DetectedAt is keyed by position within the range.
// Because PartitionFaults aligns range starts to sim.Slots, the shard's
// batch decomposition equals the corresponding slice of the global
// one, so MergeShard reassembles exactly the unpartitioned result.
func RunShard(s *sim.Simulator, seq logic.Sequence, faults []fault.Fault, r sim.FaultRange, opts sim.Options) sim.Result {
	return s.RunSubset(seq, faults, r.Indices(), opts, nil, nil)
}

// MergeShard writes one shard's DetectedAt (keyed by position within r)
// into the global per-fault slice det. Shards of one partition cover
// disjoint ranges, so concurrent merges need no synchronization beyond
// completion ordering.
func MergeShard(det []int, r sim.FaultRange, shard []int) {
	copy(det[r.Start:r.End], shard)
}

// ShardedDetect is the reference implementation of the server's
// partitioned simulate flow, exported so internal/xcheck can pin it
// (invariant "jobs/partition-merge"): split faults into parts
// Slots-aligned shards, run up to concurrency of them at once — each on
// its own single-worker Simulator, like independent job workers — and
// merge. The returned DetectedAt is bit-identical to one unpartitioned
// Run for every (parts, concurrency).
func ShardedDetect(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, parts, concurrency int) []int {
	det := make([]int, len(faults))
	ranges := sim.PartitionFaults(len(faults), parts)
	if concurrency < 1 {
		concurrency = 1
	}
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for _, r := range ranges {
		if r.Len() == 0 {
			continue
		}
		wg.Add(1)
		go func(r sim.FaultRange) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res := RunShard(sim.NewSimulator(c, 1), seq, faults, r, sim.Options{})
			MergeShard(det, r, res.DetectedAt)
		}(r)
	}
	wg.Wait()
	return det
}
