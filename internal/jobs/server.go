package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Service errors the HTTP layer maps onto status codes.
var (
	ErrNotFound     = errors.New("jobs: no such job")
	ErrNotResumable = errors.New("jobs: job is not resumable")
	ErrNoResult     = errors.New("jobs: job has no result yet")
	ErrDraining     = errors.New("jobs: server is draining")
	// ErrLeaseGone: the lease token is unknown or was reclaimed — the
	// worker must abandon the task (HTTP 410).
	ErrLeaseGone = errors.New("jobs: lease gone")
)

// Options configures a Server.
type Options struct {
	// DataDir is the server's persistent root: one subdirectory per job
	// holding job.json, events.jsonl, per-task checkpoints and results.
	// Jobs found here on startup are reloaded; ones that were mid-run
	// when the previous process died come back suspended and resumable.
	DataDir string
	// Workers is the in-process task worker count (0: GOMAXPROCS;
	// negative: none — every task is served to remote scanworker
	// processes through the claim API). Each worker claims one task at
	// a time from the tenant-fair queue, so up to Workers tasks —
	// including disjoint fault shards of one job — run concurrently.
	Workers int
	// LeaseTTL bounds how long a remotely claimed task may go without a
	// heartbeat before the server reclaims it and re-queues the task
	// from its last uploaded checkpoint (0: 15s).
	LeaseTTL time.Duration
	// TenantQuota caps how many claimed-but-unfinished tasks one tenant
	// may hold across local workers and remote claims combined (0:
	// unlimited). A tenant at its quota is skipped, not failed.
	TenantQuota int
	// Logf, when set, receives startup warnings (e.g. an unreadable
	// job.json being skipped).
	Logf func(format string, args ...any)
}

// Server owns the job table, the tenant-fair queue and the worker pool.
// Create with NewServer, expose over HTTP with Handler, stop with
// Drain.
type Server struct {
	dataDir string
	logf    func(string, ...any)

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job IDs in submission order
	nextID   int
	draining bool

	q       *queue
	wg      sync.WaitGroup
	workers int

	// Remote-claim lease state (guarded by mu).
	leases   map[string]*lease
	leaseSeq int
	leaseTTL time.Duration

	janitorStop chan struct{}
	janitorDone chan struct{}

	// testTaskStart, when set (white-box tests only), runs on the
	// worker goroutine after a task is claimed and before it starts.
	testTaskStart func(*task)
	// testNow, when set (white-box tests only), replaces time.Now for
	// lease expiry.
	testNow func() time.Time
}

// NewServer builds a Server over dataDir, reloads any persisted jobs,
// and starts the worker pool.
func NewServer(opts Options) (*Server, error) {
	if opts.DataDir == "" {
		return nil, errors.New("jobs: Options.DataDir is required")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 0 {
		workers = 0
	}
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		dataDir:     opts.DataDir,
		logf:        logf,
		jobs:        make(map[string]*job),
		nextID:      1,
		q:           newQueue(opts.TenantQuota),
		workers:     workers,
		leases:      make(map[string]*lease),
		leaseTTL:    ttl,
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		testNow:     time.Now,
	}
	if err := s.loadExisting(); err != nil {
		return nil, err
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	go s.janitor()
	return s, nil
}

// Workers returns the worker-pool size.
func (s *Server) Workers() int { return s.workers }

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		t, ok := s.q.pop()
		if !ok {
			return
		}
		if hook := s.testTaskStart; hook != nil {
			hook(t)
		}
		t.job.runTask(t)
		s.q.release(t.job.status.Spec.Tenant)
	}
}

// loadExisting reloads persisted jobs from the data directory. A job
// whose record says queued or running was mid-flight when the previous
// process died: its checkpoints are intact, so it comes back suspended
// and resumable. Unreadable or invalid records are skipped with a
// warning — one corrupt file must not wedge the server.
func (s *Server) loadExisting() error {
	entries, err := os.ReadDir(s.dataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "job-%d", &n); err != nil {
			continue
		}
		if n >= s.nextID {
			s.nextID = n + 1
		}
		dir := filepath.Join(s.dataDir, e.Name())
		var st Status
		if err := readJSONFile(filepath.Join(dir, "job.json"), &st); err != nil {
			s.logf("jobs: skipping %s: %v", e.Name(), err)
			continue
		}
		if err := st.Validate(); err != nil {
			s.logf("jobs: skipping %s: %v", e.Name(), err)
			continue
		}
		j := &job{srv: s, dir: dir, status: st}
		if !st.State.Terminal() {
			j.status.State = StateSuspended
			j.status.Resumable = true
			j.status.Finished = nowRFC3339()
			j.persistStatusLocked()
		}
		if err := j.rebuildTasks(); err != nil {
			s.logf("jobs: %s is not resumable: %v", e.Name(), err)
			j.status.Resumable = false
		}
		s.jobs[st.ID] = j
		s.order = append(s.order, st.ID)
	}
	sort.Strings(s.order)
	return nil
}

// rebuildTasks reconstructs the task list of a reloaded job from its
// spec (task expansion is deterministic) and checks it still lines up
// with the persisted task names.
func (j *job) rebuildTasks() error {
	saved := j.status.Tasks
	j.status.Tasks = nil
	j.tasks = nil
	if err := buildTasks(j); err != nil {
		j.status.Tasks = saved
		return err
	}
	rebuilt := j.status.Tasks
	j.status.Tasks = saved
	if len(rebuilt) != len(saved) {
		return fmt.Errorf("spec expands to %d tasks, record has %d", len(rebuilt), len(saved))
	}
	for i := range saved {
		if rebuilt[i].Name != saved[i].Name {
			return fmt.Errorf("task %d is %q in the record, %q from the spec", i, saved[i].Name, rebuilt[i].Name)
		}
	}
	return nil
}

// Submit validates, persists and enqueues one job, returning its
// initial status.
func (s *Server) Submit(sp Spec) (*Status, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	id := fmt.Sprintf("job-%04d", s.nextID)
	s.nextID++
	dir := filepath.Join(s.dataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &job{srv: s, dir: dir,
		status: Status{ID: id, Spec: sp, State: StateQueued, Created: nowRFC3339()}}
	if err := buildTasks(j); err != nil {
		return nil, err
	}
	if err := j.openLeg(false); err != nil {
		return nil, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	j.persistStatusLocked()
	j.rec.Event("job", "submitted",
		obs.F("flow", sp.Flow), obs.F("tasks", len(j.tasks)))
	j.enqueue()
	return j.status.clone(), nil
}

// Get returns one job's status.
func (s *Server) Get(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.status.clone(), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []*Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status.clone())
	}
	return out
}

// Cancel stops a job: queued tasks are withdrawn, in-flight tasks
// observe the cancellation at their next run-control poll, checkpoint
// and stop. The job settles as canceled and resumable. Canceling a
// terminal job is a no-op.
func (s *Server) Cancel(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.status.State.Terminal() {
		j.canceled = true
		s.q.remove(j)
		j.closeLegLocked()
	}
	return j.status.clone(), nil
}

// Resume re-enqueues a suspended or canceled job's unfinished tasks
// with their checkpoints: the continued run produces results
// bit-identical to an uninterrupted one.
func (s *Server) Resume(id string) (*Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if !j.status.State.Terminal() || !j.status.Resumable {
		return nil, ErrNotResumable
	}
	if err := j.openLeg(true); err != nil {
		return nil, err
	}
	j.persistStatusLocked()
	j.rec.Event("job", "resume")
	j.enqueue()
	return j.status.clone(), nil
}

// Result returns a completed job's result.json bytes — exact stored
// bytes, so two jobs with identical deterministic results compare
// byte-identical through the API.
func (s *Server) Result(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	complete := j.status.State == StateComplete
	path := j.resultPath()
	s.mu.Unlock()
	if !complete {
		return nil, ErrNoResult
	}
	return os.ReadFile(path)
}

// Wait blocks until the job's current leg settles (tests and the CLI's
// watch mode poll the API instead; this is the in-process shortcut).
func (s *Server) Wait(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	done := j.done
	s.mu.Unlock()
	if done != nil {
		<-done
	}
	return nil
}

// Checkpoints lists a job's checkpoint artifacts (per-task run-control
// stores and partial results) by file name.
func (s *Server) Checkpoints(id string) ([]string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if match, _ := filepath.Match("task-*.ckpt*", name); match {
			names = append(names, name)
		} else if match, _ := filepath.Match("task-*.result.json", name); match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Checkpoint returns one checkpoint artifact's raw bytes. The name must
// be one returned by Checkpoints — anything else (including path
// traversal) is ErrNotFound.
func (s *Server) Checkpoint(id, name string) ([]byte, error) {
	names, err := s.Checkpoints(id)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if n == name {
			s.mu.Lock()
			dir := s.jobs[id].dir
			s.mu.Unlock()
			return os.ReadFile(filepath.Join(dir, name))
		}
	}
	return nil, ErrNotFound
}

// Drain gracefully stops the server: new submissions and resumes are
// rejected, every running job's context is canceled so in-flight tasks
// checkpoint and stop at their next poll, workers exit once the queue
// is closed, and every interrupted job settles suspended (or canceled)
// with Resumable set. Drain returns when all jobs are settled; it is
// the SIGTERM path of cmd/scand.
func (s *Server) Drain() {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	for _, j := range s.jobs {
		if !j.status.State.Terminal() {
			j.cancel()
		}
	}
	s.mu.Unlock()
	if alreadyDraining {
		s.wg.Wait()
		return
	}
	close(s.janitorStop)
	<-s.janitorDone
	s.q.close()
	s.wg.Wait()
	s.mu.Lock()
	for _, id := range s.order {
		s.jobs[id].closeLegLocked()
	}
	s.mu.Unlock()
}

// httpError maps service errors onto HTTP status codes with a JSON
// body.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var se *SpecError
	switch {
	case errors.As(err, &se):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrNotResumable), errors.Is(err, ErrNoResult):
		code = http.StatusConflict
	case errors.Is(err, ErrLeaseGone):
		code = http.StatusGone
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the HTTP API:
//
//	POST /v1/jobs                       submit a spec (strict decode)
//	GET  /v1/jobs                       list job statuses
//	GET  /v1/jobs/{id}                  one job's status
//	GET  /v1/jobs/{id}/events           JSONL event stream (replay + follow)
//	GET  /v1/jobs/{id}/result           completed job's deterministic result
//	GET  /v1/jobs/{id}/checkpoints      checkpoint artifact names
//	GET  /v1/jobs/{id}/checkpoints/{name}  one artifact's bytes
//	POST /v1/jobs/{id}/cancel           cancel (checkpointing, resumable)
//	POST /v1/jobs/{id}/resume           resume from checkpoints
//	GET  /healthz                       liveness
//
// plus the worker-claim API remote scanworker processes lease tasks
// through (docs/ALGORITHMS.md §16):
//
//	POST /v1/worker/claim                     claim a task (204 = none)
//	POST /v1/worker/claims/{token}/heartbeat  renew lease, upload checkpoint
//	POST /v1/worker/claims/{token}/result     upload the finished result
//	POST /v1/worker/claims/{token}/release    hand the task back (re-queued)
//	GET  /v1/workers                          live lease/fleet view
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"ok": true, "workers": s.workers})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		sp, err := DecodeSpec(r.Body)
		if err != nil {
			httpError(w, err)
			return
		}
		st, err := s.Submit(sp)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Get(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Resume(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Result(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints", func(w http.ResponseWriter, r *http.Request) {
		names, err := s.Checkpoints(r.PathValue("id"))
		if err != nil {
			httpError(w, err)
			return
		}
		if names == nil {
			names = []string{}
		}
		writeJSON(w, names)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoints/{name}", func(w http.ResponseWriter, r *http.Request) {
		data, err := s.Checkpoint(r.PathValue("id"), r.PathValue("name"))
		if err != nil {
			httpError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	})
	mux.HandleFunc("POST /v1/worker/claim", func(w http.ResponseWriter, r *http.Request) {
		var req claimRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, &SpecError{Field: "body", Reason: decodeReason(err)})
			return
		}
		a, err := s.ClaimTask(req.Worker)
		if err != nil {
			httpError(w, err)
			return
		}
		if a == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, a)
	})
	mux.HandleFunc("POST /v1/worker/claims/{token}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req leaseUpdate
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, &SpecError{Field: "body", Reason: decodeReason(err)})
			return
		}
		ttl, err := s.HeartbeatLease(r.PathValue("token"), req.Checkpoint)
		if err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{"ttl_ms": ttl.Milliseconds()})
	})
	mux.HandleFunc("POST /v1/worker/claims/{token}/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultUpload
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, &SpecError{Field: "body", Reason: decodeReason(err)})
			return
		}
		if req.Result == nil {
			httpError(w, &SpecError{Field: "result", Reason: "missing"})
			return
		}
		if err := s.CompleteLease(r.PathValue("token"), req.Result, req.Checkpoint); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("POST /v1/worker/claims/{token}/release", func(w http.ResponseWriter, r *http.Request) {
		var req leaseUpdate
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, &SpecError{Field: "body", Reason: decodeReason(err)})
			return
		}
		if err := s.ReleaseLease(r.PathValue("token"), req.Checkpoint); err != nil {
			httpError(w, err)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.WorkersView())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// handleEvents streams a job's JSONL flight-recorder events: the full
// history first, then live lines as tasks emit them, until the job
// settles or the client goes away. Each line is flushed immediately
// (the recorder runs with Sync on), so watchers see progress in real
// time.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var h *hub
	var eventsPath string
	if ok {
		h = j.hub
		eventsPath = j.eventsPath()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if h == nil {
		// Reloaded job with no live leg: serve the persisted stream.
		data, err := os.ReadFile(eventsPath)
		if err != nil {
			httpError(w, err)
			return
		}
		w.Write(data)
		return
	}
	flusher, _ := w.(http.Flusher)
	h.follow(r.Context(), func(chunk []byte) error {
		if _, err := w.Write(chunk); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
}

// Slots re-exports the fault-batch width partitioning aligns to, for
// callers sizing partitions without importing internal/sim.
const Slots = sim.Slots
