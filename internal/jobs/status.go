package jobs

import (
	"time"

	"repro/internal/core"
	"repro/internal/runctl"
)

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: submitted, no task has started.
	StateQueued State = "queued"
	// StateRunning: at least one task has started and the job is not
	// settled.
	StateRunning State = "running"
	// StateComplete: every task finished all its work; the result is
	// available.
	StateComplete State = "complete"
	// StateSuspended: the job stopped on a budget (deadline, attempt or
	// trial cap), a drain, or a server restart; its checkpoints make it
	// resumable.
	StateSuspended State = "suspended"
	// StateCanceled: stopped by an explicit cancel request; resumable
	// like a suspended job.
	StateCanceled State = "canceled"
	// StateFailed: a task hit an internal error; Error has the detail.
	StateFailed State = "failed"
)

// knownStates for Status validation.
var knownStates = []State{StateQueued, StateRunning, StateComplete, StateSuspended, StateCanceled, StateFailed}

// Terminal reports whether the state is settled (no task running or
// queued). Suspended and canceled jobs are terminal but resumable.
func (s State) Terminal() bool {
	switch s {
	case StateComplete, StateSuspended, StateCanceled, StateFailed:
		return true
	}
	return false
}

// TaskStatus is the progress record of one schedulable unit: a circuit
// run, or one fault shard of a simulate-flow circuit.
type TaskStatus struct {
	// Name identifies the task within the job, e.g. "s298" or
	// "s298/shard-1".
	Name string `json:"name"`
	// Started reports whether a worker has ever claimed the task.
	Started bool `json:"started"`
	// Done reports whether the task finished all its work.
	Done bool `json:"done"`
	// Status is the run-control outcome of the last attempt (Complete
	// or Resumed when Done; a stopped status after an interrupt).
	Status runctl.Status `json:"status"`
	// Error carries a failed task's error text.
	Error string `json:"error,omitempty"`
}

// Status is the public job record served by the API and persisted as
// job.json. Timestamps live here and only here — Result is
// deliberately timestamp-free so sharded and unsharded runs of one
// spec compare byte-identical.
type Status struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State State  `json:"state"`
	// Tasks lists per-task progress in scheduling order.
	Tasks []TaskStatus `json:"tasks"`
	// Resumable reports whether a resume request would be accepted:
	// the job stopped short of completion without an internal error.
	Resumable bool `json:"resumable"`
	// Error carries the first task failure of a failed job.
	Error string `json:"error,omitempty"`
	// Created/Finished stamp the job's lifecycle (RFC3339Nano, UTC).
	Created  string `json:"created,omitempty"`
	Finished string `json:"finished,omitempty"`
}

// Validate checks a Status record structurally — the guard the server
// applies to job.json files found on disk (a hand-edited or torn record
// must not wedge startup) and clients may apply to API responses.
// Failures are *SpecError values naming the bad field.
func (st *Status) Validate() error {
	if st.ID == "" {
		return specErrf("id", "empty job id")
	}
	known := false
	for _, s := range knownStates {
		known = known || st.State == s
	}
	if !known {
		return specErrf("state", "unknown state %q", st.State)
	}
	if err := st.Spec.Validate(); err != nil {
		return err
	}
	if len(st.Tasks) == 0 {
		return specErrf("tasks", "no tasks recorded")
	}
	for i, t := range st.Tasks {
		if t.Name == "" {
			return specErrf("tasks", "task %d has no name", i)
		}
		if t.Done && t.Status.Stopped() {
			return specErrf("tasks", "task %q done with stopped status %v", t.Name, t.Status)
		}
	}
	if st.State == StateFailed && st.Error == "" {
		return specErrf("error", "failed job without an error")
	}
	return nil
}

// clone deep-copies the status so API handlers can serialize it outside
// the job lock.
func (st *Status) clone() *Status {
	cp := *st
	cp.Spec.Circuits = append([]string(nil), st.Spec.Circuits...)
	cp.Tasks = append([]TaskStatus(nil), st.Tasks...)
	return &cp
}

// SimResult is one circuit's merged simulate-flow outcome.
type SimResult struct {
	Circuit string `json:"circuit"`
	// SeqLen and Faults pin the workload shape.
	SeqLen int `json:"seq_len"`
	Faults int `json:"faults"`
	// Detected counts detected faults; DetectedAt is the merged
	// first-detection cycle per fault (-1 = not detected), identical
	// for every partitioning and worker count.
	Detected   int   `json:"detected"`
	DetectedAt []int `json:"detected_at"`
}

// CompactResult is one circuit's compact-flow outcome: the paper's
// Section 4 pipeline (restoration then omission) applied to the
// circuit's seeded test sequence. Only semantic, scheduling-free
// numbers appear — lengths, targets, extra detections and the final
// kept mask — so the row is byte-identical at every omit_shards value
// and worker topology.
type CompactResult struct {
	Circuit string `json:"circuit"`
	// SeqLen and Faults pin the workload shape.
	SeqLen int `json:"seq_len"`
	Faults int `json:"faults"`
	// TargetFaults is how many faults the input sequence detects (what
	// compaction must preserve).
	TargetFaults int `json:"target_faults"`
	// RestoredLen / CompactedLen are the sequence lengths after
	// restoration and after omission.
	RestoredLen  int `json:"restored_len"`
	CompactedLen int `json:"compacted_len"`
	// ExtraDetected counts faults the compacted sequence detects that
	// the input did not (summed over both passes).
	ExtraDetected int `json:"extra_detected"`
	// Kept marks the input positions surviving both passes ('1' each);
	// applying it to the deterministic input sequence reproduces the
	// compacted sequence exactly.
	Kept string `json:"kept"`
}

// Result is a completed job's deliverable. It contains no timestamps,
// no job ID and no scheduling detail (partition count, worker count,
// omission chunking): two jobs running the same flow over the same
// circuits and seed produce byte-identical result JSON no matter how
// the work was sharded — the property the lifecycle tests and the
// xcheck invariants lean on.
type Result struct {
	Flow      string              `json:"flow"`
	Generate  []core.GenerateRow  `json:"generate,omitempty"`
	Translate []core.TranslateRow `json:"translate,omitempty"`
	Simulate  []SimResult         `json:"simulate,omitempty"`
	Compact   []CompactResult     `json:"compact,omitempty"`
}

// nowRFC3339 stamps status timestamps.
func nowRFC3339() string { return time.Now().UTC().Format(time.RFC3339Nano) }
