package xcheck

import (
	"fmt"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/translate"
)

// SynthCircuit is the circuit-spec name that makes Generate synthesize a
// fresh random circuit from the seed instead of loading a catalog entry.
const SynthCircuit = "synth"

// Limits below keep one workload's check budget bounded on the large
// catalog circuits; Generate subsamples deterministically past them.
const (
	maxFaults  = 192 // faults carried by one workload
	maxRefSims = 48  // faults the scalar reference re-simulates
)

// sizing scales a workload to its circuit so that a full-catalog run
// stays inside CI's time budget: the compaction invariants are
// superlinear in sequence length, and the scalar reference is linear in
// gates × vectors × faults. Everything stays a pure function of
// (circuit, seed).
type sizing struct {
	seqMin, seqSpan int // sequence length drawn from [seqMin, seqMin+seqSpan)
	faults, refs    int
	tests, tlen     int // conventional tests and functional vectors per test
}

func sizeFor(gates int) sizing {
	switch {
	case gates > 900: // s5378, s35932, b12 class
		return sizing{seqMin: 12, seqSpan: 9, faults: 64, refs: 6, tests: 1, tlen: 2}
	case gates > 350: // mid-size: s1423, b04, b05, b11...
		return sizing{seqMin: 18, seqSpan: 15, faults: 96, refs: 12, tests: 2, tlen: 2}
	default:
		return sizing{seqMin: 24, seqSpan: 49, faults: maxFaults, refs: maxRefSims, tests: 4, tlen: 3}
	}
}

// Workload is one randomized check input: a scan design, an input
// sequence for it, a fault list with a subset selection, and a
// conventional test set for the translation invariant. Everything is a
// pure function of (Circuit, Seed), so a workload can be regenerated
// from its two identifying fields.
type Workload struct {
	Circuit string
	Seed    uint64

	Design *scan.Circuit
	Seq    logic.Sequence
	// Faults is the (possibly subsampled) fault list on Design.Scan.
	Faults []fault.Fault
	// Subset selects fault indices for the RunSubset differential.
	Subset []int
	// Tests is a conventional scan test set over Design.Orig for the
	// translation invariant.
	Tests []translate.ScanTest
	// RefSample selects the fault indices the scalar reference
	// simulator cross-checks (all of them on small circuits).
	RefSample []int
}

// rng returns the workload's deterministic generator stream n: every
// consumer derives its own stream so that shrinking one field never
// shifts the randomness of another.
func (w *Workload) rng(stream uint64) *logic.RandFiller {
	return logic.NewRandFiller(w.Seed*0x9E3779B97F4A7C15 ^ (stream+1)*0xBF58476D1CE4E5B9)
}

// Generate builds the workload for a circuit spec (a catalog name or
// SynthCircuit) and a seed.
func Generate(circuit string, seed uint64) (*Workload, error) {
	w := &Workload{Circuit: circuit, Seed: seed}
	c, err := loadCircuit(circuit, w.rng(0))
	if err != nil {
		return nil, err
	}
	w.Design, err = scan.Insert(c)
	if err != nil {
		return nil, fmt.Errorf("xcheck: %w", err)
	}
	sz := sizeFor(w.Design.Scan.NumGates())
	w.Faults = sampleFaults(fault.Universe(w.Design.Scan, true), sz.faults, w.rng(1))
	w.Seq = genSequence(w.Design, sz, w.rng(2))
	w.Subset = sampleIndices(len(w.Faults), (len(w.Faults)+1)/2, w.rng(3))
	w.Tests = genTests(w.Design, sz, w.rng(4))
	w.RefSample = sampleIndices(len(w.Faults), sz.refs, w.rng(5))
	return w, nil
}

func loadCircuit(spec string, rng *logic.RandFiller) (*netlist.Circuit, error) {
	if spec != SynthCircuit {
		c, err := circuits.Load(spec)
		if err != nil {
			return nil, fmt.Errorf("xcheck: %w", err)
		}
		return c, nil
	}
	p := circuits.Params{
		Name:    fmt.Sprintf("xsynth_%x", rng.Uint64()&0xffff),
		Inputs:  2 + rng.Intn(7),
		FFs:     2 + rng.Intn(9),
		Gates:   20 + rng.Intn(61),
		Outputs: 1 + rng.Intn(4),
		Seed:    rng.Uint64(),
	}
	return circuits.Synthesize(p)
}

// sampleFaults keeps at most max faults, chosen by a deterministic
// partial shuffle that preserves the original relative order.
func sampleFaults(all []fault.Fault, max int, rng *logic.RandFiller) []fault.Fault {
	if len(all) <= max {
		return all
	}
	keep := sampleIndices(len(all), max, rng)
	out := make([]fault.Fault, len(keep))
	for i, fi := range keep {
		out[i] = all[fi]
	}
	return out
}

// sampleIndices returns up to max distinct indices of [0, n), sorted
// ascending, chosen uniformly by a partial Fisher-Yates shuffle.
func sampleIndices(n, max int, rng *logic.RandFiller) []int {
	if max > n {
		max = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < max; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	keep := idx[:max]
	sortInts(keep)
	return keep
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// genSequence builds an input sequence for the scan design (30–120
// vectors on small circuits, shorter per sizing on large ones): a mix
// of scan-in loads, bursts of functional vectors and stray single
// shifts, with every unspecified position filled in.
func genSequence(d *scan.Circuit, sz sizing, rng *logic.RandFiller) logic.Sequence {
	target := sz.seqMin + rng.Intn(sz.seqSpan)
	var seq logic.Sequence
	for len(seq) < target {
		switch rng.Intn(4) {
		case 0: // full scan-in of a random state
			state := make([]logic.Value, d.NSV)
			for i := range state {
				state[i] = rng.Next()
			}
			load, _ := d.ScanInSequence(state)
			seq = append(seq, load...)
		case 1: // a stray shift vector
			seq = append(seq, d.ShiftVector(rng.Next()))
		default: // a burst of functional vectors
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				v := logic.NewVector(d.Orig.NumInputs())
				seq = append(seq, d.FunctionalVector(v))
			}
		}
	}
	seq = seq[:target]
	seq.FillX(rng)
	return seq
}

// genTests builds 1–sz.tests conventional scan tests (SI, T) with fully
// specified values over the original circuit.
func genTests(d *scan.Circuit, sz sizing, rng *logic.RandFiller) []translate.ScanTest {
	tests := make([]translate.ScanTest, 1+rng.Intn(sz.tests))
	for ti := range tests {
		si := make(logic.Vector, d.NSV)
		for i := range si {
			si[i] = rng.Next()
		}
		T := make(logic.Sequence, 1+rng.Intn(sz.tlen))
		for vi := range T {
			v := make(logic.Vector, d.Orig.NumInputs())
			for i := range v {
				v[i] = rng.Next()
			}
			T[vi] = v
		}
		tests[ti] = translate.ScanTest{SI: si, T: T}
	}
	return tests
}

// LiftedStemFaults pairs every stem fault of the original circuit with
// its image in C_scan (matched by signal name; scan insertion keeps
// every original net under its own name). The conventional-application
// model is evaluated on the orig faults, the translated sequence on the
// lifted ones.
func LiftedStemFaults(d *scan.Circuit) (orig, lifted []fault.Fault) {
	for _, f := range fault.Universe(d.Orig, false) {
		if !f.Site.IsStem() {
			continue
		}
		id, ok := d.Scan.SignalByName(d.Orig.SignalName(f.Site.Signal))
		if !ok {
			continue
		}
		orig = append(orig, f)
		lf := f
		lf.Site.Signal = id
		lifted = append(lifted, lf)
	}
	return orig, lifted
}
