package xcheck

import (
	"fmt"
	"runtime"

	"repro/internal/compact"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/runctl"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Invariant is one reusable correctness predicate over a workload.
// Check returns "" when the invariant holds and a failure description
// otherwise; it must be deterministic in the workload (re-running the
// same workload reproduces the same verdict), because the shrinker
// re-evaluates it on mutated copies.
type Invariant struct {
	Name  string
	Check func(w *Workload) string
}

// Invariants returns every cross-check in canonical order.
func Invariants() []Invariant {
	return []Invariant{
		{"diff/run", checkDiffRun},
		{"diff/subset", checkDiffSubset},
		{"diff/reference", checkReference},
		{"compact/keeps-detections", checkCompactKeepsDetections},
		{"compact/engines", checkEngineEquivalence},
		{"compact/pipeline-length", checkPipelineLength},
		{"resume/identical", checkResumeIdentical},
		{"seq/padding-monotone", checkPaddingMonotone},
		{"translate/guarantee", checkTranslateGuarantee},
		{"store/failure-survival", checkStoreSurvival},
		{"jobs/partition-merge", checkPartitionMerge},
		{"jobs/worker-claim", checkWorkerClaim},
	}
}

// workerCounts is the worker fan-out matrix of the differential checks:
// serial, a fixed small pool, and whatever the host offers.
func workerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	out := counts[:0]
	for _, n := range counts {
		dup := false
		for _, m := range out {
			dup = dup || m == n
		}
		if !dup {
			out = append(out, n)
		}
	}
	return out
}

// oracleRun is the baseline every engine variant is compared against:
// the full-sweep kernel on a single worker.
func oracleRun(w *Workload, subset []int) []int {
	opts := sim.Options{Kernel: sim.KernelFull}
	if subset == nil {
		return sim.Run(w.Design.Scan, w.Seq, w.Faults, opts).DetectedAt
	}
	return sim.RunSubset(w.Design.Scan, w.Seq, w.Faults, subset, opts).DetectedAt
}

// diffDetAt reports the first disagreement between two DetectedAt
// slices, naming the fault via idx (identity mapping when nil).
func (w *Workload) diffDetAt(label string, want, got []int, idx []int) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%s: result length %d, oracle %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			fi := i
			if idx != nil {
				fi = idx[i]
			}
			return fmt.Sprintf("%s: fault %d (%s): detected at %d, oracle %d",
				label, fi, w.Faults[fi].Name(w.Design.Scan), got[i], want[i])
		}
	}
	return ""
}

// checkDiffRun: the event kernel and the full-sweep kernel, through the
// pooled Simulator at every worker count, all agree with the
// single-worker full sweep on every fault's first detection time.
func checkDiffRun(w *Workload) string {
	want := oracleRun(w, nil)
	for _, kernel := range []sim.Kernel{sim.KernelEvent, sim.KernelFull} {
		for _, workers := range workerCounts() {
			s := sim.NewSimulator(w.Design.Scan, workers)
			// Two passes through one Simulator also exercise the pooled
			// machines and the cached fault-free trace.
			for pass := 0; pass < 2; pass++ {
				got := s.Run(w.Seq, w.Faults, sim.Options{Kernel: kernel}).DetectedAt
				label := fmt.Sprintf("kernel=%d workers=%d pass=%d", kernel, workers, pass)
				if msg := w.diffDetAt(label, want, got, nil); msg != "" {
					return msg
				}
			}
		}
	}
	return ""
}

// checkDiffSubset: RunSubset agrees with the oracle restricted to the
// workload's fault subset, for both kernels at every worker count.
func checkDiffSubset(w *Workload) string {
	if len(w.Subset) == 0 {
		return ""
	}
	want := oracleRun(w, w.Subset)
	for _, kernel := range []sim.Kernel{sim.KernelEvent, sim.KernelFull} {
		for _, workers := range workerCounts() {
			s := sim.NewSimulator(w.Design.Scan, workers)
			got := s.RunSubset(w.Seq, w.Faults, w.Subset, sim.Options{Kernel: kernel}, nil, nil).DetectedAt
			label := fmt.Sprintf("subset kernel=%d workers=%d", kernel, workers)
			if msg := w.diffDetAt(label, want, got, w.Subset); msg != "" {
				return msg
			}
		}
	}
	return ""
}

// checkReference: the deliberately naive scalar reference simulator
// agrees with the production oracle on a deterministic fault sample.
func checkReference(w *Workload) string {
	if len(w.RefSample) == 0 {
		return ""
	}
	want := oracleRun(w, w.RefSample)
	got := make([]int, len(w.RefSample))
	for i, fi := range w.RefSample {
		got[i] = RefDetect(w.Design.Scan, w.Seq, w.Faults[fi], nil)
	}
	return w.diffDetAt("reference", want, got, w.RefSample)
}

// detSet returns the detected-fault mask of seq over the workload's
// fault list.
func (w *Workload) detSet(seq logic.Sequence) []bool {
	det := sim.Run(w.Design.Scan, seq, w.Faults, sim.Options{}).DetectedAt
	out := make([]bool, len(det))
	for i, t := range det {
		out[i] = t != sim.NotDetected
	}
	return out
}

// lostDetection names the first fault detected by the input mask but
// not the output mask, or "".
func (w *Workload) lostDetection(label string, in, out []bool) string {
	for fi := range in {
		if in[fi] && !out[fi] {
			return fmt.Sprintf("%s: fault %d (%s) detected by input but not output",
				label, fi, w.Faults[fi].Name(w.Design.Scan))
		}
	}
	return ""
}

// checkCompactKeepsDetections: neither vector restoration nor vector
// omission ever loses a detection (the paper's compaction procedures
// only discard vectors whose removal keeps every target detected).
func checkCompactKeepsDetections(w *Workload) string {
	before := w.detSet(w.Seq)
	restored, _ := compact.Restore(w.Design.Scan, w.Seq, w.Faults)
	if msg := w.lostDetection("restore", before, w.detSet(restored)); msg != "" {
		return msg
	}
	omitted, _ := compact.Omit(w.Design.Scan, w.Seq, w.Faults)
	if msg := w.lostDetection("omit", before, w.detSet(omitted)); msg != "" {
		return msg
	}
	return ""
}

// seqEqual compares two sequences vector by vector.
func seqEqual(a, b logic.Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// semantics extracts the Stats fields every engine must agree on.
// Simulations and BatchSteps are deliberately excluded: they account
// for the work an engine performed, which is exactly what the engines
// differ in.
func semantics(st compact.Stats) [4]int {
	return [4]int{st.BeforeLen, st.AfterLen, st.TargetFaults, st.ExtraDetected}
}

// checkEngineEquivalence: the incremental trial engine produces
// sequences bit-identical to the serial scratch engine — for both
// compaction passes, at every worker count, in both restoration orders
// — along with identical semantic stats, and an incremental run
// interrupted at an arbitrary poll boundary resumes to the same output.
func checkEngineEquivalence(w *Workload) string {
	type result struct {
		seq logic.Sequence
		st  compact.Stats
	}
	run := func(opts compact.Options) (result, result) {
		r, rst := compact.RestoreOpts(w.Design.Scan, w.Seq, w.Faults, opts)
		o, ost := compact.OmitOpts(w.Design.Scan, w.Seq, w.Faults, opts)
		return result{r, rst}, result{o, ost}
	}
	for _, order := range []compact.Order{compact.OrderDetection, compact.OrderADI} {
		refR, refO := run(compact.Options{Workers: 1, Engine: compact.EngineScratch, Order: order})
		for _, workers := range workerCounts() {
			gotR, gotO := run(compact.Options{Workers: workers, Engine: compact.EngineIncremental, Order: order})
			for _, c := range []struct {
				pass     string
				ref, got result
			}{{"restore", refR, gotR}, {"omit", refO, gotO}} {
				label := fmt.Sprintf("engines/%s order=%s workers=%d", c.pass, order, workers)
				if !seqEqual(c.ref.seq, c.got.seq) {
					return fmt.Sprintf("%s: incremental output (%d vectors) differs from scratch (%d vectors)",
						label, len(c.got.seq), len(c.ref.seq))
				}
				if semantics(c.ref.st) != semantics(c.got.st) {
					return fmt.Sprintf("%s: incremental stats %v differ from scratch %v",
						label, semantics(c.got.st), semantics(c.ref.st))
				}
			}
		}
	}

	// Interrupt the incremental engine at a random poll boundary and
	// resume; the final output must still match the scratch reference.
	rng := w.rng(9)
	polls := int64(1 + rng.Intn(60))
	refR, refO := run(compact.Options{Workers: 1, Engine: compact.EngineScratch})
	for _, c := range []struct {
		pass string
		want logic.Sequence
		run  func(ctl *runctl.Control) (logic.Sequence, compact.Stats)
	}{
		{"restore", refR.seq, func(ctl *runctl.Control) (logic.Sequence, compact.Stats) {
			return compact.RestoreOpts(w.Design.Scan, w.Seq, w.Faults,
				compact.Options{Workers: 1, Engine: compact.EngineIncremental, Control: ctl})
		}},
		{"omit", refO.seq, func(ctl *runctl.Control) (logic.Sequence, compact.Stats) {
			return compact.OmitOpts(w.Design.Scan, w.Seq, w.Faults,
				compact.Options{Workers: 1, Engine: compact.EngineIncremental, Control: ctl})
		}},
	} {
		store := runctl.NewMemStore()
		_, st := c.run(resumeControl(store, polls))
		if st.Status == runctl.Complete {
			continue // finished before the injected stop; nothing to resume
		}
		if st.Status != runctl.Canceled {
			return fmt.Sprintf("engines/resume/%s: interrupted leg status %v, want canceled", c.pass, st.Status)
		}
		got, st := c.run(&runctl.Control{Store: store, Resume: true})
		if st.Status != runctl.Resumed {
			return fmt.Sprintf("engines/resume/%s: resumed leg status %v", c.pass, st.Status)
		}
		if !seqEqual(c.want, got) {
			return fmt.Sprintf("engines/resume/%s: resumed incremental output (%d vectors) differs from scratch (%d vectors) after stop at poll %d",
				c.pass, len(got), len(c.want), polls)
		}
	}
	return ""
}

// checkPipelineLength: the restore→omit pipeline never grows the
// sequence at either stage, and its final output keeps every detection.
func checkPipelineLength(w *Workload) string {
	restored, omitted, _, _ := compact.RestoreThenOmit(w.Design.Scan, w.Seq, w.Faults)
	if len(restored) > len(w.Seq) {
		return fmt.Sprintf("pipeline: restored %d vectors from %d input", len(restored), len(w.Seq))
	}
	if len(omitted) > len(restored) {
		return fmt.Sprintf("pipeline: omitted %d vectors from %d restored", len(omitted), len(restored))
	}
	return w.lostDetection("pipeline", w.detSet(w.Seq), w.detSet(omitted))
}

// interrupted runs an engine leg with a poll-injected stop after p
// polls, then (if it stopped) a resume leg, and reports whether the
// interrupt landed. Engines run single-worker so the poll sequence is
// deterministic.
func resumeControl(store runctl.Store, polls int64) *runctl.Control {
	return &runctl.Control{Budget: runctl.Budget{StopAfterPolls: polls}, Store: store}
}

// checkResumeIdentical: interrupting restoration, omission or fault
// simulation at an arbitrary poll boundary and resuming from the
// checkpoint yields output bit-identical to the uninterrupted run.
func checkResumeIdentical(w *Workload) string {
	rng := w.rng(6)
	polls := int64(1 + rng.Intn(60))

	type pass struct {
		name string
		run  func(ctl *runctl.Control) (logic.Sequence, runctl.Status)
	}
	passes := []pass{
		{"restore", func(ctl *runctl.Control) (logic.Sequence, runctl.Status) {
			out, st := compact.RestoreOpts(w.Design.Scan, w.Seq, w.Faults, compact.Options{Workers: 1, Control: ctl})
			return out, st.Status
		}},
		{"omit", func(ctl *runctl.Control) (logic.Sequence, runctl.Status) {
			out, st := compact.OmitOpts(w.Design.Scan, w.Seq, w.Faults, compact.Options{Workers: 1, Control: ctl})
			return out, st.Status
		}},
	}
	for _, p := range passes {
		want, st := p.run(nil)
		if st != runctl.Complete {
			return fmt.Sprintf("resume/%s: uninterrupted run status %v", p.name, st)
		}
		store := runctl.NewMemStore()
		_, st = p.run(resumeControl(store, polls))
		if st == runctl.Complete {
			continue // finished before the injected stop; nothing to resume
		}
		if st != runctl.Canceled {
			return fmt.Sprintf("resume/%s: interrupted leg status %v, want canceled", p.name, st)
		}
		got, st := p.run(&runctl.Control{Store: store, Resume: true})
		if st != runctl.Resumed {
			return fmt.Sprintf("resume/%s: resumed leg status %v", p.name, st)
		}
		if !seqEqual(want, got) {
			return fmt.Sprintf("resume/%s: resumed output (%d vectors) differs from uninterrupted (%d vectors) after stop at poll %d",
				p.name, len(got), len(want), polls)
		}
	}

	// Fault simulation: same drill on DetectedAt.
	want := sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{}).DetectedAt
	store := runctl.NewMemStore()
	res := sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{Control: resumeControl(store, polls)})
	if res.Status.Stopped() {
		if res.Status != runctl.Canceled {
			return fmt.Sprintf("resume/sim: interrupted leg status %v, want canceled", res.Status)
		}
		res = sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{Control: &runctl.Control{Store: store, Resume: true}})
		if res.Status != runctl.Resumed {
			return fmt.Sprintf("resume/sim: resumed leg status %v", res.Status)
		}
	}
	return w.diffDetAt(fmt.Sprintf("resume/sim polls=%d", polls), want, res.DetectedAt, nil)
}

// checkPaddingMonotone: appending scan_sel = 1 padding vectors to the
// end of a sequence never reduces coverage, and never changes the
// detection time of an already-detected fault (the prefix is
// untouched).
func checkPaddingMonotone(w *Workload) string {
	rng := w.rng(7)
	padded := w.Seq.Clone()
	for n := 1 + rng.Intn(8); n > 0; n-- {
		v := w.Design.ShiftVector(rng.Next())
		padded = append(padded, v)
	}
	padded.FillX(rng)
	base := sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{}).DetectedAt
	more := sim.Run(w.Design.Scan, padded, w.Faults, sim.Options{}).DetectedAt
	for fi := range base {
		switch {
		case base[fi] != sim.NotDetected && more[fi] != base[fi]:
			return fmt.Sprintf("padding: fault %d (%s) moved from detection at %d to %d",
				fi, w.Faults[fi].Name(w.Design.Scan), base[fi], more[fi])
		case base[fi] == sim.NotDetected && more[fi] != sim.NotDetected && more[fi] < len(w.Seq):
			return fmt.Sprintf("padding: fault %d (%s) newly detected at %d, inside the unchanged prefix of %d",
				fi, w.Faults[fi].Name(w.Design.Scan), more[fi], len(w.Seq))
		}
	}
	return ""
}

// checkTranslateGuarantee: the translated flat sequence detects every
// liftable stem fault that the idealized conventional application of
// the same tests detects (the paper's Section 3 guarantee).
func checkTranslateGuarantee(w *Workload) string {
	if len(w.Tests) == 0 {
		return ""
	}
	seq, err := translate.Translate(w.Design, w.Tests, w.Seed)
	if err != nil {
		return fmt.Sprintf("translate: %v", err)
	}
	orig, lifted := LiftedStemFaults(w.Design)
	// Check a sample at the workload's fault budget; both the per-fault
	// scalar conventional model and the translated-sequence simulation
	// run only over the sampled faults.
	sample := sampleIndices(len(orig), len(w.Faults), w.rng(8))
	origS := make([]fault.Fault, len(sample))
	liftedS := make([]fault.Fault, len(sample))
	for i, fi := range sample {
		origS[i] = orig[fi]
		liftedS[i] = lifted[fi]
	}
	det := sim.Run(w.Design.Scan, seq, liftedS, sim.Options{}).DetectedAt
	for i := range sample {
		if ConventionalDetect(w.Design.Orig, w.Tests, origS[i]) && det[i] == sim.NotDetected {
			return fmt.Sprintf("translate: fault %s detected conventionally but missed by the translated sequence",
				liftedS[i].Name(w.Design.Scan))
		}
	}
	return ""
}
