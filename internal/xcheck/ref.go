// Package xcheck is a seeded differential and metamorphic checking
// harness for the library's fault-simulation, compaction and
// translation engines. It cross-checks the production code paths
// against each other and against a small, deliberately naive reference
// simulator, over randomized workloads derived from a seed, and shrinks
// any violation to a minimized reproduction.
//
// The package is a correctness tool, not a benchmark: everything in it
// favors obviousness over speed. See ALGORITHMS.md §12 for the list of
// invariants and cmd/xcheck for the command-line driver.
package xcheck

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/translate"
)

// refMachine is the reference simulator: one scalar three-valued
// machine per (circuit, fault) pair. It is written independently of
// internal/sim — no bit-parallel planes, no batching, no fault-free
// trace sharing, no event queues — so that an agreement between the two
// is evidence, not tautology. One machine simulates one circuit copy;
// a nil fault gives the fault-free copy.
type refMachine struct {
	c     *netlist.Circuit
	flt   *fault.Fault
	state []logic.Value // flip-flop present-state values
	vals  []logic.Value // per-signal values of the current cycle
}

func newRefMachine(c *netlist.Circuit, flt *fault.Fault) *refMachine {
	m := &refMachine{
		c:     c,
		flt:   flt,
		state: make([]logic.Value, c.NumFFs()),
		vals:  make([]logic.Value, len(c.Signals)),
	}
	for i := range m.state {
		m.state[i] = logic.X
	}
	return m
}

// setState overwrites the flip-flop state (used to model an idealized
// scan load). Missing positions stay untouched.
func (m *refMachine) setState(s []logic.Value) {
	copy(m.state, s)
}

// forced reports the stuck value if the fault forces what readers of
// signal sig see (a stem fault on sig), else the given value.
func (m *refMachine) forced(sig netlist.SignalID, v logic.Value) logic.Value {
	if m.flt != nil && m.flt.Site.IsStem() && m.flt.Site.Signal == sig {
		return m.flt.SA
	}
	return v
}

// pinValue returns the value gate gi reads on input pin p, applying a
// branch fault sitting on exactly that pin.
func (m *refMachine) pinValue(gi int32, p int) logic.Value {
	v := m.vals[m.c.Gates[gi].In[p]]
	if m.flt != nil && m.flt.Site.Gate == gi && int(m.flt.Site.Pin) == p {
		return m.flt.SA
	}
	return v
}

// evalGate evaluates gate gi from the current signal values.
func (m *refMachine) evalGate(gi int32) logic.Value {
	g := m.c.Gates[gi]
	acc := m.pinValue(gi, 0)
	for p := 1; p < len(g.In); p++ {
		in := m.pinValue(gi, p)
		switch g.Type {
		case netlist.AND, netlist.NAND:
			acc = logic.And(acc, in)
		case netlist.OR, netlist.NOR:
			acc = logic.Or(acc, in)
		case netlist.XOR, netlist.XNOR:
			acc = logic.Xor(acc, in)
		}
	}
	switch g.Type {
	case netlist.NOT, netlist.NAND, netlist.NOR, netlist.XNOR:
		acc = acc.Not()
	}
	return acc
}

// step applies input vector v for one clock cycle: evaluate the
// combinational logic, sample the primary outputs, latch the next
// state. Short vectors read X on the missing inputs.
func (m *refMachine) step(v logic.Vector) []logic.Value {
	c := m.c
	for i, in := range c.Inputs {
		val := logic.X
		if i < len(v) {
			val = v[i]
		}
		m.vals[in] = m.forced(in, val)
	}
	for fi, ff := range c.FFs {
		m.vals[ff.Q] = m.forced(ff.Q, m.state[fi])
	}
	for _, gi := range c.Order {
		out := c.Gates[gi].Out
		m.vals[out] = m.forced(out, m.evalGate(gi))
	}
	outs := make([]logic.Value, c.NumOutputs())
	for i, o := range c.Outputs {
		outs[i] = m.vals[o]
	}
	for fi, ff := range c.FFs {
		nv := m.vals[ff.D]
		if m.flt != nil && m.flt.Site.FF == int32(fi) {
			nv = m.flt.SA
		}
		m.state[fi] = nv
	}
	return outs
}

// RefDetect simulates seq on two independent scalar machines (fault-free
// and with f injected) and returns the first cycle at which a primary
// output carries a binary value opposite to a binary fault-free value,
// or sim.NotDetected. initial (optional) sets the starting flip-flop
// state of both machines.
func RefDetect(c *netlist.Circuit, seq logic.Sequence, f fault.Fault, initial []logic.Value) int {
	good := newRefMachine(c, nil)
	bad := newRefMachine(c, &f)
	if initial != nil {
		good.setState(initial)
		bad.setState(initial)
	}
	for t, v := range seq {
		g := good.step(v)
		b := bad.step(v)
		for po := range g {
			if g[po].IsBinary() && b[po].IsBinary() && g[po] != b[po] {
				return t
			}
		}
	}
	return sim.NotDetected
}

// RefDetectAll runs RefDetect for every fault, one naive single-fault
// pass each.
func RefDetectAll(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, initial []logic.Value) []int {
	det := make([]int, len(faults))
	for i, f := range faults {
		det[i] = RefDetect(c, seq, f, initial)
	}
	return det
}

// chainCorruptFF returns the flip-flop index from which scan shifting is
// corrupted by f, or -1 when shifting is clean. A stem fault on a
// flip-flop output forces everything read from that chain position; a
// branch fault on a flip-flop D pin forces everything latched into it.
// Faults on combinational gates or primary inputs never corrupt a shift:
// the scan multiplexers gate the functional path off with a binary
// scan_sel.
func chainCorruptFF(c *netlist.Circuit, f fault.Fault) int {
	if f.Site.FF >= 0 {
		return int(f.Site.FF)
	}
	if f.Site.IsStem() {
		return c.FFIndex(f.Site.Signal)
	}
	return -1
}

// ConventionalDetect reports whether the idealized conventional scan
// application of tests to circuit c detects fault f: per test, the
// scanned-in state is applied, the primary input sequence T runs with
// detection on the primary outputs, and the final state is scanned out
// with detection on any binary state bit opposite to a binary fault-free
// bit.
//
// The model is deliberately conservative (it under-approximates real
// conventional detection, never over-approximates it), so it is a sound
// lower bound for the paper's Section 3 guarantee that a translated
// sequence detects everything conventional application detects:
//
//   - scan-in: the faulty copy receives a corrupted load — every chain
//     position at or beyond a faulty flip-flop reads the stuck value,
//     exactly what shifting through the faulty position produces;
//   - scan-out: the observed faulty bit is the stuck value for every
//     position at or before the faulty flip-flop (the data shifts
//     through it on the way out), the latched state elsewhere.
func ConventionalDetect(c *netlist.Circuit, tests []translate.ScanTest, f fault.Fault) bool {
	j := chainCorruptFF(c, f)
	for _, test := range tests {
		good := newRefMachine(c, nil)
		bad := newRefMachine(c, &f)
		good.setState(test.SI)
		badSI := append([]logic.Value(nil), test.SI...)
		if j >= 0 {
			for k := j; k < len(badSI); k++ {
				badSI[k] = f.SA
			}
		}
		bad.setState(badSI)
		for _, v := range test.T {
			g := good.step(v)
			b := bad.step(v)
			for po := range g {
				if g[po].IsBinary() && b[po].IsBinary() && g[po] != b[po] {
					return true
				}
			}
		}
		for fi := range good.state {
			gv := good.state[fi]
			bv := bad.state[fi]
			if fi <= j {
				bv = f.SA
			}
			if gv.IsBinary() && bv.IsBinary() && gv != bv {
				return true
			}
		}
	}
	return false
}
