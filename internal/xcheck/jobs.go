package xcheck

import (
	"fmt"

	"repro/internal/compact"
	"repro/internal/jobs"
	"repro/internal/runctl"
	"repro/internal/sim"
)

// checkPartitionMerge pins the jobs service's sharding protocol: the
// fault universe split into Slots-aligned partitions by
// sim.PartitionFaults, each shard simulated on its own single-worker
// simulator (as independent scand workers would), and the per-shard
// DetectedAt ranges merged by jobs.MergeShard, must reproduce the
// single-process run bit for bit at every partition count and
// concurrency. This is the invariant that makes a multi-worker scand
// job's result byte-identical to an unsharded one.
func checkPartitionMerge(w *Workload) string {
	want := sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{}).DetectedAt
	for _, parts := range []int{2, 3, 7} {
		for _, conc := range []int{1, 2} {
			got := jobs.ShardedDetect(w.Design.Scan, w.Seq, w.Faults, parts, conc)
			label := fmt.Sprintf("jobs/partition parts=%d conc=%d", parts, conc)
			if msg := w.diffDetAt(label, want, got, nil); msg != "" {
				return msg
			}
		}
	}
	return ""
}

// checkWorkerClaim pins the worker-claim sharding protocol for the
// compact flow: the omission grid split into sequential chunks, each
// chunk resuming from its predecessor's checkpoint (the exact chain a
// scand job hands to remote scanworkers), must reproduce the
// single-process restore→omit pipeline bit for bit at every chunk
// count — including when a chunk is interrupted mid-share and re-run
// from its own checkpoint, which is what a lease reclaim after a
// worker crash does.
func checkWorkerClaim(w *Workload) string {
	wantR, wantO, wantRst, wantOst := compact.RestoreThenOmitOpts(
		w.Design.Scan, w.Seq, w.Faults, compact.Options{Workers: 1})
	if wantRst.Status != runctl.Complete || wantOst.Status != runctl.Complete {
		return fmt.Sprintf("worker-claim: reference pipeline status %v/%v", wantRst.Status, wantOst.Status)
	}
	for _, chunks := range []int{1, 2, 3} {
		restored, omitted, _, ost, err := compact.ChunkedRestoreThenOmit(
			w.Design.Scan, w.Seq, w.Faults, compact.Options{Workers: 1}, chunks)
		label := fmt.Sprintf("worker-claim chunks=%d", chunks)
		if err != nil {
			return fmt.Sprintf("%s: %v", label, err)
		}
		if !seqEqual(wantR, restored) {
			return fmt.Sprintf("%s: restored %d vectors, reference %d", label, len(restored), len(wantR))
		}
		if !seqEqual(wantO, omitted) {
			return fmt.Sprintf("%s: omitted %d vectors, reference %d", label, len(omitted), len(wantO))
		}
		if semantics(ost) != semantics(wantOst) {
			return fmt.Sprintf("%s: omit stats %v, reference %v", label, semantics(ost), semantics(wantOst))
		}
	}

	// The reclaim path: chunk 0 of 2 interrupted at a poll boundary,
	// then re-run from its own checkpoint — as the janitor does after a
	// crashed worker — before chunk 1 finishes the grid.
	rng := w.rng(10)
	polls := int64(1 + rng.Intn(4))
	store0 := runctl.NewMemStore()
	opts := compact.Options{Workers: 1,
		Control: &runctl.Control{Budget: runctl.Budget{StopAfterPolls: polls}, Store: store0}}
	_, st, chunkDone, err := compact.OmitChunkOpts(w.Design.Scan, wantR, w.Faults, opts, 0, 2)
	if err != nil {
		return fmt.Sprintf("worker-claim/reclaim: interrupted chunk: %v", err)
	}
	if !chunkDone {
		if st.Status != runctl.Canceled {
			return fmt.Sprintf("worker-claim/reclaim: interrupted chunk status %v, want canceled", st.Status)
		}
		opts.Control = &runctl.Control{Store: store0}
		if _, _, chunkDone, err = compact.OmitChunkOpts(w.Design.Scan, wantR, w.Faults, opts, 0, 2); err != nil {
			return fmt.Sprintf("worker-claim/reclaim: re-run chunk: %v", err)
		}
		if !chunkDone {
			return "worker-claim/reclaim: re-run chunk did not finish its share"
		}
	}
	store1 := runctl.NewMemStore()
	if err := compact.CopySection(store1, store0, compact.OmitSection); err != nil {
		return fmt.Sprintf("worker-claim/reclaim: seed chunk 1: %v", err)
	}
	opts.Control = &runctl.Control{Store: store1}
	out, ost, chunkDone, err := compact.OmitChunkOpts(w.Design.Scan, wantR, w.Faults, opts, 1, 2)
	if err != nil {
		return fmt.Sprintf("worker-claim/reclaim: final chunk: %v", err)
	}
	if !chunkDone || !ost.Status.Done() {
		return fmt.Sprintf("worker-claim/reclaim: final chunk status %v (done=%v)", ost.Status, chunkDone)
	}
	if !seqEqual(wantO, out) {
		return fmt.Sprintf("worker-claim/reclaim: output %d vectors after stop at poll %d, reference %d",
			len(out), polls, len(wantO))
	}
	return ""
}
