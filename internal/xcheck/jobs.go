package xcheck

import (
	"fmt"

	"repro/internal/jobs"
	"repro/internal/sim"
)

// checkPartitionMerge pins the jobs service's sharding protocol: the
// fault universe split into Slots-aligned partitions by
// sim.PartitionFaults, each shard simulated on its own single-worker
// simulator (as independent scand workers would), and the per-shard
// DetectedAt ranges merged by jobs.MergeShard, must reproduce the
// single-process run bit for bit at every partition count and
// concurrency. This is the invariant that makes a multi-worker scand
// job's result byte-identical to an unsharded one.
func checkPartitionMerge(w *Workload) string {
	want := sim.Run(w.Design.Scan, w.Seq, w.Faults, sim.Options{}).DetectedAt
	for _, parts := range []int{2, 3, 7} {
		for _, conc := range []int{1, 2} {
			got := jobs.ShardedDetect(w.Design.Scan, w.Seq, w.Faults, parts, conc)
			label := fmt.Sprintf("jobs/partition parts=%d conc=%d", parts, conc)
			if msg := w.diffDetAt(label, want, got, nil); msg != "" {
				return msg
			}
		}
	}
	return ""
}
