package xcheck

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/compact"
	"repro/internal/failpoint"
	"repro/internal/logic"
	"repro/internal/runctl"
)

// checkStoreSurvival: the failure-survival contract of the checkpoint
// store, cross-checked on real workloads. Three legs:
//
//  1. rollback — a run interrupted twice leaves two on-disk generations;
//     flipping a bit in the primary must roll the resume back to the
//     previous generation and still finish bit-identical to an
//     uninterrupted run;
//  2. degradation — with both generations damaged, the restoration pass
//     must complete from scratch with identical output instead of
//     failing or panicking;
//  3. transient faults — a run whose store injects one transient sync
//     error (via the failpoint registry) must absorb it in the retry
//     layer and stay bit-identical.
func checkStoreSurvival(w *Workload) string {
	dir, err := os.MkdirTemp("", "xcheck-store-")
	if err != nil {
		return fmt.Sprintf("store: temp dir: %v", err)
	}
	defer os.RemoveAll(dir)

	restore := func(ctl *runctl.Control) (logic.Sequence, compact.Stats) {
		return compact.RestoreOpts(w.Design.Scan, w.Seq, w.Faults,
			compact.Options{Workers: 1, Control: ctl})
	}
	want, st := restore(nil)
	if st.Status != runctl.Complete {
		return fmt.Sprintf("store: uninterrupted run status %v", st.Status)
	}

	// Interrupt twice at workload-derived poll counts so the store holds
	// a primary and a previous generation. A workload small enough to
	// finish inside the first budget has nothing to check.
	rng := w.rng(10)
	path := filepath.Join(dir, "ckpt")
	for leg := 0; leg < 2; leg++ {
		ctl := &runctl.Control{
			Budget: runctl.Budget{StopAfterPolls: int64(1 + rng.Intn(20))},
			Store:  runctl.NewFileStore(path),
			Resume: leg > 0,
		}
		if _, st := restore(ctl); st.Status.Done() {
			return ""
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		return fmt.Sprintf("store: no previous generation after two interrupted legs: %v", err)
	}

	// Leg 1: corrupt the primary, expect rollback and bit-identity.
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Sprintf("store: read primary: %v", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-2] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		return fmt.Sprintf("store: corrupt primary: %v", err)
	}
	fs := runctl.NewFileStore(path)
	got, st := restore(&runctl.Control{Store: fs, Resume: true})
	if st.Status != runctl.Resumed && st.Status != runctl.Complete {
		return fmt.Sprintf("store/rollback: resume status %v (err %v)", st.Status, st.Err)
	}
	if !fs.RolledBack() {
		return "store/rollback: corrupt primary did not roll back to the previous generation"
	}
	if !seqEqual(want, got) {
		return fmt.Sprintf("store/rollback: resumed output (%d vectors) differs from uninterrupted (%d vectors)",
			len(got), len(want))
	}

	// Leg 2: corrupt what is left (the rollback promoted the backup, so
	// damage every remaining generation), expect degraded completion.
	for _, p := range []string{path, path + ".1"} {
		d, err := os.ReadFile(p)
		if err != nil {
			continue
		}
		if err := os.WriteFile(p, d[:len(d)/2], 0o644); err != nil {
			return fmt.Sprintf("store: corrupt %s: %v", p, err)
		}
	}
	got, st = restore(&runctl.Control{Store: runctl.NewFileStore(path), Resume: true})
	if st.Status != runctl.Complete || st.Err != nil {
		return fmt.Sprintf("store/degrade: status %v err %v, want degraded completion", st.Status, st.Err)
	}
	if !seqEqual(want, got) {
		return fmt.Sprintf("store/degrade: degraded output (%d vectors) differs from uninterrupted (%d vectors)",
			len(got), len(want))
	}

	// Leg 3: one transient injected sync failure must be retried away.
	defer failpoint.Disable()
	if err := failpoint.Enable("runctl.store.sync=error@1#1", w.Seed); err != nil {
		return fmt.Sprintf("store/transient: arm failpoint: %v", err)
	}
	tpath := filepath.Join(dir, "transient.ckpt")
	got, st = restore(&runctl.Control{Store: runctl.NewFileStore(tpath)})
	fired := failpoint.Fired("runctl.store.sync")
	failpoint.Disable()
	if st.Status != runctl.Complete || st.Err != nil {
		return fmt.Sprintf("store/transient: status %v err %v, want complete despite one injected sync error", st.Status, st.Err)
	}
	if !seqEqual(want, got) {
		return "store/transient: output differs after a retried store fault"
	}
	if fired == 0 {
		return "store/transient: injected sync fault never fired (site renamed?)"
	}
	return ""
}
