package xcheck

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/translate"
)

// Violation is one invariant failure, possibly minimized by Shrink.
type Violation struct {
	Invariant string
	Workload  *Workload
	Detail    string
	// ShrinkChecks counts invariant re-evaluations the shrinker spent.
	ShrinkChecks int
}

// clone returns a workload copy whose slices can be mutated without
// touching the original. The Design pointer is shared (it is immutable).
func (w *Workload) clone() *Workload {
	c := *w
	c.Seq = w.Seq.Clone()
	c.Faults = append([]fault.Fault(nil), w.Faults...)
	c.Subset = append([]int(nil), w.Subset...)
	c.RefSample = append([]int(nil), w.RefSample...)
	c.Tests = append([]translate.ScanTest(nil), w.Tests...)
	return &c
}

// dropVectors removes sequence positions [lo, hi).
func (w *Workload) dropVectors(lo, hi int) *Workload {
	c := w.clone()
	c.Seq = append(c.Seq[:lo], c.Seq[hi:]...)
	return c
}

// dropFaults removes fault indices [lo, hi) and remaps the subset and
// reference-sample index lists onto the surviving faults.
func (w *Workload) dropFaults(lo, hi int) *Workload {
	c := w.clone()
	c.Faults = append(c.Faults[:lo], c.Faults[hi:]...)
	remap := func(idx []int) []int {
		out := idx[:0]
		for _, fi := range idx {
			switch {
			case fi < lo:
				out = append(out, fi)
			case fi >= hi:
				out = append(out, fi-(hi-lo))
			}
		}
		return out
	}
	c.Subset = remap(c.Subset)
	c.RefSample = remap(c.RefSample)
	return c
}

// dropTests removes conventional tests [lo, hi).
func (w *Workload) dropTests(lo, hi int) *Workload {
	c := w.clone()
	c.Tests = append(c.Tests[:lo], c.Tests[hi:]...)
	return c
}

// dimension is one shrinkable axis of a workload.
type dimension struct {
	name string
	size func(*Workload) int
	drop func(*Workload, int, int) *Workload
}

func dimensions() []dimension {
	return []dimension{
		{"vectors", func(w *Workload) int { return len(w.Seq) }, (*Workload).dropVectors},
		{"faults", func(w *Workload) int { return len(w.Faults) }, (*Workload).dropFaults},
		{"tests", func(w *Workload) int { return len(w.Tests) }, (*Workload).dropTests},
	}
}

// Shrink greedily minimizes a failing workload: for every dimension it
// repeatedly removes the largest chunk (halving the window down to
// single elements, scanning from the back) whose removal keeps the
// invariant failing — a ddmin-style reduction. detail must be the
// failure inv.Check reported on w. maxChecks bounds the re-evaluation
// budget (<= 0 means the default of 400).
func Shrink(inv Invariant, w *Workload, detail string, maxChecks int) *Violation {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	v := &Violation{Invariant: inv.Name, Workload: w, Detail: detail}
	for _, dim := range dimensions() {
		for chunk := dim.size(v.Workload) / 2; chunk >= 1; chunk /= 2 {
			removed := true
			for removed {
				removed = false
				for hi := dim.size(v.Workload); hi-chunk >= 0 && v.ShrinkChecks < maxChecks; hi -= chunk {
					cand := dim.drop(v.Workload, hi-chunk, hi)
					v.ShrinkChecks++
					if msg := inv.Check(cand); msg != "" {
						v.Workload, v.Detail = cand, msg
						removed = true
					}
				}
			}
			if v.ShrinkChecks >= maxChecks {
				break
			}
		}
	}
	return v
}

// Repro renders the violation as a deterministic, self-contained
// reproduction report: everything needed to rebuild the workload by
// hand or regenerate it from (circuit, seed).
func (v *Violation) Repro() string {
	w := v.Workload
	var sb strings.Builder
	fmt.Fprintf(&sb, "xcheck violation: %s\n", v.Invariant)
	fmt.Fprintf(&sb, "circuit: %s seed: %d\n", w.Circuit, w.Seed)
	fmt.Fprintf(&sb, "detail: %s\n", v.Detail)
	fmt.Fprintf(&sb, "faults (%d):\n", len(w.Faults))
	for _, f := range w.Faults {
		fmt.Fprintf(&sb, "  %s\n", f.Name(w.Design.Scan))
	}
	if len(w.Subset) > 0 {
		fmt.Fprintf(&sb, "subset: %v\n", w.Subset)
	}
	if len(w.Tests) > 0 {
		fmt.Fprintf(&sb, "tests (%d):\n", len(w.Tests))
		for _, t := range w.Tests {
			fmt.Fprintf(&sb, "  SI=%s T=%s\n", t.SI.String(), strings.ReplaceAll(t.T.String(), "\n", ","))
		}
	}
	fmt.Fprintf(&sb, "sequence (%d vectors):\n", len(w.Seq))
	for _, vec := range w.Seq {
		fmt.Fprintf(&sb, "  %s\n", vec.String())
	}
	return sb.String()
}

// ParseReproSequence reads the "sequence" block of a Repro back into a
// Sequence, for committing minimized reproductions as test fixtures.
func ParseReproSequence(repro string) (logic.Sequence, error) {
	i := strings.Index(repro, "sequence (")
	if i < 0 {
		return nil, fmt.Errorf("xcheck: no sequence block in repro")
	}
	body := repro[i:]
	if j := strings.Index(body, "\n"); j >= 0 {
		body = body[j+1:]
	}
	return logic.ParseSequence(body)
}
