package xcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateDeterministic: a workload is a pure function of
// (circuit, seed) — regeneration reproduces every field exactly.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range []string{"s27", SynthCircuit} {
		a, err := Generate(spec, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(spec, 42)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seq.String() != b.Seq.String() {
			t.Errorf("%s: sequences differ", spec)
		}
		if len(a.Faults) != len(b.Faults) || len(a.Subset) != len(b.Subset) || len(a.Tests) != len(b.Tests) {
			t.Errorf("%s: shapes differ: %d/%d faults, %d/%d subset, %d/%d tests",
				spec, len(a.Faults), len(b.Faults), len(a.Subset), len(b.Subset), len(a.Tests), len(b.Tests))
		}
		c, err := Generate(spec, 43)
		if err != nil {
			t.Fatal(err)
		}
		if a.Seq.String() == c.Seq.String() {
			t.Errorf("%s: seeds 42 and 43 generated the same sequence", spec)
		}
	}
}

// TestInvariantsHoldOnFixedSeeds is the harness's own tier-1 gate: every
// invariant passes on a fixed mixed workload set. cmd/xcheck covers the
// full catalog; this keeps the package self-checking under plain
// `go test`.
func TestInvariantsHoldOnFixedSeeds(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	violations, sum := Run(Config{
		Circuits: []string{"s27", "b02", "b06", SynthCircuit},
		Seeds:    seeds,
		Shrink:   true,
	})
	t.Log(sum.String())
	for _, v := range violations {
		t.Errorf("violation:\n%s", v.Repro())
	}
	if sum.Workloads != 4*seeds {
		t.Errorf("covered %d workloads, want %d", sum.Workloads, 4*seeds)
	}
}

// plantedInvariant fails whenever any vector and any fault remain, so
// the shrinker must grind the workload down to exactly one of each (and
// zero conventional tests).
var plantedInvariant = Invariant{
	Name: "planted/always-fails",
	Check: func(w *Workload) string {
		if len(w.Seq) >= 1 && len(w.Faults) >= 1 {
			return "planted failure"
		}
		return ""
	},
}

// TestShrinkGolden pins the shrinker's behavior on one fixed seeded
// workload: the minimized repro for the planted invariant must match
// the committed golden byte for byte. Regenerate with
// `XCHECK_UPDATE=1 go test ./internal/xcheck -run TestShrinkGolden`.
func TestShrinkGolden(t *testing.T) {
	w, err := Generate("s27", 1)
	if err != nil {
		t.Fatal(err)
	}
	detail := plantedInvariant.Check(w)
	if detail == "" {
		t.Fatal("planted invariant did not fail")
	}
	v := Shrink(plantedInvariant, w, detail, 0)
	if len(v.Workload.Seq) != 1 || len(v.Workload.Faults) != 1 || len(v.Workload.Tests) != 0 {
		t.Fatalf("shrunk to %d vectors / %d faults / %d tests, want 1 / 1 / 0",
			len(v.Workload.Seq), len(v.Workload.Faults), len(v.Workload.Tests))
	}
	got := v.Repro()
	golden := filepath.Join("testdata", "shrink_golden.txt")
	if update() {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("shrunk repro drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func update() bool { return os.Getenv("XCHECK_UPDATE") != "" }

// TestRunReportsAndShrinksViolations: the runner surfaces a failing
// invariant as a violation whose repro parses back into a sequence.
func TestRunReportsAndShrinksViolations(t *testing.T) {
	violations, sum := Run(Config{
		Circuits:   []string{"s27", "b02"},
		Seeds:      1,
		Shrink:     true,
		Invariants: []Invariant{plantedInvariant},
	})
	if len(violations) != 2 {
		t.Fatalf("got %d violations, want 2", len(violations))
	}
	if sum.Checks != 2 || sum.Workloads != 2 {
		t.Errorf("summary %+v", sum)
	}
	for _, v := range violations {
		repro := v.Repro()
		if !strings.Contains(repro, "planted failure") || !strings.Contains(repro, "seed:") {
			t.Errorf("repro missing fields:\n%s", repro)
		}
		seq, err := ParseReproSequence(repro)
		if err != nil {
			t.Errorf("repro does not parse: %v", err)
		}
		if len(seq) != len(v.Workload.Seq) {
			t.Errorf("parsed %d vectors, workload has %d", len(seq), len(v.Workload.Seq))
		}
	}
}

// TestRunDurationBudgetReportsSkips: an elapsed budget is never a
// silent cap — skipped workloads are counted in the summary.
func TestRunDurationBudgetReportsSkips(t *testing.T) {
	_, sum := Run(Config{
		Circuits: []string{"s27", "s27", "s27"},
		Seeds:    1,
		Duration: 1, // 1ns: everything after the first time check skips
	})
	if sum.Skipped == 0 {
		t.Fatalf("no skips reported under an exhausted budget: %+v", sum)
	}
	if !strings.Contains(sum.String(), "SKIPPED") {
		t.Errorf("summary hides skips: %s", sum)
	}
}

// TestRefDetectMatrix cross-checks the reference simulator directly on
// a few hand-posed cases (the diff/reference invariant covers it
// broadly; this keeps a fast, dependency-free sanity check).
func TestRefDetectMatrix(t *testing.T) {
	w, err := Generate("s27", 7)
	if err != nil {
		t.Fatal(err)
	}
	det := RefDetectAll(w.Design.Scan, w.Seq, w.Faults, nil)
	if len(det) != len(w.Faults) {
		t.Fatalf("got %d detections for %d faults", len(det), len(w.Faults))
	}
	n := 0
	for _, d := range det {
		if d >= 0 {
			n++
		}
	}
	if n == 0 {
		t.Error("reference simulator detected nothing on a 59-vector s27 workload")
	}
	if msg := checkReference(w); msg != "" {
		t.Errorf("reference disagrees with oracle: %s", msg)
	}
}
