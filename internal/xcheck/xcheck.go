package xcheck

import (
	"fmt"
	"time"
)

// Config drives one harness run.
type Config struct {
	// Circuits lists circuit specs (catalog names or SynthCircuit).
	Circuits []string
	// Seeds is how many seeds to run per circuit (minimum 1).
	Seeds int
	// StartSeed is the first seed; seed i of circuit c is derived from
	// StartSeed+i and c, so runs are reproducible from the two numbers.
	StartSeed uint64
	// Duration, when positive, is a soft wall-clock budget: no new
	// workload starts after it elapses (the current one finishes).
	Duration time.Duration
	// Shrink minimizes every violation before reporting it.
	Shrink bool
	// MaxShrinkChecks bounds the shrinker's re-evaluation budget per
	// violation (0 = default).
	MaxShrinkChecks int
	// Invariants overrides the checked invariant set (nil = all).
	Invariants []Invariant
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Summary reports what a Run covered.
type Summary struct {
	// Workloads is how many (circuit, seed) workloads were generated
	// and checked; Checks counts invariant evaluations across them.
	Workloads, Checks int
	// Skipped counts workloads dropped by the Duration budget. A
	// non-zero value means coverage was NOT complete.
	Skipped int
	Elapsed time.Duration
}

func (s Summary) String() string {
	msg := fmt.Sprintf("%d workloads, %d checks in %v", s.Workloads, s.Checks, s.Elapsed.Round(time.Millisecond))
	if s.Skipped > 0 {
		msg += fmt.Sprintf(" (%d workloads SKIPPED on duration budget)", s.Skipped)
	}
	return msg
}

// seedFor mixes the run seed with the circuit position so two circuits
// never share a workload stream.
func seedFor(start uint64, seedIdx, circuitIdx int) uint64 {
	return (start+uint64(seedIdx))*0x2545F4914F6CDD1D + uint64(circuitIdx)*0x9E3779B97F4A7C15
}

// Run executes the harness: for every circuit × seed it generates a
// workload and evaluates every invariant, shrinking and collecting any
// violation. The violation slice is empty on a fully passing run.
func Run(cfg Config) ([]*Violation, Summary) {
	start := time.Now()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seeds := cfg.Seeds
	if seeds < 1 {
		seeds = 1
	}
	invs := cfg.Invariants
	if invs == nil {
		invs = Invariants()
	}

	var violations []*Violation
	var sum Summary
	for si := 0; si < seeds; si++ {
		for ci, circuit := range cfg.Circuits {
			if cfg.Duration > 0 && time.Since(start) > cfg.Duration {
				sum.Skipped++
				continue
			}
			seed := seedFor(cfg.StartSeed, si, ci)
			w, err := Generate(circuit, seed)
			if err != nil {
				// A workload that cannot be built is itself a violation:
				// it means a catalog or generator regression.
				violations = append(violations, &Violation{
					Invariant: "generate",
					Workload:  &Workload{Circuit: circuit, Seed: seed},
					Detail:    err.Error(),
				})
				continue
			}
			sum.Workloads++
			logf("xcheck: %s seed=%d (%d vectors, %d faults)", circuit, seed, len(w.Seq), len(w.Faults))
			for _, inv := range invs {
				sum.Checks++
				msg := inv.Check(w)
				if msg == "" {
					continue
				}
				logf("xcheck: FAIL %s on %s seed=%d: %s", inv.Name, circuit, seed, msg)
				v := &Violation{Invariant: inv.Name, Workload: w, Detail: msg}
				if cfg.Shrink {
					v = Shrink(inv, w, msg, cfg.MaxShrinkChecks)
					logf("xcheck: shrunk to %d vectors / %d faults in %d checks",
						len(v.Workload.Seq), len(v.Workload.Faults), v.ShrinkChecks)
				}
				violations = append(violations, v)
			}
		}
	}
	sum.Elapsed = time.Since(start)
	if sum.Skipped > 0 {
		logf("xcheck: duration budget cut coverage: %d workloads skipped", sum.Skipped)
	}
	return violations, sum
}
