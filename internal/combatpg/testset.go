package combatpg

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Test is one scan-based test under the paper's first approach: scan in
// State, apply Vector for one functional clock, scan out.
type Test struct {
	State  logic.Vector // t_s: the scanned-in state
	Vector logic.Vector // t_I: the primary input vector
}

// TestSetResult reports first-approach test generation over a fault
// list.
type TestSetResult struct {
	Tests []Test
	// DetectedBy[i] is the index of the test that detects fault i, or
	// -1 (undetected / aborted).
	DetectedBy []int
	// Aborted counts faults abandoned at the backtrack limit.
	Aborted int
	// Untestable counts faults proven combinationally untestable.
	Untestable int
}

// NumDetected counts detected faults.
func (r TestSetResult) NumDetected() int {
	n := 0
	for _, d := range r.DetectedBy {
		if d >= 0 {
			n++
		}
	}
	return n
}

// GenerateTestSet runs the first-approach flow on circuit c (the
// original, non-scan circuit): for every fault, PODEM with full state
// controllability and next-state observability; after each new test,
// single-frame fault simulation drops additionally detected faults.
// Don't-care positions are filled pseudo-randomly from seed.
func GenerateTestSet(c *netlist.Circuit, faults []fault.Fault, seed uint64) TestSetResult {
	gen := NewGenerator(c, Options{AssignState: true, ObservePPO: true})
	rng := logic.NewRandFiller(seed)
	res := TestSetResult{DetectedBy: make([]int, len(faults))}
	for i := range res.DetectedBy {
		res.DetectedBy[i] = -1
	}
	for fi, f := range faults {
		if res.DetectedBy[fi] >= 0 {
			continue
		}
		r := gen.Generate(f)
		switch r.Status {
		case Untestable:
			res.Untestable++
			continue
		case Abort:
			res.Aborted++
			continue
		}
		fillX(r.State, rng)
		fillX(r.Vector, rng)
		ti := len(res.Tests)
		res.Tests = append(res.Tests, Test{State: r.State, Vector: r.Vector})
		// Drop every remaining fault the new test detects.
		drops := SimulateFrame(c, r.State, r.Vector, faults, res.DetectedBy)
		for _, di := range drops {
			res.DetectedBy[di] = ti
		}
	}
	return res
}

func fillX(v logic.Vector, rng *logic.RandFiller) {
	for i, x := range v {
		if x == logic.X {
			v[i] = rng.Next()
		}
	}
}

// SimulateFrame fault-simulates a single frame (state, vector) and
// returns the indices of faults newly detected at a primary output or a
// flip-flop data input. skip[i] >= 0 marks already-detected faults.
func SimulateFrame(c *netlist.Circuit, state, vector logic.Vector, faults []fault.Fault, skip []int) []int {
	var detectedIdx []int
	good := sim.New(c)
	good.SetStateBroadcast(state)
	good.Step(vector)
	nPO := c.NumOutputs()
	goodPO := make([]logic.Value, nPO)
	for po := range goodPO {
		goodPO[po] = good.OutputSlot(po, 0)
	}
	goodD := make([]logic.Value, c.NumFFs())
	for fi, ff := range c.FFs {
		z, o := good.SignalPlanes(ff.D)
		goodD[fi] = planeValue(z, o, 0)
	}

	m := sim.New(c)
	var batch []int
	flush := func() {
		if len(batch) == 0 {
			return
		}
		m.ClearFaults()
		m.SetStateBroadcast(state)
		for k, fi := range batch {
			if err := m.InjectFault(faults[fi], uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		m.Step(vector)
		var det uint64
		for po := 0; po < nPO; po++ {
			if !goodPO[po].IsBinary() {
				continue
			}
			gz, gd := valuePlanes(goodPO[po])
			fz, fd := m.OutputPlanes(po)
			det |= sim.DetectMask(gz, gd, fz, fd)
		}
		for fi, ff := range c.FFs {
			if !goodD[fi].IsBinary() {
				continue
			}
			gz, gd := valuePlanes(goodD[fi])
			fz, fd := m.SignalPlanes(ff.D)
			// A fault on this flip-flop's D pin forces the latched
			// value for its own slot.
			for k, bi := range batch {
				if faults[bi].Site.FF == int32(fi) {
					sz, so := valuePlanes(faults[bi].SA)
					bit := uint64(1) << uint(k)
					fz = fz&^bit | sz&bit
					fd = fd&^bit | so&bit
				}
			}
			det |= sim.DetectMask(gz, gd, fz, fd)
		}
		for k, fi := range batch {
			if det&(uint64(1)<<uint(k)) != 0 {
				detectedIdx = append(detectedIdx, fi)
			}
		}
		batch = batch[:0]
	}
	for fi := range faults {
		if skip != nil && skip[fi] >= 0 {
			continue
		}
		batch = append(batch, fi)
		if len(batch) == sim.Slots {
			flush()
		}
	}
	flush()
	return detectedIdx
}

func valuePlanes(v logic.Value) (z, o uint64) {
	switch v {
	case logic.Zero:
		return sim.AllSlots, 0
	case logic.One:
		return 0, sim.AllSlots
	default:
		return sim.AllSlots, sim.AllSlots
	}
}

// Untested returns the fault indices of r that no test detects.
func (r TestSetResult) Untested(faults []fault.Fault) []int {
	var out []int
	for i := range faults {
		if r.DetectedBy[i] < 0 {
			out = append(out, i)
		}
	}
	return out
}
