// Package combatpg implements PODEM-style deterministic test generation
// on the combinational view of a synchronous sequential circuit: the
// flip-flop outputs are treated as pseudo primary inputs and the
// flip-flop data inputs as pseudo primary outputs.
//
// It serves two roles in the reproduction:
//
//   - the paper's "first approach" baseline, where a combinational test
//     (t_s, t_I) is generated per fault and applied with complete scan
//     operations;
//   - the deterministic per-frame vector oracle inside the sequential
//     generator of internal/seqatpg, where the present state is fixed
//     and only the primary inputs may be assigned.
package combatpg

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/testability"
)

// Status reports the outcome of one PODEM run.
type Status uint8

// PODEM outcomes.
const (
	// Success: the returned assignment detects the fault at an
	// observation point.
	Success Status = iota
	// Untestable: the search space was exhausted; no single-frame test
	// exists under the given options.
	Untestable
	// Abort: the backtrack limit was hit before a conclusion.
	Abort
)

func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case Untestable:
		return "untestable"
	case Abort:
		return "abort"
	}
	return "unknown"
}

// Options configures a PODEM run.
type Options struct {
	// MaxBacktracks bounds the search; 0 means the default (1000).
	MaxBacktracks int
	// AssignState allows decisions on pseudo primary inputs (the
	// flip-flop present-state values). Used by the first-approach
	// baseline where scan makes the whole state controllable.
	AssignState bool
	// FixedState supplies the present state when AssignState is
	// false. Positions at X are genuinely unknown and cannot be
	// assigned. Nil means all X.
	FixedState []logic.Value
	// FaultyState, when non-nil, supplies a present state for the
	// faulty circuit that differs from FixedState: the target fault's
	// history has already diverged (effects latched in flip-flops).
	// Only meaningful with AssignState false.
	FaultyState []logic.Value
	// ObservePPO counts a fault effect on a flip-flop data input as a
	// detection (scan makes the next state observable).
	ObservePPO bool
}

// Result is the outcome of Generate.
type Result struct {
	Status Status
	// Vector is the primary input assignment; X marks don't-cares.
	Vector logic.Vector
	// State is the pseudo primary input assignment (meaningful when
	// Options.AssignState; otherwise a copy of the fixed state).
	State logic.Vector
	// Backtracks is the number of backtracks performed.
	Backtracks int
}

// Generator holds the per-circuit machinery so repeated PODEM calls
// reuse simulation state. Not safe for concurrent use.
type Generator struct {
	c    *netlist.Circuit
	m    *sim.Machine
	opts Options

	nPI, nFF int
	assign   []logic.Value // decision variables: PIs then PPIs
	obsDist  []int32       // static min distance to an observation point
	meas     *testability.Measures

	f       fault.Fault
	haveFlt bool
}

// faultSlot is the machine slot carrying the faulty circuit; slot 0 is
// fault-free.
const faultSlot = 1

// NewGenerator builds a PODEM generator for circuit c.
func NewGenerator(c *netlist.Circuit, opts Options) *Generator {
	if opts.MaxBacktracks <= 0 {
		opts.MaxBacktracks = 1000
	}
	g := &Generator{
		c:    c,
		m:    sim.New(c),
		opts: opts,
		nPI:  c.NumInputs(),
		nFF:  c.NumFFs(),
	}
	g.assign = make([]logic.Value, g.nPI+g.nFF)
	g.computeObsDist()
	g.meas = testability.Compute(c)
	return g
}

// computeObsDist computes, per signal, a static lower bound on the
// number of gates between the signal and the nearest observation point
// (primary output, plus flip-flop data inputs when ObservePPO). Used to
// pick D-frontier gates closest to an observation point.
func (g *Generator) computeObsDist() {
	const inf = int32(1 << 30)
	c := g.c
	dist := make([]int32, len(c.Signals))
	for i := range dist {
		dist[i] = inf
	}
	for _, o := range c.Outputs {
		dist[o] = 0
	}
	if g.opts.ObservePPO {
		for _, ff := range c.FFs {
			dist[ff.D] = 0
		}
	}
	// Relax backward over the evaluation order until fixpoint; the
	// combinational DAG needs one reverse pass.
	for iter := 0; iter < 2; iter++ {
		for i := len(c.Order) - 1; i >= 0; i-- {
			gate := c.Gates[c.Order[i]]
			d := dist[gate.Out]
			if d == inf {
				continue
			}
			for _, in := range gate.In {
				if d+1 < dist[in] {
					dist[in] = d + 1
				}
			}
		}
	}
	g.obsDist = dist
}

// Generate runs PODEM for fault f and returns the assignment found.
func (g *Generator) Generate(f fault.Fault) Result {
	g.m.ClearFaults()
	if err := g.m.InjectFault(f, 1<<faultSlot); err != nil {
		return Result{Status: Untestable}
	}
	g.f = f
	g.haveFlt = true
	for i := range g.assign {
		g.assign[i] = logic.X
	}
	res := g.search()
	res.Vector = make(logic.Vector, g.nPI)
	copy(res.Vector, g.assign[:g.nPI])
	res.State = g.currentState()
	return res
}

func (g *Generator) currentState() logic.Vector {
	st := make(logic.Vector, g.nFF)
	if g.opts.AssignState {
		copy(st, g.assign[g.nPI:])
		return st
	}
	for i := range st {
		st[i] = logic.X
		if g.opts.FixedState != nil && i < len(g.opts.FixedState) {
			st[i] = g.opts.FixedState[i]
		}
	}
	return st
}

type decision struct {
	v       int
	flipped bool
}

// search is the PODEM main loop.
func (g *Generator) search() Result {
	var stack []decision
	backtracks := 0
	for {
		g.imply()
		if g.detected() {
			return Result{Status: Success, Backtracks: backtracks}
		}
		obj, ok := g.objective()
		if ok {
			v, val, found := g.backtrace(obj.sig, obj.val)
			if found {
				stack = append(stack, decision{v: v})
				g.assign[v] = val
				continue
			}
		}
		// No objective achievable: backtrack.
		for {
			if len(stack) == 0 {
				return Result{Status: Untestable, Backtracks: backtracks}
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				g.assign[top.v] = g.assign[top.v].Not()
				backtracks++
				if backtracks >= g.opts.MaxBacktracks {
					return Result{Status: Abort, Backtracks: backtracks}
				}
				break
			}
			g.assign[top.v] = logic.X
			stack = stack[:len(stack)-1]
		}
	}
}

// SetStates updates the fixed present state and the optional divergent
// faulty state between Generate calls, so one Generator can serve every
// frame of a sequential search.
func (g *Generator) SetStates(good, faulty []logic.Value) {
	g.opts.FixedState = good
	g.opts.FaultyState = faulty
}

// imply performs full forward implication of the current assignment by
// simulating one frame: slot 0 fault-free, slot 1 with the fault.
func (g *Generator) imply() {
	st := g.currentState()
	if g.opts.FaultyState != nil && !g.opts.AssignState {
		g.m.SetStatePair(st, g.opts.FaultyState)
	} else {
		g.m.SetStateBroadcast(st)
	}
	v := make(logic.Vector, g.nPI)
	copy(v, g.assign[:g.nPI])
	g.m.Step(v)
}

// composite reads the (good, faulty) pair of a signal after imply.
func (g *Generator) composite(s netlist.SignalID) (gv, fv logic.Value) {
	z, o := g.m.SignalPlanes(s)
	gv = planeValue(z, o, 0)
	fv = planeValue(z, o, faultSlot)
	return gv, fv
}

func planeValue(z, o uint64, slot int) logic.Value {
	bit := uint64(1) << uint(slot)
	switch {
	case z&bit != 0 && o&bit != 0:
		return logic.X
	case o&bit != 0:
		return logic.One
	default:
		return logic.Zero
	}
}

func effect(gv, fv logic.Value) bool {
	return gv.IsBinary() && fv.IsBinary() && gv != fv
}

// detected reports whether the fault effect reaches an observation
// point under the current assignment.
func (g *Generator) detected() bool {
	for _, o := range g.c.Outputs {
		if effect(g.composite(o)) {
			return true
		}
	}
	if g.opts.ObservePPO {
		for fi, ff := range g.c.FFs {
			gv, fv := g.composite(ff.D)
			// A fault on this flip-flop's D pin lives beyond the
			// signal: the faulty latched value is the stuck value.
			if g.haveFlt && g.f.Site.FF == int32(fi) {
				fv = g.f.SA
			}
			if effect(gv, fv) {
				return true
			}
		}
	}
	return false
}

type objective struct {
	sig netlist.SignalID
	val logic.Value
}

// objective picks the next goal: advance the D-frontier gate nearest an
// observation point if effects are already present (possibly carried in
// from a divergent faulty state), otherwise excite the fault.
func (g *Generator) objective() (objective, bool) {
	if obj, ok := g.propagateObjective(); ok {
		return obj, true
	}
	site := g.f.Site
	gv, _ := g.composite(site.Signal)
	want := g.f.SA.Not()
	if gv == logic.X {
		return objective{sig: site.Signal, val: want}, true
	}
	// No D-frontier and the site cannot be (further) excited.
	return objective{}, false
}

// propagateObjective finds the D-frontier gate closest to an observation
// point and returns a non-controlling assignment for one of its X
// inputs.
func (g *Generator) propagateObjective() (objective, bool) {
	bestGate := int32(-1)
	var bestDist int32 = 1 << 30
	for _, gi := range g.c.Order {
		gate := &g.c.Gates[gi]
		ogv, ofv := g.composite(gate.Out)
		if ogv != logic.X && ofv != logic.X {
			continue
		}
		if !g.gateHasEffectInput(gi, gate) {
			continue
		}
		if d := g.obsDist[gate.Out]; d < bestDist {
			bestDist = d
			bestGate = gi
		}
	}
	if bestGate < 0 {
		return objective{}, false
	}
	gate := &g.c.Gates[bestGate]
	// Set an X input to the non-controlling value.
	for _, in := range gate.In {
		igv, _ := g.composite(in)
		if igv != logic.X {
			continue
		}
		return objective{sig: in, val: nonControlling(gate.Type)}, true
	}
	return objective{}, false
}

// gateHasEffectInput reports whether gate gi has a fault effect on one
// of its input pins (accounting for a pin fault on this very gate).
func (g *Generator) gateHasEffectInput(gi int32, gate *netlist.Gate) bool {
	for p, in := range gate.In {
		igv, ifv := g.composite(in)
		if g.f.Site.Gate == gi && int(g.f.Site.Pin) == p {
			ifv = g.f.SA
		}
		if effect(igv, ifv) {
			return true
		}
	}
	return false
}

// nonControlling returns the value that lets an effect pass through a
// gate of type t (for XOR/XNOR any binary value works; 0 is used).
func nonControlling(t netlist.GateType) logic.Value {
	switch t {
	case netlist.AND, netlist.NAND:
		return logic.One
	case netlist.OR, netlist.NOR:
		return logic.Zero
	default:
		return logic.Zero
	}
}

// backtrace maps an objective (sig, val) to a decision on an unassigned
// input variable, following X paths through the logic.
func (g *Generator) backtrace(s netlist.SignalID, val logic.Value) (variable int, value logic.Value, ok bool) {
	c := g.c
	for {
		sig := c.Signals[s]
		switch sig.Kind {
		case netlist.KindInput:
			idx := c.InputIndex(s)
			if g.assign[idx] != logic.X {
				return 0, logic.X, false
			}
			return idx, val, true
		case netlist.KindFF:
			if !g.opts.AssignState {
				return 0, logic.X, false
			}
			idx := g.nPI + int(sig.Driver)
			if g.assign[idx] != logic.X {
				return 0, logic.X, false
			}
			return idx, val, true
		}
		gate := &c.Gates[sig.Driver]
		switch gate.Type {
		case netlist.BUF:
			s = gate.In[0]
		case netlist.NOT:
			s = gate.In[0]
			val = val.Not()
		case netlist.AND, netlist.NAND:
			if gate.Type == netlist.NAND {
				val = val.Not()
			}
			in, ok2 := g.pickXInput(gate, val == logic.Zero)
			if !ok2 {
				return 0, logic.X, false
			}
			s = in
			// val stays: 1 -> all inputs 1, 0 -> chosen input 0.
		case netlist.OR, netlist.NOR:
			if gate.Type == netlist.NOR {
				val = val.Not()
			}
			in, ok2 := g.pickXInput(gate, val == logic.One)
			if !ok2 {
				return 0, logic.X, false
			}
			s = in
		case netlist.XOR, netlist.XNOR:
			target := val
			if gate.Type == netlist.XNOR {
				target = target.Not()
			}
			// Choose an X input; required value is the parity of
			// the remaining inputs (X treated as 0) XOR target.
			var chosen netlist.SignalID = netlist.InvalidSignal
			parity := logic.Zero
			for _, in := range gate.In {
				igv, _ := g.composite(in)
				if igv == logic.X && chosen == netlist.InvalidSignal {
					chosen = in
					continue
				}
				if igv == logic.One {
					parity = parity.Not()
				}
			}
			if chosen == netlist.InvalidSignal {
				return 0, logic.X, false
			}
			s = chosen
			val = logic.Xor(target, parity)
		}
	}
}

// pickXInput selects an X-valued input of the gate using SCOAP
// controllability: when easiest is true (a controlling value on one
// input suffices) the cheapest input to control is chosen; otherwise
// the hardest (every input must eventually be set, and classic PODEM
// tackles the hardest first so conflicts surface early).
func (g *Generator) pickXInput(gate *netlist.Gate, easiest bool) (netlist.SignalID, bool) {
	// The value an input needs: controlling value when easiest, the
	// non-controlling value otherwise.
	var want logic.Value
	switch gate.Type {
	case netlist.AND, netlist.NAND:
		want = logic.Zero
		if !easiest {
			want = logic.One
		}
	case netlist.OR, netlist.NOR:
		want = logic.One
		if !easiest {
			want = logic.Zero
		}
	default:
		want = logic.Zero
	}
	best := netlist.InvalidSignal
	var bestCost int32
	for _, in := range gate.In {
		igv, _ := g.composite(in)
		if igv != logic.X {
			continue
		}
		cost := g.meas.CC0[in]
		if want == logic.One {
			cost = g.meas.CC1[in]
		}
		if best == netlist.InvalidSignal ||
			(easiest && cost < bestCost) || (!easiest && cost > bestCost) {
			best, bestCost = in, cost
		}
	}
	return best, best != netlist.InvalidSignal
}
