package combatpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func stemFault(t *testing.T, c *netlist.Circuit, name string, sa logic.Value) fault.Fault {
	t.Helper()
	s, ok := c.SignalByName(name)
	if !ok {
		t.Fatalf("signal %s missing", name)
	}
	return fault.Fault{Site: fault.Site{Signal: s, Gate: -1, Pin: -1, FF: -1}, SA: sa}
}

func TestPodemAndGate(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`)
	gen := NewGenerator(c, Options{})
	// y SA0 requires a=b=1.
	r := gen.Generate(stemFault(t, c, "y", logic.Zero))
	if r.Status != Success {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Vector[0] != logic.One || r.Vector[1] != logic.One {
		t.Errorf("vector = %v", r.Vector)
	}
	// a SA1 requires a=0, b=1.
	r = gen.Generate(stemFault(t, c, "a", logic.One))
	if r.Status != Success {
		t.Fatalf("a SA1: %v", r.Status)
	}
	if r.Vector[0] != logic.Zero || r.Vector[1] != logic.One {
		t.Errorf("a SA1 vector = %v", r.Vector)
	}
}

func TestPodemPropagationChain(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
INPUT(cc)
OUTPUT(y)
n1 = AND(a, b)
n2 = OR(n1, cc)
y = NOT(n2)
`)
	gen := NewGenerator(c, Options{})
	// n1 SA1: need a=0 or b=0 to excite, cc=0 to propagate through OR.
	r := gen.Generate(stemFault(t, c, "n1", logic.One))
	if r.Status != Success {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Vector[2] != logic.Zero {
		t.Errorf("cc = %v, want 0 for propagation", r.Vector[2])
	}
	if r.Vector[0] == logic.One && r.Vector[1] == logic.One {
		t.Error("fault not excited: a=b=1 makes n1=1")
	}
}

func TestPodemUntestableRedundantFault(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y SA1 is undetectable.
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = OR(a, n)
`)
	gen := NewGenerator(c, Options{})
	r := gen.Generate(stemFault(t, c, "y", logic.One))
	if r.Status != Untestable {
		t.Fatalf("constant-1 line SA1 reported %v, want untestable", r.Status)
	}
	// y SA0 is trivially detectable.
	r = gen.Generate(stemFault(t, c, "y", logic.Zero))
	if r.Status != Success {
		t.Fatalf("y SA0 reported %v", r.Status)
	}
}

func TestPodemXorBacktrace(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`)
	gen := NewGenerator(c, Options{})
	for _, sa := range []logic.Value{logic.Zero, logic.One} {
		r := gen.Generate(stemFault(t, c, "a", sa))
		if r.Status != Success {
			t.Fatalf("a SA%d: %v", sa, r.Status)
		}
		if r.Vector[0] != sa.Not() {
			t.Errorf("a SA%d: a = %v", sa, r.Vector[0])
		}
		if !r.Vector[1].IsBinary() {
			t.Errorf("a SA%d: b unassigned, cannot propagate through XOR", sa)
		}
	}
}

func TestPodemFixedStateRestriction(t *testing.T) {
	// Fault observable only by setting the flip-flop value; with a
	// fixed all-X state PODEM must not claim success.
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
q = DFF(a)
y = AND(a, q)
`)
	gen := NewGenerator(c, Options{ObservePPO: false})
	r := gen.Generate(stemFault(t, c, "y", logic.Zero))
	if r.Status == Success {
		t.Fatal("claimed success with unknown state")
	}
	// With the state fixed to 1 it becomes testable.
	gen = NewGenerator(c, Options{FixedState: []logic.Value{logic.One}})
	r = gen.Generate(stemFault(t, c, "y", logic.Zero))
	if r.Status != Success {
		t.Fatalf("fixed state: %v", r.Status)
	}
	if r.Vector[0] != logic.One {
		t.Errorf("a = %v, want 1", r.Vector[0])
	}
}

func TestPodemAssignStateTreatsFFsAsInputs(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
q = DFF(a)
y = AND(a, q)
`)
	gen := NewGenerator(c, Options{AssignState: true, ObservePPO: true})
	r := gen.Generate(stemFault(t, c, "y", logic.Zero))
	if r.Status != Success {
		t.Fatalf("status = %v", r.Status)
	}
	if r.State[0] != logic.One || r.Vector[0] != logic.One {
		t.Errorf("state=%v vector=%v, want both 1", r.State, r.Vector)
	}
}

func TestPodemObservePPO(t *testing.T) {
	// Fault effect reaches only the flip-flop data input.
	c := mustParse(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(d)
d = AND(a, b)
z = BUF(b)
`)
	f := stemFault(t, c, "d", logic.Zero)
	genNo := NewGenerator(c, Options{ObservePPO: false, AssignState: true})
	if r := genNo.Generate(f); r.Status == Success {
		t.Fatal("detected with PPOs unobservable")
	}
	genYes := NewGenerator(c, Options{ObservePPO: true, AssignState: true})
	r := genYes.Generate(f)
	if r.Status != Success {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Vector[0] != logic.One || r.Vector[1] != logic.One {
		t.Errorf("vector = %v", r.Vector)
	}
}

// TestPodemResultsVerifiedBySimulation: every Success on the s27 fault
// universe must be confirmed by independent fault simulation of the
// returned frame.
func TestPodemResultsVerifiedBySimulation(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, false)
	gen := NewGenerator(c, Options{AssignState: true, ObservePPO: true})
	successes := 0
	for fi, f := range faults {
		r := gen.Generate(f)
		if r.Status != Success {
			continue
		}
		successes++
		rng := logic.NewRandFiller(uint64(fi + 1))
		fillX(r.State, rng)
		fillX(r.Vector, rng)
		det := SimulateFrame(c, r.State, r.Vector, faults, nil)
		found := false
		for _, di := range det {
			if di == fi {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %s: PODEM success not confirmed by simulation", f.Name(c))
		}
	}
	if successes < len(faults)*9/10 {
		t.Errorf("only %d/%d faults testable on s27; expected nearly all", successes, len(faults))
	}
}

func TestGenerateTestSetS27(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	res := GenerateTestSet(c, faults, 1)
	cov := fault.Coverage(res.NumDetected(), len(faults))
	if cov < 95 {
		t.Errorf("first-approach coverage on s27 = %.2f%%, want >= 95%%", cov)
	}
	if len(res.Tests) == 0 || len(res.Tests) > len(faults) {
		t.Errorf("test count = %d", len(res.Tests))
	}
	// Every test must be fully specified after random fill.
	for i, tst := range res.Tests {
		if !tst.State.Specified() || !tst.Vector.Specified() {
			t.Errorf("test %d not fully specified", i)
		}
	}
	// DetectedBy indices must point at valid tests.
	for fi, ti := range res.DetectedBy {
		if ti >= len(res.Tests) {
			t.Errorf("fault %d detected by nonexistent test %d", fi, ti)
		}
	}
}

func TestTestSetUntested(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, true)
	res := GenerateTestSet(c, faults, 1)
	un := res.Untested(faults)
	if len(un)+res.NumDetected() != len(faults) {
		t.Error("Untested + detected != total")
	}
}
