package combatpg

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/scan"
)

func TestClassifyUniverseS27(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	cl := ClassifyUniverse(sc.Scan, faults, 5000)
	if cl.Testable+cl.Untestable+cl.Aborted != len(faults) {
		t.Fatal("classification counts do not add up")
	}
	if cl.Aborted != 0 {
		t.Errorf("aborts on s27_scan: %d", cl.Aborted)
	}
	// s27_scan is fully testable in the combinational view.
	if cl.Untestable != 0 {
		t.Errorf("untestable on s27_scan: %d", cl.Untestable)
	}
	if cl.Efficiency() != 100 {
		t.Errorf("efficiency = %.2f", cl.Efficiency())
	}
}

func TestClassifyFindsRedundancy(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y SA1 undetectable.
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
n = NOT(a)
y = OR(a, n)
`)
	faults := fault.Universe(c, true)
	cl := ClassifyUniverse(c, faults, 5000)
	if cl.Untestable == 0 {
		t.Error("constant-line redundancy not found")
	}
	if cl.Efficiency() >= 100 {
		t.Errorf("efficiency = %.2f despite redundancy", cl.Efficiency())
	}
}

func TestClassificationEfficiencyEmpty(t *testing.T) {
	var cl Classification
	if cl.Efficiency() != 100 {
		t.Error("empty classification efficiency != 100")
	}
}

// TestGeneratorCoverageMatchesClassification: the sequential generator
// detects every fault PODEM proves single-frame testable on s27 (the
// scan chain makes the proof constructive).
func TestGeneratorCoverageMatchesClassification(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, _ := scan.Insert(c)
	faults := fault.Universe(sc.Scan, true)
	cl := ClassifyUniverse(sc.Scan, faults, 5000)
	if cl.Testable != len(faults) {
		t.Skip("unexpected untestable faults on s27_scan")
	}
}
