package combatpg

import (
	"repro/internal/fault"
	"repro/internal/netlist"
)

// Classification summarizes a fault-universe analysis under full state
// controllability and next-state observability (the full-scan
// combinational view).
type Classification struct {
	// Status[i] is the PODEM outcome for fault i.
	Status []Status
	// Testable, Untestable and Aborted count the outcomes.
	Testable, Untestable, Aborted int
}

// Efficiency returns the fault efficiency: testable faults divided by
// classified (non-aborted) faults, as a percentage. With no aborts this
// is the ceiling any test generator can reach on the circuit.
func (c Classification) Efficiency() float64 {
	classified := c.Testable + c.Untestable
	if classified == 0 {
		return 100
	}
	return 100 * float64(c.Testable) / float64(classified)
}

// ClassifyUniverse runs PODEM with full state controllability and
// next-state observability over every fault, proving single-frame
// testability or untestability. For a scan circuit this bounds what any
// scan-based test can achieve: a fault untestable here is
// combinationally redundant (caveat: a fault corrupting the scan load
// itself may still evade detection in practice even when testable
// here).
func ClassifyUniverse(c *netlist.Circuit, faults []fault.Fault, maxBacktracks int) Classification {
	gen := NewGenerator(c, Options{
		AssignState:   true,
		ObservePPO:    true,
		MaxBacktracks: maxBacktracks,
	})
	cl := Classification{Status: make([]Status, len(faults))}
	for i, f := range faults {
		r := gen.Generate(f)
		cl.Status[i] = r.Status
		switch r.Status {
		case Success:
			cl.Testable++
		case Untestable:
			cl.Untestable++
		default:
			cl.Aborted++
		}
	}
	return cl
}
