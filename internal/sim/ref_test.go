package sim

// Scalar reference simulator used only in tests: a slow, obviously
// correct three-valued evaluator the bit-parallel Machine is checked
// against (differential testing), including stuck-at fault injection.

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

type refSim struct {
	c     *netlist.Circuit
	state []logic.Value
	vals  []logic.Value
	flt   *fault.Fault
}

func newRefSim(c *netlist.Circuit, flt *fault.Fault) *refSim {
	r := &refSim{
		c:     c,
		state: make([]logic.Value, c.NumFFs()),
		vals:  make([]logic.Value, len(c.Signals)),
	}
	for i := range r.state {
		r.state[i] = logic.X
	}
	r.flt = flt
	return r
}

func (r *refSim) stemInject(s netlist.SignalID, v logic.Value) logic.Value {
	if r.flt != nil && r.flt.Site.IsStem() && r.flt.Site.Signal == s {
		return r.flt.SA
	}
	return v
}

func (r *refSim) pinInject(gi int32, pin int, v logic.Value) logic.Value {
	if r.flt != nil && r.flt.Site.Gate == gi && int(r.flt.Site.Pin) == pin {
		return r.flt.SA
	}
	return v
}

func (r *refSim) ffInject(fi int, v logic.Value) logic.Value {
	if r.flt != nil && r.flt.Site.FF == int32(fi) {
		return r.flt.SA
	}
	return v
}

// step applies vector v, returns primary output values, and advances the
// state.
func (r *refSim) step(v logic.Vector) []logic.Value {
	c := r.c
	for i, in := range c.Inputs {
		val := logic.X
		if i < len(v) {
			val = v[i]
		}
		r.vals[in] = r.stemInject(in, val)
	}
	for fi, ff := range c.FFs {
		r.vals[ff.Q] = r.stemInject(ff.Q, r.state[fi])
	}
	for _, gi := range c.Order {
		g := c.Gates[gi]
		acc := r.pinInject(gi, 0, r.vals[g.In[0]])
		switch g.Type {
		case netlist.BUF:
		case netlist.NOT:
			acc = acc.Not()
		case netlist.AND, netlist.NAND:
			for p := 1; p < len(g.In); p++ {
				acc = logic.And(acc, r.pinInject(gi, p, r.vals[g.In[p]]))
			}
			if g.Type == netlist.NAND {
				acc = acc.Not()
			}
		case netlist.OR, netlist.NOR:
			for p := 1; p < len(g.In); p++ {
				acc = logic.Or(acc, r.pinInject(gi, p, r.vals[g.In[p]]))
			}
			if g.Type == netlist.NOR {
				acc = acc.Not()
			}
		case netlist.XOR, netlist.XNOR:
			for p := 1; p < len(g.In); p++ {
				acc = logic.Xor(acc, r.pinInject(gi, p, r.vals[g.In[p]]))
			}
			if g.Type == netlist.XNOR {
				acc = acc.Not()
			}
		}
		r.vals[g.Out] = r.stemInject(g.Out, acc)
	}
	outs := make([]logic.Value, c.NumOutputs())
	for i, o := range c.Outputs {
		outs[i] = r.vals[o]
	}
	for fi, ff := range c.FFs {
		r.state[fi] = r.ffInject(fi, r.vals[ff.D])
	}
	return outs
}

// run simulates a whole sequence and returns the first detection time
// against the good reference, or NotDetected.
func refDetect(c *netlist.Circuit, seq logic.Sequence, f fault.Fault) int {
	good := newRefSim(c, nil)
	bad := newRefSim(c, &f)
	for t, v := range seq {
		g := good.step(v)
		b := bad.step(v)
		for po := range g {
			if g[po].IsBinary() && b[po].IsBinary() && g[po] != b[po] {
				return t
			}
		}
	}
	return NotDetected
}
