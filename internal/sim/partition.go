package sim

// FaultRange is one contiguous fault-index range [Start, End) of a
// partitioned fault universe — the unit of work a distributed detection
// run hands to one worker. Ranges are produced by PartitionFaults.
type FaultRange struct {
	Start, End int
}

// Len returns the number of faults in the range.
func (r FaultRange) Len() int { return r.End - r.Start }

// Indices materializes the range as a fault-index slice, the form
// Simulator.RunSubset consumes.
func (r FaultRange) Indices() []int {
	idx := make([]int, r.Len())
	for i := range idx {
		idx[i] = r.Start + i
	}
	return idx
}

// PartitionFaults splits a universe of n faults into at most parts
// contiguous ranges whose boundaries are aligned to Slots (the
// bit-parallel batch width). Alignment makes a partitioned run's batch
// decomposition identical to the single-process one: RunSubset re-batches
// a subset from its own position zero, and a Slots-aligned contiguous
// range re-batches into exactly the batches the full run would form over
// the same faults. Detection results are independent of batching either
// way (batches only share the fault-free trace), so a merge of the
// per-range DetectedAt values is bit-identical to one unpartitioned Run —
// the invariant internal/xcheck pins as jobs/partition-merge.
//
// Whole Slots-batches are distributed as evenly as possible; when there
// are fewer batches than parts, fewer ranges come back. n <= 0 or
// parts <= 1 yields a single range covering everything (empty for n = 0).
func PartitionFaults(n, parts int) []FaultRange {
	if n <= 0 {
		return []FaultRange{{0, 0}}
	}
	nBatches := (n + Slots - 1) / Slots
	if parts <= 1 || nBatches == 1 {
		return []FaultRange{{0, n}}
	}
	if parts > nBatches {
		parts = nBatches
	}
	out := make([]FaultRange, 0, parts)
	per, extra := nBatches/parts, nBatches%parts
	batch := 0
	for p := 0; p < parts; p++ {
		take := per
		if p < extra {
			take++
		}
		start := batch * Slots
		batch += take
		end := batch * Slots
		if end > n {
			end = n
		}
		out = append(out, FaultRange{start, end})
	}
	return out
}
