package sim

import "repro/internal/logic"

// StateImage is a compact snapshot of a slot-uniform flip-flop state:
// two bits per flip-flop (can-be-0, can-be-1) taken from slot 0, laid
// out as [zero | one] with ceil(nFF/64) words per plane. It is the
// same encoding the good-trace cache uses for the flip-flop part of
// its per-vector images, 64x smaller than a full State.
//
// The image only represents states that are identical in every slot —
// a fault-free machine's state always is, because inputs are broadcast
// and no fault ever forces slots apart. Capturing a machine whose
// slots have diverged silently records slot 0 only; callers that
// snapshot faulty machines must keep using State.
type StateImage []uint64

// stateImageWords returns the word count of a StateImage for nFF
// flip-flops.
func stateImageWords(nFF int) int { return 2 * ((nFF + 63) / 64) }

// StateImage captures the current flip-flop state of slot 0 as a
// compact image (see the type's contract on slot uniformity).
func (m *Machine) StateImage() StateImage {
	ffW := (len(m.sz) + 63) / 64
	img := make(StateImage, 2*ffW)
	m.AppendStateImage(img)
	return img
}

// AppendStateImage writes the slot-0 flip-flop state into img, which
// must hold stateImageWords words and be zeroed. Split out from
// StateImage for callers that manage their own image buffers.
func (m *Machine) AppendStateImage(img StateImage) {
	ffW := (len(m.sz) + 63) / 64
	for fi := range m.sz {
		w, b := fi>>6, uint(fi)&63
		img[w] |= (m.sz[fi] & 1) << b
		img[ffW+w] |= (m.so[fi] & 1) << b
	}
}

// SetStateImage broadcasts an image captured with StateImage into every
// slot. For images taken from a slot-uniform machine the round trip is
// exact: SetStateImage(m.StateImage()) reproduces the planes verbatim.
func (m *Machine) SetStateImage(img StateImage) {
	ffW := (len(m.sz) + 63) / 64
	for fi := range m.sz {
		w, b := fi>>6, uint(fi)&63
		m.sz[fi] = -(img[w] >> b & 1)
		m.so[fi] = -(img[ffW+w] >> b & 1)
	}
}

// StateEqualsImage reports whether the machine's current flip-flop
// planes equal the broadcast of img in every slot. A machine whose
// slots have diverged can never match (the comparison is against full
// broadcast planes), so a true result certifies slot uniformity too.
// The scan exits on the first differing flip-flop.
func (m *Machine) StateEqualsImage(img StateImage) bool {
	ffW := (len(m.sz) + 63) / 64
	for fi := range m.sz {
		w, b := fi>>6, uint(fi)&63
		if m.sz[fi] != -(img[w]>>b&1) || m.so[fi] != -(img[ffW+w]>>b&1) {
			return false
		}
	}
	return true
}

// setStateFromTraceImage restores the flip-flop planes from the
// flip-flop part of a good-trace per-vector image (layout
// [sigZero | sigOne | ffZero | ffOne]); the combinational signal part
// is ignored because the next Step recomputes every signal. Trace
// images come from the fault-free machine, which is slot-uniform, so
// the broadcast reproduces the exact state.
func (m *Machine) setStateFromTraceImage(img []uint64, sigW, ffW int) {
	base := 2 * sigW
	for fi := range m.sz {
		w, b := fi>>6, uint(fi)&63
		m.sz[fi] = -(img[base+w] >> b & 1)
		m.so[fi] = -(img[base+ffW+w] >> b & 1)
	}
}

// ValuePlanes expands one logic value into full 64-slot planes — the
// broadcast encoding used throughout the simulator, exported for
// packages that compare machine outputs against fault-free values.
func ValuePlanes(v logic.Value) (zero, one uint64) { return broadcast(v) }
