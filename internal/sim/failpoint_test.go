package sim

import (
	"errors"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/runctl"
)

// An armed error at the worker batch site fails the run cleanly: Failed
// status, the injected error on Result.Err, no panic, workers drained.
func TestInjectedBatchErrorFailsRun(t *testing.T) {
	defer failpoint.Disable()
	s, faults, seq := testCircuitAndSeq(t, "s298", 40)
	if err := failpoint.Enable("sim.worker.batch=error@2", 1); err != nil {
		t.Fatal(err)
	}
	ctl := &runctl.Control{}
	res := s.Run(seq, faults, Options{Control: ctl})
	if res.Err == nil || !failpoint.IsInjected(res.Err) {
		t.Fatalf("err = %v, want injected failpoint error", res.Err)
	}
	if res.Status != runctl.Failed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
	failpoint.Disable()
	// The simulator stays usable after the injected failure.
	ok := s.Run(seq, faults, Options{})
	if ok.Err != nil || ok.NumDetected() == 0 {
		t.Fatalf("simulator unusable after injected failure: err=%v detected=%d", ok.Err, ok.NumDetected())
	}
}

// An armed panic at the site flows through the existing recover path
// and surfaces as a PanicError naming the batch.
func TestInjectedBatchPanicBecomesPanicError(t *testing.T) {
	defer failpoint.Disable()
	s, faults, seq := testCircuitAndSeq(t, "s298", 40)
	if err := failpoint.Enable("sim.worker.batch=panic@1", 1); err != nil {
		t.Fatal(err)
	}
	ctl := &runctl.Control{}
	res := s.Run(seq, faults, Options{Control: ctl})
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", res.Err, res.Err)
	}
	if _, ok := pe.Value.(*failpoint.Error); !ok {
		t.Fatalf("panic value = %T, want *failpoint.Error", pe.Value)
	}
	if res.Status != runctl.Failed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
}
