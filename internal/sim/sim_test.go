package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func mustParse(t *testing.T, text string) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(text, "t")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// oneGate builds a circuit with one two-input gate of the given type.
func oneGate(t *testing.T, gt netlist.GateType) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("g")
	b.AddInput("a")
	b.AddInput("b")
	b.AddGate(gt, "y", "a", "b")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// refGate computes the scalar three-valued gate function.
func refGate(gt netlist.GateType, a, b logic.Value) logic.Value {
	switch gt {
	case netlist.AND:
		return logic.And(a, b)
	case netlist.NAND:
		return logic.And(a, b).Not()
	case netlist.OR:
		return logic.Or(a, b)
	case netlist.NOR:
		return logic.Or(a, b).Not()
	case netlist.XOR:
		return logic.Xor(a, b)
	case netlist.XNOR:
		return logic.Xor(a, b).Not()
	}
	panic("bad gate")
}

func TestGateTruthTables(t *testing.T) {
	vals := []logic.Value{logic.Zero, logic.One, logic.X}
	types := []netlist.GateType{netlist.AND, netlist.NAND, netlist.OR, netlist.NOR, netlist.XOR, netlist.XNOR}
	for _, gt := range types {
		c := oneGate(t, gt)
		m := New(c)
		for _, a := range vals {
			for _, b := range vals {
				m.Step(logic.Vector{a, b})
				got := m.OutputSlot(0, 0)
				want := refGate(gt, a, b)
				if got != want {
					t.Errorf("%v(%v,%v) = %v, want %v", gt, a, b, got, want)
				}
				// All slots must agree under broadcast.
				if got63 := m.OutputSlot(0, 63); got63 != want {
					t.Errorf("%v slot63 = %v, want %v", gt, got63, want)
				}
			}
		}
	}
}

func TestNotBufGates(t *testing.T) {
	b := netlist.NewBuilder("nb")
	b.AddInput("a")
	b.AddGate(netlist.NOT, "n", "a")
	b.AddGate(netlist.BUF, "f", "a")
	b.MarkOutput("n")
	b.MarkOutput("f")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(c)
	for _, a := range []logic.Value{logic.Zero, logic.One, logic.X} {
		m.Step(logic.Vector{a})
		if m.OutputSlot(0, 0) != a.Not() {
			t.Errorf("NOT(%v) = %v", a, m.OutputSlot(0, 0))
		}
		if m.OutputSlot(1, 0) != a {
			t.Errorf("BUF(%v) = %v", a, m.OutputSlot(1, 0))
		}
	}
}

func TestSequentialToggle(t *testing.T) {
	c := mustParse(t, `
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(en, q)
`)
	m := New(c)
	// Unknown initial state: q stays X while toggling.
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.X {
		t.Fatalf("unknown state toggled to %v", got)
	}
	// Force the state to 0 by construction: en=X cannot reset; use
	// SetStateBroadcast to model a known reset.
	m.SetStateBroadcast([]logic.Value{logic.Zero})
	expect := []logic.Value{logic.Zero, logic.One, logic.Zero, logic.One}
	for i, want := range expect {
		m.Step(logic.Vector{logic.One})
		if got := m.OutputSlot(0, 0); got != want {
			t.Fatalf("cycle %d: q = %v, want %v", i, got, want)
		}
	}
	// After the toggles above the state is 0; en=0 holds it.
	m.Step(logic.Vector{logic.Zero})
	m.Step(logic.Vector{logic.Zero})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Fatalf("hold failed: q = %v", got)
	}
}

func TestStepMultiPerSlotVectors(t *testing.T) {
	c := oneGate(t, netlist.AND)
	m := New(c)
	vecs := []logic.Vector{
		{logic.Zero, logic.Zero},
		{logic.Zero, logic.One},
		{logic.One, logic.Zero},
		{logic.One, logic.One},
	}
	m.StepMulti(vecs)
	want := []logic.Value{logic.Zero, logic.Zero, logic.Zero, logic.One}
	for k, w := range want {
		if got := m.OutputSlot(0, k); got != w {
			t.Errorf("slot %d = %v, want %v", k, got, w)
		}
	}
	// Slots beyond the provided vectors replicate the last vector.
	if got := m.OutputSlot(0, 60); got != logic.One {
		t.Errorf("slot 60 = %v, want replication of last vector", got)
	}
}

func TestFaultInjectionStem(t *testing.T) {
	c := oneGate(t, netlist.AND)
	m := New(c)
	y, _ := c.SignalByName("y")
	f := fault.Fault{Site: fault.Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}
	if err := m.InjectFault(f, 1<<5); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.Zero, logic.Zero})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("clean slot = %v, want 0", got)
	}
	if got := m.OutputSlot(0, 5); got != logic.One {
		t.Errorf("faulty slot = %v, want 1 (stuck-at-1)", got)
	}
	m.ClearFaults()
	m.Step(logic.Vector{logic.Zero, logic.Zero})
	if got := m.OutputSlot(0, 5); got != logic.Zero {
		t.Errorf("after ClearFaults slot = %v, want 0", got)
	}
}

func TestFaultInjectionBranchPin(t *testing.T) {
	// a fans out to NOT and AND; a SA1 on the AND pin only must leave
	// the NOT path clean.
	c := mustParse(t, `
INPUT(a)
OUTPUT(n)
OUTPUT(y)
n = NOT(a)
y = AND(a, a2)
INPUT(a2)
`)
	a, _ := c.SignalByName("a")
	var gi int32 = -1
	var pin int32
	for i, g := range c.Gates {
		if g.Type == netlist.AND {
			gi = int32(i)
			for p, in := range g.In {
				if in == a {
					pin = int32(p)
				}
			}
		}
	}
	m := New(c)
	f := fault.Fault{Site: fault.Site{Signal: a, Gate: gi, Pin: pin, FF: -1}, SA: logic.One}
	if err := m.InjectFault(f, 1); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.Zero, logic.One})
	if got := m.OutputSlot(0, 0); got != logic.One {
		t.Errorf("NOT path disturbed: n = %v, want 1", got)
	}
	if got := m.OutputSlot(1, 0); got != logic.One {
		t.Errorf("faulty AND = %v, want 1", got)
	}
}

func TestFaultInjectionFFPin(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(q)
q = DFF(a)
`)
	// Hmm: DFF input is a primary input directly; D-pin fault site.
	m := New(c)
	f := fault.Fault{Site: fault.Site{Signal: c.FFs[0].D, Gate: -1, Pin: -1, FF: 0}, SA: logic.Zero}
	if err := m.InjectFault(f, 1); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.One})
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("FF D-pin SA0: q = %v, want 0", got)
	}
}

func TestSaveRestoreState(t *testing.T) {
	c := mustParse(t, `
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(en, q)
`)
	m := New(c)
	m.SetStateBroadcast([]logic.Value{logic.Zero})
	snap := m.SaveState()
	m.Step(logic.Vector{logic.One})
	m.Step(logic.Vector{logic.One})
	m.RestoreState(snap)
	m.Step(logic.Vector{logic.Zero})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("restored state wrong: q = %v", got)
	}
}

func TestDetectMask(t *testing.T) {
	g0z, g0o := broadcast(logic.Zero)
	if DetectMask(g0z, g0o, 0, AllSlots) != AllSlots {
		t.Error("good 0 vs faulty 1 not detected")
	}
	// Faulty X must not be a detection.
	if DetectMask(g0z, g0o, AllSlots, AllSlots) != 0 {
		t.Error("good 0 vs faulty X falsely detected")
	}
	g1z, g1o := broadcast(logic.One)
	if DetectMask(g1z, g1o, AllSlots, 0) != AllSlots {
		t.Error("good 1 vs faulty 0 not detected")
	}
	if DetectMask(g1z, g1o, 0, AllSlots) != 0 {
		t.Error("equal values falsely detected")
	}
}

func TestRunDetectsInverterFault(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(y)
y = NOT(a)
`)
	y, _ := c.SignalByName("y")
	faults := []fault.Fault{
		{Site: fault.Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.Zero},
		{Site: fault.Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.One},
	}
	seq := logic.Sequence{{logic.Zero}, {logic.One}}
	res := Run(c, seq, faults, Options{})
	// a=0 -> y=1: SA0 detected at t=0. a=1 -> y=0: SA1 detected at t=1.
	if res.DetectedAt[0] != 0 || res.DetectedAt[1] != 1 {
		t.Fatalf("detections = %v", res.DetectedAt)
	}
	if res.NumDetected() != 2 {
		t.Error("NumDetected wrong")
	}
}

// TestDifferentialAgainstReference cross-checks parallel-fault Run
// against the scalar reference simulator on the real s27 circuit with
// random sequences: detection-or-not must agree for every fault, and the
// detection time must match exactly (both record first detection).
func TestDifferentialAgainstReference(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, false)
	rng := logic.NewRandFiller(12345)
	for trial := 0; trial < 4; trial++ {
		seq := make(logic.Sequence, 25)
		for i := range seq {
			v := logic.NewVector(c.NumInputs())
			for j := range v {
				if rng.Intn(10) == 0 {
					v[j] = logic.X
				} else {
					v[j] = rng.Next()
				}
			}
			seq[i] = v
		}
		res := Run(c, seq, faults, Options{})
		for fi, f := range faults {
			want := refDetect(c, seq, f)
			if got := res.DetectedAt[fi]; got != want {
				t.Fatalf("trial %d fault %s: Run=%d ref=%d", trial, f.Name(c), got, want)
			}
		}
	}
}

func TestRunSubset(t *testing.T) {
	c, _ := circuits.Load("s27")
	faults := fault.Universe(c, false)
	rng := logic.NewRandFiller(99)
	seq := make(logic.Sequence, 30)
	for i := range seq {
		v := logic.NewVector(c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	full := Run(c, seq, faults, Options{})
	subset := []int{0, 3, 7, len(faults) - 1}
	sub := RunSubset(c, seq, faults, subset, Options{})
	if len(sub.DetectedAt) != len(subset) {
		t.Fatalf("subset result has %d entries, want %d", len(sub.DetectedAt), len(subset))
	}
	for i, fi := range subset {
		if sub.DetectedAt[i] != full.DetectedAt[fi] {
			t.Errorf("fault %d: subset=%d full=%d", fi, sub.DetectedAt[i], full.DetectedAt[fi])
		}
	}
}

func TestGoodTraceAndFinalState(t *testing.T) {
	c := mustParse(t, `
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(en, q)
`)
	seq := logic.Sequence{{logic.One}, {logic.One}, {logic.Zero}}
	init := []logic.Value{logic.Zero}
	states, outputs := GoodTrace(c, seq, init)
	if len(states) != 3 || len(outputs) != 3 {
		t.Fatal("trace lengths wrong")
	}
	// After v0 (en=1): state flips to 1; output during v0 shows old 0.
	if outputs[0][0] != logic.Zero || states[0][0] != logic.One {
		t.Errorf("t0: out=%v state=%v", outputs[0][0], states[0][0])
	}
	if got := FinalState(c, seq, init); got[0] != states[2][0] {
		t.Errorf("FinalState = %v, want %v", got[0], states[2][0])
	}
	// Empty sequence keeps the initial state.
	if got := FinalState(c, nil, init); got[0] != logic.Zero {
		t.Errorf("FinalState(empty) = %v", got[0])
	}
}

func TestInjectFaultValidation(t *testing.T) {
	c := oneGate(t, netlist.AND)
	m := New(c)
	a, _ := c.SignalByName("a")
	bad := fault.Fault{Site: fault.Site{Signal: a, Gate: 0, Pin: 9, FF: -1}, SA: logic.One}
	if err := m.InjectFault(bad, 1); err == nil {
		t.Error("out-of-range pin accepted")
	}
	badSA := fault.Fault{Site: fault.Site{Signal: a, Gate: -1, Pin: -1, FF: -1}, SA: logic.X}
	if err := m.InjectFault(badSA, 1); err == nil {
		t.Error("stuck-at-X accepted")
	}
}

// TestBroadcastPlanesProperty: encoding/decoding one value through the
// planes is the identity for every slot.
func TestBroadcastPlanesProperty(t *testing.T) {
	f := func(raw uint8, slot uint8) bool {
		v := logic.Value(raw % 3)
		z, o := broadcast(v)
		return planesValue(z, o, uint64(1)<<(slot%64)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResetAllX(t *testing.T) {
	c := mustParse(t, `
INPUT(a)
OUTPUT(q)
q = DFF(a)
`)
	m := New(c)
	m.Step(logic.Vector{logic.One})
	m.Reset()
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.X {
		t.Errorf("after Reset q = %v, want X", got)
	}
}
