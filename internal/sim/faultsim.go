package sim

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// NotDetected marks a fault with no detection in a Result.
const NotDetected = -1

// Result reports fault simulation of one sequence: for every fault, the
// first cycle (vector index) at which a discrepancy was observed on a
// primary output, or NotDetected.
type Result struct {
	DetectedAt []int
}

// NumDetected counts detected faults.
func (r Result) NumDetected() int {
	n := 0
	for _, t := range r.DetectedAt {
		if t != NotDetected {
			n++
		}
	}
	return n
}

// Detected reports whether fault i was detected.
func (r Result) Detected(i int) bool { return r.DetectedAt[i] != NotDetected }

// Options configures fault simulation.
type Options struct {
	// InitialState assigns the flip-flop starting values; nil means
	// all X (the power-up-unknown model the paper uses).
	InitialState []logic.Value
}

// Run fault-simulates seq against every fault in faults, using
// parallel-fault simulation in batches of up to 64 faults. Detection is
// strictly at primary outputs (which for a scan circuit include
// scan_out): the faulty value must be binary and opposite to a binary
// good value.
//
// The good machine and every fault batch advance in lockstep, one
// vector at a time, and the whole run stops as soon as every fault is
// detected — test compaction issues millions of these runs, and most
// conclude long before the end of the sequence.
func Run(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options) Result {
	res := Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = NotDetected
	}
	if len(seq) == 0 || len(faults) == 0 {
		return res
	}

	good := New(c)
	if opts.InitialState != nil {
		good.SetStateBroadcast(opts.InitialState)
	}
	type batchState struct {
		m        *Machine
		start    int
		n        int
		detected uint64
		allMask  uint64
	}
	var batches []*batchState
	for start := 0; start < len(faults); start += Slots {
		end := start + Slots
		if end > len(faults) {
			end = len(faults)
		}
		b := &batchState{m: New(c), start: start, n: end - start}
		if opts.InitialState != nil {
			b.m.SetStateBroadcast(opts.InitialState)
		}
		for k, f := range faults[start:end] {
			// Injection errors indicate a site inconsistent with
			// the circuit; Universe never produces one.
			if err := b.m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
				panic(err)
			}
		}
		b.allMask = AllSlots
		if b.n < Slots {
			b.allMask = (uint64(1) << uint(b.n)) - 1
		}
		batches = append(batches, b)
	}

	nPO := c.NumOutputs()
	remaining := len(batches)
	goodVals := make([]logic.Value, nPO)
	for t, v := range seq {
		good.Step(v)
		for po := 0; po < nPO; po++ {
			goodVals[po] = good.OutputSlot(po, 0)
		}
		for _, b := range batches {
			if b.detected == b.allMask {
				continue
			}
			b.m.Step(v)
			for po := 0; po < nPO; po++ {
				if !goodVals[po].IsBinary() {
					continue
				}
				gz, gd := broadcast(goodVals[po])
				fz, fd := b.m.OutputPlanes(po)
				newly := DetectMask(gz, gd, fz, fd) &^ b.detected & b.allMask
				if newly == 0 {
					continue
				}
				b.detected |= newly
				for k := 0; k < b.n; k++ {
					if newly&(uint64(1)<<uint(k)) != 0 {
						res.DetectedAt[b.start+k] = t
					}
				}
				if b.detected == b.allMask {
					remaining--
				}
			}
		}
		if remaining == 0 {
			break
		}
	}
	return res
}

// RunSubset is Run restricted to the fault indices in subset; the
// returned map gives detection cycles for the subset only.
func RunSubset(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, subset []int, opts Options) map[int]int {
	sub := make([]fault.Fault, len(subset))
	for i, fi := range subset {
		sub[i] = faults[fi]
	}
	r := Run(c, seq, sub, opts)
	out := make(map[int]int, len(subset))
	for i, fi := range subset {
		out[fi] = r.DetectedAt[i]
	}
	return out
}

// GoodTrace simulates seq fault-free and returns the flip-flop state
// after each vector (states[t] is the state reached after applying
// seq[t]) and the primary output values observed at each vector.
func GoodTrace(c *netlist.Circuit, seq logic.Sequence, initial []logic.Value) (states [][]logic.Value, outputs [][]logic.Value) {
	m := New(c)
	if initial != nil {
		m.SetStateBroadcast(initial)
	}
	states = make([][]logic.Value, len(seq))
	outputs = make([][]logic.Value, len(seq))
	for t, v := range seq {
		m.Step(v)
		states[t] = m.StateSlot(0)
		row := make([]logic.Value, c.NumOutputs())
		for po := range row {
			row[po] = m.OutputSlot(po, 0)
		}
		outputs[t] = row
	}
	return states, outputs
}

// FinalState simulates seq fault-free and returns the reached state
// (all X if seq is empty and initial is nil).
func FinalState(c *netlist.Circuit, seq logic.Sequence, initial []logic.Value) []logic.Value {
	m := New(c)
	if initial != nil {
		m.SetStateBroadcast(initial)
	}
	for _, v := range seq {
		m.Step(v)
	}
	return m.StateSlot(0)
}
