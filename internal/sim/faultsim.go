package sim

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/runctl"
)

// NotDetected marks a fault with no detection in a Result.
const NotDetected = -1

// Result reports fault simulation of one sequence: for every fault, the
// first cycle (vector index) at which a discrepancy was observed on a
// primary output, or NotDetected.
type Result struct {
	DetectedAt []int
	// Status classifies the run when Options.Control was set: Complete
	// or Resumed for a full result, a stopped status when the run was
	// interrupted at a batch boundary — DetectedAt is then partial and
	// unprocessed faults read NotDetected. Always Complete (the zero
	// value) without a Control.
	Status runctl.Status
	// Err carries a worker failure, such as a recovered panic (see
	// PanicError); the faults of the failing batch and any unclaimed
	// batches read NotDetected. Runs without a Control re-panic on the
	// calling goroutine instead of reporting here.
	Err error
	// BatchSteps counts the units of fault-simulation work performed:
	// one unit is one 64-fault batch advanced by one vector. Each batch
	// stops at its own last first-detection, so the count reflects the
	// early exit; it is deterministic and independent of worker count.
	BatchSteps int64
	// FastForwarded counts batch-vectors the event-driven kernel skipped
	// outright because the batch's fault effects were dead (no diverged
	// flip-flop) and no fault site was activated by the fault-free
	// values of the cycle. Always zero under KernelFull. Like
	// BatchSteps, it is deterministic and independent of worker count.
	FastForwarded int64
}

// NumDetected counts detected faults.
func (r Result) NumDetected() int {
	n := 0
	for _, t := range r.DetectedAt {
		if t != NotDetected {
			n++
		}
	}
	return n
}

// Detected reports whether fault i was detected.
func (r Result) Detected(i int) bool { return r.DetectedAt[i] != NotDetected }

// Kernel selects the faulty-evaluation strategy of a fault-simulation
// run. Every kernel produces bit-identical DetectedAt results; only the
// work performed (and therefore BatchSteps/FastForwarded accounting)
// differs.
type Kernel uint8

const (
	// KernelEvent (the default) is the event-driven fault-cone kernel:
	// per cycle, only gates on a levelized dirty queue seeded from
	// active injection sites and diverged flip-flops are re-evaluated
	// against a cached fault-free image, and cycles in which the fault
	// effect is dead are skipped without evaluating any gate.
	KernelEvent Kernel = iota
	// KernelFull is the reference oracle: every gate of the circuit is
	// evaluated every cycle (Machine.evalFaulty).
	KernelFull
)

// Options configures fault simulation.
type Options struct {
	// InitialState assigns the flip-flop starting values; nil means
	// all X (the power-up-unknown model the paper uses).
	InitialState []logic.Value
	// Kernel selects the faulty-evaluation kernel; the zero value is
	// the event-driven kernel. Results are identical for every kernel.
	Kernel Kernel
	// Control, when non-nil, threads the run-control layer through the
	// simulation: cancellation and deadlines are polled at fault-batch
	// boundaries (in-flight batches drain, so a stop never yields a
	// half-simulated batch), per-batch detection state checkpoints to
	// the control's store under the "sim" section, and recovered worker
	// panics surface in Result.Err instead of re-panicking.
	Control *runctl.Control
}

// Run fault-simulates seq against every fault in faults, using
// parallel-fault simulation in batches of up to 64 faults. Detection is
// strictly at primary outputs (which for a scan circuit include
// scan_out): the faulty value must be binary and opposite to a binary
// good value.
//
// Each fault batch advances one vector at a time against the shared
// fault-free output trace and stops at its own last first-detection —
// test compaction issues millions of these runs, and most conclude long
// before the end of the sequence. Run is a thin single-worker wrapper
// over Simulator.Run; construct a Simulator directly to reuse its
// machine pool across calls or to fan batches out across cores.
func Run(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, opts Options) Result {
	return NewSimulator(c, 1).Run(seq, faults, opts)
}

// RunSubset is Run restricted to the fault indices in subset; the
// result's DetectedAt is keyed by subset position (DetectedAt[i] is the
// detection cycle of faults[subset[i]]). Callers in tight loops should
// use Simulator.RunSubset, which reuses a machine pool and accepts
// caller-provided buffers.
func RunSubset(c *netlist.Circuit, seq logic.Sequence, faults []fault.Fault, subset []int, opts Options) Result {
	return NewSimulator(c, 1).RunSubset(seq, faults, subset, opts, nil, nil)
}

// GoodTrace simulates seq fault-free and returns the flip-flop state
// after each vector (states[t] is the state reached after applying
// seq[t]) and the primary output values observed at each vector.
func GoodTrace(c *netlist.Circuit, seq logic.Sequence, initial []logic.Value) (states [][]logic.Value, outputs [][]logic.Value) {
	m := New(c)
	if initial != nil {
		m.SetStateBroadcast(initial)
	}
	states = make([][]logic.Value, len(seq))
	outputs = make([][]logic.Value, len(seq))
	for t, v := range seq {
		m.Step(v)
		states[t] = m.StateSlot(0)
		row := make([]logic.Value, c.NumOutputs())
		for po := range row {
			row[po] = m.OutputSlot(po, 0)
		}
		outputs[t] = row
	}
	return states, outputs
}

// FinalState simulates seq fault-free and returns the reached state
// (all X if seq is empty and initial is nil).
func FinalState(c *netlist.Circuit, seq logic.Sequence, initial []logic.Value) []logic.Value {
	m := New(c)
	if initial != nil {
		m.SetStateBroadcast(initial)
	}
	for _, v := range seq {
		m.Step(v)
	}
	return m.StateSlot(0)
}
