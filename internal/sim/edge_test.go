package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// wideGate builds an n-input gate of the given type.
func wideGate(t *testing.T, gt netlist.GateType, n int) *netlist.Circuit {
	t.Helper()
	b := netlist.NewBuilder("wide")
	in := make([]string, n)
	for i := range in {
		in[i] = string(rune('a' + i))
		b.AddInput(in[i])
	}
	b.AddGate(gt, "y", in...)
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWideGates(t *testing.T) {
	for _, gt := range []netlist.GateType{netlist.AND, netlist.NAND, netlist.OR, netlist.NOR, netlist.XOR, netlist.XNOR} {
		c := wideGate(t, gt, 7)
		m := New(c)
		// All ones.
		v := make(logic.Vector, 7)
		for i := range v {
			v[i] = logic.One
		}
		m.Step(v)
		got := m.OutputSlot(0, 0)
		var want logic.Value
		switch gt {
		case netlist.AND:
			want = logic.One
		case netlist.NAND:
			want = logic.Zero
		case netlist.OR:
			want = logic.One
		case netlist.NOR:
			want = logic.Zero
		case netlist.XOR: // 7 ones -> odd parity
			want = logic.One
		case netlist.XNOR:
			want = logic.Zero
		}
		if got != want {
			t.Errorf("%v(1×7) = %v, want %v", gt, got, want)
		}
		// One zero among ones.
		v[3] = logic.Zero
		m.Step(v)
		got = m.OutputSlot(0, 0)
		switch gt {
		case netlist.AND:
			want = logic.Zero
		case netlist.NAND:
			want = logic.One
		case netlist.OR:
			want = logic.One
		case netlist.NOR:
			want = logic.Zero
		case netlist.XOR: // 6 ones -> even parity
			want = logic.Zero
		case netlist.XNOR:
			want = logic.One
		}
		if got != want {
			t.Errorf("%v(one zero) = %v, want %v", gt, got, want)
		}
	}
}

func TestXWideGatePessimism(t *testing.T) {
	// AND with one 0 input is 0 even when others are X.
	c := wideGate(t, netlist.AND, 4)
	m := New(c)
	m.Step(logic.Vector{logic.X, logic.Zero, logic.X, logic.X})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("AND(x,0,x,x) = %v", got)
	}
	// OR with one 1 is 1 despite X.
	c = wideGate(t, netlist.OR, 4)
	m = New(c)
	m.Step(logic.Vector{logic.X, logic.One, logic.X, logic.X})
	if got := m.OutputSlot(0, 0); got != logic.One {
		t.Errorf("OR(x,1,x,x) = %v", got)
	}
	// XOR with any X is X.
	c = wideGate(t, netlist.XOR, 3)
	m = New(c)
	m.Step(logic.Vector{logic.One, logic.X, logic.Zero})
	if got := m.OutputSlot(0, 0); got != logic.X {
		t.Errorf("XOR(1,x,0) = %v", got)
	}
}

func TestShortInputVectorPadsWithX(t *testing.T) {
	c := wideGate(t, netlist.AND, 3)
	m := New(c)
	// Vector shorter than the input count: missing inputs read X.
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.X {
		t.Errorf("short vector: AND = %v, want X", got)
	}
}

func TestDuplicateInputSignalOnGate(t *testing.T) {
	// A gate may legally read the same signal twice.
	b := netlist.NewBuilder("dup")
	b.AddInput("a")
	b.AddGate(netlist.XOR, "y", "a", "a")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := New(c)
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("XOR(a,a) with a=1 = %v, want 0", got)
	}
	// But a branch fault on one pin breaks the symmetry.
	a, _ := c.SignalByName("a")
	f := fault.Fault{Site: fault.Site{Signal: a, Gate: 0, Pin: 1, FF: -1}, SA: logic.Zero}
	if err := m.InjectFault(f, 1); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.One})
	if got := m.OutputSlot(0, 0); got != logic.One {
		t.Errorf("XOR(a, a-SA0) with a=1 = %v, want 1", got)
	}
}

func TestManyFaultsSameSite(t *testing.T) {
	// Two different slots may carry opposite faults on the same site.
	c := wideGate(t, netlist.AND, 2)
	m := New(c)
	y, _ := c.SignalByName("y")
	if err := m.InjectFault(fault.Fault{Site: fault.Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.Zero}, 1<<0); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectFault(fault.Fault{Site: fault.Site{Signal: y, Gate: -1, Pin: -1, FF: -1}, SA: logic.One}, 1<<1); err != nil {
		t.Fatal(err)
	}
	m.Step(logic.Vector{logic.One, logic.Zero}) // good y = 0
	if got := m.OutputSlot(0, 0); got != logic.Zero {
		t.Errorf("slot0 (SA0) = %v", got)
	}
	if got := m.OutputSlot(0, 1); got != logic.One {
		t.Errorf("slot1 (SA1) = %v", got)
	}
}

func TestRunEmptyInputs(t *testing.T) {
	c := wideGate(t, netlist.AND, 2)
	if got := Run(c, nil, fault.Universe(c, true), Options{}); got.NumDetected() != 0 {
		t.Error("empty sequence detected faults")
	}
	if got := Run(c, logic.Sequence{{logic.One, logic.One}}, nil, Options{}); len(got.DetectedAt) != 0 {
		t.Error("empty fault list produced results")
	}
}

func TestInitialStateOption(t *testing.T) {
	b := netlist.NewBuilder("ff")
	b.AddInput("a")
	b.AddGate(netlist.AND, "d", "a", "q")
	b.AddFF("q", "d")
	b.MarkOutput("q")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q, _ := c.SignalByName("q")
	f := []fault.Fault{{Site: fault.Site{Signal: q, Gate: -1, Pin: -1, FF: -1}, SA: logic.Zero}}
	seq := logic.Sequence{{logic.One}, {logic.One}}
	// Unknown initial state: q SA0 cannot be detected (good output X).
	noInit := Run(c, seq, f, Options{})
	if noInit.Detected(0) {
		t.Error("detected q SA0 from unknown state")
	}
	// Known initial state 1: detected immediately.
	withInit := Run(c, seq, f, Options{InitialState: []logic.Value{logic.One}})
	if !withInit.Detected(0) {
		t.Error("q SA0 undetected despite known state")
	}
}
