package sim

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
)

func benchSetup(b *testing.B, name string) (*Machine, logic.Vector) {
	b.Helper()
	c, err := circuits.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	m := New(c)
	rng := logic.NewRandFiller(1)
	v := make(logic.Vector, c.NumInputs())
	for i := range v {
		v[i] = rng.Next()
	}
	return m, v
}

// BenchmarkStepClean measures one fault-free bit-parallel simulation
// step (64 slots per step).
func BenchmarkStepClean(b *testing.B) {
	for _, name := range []string{"s27", "s953", "s5378"} {
		b.Run(name, func(b *testing.B) {
			m, v := benchSetup(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(v)
			}
			b.ReportMetric(float64(m.Circuit().NumGates()), "gates")
		})
	}
}

// BenchmarkStepFaulty measures one step with a full 64-fault batch
// injected.
func BenchmarkStepFaulty(b *testing.B) {
	for _, name := range []string{"s27", "s953", "s5378"} {
		b.Run(name, func(b *testing.B) {
			m, v := benchSetup(b, name)
			faults := fault.Universe(m.Circuit(), true)
			for k := 0; k < Slots && k < len(faults); k++ {
				if err := m.InjectFault(faults[k], uint64(1)<<uint(k)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(v)
			}
		})
	}
}

// BenchmarkSimulatorParallel measures whole-universe fault simulation
// through the Simulator at several worker counts on the largest catalog
// circuit. The serial sub-benchmark is the pre-pool baseline shape (one
// worker, machines still pooled); results are bit-identical across
// worker counts, only wall-clock changes.
func BenchmarkSimulatorParallel(b *testing.B) {
	c, err := circuits.Load("s35932")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, 32)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers2", 2},
		{"workers4", 4},
		{"allcores", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := NewSimulator(c, bc.workers)
			b.ResetTimer()
			var det int
			for i := 0; i < b.N; i++ {
				det = s.Run(seq, faults, Options{}).NumDetected()
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkRun measures whole-sequence fault simulation with batching
// and early exit.
func BenchmarkRun(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, 200)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	b.ResetTimer()
	var det int
	for i := 0; i < b.N; i++ {
		det = Run(c, seq, faults, Options{}).NumDetected()
	}
	b.ReportMetric(float64(det), "detected")
}
