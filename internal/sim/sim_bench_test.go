package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
)

func benchSetup(b *testing.B, name string) (*Machine, logic.Vector) {
	b.Helper()
	c, err := circuits.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	m := New(c)
	rng := logic.NewRandFiller(1)
	v := make(logic.Vector, c.NumInputs())
	for i := range v {
		v[i] = rng.Next()
	}
	return m, v
}

// BenchmarkStepClean measures one fault-free bit-parallel simulation
// step (64 slots per step).
func BenchmarkStepClean(b *testing.B) {
	for _, name := range []string{"s27", "s953", "s5378"} {
		b.Run(name, func(b *testing.B) {
			m, v := benchSetup(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(v)
			}
			b.ReportMetric(float64(m.Circuit().NumGates()), "gates")
		})
	}
}

// BenchmarkStepFaulty measures one step with a full 64-fault batch
// injected.
func BenchmarkStepFaulty(b *testing.B) {
	for _, name := range []string{"s27", "s953", "s5378"} {
		b.Run(name, func(b *testing.B) {
			m, v := benchSetup(b, name)
			faults := fault.Universe(m.Circuit(), true)
			for k := 0; k < Slots && k < len(faults); k++ {
				if err := m.InjectFault(faults[k], uint64(1)<<uint(k)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step(v)
			}
		})
	}
}

// BenchmarkSimulatorParallel measures whole-universe fault simulation
// through the Simulator at several worker counts on the largest catalog
// circuit. The serial sub-benchmark is the pre-pool baseline shape (one
// worker, machines still pooled); results are bit-identical across
// worker counts, only wall-clock changes.
func BenchmarkSimulatorParallel(b *testing.B) {
	c, err := circuits.Load("s35932")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, 32)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"workers2", 2},
		{"workers4", 4},
		{"allcores", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := NewSimulator(c, bc.workers)
			b.ResetTimer()
			var det int
			for i := 0; i < b.N; i++ {
				det = s.Run(seq, faults, Options{}).NumDetected()
			}
			b.ReportMetric(float64(det), "detected")
		})
	}
}

// BenchmarkRun measures whole-sequence fault simulation with batching
// and early exit.
func BenchmarkRun(b *testing.B) {
	c, err := circuits.Load("s298")
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, 200)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	b.ResetTimer()
	var det int
	for i := 0; i < b.N; i++ {
		det = Run(c, seq, faults, Options{}).NumDetected()
	}
	b.ReportMetric(float64(det), "detected")
}

// scanBench builds C_scan for a catalog circuit plus a scan-translated
// test sequence in the paper's shape: per test, a full state load
// through the chain, a couple of functional vectors, and a flush to the
// scan output.
func scanBench(b *testing.B, name string, tests int) (sc *scan.Circuit, faults []fault.Fault, seq logic.Sequence) {
	b.Helper()
	orig, err := circuits.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	sc, err = scan.Insert(orig)
	if err != nil {
		b.Fatal(err)
	}
	faults = fault.Universe(sc.Scan, true)
	rng := rand.New(rand.NewSource(11))
	for test := 0; test < tests; test++ {
		state := make([]logic.Value, sc.NSV)
		for i := range state {
			state[i] = logic.Value(rng.Intn(2))
		}
		load, err := sc.ScanInSequence(state)
		if err != nil {
			b.Fatal(err)
		}
		seq = append(seq, load...)
		for f := 0; f < 2; f++ {
			v := logic.NewVector(sc.Orig.NumInputs())
			for i := range v {
				v[i] = logic.Value(rng.Intn(2))
			}
			seq = append(seq, sc.FunctionalVector(v))
		}
		seq = append(seq, sc.FlushVectors(0)...)
	}
	return sc, faults, seq
}

// cloneSeq deep-copies a sequence so its vector identities differ from
// the original — a Run over a clone always misses the Simulator's
// fault-free trace cache, reproducing the pre-cache per-Run rebuild.
func cloneSeq(seq logic.Sequence) logic.Sequence {
	out := make(logic.Sequence, len(seq))
	for t, v := range seq {
		out[t] = append(logic.Vector(nil), v...)
	}
	return out
}

// kernelVariants are the benchmark configurations shared by the scan
// benchmarks: the seed baseline (full kernel, trace rebuilt every Run —
// rebuild alternates cloned sequences to defeat the cache), the full
// kernel with the trace cache, and the event kernel.
var kernelVariants = []struct {
	name    string
	kernel  Kernel
	rebuild bool
}{
	{"full-rebuild", KernelFull, true},
	{"full", KernelFull, false},
	{"event", KernelEvent, false},
}

// BenchmarkFaultSimScan measures whole-universe fault simulation of
// scan-translated sequences under both kernels — the workload the
// event-driven kernel was built for. Detection results are identical;
// only the work differs (see the batchsteps/fastfwd metrics).
func BenchmarkFaultSimScan(b *testing.B) {
	for _, name := range []string{"s298", "s1423"} {
		sc, faults, seq := scanBench(b, name, 5)
		seqs := []logic.Sequence{cloneSeq(seq), cloneSeq(seq)}
		for _, k := range kernelVariants {
			b.Run(name+"/"+k.name, func(b *testing.B) {
				s := NewSimulator(sc.Scan, 1)
				b.ResetTimer()
				var r Result
				for i := 0; i < b.N; i++ {
					sq := seq
					if k.rebuild {
						sq = seqs[i%2]
					}
					r = s.Run(sq, faults, Options{Kernel: k.kernel})
				}
				b.ReportMetric(float64(r.NumDetected()), "detected")
				b.ReportMetric(float64(r.BatchSteps), "batchsteps")
				b.ReportMetric(float64(r.FastForwarded), "fastfwd")
			})
		}
	}
}

// BenchmarkRunSubsetScan measures the compaction trial shape: repeated
// small-subset simulations against a scan-translated sequence, where
// dead-cycle skipping pays off most (few faults per run, most cycles
// touch none of their sites).
func BenchmarkRunSubsetScan(b *testing.B) {
	sc, faults, seq := scanBench(b, "s298", 5)
	seqs := []logic.Sequence{cloneSeq(seq), cloneSeq(seq)}
	rng := rand.New(rand.NewSource(3))
	subsets := make([][]int, 32)
	for i := range subsets {
		subsets[i] = rng.Perm(len(faults))[:4]
	}
	for _, k := range kernelVariants {
		b.Run(k.name, func(b *testing.B) {
			s := NewSimulator(sc.Scan, 1)
			buf := make([]fault.Fault, 0, Slots)
			out := make([]int, 0, Slots)
			opts := Options{Kernel: k.kernel}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sq := seq
				if k.rebuild {
					sq = seqs[i%2]
				}
				r := s.RunSubset(sq, faults, subsets[i%len(subsets)], opts, buf, out)
				out = r.DetectedAt
			}
		})
	}
}
