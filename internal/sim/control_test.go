package sim

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/runctl"
	"repro/internal/scan"
)

// badFault returns a fault whose injection fails (pin out of range for
// gate 0), which the batch kernels turn into a panic — the deliberate
// worker-failure vector for these tests.
func badFault(c interface{ NumGates() int }) fault.Fault {
	return fault.Fault{
		SA:   logic.Zero,
		Site: fault.Site{Signal: 0, Gate: 0, Pin: 99, FF: -1},
	}
}

func testCircuitAndSeq(t *testing.T, name string, vectors int) (*Simulator, []fault.Fault, logic.Sequence) {
	t.Helper()
	c, err := circuits.Load(name)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, vectors)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	return NewSimulator(c, 4), faults, seq
}

func TestWorkerPanicSurfacesAsError(t *testing.T) {
	s, faults, seq := testCircuitAndSeq(t, "s298", 40)
	// Plant the bad fault in the second batch so the first batch holds
	// only healthy faults.
	if len(faults) <= Slots {
		t.Fatalf("need more than one batch, have %d faults", len(faults))
	}
	bad := badFault(s.Circuit())
	mixed := append(append([]fault.Fault{}, faults[:Slots]...), bad)
	mixed = append(mixed, faults[Slots:2*Slots-1]...)

	before := runtime.NumGoroutine()
	ctl := &runctl.Control{}
	res := s.Run(seq, mixed, Options{Control: ctl})
	if res.Err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("error is %T, want *PanicError: %v", res.Err, res.Err)
	}
	if pe.BatchStart != Slots || pe.BatchEnd != len(mixed) {
		t.Errorf("batch range [%d,%d), want [%d,%d)", pe.BatchStart, pe.BatchEnd, Slots, len(mixed))
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "runBatch") {
		t.Errorf("stack missing or unhelpful:\n%s", pe.Stack)
	}
	if res.Status != runctl.Failed {
		t.Errorf("status = %v, want failed", res.Status)
	}
	// Give drained workers a moment to exit, then check for leaks.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}

	// The simulator stays usable after a failed run.
	ok := s.Run(seq, faults, Options{})
	if ok.Err != nil || ok.NumDetected() == 0 {
		t.Fatalf("simulator unusable after failure: err=%v detected=%d", ok.Err, ok.NumDetected())
	}
}

func TestWorkerPanicRepanicsWithoutControl(t *testing.T) {
	s, faults, seq := testCircuitAndSeq(t, "s27", 20)
	mixed := append([]fault.Fault{badFault(s.Circuit())}, faults...)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated to caller")
		}
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
	}()
	s.Run(seq, mixed, Options{})
}

func TestRunCancellationReturnsPartial(t *testing.T) {
	s, faults, seq := testCircuitAndSeq(t, "s298", 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ctl := &runctl.Control{Budget: runctl.Budget{Ctx: ctx}}
	res := s.Run(seq, faults, Options{Control: ctl})
	if res.Status != runctl.Canceled {
		t.Fatalf("status = %v, want canceled", res.Status)
	}
	if res.Err != nil {
		t.Fatalf("unexpected error: %v", res.Err)
	}
	if res.NumDetected() != 0 {
		// Pre-canceled control: no batch may run.
		t.Fatalf("canceled-before-start run detected %d faults", res.NumDetected())
	}
}

func TestRunCheckpointResumeIdentity(t *testing.T) {
	s, faults, seq := testCircuitAndSeq(t, "s298", 40)
	ref := s.Run(seq, faults, Options{})

	store := runctl.NewMemStore()
	// Interrupt immediately: context already canceled, nothing runs,
	// but the (empty) checkpoint is written.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.Run(seq, faults, Options{Control: &runctl.Control{Budget: runctl.Budget{Ctx: ctx}, Store: store}})
	if res.Status != runctl.Canceled {
		t.Fatalf("status = %v", res.Status)
	}

	// Resume without a budget: must complete and match the reference.
	res = s.Run(seq, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Status.Done() {
		t.Fatalf("resumed status = %v", res.Status)
	}
	for i := range ref.DetectedAt {
		if res.DetectedAt[i] != ref.DetectedAt[i] {
			t.Fatalf("fault %d: resumed %d, reference %d", i, res.DetectedAt[i], ref.DetectedAt[i])
		}
	}

	// Resume once more: everything checkpointed as complete.
	res = s.Run(seq, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if res.Status != runctl.Resumed {
		t.Fatalf("second resume status = %v", res.Status)
	}
	for i := range ref.DetectedAt {
		if res.DetectedAt[i] != ref.DetectedAt[i] {
			t.Fatalf("fault %d after full resume: %d vs %d", i, res.DetectedAt[i], ref.DetectedAt[i])
		}
	}
}

// TestResumeFromZeroProgressCheckpointReportsResumed is the minimized
// reproduction of an internal/xcheck resume/identical violation
// (circuit s5378_scan, one vector "1110100111111110010000111011111100101",
// one fault "a19 SA0", shrunk by cmd/xcheck): a run interrupted before
// completing any batch writes a checkpoint with no finished batches,
// and the pre-fix resume reported Complete instead of Resumed — unlike
// the compact engines, which report Resumed for the same zero-progress
// checkpoint. The detection results were always identical; only the
// status classification disagreed.
func TestResumeFromZeroProgressCheckpointReportsResumed(t *testing.T) {
	c, err := circuits.Load("s5378")
	if err != nil {
		t.Fatal(err)
	}
	scd, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	v, err := logic.ParseVector("1110100111111110010000111011111100101")
	if err != nil {
		t.Fatal(err)
	}
	seq := logic.Sequence{v}
	sig, ok := scd.Scan.SignalByName("a19")
	if !ok {
		t.Fatal("signal a19 missing from s5378_scan")
	}
	faults := []fault.Fault{{
		Site: fault.Site{Signal: sig, Gate: -1, Pin: -1, FF: -1},
		SA:   logic.Zero,
	}}
	s := NewSimulator(scd.Scan, 1)
	want := s.Run(seq, faults, Options{})

	store := runctl.NewMemStore()
	res := s.Run(seq, faults, Options{Control: &runctl.Control{
		Budget: runctl.Budget{StopAfterPolls: 1}, Store: store,
	}})
	if res.Status != runctl.Canceled {
		t.Fatalf("interrupted leg status = %v, want canceled", res.Status)
	}
	if res.NumDetected() != 0 {
		t.Fatalf("stop at first poll ran %d detections", res.NumDetected())
	}

	res = s.Run(seq, faults, Options{Control: &runctl.Control{Store: store, Resume: true}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Status != runctl.Resumed {
		t.Fatalf("resumed leg status = %v, want resumed", res.Status)
	}
	if res.DetectedAt[0] != want.DetectedAt[0] {
		t.Fatalf("resumed detection %d, uninterrupted %d", res.DetectedAt[0], want.DetectedAt[0])
	}
}

func TestRunCheckpointMismatchFails(t *testing.T) {
	s, faults, seq := testCircuitAndSeq(t, "s27", 10)
	store := runctl.NewMemStore()
	res := s.Run(seq, faults, Options{Control: &runctl.Control{Store: store}})
	if res.Err != nil || !res.Status.Done() {
		t.Fatalf("seed run: %v %v", res.Status, res.Err)
	}
	// Different fault universe: the checkpoint must be rejected.
	res = s.Run(seq, faults[:len(faults)-1], Options{Control: &runctl.Control{Store: store, Resume: true}})
	if res.Err == nil || res.Status != runctl.Failed {
		t.Fatalf("mismatched resume accepted: %v %v", res.Status, res.Err)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{-5, -1, 0} {
		if got := NewSimulator(c, w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Errorf("NewSimulator(c, %d).Workers() = %d, want GOMAXPROCS %d", w, got, runtime.GOMAXPROCS(0))
		}
	}
	if got := NewSimulator(c, 3).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("NewSimulator(nil, 1) did not panic")
		}
	}()
	NewSimulator(nil, 1)
}
