// Package sim implements three-valued (0/1/X) simulation of synchronous
// sequential circuits, bit-parallel over 64 slots, with stuck-at fault
// injection at stem and branch sites. It is the substrate for good-value
// simulation, fault simulation, test generation and test compaction.
//
// Encoding: each signal carries two 64-bit planes (zero, one). Bit k of
// zero means "in slot k the signal can be 0"; bit k of one means "can be
// 1". A slot with both bits set holds X; a slot with neither is invalid
// and never produced.
package sim

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Slots is the simulation width: the number of independent slots a
// Machine evaluates in parallel.
const Slots = 64

// AllSlots is a mask with every slot bit set.
const AllSlots = ^uint64(0)

// Machine simulates one circuit. It holds per-signal value planes, the
// flip-flop state, and the currently injected faults. A Machine is not
// safe for concurrent use; create one per goroutine.
type Machine struct {
	c *netlist.Circuit

	zero, one []uint64 // per signal, valid after a Step
	sz, so    []uint64 // per flip-flop: current state planes

	stemSA0, stemSA1 []uint64 // per signal
	pinSA0, pinSA1   []uint64 // per gate-input global pin
	ffSA0, ffSA1     []uint64 // per flip-flop D pin

	pinBase   []int32 // per gate: index of its pin 0 in pinSA0/pinSA1
	hasFaults bool
	injected  []fault.Fault

	// Transition (gross-delay) faults: slow-to-rise delays rising
	// transitions by one cycle (site value = AND of current and
	// previous driving value), slow-to-fall delays falling ones (OR).
	trans    []transSite
	transAt  []int32 // per signal: index into trans, or -1
	hasTrans bool

	// ev is the event-driven kernel's scratch state (see event.go),
	// allocated on first use and reused across batches.
	ev *eventScratch
}

type transSite struct {
	sig          netlist.SignalID
	slowToRise   bool
	mask         uint64
	prevZ, prevO uint64
	next         int32 // next site on the same signal, or -1
}

// New returns a Machine for circuit c with all flip-flops at X and no
// faults injected.
func New(c *netlist.Circuit) *Machine {
	nPins := 0
	pinBase := make([]int32, len(c.Gates))
	for gi, g := range c.Gates {
		pinBase[gi] = int32(nPins)
		nPins += len(g.In)
	}
	m := &Machine{
		c:       c,
		zero:    make([]uint64, len(c.Signals)),
		one:     make([]uint64, len(c.Signals)),
		sz:      make([]uint64, len(c.FFs)),
		so:      make([]uint64, len(c.FFs)),
		stemSA0: make([]uint64, len(c.Signals)),
		stemSA1: make([]uint64, len(c.Signals)),
		pinSA0:  make([]uint64, nPins),
		pinSA1:  make([]uint64, nPins),
		ffSA0:   make([]uint64, len(c.FFs)),
		ffSA1:   make([]uint64, len(c.FFs)),
		pinBase: pinBase,
	}
	m.Reset()
	return m
}

// Circuit returns the circuit being simulated.
func (m *Machine) Circuit() *netlist.Circuit { return m.c }

// Reset sets every flip-flop to X in every slot and forgets transition
// fault history. Injected faults are kept.
func (m *Machine) Reset() {
	for i := range m.sz {
		m.sz[i] = AllSlots
		m.so[i] = AllSlots
	}
	for i := range m.trans {
		m.trans[i].prevZ = AllSlots
		m.trans[i].prevO = AllSlots
	}
}

// InjectFault adds stuck-at fault f to the slots selected by mask. The
// same Machine can carry many faults at once (one per slot is the usual
// arrangement for parallel-fault simulation).
func (m *Machine) InjectFault(f fault.Fault, mask uint64) error {
	var sa0, sa1 *uint64
	site := f.Site
	switch {
	case site.IsStem():
		sa0, sa1 = &m.stemSA0[site.Signal], &m.stemSA1[site.Signal]
	case site.FF >= 0:
		sa0, sa1 = &m.ffSA0[site.FF], &m.ffSA1[site.FF]
	default:
		g := m.c.Gates[site.Gate]
		if site.Pin < 0 || int(site.Pin) >= len(g.In) {
			return fmt.Errorf("sim: fault pin %d out of range for gate %s", site.Pin, m.c.SignalName(g.Out))
		}
		if g.In[site.Pin] != site.Signal {
			return fmt.Errorf("sim: fault site signal mismatch on gate %s pin %d", m.c.SignalName(g.Out), site.Pin)
		}
		idx := m.pinBase[site.Gate] + site.Pin
		sa0, sa1 = &m.pinSA0[idx], &m.pinSA1[idx]
	}
	switch f.SA {
	case logic.Zero:
		*sa0 |= mask
	case logic.One:
		*sa1 |= mask
	default:
		return fmt.Errorf("sim: stuck-at value must be 0 or 1")
	}
	m.hasFaults = true
	m.injected = append(m.injected, f)
	return nil
}

// InjectTransitionFault adds a gross-delay transition fault on the stem
// of signal sig to the slots selected by mask: slow-to-rise when
// slowToRise, slow-to-fall otherwise. At most one transition fault per
// signal may be injected at a time (different slots of the same signal
// must share the polarity).
func (m *Machine) InjectTransitionFault(sig netlist.SignalID, slowToRise bool, mask uint64) error {
	if m.transAt == nil {
		m.transAt = make([]int32, len(m.c.Signals))
		for i := range m.transAt {
			m.transAt[i] = -1
		}
	}
	for ti := m.transAt[sig]; ti >= 0; ti = m.trans[ti].next {
		t := &m.trans[ti]
		if t.slowToRise == slowToRise {
			t.mask |= mask
			m.hasFaults = true
			m.hasTrans = true
			return nil
		}
	}
	// New site; chain it in front of any existing ones on this signal
	// (slots are disjoint, so application order does not matter).
	idx := int32(len(m.trans))
	m.trans = append(m.trans, transSite{
		sig:        sig,
		slowToRise: slowToRise,
		mask:       mask,
		prevZ:      AllSlots, // unknown history: previous value X
		prevO:      AllSlots,
		next:       m.transAt[sig],
	})
	m.transAt[sig] = idx
	m.hasFaults = true
	m.hasTrans = true
	return nil
}

// applyTrans applies a transition site's delay function to freshly
// computed stem planes and records them as the next cycle's history.
func (m *Machine) applyTrans(ti int32, z, o uint64) (uint64, uint64) {
	t := &m.trans[ti]
	var nz, no uint64
	if t.slowToRise {
		// Value = AND(current, previous): rising edges arrive late.
		nz = z | t.prevZ
		no = o & t.prevO
	} else {
		// Value = OR(current, previous): falling edges arrive late.
		nz = z & t.prevZ
		no = o | t.prevO
	}
	t.prevZ, t.prevO = z, o
	z = (z &^ t.mask) | (nz & t.mask)
	o = (o &^ t.mask) | (no & t.mask)
	return z, o
}

// maybeTrans applies the signal's transition sites, if any. Multiple
// sites on one signal occupy disjoint slot masks, so the application
// order is irrelevant.
func (m *Machine) maybeTrans(sig netlist.SignalID, z, o uint64) (uint64, uint64) {
	if !m.hasTrans {
		return z, o
	}
	for ti := m.transAt[sig]; ti >= 0; ti = m.trans[ti].next {
		z, o = m.applyTrans(ti, z, o)
	}
	return z, o
}

// ClearFaults removes every injected fault, including transition
// faults.
func (m *Machine) ClearFaults() {
	if m.hasTrans {
		for _, t := range m.trans {
			m.transAt[t.sig] = -1
		}
		m.trans = m.trans[:0]
		m.hasTrans = false
	}
	if !m.hasFaults {
		return
	}
	for _, f := range m.injected {
		site := f.Site
		switch {
		case site.IsStem():
			m.stemSA0[site.Signal] = 0
			m.stemSA1[site.Signal] = 0
		case site.FF >= 0:
			m.ffSA0[site.FF] = 0
			m.ffSA1[site.FF] = 0
		default:
			idx := m.pinBase[site.Gate] + site.Pin
			m.pinSA0[idx] = 0
			m.pinSA1[idx] = 0
		}
	}
	m.injected = m.injected[:0]
	m.hasFaults = false
}

// State is a snapshot of the flip-flop planes, used to save and restore
// the machine around trial simulation.
type State struct{ sz, so []uint64 }

// SaveState returns a copy of the current flip-flop state.
func (m *Machine) SaveState() State {
	s := State{sz: make([]uint64, len(m.sz)), so: make([]uint64, len(m.so))}
	copy(s.sz, m.sz)
	copy(s.so, m.so)
	return s
}

// SaveStateInto copies the current flip-flop state into s, reusing its
// backing arrays when they are already the right size. Use it for
// snapshot buffers that are overwritten repeatedly (SaveState would
// allocate fresh planes every time).
func (m *Machine) SaveStateInto(s *State) {
	if len(s.sz) != len(m.sz) || len(s.so) != len(m.so) {
		s.sz = make([]uint64, len(m.sz))
		s.so = make([]uint64, len(m.so))
	}
	copy(s.sz, m.sz)
	copy(s.so, m.so)
}

// RestoreState restores a snapshot taken with SaveState.
func (m *Machine) RestoreState(s State) {
	copy(m.sz, s.sz)
	copy(m.so, s.so)
}

// SetStateBroadcast sets every slot's state to vals (one value per
// flip-flop).
func (m *Machine) SetStateBroadcast(vals []logic.Value) {
	for i, v := range vals {
		m.sz[i], m.so[i] = broadcast(v)
	}
}

// SetStatePair sets slot 0 of every flip-flop to good[i] and every
// other slot to faulty[i]. Used when simulating a fault whose history
// has already diverged from the fault-free circuit (slot 0 fault-free,
// remaining slots faulty).
func (m *Machine) SetStatePair(good, faulty []logic.Value) {
	for i := range m.sz {
		gz, gd := broadcast(good[i])
		fz, fd := broadcast(faulty[i])
		m.sz[i] = (gz & 1) | (fz &^ 1)
		m.so[i] = (gd & 1) | (fd &^ 1)
	}
}

// StateSlot extracts the state of one slot as logic values.
func (m *Machine) StateSlot(slot int) []logic.Value {
	bit := uint64(1) << uint(slot)
	out := make([]logic.Value, len(m.sz))
	for i := range m.sz {
		out[i] = planesValue(m.sz[i], m.so[i], bit)
	}
	return out
}

// FFPlanes returns the state planes of flip-flop fi.
func (m *Machine) FFPlanes(fi int) (zero, one uint64) { return m.sz[fi], m.so[fi] }

// OutputPlanes returns the planes of primary output po after the last
// Step.
func (m *Machine) OutputPlanes(po int) (zero, one uint64) {
	s := m.c.Outputs[po]
	return m.zero[s], m.one[s]
}

// OutputSlot returns the value of primary output po in one slot.
func (m *Machine) OutputSlot(po, slot int) logic.Value {
	z, o := m.OutputPlanes(po)
	return planesValue(z, o, uint64(1)<<uint(slot))
}

// SignalPlanes returns the planes of an arbitrary signal after the last
// Step (combinational values; flip-flop outputs show the state that was
// current during that step).
func (m *Machine) SignalPlanes(s netlist.SignalID) (zero, one uint64) {
	return m.zero[s], m.one[s]
}

// Step applies vector v to the primary inputs of every slot and clocks
// the circuit once: combinational evaluation followed by the state
// update. Primary output planes remain readable until the next Step.
func (m *Machine) Step(v logic.Vector) {
	for i, in := range m.c.Inputs {
		val := logic.X
		if i < len(v) {
			val = v[i]
		}
		m.zero[in], m.one[in] = broadcast(val)
	}
	m.finishStep()
}

// StepMulti applies vecs[k] to slot k (slots beyond len(vecs) receive
// vecs[len-1]) and clocks the circuit once.
func (m *Machine) StepMulti(vecs []logic.Vector) {
	if len(vecs) == 0 {
		panic("sim: StepMulti with no vectors")
	}
	n := len(vecs)
	if n > Slots {
		n = Slots
	}
	last := vecs[len(vecs)-1]
	for i, in := range m.c.Inputs {
		var z, o uint64
		for k := 0; k < n; k++ {
			val := logic.X
			if i < len(vecs[k]) {
				val = vecs[k][i]
			}
			bit := uint64(1) << uint(k)
			switch val {
			case logic.Zero:
				z |= bit
			case logic.One:
				o |= bit
			default:
				z |= bit
				o |= bit
			}
		}
		if n < Slots {
			// Slots beyond the supplied vectors replicate the last one.
			rest := AllSlots << uint(n)
			val := logic.X
			if i < len(last) {
				val = last[i]
			}
			switch val {
			case logic.Zero:
				z |= rest
			case logic.One:
				o |= rest
			default:
				z |= rest
				o |= rest
			}
		}
		m.zero[in], m.one[in] = z, o
	}
	m.finishStep()
}

func (m *Machine) finishStep() {
	c := m.c
	if m.hasFaults {
		// Stem injection on primary inputs.
		for _, in := range c.Inputs {
			z, o := applyInj(m.zero[in], m.one[in], m.stemSA0[in], m.stemSA1[in])
			m.zero[in], m.one[in] = m.maybeTrans(in, z, o)
		}
		// Load flip-flop outputs with stem injection.
		for fi, ff := range c.FFs {
			z, o := applyInj(m.sz[fi], m.so[fi], m.stemSA0[ff.Q], m.stemSA1[ff.Q])
			m.zero[ff.Q], m.one[ff.Q] = m.maybeTrans(ff.Q, z, o)
		}
		m.evalFaulty()
		// Latch next state with D-pin injection.
		for fi, ff := range c.FFs {
			m.sz[fi], m.so[fi] = applyInj(m.zero[ff.D], m.one[ff.D], m.ffSA0[fi], m.ffSA1[fi])
		}
		return
	}
	for fi, ff := range c.FFs {
		m.zero[ff.Q], m.one[ff.Q] = m.sz[fi], m.so[fi]
	}
	m.evalClean()
	for fi, ff := range c.FFs {
		m.sz[fi], m.so[fi] = m.zero[ff.D], m.one[ff.D]
	}
}

// evalClean evaluates every gate with no fault masks (fast path).
func (m *Machine) evalClean() {
	zero, one := m.zero, m.one
	for _, gi := range m.c.Order {
		g := &m.c.Gates[gi]
		in0 := g.In[0]
		z, o := zero[in0], one[in0]
		switch g.Type {
		case netlist.BUF:
		case netlist.NOT:
			z, o = o, z
		case netlist.AND, netlist.NAND:
			for _, in := range g.In[1:] {
				z |= zero[in]
				o &= one[in]
			}
			if g.Type == netlist.NAND {
				z, o = o, z
			}
		case netlist.OR, netlist.NOR:
			for _, in := range g.In[1:] {
				o |= one[in]
				z &= zero[in]
			}
			if g.Type == netlist.NOR {
				z, o = o, z
			}
		case netlist.XOR, netlist.XNOR:
			for _, in := range g.In[1:] {
				bz, bo := zero[in], one[in]
				z, o = (z&bz)|(o&bo), (z&bo)|(o&bz)
			}
			if g.Type == netlist.XNOR {
				z, o = o, z
			}
		}
		zero[g.Out], one[g.Out] = z, o
	}
}

// evalFaulty evaluates every gate applying branch-pin and stem fault
// masks.
func (m *Machine) evalFaulty() {
	zero, one := m.zero, m.one
	for _, gi := range m.c.Order {
		g := &m.c.Gates[gi]
		base := m.pinBase[gi]
		z, o := m.readPin(g.In[0], base)
		switch g.Type {
		case netlist.BUF:
		case netlist.NOT:
			z, o = o, z
		case netlist.AND, netlist.NAND:
			for p := 1; p < len(g.In); p++ {
				bz, bo := m.readPin(g.In[p], base+int32(p))
				z |= bz
				o &= bo
			}
			if g.Type == netlist.NAND {
				z, o = o, z
			}
		case netlist.OR, netlist.NOR:
			for p := 1; p < len(g.In); p++ {
				bz, bo := m.readPin(g.In[p], base+int32(p))
				o |= bo
				z &= bz
			}
			if g.Type == netlist.NOR {
				z, o = o, z
			}
		case netlist.XOR, netlist.XNOR:
			for p := 1; p < len(g.In); p++ {
				bz, bo := m.readPin(g.In[p], base+int32(p))
				z, o = (z&bz)|(o&bo), (z&bo)|(o&bz)
			}
			if g.Type == netlist.XNOR {
				z, o = o, z
			}
		}
		z, o = applyInj(z, o, m.stemSA0[g.Out], m.stemSA1[g.Out])
		z, o = m.maybeTrans(g.Out, z, o)
		zero[g.Out], one[g.Out] = z, o
	}
}

func (m *Machine) readPin(s netlist.SignalID, pin int32) (z, o uint64) {
	return applyInj(m.zero[s], m.one[s], m.pinSA0[pin], m.pinSA1[pin])
}

// applyInj forces slots selected by sa0 to 0 and slots selected by sa1
// to 1.
func applyInj(z, o, sa0, sa1 uint64) (uint64, uint64) {
	z = (z &^ sa1) | sa0
	o = (o &^ sa0) | sa1
	return z, o
}

// broadcast expands one logic value into full planes.
func broadcast(v logic.Value) (z, o uint64) {
	switch v {
	case logic.Zero:
		return AllSlots, 0
	case logic.One:
		return 0, AllSlots
	default:
		return AllSlots, AllSlots
	}
}

// planesValue extracts the value of one slot bit from planes.
func planesValue(z, o, bit uint64) logic.Value {
	switch {
	case z&bit != 0 && o&bit != 0:
		return logic.X
	case o&bit != 0:
		return logic.One
	default:
		return logic.Zero
	}
}

// DetectMask returns, per slot, whether the faulty planes (fz, fo)
// definitely differ from the good planes (gz, go): both values binary
// and opposite.
func DetectMask(gz, gd, fz, fd uint64) uint64 {
	goodIs0 := gz &^ gd
	goodIs1 := gd &^ gz
	faultIs0 := fz &^ fd
	faultIs1 := fd &^ fz
	return (goodIs0 & faultIs1) | (goodIs1 & faultIs0)
}
