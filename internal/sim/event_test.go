package sim

import (
	"math/rand"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
)

// xSeq returns a random sequence over 0/1/X where each position is X
// with probability xProb (in percent).
func xSeq(rng *rand.Rand, n, width, xProb int) logic.Sequence {
	seq := make(logic.Sequence, n)
	for i := range seq {
		v := logic.NewVector(width)
		for j := range v {
			switch {
			case rng.Intn(100) < xProb:
				v[j] = logic.X
			case rng.Intn(2) == 0:
				v[j] = logic.Zero
			default:
				v[j] = logic.One
			}
		}
		seq[i] = v
	}
	return seq
}

// diffKernels runs seq × faults under both kernels at the given worker
// counts and fails the test on any DetectedAt mismatch. It returns the
// event kernel's result.
func diffKernels(t *testing.T, s *Simulator, seq logic.Sequence, faults []fault.Fault, opts Options, label string) Result {
	t.Helper()
	opts.Kernel = KernelFull
	ref := s.Run(seq, faults, opts)
	opts.Kernel = KernelEvent
	ev := s.Run(seq, faults, opts)
	for i := range faults {
		if ev.DetectedAt[i] != ref.DetectedAt[i] {
			t.Fatalf("%s: fault %d (%s): event=%d full=%d",
				label, i, faults[i].Name(s.Circuit()), ev.DetectedAt[i], ref.DetectedAt[i])
		}
	}
	return ev
}

// TestEventKernelDifferentialSynth: the event kernel must be
// bit-identical to the full-evaluation oracle over random circuits,
// X-laden random sequences, random initial states, and every worker
// count.
func TestEventKernelDifferentialSynth(t *testing.T) {
	params := []circuits.Params{
		{Name: "d1", Inputs: 4, FFs: 3, Gates: 20, Outputs: 3},
		{Name: "d2", Inputs: 6, FFs: 8, Gates: 60, Outputs: 4},
		{Name: "d3", Inputs: 3, FFs: 12, Gates: 90, Outputs: 2},
		{Name: "d4", Inputs: 8, FFs: 1, Gates: 35, Outputs: 6},
	}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for pi, p := range params {
		for trial := 0; trial < trials; trial++ {
			p.Seed = uint64(1000*pi + trial + 1)
			c, err := circuits.Synthesize(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(p.Seed) * 7919))
			faults := fault.Universe(c, trial%2 == 0)
			seq := xSeq(rng, 20+rng.Intn(40), c.NumInputs(), 10+10*(trial%4))
			opts := Options{}
			if trial%3 == 1 {
				init := make([]logic.Value, c.NumFFs())
				for i := range init {
					init[i] = logic.Value(rng.Intn(3))
				}
				opts.InitialState = init
			}
			for _, workers := range []int{1, 4} {
				s := NewSimulator(c, workers)
				diffKernels(t, s, seq, faults, opts, p.Name)
			}
		}
	}
}

// TestEventKernelDifferentialSubset: RunSubset must agree between
// kernels on random fault subsets.
func TestEventKernelDifferentialSubset(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := rand.New(rand.NewSource(42))
	s := NewSimulator(c, 2)
	buf := make([]fault.Fault, 0, Slots)
	out := make([]int, 0, Slots)
	for trial := 0; trial < 8; trial++ {
		seq := xSeq(rng, 30+rng.Intn(50), c.NumInputs(), 15)
		subset := rng.Perm(len(faults))[:1+rng.Intn(40)]
		ref := s.RunSubset(seq, faults, subset, Options{Kernel: KernelFull}, nil, nil)
		got := s.RunSubset(seq, faults, subset, Options{Kernel: KernelEvent}, buf, out)
		for i, fi := range subset {
			if got.DetectedAt[i] != ref.DetectedAt[i] {
				t.Fatalf("trial %d fault %d: event=%d full=%d",
					trial, fi, got.DetectedAt[i], ref.DetectedAt[i])
			}
		}
	}
}

// TestEventKernelDifferentialScan: on a scan-translated sequence —
// state load, functional vectors, flush — the kernels must agree, and
// the event kernel must actually fast-forward dead scan-shift cycles.
func TestEventKernelDifferentialScan(t *testing.T) {
	orig, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(orig)
	if err != nil {
		t.Fatal(err)
	}
	c := sc.Scan
	faults := fault.Universe(c, true)
	rng := rand.New(rand.NewSource(7))
	seq := make(logic.Sequence, 0, 6*(sc.NSV+2))
	for test := 0; test < 6; test++ {
		state := make([]logic.Value, sc.NSV)
		for i := range state {
			state[i] = logic.Value(rng.Intn(2))
		}
		load, err := sc.ScanInSequence(state)
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, load...)
		for f := 0; f < 2; f++ {
			orig := logic.NewVector(sc.Orig.NumInputs())
			for i := range orig {
				orig[i] = logic.Value(rng.Intn(2))
			}
			seq = append(seq, sc.FunctionalVector(orig))
		}
		seq = append(seq, sc.FlushVectors(0)...)
	}
	for _, workers := range []int{1, 3} {
		s := NewSimulator(c, workers)
		ev := diffKernels(t, s, seq, faults, Options{}, "s298_scan")
		if ev.BatchSteps+ev.FastForwarded > int64(len(seq))*int64((len(faults)+Slots-1)/Slots) {
			t.Errorf("accounting exceeds total batch-vectors: steps=%d ffwd=%d",
				ev.BatchSteps, ev.FastForwarded)
		}
	}
	// Dead-cycle skipping is the small-batch payoff (full 64-fault
	// batches hand off to the full sweep instead): simulate a handful of
	// faults at a time — the compaction trial shape — and require real
	// fast-forwarding on the shift-heavy sequence.
	s := NewSimulator(c, 1)
	rngSub := rand.New(rand.NewSource(19))
	var ffwd int64
	for trial := 0; trial < 8; trial++ {
		subset := rngSub.Perm(len(faults))[:4]
		ref := s.RunSubset(seq, faults, subset, Options{Kernel: KernelFull}, nil, nil)
		got := s.RunSubset(seq, faults, subset, Options{Kernel: KernelEvent}, nil, nil)
		for i, fi := range subset {
			if got.DetectedAt[i] != ref.DetectedAt[i] {
				t.Fatalf("subset trial %d fault %d: event=%d full=%d",
					trial, fi, got.DetectedAt[i], ref.DetectedAt[i])
			}
		}
		ffwd += got.FastForwarded
	}
	if ffwd == 0 {
		t.Error("event kernel fast-forwarded no cycle across small-batch scan runs")
	}
}

// TestEventKernelDeterministicCounts: BatchSteps and FastForwarded are
// part of the kernel contract — identical across worker counts.
func TestEventKernelDeterministicCounts(t *testing.T) {
	c, err := circuits.Load("s344")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	seq := randSeq(60, c.NumInputs(), 5)
	base := NewSimulator(c, 1).Run(seq, faults, Options{})
	for _, workers := range []int{2, 8} {
		r := NewSimulator(c, workers).Run(seq, faults, Options{})
		if r.BatchSteps != base.BatchSteps || r.FastForwarded != base.FastForwarded {
			t.Errorf("workers=%d: steps=%d ffwd=%d, want %d/%d",
				workers, r.BatchSteps, r.FastForwarded, base.BatchSteps, base.FastForwarded)
		}
		for i := range faults {
			if r.DetectedAt[i] != base.DetectedAt[i] {
				t.Fatalf("workers=%d fault %d: %d want %d", workers, i, r.DetectedAt[i], base.DetectedAt[i])
			}
		}
	}
}
