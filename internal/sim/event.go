// Event-driven fault-cone simulation kernel.
//
// The kernel exploits the single-fault-batch structure of Run: a batch
// of up to 64 stuck-at faults diverges from the fault-free circuit only
// inside the (sequentially closed) output cones of its injection sites.
// Instead of re-evaluating every gate every cycle, the kernel
//
//  1. reads the fault-free value of every signal from a compact image
//     the shared good trace caches once per vector,
//  2. re-evaluates only gates on a levelized dirty queue seeded from
//     active injection sites and diverged flip-flops — a gate is
//     enqueued only when a re-evaluated input's planes actually
//     changed, and
//  3. fast-forwards over "dead" cycles — when no flip-flop state
//     differs from the fault-free state and no injection site is
//     activated by the cycle's fault-free values, the whole cycle is
//     skipped with zero gate evaluations (the dominant case on
//     scan-shift-heavy C_scan sequences simulated a few faults at a
//     time, the shape of every compaction trial).
//
// Event evaluation costs more per gate than the straight-line full
// sweep (epoch checks, change detection, queue maintenance), so a batch
// whose dirty region persistently covers a large fraction of the
// circuit — typical for full 64-fault batches on chain-connected scan
// circuits — is handed off mid-sequence to the full-evaluation path
// (see the hand-off in runBatchEvent). The decision uses only per-batch
// deterministic state, so results and step accounting stay independent
// of worker count.
//
// Detection results are bit-identical to the full-evaluation oracle
// (Machine.evalFaulty): a gate not on the queue has all inputs equal to
// their fault-free values and no active injection, hence a fault-free
// output, by induction over the levelized evaluation order.
package sim

import (
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// eventScratch is the per-machine state of the event kernel, reused
// across batches and Run calls.
type eventScratch struct {
	// Per-cycle signal values: cz/co hold a signal's planes for the
	// current cycle — the faulty planes if the signal diverged, the
	// broadcast fault-free value otherwise — valid iff curEpoch matches
	// the cycle epoch. dirtyEpoch additionally marks divergence;
	// gateEpoch deduplicates queue insertions.
	cz, co     []uint64
	curEpoch   []int32
	dirtyEpoch []int32
	gateEpoch  []int32
	epoch      int32
	// buckets is the levelized dirty queue (indexed by gate level);
	// minLv/maxLv bound the occupied range of the current cycle.
	buckets      [][]int32
	minLv, maxLv int32

	// Per-batch structure, rebuilt by prepareEvent.
	reach     netlist.Reach
	sites     []netlist.SignalID // scratch: injection-site signals
	seedFFs   []int32            // scratch: FFs with D-pin faults
	stemIns   []netlist.SignalID // primary inputs carrying stem faults
	seedGates []int32            // gates with pin faults or output-stem faults
	latch     []int32            // FFs whose state can diverge (reach.FFs)
	inLatch   []bool             // membership in latch, for qOnly construction
	qOnly     []int32            // FFs with Q-stem faults outside latch
	act0      []netlist.SignalID // site signals of SA0 faults (active when value can be 1)
	act1      []netlist.SignalID // site signals of SA1 faults (active when value can be 0)
	act0Mask  []uint64           // slot masks parallel to act0
	act1Mask  []uint64           // slot masks parallel to act1

	// Current-cycle image (borrowed from the good trace).
	img  []uint64
	sigW int
	ffW  int
}

// evScratch returns the machine's event scratch, allocating it on first
// use.
func (m *Machine) evScratch() *eventScratch {
	if m.ev == nil {
		c := m.c
		maxLevel := int32(0)
		for _, l := range c.Level {
			if l > maxLevel {
				maxLevel = l
			}
		}
		m.ev = &eventScratch{
			cz:         make([]uint64, len(c.Signals)),
			co:         make([]uint64, len(c.Signals)),
			curEpoch:   make([]int32, len(c.Signals)),
			dirtyEpoch: make([]int32, len(c.Signals)),
			gateEpoch:  make([]int32, len(c.Gates)),
			buckets:    make([][]int32, maxLevel+1),
			inLatch:    make([]bool, len(c.FFs)),
		}
	}
	return m.ev
}

// prepareEvent derives the batch's static structure from the machine's
// injected faults: the sequential reach (which gates, flip-flops and
// primary outputs the batch can ever influence), the per-cycle seed
// lists, and the site-activity lists driving dead-cycle skipping. The
// machine's faults must have been injected in slot order (fault k in
// slot k), as runBatchEvent does.
func (m *Machine) prepareEvent() *eventScratch {
	ev := m.evScratch()
	c := m.c
	ev.sites = ev.sites[:0]
	ev.seedFFs = ev.seedFFs[:0]
	ev.stemIns = ev.stemIns[:0]
	ev.seedGates = ev.seedGates[:0]
	ev.qOnly = ev.qOnly[:0]
	ev.act0 = ev.act0[:0]
	ev.act1 = ev.act1[:0]
	ev.act0Mask = ev.act0Mask[:0]
	ev.act1Mask = ev.act1Mask[:0]
	for k, f := range m.injected {
		site := f.Site
		ev.sites = append(ev.sites, site.Signal)
		if f.SA == logic.Zero {
			ev.act0 = append(ev.act0, site.Signal)
			ev.act0Mask = append(ev.act0Mask, uint64(1)<<uint(k))
		} else {
			ev.act1 = append(ev.act1, site.Signal)
			ev.act1Mask = append(ev.act1Mask, uint64(1)<<uint(k))
		}
		switch {
		case site.FF >= 0:
			ev.seedFFs = append(ev.seedFFs, site.FF)
		case !site.IsStem():
			ev.seedGates = append(ev.seedGates, site.Gate)
		default:
			switch c.Signals[site.Signal].Kind {
			case netlist.KindInput:
				ev.stemIns = append(ev.stemIns, site.Signal)
			case netlist.KindGate:
				ev.seedGates = append(ev.seedGates, c.Signals[site.Signal].Driver)
			}
			// KindFF stems are handled through latch/qOnly below.
		}
	}
	c.SequentialReach(ev.sites, ev.seedFFs, &ev.reach)
	ev.latch = ev.reach.FFs
	for _, fi := range ev.latch {
		ev.inLatch[fi] = true
	}
	// Flip-flops whose Q carries a stem fault but whose state cannot
	// diverge: their faulty Q is the injected fault-free state.
	for _, f := range m.injected {
		site := f.Site
		if site.IsStem() && c.Signals[site.Signal].Kind == netlist.KindFF {
			fi := c.Signals[site.Signal].Driver
			if !ev.inLatch[fi] {
				ev.inLatch[fi] = true // also dedupes repeated Q faults
				ev.qOnly = append(ev.qOnly, fi)
			}
		}
	}
	for _, fi := range ev.latch {
		ev.inLatch[fi] = false
	}
	for _, fi := range ev.qOnly {
		ev.inLatch[fi] = false
	}
	return ev
}

// imgPlanes expands the image's two bits for signal s into broadcast
// planes (every slot carries the fault-free value).
func (ev *eventScratch) imgPlanes(s netlist.SignalID) (z, o uint64) {
	w, b := int(s)>>6, uint(s)&63
	z = -(ev.img[w] >> b & 1)
	o = -(ev.img[ev.sigW+w] >> b & 1)
	return z, o
}

// imgFFPlanes expands the image's post-vector state bits for flip-flop
// fi into broadcast planes.
func (ev *eventScratch) imgFFPlanes(fi int32) (z, o uint64) {
	base := 2 * ev.sigW
	w, b := int(fi)>>6, uint(fi)&63
	z = -(ev.img[base+w] >> b & 1)
	o = -(ev.img[base+ev.ffW+w] >> b & 1)
	return z, o
}

// anyActive reports whether any injection site of a still-undetected
// fault (care has its slot bit set) is activated by the cycle's
// fault-free values: a stuck-at-0 site whose value can be 1, or a
// stuck-at-1 site whose value can be 0 (X counts as both — forcing a
// binary value onto an X plane changes it). Sites of already-detected
// faults are ignored: their slots never produce another reportable
// detection, so letting their values drift from the true faulty values
// is harmless (all plane operations are per-slot independent).
func (ev *eventScratch) anyActive(img []uint64, sigW int, care uint64) bool {
	for i, s := range ev.act0 {
		if ev.act0Mask[i]&care != 0 && img[sigW+int(s)>>6]>>(uint(s)&63)&1 != 0 {
			return true
		}
	}
	for i, s := range ev.act1 {
		if ev.act1Mask[i]&care != 0 && img[int(s)>>6]>>(uint(s)&63)&1 != 0 {
			return true
		}
	}
	return false
}

// evEnqueue puts gate gi on the current cycle's dirty queue once.
func (m *Machine) evEnqueue(gi int32) {
	ev := m.ev
	if ev.gateEpoch[gi] == ev.epoch {
		return
	}
	ev.gateEpoch[gi] = ev.epoch
	lv := m.c.Level[gi]
	ev.buckets[lv] = append(ev.buckets[lv], gi)
	if lv < ev.minLv {
		ev.minLv = lv
	}
	if lv > ev.maxLv {
		ev.maxLv = lv
	}
}

// evDirty records signal s as diverged from the fault-free image this
// cycle and enqueues its fanout gates.
func (m *Machine) evDirty(s netlist.SignalID, z, o uint64) {
	ev := m.ev
	ev.cz[s], ev.co[s] = z, o
	ev.curEpoch[s] = ev.epoch
	ev.dirtyEpoch[s] = ev.epoch
	for _, gi := range m.c.FanoutGates(s) {
		m.evEnqueue(gi)
	}
}

// evRead returns the planes of signal s this cycle: the diverged planes
// if s is dirty, the broadcast fault-free value otherwise. The
// extracted value is cached in cz/co so repeated readers pay one load.
func (m *Machine) evRead(s netlist.SignalID) (z, o uint64) {
	ev := m.ev
	if ev.curEpoch[s] == ev.epoch {
		return ev.cz[s], ev.co[s]
	}
	z, o = ev.imgPlanes(s)
	ev.cz[s], ev.co[s] = z, o
	ev.curEpoch[s] = ev.epoch
	return z, o
}

// evReadPin is evRead plus the pin's stuck-at injection masks.
func (m *Machine) evReadPin(s netlist.SignalID, pin int32) (z, o uint64) {
	z, o = m.evRead(s)
	return applyInj(z, o, m.pinSA0[pin], m.pinSA1[pin])
}

// eventCycle simulates one vector of the batch against the fault-free
// image img (the image of that same vector): seeds the dirty queue from
// injection sites and diverged flip-flops, drains it in level order,
// latches the next faulty state, and reports whether any flip-flop's
// next state diverges from the fault-free next state in a slot of care
// (the still-undetected faults), plus how many gates were re-evaluated.
// On return, dirty primary outputs are identified by dirtyEpoch stamps
// (see detection in runBatchEvent).
func (m *Machine) eventCycle(img []uint64, sigW, ffW int, care uint64) (diverged bool, drained int) {
	ev := m.ev
	c := m.c
	if ev.epoch == 1<<31-1 {
		// Epoch wrap (practically unreachable): invalidate all stamps.
		for i := range ev.curEpoch {
			ev.curEpoch[i] = 0
			ev.dirtyEpoch[i] = 0
		}
		for i := range ev.gateEpoch {
			ev.gateEpoch[i] = 0
		}
		ev.epoch = 0
	}
	ev.epoch++
	ev.img, ev.sigW, ev.ffW = img, sigW, ffW
	ev.minLv = int32(len(ev.buckets))
	ev.maxLv = 0

	// Seed 1: primary inputs carrying stem faults.
	for _, in := range ev.stemIns {
		gz, gd := ev.imgPlanes(in)
		z, o := applyInj(gz, gd, m.stemSA0[in], m.stemSA1[in])
		if z != gz || o != gd {
			m.evDirty(in, z, o)
		}
	}
	// Seed 2: flip-flop outputs — diverged state and/or Q stem faults.
	for _, fi := range ev.latch {
		q := c.FFs[fi].Q
		z, o := applyInj(m.sz[fi], m.so[fi], m.stemSA0[q], m.stemSA1[q])
		gz, gd := ev.imgPlanes(q)
		if z != gz || o != gd {
			m.evDirty(q, z, o)
		}
	}
	for _, fi := range ev.qOnly {
		q := c.FFs[fi].Q
		gz, gd := ev.imgPlanes(q)
		z, o := applyInj(gz, gd, m.stemSA0[q], m.stemSA1[q])
		if z != gz || o != gd {
			m.evDirty(q, z, o)
		}
	}
	// Seed 3: gates carrying pin faults or output-stem faults.
	for _, gi := range ev.seedGates {
		m.evEnqueue(gi)
	}

	// Drain the queue in level order; enqueues always target strictly
	// higher levels, so each bucket is complete when reached.
	for lv := ev.minLv; lv <= ev.maxLv; lv++ {
		bucket := ev.buckets[lv]
		ev.buckets[lv] = bucket[:0]
		drained += len(bucket)
		for _, gi := range bucket {
			g := &c.Gates[gi]
			base := m.pinBase[gi]
			z, o := m.evReadPin(g.In[0], base)
			switch g.Type {
			case netlist.BUF:
			case netlist.NOT:
				z, o = o, z
			case netlist.AND, netlist.NAND:
				for p := 1; p < len(g.In); p++ {
					bz, bo := m.evReadPin(g.In[p], base+int32(p))
					z |= bz
					o &= bo
				}
				if g.Type == netlist.NAND {
					z, o = o, z
				}
			case netlist.OR, netlist.NOR:
				for p := 1; p < len(g.In); p++ {
					bz, bo := m.evReadPin(g.In[p], base+int32(p))
					o |= bo
					z &= bz
				}
				if g.Type == netlist.NOR {
					z, o = o, z
				}
			case netlist.XOR, netlist.XNOR:
				for p := 1; p < len(g.In); p++ {
					bz, bo := m.evReadPin(g.In[p], base+int32(p))
					z, o = (z&bz)|(o&bo), (z&bo)|(o&bz)
				}
				if g.Type == netlist.XNOR {
					z, o = o, z
				}
			}
			z, o = applyInj(z, o, m.stemSA0[g.Out], m.stemSA1[g.Out])
			gz, gd := ev.imgPlanes(g.Out)
			if z != gz || o != gd {
				m.evDirty(g.Out, z, o)
			} else {
				// Cache the (fault-free) result so downstream readers
				// skip the image extraction.
				ev.cz[g.Out], ev.co[g.Out] = z, o
				ev.curEpoch[g.Out] = ev.epoch
			}
		}
	}

	// Latch the next faulty state of every reachable flip-flop and
	// compare against the fault-free next state.
	for _, fi := range ev.latch {
		z, o := m.evRead(c.FFs[fi].D)
		z, o = applyInj(z, o, m.ffSA0[fi], m.ffSA1[fi])
		m.sz[fi], m.so[fi] = z, o
		gz, gd := ev.imgFFPlanes(fi)
		if ((z^gz)|(o^gd))&care != 0 {
			diverged = true
		}
	}
	return diverged, drained
}

// Handoff economics: a full-evaluation cycle costs ~nGates gate
// evaluations and cannot skip; an event cycle costs ~drained gate
// evaluations at eventGateCost× the per-gate price (epoch checks,
// change detection, queue maintenance) and skipped cycles are free. The
// batch is handed to the full path once
//
//	drainedSum · eventGateCost  >  nGates · (steps + skipped)
//
// i.e. once the event kernel has spent more than the full sweep would
// have over the same elapsed cycles (after eventHandoffWarmup executed
// cycles). Heavy skippers — the compaction trial shape — grow the
// right-hand side for free and stay on the event path; wide 64-fault
// batches on chain-connected scan circuits trip the trigger at warmup.
// eventGateCost is the empirical per-gate price ratio (×2 over the
// measured ~2 to bias toward the deterministic sweep near break-even).
const (
	eventGateCost      = 5 // numerator ×2: ratio ≈ 2.5
	eventGateCostHalf  = 2 // denominator ×2
	eventHandoffWarmup = 4
)

// runBatchEvent simulates the 64-fault batch starting at fault index
// start through seq with the event-driven kernel, recording first
// detections into out. It returns the number of batch steps actually
// evaluated and the number of dead cycles fast-forwarded. Detection
// results are bit-identical to runBatch's full-evaluation path; batches
// whose dirty region persistently covers a large fraction of the
// circuit are handed off to that path mid-sequence.
func (s *Simulator) runBatchEvent(m *Machine, tr *goodTrace, seq logic.Sequence, faults []fault.Fault, start int, opts Options, out []int) (steps, skipped int64) {
	c := s.c
	end := start + Slots
	if end > len(faults) {
		end = len(faults)
	}
	n := end - start
	m.ClearFaults()
	m.Reset()
	if opts.InitialState != nil {
		m.SetStateBroadcast(opts.InitialState)
	}
	for k, f := range faults[start:end] {
		// Injection errors indicate a site inconsistent with the
		// circuit; Universe never produces one.
		if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
			panic(err)
		}
	}
	ev := m.prepareEvent()
	sigW, ffW := tr.sigW, tr.ffW
	allMask := AllSlots
	if n < Slots {
		allMask = (uint64(1) << uint(n)) - 1
	}
	var detected uint64
	var drainedSum int64
	// clean: the faulty flip-flop state equals the fault-free state in
	// every still-undetected slot. Detected slots are written off — see
	// anyActive.
	clean := true
	stale := false
	for t := 0; t < len(seq); t++ {
		img := tr.image(t)
		if clean && !ev.anyActive(img, sigW, allMask&^detected) {
			// Fault effect dead and no site activated: the faulty
			// circuit tracks the fault-free one through this whole
			// cycle. Skip it without evaluating a single gate.
			skipped++
			stale = true
			continue
		}
		if stale {
			// Rematerialize the latched state from the fault-free
			// image of the previous vector (equal by cleanliness).
			prev := tr.image(t - 1)
			base := 2 * sigW
			for _, fi := range ev.latch {
				w, b := int(fi)>>6, uint(fi)&63
				m.sz[fi] = -(prev[base+w] >> b & 1)
				m.so[fi] = -(prev[base+ffW+w] >> b & 1)
			}
			stale = false
		}
		diverged, drained := m.eventCycle(img, sigW, ffW, allMask&^detected)
		clean = !diverged
		steps++
		drainedSum += int64(drained)
		var newly uint64
		for _, oi := range ev.reach.POs {
			sid := c.Outputs[oi]
			if ev.dirtyEpoch[sid] != ev.epoch {
				continue // primary output tracks the fault-free value
			}
			gz, gd := ev.imgPlanes(sid)
			newly |= DetectMask(gz, gd, ev.cz[sid], ev.co[sid])
		}
		newly &= allMask &^ detected
		if newly != 0 {
			detected |= newly
			for k := 0; k < n; k++ {
				if newly&(uint64(1)<<uint(k)) != 0 {
					out[start+k] = t
				}
			}
			if detected == allMask {
				break
			}
		}
		// Wide batch: the dirty region persistently covers a large
		// fraction of the circuit (typical for full 64-fault batches on
		// chain-connected scan circuits), so queue maintenance costs
		// more than it saves. Hand the rest of the sequence to the
		// full-evaluation sweep. The trigger depends only on per-batch
		// state, keeping results and accounting worker-independent.
		if steps >= eventHandoffWarmup &&
			drainedSum*eventGateCost > int64(len(c.Gates))*(steps+skipped)*eventGateCostHalf {
			// Event cycles maintain only the reachable flip-flops'
			// state; the rest tracks the fault-free machine, whose
			// post-vector state the image carries.
			m.materializeState(img, sigW, ffW)
			fullSteps := s.runFullTail(m, tr, seq, t+1, n, start, detected, out)
			return steps + fullSteps, skipped
		}
	}
	return steps, skipped
}

// materializeState fills the state planes of every flip-flop the event
// kernel did not maintain (those outside the batch's reach) from the
// image's post-vector state, producing a state consistent with full
// evaluation.
func (m *Machine) materializeState(img []uint64, sigW, ffW int) {
	ev := m.ev
	for _, fi := range ev.latch {
		ev.inLatch[fi] = true
	}
	base := 2 * sigW
	for fi := range m.sz {
		if ev.inLatch[fi] {
			continue
		}
		w, b := fi>>6, uint(fi)&63
		m.sz[fi] = -(img[base+w] >> b & 1)
		m.so[fi] = -(img[base+ffW+w] >> b & 1)
	}
	for _, fi := range ev.latch {
		ev.inLatch[fi] = false
	}
}
