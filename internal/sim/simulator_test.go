package sim

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
)

func randSeq(n, width int, seed uint64) logic.Sequence {
	rng := logic.NewRandFiller(seed)
	seq := make(logic.Sequence, n)
	for i := range seq {
		v := make(logic.Vector, width)
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	return seq
}

// TestSimulatorDeterminism: DetectedAt and BatchSteps must be identical
// for every worker count, and identical to the package-level serial Run.
func TestSimulatorDeterminism(t *testing.T) {
	for _, name := range []string{"s27", "s298", "s953"} {
		t.Run(name, func(t *testing.T) {
			c, err := circuits.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.Universe(c, true)
			seq := randSeq(120, c.NumInputs(), 5)

			ref := Run(c, seq, faults, Options{})
			for _, workers := range []int{1, 2, 8} {
				got := NewSimulator(c, workers).Run(seq, faults, Options{})
				if got.BatchSteps != ref.BatchSteps {
					t.Errorf("workers=%d: BatchSteps %d, want %d", workers, got.BatchSteps, ref.BatchSteps)
				}
				for i := range faults {
					if got.DetectedAt[i] != ref.DetectedAt[i] {
						t.Fatalf("workers=%d: fault %d detected at %d, want %d",
							workers, i, got.DetectedAt[i], ref.DetectedAt[i])
					}
				}
			}
		})
	}
}

// TestSimulatorPoolReuse: a machine released with injected faults and
// advanced state must come back from Acquire indistinguishable from a
// fresh New.
func TestSimulatorPoolReuse(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	s := NewSimulator(c, 1)

	m := s.Acquire()
	if err := m.InjectFault(faults[0], 1); err != nil {
		t.Fatal(err)
	}
	for _, v := range randSeq(10, c.NumInputs(), 3) {
		m.Step(v)
	}
	s.Release(m)

	m2 := s.Acquire()
	if m2.hasFaults {
		t.Error("pooled machine still has faults after Acquire")
	}
	for fi, v := range m2.StateSlot(0) {
		if v != logic.X {
			t.Errorf("pooled machine flip-flop %d is %v after Acquire, want X", fi, v)
		}
	}
	s.Release(m2)

	// A pooled-machine Run must equal a fresh-machine Run.
	seq := randSeq(60, c.NumInputs(), 9)
	ref := Run(c, seq, faults, Options{})
	got := s.Run(seq, faults, Options{})
	for i := range faults {
		if got.DetectedAt[i] != ref.DetectedAt[i] {
			t.Fatalf("fault %d detected at %d after pool reuse, want %d",
				i, got.DetectedAt[i], ref.DetectedAt[i])
		}
	}
}

// TestRunSubsetReuse: caller-provided scratch buffers must not change
// results, and a reused out slice must be resized to the subset.
func TestRunSubsetReuse(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	seq := randSeq(80, c.NumInputs(), 13)
	s := NewSimulator(c, 2)

	subset1 := []int{0, 5, 9, 70, len(faults) - 1}
	subset2 := []int{1, 2}

	fresh1 := s.RunSubset(seq, faults, subset1, Options{}, nil, nil)
	fresh2 := s.RunSubset(seq, faults, subset2, Options{}, nil, nil)

	buf := make([]fault.Fault, 0, Slots)
	out := make([]int, 0, Slots)
	got1 := s.RunSubset(seq, faults, subset1, Options{}, buf, out)
	if len(got1.DetectedAt) != len(subset1) {
		t.Fatalf("reused-buffer result has %d entries, want %d", len(got1.DetectedAt), len(subset1))
	}
	for i, at := range fresh1.DetectedAt {
		if got1.DetectedAt[i] != at {
			t.Errorf("fault %d: reused-buffer result %d, want %d", subset1[i], got1.DetectedAt[i], at)
		}
	}
	// Second call with the same out slice must resize to the new subset.
	got2 := s.RunSubset(seq, faults, subset2, Options{}, buf, got1.DetectedAt)
	if len(got2.DetectedAt) != len(subset2) {
		t.Fatalf("second reuse has %d entries, want %d (stale entries not truncated?)", len(got2.DetectedAt), len(subset2))
	}
	for i, at := range fresh2.DetectedAt {
		if got2.DetectedAt[i] != at {
			t.Errorf("fault %d: second reuse result %d, want %d", subset2[i], got2.DetectedAt[i], at)
		}
	}
}
