package sim

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
)

// TestStateImageRoundTrip: capturing a slot-uniform machine state as a
// StateImage and broadcasting it back must reproduce the planes
// verbatim, and StateEqualsImage must certify exactly that.
func TestStateImageRoundTrip(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	m := New(c)
	for _, v := range randSeq(37, c.NumInputs(), 11) {
		m.Step(v)
	}
	img := m.StateImage()
	if !m.StateEqualsImage(img) {
		t.Fatal("machine does not equal its own image")
	}
	want := m.SaveState()
	m2 := New(c)
	m2.SetStateImage(img)
	got := m2.SaveState()
	for fi := range want.sz {
		if want.sz[fi] != got.sz[fi] || want.so[fi] != got.so[fi] {
			t.Fatalf("FF %d: planes (%x,%x), want (%x,%x)",
				fi, got.sz[fi], got.so[fi], want.sz[fi], want.so[fi])
		}
	}
	// A diverged state must not compare equal: flip one slot bit.
	if len(want.sz) > 0 {
		m.sz[0] ^= 2
		if m.StateEqualsImage(img) {
			t.Fatal("diverged machine still equals image")
		}
	}
}

// TestTracePrefixReuse: a Run whose sequence shares a prefix with the
// previously cached trace must produce results identical to a cold
// simulator, and the reuse counters must record the seeding.
func TestTracePrefixReuse(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	base := randSeq(200, c.NumInputs(), 3)

	s := NewSimulator(c, 2)
	reg := obs.NewRegistry()
	s.Observe(reg)
	s.Run(base, faults, Options{})

	// Trial shapes compaction produces: drop a middle window, drop a
	// suffix, replace a suffix, extend past the old length.
	trials := []logic.Sequence{
		append(append(logic.Sequence{}, base[:80]...), base[100:]...),
		base[:150],
		append(append(logic.Sequence{}, base[:120]...), randSeq(30, c.NumInputs(), 9)...),
		append(append(logic.Sequence{}, base...), randSeq(25, c.NumInputs(), 10)...),
	}
	for i, seq := range trials {
		got := s.Run(seq, faults, Options{})
		want := NewSimulator(c, 1).Run(seq, faults, Options{})
		for fi := range faults {
			if got.DetectedAt[fi] != want.DetectedAt[fi] {
				t.Fatalf("trial %d fault %d: detected at %d, want %d",
					i, fi, got.DetectedAt[fi], want.DetectedAt[fi])
			}
		}
		if got.BatchSteps != want.BatchSteps {
			t.Fatalf("trial %d: BatchSteps %d, want %d", i, got.BatchSteps, want.BatchSteps)
		}
	}
	snap := reg.Snapshot()
	if hits := snap.Counters["sim.trace_prefix_hits"]; hits < int64(len(trials)) {
		t.Fatalf("trace_prefix_hits = %d, want >= %d", hits, len(trials))
	}
	if steps := snap.Counters["sim.trace_prefix_steps"]; steps < 80 {
		t.Fatalf("trace_prefix_steps = %d, want >= 80", steps)
	}
}

// TestTracePrefixReuseInitialState: prefix seeding must refuse to cross
// differing initial states.
func TestTracePrefixReuseInitialState(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	seq := randSeq(60, c.NumInputs(), 7)
	st := make([]logic.Value, c.NumFFs())
	for i := range st {
		st[i] = logic.Zero
	}

	s := NewSimulator(c, 1)
	s.Run(seq, faults, Options{})
	got := s.Run(seq[:40], faults, Options{InitialState: st})
	want := NewSimulator(c, 1).Run(seq[:40], faults, Options{InitialState: st})
	for fi := range faults {
		if got.DetectedAt[fi] != want.DetectedAt[fi] {
			t.Fatalf("fault %d: detected at %d, want %d", fi, got.DetectedAt[fi], want.DetectedAt[fi])
		}
	}
}
