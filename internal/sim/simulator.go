package sim

import (
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// Simulator owns a pool of reusable Machines for one circuit and fans
// fault batches out across worker goroutines. Test compaction issues
// millions of Run calls; reusing one Simulator across a whole
// compaction loop replaces per-call machine allocation with pool
// checkouts, and multi-batch runs spread across cores.
//
// Results are bit-identical to serial simulation: every fault batch is
// independent given the fault-free output trace, so worker count and
// scheduling change wall-clock time only, never DetectedAt. A Simulator
// is safe for concurrent use by multiple goroutines.
type Simulator struct {
	c       *netlist.Circuit
	workers int
	pool    sync.Pool

	// Fault-free trace cache: compaction trial loops re-simulate the
	// same sequence (by vector identity) against different fault
	// subsets, and rebuilding the trace dominated those runs. The most
	// recent trace is kept (with its machine checked out) and reused
	// when the next Run's sequence and initial state match. Guarded by
	// trMu; refs/cached on goodTrace track in-flight users so a
	// replaced trace's machine is released only by its last user.
	trMu   sync.Mutex
	cached *goodTrace

	// Observability instruments, resolved once by Observe. All are
	// nil-safe, so the default (unobserved) simulator pays one nil
	// check per update — never per gate or per vector. Pool and trace
	// counters are scheduling-dependent under concurrency; the
	// batch-step and fast-forward counters are deterministic.
	cRuns, cBatches, cSteps, cFastFwd  *obs.Counter
	cPoolHit, cPoolMiss                *obs.Counter
	cTraceHit, cTraceMiss              *obs.Counter
	cTracePrefixHit, cTracePrefixSteps *obs.Counter
}

// NewSimulator returns a Simulator for circuit c running fault batches
// on up to workers goroutines. workers <= 0 is clamped to
// runtime.GOMAXPROCS(0), so any non-positive value means "all cores";
// results are identical for every worker count. A nil circuit panics
// here with a clear message instead of failing later inside Acquire.
func NewSimulator(c *netlist.Circuit, workers int) *Simulator {
	if c == nil {
		panic("sim: NewSimulator called with nil circuit")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Simulator{c: c, workers: workers}
}

// Circuit returns the circuit this Simulator simulates.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Observe attaches an observer under the "sim" phase: machine-pool
// hits/misses, trace-cache hits/misses, runs, batches, batch steps and
// fast-forwarded cycles. Pass nil to detach. Attach before issuing
// Runs; the method is not synchronized with in-flight calls.
func (s *Simulator) Observe(o obs.Observer) {
	s.cRuns = obs.C(o, "sim.runs")
	s.cBatches = obs.C(o, "sim.batches")
	s.cSteps = obs.C(o, "sim.batch_steps")
	s.cFastFwd = obs.C(o, "sim.fastforwarded")
	s.cPoolHit = obs.C(o, "sim.pool_hits")
	s.cPoolMiss = obs.C(o, "sim.pool_misses")
	s.cTraceHit = obs.C(o, "sim.trace_hits")
	s.cTraceMiss = obs.C(o, "sim.trace_misses")
	s.cTracePrefixHit = obs.C(o, "sim.trace_prefix_hits")
	s.cTracePrefixSteps = obs.C(o, "sim.trace_prefix_steps")
}

// Workers returns the configured worker count.
func (s *Simulator) Workers() int { return s.workers }

// Acquire checks a Machine out of the pool, cleared of faults and with
// every flip-flop reset to X — indistinguishable from a fresh New.
// Return it with Release when done.
func (s *Simulator) Acquire() *Machine {
	if v := s.pool.Get(); v != nil {
		s.cPoolHit.Inc()
		m := v.(*Machine)
		m.ClearFaults()
		m.Reset()
		return m
	}
	s.cPoolMiss.Inc()
	return New(s.c)
}

// Release returns a Machine obtained from Acquire to the pool.
func (s *Simulator) Release(m *Machine) { s.pool.Put(m) }

// goodTrace computes the fault-free trace of a sequence lazily and
// shares it between batch workers: vector t is produced at most once,
// under the mutex, and published through the atomic counter so warm
// reads take no lock. Lazy extension preserves the serial path's early
// exit — the good machine advances only as far as the slowest batch
// actually needs.
//
// Besides the primary-output rows the full-evaluation kernel compares
// against, the trace (for the event kernel) caches a compact image of
// every vector: two bits per signal (can-be-0, can-be-1) plus two bits
// per flip-flop of the state reached after the vector. The good
// machine's planes are uniform across all 64 slots — no faults, inputs
// broadcast — so slot 0 carries the whole picture and the image costs
// 2·ceil(nSig/64)+2·ceil(nFF/64) words per vector. Image layout:
// [sigZero | sigOne | ffZero | ffOne].
type goodTrace struct {
	seq      logic.Sequence
	m        *Machine
	nPO      int
	mu       sync.Mutex
	produced atomic.Int64
	rows     [][]logic.Value

	withImages bool
	sigW, ffW  int
	imgs       [][]uint64

	// Cache bookkeeping, guarded by the owning Simulator's trMu.
	initState []logic.Value // copy of the creating Run's InitialState
	refs      int           // in-flight Run calls using this trace
	cached    bool          // still the Simulator's cached trace
}

func (s *Simulator) newTrace(seq logic.Sequence, opts Options) *goodTrace {
	tr := &goodTrace{
		// The header array is copied so the cached trace's key cannot
		// alias a caller's reused sequence buffer (compaction builds
		// trial sequences into one scratch slice); the vectors
		// themselves are shared.
		seq:  append(logic.Sequence(nil), seq...),
		m:    s.Acquire(),
		nPO:  s.c.NumOutputs(),
		rows: make([][]logic.Value, len(seq)),
	}
	if opts.Kernel != KernelFull {
		tr.withImages = true
		tr.sigW = (len(s.c.Signals) + 63) / 64
		tr.ffW = (len(s.c.FFs) + 63) / 64
		tr.imgs = make([][]uint64, len(seq))
	}
	if opts.InitialState != nil {
		tr.m.SetStateBroadcast(opts.InitialState)
		tr.initState = append([]logic.Value(nil), opts.InitialState...)
	}
	s.seedTracePrefix(tr)
	return tr
}

// seedTracePrefix warm-starts a fresh trace from the trace it replaces:
// compaction trials rebuild sequences that differ from the previous one
// in a single vector or window, so the evicted trace's rows and images
// up to the first differing vector are this trace's prefix verbatim.
// The shared rows/images are immutable once produced, and the good
// machine restarts from the flip-flop state the last shared image
// carries, so producing vector p next is indistinguishable from having
// stepped 0..p-1. Called (from newTrace) under trMu; the old trace may
// be mid-extension on another goroutine, so its produced counter is
// read once and only fully-published vectors are shared.
func (s *Simulator) seedTracePrefix(tr *goodTrace) {
	old := s.cached
	if old == nil || !old.withImages || !tr.withImages {
		return
	}
	if len(old.initState) != len(tr.initState) {
		return
	}
	for i, v := range tr.initState {
		if old.initState[i] != v {
			return
		}
	}
	limit := int(old.produced.Load())
	if limit > len(tr.seq) {
		limit = len(tr.seq)
	}
	p := 0
	for p < limit {
		a, b := tr.seq[p], old.seq[p]
		if len(a) != len(b) || (len(a) != 0 && &a[0] != &b[0]) {
			break
		}
		p++
	}
	if p == 0 {
		return
	}
	copy(tr.rows[:p], old.rows[:p])
	copy(tr.imgs[:p], old.imgs[:p])
	tr.m.setStateFromTraceImage(old.imgs[p-1], tr.sigW, tr.ffW)
	tr.produced.Store(int64(p))
	s.cTracePrefixHit.Inc()
	s.cTracePrefixSteps.Add(int64(p))
}

// matches reports whether this trace serves a Run of seq with opts. The
// sequence is compared by per-vector slice identity (same backing
// array, same length) — Run's documented assumption that callers do not
// mutate vectors in place makes identity imply equality, and compaction
// trial loops pass the same vector slices over and over.
func (tr *goodTrace) matches(seq logic.Sequence, opts Options) bool {
	if opts.Kernel != KernelFull && !tr.withImages {
		return false
	}
	if len(seq) != len(tr.seq) {
		return false
	}
	for t := range seq {
		if len(seq[t]) != len(tr.seq[t]) {
			return false
		}
		if len(seq[t]) != 0 && &seq[t][0] != &tr.seq[t][0] {
			return false
		}
	}
	if len(opts.InitialState) != len(tr.initState) {
		return false
	}
	for i, v := range opts.InitialState {
		if v != tr.initState[i] {
			return false
		}
	}
	return true
}

// acquireTrace returns a trace for seq/opts, reusing the cached one when
// it matches and replacing it otherwise. Pair with releaseTrace.
func (s *Simulator) acquireTrace(seq logic.Sequence, opts Options) *goodTrace {
	s.trMu.Lock()
	defer s.trMu.Unlock()
	if c := s.cached; c != nil && c.matches(seq, opts) {
		s.cTraceHit.Inc()
		c.refs++
		return c
	}
	s.cTraceMiss.Inc()
	tr := s.newTrace(seq, opts)
	tr.refs = 1
	tr.cached = true
	if old := s.cached; old != nil {
		old.cached = false
		if old.refs == 0 {
			s.Release(old.m)
		}
	}
	s.cached = tr
	return tr
}

// releaseTrace drops one reference; an evicted trace's machine returns
// to the pool with the last reference. The cached trace keeps its
// machine checked out so the next matching Run continues where the
// trace left off.
func (s *Simulator) releaseTrace(tr *goodTrace) {
	s.trMu.Lock()
	defer s.trMu.Unlock()
	tr.refs--
	if tr.refs == 0 && !tr.cached {
		s.Release(tr.m)
	}
}

// ensure advances the shared good machine through vector t, capturing
// output rows (and, for the event kernel, compact images) of every
// produced vector.
func (tr *goodTrace) ensure(t int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for p := int(tr.produced.Load()); p <= t; p++ {
		tr.m.Step(tr.seq[p])
		row := make([]logic.Value, tr.nPO)
		for po := range row {
			row[po] = tr.m.OutputSlot(po, 0)
		}
		tr.rows[p] = row
		if tr.withImages {
			tr.imgs[p] = tr.captureImage()
		}
		tr.produced.Store(int64(p + 1))
	}
}

// captureImage compresses slot 0 of the good machine's planes into a
// per-vector image (see goodTrace).
func (tr *goodTrace) captureImage() []uint64 {
	m := tr.m
	img := make([]uint64, 2*tr.sigW+2*tr.ffW)
	for s := range m.zero {
		w, b := s>>6, uint(s)&63
		img[w] |= (m.zero[s] & 1) << b
		img[tr.sigW+w] |= (m.one[s] & 1) << b
	}
	base := 2 * tr.sigW
	for fi := range m.sz {
		w, b := fi>>6, uint(fi)&63
		img[base+w] |= (m.sz[fi] & 1) << b
		img[base+tr.ffW+w] |= (m.so[fi] & 1) << b
	}
	return img
}

// row returns the fault-free output values at vector t, extending the
// trace if needed.
func (tr *goodTrace) row(t int) []logic.Value {
	if int64(t) >= tr.produced.Load() {
		tr.ensure(t)
	}
	return tr.rows[t]
}

// image returns the compact fault-free image of vector t, extending the
// trace if needed. Only valid on traces built for the event kernel.
func (tr *goodTrace) image(t int) []uint64 {
	if int64(t) >= tr.produced.Load() {
		tr.ensure(t)
	}
	return tr.imgs[t]
}

// Run fault-simulates seq against faults exactly like the package-level
// Run, using the machine pool and up to Workers() goroutines (one fault
// batch of 64 at a time per worker). Detection results and BatchSteps
// are identical for every worker count.
//
// The fault-free trace of seq is cached across calls keyed by vector
// identity: callers must not mutate a vector's contents in place
// between Run calls on the same Simulator (replacing vectors or
// building new sequences is fine — identity then changes).
func (s *Simulator) Run(seq logic.Sequence, faults []fault.Fault, opts Options) Result {
	return s.runInto(seq, faults, opts, make([]int, len(faults)))
}

// RunWithControl is Run under an explicit run control: the budget and
// cancellation are polled at fault-batch boundaries and, when the
// control carries a checkpoint store, per-batch detection state is
// persisted for -resume. It is shorthand for setting opts.Control.
func (s *Simulator) RunWithControl(seq logic.Sequence, faults []fault.Fault, opts Options, ctl *runctl.Control) Result {
	opts.Control = ctl
	return s.Run(seq, faults, opts)
}

// runInto is Run writing detections into the caller-provided det slice
// (len(det) == len(faults)), which becomes the result's DetectedAt.
//
// With opts.Control set, batch boundaries are cancellation points:
// workers stop claiming batches once the budget stops the run (or once
// any batch fails), in-flight batches drain, and the partial detection
// state is checkpointed. Worker panics are recovered into a PanicError
// on Result.Err; without a Control the PanicError re-panics on the
// calling goroutine so legacy callers keep fail-fast semantics, but the
// process can no longer die (or leak workers) from a panic on an
// unattended worker goroutine.
func (s *Simulator) runInto(seq logic.Sequence, faults []fault.Fault, opts Options, det []int) Result {
	res := Result{DetectedAt: det}
	for i := range det {
		det[i] = NotDetected
	}
	if len(seq) == 0 || len(faults) == 0 {
		return res
	}
	ctl := opts.Control
	nBatches := (len(faults) + Slots - 1) / Slots
	done := make([]bool, nBatches)
	resumed := false
	if ctl.Resuming() {
		var err error
		resumed, err = loadSimCheckpoint(ctl, len(faults), len(seq), nBatches, done, det)
		if err != nil {
			res.Status = runctl.Failed
			res.Err = err
			ctl.Fail()
			return res
		}
	}

	tr := s.acquireTrace(seq, opts)
	defer s.releaseTrace(tr)

	nw := s.workers
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			if done[bi] {
				continue
			}
			if st, stop := ctl.ShouldStop(); stop {
				res.Status = st
				break
			}
			steps, skipped, err := s.runBatchSafe(m, tr, seq, faults, bi, opts, det)
			res.BatchSteps += steps
			res.FastForwarded += skipped
			if err != nil {
				res.Err = err
				res.Status = runctl.Failed
				ctl.Fail()
				break
			}
			done[bi] = true
			if ctl != nil && ctl.Store != nil {
				saveSimCheckpoint(ctl, len(seq), done, det, true)
			}
		}
		s.Release(m)
		return s.finishRun(res, ctl, opts, seq, done, det, resumed)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	steps := make([]int64, nw)
	skips := make([]int64, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := s.Acquire()
			defer s.Release(m)
			for {
				if failed.Load() {
					return
				}
				if _, stop := ctl.ShouldStop(); stop {
					return
				}
				bi := int(next.Add(1)) - 1
				if bi >= nBatches {
					return
				}
				if done[bi] {
					continue
				}
				// Batches write disjoint DetectedAt and done indices, so
				// no synchronization beyond the WaitGroup is needed.
				st, sk, err := s.runBatchSafe(m, tr, seq, faults, bi, opts, det)
				steps[w] += st
				skips[w] += sk
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					ctl.Fail()
					return
				}
				done[bi] = true
			}
		}(w)
	}
	wg.Wait()
	for w := range steps {
		res.BatchSteps += steps[w]
		res.FastForwarded += skips[w]
	}
	if firstErr != nil {
		res.Err = firstErr
		res.Status = runctl.Failed
	} else if st, stop := ctl.ShouldStop(); stop {
		res.Status = st
	}
	return s.finishRun(res, ctl, opts, seq, done, det, resumed)
}

// finishRun settles the result's final Status, persists the checkpoint,
// and re-panics recovered worker failures for control-less callers.
func (s *Simulator) finishRun(res Result, ctl *runctl.Control, opts Options, seq logic.Sequence, done []bool, det []int, resumed bool) Result {
	s.cRuns.Inc()
	s.cSteps.Add(res.BatchSteps)
	s.cFastFwd.Add(res.FastForwarded)
	if res.Err != nil && ctl == nil {
		panic(res.Err)
	}
	if !res.Status.Stopped() {
		res.Status = runctl.Final(resumed)
	}
	if ctl != nil && ctl.Store != nil {
		if err := saveSimCheckpoint(ctl, len(seq), done, det, false); err != nil && res.Err == nil {
			res.Err = err
		}
	}
	return res
}

// runBatchSafe runs one fault batch through the selected kernel,
// converting a panic anywhere under it into a PanicError that names the
// batch's global fault index range and carries the stack.
func (s *Simulator) runBatchSafe(m *Machine, tr *goodTrace, seq logic.Sequence, faults []fault.Fault, bi int, opts Options, out []int) (steps, skipped int64, err error) {
	s.cBatches.Inc()
	defer func() {
		if r := recover(); r != nil {
			end := (bi + 1) * Slots
			if end > len(faults) {
				end = len(faults)
			}
			err = &PanicError{BatchStart: bi * Slots, BatchEnd: end, Value: r, Stack: debug.Stack()}
		}
	}()
	// Fault-injection site for worker failure testing: an armed error
	// fails the batch, an armed panic exercises the recover path above.
	if err := failpoint.Inject("sim.worker.batch"); err != nil {
		return 0, 0, err
	}
	steps, skipped = s.runBatchKernel(m, tr, seq, faults, bi*Slots, opts, out)
	return steps, skipped, nil
}

// runBatchKernel dispatches one fault batch to the kernel selected by
// opts.Kernel.
func (s *Simulator) runBatchKernel(m *Machine, tr *goodTrace, seq logic.Sequence, faults []fault.Fault, start int, opts Options, out []int) (steps, skipped int64) {
	if opts.Kernel == KernelFull {
		return s.runBatch(m, tr, seq, faults, start, opts, out), 0
	}
	return s.runBatchEvent(m, tr, seq, faults, start, opts, out)
}

// runBatch simulates the 64-fault batch starting at fault index start
// through seq, recording first detections into out, and exits as soon
// as every fault of the batch is detected. It returns the number of
// batch steps executed.
func (s *Simulator) runBatch(m *Machine, tr *goodTrace, seq logic.Sequence, faults []fault.Fault, start int, opts Options, out []int) int64 {
	end := start + Slots
	if end > len(faults) {
		end = len(faults)
	}
	n := end - start
	m.ClearFaults()
	m.Reset()
	if opts.InitialState != nil {
		m.SetStateBroadcast(opts.InitialState)
	}
	for k, f := range faults[start:end] {
		// Injection errors indicate a site inconsistent with the
		// circuit; Universe never produces one.
		if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
			panic(err)
		}
	}
	return s.runFullTail(m, tr, seq, 0, n, start, 0, out)
}

// runFullTail runs the full-evaluation loop over seq[t0:] for an
// n-fault batch already injected into m, with detected carrying the
// slots found before t0. It is the whole of runBatch's loop (t0 = 0)
// and the continuation target when the event kernel hands off a wide
// batch mid-sequence. Returns the number of steps executed.
func (s *Simulator) runFullTail(m *Machine, tr *goodTrace, seq logic.Sequence, t0, n, start int, detected uint64, out []int) int64 {
	allMask := AllSlots
	if n < Slots {
		allMask = (uint64(1) << uint(n)) - 1
	}
	var steps int64
	nPO := tr.nPO
	for t := t0; t < len(seq); t++ {
		row := tr.row(t)
		m.Step(seq[t])
		steps++
		for po := 0; po < nPO; po++ {
			if !row[po].IsBinary() {
				continue
			}
			gz, gd := broadcast(row[po])
			fz, fd := m.OutputPlanes(po)
			newly := DetectMask(gz, gd, fz, fd) &^ detected & allMask
			if newly == 0 {
				continue
			}
			detected |= newly
			for k := 0; k < n; k++ {
				if newly&(uint64(1)<<uint(k)) != 0 {
					out[start+k] = t
				}
			}
		}
		if detected == allMask {
			break
		}
	}
	return steps
}

// RunSubset is Run restricted to the fault indices in subset; the
// result's DetectedAt is keyed by subset position (DetectedAt[i] is the
// detection cycle of faults[subset[i]]). buf, when non-nil, is reused
// as scratch for the gathered faults, and out, when of sufficient
// capacity, backs the result's DetectedAt — both avoid per-call
// allocation in tight trial loops.
func (s *Simulator) RunSubset(seq logic.Sequence, faults []fault.Fault, subset []int, opts Options, buf []fault.Fault, out []int) Result {
	buf = buf[:0]
	for _, fi := range subset {
		buf = append(buf, faults[fi])
	}
	if cap(out) < len(subset) {
		out = make([]int, len(subset))
	}
	return s.runInto(seq, buf, opts, out[:len(subset)])
}
