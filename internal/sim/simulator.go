package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Simulator owns a pool of reusable Machines for one circuit and fans
// fault batches out across worker goroutines. Test compaction issues
// millions of Run calls; reusing one Simulator across a whole
// compaction loop replaces per-call machine allocation with pool
// checkouts, and multi-batch runs spread across cores.
//
// Results are bit-identical to serial simulation: every fault batch is
// independent given the fault-free output trace, so worker count and
// scheduling change wall-clock time only, never DetectedAt. A Simulator
// is safe for concurrent use by multiple goroutines.
type Simulator struct {
	c       *netlist.Circuit
	workers int
	pool    sync.Pool
}

// NewSimulator returns a Simulator for circuit c running fault batches
// on up to workers goroutines; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewSimulator(c *netlist.Circuit, workers int) *Simulator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Simulator{c: c, workers: workers}
}

// Circuit returns the circuit this Simulator simulates.
func (s *Simulator) Circuit() *netlist.Circuit { return s.c }

// Workers returns the configured worker count.
func (s *Simulator) Workers() int { return s.workers }

// Acquire checks a Machine out of the pool, cleared of faults and with
// every flip-flop reset to X — indistinguishable from a fresh New.
// Return it with Release when done.
func (s *Simulator) Acquire() *Machine {
	if v := s.pool.Get(); v != nil {
		m := v.(*Machine)
		m.ClearFaults()
		m.Reset()
		return m
	}
	return New(s.c)
}

// Release returns a Machine obtained from Acquire to the pool.
func (s *Simulator) Release(m *Machine) { s.pool.Put(m) }

// goodTrace computes the fault-free primary-output trace of a sequence
// lazily and shares it between batch workers: rows[t] is produced at
// most once, under the mutex, and published through the atomic counter
// so warm reads take no lock. Lazy extension preserves the serial
// path's early exit — the good machine advances only as far as the
// slowest batch actually needs.
type goodTrace struct {
	seq      logic.Sequence
	m        *Machine
	nPO      int
	mu       sync.Mutex
	produced atomic.Int64
	rows     [][]logic.Value
}

func (s *Simulator) newTrace(seq logic.Sequence, opts Options) *goodTrace {
	tr := &goodTrace{
		seq:  seq,
		m:    s.Acquire(),
		nPO:  s.c.NumOutputs(),
		rows: make([][]logic.Value, len(seq)),
	}
	if opts.InitialState != nil {
		tr.m.SetStateBroadcast(opts.InitialState)
	}
	return tr
}

// row returns the fault-free output values at vector t, extending the
// trace if needed.
func (tr *goodTrace) row(t int) []logic.Value {
	if int64(t) < tr.produced.Load() {
		return tr.rows[t]
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for p := int(tr.produced.Load()); p <= t; p++ {
		tr.m.Step(tr.seq[p])
		row := make([]logic.Value, tr.nPO)
		for po := range row {
			row[po] = tr.m.OutputSlot(po, 0)
		}
		tr.rows[p] = row
		tr.produced.Store(int64(p + 1))
	}
	return tr.rows[t]
}

func (tr *goodTrace) release(s *Simulator) { s.Release(tr.m) }

// Run fault-simulates seq against faults exactly like the package-level
// Run, using the machine pool and up to Workers() goroutines (one fault
// batch of 64 at a time per worker). Detection results and BatchSteps
// are identical for every worker count.
func (s *Simulator) Run(seq logic.Sequence, faults []fault.Fault, opts Options) Result {
	res := Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = NotDetected
	}
	if len(seq) == 0 || len(faults) == 0 {
		return res
	}
	tr := s.newTrace(seq, opts)
	defer tr.release(s)

	nBatches := (len(faults) + Slots - 1) / Slots
	nw := s.workers
	if nw > nBatches {
		nw = nBatches
	}
	if nw <= 1 {
		m := s.Acquire()
		for bi := 0; bi < nBatches; bi++ {
			res.BatchSteps += s.runBatch(m, tr, seq, faults, bi*Slots, opts, res.DetectedAt)
		}
		s.Release(m)
		return res
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	steps := make([]int64, nw)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := s.Acquire()
			defer s.Release(m)
			for {
				bi := int(next.Add(1)) - 1
				if bi >= nBatches {
					return
				}
				// Batches write disjoint DetectedAt indices, so no
				// synchronization beyond the WaitGroup is needed.
				steps[w] += s.runBatch(m, tr, seq, faults, bi*Slots, opts, res.DetectedAt)
			}
		}(w)
	}
	wg.Wait()
	for _, n := range steps {
		res.BatchSteps += n
	}
	return res
}

// runBatch simulates the 64-fault batch starting at fault index start
// through seq, recording first detections into out, and exits as soon
// as every fault of the batch is detected. It returns the number of
// batch steps executed.
func (s *Simulator) runBatch(m *Machine, tr *goodTrace, seq logic.Sequence, faults []fault.Fault, start int, opts Options, out []int) int64 {
	end := start + Slots
	if end > len(faults) {
		end = len(faults)
	}
	n := end - start
	m.ClearFaults()
	m.Reset()
	if opts.InitialState != nil {
		m.SetStateBroadcast(opts.InitialState)
	}
	for k, f := range faults[start:end] {
		// Injection errors indicate a site inconsistent with the
		// circuit; Universe never produces one.
		if err := m.InjectFault(f, uint64(1)<<uint(k)); err != nil {
			panic(err)
		}
	}
	allMask := AllSlots
	if n < Slots {
		allMask = (uint64(1) << uint(n)) - 1
	}
	var detected uint64
	var steps int64
	nPO := tr.nPO
	for t := range seq {
		row := tr.row(t)
		m.Step(seq[t])
		steps++
		for po := 0; po < nPO; po++ {
			if !row[po].IsBinary() {
				continue
			}
			gz, gd := broadcast(row[po])
			fz, fd := m.OutputPlanes(po)
			newly := DetectMask(gz, gd, fz, fd) &^ detected & allMask
			if newly == 0 {
				continue
			}
			detected |= newly
			for k := 0; k < n; k++ {
				if newly&(uint64(1)<<uint(k)) != 0 {
					out[start+k] = t
				}
			}
		}
		if detected == allMask {
			break
		}
	}
	return steps
}

// RunSubset is Run restricted to the fault indices in subset. buf, when
// non-nil, is reused as scratch for the gathered faults, and out, when
// non-nil, is cleared and reused for the result — both avoid per-call
// allocation in tight trial loops.
func (s *Simulator) RunSubset(seq logic.Sequence, faults []fault.Fault, subset []int, opts Options, buf []fault.Fault, out map[int]int) map[int]int {
	buf = buf[:0]
	for _, fi := range subset {
		buf = append(buf, faults[fi])
	}
	r := s.Run(seq, buf, opts)
	if out == nil {
		out = make(map[int]int, len(subset))
	} else {
		clear(out)
	}
	for i, fi := range subset {
		out[fi] = r.DetectedAt[i]
	}
	return out
}
