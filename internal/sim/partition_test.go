package sim

import "testing"

func TestPartitionFaultsShape(t *testing.T) {
	cases := []struct {
		n, parts int
		want     int // expected number of ranges
	}{
		{0, 4, 1},
		{10, 1, 1},
		{10, 4, 1},      // one batch, cannot split
		{64, 2, 1},      // still one batch
		{65, 2, 2},      // two batches, one each
		{640, 4, 4},     // ten batches over four parts
		{641, 100, 11},  // eleven batches cap the parts
		{1000, 3, 3},    // uneven tail
		{Slots * 7, 7, 7},
	}
	for _, c := range cases {
		rs := PartitionFaults(c.n, c.parts)
		if len(rs) != c.want {
			t.Errorf("PartitionFaults(%d,%d): %d ranges, want %d", c.n, c.parts, len(rs), c.want)
			continue
		}
		// Ranges must tile [0, n) contiguously with Slots-aligned starts.
		pos := 0
		for i, r := range rs {
			if r.Start != pos {
				t.Errorf("PartitionFaults(%d,%d): range %d starts at %d, want %d", c.n, c.parts, i, r.Start, pos)
			}
			if r.Start%Slots != 0 {
				t.Errorf("PartitionFaults(%d,%d): range %d start %d not Slots-aligned", c.n, c.parts, i, r.Start)
			}
			if r.End <= r.Start && c.n > 0 {
				t.Errorf("PartitionFaults(%d,%d): empty range %d", c.n, c.parts, i)
			}
			pos = r.End
		}
		if pos != c.n {
			t.Errorf("PartitionFaults(%d,%d): ranges end at %d, want %d", c.n, c.parts, pos, c.n)
		}
	}
}

func TestFaultRangeIndices(t *testing.T) {
	r := FaultRange{128, 131}
	idx := r.Indices()
	if len(idx) != 3 || idx[0] != 128 || idx[2] != 130 {
		t.Errorf("Indices() = %v", idx)
	}
}
