package sim

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/logic"
)

// TestDifferentialOnSyntheticCircuits extends the s27 differential test
// to randomly generated sequential circuits: the bit-parallel machine
// must agree with the scalar reference on every fault and every
// detection time.
func TestDifferentialOnSyntheticCircuits(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		c, err := circuits.Synthesize(circuits.Params{
			Name: "prop", Inputs: 4, FFs: 5, Gates: 40, Outputs: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Universe(c, false)
		rng := logic.NewRandFiller(seed * 7919)
		seq := make(logic.Sequence, 30)
		for i := range seq {
			v := logic.NewVector(c.NumInputs())
			for j := range v {
				if rng.Intn(8) == 0 {
					v[j] = logic.X
				} else {
					v[j] = rng.Next()
				}
			}
			seq[i] = v
		}
		res := Run(c, seq, faults, Options{})
		for fi, f := range faults {
			want := refDetect(c, seq, f)
			if got := res.DetectedAt[fi]; got != want {
				t.Fatalf("seed %d fault %s: Run=%d ref=%d", seed, f.Name(c), got, want)
			}
		}
	}
}

// TestStepMultiMatchesStep: broadcasting one vector via StepMulti must
// equal Step for every slot and every output.
func TestStepMultiMatchesStep(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	rng := logic.NewRandFiller(77)
	a, b := New(c), New(c)
	for i := 0; i < 20; i++ {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		a.Step(v)
		b.StepMulti([]logic.Vector{v})
		for po := 0; po < c.NumOutputs(); po++ {
			for slot := 0; slot < Slots; slot += 13 {
				if a.OutputSlot(po, slot) != b.OutputSlot(po, slot) {
					t.Fatalf("step %d: Step and StepMulti diverge at po %d slot %d", i, po, slot)
				}
			}
		}
	}
}

// TestSetStatePair: slot 0 must carry the good state and the remaining
// slots the faulty state.
func TestSetStatePair(t *testing.T) {
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	m := New(c)
	good := []logic.Value{logic.Zero, logic.One, logic.X}
	faulty := []logic.Value{logic.One, logic.One, logic.Zero}
	m.SetStatePair(good, faulty)
	g := m.StateSlot(0)
	f := m.StateSlot(17)
	for i := range good {
		if g[i] != good[i] {
			t.Errorf("slot0 FF %d = %v, want %v", i, g[i], good[i])
		}
		if f[i] != faulty[i] {
			t.Errorf("slot17 FF %d = %v, want %v", i, f[i], faulty[i])
		}
	}
}

// TestRunPrefixConsistency: detections strictly before t do not change
// when the sequence is truncated at t — the invariant the omission
// engine's prefix checkpointing rests on.
func TestRunPrefixConsistency(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)[:128]
	rng := logic.NewRandFiller(11)
	seq := make(logic.Sequence, 60)
	for i := range seq {
		v := logic.NewVector(c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	full := Run(c, seq, faults, Options{})
	for _, cut := range []int{10, 30, 50} {
		part := Run(c, seq[:cut], faults, Options{})
		for fi := range faults {
			if full.DetectedAt[fi] != NotDetected && full.DetectedAt[fi] < cut {
				if part.DetectedAt[fi] != full.DetectedAt[fi] {
					t.Errorf("cut %d fault %d: %d vs %d", cut, fi, part.DetectedAt[fi], full.DetectedAt[fi])
				}
			}
		}
	}
}
