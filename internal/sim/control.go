package sim

import (
	"fmt"

	"repro/internal/runctl"
)

// ckptSection is the checkpoint-store section name Simulator.Run uses.
const ckptSection = "sim"

// PanicError reports a panic recovered inside a fault-simulation worker.
// The failing fault batch is identified by its half-open global fault
// index range, so callers can retry, exclude or report the exact faults
// involved; Stack is the goroutine stack captured at the panic site.
type PanicError struct {
	BatchStart, BatchEnd int
	Value                any
	Stack                []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: worker panic on fault batch [%d,%d): %v\n%s",
		e.BatchStart, e.BatchEnd, e.Value, e.Stack)
}

// Unwrap exposes a wrapped error panic value (e.g. panic(err)).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// simCheckpoint is the persisted state of an interrupted Simulator.Run:
// which 64-fault batches have fully completed and the detection state
// so far. Batches are independent, so a resumed run simulates only the
// missing batches and reproduces the uninterrupted result bit for bit.
type simCheckpoint struct {
	// Faults and SeqLen guard against resuming with a different fault
	// universe or sequence.
	Faults int `json:"faults"`
	SeqLen int `json:"seq_len"`
	// Done holds one '0'/'1' per batch, '1' when the batch completed.
	Done string `json:"done"`
	// DetectedAt is the full detection array; entries of unfinished
	// batches are NotDetected.
	DetectedAt []int `json:"detected_at"`
	// Complete marks a run that finished every batch.
	Complete bool `json:"complete"`
}

// loadSimCheckpoint restores a prior run's batch completion state into
// done and det. It reports whether a checkpoint was loaded — true even
// when the prior run was stopped before completing any batch, so a
// resumed run always reports Resumed, matching the compact engines'
// semantics for zero-progress checkpoints (a consistency originally
// pinned down by an internal/xcheck resume/identical violation).
func loadSimCheckpoint(ctl *runctl.Control, nFaults, seqLen, nBatches int, done []bool, det []int) (bool, error) {
	var st simCheckpoint
	ok, err := ctl.Load(ckptSection, &st)
	if err != nil || !ok {
		return false, err
	}
	if st.Faults != nFaults || st.SeqLen != seqLen || len(st.Done) != nBatches || len(st.DetectedAt) != nFaults {
		return false, fmt.Errorf("sim: checkpoint mismatch: saved %d faults / %d vectors / %d batches, run has %d / %d / %d",
			st.Faults, st.SeqLen, len(st.Done), nFaults, seqLen, nBatches)
	}
	for bi := 0; bi < nBatches; bi++ {
		if st.Done[bi] != '1' {
			continue
		}
		done[bi] = true
		end := (bi + 1) * Slots
		if end > nFaults {
			end = nFaults
		}
		copy(det[bi*Slots:end], st.DetectedAt[bi*Slots:end])
	}
	return true, nil
}

// saveSimCheckpoint persists the current batch completion state.
func saveSimCheckpoint(ctl *runctl.Control, seqLen int, done []bool, det []int, throttled bool) error {
	st := simCheckpoint{
		Faults:     len(det),
		SeqLen:     seqLen,
		DetectedAt: det,
		Complete:   true,
	}
	mask := make([]byte, len(done))
	for bi, d := range done {
		if d {
			mask[bi] = '1'
		} else {
			mask[bi] = '0'
			st.Complete = false
		}
	}
	st.Done = string(mask)
	if throttled {
		return ctl.Checkpoint(ckptSection, st)
	}
	return ctl.Save(ckptSection, st)
}
