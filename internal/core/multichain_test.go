package core

import "testing"

// TestRunGenerateWithChains: the generation flow supports the
// multi-chain configuration end to end.
func TestRunGenerateWithChains(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipBaseline = true
	cfg.Chains = 3
	row, art, err := RunGenerate("s298", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// scan_sel + 3 scan inputs.
	if row.Inp != 3+1+3 {
		t.Errorf("inputs = %d, want 7", row.Inp)
	}
	if row.Stvr != 14 {
		t.Errorf("state vars = %d", row.Stvr)
	}
	if row.FCov < 99 {
		t.Errorf("coverage = %.2f", row.FCov)
	}
	if !(row.OmitLen <= row.RestorLen && row.RestorLen <= row.TestLen) {
		t.Errorf("compaction not monotone: %d -> %d -> %d", row.TestLen, row.RestorLen, row.OmitLen)
	}
	if art.Scan.NumStateVars() != 14 {
		t.Error("artifact design wrong")
	}
}

// TestChainsShortenCompactedLength: more chains must not make the
// compacted result longer (the multichain example's trend, asserted).
func TestChainsShortenCompactedLength(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipBaseline = true
	one, _, err := RunGenerate("s298", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chains = 4
	four, _, err := RunGenerate("s298", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if four.OmitLen > one.OmitLen {
		t.Errorf("4 chains compacted to %d, single chain to %d", four.OmitLen, one.OmitLen)
	}
}

// TestOmitLenCapSkipsOmission: above the cap, the omit columns equal
// the restoration columns.
func TestOmitLenCapSkipsOmission(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipBaseline = true
	cfg.OmitLenCap = 1 // everything exceeds it
	row, _, err := RunGenerate("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.OmitLen != row.RestorLen || row.OmitScan != row.RestorScan {
		t.Errorf("omission ran despite cap: %+v", row)
	}
}
