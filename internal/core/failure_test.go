package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuits"
	"repro/internal/compact"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
)

// These tests exercise the failure-survival contract end to end for all
// four checkpoint kinds (generate, sim, restore, omit) against on-disk
// damage: a corrupted primary generation with a healthy previous one
// must roll back and resume bit-identically; both generations damaged
// must surface a typed *runctl.CorruptError (generate, sim) or degrade
// to a from-scratch pass with identical output (restore, omit). No
// corruption class may panic.

// corrupt mutates a checkpoint file in one of three representative ways.
func corruptCkpt(t *testing.T, path, mode string) {
	t.Helper()
	d, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	switch mode {
	case "flip": // single bit flip deep in the payload → checksum mismatch
		d[len(d)-2] ^= 0x01
	case "truncate": // torn write → framing error
		d = d[:len(d)/2]
	case "version": // future/unknown format revision
		d = bytes.Replace(d, []byte("scanatpg-checkpoint/v2"), []byte("scanatpg-checkpoint/v9"), 1)
	default:
		t.Fatalf("unknown corruption mode %q", mode)
	}
	if err := os.WriteFile(path, d, 0o644); err != nil {
		t.Fatal(err)
	}
}

// corruptBothGenerations damages the primary and its previous
// generation so the store cannot roll back.
func corruptBothGenerations(t *testing.T, path, mode string) {
	t.Helper()
	corruptCkpt(t, path, mode)
	if _, err := os.Stat(path + ".1"); err == nil {
		corruptCkpt(t, path+".1", mode)
	}
}

func genFixture(t *testing.T) (scan.Design, []fault.Fault, seqatpg.Options) {
	t.Helper()
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.ScanCircuit(), true)
	return sc, faults, seqatpg.Options{Seed: 11, Passes: 1, RandomPhase: 4}
}

// interruptedGenerate runs two budget-limited legs so both checkpoint
// generations (primary and .1) exist on disk.
func interruptedGenerate(t *testing.T, path string) (scan.Design, []fault.Fault, seqatpg.Options) {
	t.Helper()
	sc, faults, opts := genFixture(t)
	for leg := 0; leg < 2; leg++ {
		o := opts
		o.Control = &runctl.Control{
			Budget: runctl.Budget{MaxAttempts: 3},
			Store:  runctl.NewFileStore(path),
			Resume: leg > 0,
		}
		if res := seqatpg.Generate(sc, faults, o); res.Status != runctl.BudgetExhausted {
			t.Fatalf("leg %d status %v, want budget exhausted", leg, res.Status)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("second generation missing after two legs: %v", err)
	}
	return sc, faults, opts
}

// TestGenerateCheckpointCorruptPrimaryRollsBack: bit-flip the primary
// generation of an interrupted generator checkpoint; the resume must
// fall back to the previous generation and still finish bit-identical
// to an uninterrupted run.
func TestGenerateCheckpointCorruptPrimaryRollsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.ckpt")
	sc, faults, opts := interruptedGenerate(t, path)
	ref := seqatpg.Generate(sc, faults, opts)
	if ref.Status != runctl.Complete {
		t.Fatalf("reference status %v", ref.Status)
	}

	corruptCkpt(t, path, "flip")
	fs := runctl.NewFileStore(path)
	fs.Logf = t.Logf
	o := opts
	o.Control = &runctl.Control{Store: fs, Resume: true}
	res := seqatpg.Generate(sc, faults, o)
	if res.Status != runctl.Resumed || res.Err != nil {
		t.Fatalf("rollback resume: status %v err %v", res.Status, res.Err)
	}
	if !fs.RolledBack() {
		t.Fatal("store did not report a generation rollback")
	}
	if res.Sequence.String() != ref.Sequence.String() {
		t.Fatal("rollback resume diverged from uninterrupted run")
	}
	for fi := range faults {
		if res.DetectedAt[fi] != ref.DetectedAt[fi] {
			t.Fatalf("fault %d detected at %d, reference %d", fi, res.DetectedAt[fi], ref.DetectedAt[fi])
		}
	}
}

// TestGenerateCheckpointBothGenerationsCorruptFailsTyped: with no
// generation left to roll back to, every corruption class must surface
// as a typed corruption error on a Failed result — never a panic,
// never silent garbage.
func TestGenerateCheckpointBothGenerationsCorruptFailsTyped(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "version"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "gen.ckpt")
			sc, faults, opts := interruptedGenerate(t, path)
			corruptBothGenerations(t, path, mode)
			o := opts
			o.Control = &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}
			res := seqatpg.Generate(sc, faults, o)
			if res.Status != runctl.Failed || res.Err == nil {
				t.Fatalf("status %v err %v, want typed failure", res.Status, res.Err)
			}
			if !runctl.IsCorrupt(res.Err) {
				t.Fatalf("error %v is not a runctl.CorruptError", res.Err)
			}
		})
	}
}

func simFixture(t *testing.T) (*sim.Simulator, []fault.Fault, logic.Sequence) {
	t.Helper()
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	rng := logic.NewRandFiller(7)
	seq := make(logic.Sequence, 40)
	for i := range seq {
		v := make(logic.Vector, c.NumInputs())
		for j := range v {
			v[j] = rng.Next()
		}
		seq[i] = v
	}
	return sim.NewSimulator(c, 2), faults, seq
}

// interruptedSim stops a simulation twice (at increasing poll budgets)
// so two checkpoint generations exist.
func interruptedSim(t *testing.T, s *sim.Simulator, faults []fault.Fault, seq logic.Sequence, path string) {
	t.Helper()
	for leg, polls := range []int64{1, 2} {
		res := s.Run(seq, faults, sim.Options{Control: &runctl.Control{
			Budget: runctl.Budget{StopAfterPolls: polls},
			Store:  runctl.NewFileStore(path),
			Resume: leg > 0,
		}})
		if res.Status != runctl.Canceled {
			t.Fatalf("leg %d status %v, want canceled", leg, res.Status)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("second generation missing after two legs: %v", err)
	}
}

// TestSimCheckpointCorruptPrimaryRollsBack mirrors the generator test
// for the fault-simulation checkpoint.
func TestSimCheckpointCorruptPrimaryRollsBack(t *testing.T) {
	s, faults, seq := simFixture(t)
	want := s.Run(seq, faults, sim.Options{})
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	interruptedSim(t, s, faults, seq, path)

	corruptCkpt(t, path, "truncate")
	fs := runctl.NewFileStore(path)
	fs.Logf = t.Logf
	res := s.Run(seq, faults, sim.Options{Control: &runctl.Control{Store: fs, Resume: true}})
	if res.Status != runctl.Resumed || res.Err != nil {
		t.Fatalf("rollback resume: status %v err %v", res.Status, res.Err)
	}
	if !fs.RolledBack() {
		t.Fatal("store did not report a generation rollback")
	}
	for fi := range faults {
		if res.DetectedAt[fi] != want.DetectedAt[fi] {
			t.Fatalf("fault %d detected at %d, uninterrupted %d", fi, res.DetectedAt[fi], want.DetectedAt[fi])
		}
	}
}

// TestSimCheckpointBothGenerationsCorruptFailsTyped: the simulator has
// no degradation contract — unreadable state is a typed hard failure.
func TestSimCheckpointBothGenerationsCorruptFailsTyped(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "version"} {
		t.Run(mode, func(t *testing.T) {
			s, faults, seq := simFixture(t)
			path := filepath.Join(t.TempDir(), "sim.ckpt")
			interruptedSim(t, s, faults, seq, path)
			corruptBothGenerations(t, path, mode)
			res := s.Run(seq, faults, sim.Options{Control: &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}})
			if res.Status != runctl.Failed || res.Err == nil {
				t.Fatalf("status %v err %v, want typed failure", res.Status, res.Err)
			}
			if !runctl.IsCorrupt(res.Err) {
				t.Fatalf("error %v is not a runctl.CorruptError", res.Err)
			}
		})
	}
}

func compactFixture(t *testing.T) (*scan.Circuit, []fault.Fault, logic.Sequence) {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(sc.Scan, true)
	res := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 11})
	if len(res.Sequence) == 0 {
		t.Fatal("empty generated sequence")
	}
	return sc, faults, res.Sequence
}

// TestRestoreCheckpointFileCorruptionDegrades: store-layer corruption
// (as opposed to the section-level damage tested in internal/compact)
// must also take the documented degradation path — the pass demotes to
// the scratch engine, redoes the work, completes with output identical
// to an uninterrupted run, and leaves an observable counter.
func TestRestoreCheckpointFileCorruptionDegrades(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "version"} {
		t.Run(mode, func(t *testing.T) {
			sc, faults, seq := compactFixture(t)
			want, _ := compact.RestoreOpts(sc.Scan, seq, faults, compact.Options{})
			path := filepath.Join(t.TempDir(), "restore.ckpt")
			ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 2}, Store: runctl.NewFileStore(path)}
			if _, st := compact.RestoreOpts(sc.Scan, seq, faults, compact.Options{Control: ctl}); st.Status != runctl.BudgetExhausted {
				t.Fatalf("seed run status %v", st.Status)
			}
			corruptBothGenerations(t, path, mode)

			rec := obs.NewRecorder(nil, obs.RecorderOptions{})
			out, st := compact.RestoreOpts(sc.Scan, seq, faults, compact.Options{
				Control: &runctl.Control{Store: runctl.NewFileStore(path), Resume: true},
				Obs:     rec,
			})
			if st.Status != runctl.Complete || st.Err != nil {
				t.Fatalf("degraded resume: status %v err %v", st.Status, st.Err)
			}
			if out.String() != want.String() {
				t.Fatal("degraded restore output differs from uninterrupted run")
			}
			if n := rec.Snapshot().Counters["restore.ckpt_degraded"]; n != 1 {
				t.Fatalf("restore.ckpt_degraded = %d, want 1", n)
			}
		})
	}
}

// TestOmitCheckpointFileCorruptionDegrades: same contract for the
// omission pass.
func TestOmitCheckpointFileCorruptionDegrades(t *testing.T) {
	for _, mode := range []string{"flip", "truncate", "version"} {
		t.Run(mode, func(t *testing.T) {
			sc, faults, seq := compactFixture(t)
			want, _ := compact.OmitOpts(sc.Scan, seq, faults, compact.Options{})
			path := filepath.Join(t.TempDir(), "omit.ckpt")
			ctl := &runctl.Control{Budget: runctl.Budget{MaxTrials: 1}, Store: runctl.NewFileStore(path)}
			if _, st := compact.OmitOpts(sc.Scan, seq, faults, compact.Options{Control: ctl}); st.Status != runctl.BudgetExhausted {
				t.Fatalf("seed run status %v", st.Status)
			}
			corruptBothGenerations(t, path, mode)

			rec := obs.NewRecorder(nil, obs.RecorderOptions{})
			out, st := compact.OmitOpts(sc.Scan, seq, faults, compact.Options{
				Control: &runctl.Control{Store: runctl.NewFileStore(path), Resume: true},
				Obs:     rec,
			})
			if st.Status != runctl.Complete || st.Err != nil {
				t.Fatalf("degraded resume: status %v err %v", st.Status, st.Err)
			}
			if out.String() != want.String() {
				t.Fatal("degraded omit output differs from uninterrupted run")
			}
			if n := rec.Snapshot().Counters["omit.ckpt_degraded"]; n != 1 {
				t.Fatalf("omit.ckpt_degraded = %d, want 1", n)
			}
		})
	}
}

// TestFlowMetaCorruptionFailsTyped: the flow-level "meta" guard section
// shares the same store file; with both generations gone the whole flow
// fails typed at the door instead of resuming against unknown settings.
func TestFlowMetaCorruptionFailsTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flow.ckpt")
	cfg := DefaultConfig()
	cfg.Seq = seqatpg.Options{Passes: 1}
	cfg.SkipBaseline = true
	cfg.Control = &runctl.Control{
		Budget: runctl.Budget{MaxAttempts: 2},
		Store:  runctl.NewFileStore(path),
	}
	row, _, err := RunGenerate("s27", cfg)
	if err != nil || row.Status != runctl.BudgetExhausted {
		t.Fatalf("seed flow: status %v err %v", row.Status, err)
	}
	corruptBothGenerations(t, path, "flip")

	cfg.Control = &runctl.Control{Store: runctl.NewFileStore(path), Resume: true}
	row, _, err = RunGenerate("s27", cfg)
	if err == nil || row.Status != runctl.Failed {
		t.Fatalf("corrupt meta resume: status %v err %v, want typed failure", row.Status, err)
	}
	if !runctl.IsCorrupt(err) {
		t.Fatalf("error %v is not a runctl.CorruptError", err)
	}
}
