// Package core orchestrates the paper's end-to-end flows over the
// benchmark suite:
//
//   - the generation flow (Tables 5 and 6): scan insertion → Section 2
//     sequential test generation on C_scan → vector restoration →
//     vector omission, with the conventional-scan baseline providing
//     the comparison cycle count;
//   - the translation flow (Table 7): conventional second-approach test
//     set → Section 3 translation into a flat C_scan sequence → the
//     same two compaction passes.
package core

import (
	"fmt"
	"io"

	"repro/internal/baseline"
	"repro/internal/circuits"
	"repro/internal/compact"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/seqatpg"
	"repro/internal/sim"
	"repro/internal/translate"
)

// Config parameterizes a flow run.
type Config struct {
	// Seed drives every random choice; identical configs reproduce
	// identical results.
	Seed uint64
	// Collapse enables structural equivalence fault collapsing
	// (recommended; the paper's absolute fault counts differ anyway
	// because the non-s27 circuits are synthetic).
	Collapse bool
	// Seq tunes the Section 2 generator.
	Seq seqatpg.Options
	// Baseline tunes the conventional comparator.
	Baseline baseline.Options
	// SkipBaseline omits the baseline run (Table 5 only needs the
	// generator).
	SkipBaseline bool
	// SkipCompaction stops after raw generation.
	SkipCompaction bool
	// OmitLenCap skips the omission pass when the restored sequence
	// is longer than this many vectors (0 = never skip, the default).
	// The cap predates the incremental trial engine, which handles even
	// the largest catalog circuits uncapped; it is kept as an escape
	// hatch. A skip is never silent: it emits a "flow"/"omit_skipped"
	// event and a warning on Warn.
	OmitLenCap int
	// Engine selects the compaction trial engine (see compact.Engine);
	// the zero value is the incremental engine. Results are identical
	// for every engine.
	Engine compact.Engine
	// Order selects the restoration target order (see compact.Order).
	// Unlike Engine, a non-default order changes the compacted output.
	Order compact.Order
	// Warn, when non-nil, receives human-readable warnings (currently:
	// an omission pass skipped by OmitLenCap). Flows never write
	// anything else to it.
	Warn io.Writer
	// Chains selects the number of scan chains for the generation
	// flow (0 or 1 = the paper's single chain).
	Chains int
	// Workers is the fault-simulation worker count used throughout the
	// flow (0 = GOMAXPROCS). Results are identical for every value.
	Workers int
	// Control, when non-nil, threads budget/cancellation and optional
	// checkpointing through the generation flow: the generator and both
	// compaction passes poll it, and a "meta" checkpoint section guards
	// resumes against a different circuit, seed, chain count or
	// collapse setting. A stopped flow skips the stages that did not
	// run (compaction, baseline) and reports partial numbers with
	// GenerateRow.Status set. One Control describes one circuit's run;
	// suite runs must not attach a checkpoint Store (each circuit would
	// fight over the same sections).
	Control *runctl.Control
	// Obs, when non-nil, observes the whole flow: stage events under the
	// "flow" phase plus the engines' own instrumentation (the generator's
	// "generate" phase, the compaction passes' "restore"/"omit" phases
	// and the shared simulator's "sim" counters). Purely observational —
	// every result is identical with or without it.
	Obs obs.Observer
}

// DefaultConfig returns the configuration the experiments use.
func DefaultConfig() Config {
	return Config{Seed: 1, Collapse: true}
}

// GenerateRow is one row of the paper's Tables 5 and 6.
type GenerateRow struct {
	Circ   string
	Inp    int // primary inputs of C_scan (includes scan_sel, scan_inp)
	Stvr   int // state variables
	Faults int

	Detected int
	FCov     float64
	Funct    int // faults detected via functional-level scan knowledge

	TestLen, TestScan     int // |T| and its scan_sel=1 count
	RestorLen, RestorScan int
	OmitLen, OmitScan     int
	ExtDet                int // extra faults detected during compaction

	BaselineCycles int // conventional-scan comparator ("[26] cyc")

	// Status classifies the flow run: Complete/Resumed mark full rows;
	// a Stopped() status marks partial numbers (stages after the stop
	// hold zero values).
	Status runctl.Status
}

// GenerateArtifacts carries the heavyweight objects produced by the
// generation flow, for callers that want more than the table row.
type GenerateArtifacts struct {
	Scan                    scan.Design
	Faults                  []fault.Fault
	Gen                     seqatpg.Result
	Raw                     logic.Sequence
	Restored                logic.Sequence
	Omitted                 logic.Sequence
	RestoreStats, OmitStats compact.Stats
	Baseline                baseline.Result
}

// RunGenerate executes the generation flow on the named catalog
// circuit.
func RunGenerate(name string, cfg Config) (GenerateRow, *GenerateArtifacts, error) {
	ctl := cfg.Control
	defer obs.T(cfg.Obs, "flow.time").Start()()
	obs.Emit(cfg.Obs, "flow", "start",
		obs.F("flow", "generate"), obs.F("circuit", name), obs.F("seed", cfg.Seed))
	if err := checkMeta(ctl, "generate", name, cfg); err != nil {
		ctl.Fail()
		return GenerateRow{Circ: name, Status: runctl.Failed}, nil, err
	}
	c, err := circuits.Load(name)
	if err != nil {
		return GenerateRow{}, nil, err
	}
	var sc scan.Design
	if cfg.Chains > 1 {
		ch, err := scan.InsertChains(c, cfg.Chains)
		if err != nil {
			return GenerateRow{}, nil, err
		}
		sc = ch
	} else {
		single, err := scan.Insert(c)
		if err != nil {
			return GenerateRow{}, nil, err
		}
		sc = single
	}
	cs := sc.ScanCircuit()
	faults := fault.Universe(cs, cfg.Collapse)
	seqOpts := cfg.Seq
	if seqOpts.Seed == 0 {
		seqOpts.Seed = cfg.Seed
	}
	if seqOpts.Workers == 0 {
		seqOpts.Workers = cfg.Workers
	}
	seqOpts.Control = ctl
	seqOpts.Obs = cfg.Obs
	gen := seqatpg.Generate(sc, faults, seqOpts)
	obs.Emit(cfg.Obs, "flow", "generated",
		obs.F("vectors", len(gen.Sequence)), obs.F("detected", gen.NumDetected()),
		obs.F("status", gen.Status.String()))

	art := &GenerateArtifacts{Scan: sc, Faults: faults, Gen: gen, Raw: gen.Sequence}
	row := GenerateRow{
		Circ:     name,
		Inp:      cs.NumInputs(),
		Stvr:     sc.NumStateVars(),
		Faults:   len(faults),
		Detected: gen.NumDetected(),
		FCov:     fault.Coverage(gen.NumDetected(), len(faults)),
		Funct:    gen.NumFunct(),
		TestLen:  len(gen.Sequence),
		TestScan: countScan(sc, gen.Sequence),
		Status:   gen.Status,
	}
	if gen.Status == runctl.Failed {
		return row, art, gen.Err
	}
	if gen.Status.Stopped() {
		// Partial generation: the sequence will grow on resume, so the
		// compaction passes (and their checkpoints) must not run, and
		// the baseline comparison would not be meaningful yet.
		return row, art, nil
	}

	if !cfg.SkipCompaction {
		// One simulator (and so one machine pool) serves both compaction
		// passes and the final extra-detection check.
		s := sim.NewSimulator(cs, cfg.Workers)
		s.Observe(cfg.Obs)
		copts := compact.Options{Sim: s, Control: ctl, Obs: cfg.Obs, Engine: cfg.Engine, Order: cfg.Order}
		restored, rst := compact.RestoreOpts(cs, gen.Sequence, faults, copts)
		if rst.Status != runctl.Complete {
			row.Status = rst.Status
		}
		if rst.Status == runctl.Failed {
			return row, art, rst.Err
		}
		omitted, ost := restored, compact.Stats{BeforeLen: len(restored), AfterLen: len(restored)}
		if !rst.Status.Stopped() && !capSkipsOmit(cfg, name, len(restored)) {
			omitted, ost = compact.OmitOpts(cs, restored, faults, copts)
			if ost.Status != runctl.Complete {
				row.Status = ost.Status
			}
			if ost.Status == runctl.Failed {
				return row, art, ost.Err
			}
		}
		art.Restored, art.Omitted = restored, omitted
		art.RestoreStats, art.OmitStats = rst, ost
		row.RestorLen = len(restored)
		row.RestorScan = countScan(sc, restored)
		row.OmitLen = len(omitted)
		row.OmitScan = countScan(sc, omitted)
		if row.Status.Done() {
			row.ExtDet = extraDetections(s, gen, omitted, faults)
		}
		obs.Emit(cfg.Obs, "flow", "compacted",
			obs.F("restored", len(restored)), obs.F("omitted", len(omitted)),
			obs.F("extra", row.ExtDet))
	}

	if row.Status.Stopped() {
		return row, art, nil
	}
	if !cfg.SkipBaseline {
		baseOpts := cfg.Baseline
		if baseOpts.Seed == 0 {
			baseOpts.Seed = cfg.Seed
		}
		if baseOpts.Workers == 0 {
			baseOpts.Workers = cfg.Workers
		}
		base := baseline.Generate(c, fault.Universe(c, cfg.Collapse), baseOpts)
		art.Baseline = base
		row.BaselineCycles = base.Cycles
		obs.Emit(cfg.Obs, "flow", "baseline", obs.F("cycles", base.Cycles))
	}
	obs.Emit(cfg.Obs, "flow", "done",
		obs.F("flow", "generate"), obs.F("circuit", name),
		obs.F("status", row.Status.String()))
	return row, art, nil
}

// coreMeta is the "meta" checkpoint section: the flow-level settings a
// resume must match for the engine checkpoints to make sense.
type coreMeta struct {
	Flow     string `json:"flow"`
	Circuit  string `json:"circuit"`
	Seed     uint64 `json:"seed"`
	Chains   int    `json:"chains"`
	Collapse bool   `json:"collapse"`
}

// checkMeta validates the checkpoint's meta section against the run's
// settings when resuming, and records them when starting fresh with a
// store attached.
func checkMeta(ctl *runctl.Control, flow, name string, cfg Config) error {
	if ctl == nil || ctl.Store == nil {
		return nil
	}
	chains := cfg.Chains
	if chains < 1 {
		chains = 1
	}
	want := coreMeta{Flow: flow, Circuit: name, Seed: cfg.Seed, Chains: chains, Collapse: cfg.Collapse}
	if ctl.Resuming() {
		var have coreMeta
		ok, err := ctl.Load("meta", &have)
		if err != nil {
			return err
		}
		if ok {
			if have != want {
				return fmt.Errorf("core: checkpoint is for %s/%s seed=%d chains=%d collapse=%v; run is %s/%s seed=%d chains=%d collapse=%v",
					have.Flow, have.Circuit, have.Seed, have.Chains, have.Collapse,
					want.Flow, want.Circuit, want.Seed, want.Chains, want.Collapse)
			}
			return nil
		}
	}
	return ctl.Save("meta", want)
}

// capSkipsOmit decides whether OmitLenCap suppresses the omission pass
// for a restored sequence of restoredLen vectors, and makes any skip
// visible: a "flow"/"omit_skipped" event (plus the flow.omit_skips
// counter) for observers and a warning line on cfg.Warn for humans.
func capSkipsOmit(cfg Config, name string, restoredLen int) bool {
	if cfg.OmitLenCap == 0 || restoredLen <= cfg.OmitLenCap {
		return false
	}
	obs.C(cfg.Obs, "flow.omit_skips").Inc()
	obs.Emit(cfg.Obs, "flow", "omit_skipped",
		obs.F("circuit", name), obs.F("len", restoredLen), obs.F("cap", cfg.OmitLenCap))
	if cfg.Warn != nil {
		fmt.Fprintf(cfg.Warn, "warning: %s: omission skipped, restored length %d exceeds omit cap %d (raise or drop -omit-cap; the incremental engine handles uncapped runs)\n",
			name, restoredLen, cfg.OmitLenCap)
	}
	return true
}

// countScan counts the vectors of seq performing a scan shift.
func countScan(sc scan.Design, seq logic.Sequence) int {
	n := 0
	for _, v := range seq {
		if sc.IsScanSel(v) {
			n++
		}
	}
	return n
}

// extraDetections counts faults the generator left undetected that the
// final compacted sequence detects anyway (the paper's "ext det").
func extraDetections(s *sim.Simulator, gen seqatpg.Result, final logic.Sequence, faults []fault.Fault) int {
	var sub []fault.Fault
	for fi := range faults {
		if gen.DetectedAt[fi] == sim.NotDetected {
			sub = append(sub, faults[fi])
		}
	}
	if len(sub) == 0 {
		return 0
	}
	return s.Run(final, sub, sim.Options{}).NumDetected()
}

// TranslateRow is one row of the paper's Table 7.
type TranslateRow struct {
	Circ                  string
	TestLen, TestScan     int
	RestorLen, RestorScan int
	OmitLen, OmitScan     int
	Cycles                int // conventional application of the source test set

	// Status classifies the flow run like GenerateRow.Status: a
	// Stopped() value marks partial numbers (stages after the stop hold
	// zero values) that a checkpointed -resume can continue.
	Status runctl.Status
}

// TranslateArtifacts carries the heavyweight objects of the translation
// flow.
type TranslateArtifacts struct {
	Scan       *scan.Circuit
	Base       baseline.Result
	Translated logic.Sequence
	Restored   logic.Sequence
	Omitted    logic.Sequence
	ScanFaults []fault.Fault
}

// RunTranslate executes the translation flow on the named catalog
// circuit: generate a conventional test set, translate it, compact it.
func RunTranslate(name string, cfg Config) (TranslateRow, *TranslateArtifacts, error) {
	ctl := cfg.Control
	defer obs.T(cfg.Obs, "flow.time").Start()()
	obs.Emit(cfg.Obs, "flow", "start",
		obs.F("flow", "translate"), obs.F("circuit", name), obs.F("seed", cfg.Seed))
	if err := checkMeta(ctl, "translate", name, cfg); err != nil {
		ctl.Fail()
		return TranslateRow{Circ: name, Status: runctl.Failed}, nil, err
	}
	c, err := circuits.Load(name)
	if err != nil {
		return TranslateRow{}, nil, err
	}
	sc, err := scan.Insert(c)
	if err != nil {
		return TranslateRow{}, nil, err
	}
	baseOpts := cfg.Baseline
	if baseOpts.Seed == 0 {
		baseOpts.Seed = cfg.Seed
	}
	if baseOpts.Workers == 0 {
		baseOpts.Workers = cfg.Workers
	}
	base := baseline.Generate(c, fault.Universe(c, cfg.Collapse), baseOpts)

	seq, err := translate.Translate(sc, base.Tests, cfg.Seed^0x7A75)
	if err != nil {
		return TranslateRow{}, nil, err
	}
	obs.Emit(cfg.Obs, "flow", "translated",
		obs.F("tests", len(base.Tests)), obs.F("vectors", len(seq)))
	scanFaults := fault.Universe(sc.Scan, cfg.Collapse)
	row := TranslateRow{
		Circ:     name,
		TestLen:  len(seq),
		TestScan: sc.CountScanVectors(seq),
		Cycles:   base.Cycles,
	}
	art := &TranslateArtifacts{Scan: sc, Base: base, Translated: seq, ScanFaults: scanFaults}
	if !cfg.SkipCompaction {
		s := sim.NewSimulator(sc.Scan, cfg.Workers)
		s.Observe(cfg.Obs)
		copts := compact.Options{Sim: s, Control: ctl, Obs: cfg.Obs, Engine: cfg.Engine, Order: cfg.Order}
		restored, rst := compact.RestoreOpts(sc.Scan, seq, scanFaults, copts)
		if rst.Status != runctl.Complete {
			row.Status = rst.Status
		}
		if rst.Status == runctl.Failed {
			return row, art, rst.Err
		}
		omitted, ost := restored, compact.Stats{BeforeLen: len(restored), AfterLen: len(restored)}
		if !rst.Status.Stopped() && !capSkipsOmit(cfg, name, len(restored)) {
			omitted, ost = compact.OmitOpts(sc.Scan, restored, scanFaults, copts)
			if ost.Status != runctl.Complete {
				row.Status = ost.Status
			}
			if ost.Status == runctl.Failed {
				return row, art, ost.Err
			}
		}
		art.Restored, art.Omitted = restored, omitted
		row.RestorLen = len(restored)
		row.RestorScan = sc.CountScanVectors(restored)
		row.OmitLen = len(omitted)
		row.OmitScan = sc.CountScanVectors(omitted)
		obs.Emit(cfg.Obs, "flow", "compacted",
			obs.F("restored", len(restored)), obs.F("omitted", len(omitted)))
	}
	obs.Emit(cfg.Obs, "flow", "done",
		obs.F("flow", "translate"), obs.F("circuit", name),
		obs.F("status", row.Status.String()))
	return row, art, nil
}

// VerifyTranslation checks the paper's Section 3 guarantee on a
// translated sequence: every fault of the scan circuit detected by the
// conventional test set (modelled on C) must be detected by the flat
// sequence on C_scan. It returns an error naming the first violation.
func VerifyTranslation(sc *scan.Circuit, base baseline.Result, origFaults []fault.Fault, seq logic.Sequence) error {
	// Map original-circuit faults onto C_scan sites by signal name.
	var check []fault.Fault
	var checkIdx []int
	for fi, f := range origFaults {
		if base.DetectedBy[fi] < 0 {
			continue
		}
		if g, ok := liftFault(sc, f); ok {
			check = append(check, g)
			checkIdx = append(checkIdx, fi)
		}
	}
	res := sim.Run(sc.Scan, seq, check, sim.Options{})
	for i := range check {
		if !res.Detected(i) {
			return fmt.Errorf("core: fault %s (original index %d) detected conventionally but lost in translation",
				check[i].Name(sc.Scan), checkIdx[i])
		}
	}
	return nil
}

// liftFault maps a fault on the original circuit onto the equivalent
// site of C_scan (signals keep their names; gate and pin indices shift).
func liftFault(sc *scan.Circuit, f fault.Fault) (fault.Fault, bool) {
	name := sc.Orig.SignalName(f.Site.Signal)
	s, ok := sc.Scan.SignalByName(name)
	if !ok {
		return fault.Fault{}, false
	}
	out := fault.Fault{SA: f.SA, Site: fault.Site{Signal: s, Gate: -1, Pin: -1, FF: -1}}
	switch {
	case f.Site.IsStem():
		return out, true
	case f.Site.FF >= 0:
		// The D pin of the original flip-flop is now an input of the
		// scan mux; map to the corresponding mux AND gate pin.
		return fault.Fault{}, false
	default:
		// Branch on a gate pin: find the same-named gate in C_scan.
		g := sc.Orig.Gates[f.Site.Gate]
		outName := sc.Orig.SignalName(g.Out)
		so, ok := sc.Scan.SignalByName(outName)
		if !ok || sc.Scan.Signals[so].Kind != netlist.KindGate {
			return fault.Fault{}, false
		}
		gi := sc.Scan.Signals[so].Driver
		out.Site.Gate = gi
		out.Site.Pin = f.Site.Pin
		return out, true
	}
}
