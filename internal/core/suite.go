package core

import (
	"fmt"
	"io"
)

// SmallSuite lists the catalog circuits that run in seconds; it is the
// default for tests and examples.
var SmallSuite = []string{
	"s27", "s208", "s298", "s344", "s382", "s386", "s400", "s420",
	"s444", "s510", "s526", "b01", "b02", "b06",
}

// MediumSuite extends SmallSuite with the mid-sized circuits.
var MediumSuite = append(append([]string{}, SmallSuite...),
	"s641", "s820", "s953", "s1196", "s1488", "b03", "b09", "b10", "b11")

// FullSuite lists the circuits of the paper's evaluation (Tables 5/6),
// in table order. The catalog also carries the remaining small ITC-99
// designs (b05, b07, b08, b12, b13), runnable by name but excluded here
// so recorded full-suite results stay comparable to the paper's rows.
var FullSuite = []string{
	"s27", "s208", "s298", "s344", "s382", "s386", "s400", "s420",
	"s444", "s510", "s526", "s641", "s820", "s953", "s1196", "s1423",
	"s1488", "s5378", "s35932",
	"b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
}

// Table7Suite lists the circuits the paper's Table 7 reports on.
var Table7Suite = []string{
	"s298", "s344", "s382", "s400", "s526", "s641", "s820", "s1423",
	"s1488", "s5378",
	"b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11",
}

// Progress receives per-circuit notifications during a suite run; any
// field may be nil.
type Progress struct {
	// Log, when non-nil, receives human-readable progress lines.
	Log io.Writer
}

func (p Progress) logf(format string, args ...any) {
	if p.Log != nil {
		fmt.Fprintf(p.Log, format, args...)
	}
}

// RunGenerateSuite runs the generation flow over the named circuits and
// returns one row per circuit (Tables 5 and 6).
func RunGenerateSuite(names []string, cfg Config, prog Progress) ([]GenerateRow, error) {
	rows := make([]GenerateRow, 0, len(names))
	for _, name := range names {
		prog.logf("generate %s...\n", name)
		row, _, err := RunGenerate(name, cfg)
		if err != nil {
			return rows, fmt.Errorf("core: %s: %w", name, err)
		}
		prog.logf("  faults=%d fcov=%.2f%% len=%d->%d->%d baseline=%d\n",
			row.Faults, row.FCov, row.TestLen, row.RestorLen, row.OmitLen, row.BaselineCycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTranslateSuite runs the translation flow over the named circuits
// and returns one row per circuit (Table 7).
func RunTranslateSuite(names []string, cfg Config, prog Progress) ([]TranslateRow, error) {
	rows := make([]TranslateRow, 0, len(names))
	for _, name := range names {
		prog.logf("translate %s...\n", name)
		row, _, err := RunTranslate(name, cfg)
		if err != nil {
			return rows, fmt.Errorf("core: %s: %w", name, err)
		}
		prog.logf("  len=%d->%d->%d cycles=%d\n",
			row.TestLen, row.RestorLen, row.OmitLen, row.Cycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// GenerateTotals sums the omission lengths and baseline cycles over
// rows where the baseline ran, mirroring the paper's "total" rows.
func GenerateTotals(rows []GenerateRow) (omitTotal, baselineTotal int) {
	for _, r := range rows {
		if r.BaselineCycles > 0 {
			omitTotal += r.OmitLen
			baselineTotal += r.BaselineCycles
		}
	}
	return omitTotal, baselineTotal
}

// TranslateTotals sums the omission lengths and source-set cycles.
func TranslateTotals(rows []TranslateRow) (omitTotal, cycleTotal int) {
	for _, r := range rows {
		omitTotal += r.OmitLen
		cycleTotal += r.Cycles
	}
	return omitTotal, cycleTotal
}
