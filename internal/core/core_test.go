package core

import (
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/sim"
)

func TestRunGenerateS27(t *testing.T) {
	row, art, err := RunGenerate("s27", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Circ != "s27" || row.Inp != 6 || row.Stvr != 3 {
		t.Errorf("row header wrong: %+v", row)
	}
	if row.FCov < 100 {
		t.Errorf("s27 coverage = %.2f", row.FCov)
	}
	if !(row.OmitLen <= row.RestorLen && row.RestorLen <= row.TestLen) {
		t.Errorf("compaction did not monotonically shrink: %d -> %d -> %d",
			row.TestLen, row.RestorLen, row.OmitLen)
	}
	if row.OmitScan > row.OmitLen {
		t.Error("scan vector count exceeds sequence length")
	}
	if row.BaselineCycles <= 0 {
		t.Error("baseline cycles missing")
	}
	// The compacted sequence must still detect everything the raw
	// sequence detected.
	res := sim.Run(art.Scan.ScanCircuit(), art.Omitted, art.Faults, sim.Options{})
	if res.NumDetected() < art.Gen.NumDetected() {
		t.Errorf("compaction lost detections: %d < %d", res.NumDetected(), art.Gen.NumDetected())
	}
}

func TestRunGenerateSkipFlags(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipBaseline = true
	cfg.SkipCompaction = true
	row, art, err := RunGenerate("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.BaselineCycles != 0 || row.OmitLen != 0 {
		t.Errorf("skip flags ignored: %+v", row)
	}
	if art.Restored != nil || art.Omitted != nil {
		t.Error("artifacts present despite SkipCompaction")
	}
}

func TestRunGenerateUnknownCircuit(t *testing.T) {
	if _, _, err := RunGenerate("nope", DefaultConfig()); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestRunTranslateS27(t *testing.T) {
	row, art, err := RunTranslate("s27", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Translated length equals conventional cycles by construction:
	// every scan shift is an explicit vector.
	if row.TestLen != row.Cycles {
		t.Errorf("translated length %d != conventional cycles %d", row.TestLen, row.Cycles)
	}
	if !(row.OmitLen <= row.RestorLen && row.RestorLen <= row.TestLen) {
		t.Errorf("compaction not monotone: %d -> %d -> %d", row.TestLen, row.RestorLen, row.OmitLen)
	}
	if row.OmitLen >= row.Cycles && row.Cycles > 40 {
		t.Errorf("no gain over conventional application: %d >= %d", row.OmitLen, row.Cycles)
	}
	if len(art.Base.Tests) == 0 {
		t.Error("baseline produced no tests")
	}
}

// TestTranslationPreservesDetections verifies the Section 3 guarantee
// end to end on s27.
func TestTranslationPreservesDetections(t *testing.T) {
	cfg := DefaultConfig()
	_, art, err := RunTranslate("s27", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := circuits.Load("s27")
	origFaults := fault.Universe(c, cfg.Collapse)
	if err := VerifyTranslation(art.Scan, art.Base, origFaults, art.Translated); err != nil {
		t.Error(err)
	}
}

func TestLiftFault(t *testing.T) {
	c, _ := circuits.Load("s27")
	sc, _ := scan.Insert(c)
	for _, f := range fault.Universe(c, false) {
		g, ok := liftFault(sc, f)
		if f.Site.FF >= 0 {
			if ok {
				t.Error("FF D-pin fault should not lift (site moved into the mux)")
			}
			continue
		}
		if !ok {
			t.Errorf("fault %s did not lift", f.Name(c))
			continue
		}
		if sc.Scan.SignalName(g.Site.Signal) != c.SignalName(f.Site.Signal) {
			t.Errorf("lifted fault signal mismatch for %s", f.Name(c))
		}
		if g.SA != f.SA {
			t.Error("stuck-at value changed in lift")
		}
	}
}

func TestRunGenerateSuiteCollectsRows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipBaseline = true
	var log strings.Builder
	rows, err := RunGenerateSuite([]string{"s27", "b02"}, cfg, Progress{Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Circ != "s27" || rows[1].Circ != "b02" {
		t.Fatalf("rows = %+v", rows)
	}
	if !strings.Contains(log.String(), "generate s27") {
		t.Error("progress log empty")
	}
}

func TestTotals(t *testing.T) {
	rows := []GenerateRow{
		{OmitLen: 10, BaselineCycles: 20},
		{OmitLen: 5, BaselineCycles: 0}, // NA row: excluded
		{OmitLen: 7, BaselineCycles: 9},
	}
	omit, base := GenerateTotals(rows)
	if omit != 17 || base != 29 {
		t.Errorf("totals = %d, %d", omit, base)
	}
	trows := []TranslateRow{{OmitLen: 3, Cycles: 5}, {OmitLen: 4, Cycles: 6}}
	o, cy := TranslateTotals(trows)
	if o != 7 || cy != 11 {
		t.Errorf("translate totals = %d, %d", o, cy)
	}
}
