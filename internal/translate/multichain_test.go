package translate

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/combatpg"
	"repro/internal/fault"
	"repro/internal/scan"
	"repro/internal/sim"
)

// TestTranslateOnMultipleChains: translation through the Design
// interface works for multi-chain circuits, with scan-in blocks of
// MaxLen cycles.
func TestTranslateOnMultipleChains(t *testing.T) {
	c, err := circuits.Load("s298")
	if err != nil {
		t.Fatal(err)
	}
	ch, err := scan.InsertChains(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Universe(c, true)
	set := combatpg.GenerateTestSet(c, faults, 3)
	tests := FromFrameTests(set.Tests)
	seq, err := Translate(ch, tests, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := Cycles(tests, ch.MaxLen())
	if len(seq) != want {
		t.Fatalf("translated length %d, want %d", len(seq), want)
	}
	// The multi-chain translation must preserve detection of the stem
	// faults the conventional set covers.
	var lifted []fault.Fault
	for fi, f := range faults {
		if set.DetectedBy[fi] < 0 || !f.Site.IsStem() {
			continue
		}
		s, ok := ch.Scan.SignalByName(c.SignalName(f.Site.Signal))
		if !ok {
			t.Fatalf("signal missing in C_scan")
		}
		lifted = append(lifted, fault.Fault{Site: fault.Site{Signal: s, Gate: -1, Pin: -1, FF: -1}, SA: f.SA})
	}
	res := sim.Run(ch.Scan, seq, lifted, sim.Options{})
	for i := range lifted {
		if !res.Detected(i) {
			t.Errorf("fault %s lost in multi-chain translation", lifted[i].Name(ch.Scan))
		}
	}
	// Multi-chain conventional application is cheaper than single
	// chain for the same test count.
	single := Cycles(tests, c.NumFFs())
	if want >= single {
		t.Errorf("multi-chain cycles %d not below single-chain %d", want, single)
	}
}
