package translate

import (
	"testing"

	"repro/internal/circuits"
	"repro/internal/combatpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
)

func s27Scan(t *testing.T) *scan.Circuit {
	t.Helper()
	c, err := circuits.Load("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func mustVec(t *testing.T, s string) logic.Vector {
	t.Helper()
	v, err := logic.ParseVector(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// paperTestSet is the paper's Table 2 test set for s27_scan.
func paperTestSet(t *testing.T) []ScanTest {
	return []ScanTest{
		{SI: mustVec(t, "011"), T: logic.Sequence{mustVec(t, "0000")}},
		{SI: mustVec(t, "011"), T: logic.Sequence{mustVec(t, "1101")}},
		{SI: mustVec(t, "000"), T: logic.Sequence{mustVec(t, "1010")}},
		{SI: mustVec(t, "110"), T: logic.Sequence{mustVec(t, "0100"), mustVec(t, "0111")}},
	}
}

func TestCyclesMatchesPaperExample(t *testing.T) {
	// Four scan-ins of 3 cycles, five functional vectors, and the
	// 3-cycle final scan-out: 12 + 5 + 3 = 20.
	tests := paperTestSet(t)
	want := 4*3 + (1 + 1 + 1 + 2) + 3
	if got := Cycles(tests, 3); got != want {
		t.Errorf("Cycles = %d, want %d", got, want)
	}
}

func TestTranslateStructureMatchesTable3(t *testing.T) {
	sc := s27Scan(t)
	tests := paperTestSet(t)
	seq, err := Translate(sc, tests, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != Cycles(tests, sc.NSV) {
		t.Fatalf("length %d != cycles %d", len(seq), Cycles(tests, sc.NSV))
	}
	// Expected scan_sel pattern per Table 3: 111 0 111 0 111 0 111 00 111.
	sel := make([]byte, len(seq))
	for i, v := range seq {
		if v[sc.SelPI] == logic.One {
			sel[i] = '1'
		} else {
			sel[i] = '0'
		}
	}
	if got, want := string(sel), "111011101110111001"+"11"; got != want {
		t.Errorf("scan_sel pattern = %s, want %s", got, want)
	}
	// Every value must be specified after random fill.
	for _, v := range seq {
		if !v.Specified() {
			t.Fatal("unfilled X in translated sequence")
		}
	}
}

func TestTranslateScanInValuesReachState(t *testing.T) {
	sc := s27Scan(t)
	tests := []ScanTest{{SI: mustVec(t, "011"), T: logic.Sequence{mustVec(t, "0000")}}}
	seq, err := Translate(sc, tests, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(sc.Scan)
	for _, v := range seq[:sc.NSV] {
		m.Step(v)
	}
	st := m.StateSlot(0)
	want := []logic.Value{logic.Zero, logic.One, logic.One}
	for i := range want {
		if st[i] != want[i] {
			t.Errorf("FF %d = %v, want %v", i, st[i], want[i])
		}
	}
}

// TestTranslationGuarantee: the translated sequence detects, on C_scan,
// every original-circuit stem fault the conventional test set detects.
func TestTranslationGuarantee(t *testing.T) {
	sc := s27Scan(t)
	c := sc.Orig
	faults := fault.Universe(c, true)
	set := combatpg.GenerateTestSet(c, faults, 3)
	tests := FromFrameTests(set.Tests)
	seq, err := Translate(sc, tests, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Lift stem faults onto C_scan by name and fault-simulate.
	var lifted []fault.Fault
	var which []int
	for fi, f := range faults {
		if set.DetectedBy[fi] < 0 || !f.Site.IsStem() {
			continue
		}
		s, ok := sc.Scan.SignalByName(c.SignalName(f.Site.Signal))
		if !ok {
			t.Fatalf("signal %s missing in C_scan", c.SignalName(f.Site.Signal))
		}
		lifted = append(lifted, fault.Fault{Site: fault.Site{Signal: s, Gate: -1, Pin: -1, FF: -1}, SA: f.SA})
		which = append(which, fi)
	}
	res := sim.Run(sc.Scan, seq, lifted, sim.Options{})
	for i := range lifted {
		if !res.Detected(i) {
			t.Errorf("fault %s lost in translation", lifted[i].Name(sc.Scan))
		}
	}
	if len(which) == 0 {
		t.Fatal("no faults checked")
	}
}

func TestFromFrameTests(t *testing.T) {
	in := []combatpg.Test{{State: mustVec(t, "01"), Vector: mustVec(t, "10")}}
	out := FromFrameTests(in)
	if len(out) != 1 || out[0].SI.String() != "01" || len(out[0].T) != 1 || out[0].T[0].String() != "10" {
		t.Fatalf("converted = %+v", out)
	}
	// Mutation isolation.
	out[0].SI[0] = logic.One
	if in[0].State[0] != logic.Zero {
		t.Error("FromFrameTests aliases input")
	}
}

func TestTranslateValidation(t *testing.T) {
	sc := s27Scan(t)
	if _, err := Translate(sc, []ScanTest{{SI: mustVec(t, "01"), T: logic.Sequence{mustVec(t, "0000")}}}, 1); err == nil {
		t.Error("short SI accepted")
	}
	if _, err := Translate(sc, []ScanTest{{SI: mustVec(t, "011")}}, 1); err == nil {
		t.Error("empty T accepted")
	}
	if _, err := Translate(sc, []ScanTest{{SI: mustVec(t, "011"), T: logic.Sequence{mustVec(t, "00")}}}, 1); err == nil {
		t.Error("narrow functional vector accepted")
	}
}

func TestTranslateEmptyTestSet(t *testing.T) {
	sc := s27Scan(t)
	seq, err := Translate(sc, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Just the final scan-out block.
	if len(seq) != sc.NSV {
		t.Errorf("empty set translated to %d vectors, want %d", len(seq), sc.NSV)
	}
}
