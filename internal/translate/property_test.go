// Property test for the paper's Section 3 guarantee, run from an
// external test package so it can lean on the internal/xcheck harness
// (xcheck itself imports translate, ruling out an in-package test).
package translate_test

import (
	"fmt"
	"testing"

	"repro/internal/circuits"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/translate"
	"repro/internal/xcheck"
)

// TestTranslatePreservesDetectedSet: over several synthetic catalog
// circuits and random conventional test sets, the translated flat
// sequence applied to C_scan detects every liftable stem fault that the
// (idealized, conservative) conventional application of the same tests
// detects — translation never loses a detection.
func TestTranslatePreservesDetectedSet(t *testing.T) {
	circuitNames := []string{"s208", "s298", "b01", "b06"}
	seeds := []uint64{11, 12, 13}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, name := range circuitNames {
		e, ok := circuits.Lookup(name)
		if !ok || !e.Synthetic {
			t.Fatalf("%s is not a synthetic catalog circuit", name)
		}
		c, err := circuits.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := scan.Insert(c)
		if err != nil {
			t.Fatal(err)
		}
		orig, lifted := xcheck.LiftedStemFaults(d)
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				tests := randomTests(d, seed)
				seq, err := translate.Translate(d, tests, seed)
				if err != nil {
					t.Fatal(err)
				}
				det := sim.Run(d.Scan, seq, lifted, sim.Options{}).DetectedAt
				conv, kept := 0, 0
				for i := range orig {
					if !xcheck.ConventionalDetect(d.Orig, tests, orig[i]) {
						continue
					}
					conv++
					if det[i] == sim.NotDetected {
						t.Errorf("fault %s: detected conventionally, missed by the translated sequence",
							lifted[i].Name(d.Scan))
						continue
					}
					kept++
				}
				if conv == 0 {
					t.Fatal("conventional application detected nothing; test set too weak to mean anything")
				}
				t.Logf("%d conventionally detected stem faults, %d preserved by translation", conv, kept)
			})
		}
	}
}

// randomTests builds a small fully-specified conventional test set.
func randomTests(d *scan.Circuit, seed uint64) []translate.ScanTest {
	rng := logic.NewRandFiller(seed ^ 0xA5A5A5A5)
	tests := make([]translate.ScanTest, 2+rng.Intn(3))
	for ti := range tests {
		si := make(logic.Vector, d.NSV)
		for i := range si {
			si[i] = rng.Next()
		}
		T := make(logic.Sequence, 1+rng.Intn(3))
		for vi := range T {
			v := make(logic.Vector, d.Orig.NumInputs())
			for i := range v {
				v[i] = rng.Next()
			}
			T[vi] = v
		}
		tests[ti] = translate.ScanTest{SI: si, T: T}
	}
	return tests
}
