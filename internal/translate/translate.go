// Package translate implements the paper's Section 3: converting a
// conventional scan test set — tests of the form (SI, T) where SI is
// scanned in, T is a sequence of primary input vectors, and the final
// state is scanned out — into a single flat test sequence for C_scan in
// which scan operations are explicit vectors with scan_sel = 1.
//
// The scan-in of each test doubles as the scan-out of the previous one,
// exactly as in the paper's Table 3, and a trailing N_SV-vector block
// scans out the final state. Unspecified positions are filled with
// pseudo-random binary values.
package translate

import (
	"fmt"

	"repro/internal/combatpg"
	"repro/internal/logic"
	"repro/internal/scan"
)

// ScanTest is one conventional scan-based test (SI, T).
type ScanTest struct {
	// SI is the scanned-in state, SI[i] being the value flip-flop i
	// holds when the functional part of the test starts.
	SI logic.Vector
	// T is the primary input sequence applied after scan-in, over the
	// original circuit's inputs. It must contain at least one vector.
	T logic.Sequence
}

// FromFrameTests converts first-approach combinational tests (t_s, t_I)
// into scan tests with |T| = 1.
func FromFrameTests(tests []combatpg.Test) []ScanTest {
	out := make([]ScanTest, len(tests))
	for i, t := range tests {
		out[i] = ScanTest{SI: t.State.Clone(), T: logic.Sequence{t.Vector.Clone()}}
	}
	return out
}

// Cycles returns the number of clock cycles conventional application of
// the test set takes: a complete scan-in per test (overlapped with the
// previous test's scan-out) plus the functional vectors, plus the final
// scan-out. nsv is the cost of one complete scan operation — the chain
// length for a single chain, the longest chain for multiple chains.
func Cycles(tests []ScanTest, nsv int) int {
	total := nsv // final scan-out
	for _, t := range tests {
		total += nsv + len(t.T)
	}
	return total
}

// Translate flattens the test set into one test sequence for sc.Scan.
// The result is guaranteed to detect every fault the conventional
// application of tests detects (the paper, Section 3); unspecified
// values are filled from seed.
func Translate(sc scan.Design, tests []ScanTest, seed uint64) (logic.Sequence, error) {
	var seq logic.Sequence
	for ti, t := range tests {
		if len(t.SI) != sc.NumStateVars() {
			return nil, fmt.Errorf("translate: test %d: SI width %d, chain length %d", ti, len(t.SI), sc.NumStateVars())
		}
		if len(t.T) == 0 {
			return nil, fmt.Errorf("translate: test %d: empty primary input sequence", ti)
		}
		scanin, err := sc.ScanInSequence(t.SI)
		if err != nil {
			return nil, fmt.Errorf("translate: test %d: %w", ti, err)
		}
		seq = append(seq, scanin...)
		for _, v := range t.T {
			if len(v) != sc.OrigCircuit().NumInputs() {
				return nil, fmt.Errorf("translate: test %d: functional vector width %d, want %d",
					ti, len(v), sc.OrigCircuit().NumInputs())
			}
			seq = append(seq, sc.FunctionalVector(v))
		}
	}
	// Final scan-out with arbitrary scan inputs.
	seq = append(seq, sc.ScanOutSequence()...)
	seq.FillX(logic.NewRandFiller(seed))
	return seq, nil
}
