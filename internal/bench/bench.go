// Package bench reads and writes circuits in the ISCAS-89 ".bench"
// format, the standard interchange format for the benchmark circuits the
// paper evaluates on.
//
// The accepted grammar (case-insensitive keywords, '#' comments):
//
//	INPUT(name)
//	OUTPUT(name)
//	name = DFF(d)
//	name = GATE(in1, in2, ...)   GATE in {BUF, NOT, AND, NAND, OR, NOR, XOR, XNOR}
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// Parse reads a .bench description and returns the built circuit.
// name becomes the circuit name. Malformed input — truncated lines,
// duplicate signal definitions, self-referential combinational gates —
// is reported as an error naming the offending line, never a panic.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	p := &parser{b: netlist.NewBuilder(name), defined: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		p.line++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.parseLine(line); err != nil {
			return nil, fmt.Errorf("bench: line %d: %w", p.line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return p.b.Build()
}

// ParseString is Parse on a string.
func ParseString(text, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(text), name)
}

// parser carries the per-file state Parse needs to report positioned
// errors the Builder would otherwise only catch (without a line number)
// at Build time.
type parser struct {
	b       *netlist.Builder
	defined map[string]int // driven signal name -> defining line
	line    int
}

// define records that name is driven on the current line, rejecting a
// second definition with a pointer to the first.
func (p *parser) define(name string) error {
	if prev, ok := p.defined[name]; ok {
		return fmt.Errorf("signal %q already defined at line %d", name, prev)
	}
	p.defined[name] = p.line
	return nil
}

func (p *parser) parseLine(line string) error {
	upper := strings.ToUpper(line)
	switch {
	case strings.HasPrefix(upper, "INPUT"):
		arg, err := parenArg(line[len("INPUT"):])
		if err != nil {
			return err
		}
		if err := p.define(arg); err != nil {
			return err
		}
		p.b.AddInput(arg)
		return nil
	case strings.HasPrefix(upper, "OUTPUT"):
		arg, err := parenArg(line[len("OUTPUT"):])
		if err != nil {
			return err
		}
		p.b.MarkOutput(arg)
		return nil
	}
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("unrecognized statement %q", line)
	}
	out := strings.TrimSpace(line[:eq])
	if err := checkName(out); err != nil {
		return fmt.Errorf("bad output name before '=': %w", err)
	}
	rhs := strings.TrimSpace(line[eq+1:])
	open := strings.IndexByte(rhs, '(')
	closeP := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeP < open {
		return fmt.Errorf("malformed gate expression %q (truncated line?)", rhs)
	}
	fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	var args []string
	for _, a := range strings.Split(rhs[open+1:closeP], ",") {
		a = strings.TrimSpace(a)
		if err := checkName(a); err != nil {
			return fmt.Errorf("bad operand in %q: %w", rhs, err)
		}
		args = append(args, a)
	}
	if err := p.define(out); err != nil {
		return err
	}
	if fn == "DFF" {
		if len(args) != 1 {
			return fmt.Errorf("DFF %q requires exactly 1 input", out)
		}
		// q = DFF(q) is a legal hold register; the flip-flop breaks
		// the loop, so no self-reference check here.
		p.b.AddFF(out, args[0])
		return nil
	}
	t, err := netlist.ParseGateType(fn)
	if err != nil {
		return err
	}
	for _, a := range args {
		if a == out {
			return fmt.Errorf("gate %q reads its own output (combinational self-loop)", out)
		}
	}
	p.b.AddGate(t, out, args...)
	return nil
}

// checkName rejects empty names and names containing characters the
// grammar uses as structure — the usual residue of truncated or
// mis-split lines.
func checkName(s string) error {
	if s == "" {
		return fmt.Errorf("empty signal name")
	}
	if i := strings.IndexAny(s, " \t(),="); i >= 0 {
		return fmt.Errorf("signal name %q contains %q", s, s[i])
	}
	return nil
}

func parenArg(s string) (string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return "", fmt.Errorf("expected parenthesized name, got %q (truncated line?)", s)
	}
	arg := strings.TrimSpace(s[1 : len(s)-1])
	if err := checkName(arg); err != nil {
		return "", fmt.Errorf("in %q: %w", s, err)
	}
	return arg, nil
}

// Write emits the circuit in .bench format. Gates are written in
// evaluation order; the output is stable for a given circuit.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flip-flops, %d gates\n",
		c.NumInputs(), c.NumOutputs(), c.NumFFs(), c.NumGates())
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.SignalName(in))
	}
	for _, out := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.SignalName(out))
	}
	fmt.Fprintln(bw)
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.SignalName(ff.Q), c.SignalName(ff.D))
	}
	for _, gi := range c.Order {
		g := c.Gates[gi]
		names := make([]string, len(g.In))
		for i, in := range g.In {
			names[i] = c.SignalName(in)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.SignalName(g.Out), g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// Format returns the .bench text of the circuit.
func Format(c *netlist.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		// strings.Builder never errors; keep the API honest anyway.
		panic(err)
	}
	return sb.String()
}

// Names returns all signal names of the circuit, sorted, mainly for
// diagnostics and tests.
func Names(c *netlist.Circuit) []string {
	names := make([]string, len(c.Signals))
	for i, s := range c.Signals {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
