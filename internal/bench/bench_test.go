package bench

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

const tiny = `
# a tiny circuit
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
n1 = AND(a, b)   # inline comment
d  =  OR ( n1 , q )
y = NOT(q)
`

func TestParseTiny(t *testing.T) {
	c, err := ParseString(tiny, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 2 || c.NumOutputs() != 1 || c.NumFFs() != 1 || c.NumGates() != 3 {
		t.Fatalf("parsed sizes wrong: %+v", c.Stats())
	}
	d, ok := c.SignalByName("d")
	if !ok {
		t.Fatal("signal d missing")
	}
	g := c.Gates[c.Signals[d].Driver]
	if g.Type != netlist.OR || len(g.In) != 2 {
		t.Errorf("d gate = %v/%d", g.Type, len(g.In))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"INPUT a",
		"INPUT()",
		"g = FROB(a)",
		"garbage line",
		"g = AND(a,)",
		"q = DFF(a, b)",
	}
	for _, text := range cases {
		full := "INPUT(a)\nOUTPUT(g)\n" + text + "\n"
		if _, err := Parse(strings.NewReader(full), "bad"); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := ParseString(tiny, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(c)
	c2, err := ParseString(text, "tiny")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if c2.NumInputs() != c.NumInputs() || c2.NumGates() != c.NumGates() ||
		c2.NumFFs() != c.NumFFs() || c2.NumOutputs() != c.NumOutputs() {
		t.Error("round trip changed circuit sizes")
	}
	// Idempotence: formatting the re-parsed circuit gives identical text.
	if text2 := Format(c2); text2 != text {
		t.Error("Format not stable across round trip")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	c, err := ParseString("input(a)\noutput(y)\ny = not(a)\n", "ci")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 || c.Gates[0].Type != netlist.NOT {
		t.Error("lower-case keywords not handled")
	}
}

func TestNames(t *testing.T) {
	c, _ := ParseString(tiny, "tiny")
	names := Names(c)
	if len(names) != len(c.Signals) {
		t.Fatal("Names length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("Names not sorted")
		}
	}
}
