package bench

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the .bench parser. The
// contract under fuzzing: Parse never panics, returns either a circuit
// or a positioned error, and any circuit it does accept survives a
// Format -> Parse round trip with identical sizes. The seed corpus in
// testdata/fuzz/FuzzParse covers the known malformed classes (truncated
// lines, duplicate definitions, self-referential gates, combinational
// cycles, undriven nets) alongside well-formed circuits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Well-formed, with comments and loose spacing.
		"# tiny\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(d)\nn1 = AND(a, b)\nd  =  OR ( n1 , q )\ny = NOT(q)\n",
		// Legal DFF self-reference (hold register).
		"INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n",
		// Truncated lines.
		"INPUT(a\n",
		"INPUT\n",
		"y = AND(a, b\n",
		"y =\n",
		"= AND(a, b)\n",
		// Duplicate definitions.
		"INPUT(a)\nINPUT(a)\n",
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n",
		// Self-referential combinational gate.
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, y)\n",
		// Combinational cycle through two gates.
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = OR(a, y)\n",
		// Undriven net.
		"INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n",
		// Assorted garbage.
		"garbage line\n",
		"g = FROB(a)\n",
		"q = DFF(a, b)\n",
		"\x00\xff(=\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseString(text, "fuzz")
		if err != nil {
			if c != nil {
				t.Fatalf("Parse returned both a circuit and an error: %v", err)
			}
			return
		}
		// Accepted input must round-trip through the writer.
		out := Format(c)
		c2, err := ParseString(out, "fuzz")
		if err != nil {
			t.Fatalf("re-parse of formatted output failed: %v\ninput: %q\nformatted: %q", err, text, out)
		}
		if c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() ||
			c2.NumFFs() != c.NumFFs() || c2.NumGates() != c.NumGates() {
			t.Fatalf("round trip changed sizes: %+v -> %+v\ninput: %q", c.Stats(), c2.Stats(), text)
		}
	})
}

// TestParsePositionedErrors pins the line-numbered diagnostics for each
// malformed class the fuzz corpus covers.
func TestParsePositionedErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"truncated-paren", "INPUT(a)\nINPUT(b\n", "line 2"},
		{"truncated-expr", "INPUT(a)\ny = AND(a,\n", "line 2"},
		{"missing-output-name", "INPUT(a)\n= AND(a, a)\n", "line 2"},
		{"dup-input", "INPUT(a)\nINPUT(a)\n", `"a" already defined at line 1`},
		{"dup-gate", "INPUT(a)\ny = NOT(a)\ny = BUF(a)\n", `"y" already defined at line 2`},
		{"dup-mixed", "INPUT(a)\nq = DFF(a)\nINPUT(q)\n", `"q" already defined at line 2`},
		{"self-loop", "INPUT(a)\ny = AND(a, y)\n", "reads its own output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.text, "bad")
			if err == nil {
				t.Fatalf("accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestParseDFFSelfReference checks the one legal self-reference: a
// flip-flop holding its own value.
func TestParseDFFSelfReference(t *testing.T) {
	c, err := ParseString("INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n", "hold")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFFs() != 1 {
		t.Fatalf("want 1 FF, got %d", c.NumFFs())
	}
}
