package bench_test

import (
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/circuits"
)

// TestRoundTripProperty: Format/Parse is the identity (up to stable
// re-formatting) for randomly synthesized circuits.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := circuits.Synthesize(circuits.Params{
			Name: "rt", Inputs: 3, FFs: 4, Gates: 30, Outputs: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		text := bench.Format(c)
		c2, err := bench.ParseString(text, "rt")
		if err != nil {
			return false
		}
		if c2.NumInputs() != c.NumInputs() || c2.NumOutputs() != c.NumOutputs() ||
			c2.NumFFs() != c.NumFFs() || c2.NumGates() != c.NumGates() {
			return false
		}
		// Stable: re-formatting the re-parsed circuit is identical.
		return bench.Format(c2) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
