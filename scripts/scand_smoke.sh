#!/bin/sh
# scand_smoke.sh — end-to-end smoke of the ATPG job server: build the
# binaries, start scand on an ephemeral port, run an s298 generate job
# through the HTTP API with scanctl, validate the job's streamed metrics
# with metricscheck, exercise the sharded simulate flow against an
# unsharded reference for byte-identity, SIGTERM the server and require
# a clean drain — then a worker-fleet topology: a remote-only scand
# with two scanworker processes running a sharded compact job, one
# worker SIGKILLed mid-job, and the post-crash result byte-compared
# against the single-process reference. Used by `make scand-smoke` and
# CI.
set -eu

GO=${GO:-go}
work=$(mktemp -d /tmp/scand-smoke.XXXXXX)
pid=""
wpids=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    for w in $wpids; do kill -9 "$w" 2>/dev/null || true; done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building scand, scanctl, scanworker, metricscheck"
$GO build -o "$work/scand" ./cmd/scand
$GO build -o "$work/scanctl" ./cmd/scanctl
$GO build -o "$work/scanworker" ./cmd/scanworker
$GO build -o "$work/metricscheck" ./cmd/metricscheck

echo "== starting scand"
"$work/scand" -addr 127.0.0.1:0 -addr-file "$work/addr" \
    -data "$work/data" -workers 2 2>"$work/scand.log" &
pid=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr" ] && break
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "scand never wrote its address"; cat "$work/scand.log"; exit 1; }
server="http://$(cat "$work/addr")"
echo "   serving on $server"

ctl() { "$work/scanctl" -server "$server" "$@"; }

echo "== health"
curl -sf "$server/healthz" >/dev/null

echo "== generate job over HTTP (s298), watching the event stream"
ctl submit -flow generate -circuits s298 -watch >"$work/events.jsonl"

echo "== validating the streamed events with metricscheck"
"$work/metricscheck" "$work/events.jsonl"

echo "== sharded simulate equals unsharded (byte-identical results)"
ctl submit -flow simulate -circuits s298 -seq-len 64 -watch >/dev/null
ctl submit -flow simulate -circuits s298 -seq-len 64 -partitions 3 -watch >/dev/null
ctl result job-0002 >"$work/unsharded.json"
ctl result job-0003 >"$work/sharded.json"
cmp "$work/unsharded.json" "$work/sharded.json" || {
    echo "sharded result differs from unsharded"; exit 1; }

echo "== single-process compact reference (restore + chunked omission)"
ctl submit -flow compact -circuits s298,s344 -seq-len 96 -omit-shards 2 -watch >/dev/null
ctl result job-0004 >"$work/compact-ref.json"

echo "== job listing"
ctl list

echo "== SIGTERM drain"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "scand did not drain"; exit 1; }
    sleep 0.1
done
pid=""
grep -q "drained; all jobs settled" "$work/scand.log" || {
    echo "scand log missing drain confirmation:"; cat "$work/scand.log"; exit 1; }

echo "== worker-fleet topology: remote-only scand + two scanworkers"
"$work/scand" -addr 127.0.0.1:0 -addr-file "$work/addr2" \
    -data "$work/data2" -workers -1 -lease-ttl 2s 2>"$work/scand2.log" &
pid=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr2" ] && break
    sleep 0.1
done
[ -s "$work/addr2" ] || { echo "fleet scand never wrote its address"; cat "$work/scand2.log"; exit 1; }
server="http://$(cat "$work/addr2")"
echo "   serving on $server (no local workers)"

"$work/scanworker" -server "$server" -name doomed -poll 50ms \
    -data "$work/w1" 2>"$work/w1.log" &
w1=$!
wpids="$w1"
"$work/scanworker" -server "$server" -name survivor -poll 50ms \
    -data "$work/w2" 2>"$work/w2.log" &
w2=$!
wpids="$w1 $w2"

echo "== sharded compact job on the fleet, SIGKILLing one worker mid-job"
ctl submit -flow compact -circuits s298,s344 -seq-len 96 -omit-shards 2 >/dev/null
sleep 0.4
kill -9 "$w1"
echo "   killed worker 'doomed' (pid $w1); lease must expire and its task re-run"
ctl watch job-0001 >/dev/null || { echo "fleet compact job failed"; cat "$work/w2.log"; exit 1; }
ctl result job-0001 >"$work/compact-fleet.json"
cmp "$work/compact-ref.json" "$work/compact-fleet.json" || {
    echo "post-crash fleet result differs from single-process reference"; exit 1; }

echo "== fleet view"
ctl top -once

kill "$w2" 2>/dev/null || true
wait "$w2" 2>/dev/null || true
wpids=""
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "fleet scand did not drain"; exit 1; }
    sleep 0.1
done
pid=""

echo "scand smoke OK"
