#!/bin/sh
# scand_smoke.sh — end-to-end smoke of the ATPG job server: build the
# binaries, start scand on an ephemeral port, run an s298 generate job
# through the HTTP API with scanctl, validate the job's streamed metrics
# with metricscheck, exercise the sharded simulate flow against an
# unsharded reference for byte-identity, then SIGTERM the server and
# require a clean drain. Used by `make scand-smoke` and CI.
set -eu

GO=${GO:-go}
work=$(mktemp -d /tmp/scand-smoke.XXXXXX)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== building scand, scanctl, metricscheck"
$GO build -o "$work/scand" ./cmd/scand
$GO build -o "$work/scanctl" ./cmd/scanctl
$GO build -o "$work/metricscheck" ./cmd/metricscheck

echo "== starting scand"
"$work/scand" -addr 127.0.0.1:0 -addr-file "$work/addr" \
    -data "$work/data" -workers 2 2>"$work/scand.log" &
pid=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr" ] && break
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "scand never wrote its address"; cat "$work/scand.log"; exit 1; }
server="http://$(cat "$work/addr")"
echo "   serving on $server"

ctl() { "$work/scanctl" -server "$server" "$@"; }

echo "== health"
curl -sf "$server/healthz" >/dev/null

echo "== generate job over HTTP (s298), watching the event stream"
ctl submit -flow generate -circuits s298 -watch >"$work/events.jsonl"

echo "== validating the streamed events with metricscheck"
"$work/metricscheck" "$work/events.jsonl"

echo "== sharded simulate equals unsharded (byte-identical results)"
ctl submit -flow simulate -circuits s298 -seq-len 64 -watch >/dev/null
ctl submit -flow simulate -circuits s298 -seq-len 64 -partitions 3 -watch >/dev/null
ctl result job-0002 >"$work/unsharded.json"
ctl result job-0003 >"$work/sharded.json"
cmp "$work/unsharded.json" "$work/sharded.json" || {
    echo "sharded result differs from unsharded"; exit 1; }

echo "== job listing"
ctl list

echo "== SIGTERM drain"
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "scand did not drain"; exit 1; }
    sleep 0.1
done
pid=""
grep -q "drained; all jobs settled" "$work/scand.log" || {
    echo "scand log missing drain confirmation:"; cat "$work/scand.log"; exit 1; }

echo "scand smoke OK"
