package scanatpg_test

import (
	"bytes"
	"fmt"

	scanatpg "repro"
)

// Building a circuit programmatically and running the whole flow.
func Example_customCircuit() {
	b := scanatpg.NewBuilder("demo")
	b.AddInput("a")
	b.AddInput("en")
	b.AddGate(scanatpg.XorGate, "d", "a", "q")
	b.AddFF("q", "d")
	b.AddGate(scanatpg.AndGate, "y", "q", "en")
	b.MarkOutput("y")
	c, err := b.Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	sc, _ := scanatpg.InsertScan(c)
	faults := scanatpg.Faults(sc.Scan, true)
	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
	fmt.Println(gen.NumDetected() > 0)
	// Output: true
}

// Translating a conventional test set and compacting it (Section 3 + 4).
func ExampleTranslate() {
	c, _ := scanatpg.LoadBenchmark("s27")
	sc, _ := scanatpg.InsertScan(c)
	tests := scanatpg.FirstApproachTestSet(c, scanatpg.Faults(c, true), 1)
	seq, _ := scanatpg.Translate(sc, tests, 1)
	// Translation is cycle-neutral: the flat sequence is exactly as
	// long as the conventional schedule.
	fmt.Println(len(seq) == scanatpg.ConventionalCycles(tests, sc.NSV))
	// Output: true
}

// Segmenting a compacted sequence into scan operations shows the
// limited scan operations the paper is about.
func ExampleSplitProgram() {
	c, _ := scanatpg.LoadBenchmark("s27")
	sc, _ := scanatpg.InsertScan(c)
	faults := scanatpg.Faults(sc.Scan, true)
	gen := scanatpg.Generate(sc, faults, scanatpg.GenerateOptions{Seed: 1})
	st := scanatpg.SplitProgram(sc, gen.Sequence).Stats()
	fmt.Println(st.LimitedScanOps > 0, st.CompleteScanOps == 0)
	// Output: true true
}

// Multiple scan chains shorten scan operations with no algorithm
// changes.
func ExampleInsertScanChains() {
	c, _ := scanatpg.LoadBenchmark("s298")
	ch, _ := scanatpg.InsertScanChains(c, 4)
	fmt.Println(ch.NumChains(), ch.MaxLen())
	// Output: 4 4
}

// Observing a run: the flight recorder streams phase events as JSONL
// to any writer and aggregates named counters, without changing any
// result.
func ExampleNewMetricsRecorder() {
	c, _ := scanatpg.LoadBenchmark("s27")
	sc, _ := scanatpg.InsertScan(c)
	faults := scanatpg.Faults(sc.Scan, true)
	var buf bytes.Buffer
	rec := scanatpg.NewMetricsRecorder(&buf, scanatpg.MetricsRecorderOptions{Program: "example"})
	opts := scanatpg.GenerateOptions{Seed: 1}
	opts.Obs = rec
	scanatpg.Generate(sc, faults, opts)
	rec.Close()
	fmt.Println(scanatpg.ValidateMetrics(&buf) == nil,
		rec.Snapshot().Counters["generate.attempts"] > 0)
	// Output: true true
}

// Budgeting a run: a Control in the options stops the generator
// cleanly at the attempt cap with a valid partial result a checkpoint
// could continue.
func ExampleGenerate_control() {
	c, _ := scanatpg.LoadBenchmark("s27")
	sc, _ := scanatpg.InsertScan(c)
	faults := scanatpg.Faults(sc.Scan, true)
	opts := scanatpg.GenerateOptions{Seed: 1}
	opts.Control = &scanatpg.Control{Budget: scanatpg.Budget{MaxAttempts: 1}}
	res := scanatpg.Generate(sc, faults, opts)
	fmt.Println(res.Status)
	// Output: budget exhausted
}

// Proving untestability: the classification bounds achievable coverage.
func ExampleClassifyFaults() {
	c, _ := scanatpg.LoadBenchmark("s27")
	sc, _ := scanatpg.InsertScan(c)
	faults := scanatpg.Faults(sc.Scan, true)
	cl := scanatpg.ClassifyFaults(sc.Scan, faults, 1000)
	fmt.Printf("%.0f%%\n", cl.Efficiency())
	// Output: 100%
}
