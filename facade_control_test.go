package scanatpg

import (
	"bytes"
	"testing"

	"repro/internal/compact"
	"repro/internal/sim"
)

func s27Design(t *testing.T) (*ScanCircuit, []Fault, GenerateResult) {
	t.Helper()
	c, err := LoadBenchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	return sc, faults, Generate(sc, faults, GenerateOptions{Seed: 1})
}

// The unified ScanDesign entry points must be bit-identical to the
// internal compact package (and to the deprecated *Circuit wrappers).
func TestFacadeCompactUnified(t *testing.T) {
	sc, faults, gen := s27Design(t)

	fr, fst := Restore(sc, gen.Sequence, faults)
	ir, ist := compact.Restore(sc.Scan, gen.Sequence, faults)
	if fr.String() != ir.String() {
		t.Error("facade Restore differs from internal compact.Restore")
	}
	if fst.AfterLen != ist.AfterLen || fst.TargetFaults != ist.TargetFaults {
		t.Errorf("restore stats differ: %+v vs %+v", fst, ist)
	}
	wr, _ := RestoreCircuit(sc.Scan, gen.Sequence, faults)
	if wr.String() != fr.String() {
		t.Error("RestoreCircuit differs from Restore")
	}

	fo, fost := Omit(sc, fr, faults)
	io2, iost := compact.Omit(sc.Scan, ir, faults)
	if fo.String() != io2.String() {
		t.Error("facade Omit differs from internal compact.Omit")
	}
	if fost.AfterLen != iost.AfterLen {
		t.Errorf("omit stats differ: %+v vs %+v", fost, iost)
	}
	wo, _ := OmitCircuit(sc.Scan, fr, faults)
	if wo.String() != fo.String() {
		t.Error("OmitCircuit differs from Omit")
	}

	cseq, cst := Compact(sc, gen.Sequence, faults)
	if cseq.String() != fo.String() {
		t.Error("Compact differs from Restore+Omit")
	}
	if cst.Status != Complete {
		t.Errorf("Compact status = %v", cst.Status)
	}
}

// Simulate must match Simulator.Run exactly, including across repeated
// calls that hit the cached simulator.
func TestFacadeSimulateCached(t *testing.T) {
	sc, faults, gen := s27Design(t)
	want := NewSimulator(sc.Scan, 0).Run(gen.Sequence, faults, SimOptions{}).DetectedAt
	for call := 0; call < 2; call++ {
		got := Simulate(sc.Scan, gen.Sequence, faults)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d: fault %d detected at %d, want %d", call, i, got[i], want[i])
			}
		}
	}
	// And the raw one-shot path agrees too.
	raw := sim.Run(sc.Scan, gen.Sequence, faults, sim.Options{}).DetectedAt
	for i := range want {
		if raw[i] != want[i] {
			t.Fatalf("pooled and one-shot simulation disagree at fault %d", i)
		}
	}
}

func TestGenerateWithControl(t *testing.T) {
	sc, faults, plain := s27Design(t)

	free := GenerateWithControl(sc, faults, GenerateOptions{Seed: 1}, nil)
	if free.Status != Complete {
		t.Fatalf("nil control status = %v", free.Status)
	}
	if free.Sequence.String() != plain.Sequence.String() {
		t.Error("GenerateWithControl(nil) differs from Generate")
	}

	capped := GenerateWithControl(sc, faults, GenerateOptions{Seed: 1},
		&Control{Budget: Budget{MaxAttempts: 1}})
	if capped.Status != BudgetExhausted {
		t.Errorf("capped status = %v, want %v", capped.Status, BudgetExhausted)
	}
	if len(capped.Sequence) >= len(plain.Sequence) {
		t.Error("budget stop should leave a shorter partial sequence")
	}
}

func TestCompactWithControl(t *testing.T) {
	sc, faults, gen := s27Design(t)

	full, fullStats := Compact(sc, gen.Sequence, faults)
	got, gotStats := CompactWithControl(sc, gen.Sequence, faults, nil)
	if got.String() != full.String() || gotStats.AfterLen != fullStats.AfterLen {
		t.Error("CompactWithControl(nil) differs from Compact")
	}

	_, st := CompactWithControl(sc, gen.Sequence, faults,
		&Control{Budget: Budget{MaxTrials: 1}})
	if st.Status != BudgetExhausted {
		t.Errorf("capped status = %v, want %v", st.Status, BudgetExhausted)
	}
}

// The re-exported flight recorder must produce a schema-valid stream
// when observing a facade flow.
func TestFacadeMetricsRecorder(t *testing.T) {
	sc, faults, _ := s27Design(t)
	var buf bytes.Buffer
	rec := NewMetricsRecorder(&buf, MetricsRecorderOptions{Program: "facade-test"})
	opts := GenerateOptions{Seed: 1}
	opts.Obs = rec
	res := Generate(sc, faults, opts)
	if res.Status != Complete {
		t.Fatalf("status = %v", res.Status)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid metrics stream: %v", err)
	}
	if rec.Snapshot().Counters["generate.attempts"] == 0 {
		t.Error("generator reported no attempts")
	}
}
