package scanatpg

import (
	"bytes"
	"testing"

	"repro/internal/compact"
	"repro/internal/sim"
)

func s27Design(t *testing.T) (*ScanCircuit, []Fault, GenerateResult) {
	t.Helper()
	c, err := LoadBenchmark("s27")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		t.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	return sc, faults, Generate(sc, faults, GenerateOptions{Seed: 1})
}

// The unified ScanDesign entry points must be bit-identical to the
// internal compact package.
func TestFacadeCompactUnified(t *testing.T) {
	sc, faults, gen := s27Design(t)

	fr, fst := Restore(sc, gen.Sequence, faults, CompactOptions{})
	ir, ist := compact.Restore(sc.Scan, gen.Sequence, faults)
	if fr.String() != ir.String() {
		t.Error("facade Restore differs from internal compact.Restore")
	}
	if fst.AfterLen != ist.AfterLen || fst.TargetFaults != ist.TargetFaults {
		t.Errorf("restore stats differ: %+v vs %+v", fst, ist)
	}

	fo, fost := Omit(sc, fr, faults, CompactOptions{})
	io2, iost := compact.Omit(sc.Scan, ir, faults)
	if fo.String() != io2.String() {
		t.Error("facade Omit differs from internal compact.Omit")
	}
	if fost.AfterLen != iost.AfterLen {
		t.Errorf("omit stats differ: %+v vs %+v", fost, iost)
	}

	cseq, cst := Compact(sc, gen.Sequence, faults, CompactOptions{})
	if cseq.String() != fo.String() {
		t.Error("Compact differs from Restore+Omit")
	}
	if cst.Status != Complete {
		t.Errorf("Compact status = %v", cst.Status)
	}
}

// Engine and order selection through CompactOptions must match the
// internal package's behavior: engines are output-identical, OrderADI
// changes output the same way on both paths.
func TestFacadeCompactOptionsEngineOrder(t *testing.T) {
	sc, faults, gen := s27Design(t)

	inc, _ := Compact(sc, gen.Sequence, faults, CompactOptions{Engine: EngineIncremental})
	scr, _ := Compact(sc, gen.Sequence, faults, CompactOptions{Engine: EngineScratch})
	if inc.String() != scr.String() {
		t.Error("incremental and scratch engines disagree through the facade")
	}

	adi, _ := Restore(sc, gen.Sequence, faults, CompactOptions{Order: OrderADI})
	_, iadist := compact.RestoreOpts(sc.Scan, gen.Sequence, faults, compact.Options{Order: compact.OrderADI})
	iadi, _ := compact.RestoreOpts(sc.Scan, gen.Sequence, faults, compact.Options{Order: compact.OrderADI})
	_ = iadist
	if adi.String() != iadi.String() {
		t.Error("facade OrderADI differs from internal OrderADI")
	}
}

// Simulate must match Simulator.Run exactly, including across repeated
// calls that hit the cached simulator.
func TestFacadeSimulateCached(t *testing.T) {
	sc, faults, gen := s27Design(t)
	want := NewSimulator(sc.Scan, 0).Run(gen.Sequence, faults, SimOptions{}).DetectedAt
	for call := 0; call < 2; call++ {
		got := Simulate(sc.Scan, gen.Sequence, faults)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("call %d: fault %d detected at %d, want %d", call, i, got[i], want[i])
			}
		}
	}
	// And the raw one-shot path agrees too.
	raw := sim.Run(sc.Scan, gen.Sequence, faults, sim.Options{}).DetectedAt
	for i := range want {
		if raw[i] != want[i] {
			t.Fatalf("pooled and one-shot simulation disagree at fault %d", i)
		}
	}
}

// A budget rides in GenerateOptions.Control.
func TestGenerateControlInOptions(t *testing.T) {
	sc, faults, plain := s27Design(t)

	opts := GenerateOptions{Seed: 1}
	opts.Control = nil
	free := Generate(sc, faults, opts)
	if free.Status != Complete {
		t.Fatalf("nil control status = %v", free.Status)
	}
	if free.Sequence.String() != plain.Sequence.String() {
		t.Error("Generate with nil Control differs from Generate")
	}

	capped := GenerateOptions{Seed: 1, Control: &Control{Budget: Budget{MaxAttempts: 1}}}
	res := Generate(sc, faults, capped)
	if res.Status != BudgetExhausted {
		t.Errorf("capped status = %v, want %v", res.Status, BudgetExhausted)
	}
	if len(res.Sequence) >= len(plain.Sequence) {
		t.Error("budget stop should leave a shorter partial sequence")
	}
}

// A budget rides in CompactOptions.Control.
func TestCompactControlInOptions(t *testing.T) {
	sc, faults, gen := s27Design(t)

	full, fullStats := Compact(sc, gen.Sequence, faults, CompactOptions{})
	got, gotStats := Compact(sc, gen.Sequence, faults, CompactOptions{Control: nil})
	if got.String() != full.String() || gotStats.AfterLen != fullStats.AfterLen {
		t.Error("Compact with nil Control differs from Compact")
	}

	capped, st := Compact(sc, gen.Sequence, faults,
		CompactOptions{Control: &Control{Budget: Budget{MaxTrials: 1}}})
	if st.Status != BudgetExhausted {
		t.Errorf("capped status = %v, want %v", st.Status, BudgetExhausted)
	}
	if len(capped) == 0 {
		t.Error("budget stop should leave a valid partial sequence")
	}
}

// The re-exported flight recorder must produce a schema-valid stream
// when observing a facade flow, whether attached to the generator or to
// a compaction pass through CompactOptions.Obs.
func TestFacadeMetricsRecorder(t *testing.T) {
	sc, faults, gen := s27Design(t)
	var buf bytes.Buffer
	rec := NewMetricsRecorder(&buf, MetricsRecorderOptions{Program: "facade-test"})
	opts := GenerateOptions{Seed: 1}
	opts.Obs = rec
	res := Generate(sc, faults, opts)
	if res.Status != Complete {
		t.Fatalf("status = %v", res.Status)
	}
	Compact(sc, gen.Sequence, faults, CompactOptions{Obs: rec})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetrics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid metrics stream: %v", err)
	}
	if rec.Snapshot().Counters["generate.attempts"] == 0 {
		t.Error("generator reported no attempts")
	}
	if rec.Snapshot().Counters["restore.trials"] == 0 {
		t.Error("compaction pass reported no trials through CompactOptions.Obs")
	}
}
