// Benchmark harness: one benchmark per table of the paper (the paper
// has seven tables and no figures). Each benchmark regenerates the
// corresponding artifact and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces every row the paper reports (on the catalog circuits; see
// DESIGN.md for the synthetic-substitute caveat). The full-suite runs
// live behind -bench with the scangen/scantrans commands; benchmarks
// default to the small suite to stay laptop-friendly.
package scanatpg

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// benchCircuitsT5 are the circuits benchmarked for Tables 5/6; a
// representative slice of the paper's list that keeps -bench runs
// under a few minutes.
var benchCircuitsT5 = []string{"s27", "s298", "s344", "s420", "s526", "b01", "b06"}

// benchCircuitsT7 are the circuits benchmarked for Table 7.
var benchCircuitsT7 = []string{"s27", "s298", "s344", "b01"}

// BenchmarkTable1_GenerateS27 regenerates the paper's Table 1: the raw
// Section 2 test sequence for s27_scan. Reported metrics: sequence
// length (cycles) and scan_sel=1 vectors.
func BenchmarkTable1_GenerateS27(b *testing.B) {
	c, err := LoadBenchmark("s27")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	var res GenerateResult
	for i := 0; i < b.N; i++ {
		res = Generate(sc, faults, GenerateOptions{Seed: 1})
	}
	b.ReportMetric(float64(len(res.Sequence)), "cycles")
	b.ReportMetric(float64(sc.CountScanVectors(res.Sequence)), "scan_vecs")
	b.ReportMetric(float64(res.NumDetected()), "detected")
}

// BenchmarkTable2_TestSetS27 regenerates Table 2: a conventional
// first-approach test set for s27_scan.
func BenchmarkTable2_TestSetS27(b *testing.B) {
	c, err := LoadBenchmark("s27")
	if err != nil {
		b.Fatal(err)
	}
	faults := Faults(c, true)
	var tests []ScanTest
	for i := 0; i < b.N; i++ {
		tests = FirstApproachTestSet(c, faults, 1)
	}
	b.ReportMetric(float64(len(tests)), "tests")
	b.ReportMetric(float64(ConventionalCycles(tests, c.NumFFs())), "conv_cycles")
}

// BenchmarkTable3_TranslateS27 regenerates Table 3: translating the
// conventional test set into one flat C_scan sequence.
func BenchmarkTable3_TranslateS27(b *testing.B) {
	c, err := LoadBenchmark("s27")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := Faults(c, true)
	tests := FirstApproachTestSet(c, faults, 1)
	var seq Sequence
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		seq, err = Translate(sc, tests, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(seq)), "cycles")
	b.ReportMetric(float64(sc.CountScanVectors(seq)), "scan_vecs")
}

// BenchmarkTable4_CompactS27 regenerates Table 4: restoration followed
// by omission on the raw s27_scan sequence.
func BenchmarkTable4_CompactS27(b *testing.B) {
	c, err := LoadBenchmark("s27")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		b.Fatal(err)
	}
	faults := Faults(sc.Scan, true)
	gen := Generate(sc, faults, GenerateOptions{Seed: 1})
	var compacted Sequence
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compacted, _ = Compact(sc, gen.Sequence, faults, CompactOptions{})
	}
	b.ReportMetric(float64(len(gen.Sequence)), "raw_cycles")
	b.ReportMetric(float64(len(compacted)), "cycles")
	b.ReportMetric(float64(sc.CountScanVectors(compacted)), "scan_vecs")
}

// BenchmarkTable5_Generation regenerates Table 5 rows: fault coverage
// of the Section 2 generator per circuit. Metrics: fault coverage,
// faults detected via scan knowledge.
func BenchmarkTable5_Generation(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.SkipBaseline = true
	cfg.SkipCompaction = true
	for _, name := range benchCircuitsT5 {
		b.Run(name, func(b *testing.B) {
			var row GenerateRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = RunGenerateFlow(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.FCov, "fcov_pct")
			b.ReportMetric(float64(row.Funct), "funct")
			b.ReportMetric(float64(row.TestLen), "cycles")
		})
	}
}

// BenchmarkTable6_GenerateCompact regenerates Table 6 rows: generation
// plus restoration plus omission against the conventional baseline.
// Metrics: compacted length, scan vectors, baseline cycles.
func BenchmarkTable6_GenerateCompact(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, name := range benchCircuitsT5 {
		b.Run(name, func(b *testing.B) {
			var row GenerateRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = RunGenerateFlow(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.TestLen), "raw_cycles")
			b.ReportMetric(float64(row.RestorLen), "restor_cycles")
			b.ReportMetric(float64(row.OmitLen), "omit_cycles")
			b.ReportMetric(float64(row.OmitScan), "omit_scan")
			b.ReportMetric(float64(row.BaselineCycles), "baseline_cycles")
		})
	}
}

// BenchmarkTable7_TranslateCompact regenerates Table 7 rows: a
// conventional test set translated and compacted, versus its
// conventional application time.
func BenchmarkTable7_TranslateCompact(b *testing.B) {
	cfg := core.DefaultConfig()
	for _, name := range benchCircuitsT7 {
		b.Run(name, func(b *testing.B) {
			var row TranslateRow
			for i := 0; i < b.N; i++ {
				var err error
				row, err = RunTranslateFlow(name, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.TestLen), "translated_cycles")
			b.ReportMetric(float64(row.OmitLen), "omit_cycles")
			b.ReportMetric(float64(row.Cycles), "conv_cycles")
		})
	}
}

// BenchmarkMultiChainAblation quantifies the paper's "easily applied to
// multiple scan chains" note: the same generator and compaction run on
// 1, 2 and 4 chains. Metrics: complete-scan cost and compacted length.
func BenchmarkMultiChainAblation(b *testing.B) {
	c, err := LoadBenchmark("s298")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("chains=%d", n), func(b *testing.B) {
			ch, err := InsertScanChains(c, n)
			if err != nil {
				b.Fatal(err)
			}
			faults := Faults(ch.Scan, true)
			var omitted Sequence
			for i := 0; i < b.N; i++ {
				gen := Generate(ch, faults, GenerateOptions{Seed: 1})
				restored, _ := Restore(ch, gen.Sequence, faults, CompactOptions{})
				omitted, _ = Omit(ch, restored, faults, CompactOptions{})
			}
			b.ReportMetric(float64(ch.MaxLen()), "complete_scan_cycles")
			b.ReportMetric(float64(len(omitted)), "omit_cycles")
		})
	}
}

// BenchmarkAtSpeedTransitionCoverage grades stuck-at test sequences for
// gross-delay transition faults. The paper's representation applies
// every vector at-speed, so its sequences collect transition coverage
// for free; this bench compares the native Section 2 sequence with a
// translated conventional test set on the same circuit.
func BenchmarkAtSpeedTransitionCoverage(b *testing.B) {
	c, err := LoadBenchmark("s298")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := InsertScan(c)
	if err != nil {
		b.Fatal(err)
	}
	saFaults := Faults(sc.Scan, true)
	tFaults := TransitionFaults(sc.Scan)
	gen := Generate(sc, saFaults, GenerateOptions{Seed: 1})
	tests := FirstApproachTestSet(c, Faults(c, true), 1)
	translated, err := Translate(sc, tests, 1)
	if err != nil {
		b.Fatal(err)
	}
	cover := func(seq Sequence) float64 {
		det := 0
		for _, t := range GradeTransitions(sc.Scan, seq, tFaults) {
			if t >= 0 {
				det++
			}
		}
		return 100 * float64(det) / float64(len(tFaults))
	}
	b.Run("native-sequence", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			cov = cover(gen.Sequence)
		}
		b.ReportMetric(cov, "transition_cov_pct")
	})
	b.Run("translated-conventional", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			cov = cover(translated)
		}
		b.ReportMetric(cov, "transition_cov_pct")
	})
}

// ExampleGenerate demonstrates the facade end to end and doubles as a
// doc test.
func ExampleGenerate() {
	c, _ := LoadBenchmark("s27")
	sc, _ := InsertScan(c)
	faults := Faults(sc.Scan, true)
	res := Generate(sc, faults, GenerateOptions{Seed: 1})
	fmt.Println(res.NumDetected() == len(faults))
	// Output: true
}
