// Command crashsoak is the crash/resume soak harness behind `make
// soak` (ALGORITHMS.md §14). Each iteration picks a flow (generation,
// restoration or omission), then repeatedly runs it as a child process
// with a deterministic kill failpoint armed somewhere in the
// checkpoint-store or metrics-append path. A killed child (exit 137)
// is resumed from its on-disk checkpoint; the iteration ends when a
// leg completes. The harness then asserts the survival contract:
//
//   - the completed run's output (sequence + semantic stats) is
//     byte-identical to an uninterrupted reference run of the same
//     flow, no matter where the kills landed — including between the
//     checkpoint temp-file write and its rename, and mid-append on the
//     metrics recorder (a torn JSONL tail);
//   - the metrics file accumulated across all legs still validates
//     against the flight-recorder schema.
//
// Kills are drawn from a seeded RNG, so a failing schedule replays
// from -seed. The harness fails if a soak of 20+ iterations never
// kills a child (the failpoints went dead) and on any child exit other
// than success or the injected kill.
//
// Usage:
//
//	crashsoak -iters 200 -seed 1 [-v]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/circuits"
	"repro/internal/compact"
	"repro/internal/failpoint"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runctl"
	"repro/internal/scan"
	"repro/internal/seqatpg"
)

// maxLegs bounds one iteration's kill/resume cycle; the final leg runs
// with no failpoints armed so the iteration always terminates.
const maxLegs = 8

// killSites are the failpoint sites the harness aims kills at. The
// store sites cover every stage of the write-temp/fsync/rotate/rename/
// dirsync publication protocol plus the resume-time read; the recorder
// site tears a metrics append mid-line before the crash.
var killSites = []string{
	"runctl.store.write",
	"runctl.store.sync",
	"runctl.store.rotate",
	"runctl.store.rename",
	"runctl.store.dirsync",
	"runctl.store.read",
	"obs.recorder.append",
}

var flows = []string{"generate", "restore", "omit"}

func main() {
	child := flag.Bool("child", false, "run one flow leg (internal; used by the parent harness)")
	flow := flag.String("flow", "", "child: flow to run (generate|restore|omit)")
	dir := flag.String("dir", "", "child: working directory for checkpoint/metrics/output files")
	resume := flag.Bool("resume", false, "child: resume from the checkpoint in -dir")
	iters := flag.Int("iters", 200, "soak iterations (one kill/resume cycle each)")
	seed := flag.Int64("seed", 1, "RNG seed for the kill schedule")
	verbose := flag.Bool("v", false, "log every leg")
	flag.Parse()

	if *child {
		os.Exit(runChild(*flow, *dir, *resume))
	}
	os.Exit(runParent(*iters, *seed, *verbose))
}

// --- child ---------------------------------------------------------------

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "crashsoak:", err)
	return 1
}

// runChild executes one leg of a flow against the checkpoint store and
// metrics file in dir, writing the flow's deterministic output to
// dir/out. Failpoints arrive via SCANATPG_FAILPOINTS in the
// environment (parsed by the failpoint package before main). An
// injected torn metrics append is promoted to the kill exit code: the
// file is left exactly as a crash mid-append would leave it.
func runChild(flow, dir string, resume bool) int {
	if flow == "" || dir == "" {
		return fail(fmt.Errorf("-child needs -flow and -dir"))
	}
	store := runctl.NewFileStore(filepath.Join(dir, "ckpt"))
	store.Logf = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "crashsoak: "+format+"\n", args...)
	}
	ctl := &runctl.Control{Store: store, Resume: resume, SaveEvery: 1}

	ocli := &obs.CLI{Metrics: filepath.Join(dir, "metrics.jsonl"), Program: "crashsoak"}
	rt, err := ocli.Build(resume)
	if err != nil {
		return fail(err)
	}

	var out string
	switch flow {
	case "generate":
		sc, faults := loadScan("s298")
		res := seqatpg.Generate(sc, faults, seqatpg.Options{
			Seed: 11, Passes: 1, RandomPhase: 4, Control: ctl, Obs: rt.Observer()})
		if res.Status != runctl.Complete && res.Status != runctl.Resumed {
			return fail(fmt.Errorf("generate: status %v err %v", res.Status, res.Err))
		}
		out = fmt.Sprintf("generate\n%s\ndetected=%d funct=%d\n",
			res.Sequence, res.NumDetected(), res.NumFunct())
	case "restore", "omit":
		sc, faults := loadScan("s27")
		seq := seqatpg.Generate(sc, faults, seqatpg.Options{Seed: 11}).Sequence
		copts := compact.Options{Control: ctl, Obs: rt.Observer()}
		run := compact.RestoreOpts
		if flow == "omit" {
			run = compact.OmitOpts
		}
		res, st := run(sc.ScanCircuit(), seq, faults, copts)
		if st.Status != runctl.Complete && st.Status != runctl.Resumed {
			return fail(fmt.Errorf("%s: status %v err %v", flow, st.Status, st.Err))
		}
		out = fmt.Sprintf("%s\n%s\nbefore=%d after=%d targets=%d extra=%d\n",
			flow, res, st.BeforeLen, st.AfterLen, st.TargetFaults, st.ExtraDetected)
	default:
		return fail(fmt.Errorf("unknown flow %q", flow))
	}

	if err := os.WriteFile(filepath.Join(dir, "out"), []byte(out), 0o644); err != nil {
		return fail(err)
	}
	if err := rt.Close(); err != nil {
		if failpoint.IsInjected(err) {
			return failpoint.KillExitCode // torn append = crash mid-write
		}
		return fail(err)
	}
	return 0
}

func loadScan(name string) (scan.Design, []fault.Fault) {
	c, err := circuits.Load(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsoak:", err)
		os.Exit(1)
	}
	sc, err := scan.Insert(c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashsoak:", err)
		os.Exit(1)
	}
	return sc, fault.Universe(sc.ScanCircuit(), true)
}

// --- parent --------------------------------------------------------------

// spawn runs one child leg and returns its exit code.
func spawn(exe, flow, dir, spec string, resume bool, verbose bool) (int, error) {
	args := []string{"-child", "-flow", flow, "-dir", dir}
	if resume {
		args = append(args, "-resume")
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), failpoint.EnvSpec+"="+spec)
	if verbose {
		fmt.Fprintf(os.Stderr, "crashsoak: %s resume=%v spec=%q\n", flow, resume, spec)
	}
	err := cmd.Run()
	if err == nil {
		return 0, nil
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), nil
	}
	return -1, err
}

func runParent(iters int, seed int64, verbose bool) int {
	exe, err := os.Executable()
	if err != nil {
		return fail(err)
	}
	root, err := os.MkdirTemp("", "crashsoak-")
	if err != nil {
		return fail(err)
	}
	defer os.RemoveAll(root)
	rng := rand.New(rand.NewSource(seed))

	// Uninterrupted reference output per flow.
	refs := make(map[string][]byte)
	for _, flow := range flows {
		dir := filepath.Join(root, "ref-"+flow)
		if err := os.Mkdir(dir, 0o755); err != nil {
			return fail(err)
		}
		code, err := spawn(exe, flow, dir, "", false, verbose)
		if err != nil || code != 0 {
			return fail(fmt.Errorf("reference %s leg: exit %d (%v)", flow, code, err))
		}
		refs[flow], err = os.ReadFile(filepath.Join(dir, "out"))
		if err != nil {
			return fail(err)
		}
	}

	kills, legs := 0, 0
	for it := 0; it < iters; it++ {
		flow := flows[it%len(flows)]
		dir := filepath.Join(root, fmt.Sprintf("it%d", it))
		if err := os.Mkdir(dir, 0o755); err != nil {
			return fail(err)
		}
		done := false
		for leg := 0; leg < maxLegs && !done; leg++ {
			// First leg always aims a kill; later legs arm one half the
			// time so resumes regularly run to completion. The last leg
			// is always clean, bounding the iteration.
			spec := ""
			switch {
			case leg == maxLegs-1:
			case leg == 0:
				// A fresh leg never loads, so the read site cannot fire;
				// redraw to keep the first kill near-certain.
				for spec == "" || strings.HasPrefix(spec, "runctl.store.read=") {
					spec = killSpec(rng, 1+rng.Intn(6))
				}
			case rng.Intn(2) == 0:
				spec = killSpec(rng, 1+rng.Intn(12))
			}
			code, err := spawn(exe, flow, dir, spec, leg > 0, verbose)
			legs++
			switch {
			case err != nil:
				return fail(fmt.Errorf("iter %d leg %d: %v", it, leg, err))
			case code == 0:
				done = true
			case code == failpoint.KillExitCode:
				kills++
			default:
				return fail(fmt.Errorf("iter %d leg %d (%s, spec %q): unexpected exit %d", it, leg, flow, spec, code))
			}
		}
		if !done {
			return fail(fmt.Errorf("iter %d (%s): no leg completed in %d", it, flow, maxLegs))
		}

		out, err := os.ReadFile(filepath.Join(dir, "out"))
		if err != nil {
			return fail(fmt.Errorf("iter %d: %v", it, err))
		}
		if !bytes.Equal(out, refs[flow]) {
			return fail(fmt.Errorf("iter %d (%s): output after kills differs from uninterrupted reference:\n--- got ---\n%s--- want ---\n%s",
				it, flow, out, refs[flow]))
		}
		mf, err := os.Open(filepath.Join(dir, "metrics.jsonl"))
		if err != nil {
			return fail(fmt.Errorf("iter %d: %v", it, err))
		}
		_, verr := obs.Validate(mf)
		mf.Close()
		if verr != nil {
			return fail(fmt.Errorf("iter %d (%s): metrics file invalid after kills: %v", it, flow, verr))
		}
		os.RemoveAll(dir)
	}

	fmt.Printf("crashsoak: %d iterations, %d legs, %d kills survived bit-identically (seed %d)\n",
		iters, legs, kills, seed)
	if kills == 0 && iters >= 20 {
		return fail(fmt.Errorf("%d iterations produced zero kills — the failpoint sites are dead", iters))
	}
	return 0
}

// killSpec arms one random site with a kill at the given hit. The
// recorder site uses a torn write instead (the child promotes it to
// the kill exit code after the tear reaches the file).
func killSpec(rng *rand.Rand, hit int) string {
	site := killSites[rng.Intn(len(killSites))]
	if site == "obs.recorder.append" {
		return fmt.Sprintf("%s=partial:0.6@%d", site, hit)
	}
	return fmt.Sprintf("%s=kill@%d", site, hit)
}
