// Command metricscheck validates a JSONL metrics file produced by the
// -metrics flag of scangen/scansim/scantrans against the flight
// recorder's schema (internal/obs): run headers, monotonically
// sequenced events and snapshots, and a final counter snapshot. It is
// the check behind `make metrics-check`.
//
// Usage:
//
//	scangen -circuit s27 -compact -metrics out.jsonl
//	metricscheck out.jsonl
//
// Exit status is 0 with a one-line summary when the file is valid, 1
// with the first violation otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: metricscheck FILE.jsonl")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricscheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	st, err := obs.Validate(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: OK — %d run(s), %d event(s), %d snapshot(s)\n",
		path, st.Runs, st.Events, st.Snapshots)
}
