// Command scangen runs the paper's test generation flow (Section 2) and
// static compaction (Section 4) on benchmark circuits, regenerating
// Tables 1, 4, 5 and 6.
//
// Usage:
//
//	scangen -circuit s27 -print-seq           # Table 1: raw sequence
//	scangen -circuit s27 -compact -print-seq  # Table 4: compacted sequence
//	scangen -suite small                      # Tables 5 and 6 over the small suite
//	scangen -suite full -no-baseline          # Table 5 over every circuit
//
// Long runs can be budgeted and made crash-safe:
//
//	scangen -circuit s5378 -compact -timeout 60s -checkpoint run.ckpt
//	scangen -circuit s5378 -compact -checkpoint run.ckpt -resume
//
// A budgeted run that stops (timeout, SIGINT, -max-attempts,
// -max-trials) prints partial results, writes its state to the
// checkpoint file and exits 0; -resume continues it and the final
// output is bit-identical to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/compact"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runctl"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "single catalog circuit to run")
		suite      = flag.String("suite", "", "run a whole suite: small, medium or full")
		seed       = flag.Uint64("seed", 1, "random seed")
		doCompact  = flag.Bool("compact", false, "with -circuit: compact the generated sequence")
		printSeq   = flag.Bool("print-seq", false, "with -circuit: print the sequence as a paper-style table")
		noBaseline = flag.Bool("no-baseline", false, "skip the conventional-scan baseline")
		noCollapse = flag.Bool("no-collapse", false, "disable fault equivalence collapsing")
		omitCap    = flag.Int("omit-cap", 0, "skip omission when the restored sequence exceeds this many vectors (0 = never; skips are warned)")
		engine     = flag.String("compact-engine", "auto", "compaction trial engine: auto, incremental or scratch (output identical)")
		adiOrder   = flag.Bool("adi-order", false, "restore faults in increasing accidental-detection-index order (changes the output)")
		chains     = flag.Int("chains", 1, "number of scan chains (generation flow)")
		workers    = flag.Int("workers", 0, "fault-simulation worker count (0 = all cores; results are identical for every value)")
		outFile    = flag.String("out", "", "with -circuit: write the (compacted) sequence to this file")
		verbose    = flag.Bool("v", false, "progress to stderr")
	)
	rc := runctl.RegisterFlags("scangen")
	oc := obs.RegisterFlags("scangen")
	pf := prof.Register()
	flag.Parse()
	if err := pf.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(1)
	}
	defer func() {
		if err := pf.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "scangen:", err)
		}
	}()
	ctl, err := rc.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(2)
	}
	if *suite != "" && ctl != nil && ctl.Store != nil {
		fmt.Fprintln(os.Stderr, "scangen: -checkpoint needs a single -circuit run (suite circuits would fight over the file)")
		os.Exit(2)
	}
	ort, err := oc.Build(rc.Resume)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(2)
	}

	eng, err := compact.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.Collapse = !*noCollapse
	cfg.SkipBaseline = *noBaseline
	cfg.OmitLenCap = *omitCap
	cfg.Engine = eng
	if *adiOrder {
		cfg.Order = compact.OrderADI
	}
	cfg.Chains = *chains
	cfg.Workers = *workers
	cfg.Control = ctl
	cfg.Obs = ort.Observer()
	cfg.Warn = os.Stderr

	switch {
	case *circuit != "":
		runSingle(*circuit, cfg, *doCompact, *printSeq, *outFile, rc.Checkpoint)
	case *suite != "":
		runSuite(*suite, cfg, *verbose)
	default:
		fmt.Fprintln(os.Stderr, "scangen: need -circuit NAME or -suite small|medium|full")
		flag.Usage()
		os.Exit(2)
	}
	if s := ort.Summary(); s != nil {
		if out := report.ObsSummary(*s); out != "" {
			fmt.Println()
			fmt.Print(out)
		}
	}
	if err := ort.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(1)
	}
}

func runSingle(name string, cfg core.Config, doCompact, printSeq bool, outFile, ckptFile string) {
	cfg.SkipCompaction = !doCompact
	row, art, err := core.RunGenerate(name, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(1)
	}
	fmt.Printf("circuit %s: %d inputs, %d state variables, %d faults\n",
		row.Circ, row.Inp, row.Stvr, row.Faults)
	fmt.Printf("detected %d (%.2f%%), %d via scan knowledge\n", row.Detected, row.FCov, row.Funct)
	fmt.Printf("test length %d (%d scan vectors)\n", row.TestLen, row.TestScan)
	if doCompact && row.RestorLen > 0 {
		fmt.Printf("after restoration: %d (%d scan)\n", row.RestorLen, row.RestorScan)
		fmt.Printf("after omission:    %d (%d scan)\n", row.OmitLen, row.OmitScan)
		if row.ExtDet > 0 {
			fmt.Printf("extra faults detected by compaction: %d\n", row.ExtDet)
		}
	}
	if row.BaselineCycles > 0 {
		fmt.Printf("conventional-scan baseline: %d cycles\n", row.BaselineCycles)
	}
	// A stopped run may not have reached compaction; fall back to the
	// best sequence that exists.
	best := art.Raw
	if doCompact && art.Omitted != nil {
		best = art.Omitted
	}
	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(best.String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scangen:", err)
			os.Exit(1)
		}
		fmt.Printf("sequence written to %s\n", outFile)
	}
	if printSeq {
		title := fmt.Sprintf("Test sequence for %s_scan (Table 1 style)", name)
		if doCompact && art.Omitted != nil {
			title = fmt.Sprintf("Compacted test sequence for %s_scan (Table 4 style)", name)
		}
		fmt.Println()
		fmt.Print(report.SequenceTable(art.Scan, best, title))
		fmt.Printf("\nscan_sel=1 run lengths: %v (chain length %d)\n",
			report.ScanRuns(art.Scan, best), art.Scan.NumStateVars())
	}
	if cfg.Control != nil {
		fmt.Println(report.RunBanner(row.Status, ckptFile))
	}
}

func runSuite(which string, cfg core.Config, verbose bool) {
	var names []string
	switch which {
	case "small":
		names = core.SmallSuite
	case "medium":
		names = core.MediumSuite
	case "full":
		names = core.FullSuite
	default:
		fmt.Fprintf(os.Stderr, "scangen: unknown suite %q\n", which)
		os.Exit(2)
	}
	prog := core.Progress{}
	if verbose {
		prog.Log = os.Stderr
	}
	rows, err := core.RunGenerateSuite(names, cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scangen:", err)
		os.Exit(1)
	}
	fmt.Print(report.Table5(rows))
	fmt.Println()
	fmt.Print(report.Table6(rows))
}
