package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
)

// buildScangen compiles the command into the test's temp dir.
func buildScangen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "scangen")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("scangen %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestResumeIdentity drives an attempt-budgeted run through several
// interrupted legs and checks the final -out file is byte-identical to
// an uninterrupted run's.
func TestResumeIdentity(t *testing.T) {
	bin := buildScangen(t)
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	base := []string{"-circuit", "s344", "-compact", "-no-baseline", "-seed", "1"}
	run(t, bin, append(base, "-out", ref)...)

	legs := 0
	for {
		o := run(t, bin, append(base, "-out", out,
			"-max-attempts", "6", "-checkpoint", ckpt, "-resume")...)
		if strings.Contains(o, "run status: resumed") || strings.Contains(o, "run status: complete") {
			break
		}
		if !strings.Contains(o, "run status: budget exhausted") {
			t.Fatalf("leg %d: unexpected status in output:\n%s", legs, o)
		}
		legs++
		if legs > 100 {
			t.Fatal("run never completed")
		}
	}
	if legs == 0 {
		t.Fatal("budget never interrupted the run; test is vacuous")
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	refData, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	outData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refData, outData) {
		t.Fatalf("resumed output differs from uninterrupted run after %d interrupted legs", legs)
	}
}

// TestSigintCheckpointResume interrupts a long run with SIGINT and
// checks the contract: exit 0, partial-results report, a usable
// checkpoint, and a resume that matches an uninterrupted run.
func TestSigintCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long run; skipped with -short")
	}
	bin := buildScangen(t)
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	base := []string{"-circuit", "s5378", "-no-baseline", "-seed", "1"}
	run(t, bin, append(base, "-out", ref)...)

	cmd := exec.Command(bin, append(base, "-out", out, "-checkpoint", ckpt)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// s5378 generation takes several seconds; one second lands the
	// interrupt mid-run.
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("interrupted run exited non-zero: %v\n%s", err, buf.String())
	}
	o := buf.String()
	if !strings.Contains(o, "run status: canceled") {
		// The run may legitimately have finished before the signal on a
		// very fast machine; that makes the test vacuous, not wrong.
		if strings.Contains(o, "run status: complete") {
			t.Skip("run finished before the interrupt; nothing to resume")
		}
		t.Fatalf("missing canceled status in output:\n%s", o)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing after SIGINT: %v", err)
	}

	o = run(t, bin, append(base, "-out", out, "-checkpoint", ckpt, "-resume")...)
	if !strings.Contains(o, "run status: resumed") {
		t.Fatalf("resume did not complete:\n%s", o)
	}
	refData, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	outData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refData, outData) {
		t.Fatal("post-SIGINT resume diverged from uninterrupted run")
	}
}

// TestSigtermCheckpointResume: SIGTERM (the orchestrator/container
// stop signal) gets the same drain-and-checkpoint treatment as SIGINT,
// and the resume matches an uninterrupted run byte for byte.
func TestSigtermCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long run; skipped with -short")
	}
	bin := buildScangen(t)
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.txt")
	out := filepath.Join(dir, "out.txt")
	ckpt := filepath.Join(dir, "run.ckpt")

	base := []string{"-circuit", "s5378", "-no-baseline", "-seed", "1"}
	run(t, bin, append(base, "-out", ref)...)

	cmd := exec.Command(bin, append(base, "-out", out, "-checkpoint", ckpt)...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("terminated run exited non-zero: %v\n%s", err, buf.String())
	}
	o := buf.String()
	if !strings.Contains(o, "run status: canceled") {
		if strings.Contains(o, "run status: complete") {
			t.Skip("run finished before the signal; nothing to resume")
		}
		t.Fatalf("missing canceled status in output:\n%s", o)
	}
	if !strings.Contains(o, "draining in-flight work") {
		t.Fatalf("missing drain notice after SIGTERM:\n%s", o)
	}

	o = run(t, bin, append(base, "-out", out, "-checkpoint", ckpt, "-resume")...)
	if !strings.Contains(o, "run status: resumed") {
		t.Fatalf("resume did not complete:\n%s", o)
	}
	refData, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	outData, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refData, outData) {
		t.Fatal("post-SIGTERM resume diverged from uninterrupted run")
	}
}

// TestMetricsFlightRecorder runs the acceptance command — a flow with
// -metrics and an ephemeral -debug-addr — and checks the emitted JSONL
// validates against the schema with a final counter snapshot.
func TestMetricsFlightRecorder(t *testing.T) {
	bin := buildScangen(t)
	metrics := filepath.Join(t.TempDir(), "out.jsonl")
	o := run(t, bin, "-circuit", "s27", "-compact", "-no-baseline",
		"-metrics", metrics, "-debug-addr", "127.0.0.1:0")
	if !strings.Contains(o, "metrics at http://") {
		t.Errorf("missing debug endpoint banner:\n%s", o)
	}
	if !strings.Contains(o, "Run metrics") || !strings.Contains(o, "generate.attempts") {
		t.Errorf("missing metrics summary table:\n%s", o)
	}
	f, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := obs.Validate(f)
	if err != nil {
		t.Fatalf("metrics file invalid: %v", err)
	}
	if st.Runs != 1 || st.Events == 0 || !st.FinalSnapshot {
		t.Errorf("stats = %+v, want 1 run, events, final snapshot", st)
	}
}

// TestMetricsResumeAppends checks that -resume legs append to the same
// metrics file as new run headers and the multi-leg file still
// validates.
func TestMetricsResumeAppends(t *testing.T) {
	bin := buildScangen(t)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "out.jsonl")
	ckpt := filepath.Join(dir, "run.ckpt")
	base := []string{"-circuit", "s344", "-no-baseline", "-seed", "1",
		"-metrics", metrics, "-checkpoint", ckpt, "-resume"}
	legs := 0
	for {
		o := run(t, bin, append(base, "-max-attempts", "10")...)
		legs++
		if strings.Contains(o, "run status: resumed") || strings.Contains(o, "run status: complete") {
			break
		}
		if legs > 100 {
			t.Fatal("run never completed")
		}
	}
	if legs < 2 {
		t.Fatal("budget never interrupted the run; test is vacuous")
	}
	f, err := os.Open(metrics)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := obs.Validate(f)
	if err != nil {
		t.Fatalf("multi-leg metrics file invalid: %v", err)
	}
	if st.Runs != legs {
		t.Errorf("metrics file has %d run headers, want %d", st.Runs, legs)
	}
}

// TestBadFlagCombos checks the flag validation paths exit non-zero.
func TestBadFlagCombos(t *testing.T) {
	bin := buildScangen(t)
	for _, args := range [][]string{
		{"-circuit", "s27", "-resume"}, // -resume without -checkpoint
		{"-suite", "small", "-checkpoint", filepath.Join(t.TempDir(), "x.ckpt")},
	} {
		if out, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("scangen %s succeeded, want usage error\n%s", strings.Join(args, " "), out)
		}
	}
}
