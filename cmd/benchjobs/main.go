// Command benchjobs measures the job server's throughput on a
// Table-5-shaped compaction workload — one compact-flow job spanning
// several catalog circuits, each circuit a restore stage plus a chain
// of omission window chunks — at one worker versus a fleet, and writes
// the results as BENCH_sim.json-shaped entries (tasks/s, wall-clock
// ns/op, speedup) to a JSON file. `make bench-jobs` runs it and tracks
// BENCH_jobs.json in the repo root.
//
// The two runs execute the identical spec, so their results are
// byte-identical (the jobs/worker-claim invariant); only the wall
// clock differs. Workers are in-process pool workers — the same task
// claim path remote scanworkers use, minus HTTP.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/jobs"
)

type entry struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		circuits = flag.String("circuits", "s298,s344,s382,s420", "comma-separated catalog circuits for the compact job")
		seqLen   = flag.Int("seq-len", 96, "test sequence length per circuit")
		shards   = flag.Int("omit-shards", 2, "omission window chunks per circuit")
		fleet    = flag.Int("fleet", 0, "fleet worker count (0 = min(GOMAXPROCS, circuit count))")
		out      = flag.String("out", "BENCH_jobs.json", "output JSON path")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "benchjobs: ", 0)

	names := strings.Split(*circuits, ",")
	n := *fleet
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > len(names) {
			n = len(names)
		}
	}
	if n < 2 {
		n = 2
	}
	spec := jobs.Spec{
		Flow:       jobs.FlowCompact,
		Circuits:   names,
		Seed:       1,
		SeqLen:     *seqLen,
		OmitShards: *shards,
		Workers:    1, // per-task sim parallelism off: measure job-level fan-out only
	}

	run := func(workers int) (time.Duration, int, []byte) {
		dir, err := os.MkdirTemp("", "benchjobs-")
		if err != nil {
			logger.Fatal(err)
		}
		defer os.RemoveAll(dir)
		srv, err := jobs.NewServer(jobs.Options{DataDir: dir, Workers: workers})
		if err != nil {
			logger.Fatal(err)
		}
		defer srv.Drain()
		start := time.Now()
		st, err := srv.Submit(spec)
		if err != nil {
			logger.Fatal(err)
		}
		if err := srv.Wait(st.ID); err != nil {
			logger.Fatal(err)
		}
		elapsed := time.Since(start)
		final, err := srv.Get(st.ID)
		if err != nil {
			logger.Fatal(err)
		}
		if final.State != jobs.StateComplete {
			logger.Fatalf("workers=%d: job settled %s (%s)", workers, final.State, final.Error)
		}
		res, err := srv.Result(st.ID)
		if err != nil {
			logger.Fatal(err)
		}
		return elapsed, len(final.Tasks), res
	}

	label := fmt.Sprintf("JobsCompact/%s/shards=%d", strings.Join(names, "+"), *shards)
	logger.Printf("running %s at workers=1", label)
	t1, tasks, res1 := run(1)
	logger.Printf("workers=1: %d tasks in %v", tasks, t1)
	logger.Printf("running %s at workers=%d", label, n)
	tn, _, resN := run(n)
	logger.Printf("workers=%d: %d tasks in %v (speedup %.2fx)", n, tasks, tn, t1.Seconds()/tn.Seconds())
	if string(res1) != string(resN) {
		logger.Fatalf("results differ between worker counts — determinism broken")
	}

	entries := []entry{
		{
			Name:       label + "/workers=1",
			Iterations: 1,
			Metrics: map[string]float64{
				"ns/op":   float64(t1.Nanoseconds()),
				"tasks":   float64(tasks),
				"tasks/s": float64(tasks) / t1.Seconds(),
			},
		},
		{
			Name:       fmt.Sprintf("%s/workers=%d", label, n),
			Iterations: 1,
			Metrics: map[string]float64{
				"ns/op":   float64(tn.Nanoseconds()),
				"tasks":   float64(tasks),
				"tasks/s": float64(tasks) / tn.Seconds(),
				"speedup": t1.Seconds() / tn.Seconds(),
			},
		},
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		logger.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("wrote %s", *out)
}
